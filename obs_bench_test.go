// Observability-overhead experiments (O-series): the online Cilkview clocks
// sit on the spawn, sync, task, and steal paths, gated on the run's clock
// pointer exactly like the cancel gate and the tracer. These benchmarks pin
// both sides of that gate:
//
//   - disabled: the C-series uncancelled fib/matmul runs (no observer) are
//     the guard — `make bench-obs` diffs them against the committed seed
//     baseline, proving a runtime built *without* WithObserver pays <2%;
//   - enabled: the same workloads on an observed runtime measure what a
//     production deployment mounting cilkgo.DebugHandler actually pays for
//     live work/span accounting (EXPERIMENTS.md O1).
package cilkgo_test

import (
	"testing"

	"cilkgo"
	"cilkgo/internal/workloads"
)

// BenchmarkObsFibEnabled is fib(22) with the run observer installed — every
// spawn/sync boundary charges the strand clock, every task deposits its span.
// Compare against BenchmarkCancelFibUncancelled for the enabled overhead on
// the spawn-bound extreme.
func BenchmarkObsFibEnabled(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithObserver(cilkgo.NewObserver(8)))
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.Fib(c, 22) }); err != nil {
			b.Fatal(err)
		}
		if got != workloads.SerialFib(22) {
			b.Fatal("wrong fib")
		}
	}
}

// BenchmarkObsMatmulEnabled is the 128×128 multiply with the observer
// installed — the loop-bound extreme, where the clocks ride the lazy-loop
// episode boundaries rather than per-iteration.
func BenchmarkObsMatmulEnabled(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithObserver(cilkgo.NewObserver(8)))
	defer rt.Shutdown()
	const n = 128
	a := workloads.NewMatrix(n)
	bm := workloads.NewMatrix(n)
	out := workloads.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			bm.Set(i, j, float64(i-j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) { workloads.MatMul(c, a, bm, out) }); err != nil {
			b.Fatal(err)
		}
	}
}
