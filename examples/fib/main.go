// Fib runs the canonical Cilk fib benchmark and surfaces the scheduler's
// §3 story: spawn counts versus steal counts ("stealing is infrequent"),
// frame-depth statistics behind the stack-space bound, and a Cilkview
// parallelism profile measured from an instrumented serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"cilkgo"
	"cilkgo/internal/cilkview"
	"cilkgo/internal/sched"
	"cilkgo/internal/workloads"
)

const n = 30

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the widest parallel run to this file")
	flag.Parse()
	// Measured Cilkview profile of fib(20) (instrumented serial run).
	profile, err := cilkview.Measure("fib(20)", func(c *sched.Context) {
		workloads.Fib(c, 20)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(cilkview.Render(profile, []int{1, 2, 4, 8, 16}, nil))

	// Parallel execution across worker counts.
	want := workloads.SerialFib(n)
	start := time.Now()
	workloads.SerialFib(n)
	serial := time.Since(start)
	fmt.Printf("serial fib(%d): %v\n\n", n, serial)
	fmt.Printf("%8s  %12s  %8s  %10s  %10s  %10s\n",
		"workers", "time", "speedup", "spawns", "steals", "max-depth")
	maxP := runtime.GOMAXPROCS(0)
	for p := 1; p <= maxP; p *= 2 {
		opts := []cilkgo.Option{cilkgo.WithWorkers(p)}
		traced := *traceOut != "" && p*2 > maxP // trace the widest run
		if traced {
			opts = append(opts, cilkgo.WithTracing())
		}
		rt := cilkgo.New(opts...)
		if traced {
			rt.Tracer().Start()
		}
		var got int64
		start := time.Now()
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.Fib(c, n) }); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		if traced {
			writeTrace(*traceOut, rt.Tracer().Stop())
		}
		rt.Shutdown()
		if got != want {
			panic("wrong fib result")
		}
		s := rt.Stats()
		fmt.Printf("%8d  %12v  %8.2f  %10d  %10d  %10d\n",
			p, elapsed, float64(serial)/float64(elapsed), s.Spawns, s.Steals, s.MaxDepth)
	}
	fmt.Println("\nSteals stay a tiny fraction of spawns: communication is incurred")
	fmt.Println("only when a worker runs out of work (§3.2).")
}

// writeTrace saves the drained trace as Chrome trace-event JSON and prints
// its utilization summary.
func writeTrace(path string, t *cilkgo.Trace) {
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := cilkgo.WriteChromeTrace(f, t); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s (%d events)\n%s", path, t.Events(), cilkgo.Summarize(t).Render())
}
