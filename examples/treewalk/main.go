// Treewalk reproduces §5 of the paper end to end: the collision-detection
// tree walk with a global output list, in all four variants of Figs. 4–7 —
// serial, naively parallel (racy!), mutex-protected, and reducer-based —
// timing each at several worker counts and verifying that the reducer
// preserves the serial output order while the mutex does not.
package main

import (
	"fmt"
	"reflect"
	"time"

	"cilkgo"
	"cilkgo/internal/cilklock"
	"cilkgo/internal/hyper"
	"cilkgo/internal/race"
	"cilkgo/internal/sched"
	"cilkgo/internal/workloads"
)

const (
	treeNodes = 200_000
	treeSeed  = 12345
	modulus   = 3 // every third node "collides": a hot output list
	workUnits = 40
)

func main() {
	root := workloads.BuildTree(treeNodes, treeSeed)

	// Fig. 4: the serial walk is the baseline and the answer key.
	start := time.Now()
	var serialOut []*workloads.TreeNode
	workloads.WalkSerial(root, modulus, workUnits, &serialOut)
	serialTime := time.Since(start)
	fmt.Printf("serial walk: %d matches in %v\n\n", len(serialOut), serialTime)

	// Fig. 5: Cilkscreen finds the data race in the naive parallelization
	// without ever running it in parallel.
	reports, err := race.Check(func(c *sched.Context, d *race.Detector) {
		var walk func(c *sched.Context, x *workloads.TreeNode)
		walk = func(c *sched.Context, x *workloads.TreeNode) {
			if x == nil {
				return
			}
			if workloads.HasProperty(x, modulus, 0) {
				d.Read("output_list", "walk: read list tail")
				d.Write("output_list", "walk: output_list.push_back(x)")
			}
			c.Spawn(func(c *sched.Context) { walk(c, x.Left) })
			walk(c, x.Right)
			c.Sync()
		}
		walk(c, workloads.BuildTree(512, treeSeed))
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("Fig. 5 naive parallel walk under Cilkscreen:")
	for _, r := range reports {
		fmt.Printf("  %v\n", r)
	}
	if len(reports) == 0 {
		panic("expected the Fig. 5 race to be detected")
	}

	// Figs. 6 and 7 head to head across worker counts.
	fmt.Printf("\n%8s  %12s  %12s  %12s  %s\n",
		"workers", "mutex", "reducer", "mutex-wait", "order")
	for _, p := range []int{1, 2, 4, 8} {
		mutexTime, waited := timeMutexWalk(p, root)
		reducerTime, ordered := timeReducerWalk(p, root, serialOut)
		order := "scrambled"
		if ordered {
			order = "serial-exact"
		}
		fmt.Printf("%8d  %12v  %12v  %12v  %s (reducer)\n",
			p, mutexTime, reducerTime, waited, order)
	}
	fmt.Println("\nThe reducer walk needs no locks, scales with workers, and its")
	fmt.Println("output order is identical to the serial execution (§5).")
}

func timeMutexWalk(p int, root *workloads.TreeNode) (time.Duration, time.Duration) {
	rt := cilkgo.New(cilkgo.WithWorkers(p))
	defer rt.Shutdown()
	mu := cilklock.New("output_list")
	var out []*workloads.TreeNode
	start := time.Now()
	err := rt.Run(func(c *cilkgo.Context) {
		workloads.WalkMutex(c, root, modulus, workUnits, mu, &out)
	})
	if err != nil {
		panic(err)
	}
	return time.Since(start), mu.Stats().Wait
}

func timeReducerWalk(p int, root *workloads.TreeNode, want []*workloads.TreeNode) (time.Duration, bool) {
	rt := cilkgo.New(cilkgo.WithWorkers(p))
	defer rt.Shutdown()
	out := hyper.NewListAppend[*workloads.TreeNode]()
	start := time.Now()
	err := rt.Run(func(c *cilkgo.Context) {
		workloads.WalkReducer(c, root, modulus, workUnits, out)
	})
	if err != nil {
		panic(err)
	}
	return time.Since(start), reflect.DeepEqual(out.Value(), want)
}
