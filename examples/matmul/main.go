// Matmul demonstrates §2.3's observation that dense matrix multiplication
// is highly parallel: it analyzes the 1000×1000 divide-and-conquer matmul
// dag (parallelism in the millions), then multiplies real matrices with
// cilk_for and reports the measured speedup over the serial baseline.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"cilkgo"
	"cilkgo/internal/vprog"
	"cilkgo/internal/workloads"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the widest parallel run to this file")
	flag.Parse()
	// Analytic side: the paper's 1000×1000 claim, on the exact dag.
	m := vprog.Analyze(vprog.MatMul(1024, 8))
	fmt.Printf("divide-and-conquer matmul(1024) dag:\n")
	fmt.Printf("  work        %d\n  span        %d\n  parallelism %.0f  (\"in the millions\", §2.3)\n\n",
		m.Work, m.Span, m.Parallelism)

	// Measured side: real multiplication on this machine.
	const n = 512
	rng := rand.New(rand.NewSource(1))
	a, b := workloads.NewMatrix(n), workloads.NewMatrix(n)
	for i := range a.Elts {
		a.Elts[i] = rng.Float64()
		b.Elts[i] = rng.Float64()
	}

	ref := workloads.NewMatrix(n)
	start := time.Now()
	workloads.SerialMatMul(a, b, ref)
	serial := time.Since(start)
	fmt.Printf("serial %d×%d multiply: %v\n", n, n, serial)

	maxP := runtime.GOMAXPROCS(0)
	fmt.Printf("%8s  %12s  %8s\n", "workers", "time", "speedup")
	for p := 1; p <= maxP; p *= 2 {
		opts := []cilkgo.Option{cilkgo.WithWorkers(p)}
		traced := *traceOut != "" && p*2 > maxP // trace the widest run
		if traced {
			opts = append(opts, cilkgo.WithTracing())
		}
		rt := cilkgo.New(opts...)
		if traced {
			rt.Tracer().Start()
		}
		out := workloads.NewMatrix(n)
		start := time.Now()
		if err := rt.Run(func(c *cilkgo.Context) { workloads.MatMul(c, a, b, out) }); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		var snap *cilkgo.Trace
		if traced {
			snap = rt.Tracer().Stop()
		}
		rt.Shutdown()
		for i := range out.Elts {
			if out.Elts[i] != ref.Elts[i] {
				panic("parallel result differs from serial")
			}
		}
		fmt.Printf("%8d  %12v  %8.2f\n", p, elapsed, float64(serial)/float64(elapsed))
		if snap != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				panic(err)
			}
			if err := cilkgo.WriteChromeTrace(f, snap); err != nil {
				panic(err)
			}
			f.Close()
			fmt.Printf("\nwrote %s (%d events)\n%s", *traceOut, snap.Events(), cilkgo.Summarize(snap).Render())
		}
	}
}
