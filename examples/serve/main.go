// Serve demonstrates the runtime as the compute engine of an HTTP server —
// the ROADMAP's production posture. One shared work-stealing runtime
// executes a cilk_for workload per request under that request's deadline:
//
//   - every handler calls rt.RunCtx with the request context plus a
//     per-request timeout, so an impatient client or an expired deadline
//     abandons the computation cooperatively (ErrCanceled /
//     ErrDeadlineExceeded → HTTP 499/504) instead of burning workers;
//   - scheduler counters — including tasks_skipped, runs_canceled, and
//     panics_quarantined from the robustness layer — are published on
//     /debug/vars via cilkgo.PublishExpvar;
//   - the runtime carries an online Cilkview observer, so the introspection
//     server (cilkgo.DebugHandler) exposes Prometheus metrics on /metrics,
//     per-run scalability reports on /debug/cilk/runs and
//     /debug/cilk/profile, capture-on-demand Chrome traces on
//     /debug/cilk/trace, and — with -statsheader — every response carries
//     an X-Cilk-Stats header summarizing its own computation;
//   - SIGINT/SIGTERM drains gracefully: the HTTP listener stops, then
//     Runtime.ShutdownDrain gives in-flight computations a bounded grace
//     period before cancelling them with ErrShutdown.
//
// Try it:
//
//	go run ./examples/serve -addr :8080 -statsheader &
//	curl 'localhost:8080/matmul?n=256'            # completes
//	curl 'localhost:8080/matmul?n=2048&budget=50ms'  # deadline exceeded → 504
//	curl 'localhost:8080/metrics'                 # Prometheus scrape
//	curl 'localhost:8080/debug/cilk/runs'         # per-run scalability (JSON)
//	curl 'localhost:8080/debug/cilk/profile'      # Fig. 3 profile, on demand
//	curl -OJ 'localhost:8080/debug/cilk/trace?dur=2s'  # Perfetto-loadable trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"cilkgo"
	"cilkgo/internal/workloads"

	_ "expvar" // registers /debug/vars on the default mux
)

var (
	addr        = flag.String("addr", ":8080", "listen address")
	workers     = flag.Int("workers", 0, "cilk workers (0 = one per processor)")
	budget      = flag.Duration("budget", 2*time.Second, "default per-request compute budget")
	drain       = flag.Duration("drain", 5*time.Second, "shutdown drain for in-flight requests")
	statsHeader = flag.Bool("statsheader", false, "attach an X-Cilk-Stats header (tasks, steals, parallelism) to every compute response")
	keepRuns    = flag.Int("keepruns", 64, "completed runs retained for /debug/cilk/runs")
)

func main() {
	flag.Parse()
	opts := []cilkgo.Option{
		// The observer powers /metrics histograms, /debug/cilk/runs, and the
		// X-Cilk-Stats header; tracing powers /debug/cilk/trace.
		cilkgo.WithObserver(cilkgo.NewObserver(*keepRuns)),
		cilkgo.WithTracing(),
	}
	if *workers > 0 {
		opts = append(opts, cilkgo.WithWorkers(*workers))
	}
	rt := cilkgo.New(opts...)
	cilkgo.PublishExpvar("cilk", rt)

	mux := http.DefaultServeMux
	mux.HandleFunc("/matmul", handle(rt, matmul))
	mux.HandleFunc("/sinsum", handle(rt, sinsum))
	debug := cilkgo.DebugHandler(rt)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/cilk/", debug)

	srv := &http.Server{Addr: *addr}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (budget %v, drain %v)", *addr, *budget, *drain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining", s)
	case err := <-errc:
		log.Fatalf("listener: %v", err)
	}

	// Stop accepting requests, then drain the runtime: computations still
	// in flight get up to -drain to finish before being cancelled with
	// ErrShutdown.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if rt.ShutdownDrain(*drain) {
		log.Printf("drained cleanly")
	} else {
		log.Printf("drain deadline hit: in-flight computations cancelled")
	}
}

// handle wraps a workload so every request runs it under the request
// context bounded by the per-request budget, mapping the robustness-layer
// errors to HTTP statuses.
func handle(rt *cilkgo.Runtime, work func(c *cilkgo.Context, n int) float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 || v > 1<<20 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		b := *budget
		if s := r.URL.Query().Get("budget"); s != "" {
			v, err := time.ParseDuration(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad budget", http.StatusBadRequest)
				return
			}
			b = v
		}
		ctx, cancel := context.WithTimeout(r.Context(), b)
		defer cancel()

		var result float64
		start := time.Now()
		var err error
		if *statsHeader {
			// Per-request accounting: the header summarizes this request's
			// own computation — tasks it ran, steals of its tasks, and its
			// online parallelism estimate (work/span, measured while the
			// parallel schedule ran).
			var st cilkgo.Stats
			st, err = rt.RunWithStatsCtx(ctx, func(c *cilkgo.Context) { result = work(c, n) })
			hdr := fmt.Sprintf("tasks=%d steals=%d", st.TasksRun, st.Steals)
			if st.Span > 0 {
				hdr += fmt.Sprintf(" parallelism=%.2f", float64(st.Work)/float64(st.Span))
			}
			w.Header().Set("X-Cilk-Stats", hdr)
		} else {
			err = rt.RunCtx(ctx, func(c *cilkgo.Context) { result = work(c, n) })
		}
		elapsed := time.Since(start)
		switch {
		case err == nil:
			fmt.Fprintf(w, "result=%g n=%d elapsed=%v\n", result, n, elapsed)
		case errors.Is(err, cilkgo.ErrDeadlineExceeded):
			http.Error(w, fmt.Sprintf("compute budget %v exceeded after %v", b, elapsed),
				http.StatusGatewayTimeout)
		case errors.Is(err, cilkgo.ErrCanceled):
			// Client went away; 499 in nginx's dialect.
			http.Error(w, "client cancelled", 499)
		case errors.Is(err, cilkgo.ErrShutdown):
			http.Error(w, "server draining", http.StatusServiceUnavailable)
		default:
			// A quarantined panic: this request failed, the runtime is fine.
			var pe *cilkgo.PanicError
			if errors.As(err, &pe) {
				log.Printf("request panic quarantined: %v", pe)
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// matmul multiplies two n×n matrices with the cilk_for-based workload and
// returns a checksum element.
func matmul(c *cilkgo.Context, n int) float64 {
	a, b, out := workloads.NewMatrix(n), workloads.NewMatrix(n), workloads.NewMatrix(n)
	cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			b.Set(i, j, float64(i-j))
		}
	})
	workloads.MatMul(c, a, b, out)
	return out.At(n/2, n/2)
}

// sinsum fills an n-element array with sines in parallel (the paper's
// Fig. 1 loop) and folds the sum on the calling strand after the loop's
// implicit sync.
func sinsum(c *cilkgo.Context, n int) float64 {
	a := make([]float64, n)
	cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
		a[i] = math.Sin(float64(i))
	})
	var sum float64
	for _, v := range a {
		sum += v
	}
	return sum
}
