// Serve demonstrates the runtime as the compute engine of a multi-tenant
// HTTP server — the ROADMAP's production posture. One shared work-stealing
// runtime executes a cilk_for workload per request through the Submit API:
//
//   - every handler calls rt.Submit with the request context bounded by a
//     per-request budget, so an impatient client or an expired deadline
//     abandons the computation cooperatively (ErrCanceled /
//     ErrDeadlineExceeded → HTTP 499/504) instead of burning workers;
//   - the X-Tenant request header labels the computation: -tenantclass maps
//     tenants to QoS classes ("pro=interactive,free=best-effort"), so a
//     best-effort flood from one tenant cannot starve another tenant's
//     interactive traffic out of the sharded DRR injection lanes;
//   - -maxqueued/-maxactive/-quota arm admission control: a tenant over its
//     quota gets 429 with Retry-After, a server at capacity sheds with 503 —
//     both decided at Submit time, before any work is queued;
//   - -memsoft/-memhard arm the memory watermarks: above the soft watermark
//     best-effort submissions shed with 503, above the hard one the runtime
//     cancels the most over-footprint best-effort run; an X-Cilk-Mem-Budget
//     header (or ?mem= bytes) gives a request an enforced memory budget — a
//     run that exceeds it is cancelled with ErrMemoryBudget → HTTP 429;
//   - scheduler counters are published on /debug/vars via
//     cilkgo.PublishExpvar, and the introspection server (DebugHandler)
//     serves Prometheus metrics on /metrics — including per-class and
//     per-tenant series — plus the serving LoadReport on /debug/cilk/load;
//   - -legacyinject reverts to the pre-sharding single FIFO injection queue,
//     kept as the A/B baseline for cmd/cilkload's starvation measurements;
//   - SIGINT/SIGTERM drains gracefully: the HTTP listener stops, then
//     Runtime.ShutdownDrain gives in-flight computations a bounded grace
//     period before cancelling them with ErrShutdown.
//
// Try it:
//
//	go run ./examples/serve -addr :8080 -statsheader \
//	    -tenantclass 'pro=interactive,free=best-effort' -quota 'free=16' &
//	curl 'localhost:8080/matmul?n=256'                      # anonymous → batch
//	curl -H 'X-Tenant: pro'  'localhost:8080/matmul?n=256'  # interactive lane
//	curl -H 'X-Tenant: free' 'localhost:8080/sinsum?n=100000'
//	curl 'localhost:8080/debug/cilk/load'                   # serving load (JSON)
//	curl 'localhost:8080/metrics'                           # Prometheus scrape
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cilkgo"
	"cilkgo/internal/workloads"

	_ "expvar" // registers /debug/vars on the default mux
)

var (
	addr        = flag.String("addr", ":8080", "listen address")
	workers     = flag.Int("workers", 0, "cilk workers (0 = one per processor)")
	budget      = flag.Duration("budget", 2*time.Second, "default per-request compute budget")
	drain       = flag.Duration("drain", 5*time.Second, "shutdown drain for in-flight requests")
	statsHeader = flag.Bool("statsheader", false, "attach an X-Cilk-Stats header (tasks, steals, parallelism) to every compute response")
	keepRuns    = flag.Int("keepruns", 64, "completed runs retained for /debug/cilk/runs")

	tenantClass = flag.String("tenantclass", "pro=interactive,free=best-effort",
		"comma-separated tenant=class map applied to the X-Tenant header (classes: interactive, batch, best-effort; unlisted tenants run as batch)")
	maxQueued = flag.Int("maxqueued", 0, "admission: max roots queued runtime-wide (0 = unlimited)")
	maxActive = flag.Int("maxactive", 0, "admission: max runs in flight runtime-wide (0 = unlimited)")
	quotaSpec = flag.String("quota", "", "comma-separated tenant=maxactive quotas, e.g. 'free=16' (empty = no per-tenant quotas)")
	memSoft   = flag.Int64("memsoft", 0, "admission: soft memory watermark in live bytes — above it best-effort submissions are shed (0 = off)")
	memHard   = flag.Int64("memhard", 0, "admission: hard memory watermark in live bytes — above it the most over-footprint best-effort run is cancelled (0 = off)")
	legacy    = flag.Bool("legacyinject", false, "revert to the pre-sharding single-FIFO injection queue (A/B baseline for cmd/cilkload)")
)

// parseTenantClasses parses "pro=interactive,free=best-effort".
func parseTenantClasses(spec string) (map[string]cilkgo.QoSClass, error) {
	m := make(map[string]cilkgo.QoSClass)
	if spec == "" {
		return m, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		tenant, class, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant=class pair %q", pair)
		}
		q, known := cilkgo.ParseQoS(class)
		if !known {
			return nil, fmt.Errorf("unknown QoS class %q for tenant %q", class, tenant)
		}
		m[tenant] = q
	}
	return m, nil
}

// parseQuotas parses "free=16,pro=64" into per-tenant MaxActive quotas.
func parseQuotas(spec string) (map[string]cilkgo.Quota, error) {
	if spec == "" {
		return nil, nil
	}
	m := make(map[string]cilkgo.Quota)
	for _, pair := range strings.Split(spec, ",") {
		tenant, limit, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant=maxactive pair %q", pair)
		}
		n, err := strconv.Atoi(limit)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad quota for tenant %q: %q", tenant, limit)
		}
		m[tenant] = cilkgo.Quota{MaxActive: n}
	}
	return m, nil
}

func main() {
	flag.Parse()
	classes, err := parseTenantClasses(*tenantClass)
	if err != nil {
		log.Fatalf("-tenantclass: %v", err)
	}
	quotas, err := parseQuotas(*quotaSpec)
	if err != nil {
		log.Fatalf("-quota: %v", err)
	}

	opts := []cilkgo.Option{
		// The observer powers /metrics histograms (per-class and per-tenant
		// series included), /debug/cilk/runs, and the X-Cilk-Stats header;
		// tracing powers /debug/cilk/trace.
		cilkgo.WithObserver(cilkgo.NewObserver(*keepRuns)),
		cilkgo.WithTracing(),
	}
	if *workers > 0 {
		opts = append(opts, cilkgo.WithWorkers(*workers))
	}
	if *maxQueued > 0 || *maxActive > 0 || len(quotas) > 0 || *memSoft > 0 || *memHard > 0 {
		opts = append(opts, cilkgo.WithAdmission(cilkgo.AdmissionConfig{
			MaxQueued:           *maxQueued,
			MaxActive:           *maxActive,
			Tenants:             quotas,
			SoftMemoryWatermark: *memSoft,
			HardMemoryWatermark: *memHard,
		}))
	}
	if *legacy {
		opts = append(opts, cilkgo.WithLegacyInject())
	}
	rt := cilkgo.New(opts...)
	cilkgo.PublishExpvar("cilk", rt)

	mux := http.DefaultServeMux
	mux.HandleFunc("/matmul", handle(rt, classes, matmul))
	mux.HandleFunc("/sinsum", handle(rt, classes, sinsum))
	debug := cilkgo.DebugHandler(rt)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/cilk/", debug)

	srv := &http.Server{Addr: *addr}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (budget %v, drain %v, legacyinject %v)", *addr, *budget, *drain, *legacy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining", s)
	case err := <-errc:
		log.Fatalf("listener: %v", err)
	}

	// Stop accepting requests, then drain the runtime: computations still
	// in flight get up to -drain to finish before being cancelled with
	// ErrShutdown.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if rt.ShutdownDrain(*drain) {
		log.Printf("drained cleanly")
	} else {
		log.Printf("drain deadline hit: in-flight computations cancelled")
	}
}

// handle wraps a workload so every request runs it via Submit under the
// request context bounded by the per-request budget, labelled with the
// X-Tenant header's tenant and its mapped QoS class, mapping admission and
// robustness-layer errors to HTTP statuses.
func handle(rt *cilkgo.Runtime, classes map[string]cilkgo.QoSClass, work func(c *cilkgo.Context, n int) float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 || v > 1<<20 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		b := *budget
		if s := r.URL.Query().Get("budget"); s != "" {
			v, err := time.ParseDuration(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad budget", http.StatusBadRequest)
				return
			}
			b = v
		}
		tenant := r.Header.Get("X-Tenant")
		class := cilkgo.QoSBatch
		if q, ok := classes[tenant]; ok {
			class = q
		}
		// An X-Cilk-Mem-Budget header (or ?mem=, in bytes) declares and
		// enforces the request's memory budget: admission charges it and the
		// runtime cancels the run if its accounted live bytes exceed it.
		memSpec := r.Header.Get("X-Cilk-Mem-Budget")
		if s := r.URL.Query().Get("mem"); s != "" {
			memSpec = s
		}
		var memBudget int64
		if memSpec != "" {
			v, err := strconv.ParseInt(memSpec, 10, 64)
			if err != nil || v < 1 {
				http.Error(w, "bad memory budget (want bytes)", http.StatusBadRequest)
				return
			}
			memBudget = v
		}
		ctx, cancel := context.WithTimeout(r.Context(), b)
		defer cancel()

		runOpts := []cilkgo.RunOption{cilkgo.WithTenant(tenant), cilkgo.WithQoS(class)}
		if memBudget > 0 {
			runOpts = append(runOpts, cilkgo.WithMemoryBudget(memBudget))
		}
		if *statsHeader {
			runOpts = append(runOpts, cilkgo.WithStats())
		}
		var result float64
		start := time.Now()
		tk, err := rt.Submit(ctx, func(c *cilkgo.Context) { result = work(c, n) }, runOpts...)
		if err != nil {
			// Submission-time rejection: nothing was queued. Admission
			// rejections are the server's backpressure — tell the client to
			// come back rather than hammering a saturated queue.
			switch {
			case errors.Is(err, cilkgo.ErrQuota):
				w.Header().Set("Retry-After", "1")
				http.Error(w, fmt.Sprintf("tenant %q over quota", tenant), http.StatusTooManyRequests)
			case errors.Is(err, cilkgo.ErrAdmission):
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			case errors.Is(err, cilkgo.ErrShutdown):
				http.Error(w, "server draining", http.StatusServiceUnavailable)
			case errors.Is(err, cilkgo.ErrDeadlineExceeded), errors.Is(err, cilkgo.ErrCanceled):
				http.Error(w, "request expired before submission", 499)
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		err = tk.Wait()
		if *statsHeader {
			// Per-request accounting: the header summarizes this request's
			// own computation — tasks it ran, steals of its tasks, its lane
			// wait, and its online parallelism estimate (work/span, measured
			// while the parallel schedule ran).
			st := tk.Stats()
			hdr := fmt.Sprintf("tasks=%d steals=%d queued=%s", st.TasksRun, st.Steals, tk.QueueLatency())
			if st.Span > 0 {
				hdr += fmt.Sprintf(" parallelism=%.2f", float64(st.Work)/float64(st.Span))
			}
			w.Header().Set("X-Cilk-Stats", hdr)
		}
		elapsed := time.Since(start)
		switch {
		case err == nil:
			fmt.Fprintf(w, "result=%g n=%d elapsed=%v tenant=%q class=%s\n", result, n, elapsed, tenant, tk.Class())
		case errors.Is(err, cilkgo.ErrDeadlineExceeded):
			http.Error(w, fmt.Sprintf("compute budget %v exceeded after %v", b, elapsed),
				http.StatusGatewayTimeout)
		case errors.Is(err, cilkgo.ErrMemoryBudget):
			// The computation outgrew its declared budget (or was shed above
			// the hard memory watermark) — the client's footprint problem,
			// not the server's: 429, retry with a bigger budget or later.
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("memory budget exceeded after %v", elapsed),
				http.StatusTooManyRequests)
		case errors.Is(err, cilkgo.ErrCanceled):
			// Client went away; 499 in nginx's dialect.
			http.Error(w, "client cancelled", 499)
		case errors.Is(err, cilkgo.ErrShutdown):
			http.Error(w, "server draining", http.StatusServiceUnavailable)
		default:
			// A quarantined panic: this request failed, the runtime is fine.
			var pe *cilkgo.PanicError
			if errors.As(err, &pe) {
				log.Printf("request panic quarantined: %v", pe)
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// matmul multiplies two n×n matrices with the cilk_for-based workload and
// returns a checksum element.
func matmul(c *cilkgo.Context, n int) float64 {
	a, b, out := workloads.NewMatrix(n), workloads.NewMatrix(n), workloads.NewMatrix(n)
	cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			b.Set(i, j, float64(i-j))
		}
	})
	workloads.MatMul(c, a, b, out)
	return out.At(n/2, n/2)
}

// sinsum fills an n-element array with sines in parallel (the paper's
// Fig. 1 loop) and folds the sum on the calling strand after the loop's
// implicit sync.
func sinsum(c *cilkgo.Context, n int) float64 {
	a := make([]float64, n)
	cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
		a[i] = math.Sin(float64(i))
	})
	var sum float64
	for _, v := range a {
		sum += v
	}
	return sum
}
