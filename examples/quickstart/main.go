// Quickstart reproduces the paper's Fig. 1 program: fill an array with a
// cilk_for loop, sort it with the spawn/sync parallel quicksort, and print
// the result — the complete three-keyword tour of the platform.
package main

import (
	"fmt"
	"math"
	"sort"

	"cilkgo"
	"cilkgo/internal/workloads"
)

func main() {
	rt := cilkgo.New()
	defer rt.Shutdown()

	const n = 100 // as in Fig. 1's main routine
	a := make([]float64, n)

	err := rt.Run(func(ctx *cilkgo.Context) {
		// cilk_for (int i=0; i<n; ++i) a[i] = sin((double) i);
		cilkgo.For(ctx, 0, n, func(_ *cilkgo.Context, i int) {
			a[i] = math.Sin(float64(i))
		})
		// qsort(a, a + n);
		workloads.Qsort(ctx, a, 8)
	})
	if err != nil {
		panic(err)
	}

	if !sort.Float64sAreSorted(a) {
		panic("output is not sorted")
	}
	for _, v := range a {
		fmt.Println(v)
	}

	s := rt.Stats()
	fmt.Printf("\n# workers=%d spawns=%d steals=%d\n", rt.Workers(), s.Spawns, s.Steals)
}
