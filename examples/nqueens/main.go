// Nqueens counts n-queens placements with irregular parallel recursion and
// an opadd reducer — the shape of workload (unpredictable subtree sizes)
// for which the paper's randomized work stealing provides its load-balance
// guarantee with no tuning from the programmer.
package main

import (
	"fmt"
	"runtime"
	"time"

	"cilkgo"
	"cilkgo/internal/vprog"
	"cilkgo/internal/workloads"
)

const n = 11

func main() {
	// Serial reference via the single-worker runtime.
	serialRT := cilkgo.New(cilkgo.WithWorkers(1))
	var want int64
	start := time.Now()
	if err := serialRT.Run(func(c *cilkgo.Context) { want = workloads.NQueens(c, n) }); err != nil {
		panic(err)
	}
	serial := time.Since(start)
	serialRT.Shutdown()
	fmt.Printf("n-queens(%d) = %d solutions (1 worker: %v)\n\n", n, want, serial)

	fmt.Printf("%8s  %12s  %8s  %10s  %10s\n", "workers", "time", "speedup", "spawns", "steals")
	maxP := runtime.GOMAXPROCS(0)
	for p := 1; p <= maxP; p *= 2 {
		rt := cilkgo.New(cilkgo.WithWorkers(p))
		var got int64
		start := time.Now()
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.NQueens(c, n) }); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		s := rt.Stats()
		rt.Shutdown()
		if got != want {
			panic("wrong solution count")
		}
		fmt.Printf("%8d  %12v  %8.2f  %10d  %10d\n",
			p, elapsed, float64(serial)/float64(elapsed), s.Spawns, s.Steals)
	}

	// The irregularity is the point: show the analytic profile of a
	// comparable irregular tree to see how far parallelism exceeds any
	// plausible worker count.
	m := vprog.Analyze(vprog.TreeWalk(200_000, 42, 4, 0, 0))
	fmt.Printf("\nirregular 2e5-node tree walk: parallelism %.0f ≫ any machine here (§3.1)\n", m.Parallelism)
}
