// Locality experiments (D-series): steal domains partition the workers and
// the hunt sweeps same-domain victims before escalating, so wide loops on a
// partitioned runtime should keep most steals local (the ≥70% same-domain
// acceptance gate) without slowing the uncontended spawn-tree shapes.
// `make bench-local` records these (plus the uncancelled fib/matmul C-series
// runs as the ±2% no-regression gate) as BENCH_local.json, diffed by
// cmd/benchjson against the committed seed baseline.
package cilkgo_test

import (
	"testing"

	"cilkgo"
)

// reportLocalityMetrics attaches the steal-locality split to the benchmark
// output: the fraction of successful steals that stayed inside the thief's
// domain, plus escalations and affinity re-injections per operation.
func reportLocalityMetrics(b *testing.B, rt *cilkgo.Runtime, before cilkgo.Stats) {
	d := rt.Stats().Sub(before)
	n := float64(b.N)
	if d.Steals > 0 {
		b.ReportMetric(float64(d.LocalSteals)/float64(d.Steals), "local-frac")
	}
	b.ReportMetric(float64(d.Steals)/n, "steals/op")
	b.ReportMetric(float64(d.DomainEscalations)/n, "escalations/op")
	b.ReportMetric(float64(d.AffinityReinjected)/n, "affinity/op")
}

// localWideLoop is the shared shape: a flat wide loop with disjoint
// per-iteration writes, wide enough that every worker steals repeatedly.
func localWideLoop(b *testing.B, rt *cilkgo.Runtime) {
	b.Helper()
	const n = 1 << 20
	sink := make([]uint8, n)
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
				sink[i] = uint8(i)
			})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLocalityMetrics(b, rt, before)
}

// BenchmarkLocalWideLoopFlat is the baseline: one flat domain, the paper's
// uniform random stealing. Its local-frac is 1.0 by definition.
func BenchmarkLocalWideLoopFlat(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	localWideLoop(b, rt)
}

// BenchmarkLocalWideLoopDomains is the tentpole gate: the same loop on the
// same worker count split into two steal domains. Throughput should match
// the flat baseline while local-frac stays ≥ 0.7 — the hierarchy changes
// who gets robbed, not how much work gets done.
func BenchmarkLocalWideLoopDomains(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4), cilkgo.WithStealDomains(2))
	defer rt.Shutdown()
	localWideLoop(b, rt)
}

// BenchmarkLocalFibDomains guards the uncontended spawn-tree path: fib's
// steal rate is tiny once workers are saturated, so domain bookkeeping must
// cost nothing measurable against the flat fib baselines in BENCH.json.
func BenchmarkLocalFibDomains(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4), cilkgo.WithStealDomains(2))
	defer rt.Shutdown()
	var fib func(c *cilkgo.Context, n int, out *int64)
	fib = func(c *cilkgo.Context, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, x int64
		c.Spawn(func(c *cilkgo.Context) { fib(c, n-1, &a) })
		fib(c, n-2, &x)
		c.Sync()
		*out = a + x
	}
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int64
		if err := rt.Run(func(c *cilkgo.Context) { fib(c, 20, &out) }); err != nil {
			b.Fatal(err)
		}
		if out != 6765 {
			b.Fatalf("fib(20) = %d", out)
		}
	}
	b.StopTimer()
	reportLocalityMetrics(b, rt, before)
}
