// Spawn fast-path experiments (W-series, for the work-first principle):
// Cilk's performance model charges scheduling overhead to the worker that
// spawns, betting that steals are rare — so a spawn must cost a small
// constant over a plain function call, and above all must not allocate.
// These benchmarks pin that bet: the per-worker frame freelists and the
// fused task+frame+Context allocation keep the scheduler itself at zero
// allocations per spawn (what remains in the fib shape is the user-level
// closure capture, which the API cannot elide). `make bench-spawn` records
// them as BENCH_spawn.json with the allocation gate and the in-process
// reducer-cost A/B armed (see cmd/benchjson -gateallocs and -ab).
package cilkgo_test

import (
	"testing"

	"cilkgo"
	"cilkgo/internal/hyper"
	"cilkgo/internal/workloads"
)

// reportSpawnMetrics attaches the freelist economics to the benchmark
// output: spawns per op, and backstop refill/spill batches per op — near
// zero in steady state, when each worker's private freelist absorbs its own
// spawn/retire traffic.
func reportSpawnMetrics(b *testing.B, rt *cilkgo.Runtime, before cilkgo.Stats) {
	d := rt.Stats().Sub(before)
	n := float64(b.N)
	b.ReportMetric(float64(d.Spawns)/n, "spawns/op")
	b.ReportMetric(float64(d.PoolRefills)/n, "refills/op")
	b.ReportMetric(float64(d.PoolSpills)/n, "spills/op")
}

// BenchmarkSpawnFib is the spawn-dense canary: fib(22) creates ~28.6k
// frames per op with two-instruction bodies, so ns/op is almost pure
// scheduling overhead. The allocation gate rides on this shape — its
// allocs/op are exactly the user closure captures (two per spawn: the
// closure and the escaping result slot), with the scheduler contributing
// none.
func BenchmarkSpawnFib(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	want := workloads.SerialFib(22)
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.Fib(c, 22) }); err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatal("wrong fib")
		}
	}
	b.StopTimer()
	reportSpawnMetrics(b, rt, before)
}

// BenchmarkSpawnWideFlat spawns 10k children of one frame through a single
// shared closure, isolating the scheduler's own per-spawn cost from user
// capture allocations: with nothing captured per child, allocs/op measures
// the freelist machinery alone and gates at (amortized) zero.
func BenchmarkSpawnWideFlat(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const n = 10_000
	child := func(*cilkgo.Context) {}
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			for j := 0; j < n; j++ {
				c.Spawn(child)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpawnMetrics(b, rt, before)
}

// spawnTree grows a binary spawn tree of the given depth, calling body at
// every node — the fib shape without the arithmetic, so the hyperobject
// A/B below runs identical schedules and differs only in what body does.
func spawnTree(c *cilkgo.Context, depth int, body func(*cilkgo.Context)) {
	body(c)
	if depth == 0 {
		return
	}
	c.Spawn(func(c *cilkgo.Context) { spawnTree(c, depth-1, body) })
	spawnTree(c, depth-1, body)
	c.Sync()
}

// BenchmarkSpawnHyperFree is the A-side of the in-process reducer-cost
// pair: a 4k-node spawn tree touching no hyperobjects, so every Sync takes
// the fold-free fast path (no seal, no redMu, no segment walk).
func BenchmarkSpawnHyperFree(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			spawnTree(c, 11, func(*cilkgo.Context) {})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpawnMetrics(b, rt, before)
}

// BenchmarkSpawnReducerHeavy is the B-side: the same tree with every node
// folding into an adder reducer, so each spawn seals a view segment and
// each sync runs the full fold. benchjson's -ab diffs it against
// BenchmarkSpawnHyperFree in the same process — an interleaved measurement
// of what the hyperobject machinery costs spawn-dense code, immune to the
// machine-speed drift that makes committed absolute baselines go stale.
func BenchmarkSpawnReducerHeavy(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const nodes = 1<<12 - 1 // depth-11 tree
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := hyper.NewAdder[int64]()
		if err := rt.Run(func(c *cilkgo.Context) {
			spawnTree(c, 11, func(c *cilkgo.Context) { sum.Add(c, 1) })
		}); err != nil {
			b.Fatal(err)
		}
		if got := sum.Value(); got != nodes {
			b.Fatalf("reduced %d, want %d", got, nodes)
		}
	}
	b.StopTimer()
	reportSpawnMetrics(b, rt, before)
}
