//go:build race

package cilkgo_test

// raceEnabled reports whether this test binary was built with -race; the
// allocation gates skip their numeric assertions under the race runtime.
const raceEnabled = true
