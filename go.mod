module cilkgo

go 1.22
