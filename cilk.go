// Package cilkgo is a Go reproduction of the Cilk++ concurrency platform
// (C.E. Leiserson, "The Cilk++ concurrency platform", DAC 2009): a
// work-stealing fork-join runtime with provable performance bounds, the
// cilk_for parallel loop, reducer hyperobjects that mitigate races on
// nonlocal variables without locks, a Cilkscreen-style determinacy-race
// detector, and a Cilkview-style performance analyzer.
//
// This package is the user-facing facade. The three Cilk++ keywords map to:
//
//	cilk_spawn f(x)   →  ctx.Spawn(func(ctx *cilkgo.Context) { f(ctx, x) })
//	cilk_sync         →  ctx.Sync()
//	cilk_for          →  cilkgo.For(ctx, lo, hi, body)
//
// A minimal program:
//
//	rt := cilkgo.New()
//	defer rt.Shutdown()
//	err := rt.Run(func(ctx *cilkgo.Context) {
//		cilkgo.For(ctx, 0, n, func(ctx *cilkgo.Context, i int) {
//			a[i] = math.Sin(float64(i))
//		})
//	})
//
// For server use, computations are context-aware: Runtime.RunCtx abandons
// the computation cooperatively when the context is canceled or its
// deadline passes (returning ErrCanceled or ErrDeadlineExceeded), panics
// are quarantined per run (a *PanicError carrying every sibling panic; the
// runtime stays healthy), and Runtime.ShutdownDrain bounds how long
// in-flight work may outlive a shutdown. See the "API at a glance" table
// in README.md.
//
// Subsystem packages (importable directly for their full APIs):
//
//	internal/sched    the work-stealing scheduler (§3)
//	internal/pfor     cilk_for (§1–2)
//	internal/hyper    reducer hyperobjects (§5)
//	internal/race     the Cilkscreen race detector (§4)
//	internal/cilkview the performance analyzer (§3.1, Fig. 3)
//	internal/cilklock the mutex library (§1)
//	internal/sim      a deterministic simulator of the Cilk scheduler
//	internal/dag      the dag model of multithreading (§2)
//	internal/trace    per-worker event tracing of the parallel schedule
//	internal/schedsan the scheduler sanitizer: fault injection, invariants
package cilkgo

import (
	"expvar"
	"io"
	"net/http"
	"time"

	"cilkgo/internal/obs"
	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
	"cilkgo/internal/schedsan"
	"cilkgo/internal/trace"
)

// Core runtime types, re-exported from internal/sched.
type (
	// Runtime is a work-stealing scheduler instance.
	Runtime = sched.Runtime
	// Context is the per-strand handle passed through a computation;
	// Context.Spawn and Context.Sync are cilk_spawn and cilk_sync.
	Context = sched.Context
	// Option configures New.
	Option = sched.Option
	// Stats reports scheduler counters (spawns, steals, frame depths).
	Stats = sched.Stats
	// PanicError reports the panics quarantined during a computation: the
	// first panic cancels the rest of the run, and every captured sibling
	// panic is collected in PanicError.All.
	PanicError = sched.PanicError
	// Panic is one quarantined panic (value + stack) inside a PanicError.
	Panic = sched.Panic
	// Tracer is the per-worker event tracer installed by the Tracing
	// option; retrieve it with Runtime.Tracer, bracket a recording window
	// with Start/Stop, and feed the resulting Trace to WriteChromeTrace or
	// Summarize.
	Tracer = trace.Tracer
	// Trace is a drained recording window: per-worker event timelines.
	Trace = trace.Trace
	// TraceProfile is the derived view of a Trace — worker utilization,
	// steal latencies, and the live-frames high-water series.
	TraceProfile = trace.Profile
	// SanitizeOptions configures the scheduler sanitizer installed by
	// WithSanitize: the fault-injection plan, invariant checking, the stall
	// watchdog, and the violation/stall report sinks.
	SanitizeOptions = schedsan.Options
	// SanitizePlan is a deterministic, JSON-serializable fault schedule: a
	// seed plus rules saying which protocol points fail, stall, drop, or
	// duplicate, and how often. The same plan replays the same faults.
	SanitizePlan = schedsan.Plan
	// SanitizeRule is one (point, mode, rate, delay) entry of a SanitizePlan.
	SanitizeRule = schedsan.Rule
	// SanitizeReport is a structured invariant-violation or stall report,
	// carrying a runtime state dump naming each worker's state, deque depth,
	// and the recent trace tail.
	SanitizeReport = schedsan.Report
	// Observer is the run registry installed by WithObserver: it receives
	// every Run's online Cilkview report (work, span, per-run stats) and
	// retains the recent ones for DebugHandler's endpoints.
	Observer = obs.Registry
	// RunReport is one observed run's terminal record: wall times, per-run
	// Stats including the online Work (T1) and Span (T∞) measured during
	// the parallel execution, and the run's error.
	RunReport = sched.RunReport
)

// Sentinel errors of the runtime's robustness layer, re-exported from
// internal/sched. Each also matches its context counterpart under
// errors.Is: errors.Is(ErrCanceled, context.Canceled) and
// errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) hold.
var (
	// ErrCanceled is returned by Runtime.RunCtx when the computation was
	// abandoned because its context was canceled.
	ErrCanceled = sched.ErrCanceled
	// ErrDeadlineExceeded is returned by Runtime.RunCtx when the
	// computation was abandoned because its context's deadline passed.
	ErrDeadlineExceeded = sched.ErrDeadlineExceeded
	// ErrShutdown is returned by Run on a runtime that has been shut
	// down, and by in-flight Runs canceled at ShutdownDrain's deadline.
	ErrShutdown = sched.ErrShutdown
)

// New creates a runtime with one worker per processor (override with
// WithWorkers) and starts its workers.
func New(opts ...Option) *Runtime { return sched.New(opts...) }

// WithWorkers sets the number of workers.
func WithWorkers(n int) Option { return sched.WithWorkers(n) }

// WithSerialElision makes the runtime execute programs as their serial
// elisions, as the race detector and profiler require.
func WithSerialElision() Option { return sched.WithSerialElision() }

// WithStealSeed makes the schedule's random victim selection reproducible.
func WithStealSeed(seed int64) Option { return sched.WithStealSeed(seed) }

// WithStealDomains partitions the workers into n steal domains: an idle
// worker sweeps victims inside its own domain first and escalates to remote
// domains only after a full local sweep fails, and range tasks stolen across
// a domain boundary are re-injected toward their loop owner's domain. n <= 0
// auto-detects the machine's NUMA node count (1 — a flat runtime with the
// classic uniform steal — when undetectable). See Stats.LocalSteals,
// Stats.RemoteSteals, and Stats.DomainEscalations for the resulting
// locality split.
func WithStealDomains(n int) Option { return sched.WithStealDomains(n) }

// WithTracing equips the runtime with low-overhead per-worker event tracing
// of the parallel schedule: task start/end, spawns, steal attempts and
// successes (with victim ids), idle hunting, parking, and — on cancelled or
// panicking runs — task skips and quarantined panics. The tracer starts
// disabled — until Runtime.Tracer().Start() is called every
// instrumentation site costs a single atomic load and branch.
//
//	rt := cilkgo.New(cilkgo.WithTracing())
//	rt.Tracer().Start()
//	rt.Run(...)
//	t := rt.Tracer().Stop()
//	cilkgo.WriteChromeTrace(f, t)      // view in Perfetto / chrome://tracing
//	fmt.Print(cilkgo.Summarize(t).Render())
func WithTracing(opts ...sched.TraceOption) Option { return sched.WithTracing(opts...) }

// WithTraceCapacity sets the per-worker trace ring-buffer capacity in
// events (default 65536; oldest events are overwritten on overflow).
func WithTraceCapacity(events int) sched.TraceOption { return trace.Capacity(events) }

// WithSanitize arms the scheduler sanitizer on a parallel runtime: seeded
// fault injection at the steal/claim/park/wake/split/fold/recycle protocol
// points, runtime invariant checking (join counters, unique view deposits,
// drain completeness), and a stall watchdog that files a diagnostic report
// and bumps Stats.Stalls when outstanding work stops making progress.
// Intended for tests and the cmd/schedfuzz fuzzer; a runtime without this
// option pays only nil-pointer gates on the affected paths.
//
//	plan := cilkgo.RandomFaultPlan(seed)
//	rt := cilkgo.New(cilkgo.WithSanitize(cilkgo.SanitizeOptions{
//		Plan:       plan,
//		Invariants: true,
//		StallAfter: 2 * time.Second,
//	}))
func WithSanitize(o SanitizeOptions) Option { return sched.WithSanitize(o) }

// RandomFaultPlan derives a random liveness-safe fault schedule from a
// seed, as the schedule fuzzer does: same seed, same plan, same faults.
func RandomFaultPlan(seed int64) SanitizePlan { return schedsan.RandomPlan(seed) }

// Serving layer (see Runtime.Submit in internal/sched): the canonical
// submission API plus its per-run options, QoS classes, admission control,
// and load reporting. Submit subsumes the four legacy Run entry points —
// Run/RunCtx/RunWithStats/RunWithStatsCtx remain as deprecated wrappers.
//
//	tk, err := rt.Submit(ctx, fn,
//		cilkgo.WithTenant("acme"), cilkgo.WithQoS(cilkgo.QoSInteractive),
//		cilkgo.WithStats(), cilkgo.WithTimeBudget(200*time.Millisecond))
//	if err != nil { /* ErrAdmission / ErrQuota / ErrShutdown: shed load */ }
//	err = tk.Wait()
//	st := tk.Stats()
type (
	// Ticket is the handle to one submitted computation: await it with
	// Wait/Done, then read Err, Stats, and QueueLatency.
	Ticket = sched.Ticket
	// RunOption configures one Submit call (WithStats, WithQoS, WithTenant,
	// WithPriority, WithTimeBudget, WithMemoryBudget).
	RunOption = sched.RunOption
	// QoSClass is a submission's quality-of-service class; it sets the
	// weighted-fair rate its root is picked up at under backlog.
	QoSClass = sched.QoSClass
	// AdmissionConfig arms admission control (WithAdmission): global
	// queue/run/memory limits, soft/hard memory watermarks for pressure
	// shedding, plus per-tenant Quotas.
	AdmissionConfig = sched.AdmissionConfig
	// Quota bounds one tenant's queued roots, in-flight runs, and declared
	// memory.
	Quota = sched.Quota
	// LoadReport is Runtime.LoadReport's backpressure snapshot: queue depths
	// by QoS class, running roots, parked workers, admission counters, and
	// per-tenant load.
	LoadReport = sched.LoadReport
	// TenantLoad is one tenant's slice of a LoadReport.
	TenantLoad = sched.TenantLoad
)

// QoS classes, in decreasing pickup weight (8:4:1 under backlog).
const (
	QoSInteractive = sched.QoSInteractive
	QoSBatch       = sched.QoSBatch
	QoSBestEffort  = sched.QoSBestEffort
)

// Admission sentinels returned by Runtime.Submit (match with errors.Is).
var (
	// ErrAdmission reports the runtime as a whole is at capacity.
	ErrAdmission = sched.ErrAdmission
	// ErrQuota reports the submitting tenant is over its own quota.
	ErrQuota = sched.ErrQuota
	// ErrMemoryBudget is a Ticket.Wait sentinel: the run's accounted live
	// memory (activation frames plus Context.Charge declarations) exceeded
	// its WithMemoryBudget, or the runtime shed it above a hard memory
	// watermark; the computation was cancelled skip-but-join.
	ErrMemoryBudget = sched.ErrMemoryBudget
)

// ParseQoS maps a class name ("interactive", "batch", "best-effort") to its
// QoSClass; the second result reports whether the name was recognized.
func ParseQoS(s string) (QoSClass, bool) { return sched.ParseQoS(s) }

// WithStats arms per-computation accounting: the Ticket's Stats covers
// exactly this computation.
func WithStats() RunOption { return sched.WithStats() }

// WithQoS assigns the run's QoS class (default QoSBatch).
func WithQoS(q QoSClass) RunOption { return sched.WithQoS(q) }

// WithTenant labels the run with a tenant identity for quotas, lane
// affinity, and per-tenant accounting.
func WithTenant(name string) RunOption { return sched.WithTenant(name) }

// WithPriority orders the run's root within its QoS class's queue (higher
// first; default 0).
func WithPriority(p int) RunOption { return sched.WithPriority(p) }

// WithTimeBudget bounds the run's wall-clock lifetime, queueing included;
// past it the Ticket reports ErrDeadlineExceeded.
func WithTimeBudget(d time.Duration) RunOption { return sched.WithTimeBudget(d) }

// WithMemoryBudget declares the run's estimated peak memory use — charged
// against admission MaxMemory limits for the run's lifetime — and enforces
// it: the runtime accounts the run's live activation frames plus its
// Context.Charge/Refund declarations, and a run whose live bytes exceed the
// budget is cancelled with ErrMemoryBudget at the next spawn, task-start, or
// loop-chunk boundary. Ticket.Stats reports the run's MemLiveBytes and
// MemPeakBytes.
func WithMemoryBudget(bytes int64) RunOption { return sched.WithMemoryBudget(bytes) }

// MemReport is Runtime.MemReport's snapshot of the memory-pressure picture:
// live accounted bytes against the soft/hard watermarks, enforcement
// counters, and per-tenant in-flight charges and peak EWMAs. Served as JSON
// on DebugHandler's /debug/cilk/mem.
type MemReport = sched.MemReport

// WithAdmission arms admission control: Submit rejects with ErrAdmission /
// ErrQuota instead of queueing unboundedly.
func WithAdmission(cfg AdmissionConfig) Option { return sched.WithAdmission(cfg) }

// WithLegacyInject reverts root injection to the pre-sharding single FIFO
// (blind to QoS and priority) — the A/B baseline for the serving benchmarks.
func WithLegacyInject() Option { return sched.WithLegacyInject() }

// WriteChromeTrace writes a drained trace as Chrome trace-event JSON, one
// track per worker, viewable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Trace) error { return trace.WriteChrome(w, t) }

// Summarize derives the utilization / steal-latency / live-frames profile
// of a drained trace; its Render method formats an ASCII report.
func Summarize(t *Trace) *TraceProfile { return trace.BuildProfile(t, 60) }

// PublishExpvar publishes rt.Metrics() as the expvar variable name, so a
// long-running server exposes scheduler counters on /debug/vars.
func PublishExpvar(name string, rt *Runtime) {
	expvar.Publish(name, expvar.Func(func() any { return rt.Metrics() }))
}

// NewObserver returns an Observer retaining the keep most recent completed
// runs (keep <= 0 selects a default of 64). Install it with WithObserver.
func NewObserver(keep int) *Observer { return obs.NewRegistry(keep) }

// WithObserver installs o as the runtime's run observer and arms the online
// Cilkview clocks: every Run's work (T1) and span (T∞) are measured during
// the parallel execution itself — per-strand clocks aggregated at
// spawn/sync boundaries — and reported to o, together with the run's Stats,
// and the runtime's live steal-latency and park-to-wake histograms begin
// recording. A runtime without an observer pays one nil check per spawn and
// sync; with one, two monotonic clock reads per boundary.
//
//	reg := cilkgo.NewObserver(0)
//	rt := cilkgo.New(cilkgo.WithObserver(reg), cilkgo.WithTracing())
//	http.Handle("/", cilkgo.DebugHandler(rt))
func WithObserver(o *Observer) Option { return sched.WithRunObserver(o) }

// DebugHandler returns the runtime's HTTP introspection server: Prometheus
// metrics on /metrics, live and recent runs with online scalability
// estimates on /debug/cilk/runs, a Cilkview parallelism profile on
// /debug/cilk/profile, capture-on-demand Chrome traces on /debug/cilk/trace
// (requires WithTracing), the sanitizer's stall findings on
// /debug/cilk/stalls, the serving load report on /debug/cilk/load, and the
// memory report (live bytes, watermarks, tenant EWMAs) on /debug/cilk/mem.
// Mount it on any mux; run-level endpoints require WithObserver.
func DebugHandler(rt *Runtime) http.Handler { return obs.Handler(rt) }

// For executes body(ctx, i) for every i in [lo, hi) as a cilk_for loop:
// divide-and-conquer parallel recursion over the iteration space with an
// automatic grain size, returning only when all iterations complete.
func For(ctx *Context, lo, hi int, body func(ctx *Context, i int)) {
	pfor.For(ctx, lo, hi, body)
}

// ForGrain is For with an explicit grain size (iterations per serial chunk).
func ForGrain(ctx *Context, lo, hi, grain int, body func(ctx *Context, i int)) {
	pfor.ForGrain(ctx, lo, hi, grain, body)
}

// Each runs body over every element of s in parallel.
func Each[T any](ctx *Context, s []T, body func(ctx *Context, i int, v *T)) {
	pfor.Each(ctx, s, body)
}

// For2D executes body over [lo1,hi1) × [lo2,hi2) in parallel.
func For2D(ctx *Context, lo1, hi1, lo2, hi2 int, body func(ctx *Context, i, j int)) {
	pfor.For2D(ctx, lo1, hi1, lo2, hi2, body)
}
