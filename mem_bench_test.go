// Memory-accounting experiments (M-series): the budget machinery sits on the
// same boundaries as the cancel gate — spawn, task start, loop chunk — plus a
// per-frame charge at allocation and a refund at recycle, all nil-gated when
// the run carries no budget. These benchmarks pin both sides of that switch:
// the NoBudget twins run fib and matmul through Submit with accounting
// disarmed and are A/B-diffed in-process against the C-series uncancelled
// runs (`make bench-mem` gates the pair at 2% with benchjson -maxab), and the
// Budgeted twins run the identical workloads under a never-tripping budget to
// record what armed accounting — live-byte shards, peak watermarks, boundary
// checks — actually costs. BENCH_mem.json carries both, diffed against the
// committed seed baseline.
package cilkgo_test

import (
	"context"
	"testing"

	"cilkgo"
	"cilkgo/internal/workloads"
)

// submitWait runs one workload through the Submit API and waits it out —
// the M-series unit of work, matching the C-series' rt.Run shape.
func submitWait(b *testing.B, rt *cilkgo.Runtime, fn func(c *cilkgo.Context), opts ...cilkgo.RunOption) {
	b.Helper()
	tk, err := rt.Submit(context.Background(), fn, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMemFibNoBudget is the spawn-bound workload with accounting
// disarmed: every spawn, task start, and frame recycle passes the budget and
// charge gates without taking them. Its base twin in the -ab gate is
// BenchmarkCancelFibUncancelled, measured in the same process.
func BenchmarkMemFibNoBudget(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		submitWait(b, rt, func(c *cilkgo.Context) { got = workloads.Fib(c, 22) })
		if got != workloads.SerialFib(22) {
			b.Fatal("wrong fib")
		}
	}
}

// BenchmarkMemMatmulNoBudget is the loop-bound twin: the per-chunk budget
// gate rides the peel loop next to the cancel check.
func BenchmarkMemMatmulNoBudget(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	const n = 128
	a, bm, out := workloads.NewMatrix(n), workloads.NewMatrix(n), workloads.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			bm.Set(i, j, float64(i-j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, rt, func(c *cilkgo.Context) { workloads.MatMul(c, a, bm, out) })
	}
}

// BenchmarkMemFibBudgeted arms full accounting with a budget fib(22) cannot
// reach: every frame is charged and refunded through the per-worker shards,
// every boundary reads the live sum against the budget, and the peak
// watermark is maintained — the worst case of the enforcement machinery with
// zero cancellations. Recorded, not gated: the budget is opt-in per run.
func BenchmarkMemFibBudgeted(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		submitWait(b, rt, func(c *cilkgo.Context) { got = workloads.Fib(c, 22) },
			cilkgo.WithMemoryBudget(1<<40))
		if got != workloads.SerialFib(22) {
			b.Fatal("wrong fib")
		}
	}
}

// BenchmarkMemMatmulBudgeted is the budget-armed loop-bound twin.
func BenchmarkMemMatmulBudgeted(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	const n = 128
	a, bm, out := workloads.NewMatrix(n), workloads.NewMatrix(n), workloads.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			bm.Set(i, j, float64(i-j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, rt, func(c *cilkgo.Context) { workloads.MatMul(c, a, bm, out) },
			cilkgo.WithMemoryBudget(1<<40))
	}
}
