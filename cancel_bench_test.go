// Cancellation-overhead experiments (C-series): the robustness layer's
// cancel gate is checked at spawn, task-start, and per-chunk boundaries, so
// these benchmarks pin the uncancelled hot path — the fib and matmul
// workloads of E6/E11 run through plain Run — to within noise of the seed
// runtime. `make bench-cancel` records them as BENCH_cancel.json, diffed by
// cmd/benchjson against the committed seed baseline
// (bench_seed_baseline.json, measured at the pre-cancellation commit).
package cilkgo_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo"
	"cilkgo/internal/workloads"
)

// BenchmarkCancelFibUncancelled measures a full fib(22) Run — the
// spawn-bound workload where per-spawn overhead is most visible.
func BenchmarkCancelFibUncancelled(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.Fib(c, 22) }); err != nil {
			b.Fatal(err)
		}
		if got != workloads.SerialFib(22) {
			b.Fatal("wrong fib")
		}
	}
}

// BenchmarkCancelLatencyFib measures abandonment latency: the time from
// firing the cancel to RunCtx returning with ErrCanceled, on a fib(24) run
// with plenty of outstanding tasks — the cost of draining (skipping) the
// spawn tree rather than running it.
func BenchmarkCancelLatencyFib(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var leaves atomic.Int64
		done := make(chan error, 1)
		go func() {
			done <- rt.RunCtx(ctx, func(c *cilkgo.Context) {
				var rec func(c *cilkgo.Context, n int)
				rec = func(c *cilkgo.Context, n int) {
					if n < 2 {
						leaves.Add(1)
						return
					}
					c.Spawn(func(c *cilkgo.Context) { rec(c, n-1) })
					rec(c, n-2)
					c.Sync()
				}
				rec(c, 24)
			})
		}()
		for leaves.Load() < 64 { // let the spawn tree get going
		}
		start := time.Now()
		cancel()
		err := <-done
		total += time.Since(start)
		if err != nil && !errors.Is(err, cilkgo.ErrCanceled) {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "cancel-ns/op")
}

// BenchmarkCancelMatmulUncancelled measures a 128×128 matrix multiply — the
// loop-bound workload where the per-chunk cancel check sits on the cilk_for
// path.
func BenchmarkCancelMatmulUncancelled(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	const n = 128
	a := workloads.NewMatrix(n)
	bm := workloads.NewMatrix(n)
	out := workloads.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j))
			bm.Set(i, j, float64(i-j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) { workloads.MatMul(c, a, bm, out) }); err != nil {
			b.Fatal(err)
		}
	}
}
