// Cilkview prints the parallelism profile of a named workload — work,
// span, parallelism, burdened parallelism, and the Fig. 3 speedup series
// (estimated lower bound, simulated speedups, Work Law and Span Law
// bounds).
//
// Reproducing Fig. 3 (quicksort of 10⁸ numbers, span-law ceiling ≈ 10):
//
//	cilkview -workload qsort -n 100000000 -grain 2048 -burden 1000 -procs 1,2,4,8,16,32 -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cilkgo/internal/cilkmem"
	"cilkgo/internal/cilkview"
	"cilkgo/internal/sim"
	"cilkgo/internal/vprog"
)

func main() {
	var (
		workload  = flag.String("workload", "qsort", "qsort | fib | matmul | nqueens | bfs | spmv | treewalk | loopspawn | pfor")
		n         = flag.Int64("n", 100_000_000, "problem size")
		grain     = flag.Int64("grain", 2048, "serial grain size")
		seed      = flag.Int64("seed", 1, "workload and schedule seed")
		burden    = flag.Int64("burden", 1000, "per-spawn scheduling burden (cost units)")
		stealCost = flag.Int64("stealcost", 100, "virtual cost per steal attempt in -simulate")
		procsFlag = flag.String("procs", "1,2,4,8,16,32", "processor counts to tabulate")
		simulate  = flag.Bool("simulate", false, "run the scheduler simulator to add measured speedups")
		csv       = flag.Bool("csv", false, "emit CSV instead of the table")
		plot      = flag.Bool("plot", false, "also draw the Fig. 3-style ASCII speedup plot")
		mem       = flag.Bool("mem", false, "add the Cilkmem memory high-water section")
		memBytes  = flag.Int64("membytes", 1, "bytes charged per frame activation in -mem (1 = count frames)")
	)
	flag.Parse()

	prog, err := pickWorkload(*workload, *n, *grain, uint64(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	profile := cilkview.FromProgram(prog, *burden)
	var measured []cilkview.Point
	simPeaks := map[int]int64{}
	if *simulate {
		for _, p := range procs {
			r, err := sim.Run(prog, sim.Config{Procs: p, StealCost: *stealCost, Seed: *seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "simulate P=%d: %v\n", p, err)
				os.Exit(1)
			}
			measured = append(measured, cilkview.Point{Procs: p, Speedup: r.Speedup(profile.Work)})
			simPeaks[p] = r.MaxLiveFrames * *memBytes
		}
	}
	if *csv {
		fmt.Print(cilkview.CSV(profile, procs, measured))
	} else {
		fmt.Print(cilkview.Render(profile, procs, measured))
	}
	if *plot {
		maxP := 0
		for _, p := range procs {
			if p > maxP {
				maxP = p
			}
		}
		fmt.Println()
		fmt.Print(cilkview.Plot(profile, maxP, measured))
	}
	if *mem {
		fmt.Println()
		printMem(prog, procs, *memBytes, simPeaks)
	}
}

// printMem tabulates the Cilkmem high-water marks: the serial HWM, the
// exact MHWM_p and the streaming (p+1)-approximation per processor count,
// and — when -simulate ran — the simulator's measured live-frame peak,
// which must fall between the serial HWM and the exact bound (a schedule
// cannot beat serial depth-first reuse, nor exceed the adversarial bound).
func printMem(prog vprog.Program, procs []int, memBytes int64, simPeaks map[int]int64) {
	maxP := 0
	for _, p := range procs {
		if p > maxP {
			maxP = p
		}
	}
	r := cilkmem.AnalyzeProgram(prog, maxP, memBytes)
	unit := "bytes"
	if memBytes == 1 {
		unit = "frames"
	}
	fmt.Printf("Memory high-water (Cilkmem, %d bytes/frame):\n", memBytes)
	fmt.Printf("  serial HWM: %d %s\n", r.SerialHWM, unit)
	fmt.Printf("  %6s %12s %12s", "procs", "exact", "approx")
	if len(simPeaks) > 0 {
		fmt.Printf(" %12s %6s", "sim peak", "ok")
	}
	fmt.Println()
	for _, p := range procs {
		fmt.Printf("  %6d %12d %12d", p, r.ExactAt(p), r.ApproxAt(p))
		if len(simPeaks) > 0 {
			peak := simPeaks[p]
			ok := "yes"
			if peak < r.SerialHWM || peak > r.ExactAt(p) {
				ok = "NO"
			}
			fmt.Printf(" %12d %6s", peak, ok)
		}
		fmt.Println()
	}
}

func pickWorkload(name string, n, grain int64, seed uint64) (vprog.Program, error) {
	switch name {
	case "qsort":
		return vprog.Qsort(n, seed, grain), nil
	case "fib":
		return vprog.Fib(int(n)), nil
	case "matmul":
		return vprog.MatMul(n, 8), nil
	case "nqueens":
		return vprog.NQueens(int(n)), nil
	case "bfs":
		return vprog.BFS(n, 8, 24, seed), nil
	case "spmv":
		return vprog.SpMV(n, 5, 100, grain), nil
	case "treewalk":
		return vprog.TreeWalk(n, seed, 8, 12, 333), nil
	case "loopspawn":
		return vprog.LoopSpawn(n, 100), nil
	case "pfor":
		return vprog.PFor(n, 10, grain), nil
	default:
		return vprog.Program{}, fmt.Errorf("unknown workload %q", name)
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}
