// Cilkload is the serving-layer load harness: an open-loop Poisson load
// generator aimed at examples/serve, sweeping best-effort load while
// measuring per-tenant latency percentiles — the measurement behind the
// claim that sharded weighted injection keeps interactive p99 flat while a
// best-effort flood grows (DESIGN.md §4f).
//
// Open-loop matters: each tenant's arrivals follow an exponential
// inter-arrival clock that does not wait for responses, so a slow server
// faces a growing backlog exactly as a real ingress would (closed-loop
// generators co-ordinate with the victim and hide queueing collapse).
//
// Each sweep step multiplies the best-effort tenants' arrival rates by the
// next -sweep factor while interactive/batch tenants stay at their base
// rate. Per step and tenant, cilkload records sent/ok/rejected/error counts
// and ok-response latency percentiles; the summary compares the interactive
// p99 at the last step against the first:
//
//	go run ./cmd/cilkload -url http://127.0.0.1:8080 \
//	    -tenants 'pro:interactive:50,free:best-effort:100' \
//	    -sweep 1,2,5,10 -dur 3s -maxdegrade 2.0
//
// With -maxdegrade R the exit status is 1 when interactive p99 degraded by
// more than R× across the sweep — the self-gating mode `make bench-serve`
// runs in. Output is JSON (see cmd/benchjson -serve for the diffing side).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	baseURL = flag.String("url", "http://127.0.0.1:8080", "base URL of the serve instance")
	path    = flag.String("path", "/sinsum?n=20000", "request path (with workload query)")
	tenants = flag.String("tenants", "pro:interactive:50,free:best-effort:100",
		"comma-separated tenant:class:rate_rps[:path[:mem]] load specs; class is the class the server maps the tenant to (interactive/batch/best-effort) and decides whether -sweep multiplies the rate; the optional path overrides -path for that tenant (empty keeps the default); the optional mem declares an enforced per-request memory budget in bytes, sent as X-Cilk-Mem-Budget")
	sweep      = flag.String("sweep", "1,2,5,10", "comma-separated best-effort rate multipliers, one sweep step each")
	dur        = flag.Duration("dur", 3*time.Second, "duration of each sweep step")
	settle     = flag.Duration("settle", 300*time.Millisecond, "pause between sweep steps (lets queues drain)")
	timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	seed       = flag.Int64("seed", 1, "RNG seed for the Poisson arrival clocks")
	maxDegrade = flag.Float64("maxdegrade", 0, "fail (exit 1) if interactive p99 at the last step exceeds this multiple of the first step (0 = report only)")
	out        = flag.String("o", "", "output file (default stdout)")
)

// tenantSpec is one -tenants entry.
type tenantSpec struct {
	Tenant string
	Class  string
	Rate   float64 // base arrivals per second
	Path   string  // per-tenant path override ("" = use -path)
	Mem    int64   // per-request memory budget in bytes (0 = none)
}

func parseTenants(spec string) ([]tenantSpec, error) {
	var specs []tenantSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 5)
		if len(fields) < 3 {
			return nil, fmt.Errorf("bad tenant spec %q (want tenant:class:rate[:path[:mem]])", part)
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad rate in %q", part)
		}
		switch fields[1] {
		case "interactive", "batch", "best-effort":
		default:
			return nil, fmt.Errorf("unknown class %q in %q", fields[1], part)
		}
		ts := tenantSpec{Tenant: fields[0], Class: fields[1], Rate: rate}
		if len(fields) >= 4 {
			ts.Path = fields[3]
		}
		if len(fields) == 5 {
			mem, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil || mem < 1 {
				return nil, fmt.Errorf("bad memory budget in %q (want bytes)", part)
			}
			ts.Mem = mem
		}
		specs = append(specs, ts)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no tenants")
	}
	return specs, nil
}

func parseSweep(spec string) ([]float64, error) {
	var mults []float64
	for _, part := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad multiplier %q", part)
		}
		mults = append(mults, m)
	}
	if len(mults) == 0 {
		return nil, fmt.Errorf("empty sweep")
	}
	return mults, nil
}

// tenantResult is one tenant's measurement at one sweep step.
type tenantResult struct {
	Tenant  string  `json:"tenant"`
	Class   string  `json:"class"`
	RateRPS float64 `json:"rate_rps"`
	Sent    int     `json:"sent"`
	OK      int     `json:"ok"`
	// Rejected counts admission shedding (HTTP 429/503); Errors is
	// everything else that wasn't a 200.
	Rejected int           `json:"rejected"`
	Errors   int           `json:"errors"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
}

type step struct {
	Multiplier float64        `json:"multiplier"`
	Tenants    []tenantResult `json:"tenants"`
}

// series is the flat name → percentiles view of the sweep, the shape
// cmd/benchjson -serve diffs across commits ("tenant@x<multiplier>").
type series struct {
	Name string        `json:"name"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	// Filled by benchjson -serve -baseline.
	BaselineP99 time.Duration `json:"baseline_p99_ns,omitempty"`
	P99DeltaPct float64       `json:"p99_delta_pct,omitempty"`
}

type degrade struct {
	Tenant   string        `json:"tenant"`
	P99First time.Duration `json:"p99_first_ns"`
	P99Last  time.Duration `json:"p99_last_ns"`
	Ratio    float64       `json:"ratio"`
}

type report struct {
	URL     string    `json:"url"`
	Path    string    `json:"path"`
	Sweep   []float64 `json:"sweep"`
	StepDur string    `json:"step_dur"`
	Steps   []step    `json:"steps"`
	Series  []series  `json:"series"`
	// Degrade summarizes each interactive tenant's p99 at the last sweep
	// step relative to the first — the starvation-resistance headline.
	Degrade []degrade `json:"degrade,omitempty"`
}

// collector gathers one tenant's responses during one step.
type collector struct {
	mu       sync.Mutex
	sent     int
	ok       int
	rejected int
	errors   int
	lats     []time.Duration
}

func (c *collector) record(lat time.Duration, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err != nil:
		c.errors++
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		c.rejected++
	case status == http.StatusOK:
		c.ok++
		c.lats = append(c.lats, lat)
	default:
		c.errors++
	}
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fire launches one tenant's open-loop Poisson arrivals for one step and
// blocks until the step window closes and every in-flight request returned.
func fire(client *http.Client, url, tenant string, mem int64, rate float64, stepDur time.Duration, rng *rand.Rand, col *collector) {
	var wg sync.WaitGroup
	end := time.Now().Add(stepDur)
	next := time.Now()
	for {
		// Exponential inter-arrival at λ = rate: the open-loop clock
		// advances regardless of how the server is doing.
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.After(end) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		col.mu.Lock()
		col.sent++
		col.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("GET", url, nil)
			if err != nil {
				col.record(0, 0, err)
				return
			}
			if tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			if mem > 0 {
				req.Header.Set("X-Cilk-Mem-Budget", strconv.FormatInt(mem, 10))
			}
			start := time.Now()
			resp, err := client.Do(req)
			lat := time.Since(start)
			if err != nil {
				col.record(lat, 0, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			col.record(lat, resp.StatusCode, nil)
		}()
	}
	wg.Wait()
}

func main() {
	flag.Parse()
	specs, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cilkload:", err)
		os.Exit(2)
	}
	mults, err := parseSweep(*sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cilkload:", err)
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	base := strings.TrimRight(*baseURL, "/")

	rep := report{URL: *baseURL, Path: *path, Sweep: mults, StepDur: dur.String()}
	for stepIdx, mult := range mults {
		st := step{Multiplier: mult}
		cols := make([]*collector, len(specs))
		var wg sync.WaitGroup
		for i, sp := range specs {
			rate := sp.Rate
			if sp.Class == "best-effort" {
				rate *= mult
			}
			cols[i] = &collector{}
			// Per-tenant, per-step derived seed keeps every arrival clock
			// deterministic and independent.
			rng := rand.New(rand.NewSource(*seed + int64(stepIdx)*1000 + int64(i)))
			url := base + *path
			if sp.Path != "" {
				url = base + sp.Path
			}
			wg.Add(1)
			go func(url string, sp tenantSpec, rate float64, col *collector, rng *rand.Rand) {
				defer wg.Done()
				fire(client, url, sp.Tenant, sp.Mem, rate, *dur, rng, col)
			}(url, sp, rate, cols[i], rng)
		}
		wg.Wait()
		for i, sp := range specs {
			col := cols[i]
			sort.Slice(col.lats, func(a, b int) bool { return col.lats[a] < col.lats[b] })
			rate := sp.Rate
			if sp.Class == "best-effort" {
				rate *= mult
			}
			tr := tenantResult{
				Tenant: sp.Tenant, Class: sp.Class, RateRPS: rate,
				Sent: col.sent, OK: col.ok, Rejected: col.rejected, Errors: col.errors,
				P50: percentile(col.lats, 0.50),
				P95: percentile(col.lats, 0.95),
				P99: percentile(col.lats, 0.99),
			}
			st.Tenants = append(st.Tenants, tr)
			rep.Series = append(rep.Series, series{
				Name: fmt.Sprintf("%s@x%g", sp.Tenant, mult),
				P50:  tr.P50, P95: tr.P95, P99: tr.P99,
			})
			fmt.Fprintf(os.Stderr, "cilkload: x%-4g %-12s %-12s rate=%-6.4g sent=%-5d ok=%-5d rej=%-4d err=%-4d p50=%-12v p99=%v\n",
				mult, sp.Tenant, sp.Class, rate, col.sent, col.ok, col.rejected, col.errors, tr.P50, tr.P99)
		}
		rep.Steps = append(rep.Steps, st)
		if *settle > 0 && stepIdx < len(mults)-1 {
			time.Sleep(*settle)
		}
	}

	// Degradation summary: each interactive tenant's p99 at the last step
	// vs. the first.
	failed := false
	for i, sp := range specs {
		if sp.Class != "interactive" || len(rep.Steps) < 2 {
			continue
		}
		first := rep.Steps[0].Tenants[i]
		last := rep.Steps[len(rep.Steps)-1].Tenants[i]
		d := degrade{Tenant: sp.Tenant, P99First: first.P99, P99Last: last.P99}
		if first.P99 > 0 {
			d.Ratio = float64(last.P99) / float64(first.P99)
		}
		rep.Degrade = append(rep.Degrade, d)
		fmt.Fprintf(os.Stderr, "cilkload: %s interactive p99 %v -> %v (%.2fx) across best-effort x%g -> x%g\n",
			sp.Tenant, first.P99, last.P99, d.Ratio, mults[0], mults[len(mults)-1])
		if *maxDegrade > 0 && d.Ratio > *maxDegrade {
			fmt.Fprintf(os.Stderr, "cilkload: FAIL %s p99 degraded %.2fx > %.2fx budget\n", sp.Tenant, d.Ratio, *maxDegrade)
			failed = true
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cilkload:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "cilkload:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
