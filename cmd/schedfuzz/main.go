// Command schedfuzz is the schedule fuzzer for the work-stealing runtime:
// it executes property suites (loop exactly-once, ordered reducer folds,
// spawn-tree determinism, cancellation at-most-once, drain-never-strands,
// domain-partitioned determinism, memory-accounting non-negativity) under
// thousands of seeded fault schedules — forced steal/claim failures,
// stretched race windows, dropped and duplicated wakeups, leaked pool
// objects — with the runtime invariant checker and stall watchdog armed.
//
// Every trial is reproducible: the fault schedule is a pure function of its
// seed. A failing trial is re-run under shrunken fault plans until no rule
// can be removed or attenuated, and the minimal failing script is printed
// as JSON alongside the seed.
//
// Usage:
//
//	schedfuzz -trials 1000 -seed 1            # seeds 1..1000
//	schedfuzz -corpus testdata/corpus.json    # pinned regression seeds first
//	schedfuzz -run 12345 -v                   # reproduce one seed verbosely
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cilkgo/internal/hyper"
	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
	"cilkgo/internal/schedsan"
)

var (
	trials   = flag.Int("trials", 200, "number of random fault schedules to run")
	seed     = flag.Int64("seed", 1, "first seed; trial i uses seed+i")
	runOne   = flag.Int64("run", 0, "run exactly one seed and exit (0 = disabled)")
	corpus   = flag.String("corpus", "", "JSON file of pinned regression seeds to run first")
	stall    = flag.Duration("stall", 2*time.Second, "watchdog threshold per trial")
	timeout  = flag.Duration("timeout", 30*time.Second, "hard deadline per trial (a hang is a finding)")
	shrink   = flag.Bool("shrink", true, "shrink failing plans to minimal fault scripts")
	verbose  = flag.Bool("v", false, "log every trial")
	maxFails = flag.Int("maxfails", 3, "stop after this many distinct findings")
)

// corpusFile is the pinned-seed format: seeds that previously found bugs
// (regression) plus a representative passing set.
type corpusFile struct {
	Comment string  `json:"comment,omitempty"`
	Seeds   []int64 `json:"seeds"`
}

func main() {
	flag.Parse()
	var seeds []int64
	if *corpus != "" {
		b, err := os.ReadFile(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedfuzz:", err)
			os.Exit(2)
		}
		var cf corpusFile
		if err := json.Unmarshal(b, &cf); err != nil {
			fmt.Fprintln(os.Stderr, "schedfuzz: corpus:", err)
			os.Exit(2)
		}
		seeds = append(seeds, cf.Seeds...)
	}
	if *runOne != 0 {
		seeds = []int64{*runOne}
	} else {
		for i := 0; i < *trials; i++ {
			seeds = append(seeds, *seed+int64(i))
		}
	}

	start := time.Now()
	failures := 0
	var faultsTotal int64
	for i, s := range seeds {
		plan := schedsan.RandomPlan(s)
		res := runTrial(plan, *stall, *timeout)
		faultsTotal += res.faults
		if *verbose {
			fmt.Printf("seed %d: %s (%d faults injected)\n", s, res.status(), res.faults)
		}
		if res.ok() {
			continue
		}
		failures++
		fmt.Printf("\nFAIL seed %d: %s\nplan: %s\n", s, res.status(), plan)
		for _, f := range res.list() {
			fmt.Printf("  %s\n", f)
		}
		if *shrink {
			min := schedsan.Shrink(plan, func(cand schedsan.Plan) bool {
				for k := 0; k < 2; k++ {
					if !runTrial(cand, *stall, *timeout).ok() {
						return true
					}
				}
				return false
			})
			fmt.Printf("minimal failing fault script: %s\n", min)
		}
		if failures >= *maxFails {
			fmt.Printf("stopping after %d findings (%d/%d trials)\n", failures, i+1, len(seeds))
			break
		}
	}
	fmt.Printf("schedfuzz: %d trials, %d failures, %d faults injected, %v\n",
		len(seeds), failures, faultsTotal, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// trialResult collects one trial's findings: property failures, invariant
// violations, stall reports, and hangs. Internally locked because a hung
// trial's property goroutine is leaked and may still report findings after
// the trial's deadline fires.
type trialResult struct {
	mu       sync.Mutex
	findings []string
	faults   int64
}

func (r *trialResult) ok() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.findings) == 0
}

func (r *trialResult) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.findings...)
}

func (r *trialResult) status() string {
	r.mu.Lock()
	n := len(r.findings)
	r.mu.Unlock()
	if n == 0 {
		return "ok"
	}
	return fmt.Sprintf("%d findings", n)
}

func (r *trialResult) addf(format string, args ...any) {
	r.mu.Lock()
	r.findings = append(r.findings, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *trialResult) addFaults(n int64) {
	r.mu.Lock()
	r.faults += n
	r.mu.Unlock()
}

// runTrial executes the full property suite on a fresh runtime under the
// given fault plan. Worker count and property order derive from the plan
// seed, so the whole trial is a function of the seed.
func runTrial(plan schedsan.Plan, stallAfter, deadline time.Duration) *trialResult {
	res := &trialResult{}
	opts := schedsan.Options{
		Plan:        plan,
		Invariants:  true,
		StallAfter:  stallAfter,
		OnViolation: func(rep *schedsan.Report) { res.addf("%s", rep) },
		// Every random plan is liveness-safe, so a watchdog finding under one
		// is a scheduler bug (or a starved CI box; the threshold is generous).
		// The rescue broadcast lets the trial still finish either way.
		OnStall: func(rep *schedsan.Report) { res.addf("%s", rep) },
	}
	workers := 2 << (plan.Seed % 3) // 2, 4, or 8
	rt := sched.New(sched.WithWorkers(workers), sched.WithSanitize(opts))

	done := make(chan struct{})
	go func() {
		defer close(done)
		properties(rt, res, plan.Seed, opts)
	}()
	select {
	case <-done:
		rt.Shutdown() // runs the post-drain stranding checks
	case <-time.After(deadline):
		res.addf("trial hung: no completion within %v (stall report: %v)", deadline, rt.StallReport())
		// Leak the runtime rather than risk blocking on a hung Shutdown.
	}
	if inj := rt.Sanitizer(); inj != nil {
		res.addFaults(inj.TotalFired())
	}
	return res
}

// properties is the suite every trial runs. Each property is a correctness
// statement the fault schedule must not be able to break. seed parameterizes
// the randomized shapes (the mixed-QoS storm) so each trial stays a pure
// function of its plan seed. opts carries the trial's sanitizer
// configuration for properties that build their own runtime (property 6's
// domain-partitioned one).
func properties(rt *sched.Runtime, res *trialResult, seed int64, opts schedsan.Options) {
	addf := res.addf

	// Property 1: lazy-loop exactly-once. Every iteration of a cilk_for
	// executes exactly once under any fault schedule.
	{
		const n, grain = 4000, 3
		counts := make([]int32, n)
		var sum atomic.Int64
		stats, err := rt.RunWithStats(func(c *sched.Context) {
			pfor.ForGrain(c, 0, n, grain, func(c *sched.Context, i int) {
				atomic.AddInt32(&counts[i], 1)
				sum.Add(int64(i))
			})
		})
		if err != nil {
			addf("loop property: unexpected error %v", err)
		}
		for i := range counts {
			if c := atomic.LoadInt32(&counts[i]); c != 1 {
				addf("loop property: iteration %d ran %d times, want exactly once", i, c)
				break
			}
		}
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			addf("loop property: iteration sum %d, want %d", sum.Load(), want)
		}
		if stats.TasksSkipped != 0 {
			addf("loop property: %d tasks skipped on an uncancelled run", stats.TasksSkipped)
		}
	}

	// Property 2: ordered reducer fold. A list-append reducer over an
	// in-order spawn tree must produce the exact serial order, no matter
	// how views migrate, deposit, and fold under faults.
	{
		const n = 1024
		l := hyper.NewListAppend[int]()
		var walk func(c *sched.Context, lo, hi int)
		walk = func(c *sched.Context, lo, hi int) {
			if hi-lo == 1 {
				l.PushBack(c, lo)
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(c *sched.Context) { walk(c, lo, mid) })
			walk(c, mid, hi)
			c.Sync()
		}
		if err := rt.Run(func(c *sched.Context) { walk(c, 0, n) }); err != nil {
			addf("fold property: unexpected error %v", err)
		}
		got := l.Value()
		if len(got) != n {
			addf("fold property: %d elements, want %d", len(got), n)
		} else {
			for i, x := range got {
				if x != i {
					addf("fold property: serial order broken at %d: got %d", i, x)
					break
				}
			}
		}
	}

	// Property 3: spawn-tree determinism. fib's value is wrong if any
	// spawned task is lost, duplicated, or joined early.
	{
		var got int64
		var fib func(c *sched.Context, n int, out *int64)
		fib = func(c *sched.Context, n int, out *int64) {
			if n < 2 {
				*out = int64(n)
				return
			}
			var a, b int64
			c.Spawn(func(c *sched.Context) { fib(c, n-1, &a) })
			fib(c, n-2, &b)
			c.Sync()
			*out = a + b
		}
		stats, err := rt.RunWithStats(func(c *sched.Context) { fib(c, 14, &got) })
		if err != nil {
			addf("fib property: unexpected error %v", err)
		}
		if got != 377 {
			addf("fib property: fib(14) = %d, want 377", got)
		}
		if stats.TasksRun != stats.Spawns {
			addf("fib property: spawns=%d tasksRun=%d, want equal", stats.Spawns, stats.TasksRun)
		}
	}

	// Property 4: cancellation at-most-once. A run cancelled mid-flight may
	// skip iterations but must never run one twice, and must report the
	// deadline error (or finish clean).
	{
		const n = 50_000
		counts := make([]int32, n)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		err := rt.RunCtx(ctx, func(c *sched.Context) {
			pfor.ForGrain(c, 0, n, 8, func(c *sched.Context, i int) {
				atomic.AddInt32(&counts[i], 1)
			})
		})
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			addf("cancel property: unexpected error %v", err)
		}
		for i := range counts {
			if c := atomic.LoadInt32(&counts[i]); c > 1 {
				addf("cancel property: iteration %d ran %d times under cancellation", i, c)
				break
			}
		}
	}

	// Property 5: mixed-QoS submission storms. Concurrent Submits across two
	// tenants with opposing classes and priorities — a random subset carrying
	// time budgets tight enough to cancel mid-flight — must each invoke their
	// body at most once (exactly once when the ticket settles clean), keep
	// per-submission reducer folds in serial order, and fail only with the
	// cancellation sentinels. The storm shape is drawn from the plan seed, so
	// the trial stays reproducible.
	{
		const (
			subs = 24
			n    = 64
		)
		type sub struct {
			tenant   string
			class    sched.QoSClass
			prio     int
			budget   time.Duration // 0 = none
			budgeted bool
		}
		rng := rand.New(rand.NewSource(seed ^ 0x51_70_52_4d))
		classes := []sched.QoSClass{sched.QoSInteractive, sched.QoSBatch, sched.QoSBestEffort}
		shapes := make([]sub, subs)
		for i := range shapes {
			shapes[i] = sub{
				tenant: [2]string{"alpha", "beta"}[i%2],
				class:  classes[rng.Intn(len(classes))],
				prio:   rng.Intn(7) - 3,
			}
			if rng.Intn(3) == 0 {
				shapes[i].budgeted = true
				shapes[i].budget = time.Duration(50+rng.Intn(2000)) * time.Microsecond
			}
		}
		counts := make([]int32, subs)
		views := make([]hyper.ListAppend[int], subs)
		tickets := make([]*sched.Ticket, subs)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < subs; i += 3 {
					sh := shapes[i]
					views[i] = hyper.NewListAppend[int]()
					opts := []sched.RunOption{
						sched.WithTenant(sh.tenant),
						sched.WithQoS(sh.class),
						sched.WithPriority(sh.prio),
					}
					if sh.budgeted {
						opts = append(opts, sched.WithTimeBudget(sh.budget))
					}
					i := i
					tk, err := rt.Submit(context.Background(), func(c *sched.Context) {
						atomic.AddInt32(&counts[i], 1)
						var walk func(c *sched.Context, lo, hi int)
						walk = func(c *sched.Context, lo, hi int) {
							if hi-lo == 1 {
								views[i].PushBack(c, lo)
								return
							}
							mid := (lo + hi) / 2
							c.Spawn(func(c *sched.Context) { walk(c, lo, mid) })
							walk(c, mid, hi)
							c.Sync()
						}
						walk(c, 0, n)
					}, opts...)
					if err != nil {
						addf("storm property: submit %d (%s/%v) rejected: %v", i, sh.tenant, sh.class, err)
						continue
					}
					tickets[i] = tk
				}
			}(g)
		}
		wg.Wait()
		for i, tk := range tickets {
			if tk == nil {
				continue
			}
			err := tk.Wait()
			c := atomic.LoadInt32(&counts[i])
			if c > 1 {
				addf("storm property: submission %d body ran %d times", i, c)
			}
			switch {
			case err == nil:
				if c != 1 {
					addf("storm property: submission %d settled clean but body ran %d times", i, c)
				} else if got := views[i].Value(); len(got) != n {
					addf("storm property: submission %d fold has %d elements, want %d", i, len(got), n)
				} else {
					for j, x := range got {
						if x != j {
							addf("storm property: submission %d serial order broken at %d: got %d", i, j, x)
							break
						}
					}
				}
			case errors.Is(err, sched.ErrDeadlineExceeded) || errors.Is(err, sched.ErrCanceled):
				if !shapes[i].budgeted {
					addf("storm property: unbudgeted submission %d cancelled: %v", i, err)
				}
			default:
				addf("storm property: submission %d failed with non-sentinel error: %v", i, err)
			}
		}
	}

	// Property 6: domain-partitioned determinism. On a runtime split into
	// steal domains — where hunts prefer local victims, escalations can be
	// vetoed (PointDomainEscalate), and affinity re-injection can be dropped
	// (PointAffinity) — a cilk_for still runs every iteration exactly once
	// and a list-append reducer over it still folds in exact serial order.
	// Locality is a performance hint; the fault schedule must not be able to
	// turn it into a correctness difference.
	{
		const n, grain = 3000, 4
		drt := sched.New(sched.WithWorkers(4), sched.WithStealDomains(2),
			sched.WithStealSeed(seed), sched.WithSanitize(opts))
		counts := make([]int32, n)
		l := hyper.NewListAppend[int]()
		err := drt.Run(func(c *sched.Context) {
			pfor.ForGrain(c, 0, n, grain, func(c *sched.Context, i int) {
				atomic.AddInt32(&counts[i], 1)
				l.PushBack(c, i)
			})
		})
		if err != nil {
			addf("domain property: unexpected error %v", err)
		}
		for i := range counts {
			if c := atomic.LoadInt32(&counts[i]); c != 1 {
				addf("domain property: iteration %d ran %d times, want exactly once", i, c)
				break
			}
		}
		got := l.Value()
		if len(got) != n {
			addf("domain property: fold has %d elements, want %d", len(got), n)
		} else {
			for i, x := range got {
				if x != i {
					addf("domain property: serial order broken at %d: got %d", i, x)
					break
				}
			}
		}
		st := drt.Stats()
		if st.LocalSteals+st.RemoteSteals != st.Steals {
			addf("domain property: LocalSteals %d + RemoteSteals %d != Steals %d",
				st.LocalSteals, st.RemoteSteals, st.Steals)
		}
		drt.Shutdown() // post-drain checks include the affinity mailboxes
		if inj := drt.Sanitizer(); inj != nil {
			res.addFaults(inj.TotalFired())
		}
	}

	// Property 7: memory accounting under faults. Budgeted runs whose bodies
	// charge and refund in matched pairs must settle with a non-negative
	// per-run live-byte balance — a forced pool leak (PointRecycle) may
	// strand bytes as a positive residue, but a negative balance is a double
	// refund. Spurious budget trips (PointMemCharge) are legal and must
	// surface only as the budget sentinel; everything else is a finding. The
	// runtime-wide gauge must return to exactly zero once every run settles,
	// leaks included, because it counts frames by liveness, not by pooling.
	{
		const runs = 8
		for i := 0; i < runs; i++ {
			tk, err := rt.Submit(context.Background(), func(c *sched.Context) {
				pfor.ForGrain(c, 0, 512, 4, func(c *sched.Context, j int) {
					c.Charge(1 << 10)
					c.Refund(1 << 10)
				})
			}, sched.WithMemoryBudget(64<<10))
			if err != nil {
				addf("memory property: submit %d rejected: %v", i, err)
				continue
			}
			werr := tk.Wait()
			if werr != nil && !errors.Is(werr, sched.ErrMemoryBudget) {
				addf("memory property: run %d failed with non-sentinel error: %v", i, werr)
			}
			st := tk.Stats()
			if st.MemLiveBytes < 0 {
				addf("memory property: run %d settled with negative live memory %d B", i, st.MemLiveBytes)
			}
			if st.MemPeakBytes < 0 {
				addf("memory property: run %d reports negative peak memory %d B", i, st.MemPeakBytes)
			}
		}
		if live := rt.MemLiveBytes(); live != 0 {
			addf("memory property: runtime live gauge %d B after every run settled, want 0", live)
		}
	}
}
