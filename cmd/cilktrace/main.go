// Cilktrace runs a workload on the parallel work-stealing runtime with
// per-worker event tracing enabled, writes a Chrome trace-event JSON file
// (one track per worker; open in Perfetto or chrome://tracing), and prints
// an ASCII report: per-worker utilization, steal-latency histogram, the
// live-frames high-water series, and — where an analytic dag model exists —
// Cilkview's *predicted* parallelism next to the *observed* one, so the
// paper's §5 burden analysis can finally be compared against a real
// schedule.
//
// The acceptance smoke test from the issue:
//
//	cilktrace -workload fib -n 30 -workers 4 -o trace.json
//
// With -url, cilktrace instead captures a trace from a live server exposing
// the introspection endpoints (cilkgo.DebugHandler, as examples/serve
// mounts): it asks /debug/cilk/trace to record the next -dur of whatever the
// server is executing and saves the Chrome JSON to -o:
//
//	cilktrace -url http://localhost:8080 -dur 2s -o live.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"time"

	"cilkgo"
	"cilkgo/internal/cilkview"
	"cilkgo/internal/sched"
	"cilkgo/internal/trace"
	"cilkgo/internal/vprog"
	"cilkgo/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "fib", "fib | qsort | matmul | nqueens | pfor")
		n        = flag.Int("n", 30, "problem size (fib n, qsort/pfor length, matmul dimension, nqueens board)")
		workers  = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		grain    = flag.Int("grain", 2048, "serial grain size (qsort)")
		seed     = flag.Int64("seed", 1, "workload and steal seed")
		out      = flag.String("o", "trace.json", "Chrome trace-event JSON output path (empty = skip)")
		capacity = flag.Int("capacity", 1<<16, "per-worker trace ring capacity in events")
		buckets  = flag.Int("buckets", 60, "utilization timeline buckets")
		burden   = flag.Int64("burden", 1000, "per-spawn burden for the predicted (Cilkview) profile")
		liveURL  = flag.String("url", "", "capture from a live server's /debug/cilk/trace instead of running a workload (base URL, e.g. http://localhost:8080)")
		liveDur  = flag.Duration("dur", 2*time.Second, "capture window for -url mode")
	)
	flag.Parse()

	if *liveURL != "" {
		if err := captureLive(*liveURL, *liveDur, *out); err != nil {
			fmt.Fprintf(os.Stderr, "cilktrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p := *workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}

	run, prog, err := pickWorkload(*workload, *n, *grain, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rt := cilkgo.New(
		cilkgo.WithWorkers(p),
		cilkgo.WithStealSeed(*seed),
		cilkgo.WithTracing(cilkgo.WithTraceCapacity(*capacity)),
	)
	defer rt.Shutdown()

	tr := rt.Tracer()
	tr.Start()
	stats, runErr := rt.RunWithStats(run)
	snap := tr.Stop()
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "cilktrace: workload failed: %v\n", runErr)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cilkgo.WriteChromeTrace(f, snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events; open in Perfetto or chrome://tracing)\n\n", *out, snap.Events())
	}

	profile := trace.BuildProfile(snap, *buckets)
	fmt.Print(profile.Render())

	fmt.Printf("\nper-run stats: %d spawns, %d tasks, %d steals of this run's tasks, "+
		"max depth %d, live-frame high-water %d\n",
		stats.Spawns, stats.TasksRun, stats.Steals, stats.MaxDepth, stats.MaxLiveFrames)

	// Predicted vs observed: Cilkview's dag-model parallelism against the
	// busy-time parallelism of the schedule that actually ran.
	if prog != nil {
		pv := cilkview.FromProgram(*prog, *burden)
		fmt.Printf("\npredicted vs observed (P = %d workers):\n", p)
		fmt.Printf("  cilkview predicted parallelism          %12.2f\n", pv.Parallelism())
		fmt.Printf("  cilkview burdened parallelism           %12.2f  (burden %d)\n",
			pv.BurdenedParallelism(), *burden)
		fmt.Printf("  observed parallelism (busy time / wall) %12.2f\n", profile.ObservedParallelism())
		fmt.Printf("  speedup upper bound at P (Work/Span laws) %10.2f\n", pv.SpeedupUpper(p))
	} else {
		fmt.Printf("\n(no analytic dag model for %q; predicted-parallelism comparison skipped)\n", *workload)
	}
}

// captureLive asks a live server's /debug/cilk/trace endpoint to record the
// next dur of scheduler activity and writes the returned Chrome trace JSON
// to out. base is the server's base URL; a path already pointing at the
// endpoint is used as-is.
func captureLive(base string, dur time.Duration, out string) error {
	if out == "" {
		return fmt.Errorf("-url mode needs -o (nowhere to save the capture)")
	}
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("bad -url: %v", err)
	}
	if !strings.HasSuffix(u.Path, "/debug/cilk/trace") {
		u.Path = strings.TrimSuffix(u.Path, "/") + "/debug/cilk/trace"
	}
	q := u.Query()
	q.Set("dur", dur.String())
	u.RawQuery = q.Encode()

	// The server blocks for the whole capture window before it responds;
	// give it the window plus slack.
	client := &http.Client{Timeout: dur + 30*time.Second}
	fmt.Printf("capturing %v from %s ...\n", dur, u)
	resp, err := client.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes; open in Perfetto or chrome://tracing)\n", out, n)
	return nil
}

// pickWorkload returns the parallel workload body and, when one exists, the
// matching analytic dag program for the predicted-parallelism comparison.
func pickWorkload(name string, n, grain int, seed int64) (func(*sched.Context), *vprog.Program, error) {
	switch name {
	case "fib":
		prog := vprog.Fib(n)
		return func(c *sched.Context) { workloads.Fib(c, n) }, &prog, nil
	case "qsort":
		data := workloads.RandomFloats(n, seed)
		prog := vprog.Qsort(int64(n), uint64(seed), int64(grain))
		return func(c *sched.Context) { workloads.Qsort(c, data, grain) }, &prog, nil
	case "matmul":
		a, b, out := workloads.NewMatrix(n), workloads.NewMatrix(n), workloads.NewMatrix(n)
		for i := range a.Elts {
			a.Elts[i] = float64(i%7) * 0.25
			b.Elts[i] = float64(i%5) * 0.5
		}
		prog := vprog.MatMul(int64(n), 8)
		return func(c *sched.Context) { workloads.MatMul(c, a, b, out) }, &prog, nil
	case "nqueens":
		return func(c *sched.Context) { workloads.NQueens(c, n) }, nil, nil
	case "pfor":
		a := make([]float64, n)
		prog := vprog.PFor(int64(n), 10, int64(grain))
		return func(c *sched.Context) { workloads.FillSin(c, a) }, &prog, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q (want fib | qsort | matmul | nqueens | pfor)", name)
	}
}
