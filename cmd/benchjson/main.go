// Benchjson converts `go test -bench` output on stdin into a JSON array on
// stdout, one object per benchmark result, so benchmark runs can be
// recorded and diffed across commits (the Makefile's `bench` target pipes
// into it to produce BENCH_trace.json, and `bench-cancel` into
// BENCH_cancel.json).
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson
//
// Repeated samples of the same benchmark (from -count=N) collapse into one
// entry carrying the minimum ns/op — noise only ever adds time — along with
// the sample count and the worst observed ns/op.
//
// With -baseline file.json (a previous benchjson output, e.g. the committed
// seed measurement), each result whose name matches a baseline entry gains
// baseline_ns_per_op and overhead_pct = 100·(now−baseline)/baseline, so the
// recorded JSON carries the cross-commit comparison itself.
//
// With -ab "variant=base,..." (interleaved A/B mode), each named variant is
// diffed against its base *from the same run*: both benchmarks executed in
// one process, interleaved by go test, on the same machine at the same
// moment. The variant entry gains ab_base, ab_base_ns_per_op and
// ab_delta_pct = 100·(variant−base)/base. Unlike -baseline (a committed
// measurement from some other machine on some other day), an A/B pair
// cannot go stale: machine-speed drift cancels because both sides moved
// together. -maxab fails the run (exit 1) when any pair's delta exceeds the
// budget; the default 0 records deltas without gating.
//
// With -gateallocs "name=N,...", the run fails (exit 1) when a named
// benchmark's allocs/op exceeds N. Requires -benchmem output. Allocation
// counts are deterministic — unlike ns/op they do not need minima across
// samples or a noise budget — so the gate is exact.
//
// With -serve, stdin is a cmd/cilkload JSON report instead of go test -bench
// text: the flat latency series ("tenant@xN" → p50/p95/p99) are diffed by
// name against -baseline (a previous cilkload/benchjson -serve output), each
// matched series gains baseline_p99_ns and p99_delta_pct, and the exit
// status is 1 when any series' p99 regressed by more than -maxp99 percent
// (default 10). A missing baseline file passes the report through unchanged,
// so the first run can mint the committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkFib25-8   100  11849193 ns/op  2400 B/op  75 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Set when -count produced repeated samples of this benchmark:
	// ns_per_op above is the fastest of Samples runs, MaxNsPerOp the slowest.
	Samples    int     `json:"samples,omitempty"`
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
	// Set only when -baseline matched this benchmark by name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	OverheadPct     float64 `json:"overhead_pct,omitempty"`
	// Set only when -ab named this benchmark as a variant: the same-run
	// benchmark it was diffed against and the interleaved delta.
	ABBase        string  `json:"ab_base,omitempty"`
	ABBaseNsPerOp float64 `json:"ab_base_ns_per_op,omitempty"`
	ABDeltaPct    float64 `json:"ab_delta_pct,omitempty"`
}

// parsePairs parses "key=value,key=value" flag syntax.
func parsePairs(flagName, s string) (map[string]string, error) {
	m := map[string]string{}
	if s == "" {
		return m, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("-%s: bad pair %q (want name=value)", flagName, pair)
		}
		m[k] = v
	}
	return m, nil
}

// applyAB annotates each variant named in pairs (variant → base) with the
// delta against its base from the same collapsed run. Returns 1 when a pair
// exceeds maxPct (0 disables the gate), 2 on a missing benchmark.
func applyAB(results []result, pairs map[string]string, maxPct float64) int {
	byName := make(map[string]*result, len(results))
	for i := range results {
		byName[results[i].Name] = &results[i]
	}
	exit := 0
	for variant, base := range pairs {
		v, okV := byName[variant]
		b, okB := byName[base]
		if !okV || !okB {
			fmt.Fprintf(os.Stderr, "benchjson: -ab pair %s=%s: benchmark not in input\n", variant, base)
			exit = 2
			continue
		}
		v.ABBase = base
		v.ABBaseNsPerOp = b.NsPerOp
		v.ABDeltaPct = 100 * (v.NsPerOp - b.NsPerOp) / b.NsPerOp
		if maxPct > 0 && v.ABDeltaPct > maxPct {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s %.0f ns/op vs %s %.0f ns/op (%+.1f%% > %.0f%% budget)\n",
				variant, v.NsPerOp, base, b.NsPerOp, v.ABDeltaPct, maxPct)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// applyAllocGates fails benchmarks whose allocs/op exceed their gate.
// Returns 1 on an exceeded gate, 2 on a missing benchmark or bad gate.
func applyAllocGates(results []result, gates map[string]string) int {
	byName := make(map[string]*result, len(results))
	for i := range results {
		byName[results[i].Name] = &results[i]
	}
	exit := 0
	for name, limitStr := range gates {
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -gateallocs %s=%s: %v\n", name, limitStr, err)
			exit = 2
			continue
		}
		r, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: -gateallocs: benchmark %s not in input\n", name)
			exit = 2
			continue
		}
		if r.AllocsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s %d allocs/op (gate: ≤%d)\n", name, r.AllocsPerOp, limit)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// loadBaseline reads a previous benchjson output into a name → ns/op map.
func loadBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var prev []result
	if err := json.NewDecoder(f).Decode(&prev); err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(prev))
	for _, r := range prev {
		m[r.Name] = r.NsPerOp
	}
	return m, nil
}

// collapse merges repeated samples of the same benchmark (go test -count=N)
// into one entry per name, in first-appearance order, keeping the sample
// whose ns/op is lowest and recording the spread.
func collapse(in []result) []result {
	var order []string
	best := make(map[string]result, len(in))
	for _, r := range in {
		prev, seen := best[r.Name]
		if !seen {
			order = append(order, r.Name)
			r.Samples = 1
			r.MaxNsPerOp = r.NsPerOp
			best[r.Name] = r
			continue
		}
		max := prev.MaxNsPerOp
		if r.NsPerOp > max {
			max = r.NsPerOp
		}
		if r.NsPerOp < prev.NsPerOp {
			r.Samples, r.MaxNsPerOp = prev.Samples+1, max
			best[r.Name] = r
		} else {
			prev.Samples, prev.MaxNsPerOp = prev.Samples+1, max
			best[r.Name] = prev
		}
	}
	out := make([]result, 0, len(order))
	for _, name := range order {
		r := best[name]
		if r.Samples == 1 {
			r.Samples, r.MaxNsPerOp = 0, 0 // omitempty: single samples stay terse
		}
		out = append(out, r)
	}
	return out
}

// serveSeries is one latency series of a cilkload report (see
// cmd/cilkload's series type — field-compatible by construction).
type serveSeries struct {
	Name        string  `json:"name"`
	P50         int64   `json:"p50_ns"`
	P95         int64   `json:"p95_ns"`
	P99         int64   `json:"p99_ns"`
	BaselineP99 int64   `json:"baseline_p99_ns,omitempty"`
	P99DeltaPct float64 `json:"p99_delta_pct,omitempty"`
}

// serveReport mirrors cmd/cilkload's output shape: the series are parsed for
// diffing, everything else round-trips untouched.
type serveReport struct {
	URL     string          `json:"url"`
	Path    string          `json:"path"`
	Sweep   []float64       `json:"sweep"`
	StepDur string          `json:"step_dur"`
	Steps   json.RawMessage `json:"steps"`
	Series  []serveSeries   `json:"series"`
	Degrade json.RawMessage `json:"degrade,omitempty"`
}

// serveMain is the -serve mode: diff a cilkload report's latency percentiles
// against a baseline report by series name, failing on p99 regressions past
// maxP99Pct. Returns the exit status.
func serveMain(baselinePath string, maxP99Pct float64) int {
	var rep serveReport
	if err := json.NewDecoder(os.Stdin).Decode(&rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad cilkload report:", err)
		return 2
	}
	baseline := map[string]int64{}
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			// First run: no baseline committed yet; emit the report as-is so
			// it can become the baseline.
			fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); passing report through\n", err)
		} else {
			var prev serveReport
			err := json.NewDecoder(f).Decode(&prev)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad baseline:", err)
				return 2
			}
			for _, s := range prev.Series {
				baseline[s.Name] = s.P99
			}
		}
	}
	exit := 0
	for i := range rep.Series {
		s := &rep.Series[i]
		base, ok := baseline[s.Name]
		if !ok || base <= 0 {
			continue
		}
		s.BaselineP99 = base
		s.P99DeltaPct = 100 * float64(s.P99-base) / float64(base)
		if s.P99DeltaPct > maxP99Pct {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s p99 %.3fms vs baseline %.3fms (%+.1f%% > %.0f%% budget)\n",
				s.Name, float64(s.P99)/1e6, float64(base)/1e6, s.P99DeltaPct, maxP99Pct)
			exit = 1
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	return exit
}

func main() {
	baselinePath := flag.String("baseline", "", "previous benchjson output to diff against")
	serveMode := flag.Bool("serve", false, "stdin is a cmd/cilkload JSON report: diff latency percentiles by series name instead of parsing go test -bench text")
	maxP99 := flag.Float64("maxp99", 10, "with -serve: fail when a series' p99 regressed by more than this percent vs. the baseline")
	abPairs := flag.String("ab", "", "interleaved A/B pairs 'variant=base,...': diff each variant against its base from this same run")
	maxAB := flag.Float64("maxab", 0, "with -ab: fail when a variant is slower than its base by more than this percent (0 = record only)")
	gateAllocs := flag.String("gateallocs", "", "allocation gates 'name=N,...': fail when a benchmark exceeds N allocs/op")
	flag.Parse()
	if *serveMode {
		os.Exit(serveMain(*baselinePath, *maxP99))
	}
	var baseline map[string]float64
	if *baselinePath != "" {
		var err error
		if baseline, err = loadBaseline(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: fields[0], Procs: 1}
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				r.Name, r.Procs = fields[0][:i], p
			}
		}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	results = collapse(results)
	for i := range results {
		if base, ok := baseline[results[i].Name]; ok && base > 0 {
			results[i].BaselineNsPerOp = base
			results[i].OverheadPct = 100 * (results[i].NsPerOp - base) / base
		}
	}
	exit := 0
	if *abPairs != "" {
		pairs, err := parsePairs("ab", *abPairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if e := applyAB(results, pairs, *maxAB); e > exit {
			exit = e
		}
	}
	if *gateAllocs != "" {
		gates, err := parsePairs("gateallocs", *gateAllocs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if e := applyAllocGates(results, gates); e > exit {
			exit = e
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Exit(exit)
}
