// Benchjson converts `go test -bench` output on stdin into a JSON array on
// stdout, one object per benchmark result, so benchmark runs can be
// recorded and diffed across commits (the Makefile's `bench` target pipes
// into it to produce BENCH_trace.json, and `bench-cancel` into
// BENCH_cancel.json).
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson
//
// Repeated samples of the same benchmark (from -count=N) collapse into one
// entry carrying the minimum ns/op — noise only ever adds time — along with
// the sample count and the worst observed ns/op.
//
// With -baseline file.json (a previous benchjson output, e.g. the committed
// seed measurement), each result whose name matches a baseline entry gains
// baseline_ns_per_op and overhead_pct = 100·(now−baseline)/baseline, so the
// recorded JSON carries the cross-commit comparison itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkFib25-8   100  11849193 ns/op  2400 B/op  75 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Set when -count produced repeated samples of this benchmark:
	// ns_per_op above is the fastest of Samples runs, MaxNsPerOp the slowest.
	Samples    int     `json:"samples,omitempty"`
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
	// Set only when -baseline matched this benchmark by name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	OverheadPct     float64 `json:"overhead_pct,omitempty"`
}

// loadBaseline reads a previous benchjson output into a name → ns/op map.
func loadBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var prev []result
	if err := json.NewDecoder(f).Decode(&prev); err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(prev))
	for _, r := range prev {
		m[r.Name] = r.NsPerOp
	}
	return m, nil
}

// collapse merges repeated samples of the same benchmark (go test -count=N)
// into one entry per name, in first-appearance order, keeping the sample
// whose ns/op is lowest and recording the spread.
func collapse(in []result) []result {
	var order []string
	best := make(map[string]result, len(in))
	for _, r := range in {
		prev, seen := best[r.Name]
		if !seen {
			order = append(order, r.Name)
			r.Samples = 1
			r.MaxNsPerOp = r.NsPerOp
			best[r.Name] = r
			continue
		}
		max := prev.MaxNsPerOp
		if r.NsPerOp > max {
			max = r.NsPerOp
		}
		if r.NsPerOp < prev.NsPerOp {
			r.Samples, r.MaxNsPerOp = prev.Samples+1, max
			best[r.Name] = r
		} else {
			prev.Samples, prev.MaxNsPerOp = prev.Samples+1, max
			best[r.Name] = prev
		}
	}
	out := make([]result, 0, len(order))
	for _, name := range order {
		r := best[name]
		if r.Samples == 1 {
			r.Samples, r.MaxNsPerOp = 0, 0 // omitempty: single samples stay terse
		}
		out = append(out, r)
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "", "previous benchjson output to diff against")
	flag.Parse()
	var baseline map[string]float64
	if *baselinePath != "" {
		var err error
		if baseline, err = loadBaseline(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: fields[0], Procs: 1}
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				r.Name, r.Procs = fields[0][:i], p
			}
		}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	results = collapse(results)
	for i := range results {
		if base, ok := baseline[results[i].Name]; ok && base > 0 {
			results[i].BaselineNsPerOp = base
			results[i].OverheadPct = 100 * (results[i].NsPerOp - base) / base
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
