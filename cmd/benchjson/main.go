// Benchjson converts `go test -bench` output on stdin into a JSON array on
// stdout, one object per benchmark result, so benchmark runs can be
// recorded and diffed across commits (the Makefile's `bench` target pipes
// into it to produce BENCH_trace.json).
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkFib25-8   100  11849193 ns/op  2400 B/op  75 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: fields[0], Procs: 1}
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				r.Name, r.Procs = fields[0][:i], p
			}
		}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
