// Cilksim sweeps the work-stealing scheduler simulator over processor
// counts for a named workload and prints T_P, speedup, utilization, steal
// counts and stack occupancy — the machinery behind experiments E4–E6 and
// E8 (see DESIGN.md).
//
//	cilksim -workload qsort -n 100000000 -grain 2048 -procs 1,2,4,8,16,32
//	cilksim -workload treewalk-mutex -n 30000 -handoff 300 -procs 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cilkgo/internal/sim"
	"cilkgo/internal/vprog"
)

func main() {
	var (
		workload  = flag.String("workload", "fib", "qsort | fib | matmul | bfs | spmv | treewalk | treewalk-mutex | loopspawn | pfor")
		n         = flag.Int64("n", 25, "problem size")
		grain     = flag.Int64("grain", 64, "serial grain size")
		seed      = flag.Int64("seed", 1, "workload and schedule seed")
		stealCost = flag.Int64("stealcost", 1, "virtual cost per steal attempt")
		spawnCost = flag.Int64("spawncost", 0, "virtual overhead per spawn")
		handoff   = flag.Int64("handoff", 0, "lock migration penalty for Critical sections")
		procsFlag = flag.String("procs", "1,2,4,8,16", "processor counts")
	)
	flag.Parse()

	prog, err := pickWorkload(*workload, *n, *grain, uint64(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m := vprog.Analyze(prog)
	fmt.Printf("%s: work=%d span=%d parallelism=%.2f spawns=%d depth=%d\n\n",
		prog.Name, m.Work, m.Span, m.Parallelism, m.Spawns, m.MaxDepth)
	fmt.Printf("%5s %14s %9s %6s %12s %12s %9s %10s\n",
		"P", "T_P", "speedup", "util", "steals", "attempts", "max-live", "lock-wait")
	for _, part := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "bad processor count %q\n", part)
			os.Exit(2)
		}
		r, err := sim.Run(prog, sim.Config{
			Procs:       p,
			StealCost:   *stealCost,
			SpawnCost:   *spawnCost,
			LockHandoff: *handoff,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "P=%d: %v\n", p, err)
			os.Exit(1)
		}
		fmt.Printf("%5d %14d %9.2f %6.2f %12d %12d %9d %10d\n",
			p, r.Time, r.Speedup(m.Work), r.Utilization(),
			r.Steals, r.StealAttempts, r.MaxLiveFrames, r.LockWait)
	}
}

func pickWorkload(name string, n, grain int64, seed uint64) (vprog.Program, error) {
	switch name {
	case "qsort":
		return vprog.Qsort(n, seed, grain), nil
	case "fib":
		return vprog.Fib(int(n)), nil
	case "matmul":
		return vprog.MatMul(n, 8), nil
	case "bfs":
		return vprog.BFS(n, 8, 24, seed), nil
	case "spmv":
		return vprog.SpMV(n, 5, 100, grain), nil
	case "treewalk":
		return vprog.TreeWalk(n, seed, 8, 12, 900), nil
	case "treewalk-mutex":
		return vprog.TreeWalkLocked(n, seed, 8, 12, 900), nil
	case "loopspawn":
		return vprog.LoopSpawn(n, 100), nil
	case "pfor":
		return vprog.PFor(n, 10, grain), nil
	default:
		return vprog.Program{}, fmt.Errorf("unknown workload %q", name)
	}
}
