// Cilkscreen runs a named instrumented program once, serially, under the
// SP-bags race detector (§4 of the paper) and reports every exposed
// determinacy race. Exit status 1 means races were found.
//
//	cilkscreen -program qsort-buggy     # the §4 middle-1 overlap bug
//	cilkscreen -program treewalk-racy   # Fig. 5's global output list
//	cilkscreen -program treewalk-mutex  # Fig. 6: lockset suppresses it
package main

import (
	"flag"
	"fmt"
	"os"

	"cilkgo/internal/cilklock"
	"cilkgo/internal/race"
	"cilkgo/internal/sched"
	"cilkgo/internal/workloads"
)

func main() {
	var (
		program = flag.String("program", "",
			"qsort-buggy | qsort-ok | treewalk-racy | treewalk-mutex | treewalk-reducer")
		n    = flag.Int("n", 256, "problem size")
		seed = flag.Int64("seed", 1, "input seed")
	)
	flag.Parse()

	prog, err := pickProgram(*program, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	reports, err := race.Check(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cilkscreen: program failed: %v\n", err)
		os.Exit(2)
	}
	if len(reports) == 0 {
		fmt.Printf("cilkscreen: no races found in %q (guaranteed for this input, §4)\n", *program)
		return
	}
	fmt.Printf("cilkscreen: %d race(s) in %q:\n", len(reports), *program)
	for _, r := range reports {
		fmt.Printf("  %v\n", r)
	}
	os.Exit(1)
}

func pickProgram(name string, n int, seed int64) (func(*sched.Context, *race.Detector), error) {
	switch name {
	case "qsort-buggy":
		return func(c *sched.Context, d *race.Detector) {
			qsortInstrumented(c, d, workloads.RandomFloats(n, seed), 0, n, true)
		}, nil
	case "qsort-ok":
		return func(c *sched.Context, d *race.Detector) {
			qsortInstrumented(c, d, workloads.RandomFloats(n, seed), 0, n, false)
		}, nil
	case "treewalk-racy":
		return func(c *sched.Context, d *race.Detector) {
			walkInstrumented(c, d, workloads.BuildTree(n, seed), nil)
		}, nil
	case "treewalk-mutex":
		mu := cilklock.New("output_list_lock")
		return func(c *sched.Context, d *race.Detector) {
			walkInstrumented(c, d, workloads.BuildTree(n, seed), mu)
		}, nil
	case "treewalk-reducer":
		// With a reducer every strand appends to a private view: there is
		// no shared location to instrument, hence nothing can race (§5).
		return func(c *sched.Context, d *race.Detector) {
			var walk func(c *sched.Context, x *workloads.TreeNode)
			walk = func(c *sched.Context, x *workloads.TreeNode) {
				if x == nil {
					return
				}
				if workloads.HasProperty(x, 3, 0) {
					d.Write(race.Index("view", c.Depth()), "push to private view")
				}
				c.Spawn(func(c *sched.Context) { walk(c, x.Left) })
				walk(c, x.Right)
				c.Sync()
			}
			walk(c, workloads.BuildTree(n, seed))
		}, nil
	case "":
		return nil, fmt.Errorf("cilkscreen: -program is required")
	default:
		return nil, fmt.Errorf("cilkscreen: unknown program %q", name)
	}
}

// qsortInstrumented mirrors Fig. 1's quicksort over an index range,
// reporting every element access to the detector. With overlap=true it
// reproduces §4's bug: qsort(max(begin+1, middle-1), end) overlaps the two
// spawned subproblems by one element.
func qsortInstrumented(c *sched.Context, d *race.Detector, data []float64, lo, hi int, overlap bool) {
	if hi-lo < 2 {
		return
	}
	pivot := data[lo]
	mid := lo
	for i := lo; i < hi; i++ {
		d.Read(race.Index("a", i), "partition: read")
		if data[i] < pivot {
			data[i], data[mid] = data[mid], data[i]
			mid++
		}
		d.Write(race.Index("a", i), "partition: write")
	}
	if mid == lo {
		mid = lo + 1
	}
	left, right := mid, max(lo+1, mid)
	if overlap {
		right = max(lo+1, mid-1)
	}
	c.Spawn(func(c *sched.Context) { qsortInstrumented(c, d, data, lo, left, overlap) })
	qsortInstrumented(c, d, data, right, hi, overlap)
	c.Sync()
}

// walkInstrumented is the Fig. 5/6 tree walk with the output list as one
// shared location; mu != nil adds the Fig. 6 locking protocol.
func walkInstrumented(c *sched.Context, d *race.Detector, x *workloads.TreeNode, mu *cilklock.Mutex) {
	if x == nil {
		return
	}
	if workloads.HasProperty(x, 3, 0) {
		if mu != nil {
			mu.Lock()
		}
		d.Read("output_list", "walk: read list tail")
		d.Write("output_list", "walk: output_list.push_back(x)")
		if mu != nil {
			mu.Unlock()
		}
	}
	c.Spawn(func(c *sched.Context) { walkInstrumented(c, d, x.Left, mu) })
	walkInstrumented(c, d, x.Right, mu)
	c.Sync()
}
