// Experiment harness: one benchmark per paper artifact (figure, table, or
// quantitative claim), E1–E12 as indexed in DESIGN.md. Each benchmark
// recomputes its experiment and reports the headline quantities as
// benchmark metrics, printing the full table the paper's figure/claim
// corresponds to. Regenerate everything with:
//
//	go test -bench=. -benchmem ./...
//
// EXPERIMENTS.md records paper-vs-measured for each experiment.
package cilkgo_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cilkgo"
	"cilkgo/internal/amdahl"
	"cilkgo/internal/cilklock"
	"cilkgo/internal/cilkview"
	"cilkgo/internal/dag"
	"cilkgo/internal/hyper"
	"cilkgo/internal/race"
	"cilkgo/internal/sched"
	"cilkgo/internal/sim"
	"cilkgo/internal/vprog"
	"cilkgo/internal/workloads"
)

// printOnce guards the human-readable tables so repeated b.N iterations
// print each experiment's table a single time.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// BenchmarkE1Fig2Dag reproduces Figure 2: the 18-vertex example dag with
// work 18, span 9 and parallelism 2, including the paper's precedence
// examples 1≺2, 6≺12 and 4‖9.
func BenchmarkE1Fig2Dag(b *testing.B) {
	var m dag.Metrics
	for i := 0; i < b.N; i++ {
		g, nodes := dag.Fig2()
		var err error
		m, err = g.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		if !g.Precedes(nodes[1], nodes[2]) || !g.Precedes(nodes[6], nodes[12]) || !g.Parallel(nodes[4], nodes[9]) {
			b.Fatal("Fig. 2 precedence relations violated")
		}
	}
	b.ReportMetric(float64(m.Work), "work")
	b.ReportMetric(float64(m.Span), "span")
	b.ReportMetric(m.Parallelism, "parallelism")
	once("E1", func() {
		fmt.Printf("\n[E1/Fig2] work=%d span=%d parallelism=%.0f (paper: 18, 9, 2)\n",
			m.Work, m.Span, m.Parallelism)
	})
}

// BenchmarkE2QsortProfileFig3 reproduces Figure 3: the parallelism profile
// of quicksorting 10⁸ numbers — the span-law ceiling (paper: 10.31; the
// exact constant depends on pivot luck and the serial-sort cost model),
// the work-law slope-1 line, the burdened lower-bound curve, and measured
// (simulated) speedups lying between them.
func BenchmarkE2QsortProfileFig3(b *testing.B) {
	const n = 100_000_000
	prog := vprog.Qsort(n, 1, 2048)
	var profile cilkview.Profile
	var measured []cilkview.Point
	for i := 0; i < b.N; i++ {
		profile = cilkview.FromProgram(prog, 1000)
		measured = measured[:0]
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			r, err := sim.Run(prog, sim.Config{Procs: p, StealCost: 100, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			measured = append(measured, cilkview.Point{Procs: p, Speedup: r.Speedup(profile.Work)})
		}
	}
	b.ReportMetric(profile.Parallelism(), "parallelism")
	b.ReportMetric(profile.BurdenedParallelism(), "burdened_parallelism")
	for _, m := range measured {
		if m.Speedup > profile.SpeedupUpper(m.Procs)+0.01 {
			b.Fatalf("P=%d: measured speedup %.2f exceeds the upper bound", m.Procs, m.Speedup)
		}
	}
	once("E2", func() {
		fmt.Printf("\n[E2/Fig3] quicksort of 1e8 numbers (paper ceiling: 10.31)\n")
		fmt.Print(cilkview.Render(profile, []int{1, 2, 4, 8, 16, 32}, measured))
	})
}

// BenchmarkE3SerialOverhead measures the §3 claim that on a single core
// typical programs run with negligible overhead (< 2%): the ratio of the
// 1-worker runtime execution to the plain serial Go program. Quicksort,
// matmul and the tree walk are the "typical programs"; fib, whose leaves
// are a single addition, is the known worst case for any spawn mechanism
// and is reported for honesty.
func BenchmarkE3SerialOverhead(b *testing.B) {
	type row struct {
		name     string
		overhead float64
	}
	var rows []row
	measure := func(name string, serial func(), parallel func(rt *cilkgo.Runtime)) {
		rt := cilkgo.New(cilkgo.WithWorkers(1))
		defer rt.Shutdown()
		// Warm up once, then time the better of 3 runs of each.
		serialT, parT := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			serial()
			if d := time.Since(t0); d < serialT {
				serialT = d
			}
			t0 = time.Now()
			parallel(rt)
			if d := time.Since(t0); d < parT {
				parT = d
			}
		}
		rows = append(rows, row{name, float64(parT)/float64(serialT) - 1})
	}
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		const n = 300_000
		base := workloads.RandomFloats(n, 1)
		measure("qsort(3e5,grain=256)",
			func() {
				d := append([]float64(nil), base...)
				workloads.SerialQsort(d, 256)
			},
			func(rt *cilkgo.Runtime) {
				d := append([]float64(nil), base...)
				if err := rt.Run(func(c *cilkgo.Context) { workloads.Qsort(c, d, 256) }); err != nil {
					b.Fatal(err)
				}
			})
		const mn = 192
		a, m2 := workloads.NewMatrix(mn), workloads.NewMatrix(mn)
		for i := range a.Elts {
			a.Elts[i] = float64(i % 97)
			m2.Elts[i] = float64(i % 89)
		}
		out := workloads.NewMatrix(mn)
		measure("matmul(192)",
			func() { workloads.SerialMatMul(a, m2, out) },
			func(rt *cilkgo.Runtime) {
				if err := rt.Run(func(c *cilkgo.Context) { workloads.MatMul(c, a, m2, out) }); err != nil {
					b.Fatal(err)
				}
			})
		tree := workloads.BuildTree(120_000, 5)
		measure("treewalk(1.2e5,reducer)",
			func() {
				var out []*workloads.TreeNode
				workloads.WalkSerial(tree, 3, 40, &out)
			},
			func(rt *cilkgo.Runtime) {
				l := hyper.NewListAppend[*workloads.TreeNode]()
				if err := rt.Run(func(c *cilkgo.Context) { workloads.WalkReducer(c, tree, 3, 40, l) }); err != nil {
					b.Fatal(err)
				}
			})
		measure("fib(27,worst-case)",
			func() { workloads.SerialFib(27) },
			func(rt *cilkgo.Runtime) {
				if err := rt.Run(func(c *cilkgo.Context) { workloads.Fib(c, 27) }); err != nil {
					b.Fatal(err)
				}
			})
	}
	for _, r := range rows[:3] {
		b.ReportMetric(r.overhead*100, "pct_overhead_"+r.name[:5])
	}
	once("E3", func() {
		fmt.Printf("\n[E3] single-worker overhead vs serial elision (paper: <2%% for typical programs)\n")
		for _, r := range rows {
			fmt.Printf("  %-26s %+7.2f%%\n", r.name, r.overhead*100)
		}
	})
}

// BenchmarkE4GreedyBound validates eq. 3, T_P ≤ T1/P + c·T∞, across
// workloads and machine sizes, reporting the largest constant c observed.
func BenchmarkE4GreedyBound(b *testing.B) {
	progs := []vprog.Program{
		vprog.Fib(18),
		vprog.Qsort(100_000, 3, 64),
		vprog.PFor(50_000, 8, 32),
		vprog.TreeWalk(20_000, 4, 8, 12, 333),
		vprog.RandomFJ(99, 6),
	}
	procs := []int{2, 4, 8, 16, 32, 64}
	var cMax float64
	var worst string
	for i := 0; i < b.N; i++ {
		cMax, worst = 0, ""
		for _, p := range progs {
			m := vprog.Analyze(p)
			for _, np := range procs {
				r, err := sim.Run(p, sim.Config{Procs: np, StealCost: 1, Seed: 13})
				if err != nil {
					b.Fatal(err)
				}
				c := (float64(r.Time) - float64(m.Work)/float64(np)) / float64(m.Span)
				if c > cMax {
					cMax = c
					worst = fmt.Sprintf("%s@P=%d", p.Name, np)
				}
			}
		}
	}
	b.ReportMetric(cMax, "c_max")
	once("E4", func() {
		fmt.Printf("\n[E4] greedy bound T_P ≤ T1/P + c·T∞: max observed c = %.2f (%s)\n", cMax, worst)
	})
}

// BenchmarkE5StackSpace validates the §3.1 space bound S_P ≤ P·S_1 on the
// paper's loop-spawn example (scaled to 10⁶ iterations) and on deep
// recursion, under the simulator's faithful continuation-stealing
// scheduler.
func BenchmarkE5StackSpace(b *testing.B) {
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		worstRatio = 0
		for _, tc := range []vprog.Program{
			vprog.LoopSpawn(1_000_000, 3),
			vprog.Fib(20),
			vprog.Qsort(100_000, 5, 64),
		} {
			m := vprog.Analyze(tc)
			for _, p := range []int{1, 2, 4, 8, 16} {
				r, err := sim.Run(tc, sim.Config{Procs: p, Seed: 21})
				if err != nil {
					b.Fatal(err)
				}
				bound := float64(p) * float64(m.MaxDepth)
				ratio := float64(r.MaxLiveFrames) / bound
				if ratio > worstRatio {
					worstRatio = ratio
				}
				if float64(r.MaxLiveFrames) > bound+1 {
					b.Fatalf("%s P=%d: S_P=%d exceeds P·S1=%d", tc.Name, p, r.MaxLiveFrames, int64(bound))
				}
			}
		}
	}
	// §3.1's contrast: the naive central-queue scheduler on the same
	// loop-spawn example materializes the iteration space.
	naiveProg := vprog.LoopSpawn(1_000_000, 100)
	naive, err := sim.Run(naiveProg, sim.Config{Procs: 4, Seed: 21, Scheduler: sim.CentralQueue})
	if err != nil {
		b.Fatal(err)
	}
	stealing, err := sim.Run(naiveProg, sim.Config{Procs: 4, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(worstRatio, "worst_SP_over_PS1")
	b.ReportMetric(float64(naive.MaxLiveFrames), "naive_live_frames")
	b.ReportMetric(float64(stealing.MaxLiveFrames), "stealing_live_frames")
	once("E5", func() {
		fmt.Printf("\n[E5] stack bound S_P ≤ P·S1: worst observed S_P/(P·S1) = %.3f\n", worstRatio)
		fmt.Printf("  loop-spawn of 1e6 iterations at P=4: live frames %d (work stealing) vs %d (naive central queue)\n",
			stealing.MaxLiveFrames, naive.MaxLiveFrames)
	})
}

// BenchmarkE6StealFrequency quantifies §3.2's "stealing is infrequent":
// steals per spawn across parallelism regimes, and steals vs the O(P·T∞)
// expectation.
func BenchmarkE6StealFrequency(b *testing.B) {
	type row struct {
		name                        string
		parallelism, perSpawn, vsPT float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, p := range []vprog.Program{
			vprog.PFor(1_000_000, 10, 64), // ample parallelism
			vprog.Qsort(1_000_000, 2, 256),
			vprog.SerialParallel(100_000, 100_000, 64), // parallelism ≈ 2
		} {
			m := vprog.Analyze(p)
			r, err := sim.Run(p, sim.Config{Procs: 8, Seed: 17})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{
				name:        p.Name,
				parallelism: m.Parallelism,
				perSpawn:    float64(r.Steals) / float64(max64(r.Spawns, 1)),
				vsPT:        float64(r.Steals) / (8 * float64(m.Span)),
			})
		}
	}
	b.ReportMetric(rows[0].perSpawn, "steals_per_spawn_ample")
	once("E6", func() {
		fmt.Printf("\n[E6] steal frequency at P=8 (paper: steals infrequent when T1/T∞ ≫ P)\n")
		fmt.Printf("  %-34s %14s %14s %14s\n", "workload", "parallelism", "steals/spawn", "steals/(P·T∞)")
		for _, r := range rows {
			fmt.Printf("  %-34s %14.1f %14.4f %14.4f\n", r.name, r.parallelism, r.perSpawn, r.vsPT)
		}
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkE7RaceDetect runs the Cilkscreen detector over the paper's two
// bugs and their fixed versions: the §4 qsort middle-1 overlap and the
// Fig. 5 tree-walk list race (Fig. 6 mutex version must be quiet).
func BenchmarkE7RaceDetect(b *testing.B) {
	type tc struct {
		name string
		prog func(*sched.Context, *race.Detector)
		racy bool
	}
	tree := workloads.BuildTree(512, 3)
	walk := func(mu *cilklock.Mutex) func(*sched.Context, *race.Detector) {
		return func(c *sched.Context, d *race.Detector) {
			var rec func(c *sched.Context, x *workloads.TreeNode)
			rec = func(c *sched.Context, x *workloads.TreeNode) {
				if x == nil {
					return
				}
				if x.Value%3 == 0 {
					if mu != nil {
						mu.Lock()
					}
					d.Read("output_list", "read tail")
					d.Write("output_list", "push_back")
					if mu != nil {
						mu.Unlock()
					}
				}
				c.Spawn(func(c *sched.Context) { rec(c, x.Left) })
				rec(c, x.Right)
				c.Sync()
			}
			rec(c, tree)
		}
	}
	qsortProg := func(overlap bool) func(*sched.Context, *race.Detector) {
		return func(c *sched.Context, d *race.Detector) {
			var rec func(c *sched.Context, lo, hi int)
			rec = func(c *sched.Context, lo, hi int) {
				if hi-lo < 2 {
					return
				}
				for i := lo; i < hi; i++ {
					d.Read(race.Index("a", i), "partition read")
					d.Write(race.Index("a", i), "partition write")
				}
				mid := (lo + hi) / 2
				right := mid
				if overlap {
					right = max(lo+1, mid-1)
				}
				c.Spawn(func(c *sched.Context) { rec(c, lo, mid) })
				rec(c, right, hi)
				c.Sync()
			}
			rec(c, 0, 128)
		}
	}
	cases := []tc{
		{"qsort-buggy(§4 middle-1)", qsortProg(true), true},
		{"qsort-fixed", qsortProg(false), false},
		{"treewalk-racy(Fig.5)", walk(nil), true},
		{"treewalk-mutex(Fig.6)", walk(cilklock.New("L")), false},
	}
	results := make([]int, len(cases))
	for i := 0; i < b.N; i++ {
		for j, c := range cases {
			reports, err := race.Check(c.prog)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = len(reports)
			if (len(reports) > 0) != c.racy {
				b.Fatalf("%s: detector reported %d races, racy=%v", c.name, len(reports), c.racy)
			}
		}
	}
	b.ReportMetric(float64(results[0]), "buggy_qsort_reports")
	once("E7", func() {
		fmt.Printf("\n[E7] Cilkscreen on the paper's bugs (detects iff exposed, §4)\n")
		for j, c := range cases {
			fmt.Printf("  %-26s %d report(s)\n", c.name, results[j])
		}
	})
}

// BenchmarkE8ReducerVsMutex reproduces §5's anecdote: with a hot output
// list and realistic lock-migration cost, the mutex tree walk on 4
// processors is slower than on 1, while the reducer version scales and
// preserves the serial output order. Simulated machine (this host has a
// single core); the real-runtime ordering guarantee is asserted too.
func BenchmarkE8ReducerVsMutex(b *testing.B) {
	const (
		nodes, check, app, hit = 30_000, 8, 12, 900
		handoff                = 300
	)
	locked := vprog.TreeWalkLocked(nodes, 9, check, app, hit)
	free := vprog.TreeWalk(nodes, 9, check, app, hit)
	work := vprog.Analyze(free).Work
	procs := []int{1, 2, 4, 8}
	mutexT := make([]int64, len(procs))
	redT := make([]int64, len(procs))
	for i := 0; i < b.N; i++ {
		for j, p := range procs {
			rm, err := sim.Run(locked, sim.Config{Procs: p, Seed: 3, LockHandoff: handoff})
			if err != nil {
				b.Fatal(err)
			}
			rr, err := sim.Run(free, sim.Config{Procs: p, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			mutexT[j], redT[j] = rm.Time, rr.Time
		}
	}
	if mutexT[2] <= mutexT[0] {
		b.Fatalf("expected the §5 collapse: mutex T_4=%d not worse than T_1=%d", mutexT[2], mutexT[0])
	}
	b.ReportMetric(float64(mutexT[2])/float64(mutexT[0]), "mutex_T4_over_T1")
	b.ReportMetric(float64(redT[0])/float64(redT[2]), "reducer_speedup_P4")

	// Real runtime: the reducer's ordering guarantee (§5's second defect
	// of the locking solution).
	tree := workloads.BuildTree(20_000, 7)
	var serialOut []*workloads.TreeNode
	workloads.WalkSerial(tree, 3, 4, &serialOut)
	rt := cilkgo.New()
	defer rt.Shutdown()
	l := hyper.NewListAppend[*workloads.TreeNode]()
	if err := rt.Run(func(c *cilkgo.Context) { workloads.WalkReducer(c, tree, 3, 4, l) }); err != nil {
		b.Fatal(err)
	}
	got := l.Value()
	if len(got) != len(serialOut) {
		b.Fatal("reducer walk output size differs from serial")
	}
	for i := range got {
		if got[i] != serialOut[i] {
			b.Fatal("reducer walk output order differs from serial execution")
		}
	}
	once("E8", func() {
		fmt.Printf("\n[E8] §5 contention anecdote, simulated (lock handoff %d units)\n", handoff)
		fmt.Printf("  %6s %14s %14s %10s %10s\n", "P", "mutex T_P", "reducer T_P", "mutex spd", "red spd")
		for j, p := range procs {
			fmt.Printf("  %6d %14d %14d %10.2f %10.2f\n", p, mutexT[j], redT[j],
				float64(work)/float64(mutexT[j]), float64(work)/float64(redT[j]))
		}
		fmt.Printf("  reducer output order == serial order: verified on the real runtime\n")
	})
}

// BenchmarkE9Composability exercises §3.2's performance composability:
// several computations submitted concurrently to one runtime all complete
// with aggregate throughput comparable to running them back-to-back
// (no thrashing from nested parallelism).
func BenchmarkE9Composability(b *testing.B) {
	rt := cilkgo.New()
	defer rt.Shutdown()
	const k = 4
	const n = 120_000
	inputs := make([][]float64, k)
	for i := range inputs {
		inputs[i] = workloads.RandomFloats(n, int64(i))
	}
	run := func(data []float64) error {
		d := append([]float64(nil), data...)
		return rt.Run(func(c *cilkgo.Context) { workloads.Qsort(c, d, 256) })
	}
	var seqT, parT time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for _, in := range inputs {
			if err := run(in); err != nil {
				b.Fatal(err)
			}
		}
		seqT = time.Since(t0)
		t0 = time.Now()
		errs := make(chan error, k)
		for _, in := range inputs {
			in := in
			go func() { errs <- run(in) }()
		}
		for j := 0; j < k; j++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		parT = time.Since(t0)
	}
	ratio := float64(parT) / float64(seqT)
	b.ReportMetric(ratio, "concurrent_over_sequential")
	if ratio > 2.0 {
		b.Fatalf("concurrent submission thrashed: %.2f× sequential time", ratio)
	}
	once("E9", func() {
		fmt.Printf("\n[E9] composability: %d concurrent qsort runs take %.2f× the back-to-back time\n", k, ratio)
	})
}

// BenchmarkE10Amdahl compares Amdahl's Law with the dag model on programs
// with a controlled serial fraction: the dag-model speedup (simulated)
// tracks Amdahl's curve, and both respect the 1/(1−p) limit.
func BenchmarkE10Amdahl(b *testing.B) {
	type row struct {
		frac              float64
		amdahl, simulated float64
	}
	var rows []row
	const totalWork = 200_000
	const procs = 16
	var maxErr float64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		maxErr = 0
		for _, serialPct := range []int{0, 10, 25, 50, 75} {
			serialWork := int64(totalWork * serialPct / 100)
			parWork := int64(totalWork) - serialWork
			prog := vprog.SerialParallel(serialWork, parWork, 64)
			m := vprog.Analyze(prog)
			f := amdahl.ParallelFraction(m.Work, m.Span)
			r, err := sim.Run(prog, sim.Config{Procs: procs, Seed: 31})
			if err != nil {
				b.Fatal(err)
			}
			simSpd := r.Speedup(m.Work)
			amSpd := amdahl.Speedup(f, procs)
			if simSpd > amdahl.Limit(f)+0.01 {
				b.Fatalf("serial=%d%%: simulated speedup %.2f beats Amdahl limit %.2f", serialPct, simSpd, amdahl.Limit(f))
			}
			if e := (amSpd - simSpd) / amSpd; e > maxErr {
				maxErr = e
			}
			rows = append(rows, row{frac: f, amdahl: amSpd, simulated: simSpd})
		}
	}
	b.ReportMetric(maxErr, "max_rel_gap")
	once("E10", func() {
		fmt.Printf("\n[E10] Amdahl vs dag model at P=%d (dag model refines Amdahl, §2)\n", procs)
		fmt.Printf("  %12s %12s %12s\n", "par-fraction", "amdahl", "simulated")
		for _, r := range rows {
			fmt.Printf("  %12.3f %12.2f %12.2f\n", r.frac, r.amdahl, r.simulated)
		}
	})
}

// BenchmarkE11ParallelismTable reproduces §2.3's magnitude claims:
// 1000×1000 matmul parallelism "in the millions", BFS on large irregular
// graphs "thousands", sparse matrix codes "hundreds", and quicksort's
// humble O(lg n).
func BenchmarkE11ParallelismTable(b *testing.B) {
	type row struct {
		name  string
		par   float64
		claim string
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = []row{
			{"matmul 1024×1024 (D&C)", vprog.MatMulMetrics(1024, 8).Parallelism, "millions"},
			{"BFS V=1e6 deg=8", vprog.Analyze(vprog.BFS(1_000_000, 8, 24, 7)).Parallelism, "thousands"},
			{"SpMV 1e4 rows ×100 iters", vprog.Analyze(vprog.SpMV(10_000, 5, 100, 64)).Parallelism, "hundreds"},
			{"qsort n=1e8", vprog.Analyze(vprog.Qsort(100_000_000, 1, 2048)).Parallelism, "≈lg n ≈ 10"},
			{"fib(30)", vprog.Analyze(vprog.Fib(30)).Parallelism, "huge"},
		}
	}
	if rows[0].par < 1e6 {
		b.Fatalf("matmul(1024) parallelism %.0f below millions", rows[0].par)
	}
	if rows[1].par < 1e3 || rows[2].par < 1e2 {
		b.Fatalf("BFS/SpMV magnitudes off: %+v", rows)
	}
	b.ReportMetric(rows[0].par, "matmul_parallelism")
	b.ReportMetric(rows[1].par, "bfs_parallelism")
	b.ReportMetric(rows[2].par, "spmv_parallelism")
	once("E11", func() {
		fmt.Printf("\n[E11] §2.3 parallelism magnitudes\n")
		fmt.Printf("  %-28s %16s   %s\n", "workload", "parallelism", "paper says")
		for _, r := range rows {
			fmt.Printf("  %-28s %16.0f   %s\n", r.name, r.par, r.claim)
		}
	})
}

// BenchmarkE12Laws stress-validates the Work Law (eq. 1) and Span Law
// (eq. 2) over a fleet of random programs and machine sizes; the reported
// metric is the count of (program, P) checks performed.
func BenchmarkE12Laws(b *testing.B) {
	var checks int
	for i := 0; i < b.N; i++ {
		checks = 0
		for seed := uint64(0); seed < 40; seed++ {
			p := vprog.RandomFJ(seed, 5)
			m := vprog.Analyze(p)
			for _, procs := range []int{1, 2, 3, 5, 8, 13} {
				r, err := sim.Run(p, sim.Config{Procs: procs, Seed: int64(seed)})
				if err != nil {
					b.Fatal(err)
				}
				if r.Time*int64(procs) < m.Work {
					b.Fatalf("Work Law violated: seed %d P=%d", seed, procs)
				}
				if r.Time < m.Span {
					b.Fatalf("Span Law violated: seed %d P=%d", seed, procs)
				}
				if spd := r.Speedup(m.Work); spd > m.Parallelism+1e-9 && spd > float64(procs)+1e-9 {
					b.Fatalf("speedup exceeds min(P, parallelism): seed %d", seed)
				}
				checks++
			}
		}
	}
	b.ReportMetric(float64(checks), "law_checks")
	once("E12", func() {
		fmt.Printf("\n[E12] Work/Span Laws held on %d random (program, P) executions\n", checks)
	})
}

// BenchmarkE13Multiprogramming reproduces §3.2's multiprogramming claim:
// when the OS deschedules workers mid-run, their queued work is stolen away
// and throughput adapts to the processors that remain — Cilk++ programs
// "play nicely with other jobs on the system".
func BenchmarkE13Multiprogramming(b *testing.B) {
	prog := vprog.PFor(500_000, 10, 64)
	m := vprog.Analyze(prog)
	const procs = 8
	type row struct {
		lost    int
		time    int64
		adapted float64 // achieved throughput vs perfectly adapted ideal
	}
	var rows []row
	var healthy sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		healthy, err = sim.Run(prog, sim.Config{Procs: procs, Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, lost := range []int{1, 2, 4} {
			off := make([]int64, procs)
			for k := 0; k < lost; k++ {
				off[k+1] = healthy.Time / 4 // descheduled a quarter in
			}
			r, err := sim.Run(prog, sim.Config{Procs: procs, Seed: 6, OfflineAt: off})
			if err != nil {
				b.Fatal(err)
			}
			// Perfectly adapted: full speed for the first quarter, then
			// the surviving processors absorb the rest.
			pre := healthy.Time / 4
			ideal := pre + (m.Work-pre*int64(procs))/int64(procs-lost)
			rows = append(rows, row{lost, r.Time, float64(ideal) / float64(r.Time)})
		}
	}
	for _, r := range rows {
		if r.adapted < 0.8 {
			b.Fatalf("lost=%d: adaptation efficiency %.2f below 0.8", r.lost, r.adapted)
		}
	}
	b.ReportMetric(rows[1].adapted, "adaptation_eff_lost2")
	once("E13", func() {
		fmt.Printf("\n[E13] multiprogramming: %d-proc run, workers descheduled at T/4 (§3.2)\n", procs)
		fmt.Printf("  %6s %12s %12s %22s\n", "lost", "T_healthy", "T_degraded", "adaptation efficiency")
		for _, r := range rows {
			fmt.Printf("  %6d %12d %12d %22.2f\n", r.lost, healthy.Time, r.time, r.adapted)
		}
	})
}
