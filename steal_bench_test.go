// Steal-path experiments (S-series): the batching steal protocol moves up
// to half a victim's deque in one CAS and the adaptive hunt re-probes the
// last successful victim first, so steal-heavy schedules should show fewer
// steal attempts per executed task than steal-one with random victims.
// `make bench-steal` records these (plus the uncancelled C-series runs as a
// no-regression guard) as BENCH_steal.json, diffed by cmd/benchjson against
// the committed seed baseline.
package cilkgo_test

import (
	"testing"
	"time"

	"cilkgo"
	"cilkgo/internal/workloads"
)

// reportStealMetrics attaches the scheduler's steal economics to the
// benchmark output: attempts per executed task (the hunt's efficiency —
// lower is better), and the fraction of successful steals that moved a
// batch.
func reportStealMetrics(b *testing.B, rt *cilkgo.Runtime, before cilkgo.Stats) {
	d := rt.Stats().Sub(before)
	if d.TasksRun > 0 {
		b.ReportMetric(float64(d.StealAttempts)/float64(d.TasksRun), "attempts/task")
	}
	if d.Steals > 0 {
		b.ReportMetric(float64(d.StealBatches)/float64(d.Steals), "batches/steal")
	}
}

// BenchmarkStealFib is the steal-heavy recursive workload: fib(22) on four
// workers spawns ~28k fine-grained tasks whose distribution is pure work
// stealing — no injection after the root, no parallel-for chunking.
func BenchmarkStealFib(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if err := rt.Run(func(c *cilkgo.Context) { got = workloads.Fib(c, 22) }); err != nil {
			b.Fatal(err)
		}
		if got != 17711 {
			b.Fatalf("fib(22) = %d", got)
		}
	}
	b.StopTimer()
	reportStealMetrics(b, rt, before)
}

// BenchmarkStealWideFor is the wide-loop shape from the ISSUE's acceptance
// gate: a flat cilk_for over many cheap iterations leaves the spawning
// worker's deque long, which is exactly where steal-half batching should cut
// the attempts-per-task ratio — one CAS redistributes a chunk instead of
// thieves re-probing per task.
func BenchmarkStealWideFor(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const width = 4096
	sink := make([]float64, width)
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := rt.Run(func(c *cilkgo.Context) {
			cilkgo.ForGrain(c, 0, width, 8, func(_ *cilkgo.Context, j int) {
				x := float64(j)
				for k := 0; k < 64; k++ {
					x = x*1.0000001 + 1
				}
				sink[j] = x
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportStealMetrics(b, rt, before)
}

// BenchmarkStealWideSpawn is the redistribution stress: a flat 256-way
// spawn whose root then yields the processor with its deque still full, so
// hunting workers must carry the leaves. This is the shape where the
// attempts/task ratio separates steal-half from steal-one — each successful
// probe relocates a chunk instead of a single leaf. The root's yield is a
// sleep, so ns/op is not the interesting column here; attempts/task and
// batches/steal are.
func BenchmarkStealWideSpawn(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := rt.Run(func(c *cilkgo.Context) {
			for j := 0; j < 256; j++ {
				c.Spawn(func(*cilkgo.Context) {
					x := 0
					for k := 0; k < 2000; k++ {
						x += k
					}
					_ = x
				})
			}
			time.Sleep(100 * time.Microsecond)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportStealMetrics(b, rt, before)
}

// BenchmarkStealPingPong measures the spawn/sync round trip on a loaded
// runtime — the latency-sensitive shape: a single spawned child per sync, so
// every iteration is a fresh wakeup/steal opportunity rather than a long
// deque. Task and frame recycling dominates here; the allocs/op column is
// the interesting one.
func BenchmarkStealPingPong(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	b.ResetTimer()
	err := rt.Run(func(c *cilkgo.Context) {
		for i := 0; i < b.N; i++ {
			c.Spawn(func(*cilkgo.Context) {})
			c.Sync()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
