// Allocation regression gates: the work-first principle demands that the
// spawn/sync fast path not allocate, and testing.AllocsPerRun makes that a
// deterministic assertion rather than a benchmark number someone has to
// eyeball. Each test drives the real scheduler shape and pins its exact
// allocation count; `make stress-deque` repeats them under the race
// detector (where the counts are inflated by instrumentation, so the
// numeric assertions skip but the shapes still execute).
package cilkgo_test

import (
	"testing"

	"cilkgo"
)

// gateAllocs runs f under testing.AllocsPerRun and fails when the average
// allocation count exceeds limit. Under -race the shapes still execute but
// the numeric check is waived: the race runtime allocates shadow state on
// paths that are allocation-free in a normal build. The waiver must be a
// plain return, not t.Skip — gateAllocs runs inside rt.Run on a worker
// goroutine, and Skip's runtime.Goexit would kill the worker mid-task and
// deadlock the join.
func gateAllocs(t *testing.T, name string, limit float64, f func()) {
	t.Helper()
	f() // warm the freelists and pools before counting
	got := testing.AllocsPerRun(100, f)
	t.Logf("%s: %.2f allocs/op (gate ≤%.0f)", name, got, limit)
	if raceEnabled {
		t.Logf("%s: -race build, allocation gate not enforced", name)
		return
	}
	if got > limit {
		t.Errorf("%s allocated %.2f per op, want ≤%.0f", name, got, limit)
	}
}

// TestAllocSpawnSyncPingPong pins the core work-first claim: one spawn plus
// one sync on a warm worker allocates at most once — and with the task,
// frame, and Context fused into one recycled object, actually zero.
func TestAllocSpawnSyncPingPong(t *testing.T) {
	rt := cilkgo.New(cilkgo.WithWorkers(2))
	defer rt.Shutdown()
	child := func(*cilkgo.Context) {}
	err := rt.Run(func(c *cilkgo.Context) {
		gateAllocs(t, "spawn/sync ping-pong", 1, func() {
			c.Spawn(child)
			c.Sync()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllocWideForChunk pins the cilk_for steady state: a wide loop costs
// one range task plus one loopState per For, and nothing per chunk — the
// peel protocol republishes the same task object. The budget covers the
// per-For setup only.
func TestAllocWideForChunk(t *testing.T) {
	rt := cilkgo.New(cilkgo.WithWorkers(2))
	defer rt.Shutdown()
	sink := make([]uint8, 1<<14)
	err := rt.Run(func(c *cilkgo.Context) {
		gateAllocs(t, "wide cilk_for", 8, func() {
			cilkgo.For(c, 0, len(sink), func(_ *cilkgo.Context, i int) {
				sink[i]++
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllocSubmitRoundTrip pins the uncontended Submit/Wait round trip: the
// root task rides inside its pooled frame, so a whole run costs only the
// runState, ticket, done-channel, and stats-cell setup — a fixed constant,
// independent of what the run spawns.
func TestAllocSubmitRoundTrip(t *testing.T) {
	rt := cilkgo.New(cilkgo.WithWorkers(2))
	defer rt.Shutdown()
	fn := func(*cilkgo.Context) {}
	gateAllocs(t, "submit round-trip", 24, func() {
		if err := rt.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
