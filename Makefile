GO ?= go

.PHONY: all build vet test race bench bench-cancel clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, plus the scheduler and trace packages under the race detector
# (the tracer's lock-free drain and the per-run counters are the parts most
# worth hammering with -race).
test: vet
	$(GO) test ./...
	$(GO) test -race -count=1 ./internal/sched/... ./internal/trace/... ./internal/pfor/...

race:
	$(GO) test -race -count=1 ./...

# Run the benchmark harness and record it as JSON for cross-commit diffing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_trace.json

# Cancellation-overhead gate: run the C-series benchmarks (uncancelled fib and
# matmul through the robustness layer, plus cancel latency) and diff the
# uncancelled runs against the committed seed measurement — the resulting
# BENCH_cancel.json carries overhead_pct vs. seed per benchmark.
bench-cancel:
	$(GO) test -run '^$$' -bench 'BenchmarkCancel' -benchmem -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_cancel.json

clean:
	rm -f BENCH_trace.json BENCH_cancel.json trace.json
