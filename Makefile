GO ?= go

.PHONY: all build vet test race bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, plus the scheduler and trace packages under the race detector
# (the tracer's lock-free drain and the per-run counters are the parts most
# worth hammering with -race).
test: vet
	$(GO) test ./...
	$(GO) test -race -count=1 ./internal/sched/... ./internal/trace/... ./internal/pfor/...

race:
	$(GO) test -race -count=1 ./...

# Run the benchmark harness and record it as JSON for cross-commit diffing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_trace.json

clean:
	rm -f BENCH_trace.json trace.json
