GO ?= go

.PHONY: all build vet test race bench bench-cancel bench-steal bench-pfor bench-san bench-obs bench-serve bench-local bench-spawn bench-mem prof-spawn mint-baseline stress-deque fuzz-sched fuzz-sched-long clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite, plus the scheduler and trace packages under the race detector
# (the tracer's lock-free drain and the per-run counters are the parts most
# worth hammering with -race).
test: vet
	$(GO) test ./...
	$(GO) test -race -count=1 ./internal/sched/... ./internal/trace/... ./internal/pfor/...

race:
	$(GO) test -race -count=1 ./...

# Run the benchmark harness and record it as JSON for cross-commit diffing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_trace.json

# Cancellation-overhead gate: run the C-series benchmarks (uncancelled fib and
# matmul through the robustness layer, plus cancel latency) and diff the
# uncancelled runs against the committed seed measurement — the resulting
# BENCH_cancel.json carries overhead_pct vs. seed per benchmark.
bench-cancel:
	$(GO) test -run '^$$' -bench 'BenchmarkCancel' -benchmem -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_cancel.json

# Steal-path gate: run the S-series benchmarks (steal-heavy fib, wide
# cilk_for, spawn/sync ping-pong) plus the uncancelled C-series runs as the
# no-regression guard, diffed against the committed seed measurement — the
# resulting BENCH_steal.json carries attempts-per-task and batches-per-steal
# metrics alongside overhead_pct vs. seed for the guarded benchmarks.
bench-steal:
	$(GO) test -run '^$$' -bench 'BenchmarkSteal|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_steal.json

# Loop-splitting gate: run the L-series benchmarks (wide light loop, daxpy,
# nested 2D, pooled reduce — each reporting splits/chunks/range-steals per op)
# plus the uncancelled fib/matmul C-series runs as the ±2% no-regression
# guard, diffed against the committed seed measurement into BENCH_pfor.json.
# count=5 (vs 3 elsewhere): the guard compares minima across samples, and
# the fib run is noisy enough on shared runners that 3 samples routinely
# miss the floor.
bench-pfor:
	$(GO) test -run '^$$' -bench 'BenchmarkLoop|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=5 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_pfor.json

# Sanitizer-overhead gate: the same uncancelled fib/matmul C-series runs as
# the other gates (the runtime's sanitizer hooks sit on their hot paths),
# diffed against the committed seed measurement into BENCH_san.json — proving
# the disabled sanitizer costs <2% on the spawn/steal/join fast paths.
bench-san:
	$(GO) test -run '^$$' -bench 'BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=5 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_san.json

# Observability-overhead gate: the uncancelled fib/matmul C-series runs (no
# observer — proving a runtime built without WithObserver stays within ±2% of
# the committed seed measurement) plus the O-series runs of the same
# workloads on an observed runtime, which record what live work/span
# accounting costs when it is switched on. Diffed into BENCH_obs.json.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=5 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_obs.json

# Serving-latency gate: boot examples/serve with the demo tenant→class map
# and admission armed, sweep best-effort load 1×→10× with cmd/cilkload's
# open-loop Poisson generator, and record per-tenant latency percentiles into
# BENCH_serve.json. Gates twice: cilkload itself fails if interactive p99
# degraded more than 2× across the sweep (the DRR starvation-resistance
# claim — a within-run ratio, so machine-speed noise cancels), and benchjson
# -serve fails on a p99 regression vs. the committed
# bench_serve_baseline.json (absent baseline = pass-through, so the first
# run mints it). The benchjson default budget is 10%, but absolute tail
# percentiles on shared runners swing far wider than ratios do, so this
# recipe passes -maxp99 60 and the committed baseline is the per-series
# worst of three mint runs; the exact per-series delta is recorded in
# BENCH_serve.json either way.
SERVE_ADDR ?= 127.0.0.1:18080
bench-serve:
	$(GO) build -o /tmp/cilk-serve ./examples/serve
	/tmp/cilk-serve -addr $(SERVE_ADDR) \
		-tenantclass 'pro=interactive,free=best-effort' -quota 'free=16' & \
	pid=$$!; sleep 1; \
	$(GO) run ./cmd/cilkload -url http://$(SERVE_ADDR) \
		-tenants 'pro:interactive:10:/sinsum?n=800000,free:best-effort:50:/sinsum?n=100000' \
		-sweep 1,2,5,10 -dur 3s -maxdegrade 2.0 -seed 1 > /tmp/cilkload_serve.json; \
	load=$$?; kill $$pid 2>/dev/null; \
	$(GO) run ./cmd/benchjson -serve -maxp99 60 -baseline bench_serve_baseline.json \
		< /tmp/cilkload_serve.json > BENCH_serve.json; \
	status=$$?; if [ $$load -ne 0 ]; then exit $$load; fi; exit $$status

# Locality gate: run the D-series benchmarks (wide loop flat vs. 2-domain —
# reporting the local-steal fraction — plus domain-partitioned fib) alongside
# the uncancelled fib/matmul C-series runs as the ±2% no-regression guard,
# diffed against the committed seed measurement into BENCH_local.json.
bench-local:
	$(GO) test -run '^$$' -bench 'BenchmarkLocal|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json > BENCH_local.json

# Spawn fast-path gate: run the W-series benchmarks (spawn-dense fib, flat
# wide spawn, the hyperobject-free vs reducer-heavy pair) plus the
# uncancelled C-series runs as the no-regression guard, into
# BENCH_spawn.json. Two in-process gates ride on it, neither of which can go
# stale the way a committed ns/op baseline does: -gateallocs pins exact
# allocation counts (fib's 57320 is 2 user closure captures per spawn with
# zero scheduler contribution — see spawn_bench_test.go; wide-flat's 8
# bounds the fixed per-Run setup with nothing per spawn), and -ab records
# the reducer machinery's cost against the hyperobject-free twin measured in
# the same process. The committed seed baseline still tracks cross-commit
# drift for the C-series guard (see EXPERIMENTS.md for the minting
# procedure).
bench-spawn:
	$(GO) test -run '^$$' -bench 'BenchmarkSpawn|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -count=3 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json \
			-gateallocs 'BenchmarkSpawnFib=57320,BenchmarkSpawnWideFlat=8' \
			-ab 'BenchmarkSpawnReducerHeavy=BenchmarkSpawnHyperFree' > BENCH_spawn.json

# Memory-accounting gate: run the M-series benchmarks (fib and matmul through
# Submit with accounting disarmed, plus their budget-armed twins) alongside
# the uncancelled C-series runs, into BENCH_mem.json. The -ab pairs gate the
# disarmed path at 2% against the C-series twin measured in the same process —
# proving a runtime that never sees WithMemoryBudget pays only nil checks for
# the enforcement machinery. The budget-armed twins are recorded but not
# gated (arming is opt-in per run); the committed seed baseline still tracks
# cross-commit drift for the guarded benchmarks. count=6 with a short
# benchtime (vs 3 full-length elsewhere): the A/B compares minima, and the
# paired benchmarks run ~20s apart in the process, so frequency drift across
# few long samples flakes a 2% gate where many short samples hold it.
bench-mem:
	$(GO) test -run '^$$' -bench 'BenchmarkMem|BenchmarkCancelFibUncancelled|BenchmarkCancelMatmulUncancelled' -benchmem -benchtime 0.5s -count=6 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench_seed_baseline.json \
			-ab 'BenchmarkMemFibNoBudget=BenchmarkCancelFibUncancelled,BenchmarkMemMatmulNoBudget=BenchmarkCancelMatmulUncancelled' \
			-maxab 2 > BENCH_mem.json

# Spawn fast-path profiles: CPU and allocation pprof captures of the
# spawn-dense fib shape, for digging into a bench-spawn regression.
prof-spawn:
	$(GO) test -run '^$$' -bench 'BenchmarkSpawnFib' -benchtime 2s \
		-cpuprofile spawn_cpu.out -memprofile spawn_mem.out .
	@echo "inspect with: $(GO) tool pprof -top spawn_cpu.out"
	@echo "              $(GO) tool pprof -top -sample_index=alloc_objects spawn_mem.out"

# Re-mint the committed seed baseline on the current machine: the absolute
# ns/op numbers in bench_seed_baseline.json are only comparable to runs on
# the same hardware, so a machine change (or a deliberate re-anchoring after
# an accepted perf change) re-runs every gated benchmark and rewrites the
# file. See EXPERIMENTS.md for when re-minting is legitimate.
mint-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkCancel|BenchmarkSteal|BenchmarkLoop|BenchmarkObs|BenchmarkLocal|BenchmarkSpawn' -benchmem -count=5 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson > bench_seed_baseline.json

# Deque stress: the grow-vs-thieves and batch-steal tests plus the scheduler's
# steal-path, lazy-loop exactly-once, and steal-domain tests — and the
# fault-injected Gate/San suites (forced claim/CAS failures, stretched claim
# windows, seeded fault schedules) — repeated under the race detector
# (mirrors the CI job).
stress-deque:
	$(GO) test -race -count=5 -run 'StealBatch|GrowRacesThieves|ClearsSlots|UnparkWakeup|HuntPhase|RangeExactlyOnce|Gate|San|Domain' ./internal/deque/ ./internal/sched/
	$(GO) test -race -count=5 -run 'TestAlloc' .

# Schedule fuzzing: the pinned regression corpus plus 1000 fresh seeded fault
# schedules through the schedfuzz property suites with invariants and the
# stall watchdog armed. Deterministic: every trial is a pure function of its
# seed; reproduce a failure with `go run ./cmd/schedfuzz -run <seed> -v`.
fuzz-sched:
	$(GO) run ./cmd/schedfuzz -corpus cmd/schedfuzz/testdata/corpus.json -trials 1000 -seed 1

# Nightly long run: a large randomized sweep starting from a caller-supplied
# seed base (default 1; CI passes the run id) so successive nights cover new
# schedules.
FUZZ_SEED ?= 1
fuzz-sched-long:
	$(GO) run ./cmd/schedfuzz -trials 20000 -seed $(FUZZ_SEED) -stall 5s

clean:
	rm -f BENCH_trace.json BENCH_cancel.json BENCH_steal.json BENCH_pfor.json BENCH_san.json BENCH_obs.json BENCH_serve.json BENCH_local.json BENCH_mem.json trace.json
