// Ablation harness: benchmarks for the design choices DESIGN.md calls out,
// separate from the paper-reproduction experiments in bench_test.go.
//
//	A1  cilk_for grain size vs running time and steal traffic
//	A2  steal-cost sensitivity of T_P (the O(T∞) term's constant)
//	A3  victim-selection policy (random vs round-robin vs last-success)
//	A4  spawn burden vs the Cilkview lower-estimate accuracy
//	A5  race-detector backend throughput (SP-bags vs SP-order)
package cilkgo_test

import (
	"fmt"
	"testing"

	"cilkgo/internal/race"
	"cilkgo/internal/sched"
	"cilkgo/internal/sim"
	"cilkgo/internal/vprog"
)

// BenchmarkA1GrainSize sweeps the cilk_for grain: too fine drowns in spawn
// bookkeeping and steals, too coarse starves the machine of parallelism.
// The automatic grain (≈ n/8P capped at 2048) sits in the flat valley.
func BenchmarkA1GrainSize(b *testing.B) {
	const n, body, procs = 1 << 20, 4, 16
	type row struct {
		grain        int64
		time, steals int64
		parallelism  float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, grain := range []int64{1, 8, 64, 512, 2048, 16384, 131072, n} {
			p := vprog.PFor(n, body, grain)
			m := vprog.Analyze(p)
			r, err := sim.Run(p, sim.Config{Procs: procs, StealCost: 10, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{grain, r.Time, r.Steals, m.Parallelism})
		}
	}
	best, worst := rows[0].time, rows[0].time
	for _, r := range rows {
		if r.time < best {
			best = r.time
		}
		if r.time > worst {
			worst = r.time
		}
	}
	b.ReportMetric(float64(worst)/float64(best), "worst_over_best")
	once("A1", func() {
		fmt.Printf("\n[A1] cilk_for grain sweep (n=%d, P=%d, stealcost=10)\n", n, procs)
		fmt.Printf("  %9s %12s %10s %14s\n", "grain", "T_P", "steals", "parallelism")
		for _, r := range rows {
			fmt.Printf("  %9d %12d %10d %14.0f\n", r.grain, r.time, r.steals, r.parallelism)
		}
	})
}

// BenchmarkA2StealCost sweeps the per-steal communication cost: T_P follows
// T1/P + c·stealCost·T∞-ish growth, so doubling the steal cost should not
// matter while parallelism is ample and must hurt when it is not.
func BenchmarkA2StealCost(b *testing.B) {
	ample := vprog.PFor(1<<18, 8, 64)   // parallelism in the thousands
	scarce := vprog.Qsort(1<<17, 3, 64) // parallelism ≈ lg n
	const procs = 8
	type row struct {
		cost            int64
		ampleT, scarceT int64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, cost := range []int64{1, 10, 100, 1000} {
			ra, err := sim.Run(ample, sim.Config{Procs: procs, StealCost: cost, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			rs, err := sim.Run(scarce, sim.Config{Procs: procs, StealCost: cost, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{cost, ra.Time, rs.Time})
		}
	}
	ampleGrowth := float64(rows[len(rows)-1].ampleT) / float64(rows[0].ampleT)
	scarceGrowth := float64(rows[len(rows)-1].scarceT) / float64(rows[0].scarceT)
	b.ReportMetric(ampleGrowth, "ample_growth_1000x_cost")
	b.ReportMetric(scarceGrowth, "scarce_growth_1000x_cost")
	once("A2", func() {
		fmt.Printf("\n[A2] steal-cost sensitivity at P=%d\n", procs)
		fmt.Printf("  %9s %16s %16s\n", "cost", "T_P (ample ‖ism)", "T_P (scarce ‖ism)")
		for _, r := range rows {
			fmt.Printf("  %9d %16d %16d\n", r.cost, r.ampleT, r.scarceT)
		}
		fmt.Printf("  ×1000 steal cost grew ample-parallelism time ×%.2f, scarce ×%.2f\n",
			ampleGrowth, scarceGrowth)
	})
}

// BenchmarkA3VictimPolicy compares steal-victim policies. Random selection
// is the policy with the proven bound; the alternatives are common
// engineering temptations.
func BenchmarkA3VictimPolicy(b *testing.B) {
	p := vprog.Qsort(1<<18, 11, 128)
	work := vprog.Analyze(p).Work
	const procs = 16
	policies := []struct {
		name string
		v    sim.VictimPolicy
	}{
		{"random", sim.VictimRandom},
		{"round-robin", sim.VictimRoundRobin},
		{"last-success", sim.VictimLastSuccess},
	}
	type row struct {
		name             string
		time             int64
		attempts, steals int64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, pol := range policies {
			r, err := sim.Run(p, sim.Config{Procs: procs, StealCost: 20, Seed: 3, Victim: pol.v})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{pol.name, r.Time, r.StealAttempts, r.Steals})
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(work)/float64(r.time), "speedup_"+r.name)
	}
	once("A3", func() {
		fmt.Printf("\n[A3] victim-selection policy (qsort, P=%d, stealcost=20)\n", procs)
		fmt.Printf("  %-14s %12s %10s %12s\n", "policy", "T_P", "steals", "attempts")
		for _, r := range rows {
			fmt.Printf("  %-14s %12d %10d %12d\n", r.name, r.time, r.steals, r.attempts)
		}
	})
}

// BenchmarkA4BurdenModel sweeps the per-spawn burden and compares the
// Cilkview lower estimate against the simulated speedup with the same
// physical spawn cost: the estimate must stay a lower bound yet track the
// simulation's shape.
func BenchmarkA4BurdenModel(b *testing.B) {
	prog := vprog.Qsort(1_000_000, 5, 512)
	m := vprog.Analyze(prog)
	const procs = 16
	type row struct {
		burden    int64
		estimate  float64
		simulated float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, burden := range []int64{0, 100, 1000, 10000} {
			bm := vprog.AnalyzeBurdened(prog, burden)
			est := float64(m.Work) / (float64(m.Work)/float64(procs) + float64(bm.Span))
			r, err := sim.Run(prog, sim.Config{Procs: procs, SpawnCost: burden, StealCost: 10, Seed: 4})
			if err != nil {
				b.Fatal(err)
			}
			simSpd := float64(m.Work) / float64(r.Time)
			rows = append(rows, row{burden, est, simSpd})
		}
	}
	for _, r := range rows {
		if r.estimate > r.simulated*1.25 {
			b.Fatalf("burden %d: estimate %.2f is no longer a (near-)lower bound of simulated %.2f",
				r.burden, r.estimate, r.simulated)
		}
	}
	once("A4", func() {
		fmt.Printf("\n[A4] burden sweep: Cilkview lower estimate vs simulated speedup (P=%d)\n", procs)
		fmt.Printf("  %9s %12s %12s\n", "burden", "estimate", "simulated")
		for _, r := range rows {
			fmt.Printf("  %9d %12.2f %12.2f\n", r.burden, r.estimate, r.simulated)
		}
	})
}

// BenchmarkA5DetectorBackends compares race-detection throughput of the two
// provably good SP-maintenance algorithms on the same instrumented program.
func BenchmarkA5DetectorBackends(b *testing.B) {
	program := func(c *sched.Context, d *race.Detector) {
		var rec func(c *sched.Context, lo, hi int)
		rec = func(c *sched.Context, lo, hi int) {
			if hi-lo < 2 {
				d.Write(race.Index("a", lo), "leaf")
				return
			}
			mid := (lo + hi) / 2
			for i := lo; i < hi; i++ {
				d.Read(race.Index("a", i), "scan")
			}
			c.Spawn(func(c *sched.Context) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Sync()
		}
		rec(c, 0, 2048)
	}
	for _, backend := range []struct {
		name  string
		check func(func(*sched.Context, *race.Detector)) ([]race.Report, error)
	}{
		{"spbags", race.Check},
		{"sporder", race.CheckSPOrder},
	} {
		b.Run(backend.name, func(b *testing.B) {
			var reports int
			for i := 0; i < b.N; i++ {
				rs, err := backend.check(program)
				if err != nil {
					b.Fatal(err)
				}
				reports = len(rs)
			}
			if reports != 0 {
				b.Fatalf("unexpected races: %d", reports)
			}
		})
	}
}
