package trace

import (
	"sync"
	"testing"
	"time"
)

func TestLogBounds(t *testing.T) {
	b := LogBounds(time.Microsecond, 16*time.Second, 2)
	if b[0] != time.Microsecond {
		t.Errorf("first bound = %v, want 1µs", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v then %v", i, b[i-1], b[i])
		}
		// Two buckets per octave: successive bounds grow by at most √2 (plus
		// a nanosecond of rounding).
		if ratio := float64(b[i]) / float64(b[i-1]); ratio > 1.5 {
			t.Errorf("bucket %d too wide: %v → %v (ratio %.2f)", i, b[i-1], b[i], ratio)
		}
	}
	if last := b[len(b)-1]; last < 16*time.Second {
		t.Errorf("last bound %v does not cover 16s", last)
	}
	// Degenerate parameters are clamped, not fatal.
	if got := LogBounds(0, 10, 0); len(got) == 0 {
		t.Error("LogBounds(0, 10, 0) returned no bounds")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 100 samples, 1ms..100ms: quantiles should land within a bucket's
	// relative error (≤41% for the 2-per-octave default ladder) of exact.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	checks := []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo, hi := c.exact*55/100, c.exact*145/100
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v] of exact %v", c.q, got, lo, hi, c.exact)
		}
	}
	if got := h.Quantile(1); got != h.Max {
		t.Errorf("Quantile(1) = %v, want Max %v", got, h.Max)
	}
	if got := h.Quantile(0); got > h.Bounds[bucketOf(h.Bounds, time.Millisecond)] {
		t.Errorf("Quantile(0) = %v, beyond the first occupied bucket", got)
	}
	if mean := h.Mean(); mean != 50*time.Millisecond+500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", mean)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(LogBounds(time.Microsecond, time.Millisecond, 2))
	h.Observe(30 * time.Second) // far beyond the last bound
	h.Observe(40 * time.Second)
	if h.Counts[len(h.Counts)-1] != 2 {
		t.Fatalf("overflow bucket count = %d, want 2", h.Counts[len(h.Counts)-1])
	}
	// The overflow bucket interpolates toward Max and clamps there.
	if got := h.Quantile(1); got != 40*time.Second {
		t.Errorf("Quantile(1) = %v, want Max 40s", got)
	}
	if got := h.Quantile(0.99); got > 40*time.Second {
		t.Errorf("Quantile(0.99) = %v exceeds Max", got)
	}
}

// TestHistogramQuantileEdges pins the Quantile edge cases the /metrics path
// depends on: an empty histogram reports 0, a histogram whose Counts were
// filled directly (Max never recorded) must clamp overflow-bucket estimates
// to the last finite bound instead of extrapolating — and must not let the
// zero Max clamp in-range estimates down to 0, which it used to do.
func TestHistogramQuantileEdges(t *testing.T) {
	bounds := LogBounds(time.Microsecond, time.Millisecond, 2)
	last := bounds[len(bounds)-1]
	mk := func(fill func(h *Histogram)) Histogram {
		h := NewHistogram(bounds)
		fill(&h)
		return h
	}
	cases := []struct {
		name string
		h    Histogram
		q    float64
		want func(got time.Duration) bool
		desc string
	}{
		{
			name: "empty",
			h:    mk(func(h *Histogram) {}),
			q:    0.5,
			want: func(got time.Duration) bool { return got == 0 },
			desc: "0",
		},
		{
			name: "direct-fill in-range not zeroed by unset Max",
			h: mk(func(h *Histogram) {
				h.Counts[3] = 10 // as if scraped: Max stays 0
				h.N = 10
			}),
			q:    0.5,
			want: func(got time.Duration) bool { return got > 0 && got <= bounds[3] },
			desc: "within bucket 3's bounds, not clamped to the zero Max",
		},
		{
			name: "direct-fill overflow clamps to last finite bound",
			h: mk(func(h *Histogram) {
				h.Counts[len(h.Counts)-1] = 5
				h.N = 5
			}),
			q:    0.99,
			want: func(got time.Duration) bool { return got == last },
			desc: last.String(),
		},
		{
			name: "observed overflow clamps to Max",
			h: mk(func(h *Histogram) {
				h.Observe(2 * time.Millisecond)
				h.Observe(8 * time.Millisecond)
			}),
			q:    1,
			want: func(got time.Duration) bool { return got == 8*time.Millisecond },
			desc: "Max 8ms",
		},
		{
			name: "observed overflow never exceeds Max",
			h: mk(func(h *Histogram) {
				h.Observe(2 * time.Millisecond)
			}),
			q:    0.5,
			want: func(got time.Duration) bool { return got >= last && got <= 2*time.Millisecond },
			desc: "in [last bound, Max]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.h.Quantile(c.q); !c.want(got) {
				t.Errorf("Quantile(%v) = %v, want %s", c.q, got, c.desc)
			}
		})
	}
}

func TestLiveHistogramConcurrent(t *testing.T) {
	h := NewLiveHistogram(nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.N != goroutines*per {
		t.Errorf("N = %d, want %d", s.N, goroutines*per)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.N {
		t.Errorf("bucket counts sum to %d, want %d", total, s.N)
	}
	if want := time.Duration(goroutines*per-1) * time.Microsecond; s.Max != want {
		t.Errorf("Max = %v, want %v", s.Max, want)
	}
	// A nil LiveHistogram swallows observations (the scheduler relies on it).
	var nilH *LiveHistogram
	nilH.Observe(time.Second)
}

func TestLiveHistogramNegativeClamped(t *testing.T) {
	h := NewLiveHistogram(nil)
	h.Observe(-time.Second) // clock anomalies must not corrupt the histogram
	s := h.Snapshot()
	if s.N != 1 || s.Sum != 0 || s.Counts[0] != 1 {
		t.Errorf("negative observation: N=%d Sum=%v Counts[0]=%d, want 1/0/1", s.N, s.Sum, s.Counts[0])
	}
}
