// Package trace is the runtime's observability layer: low-overhead
// per-worker event tracing for the parallel scheduler in internal/sched.
//
// Each worker owns a Recorder — a preallocated ring buffer of fixed-size
// events written only by the owning worker goroutine, so the hot path takes
// no locks and allocates nothing. Recording is gated by a single atomic
// "enabled" flag: with tracing off, the cost of an instrumentation site is
// one nil check, one atomic load, and one predictable branch.
//
// A stopped tracer drains into a Trace — the raw per-worker event
// timelines — from which the package derives two consumable forms:
//
//   - WriteChrome emits Chrome trace-event JSON (one track per worker)
//     viewable in Perfetto or chrome://tracing, the observed-schedule
//     counterpart of Cilkview's predicted parallelism profile.
//   - BuildProfile computes worker utilization over time, a steal-latency
//     histogram (steal-attempt latency in the sense of Khatiri et al.,
//     arXiv:1910.02803), per-worker task/steal counts, and the
//     live-frames high-water series (the Cilkmem-style memory profile,
//     Kaler et al., arXiv:1910.12340).
//
// The scheduler, not this package, decides which events exist; this package
// only defines their encoding and derived views, so it imports nothing but
// the standard library.
package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies a scheduler event. The set mirrors the observable actions
// of one worker: running tasks, spawning, probing victims, picking up
// injected roots, hunting for work, and parking.
type Kind uint8

const (
	// KindTaskStart marks the beginning of a task's execution on a worker.
	// Arg is the frame's spawn depth; Run is the id of the Run invocation
	// the task belongs to. Tasks nest: a worker that steals while waiting
	// at a sync records the stolen task inside the enclosing one.
	KindTaskStart Kind = iota
	// KindTaskEnd marks the completion of the most recently started task.
	KindTaskEnd
	// KindSpawn marks a Spawn call: one task pushed on the worker's deque.
	KindSpawn
	// KindStealAttempt marks one probe of a victim's deque. Arg is the
	// victim's worker id.
	KindStealAttempt
	// KindStealSuccess marks a successful steal. Arg is the victim's id.
	KindStealSuccess
	// KindInjectPickup marks taking a root task from the injection queue.
	KindInjectPickup
	// KindIdleEnter marks the worker running out of work and beginning to
	// hunt (repeated steal sweeps with backoff).
	KindIdleEnter
	// KindIdleExit marks the end of a hunt: the worker found a task.
	KindIdleExit
	// KindPark marks the worker blocking on the runtime condition variable
	// because no computation is active. Park slices nest inside idle ones.
	KindPark
	// KindUnpark marks the worker waking from a park.
	KindUnpark
	// KindTaskSkip marks a task abandoned without executing because its
	// run was cancelled — the trace of work a cancellation avoided. Arg is
	// the frame's spawn depth; Run is the cancelled Run invocation's id.
	KindTaskSkip
	// KindPanic marks a panic quarantined inside a task on this worker.
	// Arg is the frame's spawn depth; Run is the poisoned Run's id.
	KindPanic
	// KindStealBatch marks a batch steal, recorded immediately after the
	// KindStealSuccess event for the same operation (which carries the
	// victim's id). Arg is the number of extra tasks the batch moved into
	// this worker's deque beyond the one it kept to run.
	KindStealBatch
	// KindHuntYield marks a hunt escalating from its spin phase to its
	// yield phase after repeated failed sweeps; the final escalation to the
	// park phase is marked by KindPark/KindUnpark as before.
	KindHuntYield
	// KindLoopSplit marks a stolen lazy-loop range task being halved on this
	// worker (the thief): the back half became a new stealable range task.
	// Arg is the number of iterations in the half that was pushed; Run is the
	// owning Run invocation's id.
	KindLoopSplit
	// KindChunkRun marks one grain-sized chunk of a lazy loop executing on
	// this worker. Arg is the chunk's iteration count; Run is the owning Run
	// invocation's id.
	KindChunkRun
	// KindDomainEscalate marks a hunt escalating past the worker's own steal
	// domain: a full same-domain sweep (plus the local affinity mailbox) came
	// up dry, so the next probes target remote domains. Arg is the worker's
	// own domain id. Never recorded on a flat (single-domain) runtime.
	KindDomainEscalate

	numKinds
)

var kindNames = [numKinds]string{
	"task-start", "task-end", "spawn", "steal-attempt", "steal-success",
	"inject-pickup", "idle-enter", "idle-exit", "park", "unpark",
	"task-skip", "panic", "steal-batch", "hunt-yield",
	"loop-split", "chunk-run", "domain-escalate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one timestamped entry in a worker's timeline. Events are fixed
// size so a ring buffer of them is preallocated storage, never touched by
// the garbage collector during recording.
type Event struct {
	// When is nanoseconds since the tracer's epoch (monotonic clock).
	When int64
	// Run is the id of the Run invocation (task-start events), else 0.
	Run int64
	// Arg is the event argument: victim worker id for steal events, spawn
	// depth for task-start events, 0 otherwise.
	Arg int32
	// Kind says what happened.
	Kind Kind
}

// defaultCapacity is the per-worker ring capacity in events (1<<16 events
// × 24 bytes = 1.5 MiB per worker).
const defaultCapacity = 1 << 16

// Option configures a Tracer.
type Option func(*Tracer)

// Capacity sets the per-worker ring-buffer capacity in events, rounded up
// to a power of two (default 65536). When a buffer wraps, the oldest events
// are overwritten and counted as dropped in the drained Trace.
func Capacity(events int) Option {
	return func(t *Tracer) { t.capacity = ceilPow2(events) }
}

func ceilPow2(n int) int {
	if n < 2 {
		return 2
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Tracer owns one Recorder per worker and the shared enabled gate. A Tracer
// is created once per Runtime; Start and Stop bracket recording windows and
// may be cycled any number of times.
type Tracer struct {
	capacity int
	epoch    time.Time
	started  time.Time
	enabled  atomic.Bool
	recs     []*Recorder
	// capMu serializes Capture calls (see Capture).
	capMu sync.Mutex
}

// New creates a tracer with one recorder per worker, initially disabled.
func New(workers int, opts ...Option) *Tracer {
	t := &Tracer{capacity: defaultCapacity}
	for _, o := range opts {
		o(t)
	}
	t.epoch = time.Now()
	t.recs = make([]*Recorder, workers)
	for i := range t.recs {
		t.recs[i] = &Recorder{t: t, buf: make([]Event, t.capacity), mask: int64(t.capacity - 1)}
	}
	return t
}

// Workers reports the number of per-worker recorders.
func (t *Tracer) Workers() int { return len(t.recs) }

// Recorder returns worker i's recorder. The scheduler hands each worker its
// own; all of a worker's events must be recorded from that worker's
// goroutine (single-writer discipline).
func (t *Tracer) Recorder(i int) *Recorder { return t.recs[i] }

// Enabled reports whether the tracer is currently recording.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Start clears the recorders and begins a recording window. Start on an
// already-started tracer is a no-op.
func (t *Tracer) Start() {
	if t.enabled.Load() {
		return
	}
	for _, r := range t.recs {
		r.pos.Store(0)
	}
	t.epoch = time.Now()
	t.started = t.epoch
	t.enabled.Store(true)
}

// Stop ends the recording window and drains the ring buffers into a Trace.
// Stop synchronizes with in-flight recorders (a seqlock per ring), so the
// returned snapshot is race-free even if workers were mid-event; it is safe
// to call while computations are still running, in which case the snapshot
// simply contains unclosed intervals.
func (t *Tracer) Stop() *Trace {
	t.enabled.Store(false)
	for _, r := range t.recs {
		for r.seq.Load()&1 == 1 {
			runtime.Gosched()
		}
	}
	tr := &Trace{
		Epoch:    t.started,
		Duration: time.Since(t.started),
		Workers:  make([][]Event, len(t.recs)),
		Dropped:  make([]int64, len(t.recs)),
	}
	for i, r := range t.recs {
		n := r.pos.Load()
		lo := int64(0)
		if n > int64(len(r.buf)) {
			lo = n - int64(len(r.buf))
		}
		tr.Dropped[i] = lo
		events := make([]Event, 0, n-lo)
		for j := lo; j < n; j++ {
			events = append(events, r.buf[j&r.mask])
		}
		tr.Workers[i] = events
	}
	return tr
}

// Capture records for the given duration and returns the drained window:
// Start, sleep, Stop. It is the capture-on-demand primitive behind the
// /debug/cilk/trace endpoint — a live server can hand out a bounded trace
// without anyone bracketing Start/Stop by hand. A capture resets any
// recording window already in progress (Start clears the rings) and leaves
// the tracer stopped. Concurrent captures are serialized by capMu so two
// simultaneous requests cannot clear each other's windows mid-capture; the
// second caller simply records its own window after the first finishes.
func (t *Tracer) Capture(d time.Duration) *Trace {
	t.capMu.Lock()
	defer t.capMu.Unlock()
	if t.enabled.Load() {
		t.Stop() // discard the in-progress window, quiescing recorders
	}
	t.Start()
	time.Sleep(d)
	return t.Stop()
}

// Recorder is one worker's private event ring. Only the owning worker
// writes; Tracer.Stop reads after quiescing on seq. All methods are safe on
// a nil receiver (they do nothing), so the scheduler can hold a nil
// Recorder when tracing was never configured.
type Recorder struct {
	t    *Tracer
	buf  []Event
	mask int64
	// pos is the count of events ever recorded in this window; the write
	// cursor is pos & mask. Written only by the owning worker; atomic so
	// Stop's drain reads a published value.
	pos atomic.Int64
	// seq is a seqlock: odd while a record is in flight. Stop spins until
	// even after lowering the gate, which both bounds the wait and
	// establishes the happens-before edge that makes the drain race-free.
	seq atomic.Uint64
}

// record appends one event if the tracer is enabled. The disabled path is
// a nil check, one atomic load, and a branch.
func (r *Recorder) record(k Kind, arg int32, run int64) {
	if r == nil || !r.t.enabled.Load() {
		return
	}
	r.seq.Add(1)
	// Re-check under the seqlock: Stop lowers the gate and then waits for
	// seq to go even, so a write that passes this check is always drained
	// after it completes, never concurrently.
	if r.t.enabled.Load() {
		i := r.pos.Load()
		r.buf[i&r.mask] = Event{
			When: int64(time.Since(r.t.epoch)),
			Run:  run,
			Arg:  arg,
			Kind: k,
		}
		r.pos.Store(i + 1)
	}
	r.seq.Add(1)
}

// TaskStart records the beginning of a task at the given spawn depth,
// belonging to the given Run invocation.
func (r *Recorder) TaskStart(depth int32, run int64) { r.record(KindTaskStart, depth, run) }

// TaskEnd records the completion of the most recently started task.
func (r *Recorder) TaskEnd() { r.record(KindTaskEnd, 0, 0) }

// Spawn records a Spawn call.
func (r *Recorder) Spawn() { r.record(KindSpawn, 0, 0) }

// StealAttempt records one probe of victim's deque.
func (r *Recorder) StealAttempt(victim int32) { r.record(KindStealAttempt, victim, 0) }

// StealSuccess records a successful steal from victim.
func (r *Recorder) StealSuccess(victim int32) { r.record(KindStealSuccess, victim, 0) }

// StealBatch records that the steal recorded immediately before was a batch
// that moved the given number of extra tasks into this worker's deque.
func (r *Recorder) StealBatch(moved int32) { r.record(KindStealBatch, moved, 0) }

// HuntYield records a hunt escalating from spinning to yielding between
// sweeps.
func (r *Recorder) HuntYield() { r.record(KindHuntYield, 0, 0) }

// LoopSplit records halving a stolen range task; n is the iteration count of
// the re-published back half.
func (r *Recorder) LoopSplit(n int32, run int64) { r.record(KindLoopSplit, n, run) }

// ChunkRun records executing one grain-sized chunk of n loop iterations.
func (r *Recorder) ChunkRun(n int32, run int64) { r.record(KindChunkRun, n, run) }

// DomainEscalate records a hunt crossing from the worker's own steal domain
// (given) to remote domains after a dry local sweep.
func (r *Recorder) DomainEscalate(domain int32) { r.record(KindDomainEscalate, domain, 0) }

// InjectPickup records taking a root task from the injection queue.
func (r *Recorder) InjectPickup() { r.record(KindInjectPickup, 0, 0) }

// IdleEnter records the start of a work hunt.
func (r *Recorder) IdleEnter() { r.record(KindIdleEnter, 0, 0) }

// IdleExit records the end of a work hunt.
func (r *Recorder) IdleExit() { r.record(KindIdleExit, 0, 0) }

// TaskSkip records abandoning a task of a cancelled run without executing
// it, at the given spawn depth.
func (r *Recorder) TaskSkip(depth int32, run int64) { r.record(KindTaskSkip, depth, run) }

// Panic records a panic quarantined inside a task at the given spawn depth.
func (r *Recorder) Panic(depth int32, run int64) { r.record(KindPanic, depth, run) }

// Park records blocking on the runtime's condition variable.
func (r *Recorder) Park() { r.record(KindPark, 0, 0) }

// Unpark records waking from a park.
func (r *Recorder) Unpark() { r.record(KindUnpark, 0, 0) }

// Trace is a drained recording window: per-worker event timelines in
// chronological order, plus how many events each ring overwrote.
type Trace struct {
	// Epoch is the wall-clock instant of Start; event When fields are
	// nanoseconds after it.
	Epoch time.Time
	// Duration is the length of the recording window.
	Duration time.Duration
	// Workers[i] is worker i's timeline, oldest first.
	Workers [][]Event
	// Dropped[i] counts worker i's events lost to ring wraparound (the
	// oldest events are overwritten first).
	Dropped []int64
}

// Events reports the total number of retained events.
func (t *Trace) Events() int {
	n := 0
	for _, ws := range t.Workers {
		n += len(ws)
	}
	return n
}

// TotalDropped reports the total number of overwritten events.
func (t *Trace) TotalDropped() int64 {
	var n int64
	for _, d := range t.Dropped {
		n += d
	}
	return n
}
