package trace

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the histogram layer shared by the offline profile
// (BuildProfile's steal-latency distribution) and the online observability
// path (internal/sched's live steal-latency / park-to-wake histograms and
// internal/obs's run-latency histogram, all exported through /metrics).
//
// Buckets are log-spaced: each octave of the covered range is divided into
// a fixed number of geometrically spaced sub-buckets, so one histogram
// resolves both a 2µs steal and a 2s run with constant relative error —
// the property the old fixed 1µs..8ms power-of-two ladder lacked at the
// tails, where every slow event collapsed into the overflow bucket.

// LogBounds returns exclusive upper bounds covering [lo, hi] with perOctave
// geometrically spaced buckets per doubling. Values at or above the last
// bound belong in an overflow bucket the caller appends.
func LogBounds(lo, hi time.Duration, perOctave int) []time.Duration {
	if lo < 1 {
		lo = 1
	}
	if perOctave < 1 {
		perOctave = 1
	}
	ratio := math.Pow(2, 1/float64(perOctave))
	var bounds []time.Duration
	b := float64(lo)
	for {
		d := time.Duration(math.Round(b))
		if len(bounds) == 0 || d > bounds[len(bounds)-1] {
			bounds = append(bounds, d)
		}
		if d >= hi {
			return bounds
		}
		b *= ratio
	}
}

// defaultLatencyBounds covers 1µs..16s with two buckets per octave (≤41%
// relative bucket width) — wide enough that a multi-second run latency and
// a microsecond steal latency both land in real buckets.
func defaultLatencyBounds() []time.Duration {
	return LogBounds(time.Microsecond, 16*time.Second, 2)
}

// Histogram is a latency histogram with log-spaced buckets (see LogBounds).
type Histogram struct {
	// Bounds[i] is the exclusive upper bound of bucket i; values at or
	// above the last bound land in the overflow bucket Counts[len(Bounds)].
	Bounds []time.Duration
	Counts []int64
	N      int64
	Sum    time.Duration
	Max    time.Duration
}

// NewHistogram returns an empty histogram over the given bucket bounds
// (nil means the default 1µs..16s latency ladder).
func NewHistogram(bounds []time.Duration) Histogram {
	if bounds == nil {
		bounds = defaultLatencyBounds()
	}
	return Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

func newLatencyHist() Histogram { return NewHistogram(nil) }

// bucketOf returns the index of the bucket d falls in: the first bound
// greater than d, or the overflow bucket.
func bucketOf(bounds []time.Duration, d time.Duration) int {
	return sort.Search(len(bounds), func(i int) bool { return d < bounds[i] })
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.N++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	h.Counts[bucketOf(h.Bounds, d)]++
}

// add is the pre-export spelling of Observe, kept for BuildProfile.
func (h *Histogram) add(d time.Duration) { h.Observe(d) }

// Mean returns the mean recorded latency.
func (h *Histogram) Mean() time.Duration {
	if h.N == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.N)
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the q·N-th sample. An empty
// histogram reports 0 for every q. The overflow bucket interpolates between
// the last bound and the observed Max, and the estimate is clamped to Max,
// so Quantile(1) == Max exactly. On a histogram whose Counts were filled
// directly (Max never set — e.g. reassembled from scraped bucket counters)
// the estimate clamps to the last finite bound instead of extrapolating,
// and the unknown Max must not clamp in-range estimates to zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.Counts)-1 {
			var lo, hi time.Duration
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if i < len(h.Bounds) {
				hi = h.Bounds[i]
			} else {
				// Overflow bucket: interpolate toward Max when it is known;
				// with Max unrecorded (direct-filled counts) the hi<lo floor
				// below clamps the estimate to the last finite bound rather
				// than extrapolating past the ladder.
				hi = h.Max
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			est := lo + time.Duration(frac*float64(hi-lo))
			// Clamp to the observed Max only when one was recorded: with
			// Max==0 on a direct-filled histogram this clamp used to zero
			// every in-range estimate.
			if h.Max > 0 && est > h.Max {
				est = h.Max
			}
			return est
		}
		cum = next
	}
	return h.Max
}

// LiveHistogram is the concurrent counterpart of Histogram: many goroutines
// may Observe while others Snapshot. Buckets are atomic counters; Snapshot
// reads them without stopping writers, so a snapshot taken mid-Observe can
// be off by the in-flight sample — fine for metrics, where the next scrape
// catches up.
type LiveHistogram struct {
	bounds []time.Duration
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewLiveHistogram returns an empty concurrent histogram over the given
// bounds (nil means the default 1µs..16s latency ladder).
func NewLiveHistogram(bounds []time.Duration) *LiveHistogram {
	if bounds == nil {
		bounds = defaultLatencyBounds()
	}
	return &LiveHistogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency sample. Safe for concurrent use.
func (h *LiveHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(h.bounds, d)].Add(1)
	h.n.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Snapshot returns the histogram's current contents as a plain Histogram.
func (h *LiveHistogram) Snapshot() Histogram {
	s := Histogram{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		N:      h.n.Load(),
		Sum:    time.Duration(h.sum.Load()),
		Max:    time.Duration(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
