package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds a synthetic two-worker trace exercising every event
// kind plus the writer's sanitizing rules: an end without a begin (lost to
// ring wraparound, must be dropped) and slices still open at the window's
// edge (must be closed at Duration). Timestamps are fixed, so the Chrome
// JSON is byte-for-byte deterministic.
func goldenTrace() *Trace {
	us := func(n int64) int64 { return n * 1000 } // event times in µs → ns
	w0 := []Event{
		{When: us(0), Kind: KindTaskEnd}, // begin lost to wraparound: dropped
		{When: us(5), Kind: KindInjectPickup},
		{When: us(10), Kind: KindTaskStart, Arg: 0, Run: 1},
		{When: us(20), Kind: KindSpawn},
		{When: us(25), Kind: KindSpawn},
		{When: us(40), Kind: KindTaskStart, Arg: 1, Run: 1}, // nested: steal-free pop at sync
		{When: us(60), Kind: KindTaskEnd},
		{When: us(70), Kind: KindChunkRun, Arg: 32, Run: 1},
		{When: us(80), Kind: KindTaskSkip, Arg: 2, Run: 2},
		{When: us(90), Kind: KindPanic, Arg: 1, Run: 3},
		{When: us(100), Kind: KindTaskEnd},
		{When: us(110), Kind: KindIdleEnter},
		{When: us(115), Kind: KindHuntYield},
		{When: us(120), Kind: KindPark}, // still parked at window end: closed at Duration
	}
	w1 := []Event{
		{When: us(15), Kind: KindIdleEnter},
		{When: us(18), Kind: KindStealAttempt, Arg: 0},
		{When: us(30), Kind: KindStealSuccess, Arg: 0},
		{When: us(31), Kind: KindStealBatch, Arg: 3},
		{When: us(32), Kind: KindLoopSplit, Arg: 64, Run: 1},
		{When: us(35), Kind: KindIdleExit},
		{When: us(36), Kind: KindTaskStart, Arg: 1, Run: 1}, // still running at window end
	}
	return &Trace{
		Epoch:    time.Unix(0, 0),
		Duration: 200 * time.Microsecond,
		Workers:  [][]Event{w0, w1},
		Dropped:  []int64{1, 0},
	}
}

// TestChromeGolden pins the Chrome trace-event encoding: any change to the
// emitted JSON (event names, phases, args, sanitizing) shows up as a golden
// diff. Regenerate deliberately with `go test ./internal/trace -run
// TestChromeGolden -update`.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// Whatever the golden comparison says, the output must be valid JSON
	// with the envelope Perfetto expects.
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected envelope: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome JSON drifted from golden file %s.\nIf the change is deliberate, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
