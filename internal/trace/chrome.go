package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the JSON consumed by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace as Chrome trace-event JSON: one thread track
// per worker carrying nested "task" slices (begin/end pairs mirror the
// worker's runTask nesting), "idle" and "parked" slices, instant events for
// spawns, steal attempts, steals (with the victim id) and inject pickups,
// and a per-worker "live frames" counter track — the Cilkmem-style memory
// series. Open slices at the window edges (a task still running at Stop, or
// whose start was overwritten by ring wraparound) are sanitized so every
// emitted end has a matching begin.
func WriteChrome(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	meta := func(name string, tid int, args map[string]any) error {
		b, err := json.Marshal(struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		}{name, "M", 1, tid, args})
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	if err := meta("process_name", 0, map[string]any{"name": "cilkgo"}); err != nil {
		return err
	}
	for i := range t.Workers {
		if err := meta("thread_name", i, map[string]any{"name": fmt.Sprintf("worker %d", i)}); err != nil {
			return err
		}
	}

	for wid, events := range t.Workers {
		var taskDepth, idleDepth, parkDepth, live int
		counter := fmt.Sprintf("live frames (w%d)", wid)
		for _, ev := range events {
			us := float64(ev.When) / 1e3
			var err error
			switch ev.Kind {
			case KindTaskStart:
				taskDepth++
				live++
				err = emit(chromeEvent{Name: "task", Phase: "B", TS: us, PID: 1, TID: wid,
					Args: map[string]any{"depth": ev.Arg, "run": ev.Run}})
				if err == nil {
					err = emit(chromeEvent{Name: counter, Phase: "C", TS: us, PID: 1,
						Args: map[string]any{"frames": live}})
				}
			case KindTaskEnd:
				if taskDepth == 0 {
					continue // begin lost to wraparound
				}
				taskDepth--
				live--
				err = emit(chromeEvent{Name: "task", Phase: "E", TS: us, PID: 1, TID: wid})
				if err == nil {
					err = emit(chromeEvent{Name: counter, Phase: "C", TS: us, PID: 1,
						Args: map[string]any{"frames": live}})
				}
			case KindSpawn:
				err = emit(chromeEvent{Name: "spawn", Phase: "i", TS: us, PID: 1, TID: wid, Scope: "t"})
			case KindStealAttempt:
				err = emit(chromeEvent{Name: "steal-attempt", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"victim": ev.Arg}})
			case KindStealSuccess:
				err = emit(chromeEvent{Name: "steal", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"victim": ev.Arg}})
			case KindStealBatch:
				err = emit(chromeEvent{Name: "steal-batch", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"moved": ev.Arg}})
			case KindHuntYield:
				err = emit(chromeEvent{Name: "hunt-yield", Phase: "i", TS: us, PID: 1, TID: wid, Scope: "t"})
			case KindLoopSplit:
				err = emit(chromeEvent{Name: "loop-split", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"iterations": ev.Arg, "run": ev.Run}})
			case KindChunkRun:
				err = emit(chromeEvent{Name: "chunk", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"iterations": ev.Arg, "run": ev.Run}})
			case KindDomainEscalate:
				err = emit(chromeEvent{Name: "domain-escalate", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"domain": ev.Arg}})
			case KindInjectPickup:
				err = emit(chromeEvent{Name: "inject-pickup", Phase: "i", TS: us, PID: 1, TID: wid, Scope: "t"})
			case KindTaskSkip:
				err = emit(chromeEvent{Name: "task-skip", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "t", Args: map[string]any{"depth": ev.Arg, "run": ev.Run}})
			case KindPanic:
				// Process-scoped so the quarantine is visible at a glance
				// across every track.
				err = emit(chromeEvent{Name: "panic", Phase: "i", TS: us, PID: 1, TID: wid,
					Scope: "p", Args: map[string]any{"depth": ev.Arg, "run": ev.Run}})
			case KindIdleEnter:
				idleDepth++
				err = emit(chromeEvent{Name: "idle", Phase: "B", TS: us, PID: 1, TID: wid})
			case KindIdleExit:
				if idleDepth == 0 {
					continue
				}
				idleDepth--
				err = emit(chromeEvent{Name: "idle", Phase: "E", TS: us, PID: 1, TID: wid})
			case KindPark:
				parkDepth++
				err = emit(chromeEvent{Name: "parked", Phase: "B", TS: us, PID: 1, TID: wid})
			case KindUnpark:
				if parkDepth == 0 {
					continue
				}
				parkDepth--
				err = emit(chromeEvent{Name: "parked", Phase: "E", TS: us, PID: 1, TID: wid})
			}
			if err != nil {
				return err
			}
		}
		// Close slices still open at the end of the window so viewers don't
		// extend them arbitrarily. Innermost first: park nests inside idle,
		// and tasks never overlap either.
		end := float64(t.Duration.Nanoseconds()) / 1e3
		for _, open := range []struct {
			name  string
			depth int
		}{{"parked", parkDepth}, {"idle", idleDepth}, {"task", taskDepth}} {
			for j := 0; j < open.depth; j++ {
				if err := emit(chromeEvent{Name: open.name, Phase: "E", TS: end, PID: 1, TID: wid}); err != nil {
					return err
				}
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
