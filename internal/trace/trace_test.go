package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecordsNothing(t *testing.T) {
	tr := New(2, Capacity(64))
	r := tr.Recorder(0)
	r.Spawn()
	r.TaskStart(0, 1)
	snap := tr.Stop()
	if got := snap.Events(); got != 0 {
		t.Fatalf("disabled tracer recorded %d events, want 0", got)
	}
	var nilRec *Recorder
	nilRec.Spawn() // must not panic
	nilRec.TaskEnd()
}

func TestRecordAndDrain(t *testing.T) {
	tr := New(1, Capacity(64))
	tr.Start()
	r := tr.Recorder(0)
	r.TaskStart(3, 7)
	r.Spawn()
	r.StealAttempt(5)
	r.TaskEnd()
	snap := tr.Stop()
	events := snap.Workers[0]
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	wantKinds := []Kind{KindTaskStart, KindSpawn, KindStealAttempt, KindTaskEnd}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if i > 0 && ev.When < events[i-1].When {
			t.Errorf("event %d timestamp regressed: %d < %d", i, ev.When, events[i-1].When)
		}
	}
	if events[0].Arg != 3 || events[0].Run != 7 {
		t.Errorf("task-start args = (%d, %d), want (3, 7)", events[0].Arg, events[0].Run)
	}
	if events[2].Arg != 5 {
		t.Errorf("steal-attempt victim = %d, want 5", events[2].Arg)
	}
	if snap.Dropped[0] != 0 {
		t.Errorf("dropped = %d, want 0", snap.Dropped[0])
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(1, Capacity(8))
	tr.Start()
	r := tr.Recorder(0)
	for i := 0; i < 20; i++ {
		r.StealAttempt(int32(i))
	}
	snap := tr.Stop()
	events := snap.Workers[0]
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8 (ring capacity)", len(events))
	}
	if snap.Dropped[0] != 12 {
		t.Errorf("dropped = %d, want 12", snap.Dropped[0])
	}
	for i, ev := range events {
		if want := int32(12 + i); ev.Arg != want {
			t.Errorf("event %d arg = %d, want %d (oldest overwritten first)", i, ev.Arg, want)
		}
	}
}

func TestStartResets(t *testing.T) {
	tr := New(1, Capacity(64))
	tr.Start()
	tr.Recorder(0).Spawn()
	tr.Stop()
	tr.Start()
	tr.Recorder(0).TaskStart(0, 1)
	snap := tr.Stop()
	if len(snap.Workers[0]) != 1 || snap.Workers[0][0].Kind != KindTaskStart {
		t.Fatalf("second window = %+v, want exactly one task-start", snap.Workers[0])
	}
}

// TestStopQuiescesConcurrentRecorders drives recorders from goroutines
// while Stop drains; the race detector checks the seqlock discipline.
func TestStopQuiescesConcurrentRecorders(t *testing.T) {
	tr := New(4, Capacity(256))
	tr.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(r *Recorder) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Spawn()
				}
			}
		}(tr.Recorder(i))
	}
	time.Sleep(2 * time.Millisecond)
	snap := tr.Stop()
	close(stop)
	wg.Wait()
	if snap.Events() == 0 {
		t.Error("no events drained from concurrent recorders")
	}
	// Recording after Stop is a no-op.
	tr.Recorder(0).Spawn()
	if n := tr.Recorder(0).pos.Load(); int64(len(snap.Workers[0]))+snap.Dropped[0] != n {
		t.Errorf("events recorded after Stop: pos %d, drained %d", n, len(snap.Workers[0]))
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
}

// synthetic builds a hand-written two-worker trace covering 100ms:
//
//	worker 0: task [0,60ms] with a nested task [10,30ms], idle [60,100ms]
//	          with park [70,90ms]
//	worker 1: idle [0,20ms] with steal attempts at 5 and 15ms, steal
//	          success at 15ms, then task [20,50ms]
func synthetic() *Trace {
	ms := func(m int64) int64 { return m * int64(time.Millisecond) }
	return &Trace{
		Duration: 100 * time.Millisecond,
		Workers: [][]Event{
			{
				{When: ms(0), Kind: KindTaskStart, Run: 1},
				{When: ms(5), Kind: KindSpawn},
				{When: ms(10), Kind: KindTaskStart, Arg: 1, Run: 1},
				{When: ms(30), Kind: KindTaskEnd},
				{When: ms(60), Kind: KindTaskEnd},
				{When: ms(60), Kind: KindIdleEnter},
				{When: ms(70), Kind: KindPark},
				{When: ms(90), Kind: KindUnpark},
			},
			{
				{When: ms(0), Kind: KindIdleEnter},
				{When: ms(5), Kind: KindStealAttempt, Arg: 0},
				{When: ms(15), Kind: KindStealAttempt, Arg: 0},
				{When: ms(15), Kind: KindStealSuccess, Arg: 0},
				{When: ms(20), Kind: KindIdleExit},
				{When: ms(20), Kind: KindTaskStart, Arg: 1, Run: 1},
				{When: ms(50), Kind: KindTaskEnd},
			},
		},
		Dropped: []int64{0, 0},
	}
}

func TestProfileTimeSplit(t *testing.T) {
	p := BuildProfile(synthetic(), 10)
	approx := func(got, want time.Duration) bool {
		d := got - want
		return d > -time.Millisecond && d < time.Millisecond
	}
	w0, w1 := p.Workers[0], p.Workers[1]
	if !approx(w0.Busy, 60*time.Millisecond) {
		t.Errorf("w0 busy = %v, want ~60ms", w0.Busy)
	}
	// w0 idle slice [60,100] is open at the window end; park [70,90] is
	// subtracted, leaving 20ms of hunting.
	if !approx(w0.Hunt, 20*time.Millisecond) {
		t.Errorf("w0 hunt = %v, want ~20ms", w0.Hunt)
	}
	if !approx(w0.Parked, 20*time.Millisecond) {
		t.Errorf("w0 parked = %v, want ~20ms", w0.Parked)
	}
	if w0.Tasks != 2 || w0.Spawns != 1 || w0.MaxLiveFrames != 2 {
		t.Errorf("w0 counts = %+v, want 2 tasks, 1 spawn, maxlf 2", w0)
	}
	if !approx(w1.Busy, 30*time.Millisecond) || !approx(w1.Hunt, 20*time.Millisecond) {
		t.Errorf("w1 busy/hunt = %v/%v, want ~30ms/~20ms", w1.Busy, w1.Hunt)
	}
	if w1.Steals != 1 || w1.StealAttempts != 2 {
		t.Errorf("w1 steals/attempts = %d/%d, want 1/2", w1.Steals, w1.StealAttempts)
	}
	// Steal latency: first probe 5ms, success 15ms → 10ms.
	if p.StealLatency.N != 1 || !approx(p.StealLatency.Max, 10*time.Millisecond) {
		t.Errorf("steal latency n=%d max=%v, want 1 at ~10ms", p.StealLatency.N, p.StealLatency.Max)
	}
	// Global live frames peak: w0 has 2 nested during [10,30], w1 one
	// during [20,50] → 3.
	if p.MaxLiveFrames != 3 {
		t.Errorf("global live-frame high water = %d, want 3", p.MaxLiveFrames)
	}
	// Observed parallelism = (60+30)ms busy / 100ms wall = 0.9.
	if op := p.ObservedParallelism(); op < 0.85 || op > 0.95 {
		t.Errorf("observed parallelism = %v, want ~0.9", op)
	}
	// Utilization buckets: [0,10ms) has w0 busy only → 0.5; [20,30ms) has
	// both busy → 1.0; [60,70ms) has neither → 0.
	if u := p.Utilization[0]; u < 0.45 || u > 0.55 {
		t.Errorf("utilization[0] = %v, want ~0.5", u)
	}
	if u := p.Utilization[2]; u < 0.95 {
		t.Errorf("utilization[2] = %v, want ~1.0", u)
	}
	if u := p.Utilization[6]; u > 0.05 {
		t.Errorf("utilization[6] = %v, want ~0", u)
	}
	// LiveFrames series: bucket 2 ([20,30ms)) should see the peak of 3;
	// bucket 7 ([70,80ms)) has nothing live.
	if p.LiveFrames[2] != 3 {
		t.Errorf("liveFrames[2] = %d, want 3", p.LiveFrames[2])
	}
	if p.LiveFrames[7] != 0 {
		t.Errorf("liveFrames[7] = %d, want 0", p.LiveFrames[7])
	}
	// Render must not panic and should mention the headline numbers.
	out := p.Render()
	for _, want := range []string{"2 workers", "steal latency", "live frames", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestProfileSanitizesUnmatchedEnds(t *testing.T) {
	// A wrapped ring can begin mid-task: end events with no start.
	tr := &Trace{
		Duration: time.Millisecond,
		Workers: [][]Event{{
			{When: 10, Kind: KindTaskEnd},
			{When: 20, Kind: KindIdleExit},
			{When: 30, Kind: KindUnpark},
			{When: 40, Kind: KindTaskStart, Run: 1},
			{When: 50, Kind: KindTaskEnd},
		}},
		Dropped: []int64{100},
	}
	p := BuildProfile(tr, 4)
	if p.Workers[0].Tasks != 1 {
		t.Errorf("tasks = %d, want 1", p.Workers[0].Tasks)
	}
	if p.MaxLiveFrames != 1 {
		t.Errorf("maxLiveFrames = %d, want 1", p.MaxLiveFrames)
	}
	if p.Dropped != 100 {
		t.Errorf("dropped = %d, want 100", p.Dropped)
	}
}

// TestProfileOpensStraddlingIntervals: a worker parked since before Start
// emits Unpark/IdleExit with no matching starts; the profile must charge
// that time as parked/idle from the window start, not drop it.
func TestProfileOpensStraddlingIntervals(t *testing.T) {
	ms := int64(time.Millisecond)
	tr := &Trace{
		Duration: time.Duration(10 * ms),
		Workers: [][]Event{{
			{When: 5 * ms, Kind: KindUnpark},
			{When: 6 * ms, Kind: KindIdleExit},
			{When: 6 * ms, Kind: KindTaskStart, Run: 1},
			{When: 10 * ms, Kind: KindTaskEnd},
		}},
		Dropped: []int64{0},
	}
	p := BuildProfile(tr, 10)
	w := p.Workers[0]
	if w.Parked != 5*time.Millisecond {
		t.Errorf("parked = %v, want 5ms (since window start)", w.Parked)
	}
	if w.Hunt != time.Millisecond {
		t.Errorf("hunt = %v, want 1ms (idle 6ms − parked 5ms)", w.Hunt)
	}
	if w.Busy != 4*time.Millisecond {
		t.Errorf("busy = %v, want 4ms", w.Busy)
	}
	// A task open since the window start counts as busy but not as a task.
	tr2 := &Trace{
		Duration: time.Duration(10 * ms),
		Workers: [][]Event{{
			{When: 4 * ms, Kind: KindTaskEnd},
		}},
		Dropped: []int64{0},
	}
	p2 := BuildProfile(tr2, 10)
	if w := p2.Workers[0]; w.Busy != 4*time.Millisecond || w.Tasks != 0 {
		t.Errorf("pre-open task: busy = %v tasks = %d, want 4ms and 0", w.Busy, w.Tasks)
	}
	if p2.MaxLiveFrames != 1 {
		t.Errorf("pre-open task: maxLiveFrames = %d, want 1", p2.MaxLiveFrames)
	}
}

// chromeFile is the decoded shape of the exported JSON.
type chromeFile struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, synthetic()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	begins := map[int]int{}
	ends := map[int]int{}
	threads := map[int]bool{}
	var taskSeen, stealSeen, idleSeen, counterSeen bool
	for _, ev := range f.TraceEvents {
		switch ev.Phase {
		case "B":
			begins[ev.TID]++
		case "E":
			ends[ev.TID]++
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.TID] = true
			}
		case "C":
			counterSeen = true
		}
		switch ev.Name {
		case "task":
			taskSeen = true
		case "steal":
			stealSeen = true
		case "idle":
			idleSeen = true
		}
	}
	for tid := 0; tid < 2; tid++ {
		if !threads[tid] {
			t.Errorf("no thread_name metadata for worker %d", tid)
		}
		if begins[tid] != ends[tid] {
			t.Errorf("worker %d has %d begins but %d ends", tid, begins[tid], ends[tid])
		}
	}
	if !taskSeen || !stealSeen || !idleSeen || !counterSeen {
		t.Errorf("export missing event types: task=%v steal=%v idle=%v counter=%v",
			taskSeen, stealSeen, idleSeen, counterSeen)
	}
}

func TestWriteChromeClosesOpenSlices(t *testing.T) {
	tr := &Trace{
		Duration: time.Millisecond,
		Workers: [][]Event{{
			{When: 10, Kind: KindTaskStart, Run: 1}, // never ends
			{When: 20, Kind: KindIdleEnter},         // never exits
		}},
		Dropped: []int64{0},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var b, e int
	for _, ev := range f.TraceEvents {
		if ev.Phase == "B" {
			b++
		}
		if ev.Phase == "E" {
			e++
		}
	}
	if b != e {
		t.Errorf("begins %d != ends %d; open slices not closed", b, e)
	}
}
