package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// WorkerProfile summarizes one worker's timeline.
type WorkerProfile struct {
	// Event counts.
	Tasks         int64 // tasks executed (task-start events)
	Spawns        int64
	Steals        int64 // successful steals by this worker
	StealAttempts int64
	StealBatches  int64 // steals that moved extra tasks beyond the one kept
	TasksBatched  int64 // extra tasks those batches moved
	HuntYields    int64 // hunts that escalated from spinning to yielding
	InjectPickups int64
	TaskSkips     int64 // tasks abandoned because their run was cancelled
	Panics        int64 // panics quarantined inside this worker's tasks
	LoopSplits    int64 // stolen lazy-loop ranges halved on this worker
	LoopChunks    int64 // grain-sized lazy-loop chunks executed
	// DomainEscalations counts hunts that swept the worker's own steal
	// domain dry and crossed to remote domains (always zero on a flat
	// runtime).
	DomainEscalations int64
	// Time split. Busy is time with at least one task open; Hunt is time
	// inside idle slices but not parked (actively probing victims); Parked
	// is time blocked on the runtime condition variable. The remainder of
	// the wall clock is scheduler overhead between slices.
	Busy   time.Duration
	Hunt   time.Duration
	Parked time.Duration
	// MaxLiveFrames is the worker's deepest runTask nesting — its peak
	// count of simultaneously live frames.
	MaxLiveFrames int64
}

// Profile is the derived view of a Trace: where each worker's time went,
// aggregate utilization over time, steal latencies, and the live-frames
// high-water series.
type Profile struct {
	// Wall is the length of the profiled window. When ring buffers wrapped,
	// the window is clipped to the retained events: it starts WindowStart
	// after the trace epoch instead of at zero, so time splits are computed
	// over the region the events actually cover.
	Wall        time.Duration
	WindowStart time.Duration
	Workers     []WorkerProfile

	// Utilization[b] is the fraction of bucket b's worker-time spent
	// running tasks, aggregated over all workers; BucketDur is the bucket
	// width (Wall / len(Utilization)).
	Utilization []float64
	BucketDur   time.Duration

	// StealLatency is the distribution of hunt time preceding each
	// successful steal: from the first probe after running out of work to
	// the probe that succeeded.
	StealLatency Histogram

	// LiveFrames[b] is the high-water mark, within bucket b, of the global
	// count of simultaneously live frames (summed over workers);
	// MaxLiveFrames is the overall high-water mark — the Cilkmem-style
	// memory profile of the actual schedule.
	LiveFrames    []int64
	MaxLiveFrames int64

	// Events is the number of events profiled; Dropped counts ring-buffer
	// overwrites (the profile covers only retained events).
	Events  int
	Dropped int64
}

// ObservedParallelism is total busy time divided by wall time — the
// empirical counterpart of Cilkview's predicted parallelism, bounded above
// by the worker count.
func (p *Profile) ObservedParallelism() float64 {
	if p.Wall <= 0 {
		return 0
	}
	var busy time.Duration
	for _, w := range p.Workers {
		busy += w.Busy
	}
	return float64(busy) / float64(p.Wall)
}

// frameDelta is a ±1 change of the global live-frame count, for the merged
// sweep across workers.
type frameDelta struct {
	when  int64
	delta int
}

// BuildProfile derives a Profile from a trace, dividing the window into the
// given number of utilization buckets (≤ 0 means 60).
func BuildProfile(t *Trace, buckets int) *Profile {
	if buckets <= 0 {
		buckets = 60
	}
	end := t.Duration
	var start time.Duration
	for _, events := range t.Workers {
		if n := len(events); n > 0 && time.Duration(events[n-1].When) > end {
			end = time.Duration(events[n-1].When)
		}
	}
	// When rings wrapped, earlier events are gone — and each worker's ring
	// wraps at its own pace. Clip the window to where every worker still
	// has coverage (the latest first-retained event), so no worker shows
	// fake idle time for a region its ring overwrote.
	if t.TotalDropped() > 0 {
		for _, events := range t.Workers {
			if len(events) > 0 && time.Duration(events[0].When) > start {
				start = time.Duration(events[0].When)
			}
		}
	}
	wall := end - start
	if wall <= 0 {
		wall = time.Nanosecond
	}
	p := &Profile{
		Wall:         wall,
		WindowStart:  start,
		Workers:      make([]WorkerProfile, len(t.Workers)),
		Utilization:  make([]float64, buckets),
		BucketDur:    wall / time.Duration(buckets),
		StealLatency: newLatencyHist(),
		LiveFrames:   make([]int64, buckets),
		Events:       t.Events(),
		Dropped:      t.TotalDropped(),
	}
	busyNs := make([]float64, buckets)
	var deltas []frameDelta

	startNs := int64(start)
	wallNs := int64(wall)
	bucketOf := func(ns int64) int {
		b := int(ns * int64(buckets) / wallNs)
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	// addBusy distributes [from, to) nanoseconds over the busy buckets.
	addBusy := func(from, to int64) {
		if to <= from {
			return
		}
		lo, hi := bucketOf(from), bucketOf(to-1)
		for b := lo; b <= hi; b++ {
			bStart := wallNs * int64(b) / int64(buckets)
			bEnd := wallNs * int64(b+1) / int64(buckets)
			s, e := max64(from, bStart), min64(to, bEnd)
			if e > s {
				busyNs[b] += float64(e - s)
			}
		}
	}

	for wid, events := range t.Workers {
		wp := &p.Workers[wid]
		var taskDepth int64
		var busyStart, idleStart, parkStart, huntStart int64 = -1, -1, -1, -1
		// Pre-scan for intervals that began before the window: tracing can
		// start (or a ring can wrap) while a worker is mid-task, idle, or
		// parked, leaving end events with no start. An unmatched end means
		// the worker has been in that state since the window opened, so open
		// the interval at the window start instead of dropping it — a worker
		// parked since before Start would otherwise show unaccounted time.
		{
			depth := 0
			seenIdle, seenPark := false, false
			for _, ev := range events {
				switch ev.Kind {
				case KindTaskStart:
					depth++
				case KindTaskEnd:
					if depth > 0 {
						depth--
					} else {
						taskDepth++
					}
				case KindIdleEnter:
					seenIdle = true
				case KindIdleExit:
					if !seenIdle {
						idleStart = 0
						seenIdle = true
					}
				case KindPark:
					seenPark = true
				case KindUnpark:
					if !seenPark {
						parkStart = 0
						seenPark = true
					}
				}
			}
			if taskDepth > 0 {
				busyStart = 0
				wp.MaxLiveFrames = taskDepth
				for j := int64(0); j < taskDepth; j++ {
					// when −1 sorts these opens ahead of any end clipped to 0.
					deltas = append(deltas, frameDelta{-1, +1})
				}
			}
		}
		for _, ev := range events {
			// Events before the clipped window (from workers whose rings
			// kept more history) clamp to its start so open intervals
			// carry in correctly.
			when := ev.When - startNs
			if when < 0 {
				when = 0
			}
			switch ev.Kind {
			case KindTaskStart:
				wp.Tasks++
				taskDepth++
				if taskDepth > wp.MaxLiveFrames {
					wp.MaxLiveFrames = taskDepth
				}
				if taskDepth == 1 {
					busyStart = when
				}
				deltas = append(deltas, frameDelta{when, +1})
				huntStart = -1
			case KindTaskEnd:
				if taskDepth == 0 {
					continue // start lost to wraparound
				}
				taskDepth--
				if taskDepth == 0 {
					wp.Busy += time.Duration(when - busyStart)
					addBusy(busyStart, when)
					busyStart = -1
				}
				deltas = append(deltas, frameDelta{when, -1})
			case KindSpawn:
				wp.Spawns++
			case KindStealAttempt:
				wp.StealAttempts++
				if huntStart < 0 {
					huntStart = when
				}
			case KindStealSuccess:
				wp.Steals++
				if huntStart >= 0 {
					p.StealLatency.add(time.Duration(when - huntStart))
					huntStart = -1
				}
			case KindStealBatch:
				// Follows its KindStealSuccess event, which already closed the
				// hunt; only the counters need updating.
				wp.StealBatches++
				wp.TasksBatched += int64(ev.Arg)
			case KindHuntYield:
				wp.HuntYields++
			case KindLoopSplit:
				wp.LoopSplits++
			case KindChunkRun:
				wp.LoopChunks++
			case KindDomainEscalate:
				wp.DomainEscalations++
			case KindInjectPickup:
				wp.InjectPickups++
				huntStart = -1
			case KindTaskSkip:
				wp.TaskSkips++
				huntStart = -1
			case KindPanic:
				wp.Panics++
			case KindIdleEnter:
				idleStart = when
			case KindIdleExit:
				if idleStart >= 0 {
					wp.Hunt += time.Duration(when - idleStart)
					idleStart = -1
				}
			case KindPark:
				parkStart = when
			case KindUnpark:
				if parkStart >= 0 {
					wp.Parked += time.Duration(when - parkStart)
					parkStart = -1
				}
			}
		}
		// Close intervals still open at the end of the window.
		if busyStart >= 0 {
			wp.Busy += time.Duration(wallNs - busyStart)
			addBusy(busyStart, wallNs)
		}
		if idleStart >= 0 {
			wp.Hunt += time.Duration(wallNs - idleStart)
		}
		if parkStart >= 0 {
			wp.Parked += time.Duration(wallNs - parkStart)
		}
		// Park slices nest inside idle slices; report hunting exclusive of
		// parked time.
		wp.Hunt -= wp.Parked
		if wp.Hunt < 0 {
			wp.Hunt = 0
		}
	}

	// Global live-frames sweep: merge the per-worker ±1 deltas by time and
	// track the running sum's high-water mark per bucket and overall.
	sortDeltas(deltas)
	var live int64
	for _, d := range deltas {
		live += int64(d.delta)
		if live > p.MaxLiveFrames {
			p.MaxLiveFrames = live
		}
		b := bucketOf(d.when)
		if live > p.LiveFrames[b] {
			p.LiveFrames[b] = live
		}
	}
	// Carry the running level into buckets without events of their own.
	var level int64
	i := 0
	for b := 0; b < buckets; b++ {
		bEnd := wallNs * int64(b+1) / int64(buckets)
		if level > p.LiveFrames[b] {
			p.LiveFrames[b] = level
		}
		for i < len(deltas) && deltas[i].when < bEnd {
			level += int64(deltas[i].delta)
			i++
		}
	}

	if nw := len(t.Workers); nw > 0 {
		denom := float64(p.BucketDur) * float64(nw)
		for b := range p.Utilization {
			if denom > 0 {
				u := busyNs[b] / denom
				if u > 1 {
					u = 1
				}
				p.Utilization[b] = u
			}
		}
	}
	return p
}

func sortDeltas(d []frameDelta) {
	sort.Slice(d, func(i, j int) bool {
		if d[i].when != d[j].when {
			return d[i].when < d[j].when
		}
		// Ends before starts at equal timestamps, so the high-water mark
		// is not inflated by adjacent slices.
		return d[i].delta < d[j].delta
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled to [0, hi] as unicode block characters.
func sparkline(values []float64, hi float64) string {
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if hi > 0 {
			idx = int(v / hi * float64(len(sparkRunes)))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			if idx < 0 {
				idx = 0
			}
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Render formats the profile as an ASCII report: per-worker time split and
// counts, the utilization timeline, the live-frames high-water series, and
// the steal-latency histogram.
func (p *Profile) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d workers, wall %v, %d events (%d dropped)\n",
		len(p.Workers), p.Wall.Round(time.Microsecond), p.Events, p.Dropped)
	if p.WindowStart > 0 {
		fmt.Fprintf(&sb, "(rings wrapped: profile covers the final %v, from %v after start)\n",
			p.Wall.Round(time.Microsecond), p.WindowStart.Round(time.Microsecond))
	}
	sb.WriteString("\n")

	fmt.Fprintf(&sb, "%6s  %6s %6s %6s  %9s %9s %8s %9s %7s %6s\n",
		"worker", "busy%", "hunt%", "park%", "tasks", "spawns", "steals", "attempts", "inject", "maxlf")
	var tot WorkerProfile
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(p.Wall) }
	for i, w := range p.Workers {
		fmt.Fprintf(&sb, "%6d  %6.1f %6.1f %6.1f  %9d %9d %8d %9d %7d %6d\n",
			i, pct(w.Busy), pct(w.Hunt), pct(w.Parked),
			w.Tasks, w.Spawns, w.Steals, w.StealAttempts, w.InjectPickups, w.MaxLiveFrames)
		tot.Busy += w.Busy
		tot.Hunt += w.Hunt
		tot.Parked += w.Parked
		tot.Tasks += w.Tasks
		tot.Spawns += w.Spawns
		tot.Steals += w.Steals
		tot.StealAttempts += w.StealAttempts
		tot.StealBatches += w.StealBatches
		tot.TasksBatched += w.TasksBatched
		tot.InjectPickups += w.InjectPickups
		tot.TaskSkips += w.TaskSkips
		tot.Panics += w.Panics
		tot.LoopSplits += w.LoopSplits
		tot.LoopChunks += w.LoopChunks
		tot.DomainEscalations += w.DomainEscalations
	}
	n := len(p.Workers)
	if n > 0 {
		fmt.Fprintf(&sb, "%6s  %6.1f %6.1f %6.1f  %9d %9d %8d %9d %7d\n",
			"all", pct(tot.Busy)/float64(n), pct(tot.Hunt)/float64(n), pct(tot.Parked)/float64(n),
			tot.Tasks, tot.Spawns, tot.Steals, tot.StealAttempts, tot.InjectPickups)
	}
	if tot.StealBatches > 0 {
		fmt.Fprintf(&sb, "\nbatched steals: %d batches moved %d extra tasks (%.1f per batch)\n",
			tot.StealBatches, tot.TasksBatched, float64(tot.TasksBatched)/float64(tot.StealBatches))
	}
	if tot.LoopChunks > 0 {
		fmt.Fprintf(&sb, "\nlazy loops: %d chunks run, %d steal-driven splits\n",
			tot.LoopChunks, tot.LoopSplits)
	}
	if tot.DomainEscalations > 0 {
		fmt.Fprintf(&sb, "\nsteal locality: %d hunts escalated past their own domain\n",
			tot.DomainEscalations)
	}
	if tot.TaskSkips > 0 || tot.Panics > 0 {
		fmt.Fprintf(&sb, "\nabandoned work: %d tasks skipped after cancellation, %d panics quarantined\n",
			tot.TaskSkips, tot.Panics)
	}

	fmt.Fprintf(&sb, "\nutilization over time (%d buckets of %v, mean %.1f%%, observed parallelism %.2f):\n",
		len(p.Utilization), p.BucketDur.Round(time.Microsecond),
		100*mean(p.Utilization), p.ObservedParallelism())
	fmt.Fprintf(&sb, "  |%s|\n", sparkline(p.Utilization, 1))

	lf := make([]float64, len(p.LiveFrames))
	for i, v := range p.LiveFrames {
		lf[i] = float64(v)
	}
	fmt.Fprintf(&sb, "\nlive frames over time (high-water %d):\n", p.MaxLiveFrames)
	fmt.Fprintf(&sb, "  |%s|\n", sparkline(lf, float64(p.MaxLiveFrames)))

	h := &p.StealLatency
	fmt.Fprintf(&sb, "\nsteal latency (first probe → successful steal): %d steals", h.N)
	if h.N > 0 {
		fmt.Fprintf(&sb, ", mean %v, p50 %v, p95 %v, p99 %v, max %v\n",
			h.Mean().Round(time.Nanosecond*10),
			h.Quantile(0.50).Round(time.Nanosecond*10),
			h.Quantile(0.95).Round(time.Nanosecond*10),
			h.Quantile(0.99).Round(time.Nanosecond*10),
			h.Max.Round(time.Nanosecond*10))
		maxCount := int64(0)
		for _, c := range h.Counts {
			if c > maxCount {
				maxCount = c
			}
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			var label string
			if i < len(h.Bounds) {
				label = "<" + h.Bounds[i].String()
			} else {
				label = ">=" + h.Bounds[len(h.Bounds)-1].String()
			}
			bar := strings.Repeat("█", int(40*c/maxCount))
			if bar == "" {
				bar = "▏"
			}
			fmt.Fprintf(&sb, "  %9s  %-40s %d\n", label, bar, c)
		}
	} else {
		sb.WriteString("\n")
	}
	return sb.String()
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
