package cilklock

import (
	"sync"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	m := New("counter")
	var wg sync.WaitGroup
	counter := 0
	const goroutines, iters = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
	s := m.Stats()
	if s.Acquisitions != goroutines*iters {
		t.Fatalf("Acquisitions = %d, want %d", s.Acquisitions, goroutines*iters)
	}
	if s.Contended > s.Acquisitions {
		t.Fatalf("Contended %d > Acquisitions %d", s.Contended, s.Acquisitions)
	}
}

func TestUncontendedStats(t *testing.T) {
	m := New("quiet")
	for i := 0; i < 10; i++ {
		m.Lock()
		m.Unlock()
	}
	s := m.Stats()
	if s.Acquisitions != 10 || s.Contended != 0 || s.Wait != 0 {
		t.Fatalf("stats = %+v, want 10 uncontended acquisitions", s)
	}
	m.ResetStats()
	if s := m.Stats(); s.Acquisitions != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestDistinctIDs(t *testing.T) {
	a, b := New("a"), New("b")
	if a.ID() == b.ID() {
		t.Fatal("two mutexes share an ID")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatal("names not preserved")
	}
}

type recObserver struct{ events []string }

func (r *recObserver) OnLock(id uint64)   { r.events = append(r.events, "L") }
func (r *recObserver) OnUnlock(id uint64) { r.events = append(r.events, "U") }

func TestObserverEvents(t *testing.T) {
	rec := &recObserver{}
	SetObserver(rec)
	defer SetObserver(nil)
	m := New("observed")
	m.Lock()
	m.Unlock()
	m.Lock()
	m.Unlock()
	if got := len(rec.events); got != 4 {
		t.Fatalf("observer saw %d events, want 4", got)
	}
	for i, e := range rec.events {
		want := "L"
		if i%2 == 1 {
			want = "U"
		}
		if e != want {
			t.Fatalf("event %d = %s, want %s", i, e, want)
		}
	}
}

func TestObserverRemoval(t *testing.T) {
	rec := &recObserver{}
	SetObserver(rec)
	SetObserver(nil)
	m := New("unobserved")
	m.Lock()
	m.Unlock()
	if len(rec.events) != 0 {
		t.Fatalf("removed observer still saw %d events", len(rec.events))
	}
}
