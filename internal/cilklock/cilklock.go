// Package cilklock is the Cilk++ mutual-exclusion library (§1: "Cilk++
// includes a library for mutual-exclusion (mutex) locks").
//
// The paper notes that locking is needed far less often under Cilk++ than
// under Pthreads because the runtime handles all control synchronization;
// when a mutex is used, this package adds two Cilk-specific capabilities on
// top of sync.Mutex:
//
//   - contention statistics (acquisitions, contended acquisitions, total
//     wait time), which experiment E8 uses to reproduce §5's observation
//     that lock contention on a hot global made a 4-processor run slower
//     than a serial one; and
//   - lockset reporting to the Cilkscreen race detector: during a serial
//     detection run, Lock/Unlock notify the installed observer so the
//     detector can suppress races between strands that hold a common lock
//     (§4: a data race requires that "the two strands hold no locks in
//     common").
package cilklock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer receives lock events during a (serial) race-detection run.
type Observer interface {
	// OnLock fires after the mutex with the given id is acquired.
	OnLock(id uint64)
	// OnUnlock fires before the mutex with the given id is released.
	OnUnlock(id uint64)
}

var (
	nextID   atomic.Uint64
	observer atomic.Pointer[Observer]
)

// SetObserver installs the global lock observer used by race-detection
// runs, replacing any previous one. Pass nil to remove. Detection runs are
// serial, so a single global observer suffices; production runs leave it
// nil and pay only an atomic load per lock operation.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&o)
}

// Mutex is a mutual-exclusion lock with a stable identity and contention
// accounting. The zero value is not valid; use New.
type Mutex struct {
	mu   sync.Mutex
	id   uint64
	name string

	acquisitions atomic.Int64
	contended    atomic.Int64
	waitNanos    atomic.Int64
}

// New creates a mutex. The name appears in race reports and statistics.
func New(name string) *Mutex {
	return &Mutex{id: nextID.Add(1), name: name}
}

// ID returns the mutex's stable identity used in locksets.
func (m *Mutex) ID() uint64 { return m.id }

// Name returns the mutex's diagnostic name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex, recording whether the acquisition contended and
// for how long it waited.
func (m *Mutex) Lock() {
	m.acquisitions.Add(1)
	if !m.mu.TryLock() {
		m.contended.Add(1)
		start := time.Now()
		m.mu.Lock()
		m.waitNanos.Add(time.Since(start).Nanoseconds())
	}
	if p := observer.Load(); p != nil {
		(*p).OnLock(m.id)
	}
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	if p := observer.Load(); p != nil {
		(*p).OnUnlock(m.id)
	}
	m.mu.Unlock()
}

// Stats is a snapshot of a mutex's contention counters.
type Stats struct {
	Name         string
	Acquisitions int64         // total Lock calls
	Contended    int64         // Lock calls that had to wait
	Wait         time.Duration // total time spent waiting
}

// Stats returns a snapshot of the mutex's counters.
func (m *Mutex) Stats() Stats {
	return Stats{
		Name:         m.name,
		Acquisitions: m.acquisitions.Load(),
		Contended:    m.contended.Load(),
		Wait:         time.Duration(m.waitNanos.Load()),
	}
}

// ResetStats zeroes the mutex's counters.
func (m *Mutex) ResetStats() {
	m.acquisitions.Store(0)
	m.contended.Store(0)
	m.waitNanos.Store(0)
}
