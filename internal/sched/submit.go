package sched

// This file is the canonical submission API: Submit hands the runtime a root
// computation plus per-run options (stats, QoS class, priority, tenant
// label, time/memory budget) and returns a *Ticket the caller awaits. The
// pre-redesign entry points Run/RunCtx/RunWithStats/RunWithStatsCtx are thin
// wrappers over the same path (see their Deprecated notes).
//
// Submission-time failures — a canceled context, a shut-down runtime, an
// admission or quota rejection — are returned by Submit itself and never
// create a run; the run's own outcome (completion, cancellation, quarantined
// panic) is what Ticket.Wait returns.
//
// Wake guarantee (the injected-root lost-wakeup fix): the enqueue of a root
// into its lane, the rt.injected increment, and the cond.Signal all happen
// while holding rt.mu, and a parking worker re-checks rt.injected under the
// same mutex before it Waits. So for every queued root, either some worker
// observed rt.injected > 0 on its pre-park re-check (and goes back to
// sweeping), or every would-be parker was blocked on rt.mu until after the
// Signal was issued with at least that root queued — a signal that, by the
// condition-variable contract, wakes a waiter if one exists. Spawn-path
// wakes may still be dropped (benign; see stealableWork); the root-injection
// wake is the one enqueue whose producer will not execute the work itself,
// and this pairing makes it unloseable. schedsan's Options.BreakInjectWake
// suppresses exactly this Signal to prove the stall watchdog notices.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Admission sentinels. Both are submission-time rejections: no run is
// created, nothing is queued, and the caller should shed or retry later.
// Submit wraps them with detail; match with errors.Is.
var (
	// ErrAdmission reports that the runtime as a whole is at capacity
	// (AdmissionConfig.MaxQueued/MaxActive/MaxMemory).
	ErrAdmission = errors.New("sched: admission refused: runtime at capacity")
	// ErrQuota reports that the submitting tenant is over its own quota.
	ErrQuota = errors.New("sched: admission refused: tenant over quota")
)

// submitCfg collects the per-run options of one Submit call.
type submitCfg struct {
	track      bool
	qos        QoSClass
	tenant     string
	priority   int
	timeBudget time.Duration
	memory     int64
}

// RunOption configures one Submit call.
type RunOption func(*submitCfg)

// WithStats arms per-computation accounting: the Ticket's Stats covers
// exactly this computation — its spawns, tasks, steals of its tasks — so
// concurrent submissions sharing the workers can be told apart. Costs a few
// per-run atomic increments; without it (and without a RunObserver) the
// Ticket's Stats is zero.
func WithStats() RunOption {
	return func(sc *submitCfg) { sc.track = true }
}

// WithQoS assigns the run's quality-of-service class (default QoSBatch),
// which sets the rate its root is picked up at under backlog — see the DRR
// weights in inject.go. An out-of-range class falls back to QoSBatch.
func WithQoS(q QoSClass) RunOption {
	return func(sc *submitCfg) {
		if q >= numQoS {
			q = QoSBatch
		}
		sc.qos = q
	}
}

// WithTenant labels the run with a tenant identity: quotas (WithAdmission),
// per-tenant load accounting (LoadReport), observer reports, and lane
// affinity (a tenant's roots are hashed to a stable lane) all key off it.
func WithTenant(name string) RunOption {
	return func(sc *submitCfg) { sc.tenant = name }
}

// WithPriority orders a run's root within its QoS class's queue: higher
// priorities are picked up first, equal priorities keep arrival order. The
// default is 0. Priority never crosses classes — a best-effort root with
// priority 100 still waits behind the interactive class's DRR share.
func WithPriority(p int) RunOption {
	return func(sc *submitCfg) { sc.priority = p }
}

// WithTimeBudget bounds the run's wall-clock lifetime, queueing included:
// after d the run is cooperatively canceled and the Ticket reports
// ErrDeadlineExceeded. Equivalent to submitting under a context with that
// timeout, without the caller having to manage the cancel.
func WithTimeBudget(d time.Duration) RunOption {
	return func(sc *submitCfg) { sc.timeBudget = d }
}

// WithMemoryBudget declares and enforces the run's peak memory in bytes. At
// admission the declared estimate is charged against AdmissionConfig/Quota
// MaxMemory for the run's lifetime. At execution it is a hard budget: the
// runtime meters the run's live memory — activation frames (including
// queued, not-yet-run spawns) plus the program's own Context.Charge
// declarations — at every spawn, task-start, and chunk boundary, and a run
// that exceeds the budget is cooperatively cancelled with ErrMemoryBudget
// (skip-but-join: running strands finish their grain, pending work is
// abandoned but still joins). A budget implies per-run accounting, as if
// WithStats were also given; Ticket.Stats().MemPeakBytes reports the
// measured high-water mark (Cilkmem's "don't admit work you can't bound"
// posture, now measured rather than honor-system).
func WithMemoryBudget(bytes int64) RunOption {
	return func(sc *submitCfg) { sc.memory = bytes }
}

// Ticket is the handle to one submitted computation. Await it with Wait (or
// select on Done and then call Err/Stats); a Ticket may be awaited from any
// goroutine and any number of times.
type Ticket struct {
	rt *Runtime
	rs *runState

	once  sync.Once
	stats Stats
	err   error
}

// Done returns a channel closed when the computation has completed or been
// abandoned — including everything it spawned.
func (tk *Ticket) Done() <-chan struct{} { return tk.rs.done }

// Wait blocks until the computation completes and returns its error: nil, a
// cancellation sentinel (ErrCanceled, ErrDeadlineExceeded, ErrShutdown), or
// a quarantined *PanicError.
func (tk *Ticket) Wait() error {
	<-tk.rs.done
	tk.settle()
	return tk.err
}

// Err returns the computation's error without blocking: nil both while the
// run is still in flight and when it completed cleanly (use Done or Wait to
// distinguish).
func (tk *Ticket) Err() error {
	select {
	case <-tk.rs.done:
		tk.settle()
		return tk.err
	default:
		return nil
	}
}

// Stats blocks until the computation completes and returns its per-run
// Stats snapshot. Zero unless the run was submitted WithStats or the
// runtime carries a RunObserver.
func (tk *Ticket) Stats() Stats {
	<-tk.rs.done
	tk.settle()
	return tk.stats
}

// ID returns the run's id, matching trace-event and observer attribution.
func (tk *Ticket) ID() int64 { return tk.rs.id }

// Tenant returns the tenant label the run was submitted under ("" if none).
func (tk *Ticket) Tenant() string { return tk.rs.tenant }

// Class returns the run's QoS class.
func (tk *Ticket) Class() QoSClass { return tk.rs.qos }

// QueueLatency returns how long the root waited in its injection lane
// before a worker picked it up, or 0 while it is still queued (and always 0
// in serial-elision mode, where there is no queue).
func (tk *Ticket) QueueLatency() time.Duration { return tk.rs.queueLatency() }

// settle freezes the ticket's terminal stats and error, once.
func (tk *Ticket) settle() {
	tk.once.Do(func() {
		tk.rt.sanRunQuiescence(tk.rs)
		tk.stats = tk.rs.snapshot()
		tk.err = tk.rs.err()
	})
}

// settleWith prefills the terminal state (serial elision completes inline).
func (tk *Ticket) settleWith(stats Stats, err error) {
	tk.once.Do(func() {
		tk.stats, tk.err = stats, err
	})
}

// Submit enqueues fn as the root of a fork-join computation and returns a
// Ticket for it. With default options it is Run's exact behavior split into
// its two halves: Submit(ctx, fn) followed by Ticket.Wait is
// RunCtx(ctx, fn) — same stats, same reducer fold order, same sentinel
// errors. Submit returns an error only for submission-time failures: a
// context already done (its mapped sentinel), a shut-down runtime
// (ErrShutdown), or an admission rejection (ErrAdmission/ErrQuota, with no
// run created); every outcome of a successfully submitted run is reported
// by the Ticket. Submit may be called concurrently from any number of
// goroutines.
func (rt *Runtime) Submit(ctx context.Context, fn func(*Context), opts ...RunOption) (*Ticket, error) {
	sc := submitCfg{qos: QoSBatch}
	for _, o := range opts {
		o(&sc)
	}
	return rt.submit(ctx, fn, sc)
}

func (rt *Runtime) submit(ctx context.Context, fn func(*Context), sc submitCfg) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, mapCtxErr(err)
	}
	// Memory watermarks (see memory.go): the live gauge is read once per
	// submission, only when a watermark is configured. Above the hard
	// watermark the most out-of-profile best-effort run is shed before this
	// submission is even considered; above the soft one, admit itself turns
	// defensive (best-effort rejected, declarations distrusted).
	var liveBytes int64
	if rt.adm.memWatermarksArmed() {
		liveBytes = rt.MemLiveBytes()
		rt.shedForMemory(liveBytes)
	}
	charged, err := rt.adm.admit(sc.tenant, sc.qos, sc.memory, liveBytes)
	if err != nil {
		return nil, err
	}
	rs := &runState{
		id: rt.runIDs.Add(1), rt: rt, done: make(chan struct{}),
		tenant: sc.tenant, qos: sc.qos, prio: sc.priority, memEst: sc.memory,
		memAdm: charged, memBudget: sc.memory,
	}
	obs := rt.cfg.observer
	if sc.track || obs != nil || sc.memory > 0 {
		// Observation implies per-run accounting: the observer's report
		// carries the run's Stats (spawns, steals, …) alongside work/span.
		// One cell per worker keeps the hot counters uncontended; the cells
		// are summed at quiescence and on snapshot reads. A memory budget
		// implies accounting too — enforcement needs the live-byte shards.
		rs.stats = newRunCounters(len(rt.workers))
	}
	if obs != nil {
		rs.clock = &runClock{}
		rs.start = time.Now()
		obs.RunStart(rs.id, rs.start)
	}
	var budgetCancel context.CancelFunc
	if sc.timeBudget > 0 {
		ctx, budgetCancel = context.WithTimeout(ctx, sc.timeBudget)
	}

	if rt.cfg.serial {
		stop := rs.watch(ctx)
		err := rt.runSerial(fn, rs)
		stop()
		if budgetCancel != nil {
			budgetCancel()
		}
		rs.release()
		if cl := rs.clock; cl != nil {
			// The serial elision is one strand: work and span are both its
			// wall-clock duration (T1 = T∞ by definition).
			d := int64(time.Since(rs.start))
			cl.work.Store(d)
			cl.span.Store(d)
		}
		snap := rs.snapshot()
		if obs != nil {
			obs.RunEnd(rt.report(rs, snap, err))
		}
		tk := &Ticket{rt: rt, rs: rs}
		tk.settleWith(snap, err)
		close(rs.done)
		return tk, nil
	}

	// The root task rides inside its frame like any spawned child: one shared
	// allocation (Submit is off the spawn fast path, so the per-worker
	// freelists are not used here).
	root := newFrameShared(nil, rs, 0, 0)
	root.t.fn = fn
	t := &root.t
	rs.enqNs = rt.nanots()
	// Install the context watcher (and fold in the time-budget cancel)
	// before the root becomes visible to workers: rs.stop must be set before
	// any worker can reach finish(), which releases it.
	stop := rs.watch(ctx)
	if budgetCancel != nil {
		watchStop := stop
		stop = func() { watchStop(); budgetCancel() }
	}
	rs.stop = stop

	cls := rs.qos
	if rt.cfg.legacyInject {
		// The pre-sharding A/B baseline: one FIFO, blind to class and
		// priority (accounting still tracks the declared class).
		cls = QoSBatch
		rs.prio = 0
	}
	lane := rt.laneFor(rs.tenant)

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		rs.release()
		freeFrameShared(root)
		if obs != nil {
			obs.RunEnd(rt.report(rs, Stats{}, ErrShutdown))
		}
		return nil, ErrShutdown
	}
	rt.activeRoots++
	rt.active[rs] = struct{}{}
	lane.push(t, cls, rs.prio)
	rt.injected.Add(1)
	rt.queuedByClass[rs.qos].Add(1)
	if s := rt.san; s != nil && s.opts.BreakInjectWake {
		// Deliberately broken root announcement (test-only): the new work is
		// visible in the lane and rt.injected but no parked worker is told.
		// This is the one fault that genuinely stalls the runtime — the
		// watchdog acceptance tests use it to exercise detection and rescue.
	} else {
		rt.cond.Signal()
	}
	rt.mu.Unlock()
	return &Ticket{rt: rt, rs: rs}, nil
}

// report builds the observer's terminal record for rs.
func (rt *Runtime) report(rs *runState, snap Stats, err error) RunReport {
	return RunReport{
		ID: rs.id, Start: rs.start, End: time.Now(), Stats: snap, Err: err,
		Tenant: rs.tenant, Class: rs.qos, Queued: rs.queueLatency(),
	}
}

// Admission control. A runtime always carries an admission state (it is the
// per-tenant load accounting behind LoadReport); WithAdmission additionally
// arms the limits. The state machine per run is
//
//	admit (Submit):   queued++          — reject instead if a limit would be
//	                                      exceeded; a rejected Submit leaves
//	                                      no trace beyond the counters
//	picked (pickup):  queued--, running++
//	release (finish): running--          (or queued-- if never picked up:
//	                                      serial elision, shut-down runtime)
//
// Memory is charged at admit and returned at release. A queued root whose
// context is canceled holds its queue slot until pickup — the skip-but-join
// drain is what unwinds it — so MaxQueued bounds lane occupancy exactly.
// The admission mutex is leaf-level: it is never held while acquiring rt.mu
// or a lane mutex.

// Quota bounds one tenant's use of the runtime. Zero-valued fields are
// unlimited.
type Quota struct {
	// MaxQueued bounds the tenant's roots waiting in injection lanes.
	MaxQueued int
	// MaxActive bounds the tenant's in-flight runs (queued + running).
	MaxActive int
	// MaxMemory bounds the sum of the tenant's in-flight declared
	// WithMemoryBudget estimates, in bytes.
	MaxMemory int64
}

// AdmissionConfig arms admission control (WithAdmission): global limits plus
// per-tenant quotas. Zero-valued fields are unlimited.
type AdmissionConfig struct {
	// MaxQueued, MaxActive, and MaxMemory bound the whole runtime, all
	// tenants together; exceeding them rejects with ErrAdmission.
	MaxQueued int
	MaxActive int
	MaxMemory int64
	// DefaultQuota applies to every tenant without an explicit entry in
	// Tenants (including the unlabeled "" tenant); exceeding a tenant quota
	// rejects with ErrQuota.
	DefaultQuota Quota
	// Tenants maps tenant labels to their quotas.
	Tenants map[string]Quota

	// SoftMemoryWatermark and HardMemoryWatermark arm runtime-wide memory
	// pressure degradation (see memory.go), keyed off the measured live
	// gauge Runtime.MemLiveBytes — not declarations. Above the soft
	// watermark, best-effort submissions are rejected with ErrAdmission and
	// every other submission is charged max(declared estimate, the tenant's
	// EWMA of measured run peaks) — pressure is when declared-too-small
	// estimates hurt, so admission stops trusting them. Above the hard
	// watermark, each submission additionally cancels (ErrMemoryBudget) the
	// best-effort run whose live memory most exceeds its tenant's EWMA.
	// Zero disables either watermark.
	SoftMemoryWatermark int64
	HardMemoryWatermark int64
}

func (cfg *AdmissionConfig) quotaFor(tenant string) Quota {
	if q, ok := cfg.Tenants[tenant]; ok {
		return q
	}
	return cfg.DefaultQuota
}

// WithAdmission arms admission control with the given limits and quotas.
// Without this option Submit never rejects (the admission state still
// tracks per-tenant load for LoadReport).
func WithAdmission(cfg AdmissionConfig) Option {
	return func(c *config) { c.admission = &cfg }
}

// WithLegacyInject reverts root injection to the pre-sharding behavior —
// one FIFO lane, blind to QoS class and priority — kept only as the A/B
// baseline for the serving benchmarks. Admission control still applies.
func WithLegacyInject() Option {
	return func(c *config) { c.legacyInject = true }
}

// maxTenantEntries bounds the admission map: once past it, fully idle
// tenant entries are pruned at release (their cumulative counters are
// dropped; the runtime-wide admitted/rejected totals stay exact).
const maxTenantEntries = 256

type admission struct {
	mu            sync.Mutex
	cfg           *AdmissionConfig // nil = accounting only, never rejects
	queued        int
	running       int
	memory        int64
	tenants       map[string]*tenantState
	admitted      int64
	rejectedLoad  int64
	rejectedQuota int64
	// rejectedMemory counts best-effort submissions shed because the live
	// gauge was above SoftMemoryWatermark.
	rejectedMemory int64
}

type tenantState struct {
	queued, running    int
	memory             int64
	admitted, rejected int64
	// memEWMA is the tenant's exponentially weighted mean of measured run
	// peaks (Stats.MemPeakBytes), fed at release with gain 1/8. Above the
	// soft watermark admission charges max(declared, memEWMA), so a tenant
	// whose runs routinely outgrow their declarations pays its measured
	// footprint. Zero until the tenant's first accounted run completes.
	memEWMA int64
}

func newAdmission(cfg *AdmissionConfig) *admission {
	return &admission{cfg: cfg, tenants: make(map[string]*tenantState)}
}

func (a *admission) tenant(name string) *tenantState {
	ts := a.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		a.tenants[name] = ts
	}
	return ts
}

// admit reserves a queue slot (and the charged memory) for one submission,
// or rejects it. Rejections increment counters but reserve nothing. The
// return value is the memory actually charged — the declared estimate, or
// the tenant's EWMA of measured peaks when the live gauge is above the soft
// watermark and the EWMA is larger — which the caller must stash for
// release to refund.
func (a *admission) admit(tenant string, qos QoSClass, mem, liveBytes int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(tenant)
	if cfg := a.cfg; cfg != nil {
		if soft := cfg.SoftMemoryWatermark; soft > 0 && liveBytes > soft {
			if qos == QoSBestEffort {
				a.rejectedMemory++
				a.rejectedLoad++
				ts.rejected++
				return 0, fmt.Errorf("%w: %d live bytes above soft memory watermark %d; best-effort shed", ErrAdmission, liveBytes, soft)
			}
			// Under pressure, stop trusting declarations: charge at least
			// the tenant's measured footprint.
			if ts.memEWMA > mem {
				mem = ts.memEWMA
			}
		}
		switch {
		case cfg.MaxQueued > 0 && a.queued >= cfg.MaxQueued:
			a.rejectedLoad++
			ts.rejected++
			return 0, fmt.Errorf("%w: %d roots queued (max %d)", ErrAdmission, a.queued, cfg.MaxQueued)
		case cfg.MaxActive > 0 && a.queued+a.running >= cfg.MaxActive:
			a.rejectedLoad++
			ts.rejected++
			return 0, fmt.Errorf("%w: %d runs in flight (max %d)", ErrAdmission, a.queued+a.running, cfg.MaxActive)
		case cfg.MaxMemory > 0 && a.memory+mem > cfg.MaxMemory:
			a.rejectedLoad++
			ts.rejected++
			return 0, fmt.Errorf("%w: %d bytes of declared memory in flight (max %d)", ErrAdmission, a.memory, cfg.MaxMemory)
		}
		q := cfg.quotaFor(tenant)
		switch {
		case q.MaxQueued > 0 && ts.queued >= q.MaxQueued:
			a.rejectedQuota++
			ts.rejected++
			return 0, fmt.Errorf("%w: tenant %q has %d roots queued (max %d)", ErrQuota, tenant, ts.queued, q.MaxQueued)
		case q.MaxActive > 0 && ts.queued+ts.running >= q.MaxActive:
			a.rejectedQuota++
			ts.rejected++
			return 0, fmt.Errorf("%w: tenant %q has %d runs in flight (max %d)", ErrQuota, tenant, ts.queued+ts.running, q.MaxActive)
		case q.MaxMemory > 0 && ts.memory+mem > q.MaxMemory:
			a.rejectedQuota++
			ts.rejected++
			return 0, fmt.Errorf("%w: tenant %q has %d bytes of declared memory in flight (max %d)", ErrQuota, tenant, ts.memory, q.MaxMemory)
		}
	}
	a.queued++
	a.memory += mem
	a.admitted++
	ts.queued++
	ts.memory += mem
	ts.admitted++
	return mem, nil
}

// picked transitions one run from queued to running, at root pickup.
func (a *admission) picked(rs *runState) {
	a.mu.Lock()
	rs.picked = true
	a.queued--
	a.running++
	ts := a.tenant(rs.tenant)
	ts.queued--
	ts.running++
	a.mu.Unlock()
}

// release returns a run's reservation, at finish (or when a submission dies
// before pickup: serial elision, shut-down runtime). The refund is memAdm —
// exactly what admit charged — and happens exactly once per run (release is
// guarded by releaseOnce), so a root cancelled before pickup and a run that
// ends in a quarantined panic both refund their memory exactly once. The
// run's measured peak, when accounting was armed, feeds the tenant's EWMA.
func (a *admission) release(rs *runState) {
	var sample int64
	if rs.stats != nil {
		sample = rs.memPeakBytes() // reads atomics; taken outside a.mu
	}
	a.mu.Lock()
	if rs.picked {
		a.running--
	} else {
		a.queued--
	}
	a.memory -= rs.memAdm
	ts := a.tenant(rs.tenant)
	if rs.picked {
		ts.running--
	} else {
		ts.queued--
	}
	ts.memory -= rs.memAdm
	if sample > 0 {
		if ts.memEWMA == 0 {
			ts.memEWMA = sample
		} else {
			ts.memEWMA += (sample - ts.memEWMA) / 8
		}
	}
	if len(a.tenants) > maxTenantEntries && ts.queued == 0 && ts.running == 0 && ts.memory == 0 {
		delete(a.tenants, rs.tenant)
	}
	a.mu.Unlock()
}

// TenantLoad is one tenant's slice of a LoadReport.
type TenantLoad struct {
	// Tenant is the label submissions carried via WithTenant ("" for
	// unlabeled work).
	Tenant string
	// Queued and Running count the tenant's in-flight runs by phase;
	// Memory is its in-flight admission-charged memory, in bytes.
	Queued, Running int
	Memory          int64
	// MemEWMA is the tenant's exponentially weighted mean of measured run
	// peaks (zero until an accounted run completes) — the footprint
	// admission charges instead of the declaration under memory pressure.
	MemEWMA int64
	// Admitted and Rejected are cumulative submission counts. Idle tenants
	// may be pruned once more than 256 are tracked, restarting their
	// cumulative counts; the runtime-wide totals in LoadReport stay exact.
	Admitted, Rejected int64
}

// LoadReport is a point-in-time snapshot of the runtime's serving load —
// the backpressure signal a caller shapes traffic with.
type LoadReport struct {
	// Workers is the worker count; Parked is how many are currently parked
	// (idle capacity).
	Workers, Parked int
	// Queued counts roots waiting in injection lanes, in total and by QoS
	// class name.
	Queued        int
	QueuedByClass map[string]int
	// Running counts roots picked up and not yet finished.
	Running int
	// Admitted, RejectedLoad, and RejectedQuota are cumulative submission
	// outcomes: accepted, refused with ErrAdmission, refused with ErrQuota.
	Admitted      int64
	RejectedLoad  int64
	RejectedQuota int64
	// Tenants lists per-tenant load, sorted by tenant label.
	Tenants []TenantLoad
}

// LoadReport snapshots the runtime's serving load. The counters come from
// independently-locked sources, so a snapshot taken while submissions are in
// flight can be transiently inconsistent between fields (Queued vs. the
// per-tenant sums); each field is individually exact.
func (rt *Runtime) LoadReport() LoadReport {
	r := LoadReport{
		Workers:       rt.cfg.workers,
		Parked:        int(rt.parked.Load()),
		Queued:        int(rt.injected.Load()),
		QueuedByClass: make(map[string]int, numQoS),
	}
	for c := 0; c < numQoS; c++ {
		r.QueuedByClass[QoSClass(c).String()] = int(rt.queuedByClass[c].Load())
	}
	a := rt.adm
	a.mu.Lock()
	r.Running = a.running
	r.Admitted = a.admitted
	r.RejectedLoad = a.rejectedLoad
	r.RejectedQuota = a.rejectedQuota
	r.Tenants = make([]TenantLoad, 0, len(a.tenants))
	for name, ts := range a.tenants {
		r.Tenants = append(r.Tenants, TenantLoad{
			Tenant: name, Queued: ts.queued, Running: ts.running,
			Memory: ts.memory, MemEWMA: ts.memEWMA,
			Admitted: ts.admitted, Rejected: ts.rejected,
		})
	}
	a.mu.Unlock()
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Tenant < r.Tenants[j].Tenant })
	return r
}
