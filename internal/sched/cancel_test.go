package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo/internal/trace"
)

// spinFib is fib with a per-leaf busy delay, so runs last long enough for a
// watcher to cancel them mid-flight even on a single-core box.
func spinFib(c *Context, n int, delay time.Duration, leaves *atomic.Int64) {
	if n < 2 {
		leaves.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return
	}
	c.Spawn(func(c *Context) { spinFib(c, n-1, delay, leaves) })
	spinFib(c, n-2, delay, leaves)
	c.Sync()
}

// TestRunCtxCancelDuringStealHeavyRun: cancelling mid-run returns
// ErrCanceled (matching context.Canceled under errors.Is), no strand of the
// computation is still executing when RunCtx returns, and the runtime is
// healthy for the next Run.
func TestRunCtxCancelDuringStealHeavyRun(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	var leaves atomic.Int64
	go func() {
		for leaves.Load() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	err := rt.RunCtx(ctx, func(c *Context) { spinFib(c, 22, 100*time.Microsecond, &leaves) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false, want true")
	}
	// No strand may still be running: the leaf count must be frozen.
	after := leaves.Load()
	time.Sleep(20 * time.Millisecond)
	if got := leaves.Load(); got != after {
		t.Fatalf("leaves advanced from %d to %d after RunCtx returned", after, got)
	}
	full := fibSerial(22)
	if after >= full {
		t.Fatalf("cancellation skipped nothing: %d leaves of %d ran", after, full)
	}
	// Fresh computation on the same runtime.
	var out int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &out) }); err != nil {
		t.Fatalf("runtime unusable after cancel: %v", err)
	}
	if out != fibSerial(12) {
		t.Fatal("wrong result after cancelled run")
	}
	if rt.Stats().TasksSkipped == 0 {
		t.Error("cancelled run skipped no tasks")
	}
}

// TestRunCtxDeadline: a deadline cancels the run and RunCtx returns
// ErrDeadlineExceeded, matching context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var leaves atomic.Int64
	start := time.Now()
	err := rt.RunCtx(ctx, func(c *Context) { spinFib(c, 30, 50*time.Microsecond, &leaves) })
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false, want true")
	}
	// fib(30) would take minutes at 50µs per leaf; the deadline must have
	// abandoned it quickly.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RunCtx took %v after a 5ms deadline", elapsed)
	}
}

// TestRunCtxPreCancelled: a context already done rejects the computation
// without running any of it.
func TestRunCtxPreCancelled(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := rt.RunCtx(ctx, func(*Context) { ran = true }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("fn ran under a pre-cancelled context")
	}
}

// TestRunCtxBackgroundEquivalence: Run and RunCtx(Background) behave
// identically on success.
func TestRunCtxBackgroundEquivalence(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	var out int64
	if err := rt.RunCtx(context.Background(), func(c *Context) { fib(c, 15, &out) }); err != nil {
		t.Fatal(err)
	}
	if out != fibSerial(15) {
		t.Fatalf("fib = %d, want %d", out, fibSerial(15))
	}
}

// TestContextCancelledPolling: a long serial strand observes cancellation
// through Context.Cancelled and Context.Err.
func TestContextCancelledPolling(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	sawErr := make(chan error, 1)
	err := rt.RunCtx(ctx, func(c *Context) {
		if c.Cancelled() || c.Err() != nil {
			t.Error("fresh run already cancelled")
		}
		cancel()
		for !c.Cancelled() {
			time.Sleep(10 * time.Microsecond)
		}
		sawErr <- c.Err()
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := <-sawErr; !errors.Is(got, ErrCanceled) {
		t.Fatalf("Context.Err() = %v, want ErrCanceled", got)
	}
}

// TestPanicQuarantineCollectsSiblings: when several sibling strands panic,
// the first cancels the run and every captured panic lands in
// PanicError.All; the runtime is healthy afterwards.
func TestPanicQuarantineCollectsSiblings(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const siblings = 8
	err := rt.Run(func(c *Context) {
		for i := 0; i < siblings; i++ {
			i := i
			c.Spawn(func(*Context) {
				panic(fmt.Sprintf("boom %d", i))
			})
		}
		c.Sync()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.All) < 1 || len(pe.All) > siblings {
		t.Fatalf("len(All) = %d, want 1..%d", len(pe.All), siblings)
	}
	if pe.Value != pe.All[0].Value {
		t.Fatalf("Value %v != All[0].Value %v", pe.Value, pe.All[0].Value)
	}
	if len(pe.All[0].Stack) == 0 {
		t.Fatal("first panic captured no stack")
	}
	// The panic must not poison the next Run.
	var out int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &out) }); err != nil {
		t.Fatalf("runtime unusable after quarantine: %v", err)
	}
	if out != fibSerial(12) {
		t.Fatal("wrong result after quarantine")
	}
	if rt.Metrics()["panics_quarantined"] != int64(len(pe.All)) {
		t.Errorf("panics_quarantined = %d, want %d", rt.Metrics()["panics_quarantined"], len(pe.All))
	}
}

// TestShutdownDrainCancelsInFlight: a run that outlives the drain deadline
// is canceled with ErrShutdown, and ShutdownDrain reports the forced
// cancellation.
func TestShutdownDrainCancelsInFlight(t *testing.T) {
	rt := New(WithWorkers(2))
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- rt.Run(func(c *Context) {
			close(started)
			for !c.Cancelled() {
				time.Sleep(50 * time.Microsecond)
			}
		})
	}()
	<-started
	if drained := rt.ShutdownDrain(time.Millisecond); drained {
		t.Error("ShutdownDrain reported a clean drain while a run was spinning")
	}
	if err := <-errc; !errors.Is(err, ErrShutdown) {
		t.Fatalf("in-flight Run returned %v, want ErrShutdown", err)
	}
	if err := rt.Run(func(*Context) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Run after shutdown returned %v, want ErrShutdown", err)
	}
}

// TestShutdownDrainWaitsForFastRuns: runs that finish inside the drain
// window complete normally and ShutdownDrain reports a clean drain.
func TestShutdownDrainWaitsForFastRuns(t *testing.T) {
	rt := New(WithWorkers(2))
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- rt.Run(func(c *Context) {
			close(started)
			var out int64
			fib(c, 14, &out)
		})
	}()
	<-started
	if drained := rt.ShutdownDrain(30 * time.Second); !drained {
		t.Error("ShutdownDrain cancelled a run that should have finished in time")
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight Run returned %v, want nil", err)
	}
}

// TestShutdownRacingRuns: Run calls racing Shutdown either complete
// normally or are rejected with ErrShutdown — nothing hangs, nothing
// panics, and the workers exit.
func TestShutdownRacingRuns(t *testing.T) {
	rt := New(WithWorkers(4))
	const runs = 16
	var wg sync.WaitGroup
	errs := make([]error, runs)
	outs := make([]int64, runs)
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = rt.Run(func(c *Context) { fib(c, 10+i%5, &outs[i]) })
		}()
	}
	time.Sleep(time.Duration(runs/2) * 100 * time.Microsecond)
	rt.Shutdown()
	wg.Wait()
	for i, err := range errs {
		switch {
		case err == nil:
			if outs[i] != fibSerial(10+i%5) {
				t.Fatalf("run %d completed with wrong result %d", i, outs[i])
			}
		case errors.Is(err, ErrShutdown):
			// rejected before starting — fine
		default:
			t.Fatalf("run %d returned %v", i, err)
		}
	}
}

// TestDoubleShutdownDrain: Shutdown and ShutdownDrain are idempotent and
// safe in any combination, including concurrently.
func TestDoubleShutdownDrain(t *testing.T) {
	rt := New(WithWorkers(2))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.ShutdownDrain(time.Millisecond)
		}()
	}
	wg.Wait()
	rt.Shutdown()
	rt.ShutdownDrain(0)
}

// TestSerialElisionCancellation: the serial elision honors pre-cancelled
// contexts, polling via Cancelled, and shutdown rejection.
func TestSerialElisionCancellation(t *testing.T) {
	rt := New(WithSerialElision())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.RunCtx(ctx, func(*Context) {}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-cancelled serial RunCtx = %v, want ErrCanceled", err)
	}
	// Polled cancellation mid-run: spawns after the cancel are elided.
	ctx2, cancel2 := context.WithCancel(context.Background())
	ran := 0
	err := rt.RunCtx(ctx2, func(c *Context) {
		c.Spawn(func(*Context) { ran++ })
		cancel2()
		for !c.Cancelled() {
			time.Sleep(10 * time.Microsecond)
		}
		c.Spawn(func(*Context) { ran++ })
		c.Sync()
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("serial RunCtx = %v, want ErrCanceled", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (second spawn elided)", ran)
	}
	rt.Shutdown()
	if err := rt.Run(func(*Context) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("serial Run after Shutdown = %v, want ErrShutdown", err)
	}
}

// TestCancelTraceEvents: a cancelled run leaves task-skip events in the
// trace, and a panicking run leaves a panic event — PR 1's profiles show
// the abandoned work.
func TestCancelTraceEvents(t *testing.T) {
	rt := New(WithWorkers(1), WithTracing())
	defer rt.Shutdown()
	rt.Tracer().Start()
	ctx, cancel := context.WithCancel(context.Background())
	err := rt.RunCtx(ctx, func(c *Context) {
		// Fill the single worker's deque, then cancel: everything still
		// queued must be skipped, not run.
		for i := 0; i < 64; i++ {
			c.Spawn(func(*Context) {})
		}
		cancel()
		for !c.Cancelled() {
			time.Sleep(10 * time.Microsecond)
		}
		c.Sync()
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	rt.Run(func(*Context) { panic("traced boom") })
	tr := rt.Tracer().Stop()
	skips, panics := 0, 0
	for _, events := range tr.Workers {
		for _, ev := range events {
			switch ev.Kind {
			case trace.KindTaskSkip:
				skips++
			case trace.KindPanic:
				panics++
			}
		}
	}
	if skips == 0 {
		t.Error("cancelled run recorded no task-skip events")
	}
	if panics != 1 {
		t.Errorf("recorded %d panic events, want 1", panics)
	}
}

// TestRunWithStatsCtxSkippedAccounting: per-run stats of a cancelled run
// record the skipped tasks, and Spawns = TasksRun + TasksSkipped.
func TestRunWithStatsCtxSkippedAccounting(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := rt.RunWithStatsCtx(ctx, func(c *Context) {
		for i := 0; i < 32; i++ {
			c.Spawn(func(*Context) {})
		}
		cancel()
		for !c.Cancelled() {
			time.Sleep(10 * time.Microsecond)
		}
		c.Sync()
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if s.TasksSkipped == 0 {
		t.Fatalf("stats = %+v, want skipped tasks", s)
	}
	if s.Spawns != s.TasksRun+s.TasksSkipped {
		t.Fatalf("Spawns %d != TasksRun %d + TasksSkipped %d", s.Spawns, s.TasksRun, s.TasksSkipped)
	}
}
