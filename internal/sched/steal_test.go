package sched

import (
	"testing"
	"time"

	"cilkgo/internal/trace"
)

// TestUnparkWakeupLatency is the regression test for the unpark-sleep bug:
// the old idle loop made a just-woken worker execute time.Sleep with the
// backoff accumulated *before* it went quiescent (saturating at 200µs), so
// an injected root sat in the queue for the whole stale backoff before the
// first post-wakeup sweep.
//
// The scenario leaves no room for a lucky pickup: a settle period parks
// every worker, so the trivial root injected next can only be taken by a
// worker coming out of a wakeup. Pre-fix that path slept the stale backoff
// on every trial (timer quantization makes the real delay ≥200µs, often
// ~1ms); post-fix the wakeup-to-first-sweep path contains no sleep, so the
// fastest of the trials is far below that floor.
func TestUnparkWakeupLatency(t *testing.T) {
	rt := New(WithWorkers(2), WithNoThreadLocking())
	defer rt.Shutdown()

	// Saturate the hunt first: one sleep-only root starves the other worker
	// long enough to escalate its hunt fully (pre-fix, to saturate backoff).
	if err := rt.Run(func(*Context) { time.Sleep(time.Millisecond) }); err != nil {
		t.Fatal(err)
	}

	const trials = 10
	best := time.Hour
	for i := 0; i < trials; i++ {
		// Let every worker go quiescent (parked).
		time.Sleep(2 * time.Millisecond)
		// All workers are parked, so this pickup must ride a wakeup.
		start := time.Now()
		if err := rt.Run(func(*Context) {}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best >= 120*time.Microsecond {
		t.Fatalf("fastest injected-root pickup took %v; an unparked worker must sweep immediately, not sleep its stale backoff first", best)
	}
}

// TestStealBatchCounters checks that wide computations trigger batch steals
// and that the new counters obey their invariants: every batch is also a
// steal, batched tasks come only from batches, and the per-worker sums match
// the aggregate.
func TestStealBatchCounters(t *testing.T) {
	rt := New(WithWorkers(4), WithNoThreadLocking())
	defer rt.Shutdown()

	// A wide, flat spawn: the root pushes many leaves before they drain, so
	// a thief's first probe finds a long deque and takes a batch. Retry a few
	// times — scheduling on a loaded machine may drain the deque serially.
	for try := 0; try < 20; try++ {
		err := rt.Run(func(c *Context) {
			for i := 0; i < 256; i++ {
				c.Spawn(func(*Context) {
					x := 0
					for j := 0; j < 2000; j++ {
						x += j
					}
					_ = x
				})
			}
			// Yield the processor with the deque full, so on a single-CPU
			// machine the hunters actually get scheduled against it.
			time.Sleep(200 * time.Microsecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats().StealBatches > 0 {
			break
		}
	}

	s := rt.Stats()
	if s.StealBatches == 0 {
		t.Fatal("no batch steal occurred across 20 wide runs")
	}
	if s.TasksStolenBatched < s.StealBatches {
		t.Fatalf("TasksStolenBatched = %d < StealBatches = %d; every batch moves at least one extra task",
			s.TasksStolenBatched, s.StealBatches)
	}
	if s.Steals < s.StealBatches {
		t.Fatalf("Steals = %d < StealBatches = %d; every batch is also a successful steal",
			s.Steals, s.StealBatches)
	}
	if s.TasksRun != s.Spawns {
		t.Fatalf("TasksRun = %d, Spawns = %d; batching must not lose or duplicate tasks", s.TasksRun, s.Spawns)
	}

	m := rt.Metrics()
	for _, key := range []string{"steal_batches", "tasks_stolen_batched", "failed_sweeps"} {
		if _, ok := m[key]; !ok {
			t.Errorf("Metrics missing %q", key)
		}
	}
	if m["steal_batches"] != s.StealBatches || m["tasks_stolen_batched"] != s.TasksStolenBatched {
		t.Fatalf("Metrics batch counters %d/%d disagree with Stats %d/%d",
			m["steal_batches"], m["tasks_stolen_batched"], s.StealBatches, s.TasksStolenBatched)
	}
}

// TestHuntPhaseTrace checks the trace surface of the new hunt: a starved
// worker escalates spin → yield (KindHuntYield) and eventually parks while
// the run is still active, and every KindStealBatch event immediately
// follows the KindStealSuccess of the same operation with a positive moved
// count that sums to the TasksStolenBatched counter.
func TestHuntPhaseTrace(t *testing.T) {
	rt := New(WithWorkers(4), WithNoThreadLocking(), WithTracing())
	defer rt.Shutdown()

	before := rt.Stats()
	rt.Tracer().Start()
	// Phase 1: starve three workers long enough to escalate fully.
	if err := rt.Run(func(*Context) { time.Sleep(time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
	// Phase 2: a wide run so the trace also carries batch events.
	for try := 0; try < 20; try++ {
		err := rt.Run(func(c *Context) {
			for i := 0; i < 256; i++ {
				c.Spawn(func(*Context) {
					x := 0
					for j := 0; j < 2000; j++ {
						x += j
					}
					_ = x
				})
			}
			// Yield the processor with the deque full, so on a single-CPU
			// machine the hunters actually get scheduled against it.
			time.Sleep(200 * time.Microsecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats().Sub(before).StealBatches > 0 {
			break
		}
	}
	tr := rt.Tracer().Stop()
	delta := rt.Stats().Sub(before)

	var yields, batches, batchedTasks int64
	for _, events := range tr.Workers {
		for i, ev := range events {
			switch ev.Kind {
			case trace.KindHuntYield:
				yields++
			case trace.KindStealBatch:
				batches++
				batchedTasks += int64(ev.Arg)
				if ev.Arg < 1 {
					t.Errorf("steal-batch event with moved = %d, want >= 1", ev.Arg)
				}
				if i == 0 || events[i-1].Kind != trace.KindStealSuccess {
					t.Error("steal-batch event not immediately preceded by its steal-success")
				}
			}
		}
	}
	if yields == 0 {
		t.Error("no hunt-yield event recorded while three workers starved for a millisecond")
	}
	if batches != delta.StealBatches || batchedTasks != delta.TasksStolenBatched {
		t.Errorf("trace records %d batches / %d batched tasks, Stats says %d / %d",
			batches, batchedTasks, delta.StealBatches, delta.TasksStolenBatched)
	}
	if delta.FailedSweeps == 0 {
		t.Error("FailedSweeps = 0 after a starving run; hunting workers must count failed sweeps")
	}
}
