package sched

// This file adds locality-aware stealing: steal domains.
//
// The paper's randomized work stealing is locality-blind — every victim is
// equally likely — so on multi-socket / multi-CCX machines a steal is as
// likely to drag a task's working set across a cache-coherence boundary as
// to keep it near. "On the Efficiency of Localized Work Stealing"
// (Suksompong, Leiserson & Schardl; PAPERS.md) shows that preferring
// victims in the thief's own locality domain preserves the T_P ≤ T1/P +
// O(T∞) bound as long as a failed local sweep escalates to remote victims,
// and "Analysis of Work-Stealing and Parallel Cache Complexity" (Gu, Napier
// & Sun) quantifies what each avoided remote steal is worth in cache
// misses. internal/sim's cache mode reproduces those trends.
//
// The runtime's escalation ladder, per failed rung (DESIGN.md §4g):
//
//	1. own deque → 2. own domain's affinity mailbox → 3. own-domain lanes
//	of the injection queue → 4. same-domain steal sweep (remembered victim
//	first, then a random rotation) → 5. remote-domain sweeps, in random
//	domain order → 6. any domain's affinity mailbox
//
// Rungs 5–6 run only after rung 4 probed every same-domain victim and
// found nothing on localSweepRetries consecutive sweeps (escalation
// hysteresis — sched.go), and crossing that boundary is observable: it
// increments Stats.DomainEscalations and records a KindDomainEscalate
// trace event.
// Work can never be stranded behind a locality preference: every rung is a
// preference over probe order, not a partition — remote work is always
// reachable, just probed last.

import (
	"path/filepath"
	"sync"
)

// WithStealDomains partitions the workers into n steal domains — contiguous
// near-equal blocks of worker ids — giving victim selection a locality
// hierarchy: thieves sweep their own domain first and escalate to remote
// domains only after a full local sweep fails, and a range task stolen out
// of its owner's domain is re-injected back toward it on re-publication
// (see loop.go). n is clamped to [1, workers]; n <= 0 auto-detects the
// machine topology (one domain per NUMA node, 1 when the topology is
// invisible). The default without this option is a single flat domain —
// the paper's uniform random stealing, exactly as before.
func WithStealDomains(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = detectStealDomains()
		}
		c.domains = n
	}
}

// detectStealDomains counts the machine's NUMA nodes via sysfs. Containers
// and non-Linux hosts that expose no topology get 1 — flat stealing, never
// an error.
func detectStealDomains() int {
	nodes, err := filepath.Glob("/sys/devices/system/node/node[0-9]*")
	if err != nil || len(nodes) == 0 {
		return 1
	}
	return len(nodes)
}

// setupDomains partitions the workers into cfg.domains contiguous blocks
// (domain of worker i = i·d/n, so block sizes differ by at most one),
// allocates the per-domain lastVictim memory, the affinity mailboxes, and
// each worker's domain-aware injection-lane sweep order. Called from New
// after the workers exist and before any of them runs.
func (rt *Runtime) setupDomains() {
	n := len(rt.workers)
	d := rt.cfg.domains
	if d < 1 {
		d = 1
	}
	if d > n {
		d = n
	}
	rt.cfg.domains = d
	rt.domains = make([][]*worker, d)
	for i, w := range rt.workers {
		dom := i * d / n
		w.domain = dom
		rt.domains[dom] = append(rt.domains[dom], w)
		w.lastVictim = make([]int, d)
		for j := range w.lastVictim {
			w.lastVictim[j] = -1
		}
	}
	if d > 1 {
		rt.affinity = make([]*affinityLane, d)
		for i := range rt.affinity {
			rt.affinity[i] = &affinityLane{}
		}
	}
	for _, w := range rt.workers {
		w.laneOrder = rt.buildLaneOrder(w)
	}
}

// buildLaneOrder returns the order in which w sweeps the injection lanes:
// same-domain lanes first (starting at w's own — tenant-hashed submissions
// land on a stable lane, so the worker warm with a tenant probes that lane
// first), then remote lanes, each group rotated by w.id so concurrent
// sweepers spread instead of convoying. With one domain this is exactly
// the old (id+i) mod n rotation.
func (rt *Runtime) buildLaneOrder(w *worker) []int {
	n := len(rt.workers)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if idx := (w.id + i) % n; rt.workers[idx].domain == w.domain {
			order = append(order, idx)
		}
	}
	for i := 0; i < n; i++ {
		if idx := (w.id + i) % n; rt.workers[idx].domain != w.domain {
			order = append(order, idx)
		}
	}
	return order
}

// affinityLane is one domain's re-injection mailbox: range tasks stolen out
// of their loop owner's domain are parked here on re-publication so the
// iterations land back near the owner's cache instead of migrating with
// the thief (loop.go splitRange). A plain mutexed FIFO suffices — pushes
// happen only on cross-domain range steals, which locality-aware victim
// selection makes rare by construction.
type affinityLane struct {
	mu sync.Mutex
	q  []*task
}

func (l *affinityLane) push(t *task) {
	l.mu.Lock()
	l.q = append(l.q, t)
	l.mu.Unlock()
}

func (l *affinityLane) pop() *task {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.q) == 0 {
		return nil
	}
	t := l.q[0]
	// Nil out the popped head: the backing array survives the reslice and
	// would otherwise retain the range task (and its loop frame).
	l.q[0] = nil
	l.q = l.q[1:]
	if len(l.q) == 0 {
		l.q = nil
	}
	return t
}

func (l *affinityLane) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q)
}

// affinityPush re-injects range task t toward domain d and wakes a worker
// to claim it. The wake may be lost (rt.wake's fast path), which is benign
// for liveness by the same ownership argument as spawn-path wakes (see
// stealableWork): the pusher is a thief that keeps the range's front half,
// and after running it, its own steal sweeps check every affinity mailbox
// (takeAffinityAny) before the sweep can count as failed — so a worker can
// never park while a mailbox is non-empty any more than while its own
// deque is. The park re-check additionally consults affinityQueued to keep
// pickup latency low.
func (rt *Runtime) affinityPush(t *task, d int) {
	rt.affinity[d].push(t)
	rt.affinityQueued.Add(1)
	rt.wake()
}

// takeAffinity pops a re-injected range task bound for domain d. The empty
// path costs one nil check and one atomic load.
func (w *worker) takeAffinity(d int) *task {
	rt := w.rt
	if rt.affinity == nil || rt.affinityQueued.Load() == 0 {
		return nil
	}
	if t := rt.affinity[d].pop(); t != nil {
		rt.affinityQueued.Add(-1)
		return t
	}
	return nil
}

// takeAffinityAny sweeps every domain's affinity mailbox, own domain
// first. This is the hunt's last rung: an affinity preference is a hint,
// never a partition, so a machine-wide failed sweep claims re-injected
// work wherever it waits rather than stranding it (work conservation —
// the property Suksompong et al. require for the time bound to survive
// localized stealing).
func (w *worker) takeAffinityAny() *task {
	rt := w.rt
	if rt.affinity == nil || rt.affinityQueued.Load() == 0 {
		return nil
	}
	nd := len(rt.affinity)
	for i := 0; i < nd; i++ {
		if t := rt.affinity[(w.domain+i)%nd].pop(); t != nil {
			rt.affinityQueued.Add(-1)
			return t
		}
	}
	return nil
}

// affinityQueuedTotal is the exact count of parked affinity tasks (the
// slow counterpart of the affinityQueued gauge; used by diagnostics).
func (rt *Runtime) affinityQueuedTotal() int {
	n := 0
	for _, l := range rt.affinity {
		n += l.size()
	}
	return n
}

// stealSweepDomain probes the workers of domain d exactly as the flat
// sweep used to probe the whole runtime: the domain's remembered victim
// first (a victim that had surplus once likely still has more), then a
// random rotation over the rest. On success the domain's lastVictim is
// updated; on a dry sweep it is forgotten. The caller owns failed-sweep
// accounting.
func (w *worker) stealSweepDomain(d int) *task {
	members := w.rt.domains[d]
	last := w.lastVictim[d]
	if last >= 0 && last != w.id {
		if t := w.stealFrom(w.rt.workers[last]); t != nil {
			return t
		}
	}
	n := len(members)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		victim := members[(start+i)%n]
		if victim == w || victim.id == last {
			continue
		}
		if t := w.stealFrom(victim); t != nil {
			w.lastVictim[d] = victim.id
			return t
		}
	}
	w.lastVictim[d] = -1
	return nil
}
