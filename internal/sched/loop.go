package sched

import "cilkgo/internal/schedsan"

// This file implements lazy, steal-driven loop splitting: the range-task
// representation behind cilk_for (internal/pfor).
//
// §2 of the paper defines cilk_for as divide-and-conquer recursion over the
// iteration space. Executing that recursion eagerly creates ~n/grain tasks
// whether or not a thief ever shows up; work-stealing theory says the split
// tree only needs to be as deep as the thieves demand, and contiguous
// sequential runs improve cache behaviour (Gu, Napier & Sun — see
// PAPERS.md). Here a loop is a single splittable *range task* carrying
// [lo, hi):
//
//   - The worker executing a range task peels grain-sized chunks off the
//     front and runs them sequentially. Before each chunk it publishes the
//     remainder at the bottom of its own deque, so thieves can take the
//     not-yet-started iterations while the chunk runs; after the chunk it
//     pops the remainder back. A reclaimed remainder is recognized by
//     pointer identity, so the common no-thief case costs one push and one
//     pop per chunk — no allocation, no frame, no join-counter traffic.
//
//   - A thief that steals a range task splits it: it keeps the front half
//     and pushes the back half onto its own deque as a new range task —
//     steal-half semantics for iterations, mirroring the deque's StealBatch
//     for tasks. Both halves remain splittable by further thieves, so the
//     split tree unfolds exactly as deep as the thieves demand:
//     O(P · log(n/grain)) pieces instead of Θ(n/grain) tasks.
//
// Join and reducer invariants are preserved. Every live range task holds
// exactly one unit of the loop frame's join counter (a split adds one for
// the new half before publishing it), so the loop's implicit sync joins
// exactly the loop's iterations. Each execution episode covers a contiguous
// ascending run of iterations and deposits its reducer views keyed by the
// episode's first index — the spawn-order index assigned at split time, not
// creation time — and the fold sorts deposits by (loop, start index), which
// reconstructs the exact serial reduction order. Cancellation is checked at
// every chunk boundary with skip-but-join semantics: remaining iterations
// are abandoned, the piece still joins, and the views of iterations that
// did run still fold in order.

// loopState is the shared descriptor of one lazy cilk_for: the loop frame
// every piece joins, the chunk body, and the grain. It is created once per
// loop and shared (read-only) by all of the loop's range tasks.
type loopState struct {
	frame *frame // the loop's frame; pieces join its pending counter
	seq   int32  // the loop's sequence number within frame's sync region
	grain int
	// origin is the id of the worker that created the loop (-1 if unknown).
	// On a domain-partitioned runtime a range task whose steal crossed a
	// domain boundary is re-injected toward the origin's domain rather
	// than kept on the thief's deque (splitRange) — the stolen iterations'
	// working set is the owner's, so re-publication lands them back near
	// it. Same-domain steals redistribute in place, wherever the range is
	// currently resident.
	origin int
	// body executes iterations [lo, hi) serially on the strand of c.
	body func(c *Context, lo, hi int)
	// spawnSpan is the loop frame's local span at the instant the loop was
	// created (see obs.go). Stolen pieces deposit spawnSpan + their episode
	// span into the loop frame's spanChild gauge, approximating the loop's
	// span as its longest episode; zero on unobserved runs.
	spawnSpan int64
}

// LoopRange executes body over the iteration range [lo, hi), chunked by
// grain, as a lazily-split parallel loop: the calling strand runs chunks
// sequentially while publishing the remainder for thieves, and iterations
// actually migrate only when stolen. body(c, l, h) must execute iterations
// [l, h) serially in ascending order on the strand of c; it may spawn.
//
// Stolen pieces are joined by this frame's next Sync (internal/pfor wraps
// every loop in a Call, so the loop's implicit sync joins exactly its own
// iterations). For exact serial reducer ordering the caller must not Spawn
// between LoopRange and the Sync that joins it: stolen pieces fold after
// the strand's current segment.
//
// In serial-elision mode LoopRange simply runs body(c, lo, hi).
func (c *Context) LoopRange(lo, hi, grain int, body func(c *Context, lo, hi int)) {
	if lo >= hi {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if c.rt.cfg.serial {
		body(c, lo, hi)
		return
	}
	f := c.frame
	if f.run.cancelled() {
		return
	}
	if cl := f.run.clock; cl != nil {
		// The loop is a spawn boundary for span purposes: close the segment
		// so ls.spawnSpan below is the span at the loop's creation point.
		c.charge(cl)
	}
	ls := &loopState{frame: f, seq: f.nextLoopSeq, grain: grain, body: body, spawnSpan: c.spanLocal, origin: -1}
	if c.w != nil {
		ls.origin = c.w.id
	}
	f.nextLoopSeq++
	f.pending.Add(1)
	t := newRangeTask(ls, lo, hi)
	// The calling strand is the loop's first executor: peel inline, on the
	// loop frame's own context, so the owner's iterations accumulate views
	// directly into the strand's current segment (the serial prefix). If the
	// peel consumed the whole task, join it here; otherwise its next owner
	// (a thief, or this worker's later pop) joins it.
	var held bool
	if c.w.peel(t, c, &held) {
		c.rt.sanJoin(f.pending.Add(-1), "an owner-consumed range task", f.run)
		freeRangeTask(t)
	}
}

// peel executes range task t on worker w with context ctx, which must be
// exclusively owned by the calling strand. It returns true when this
// episode consumed t (ran its final chunk, or abandoned it to
// cancellation), in which case the caller owes the loop frame a join; it
// returns false when t passed to another owner — stolen by a thief, or left
// in w's deque behind newer work — in which case t's next executor joins it.
//
// *held mirrors the return value but is kept current throughout: it is true
// exactly while this strand owes t's join, updated before every point a
// chunk body could panic. A caller recovering a panic must consult *held —
// not t's fields, which a thief may own by then — to decide whether to join.
func (w *worker) peel(t *task, ctx *Context, held *bool) bool {
	ls := t.loop
	rs := ls.frame.run
	*held = true
	for {
		lo, hi := t.lo, t.hi
		rs.checkBudget(w) // the chunk boundary bounds over-budget latency
		if rs.cancelled() {
			return true // skip-but-join: remaining iterations abandoned
		}
		if hi-lo <= ls.grain {
			// Final chunk: nothing left to publish; t stays held through it.
			w.runChunk(ctx, ls, lo, hi)
			return true
		}
		end := lo + ls.grain
		// Publish the remainder before running the chunk: mutate the range
		// first — the deque's push/steal synchronization publishes the new
		// bounds to any thief — then make it stealable.
		t.lo = end
		*held = false
		// Like Spawn's push, wake only on the empty→non-empty transition:
		// a remainder republished behind other visible work cannot strand a
		// parker (stealableWork's re-check), and the drop is benign anyway.
		if w.deque.PushBottom(t) {
			w.rt.wake()
		}
		// Sanitizer: stretch the window in which the republished remainder
		// is exposed to thieves while this strand runs the peeled chunk.
		w.san.Delay(schedsan.PointChunkPeel)
		w.runChunk(ctx, ls, lo, end)
		// Reclaim the remainder. The chunk may have spawned: then the top of
		// our deque holds its children, not t. Put the popped task back and
		// stop peeling inline — the children should run first (LIFO), and t,
		// if not stolen meanwhile, will be popped later and resume as a
		// scheduled piece.
		x := w.deque.PopBottom()
		if x == t {
			*held = true
			continue
		}
		if x != nil {
			w.deque.PushBottom(x)
		}
		return false
	}
}

// runChunk executes one grain of a lazy loop's iterations on ctx's strand.
func (w *worker) runChunk(ctx *Context, ls *loopState, lo, hi int) {
	bump(&w.ws.chunksPeeled)
	if s := ls.frame.run.stats; s != nil {
		bump(&s.cells[w.id].chunksPeeled)
	}
	w.rec.ChunkRun(int32(hi-lo), ls.frame.run.id)
	ls.body(ctx, lo, hi)
}

// splitRange halves the freshly stolen range task t when it still covers
// more than one grain: the thief keeps the front half and pushes the back
// half — a new, itself splittable, range task — onto its own deque. Called
// with t exclusively owned (just stolen from victim) before the thief
// starts executing it, so other hungry workers can pick the far half up
// immediately instead of waiting a whole chunk for the thief's first
// remainder publish.
func (w *worker) splitRange(t *task, victim *worker) {
	ls := t.loop
	bump(&w.ws.rangeSteals)
	rs := ls.frame.run
	if s := rs.stats; s != nil {
		bump(&s.cells[w.id].rangeSteals)
	}
	if t.hi-t.lo <= ls.grain || rs.cancelled() {
		return
	}
	if w.san.Fail(schedsan.PointRangeSplit) {
		return // injected skipped split (legal: the thief runs the whole range)
	}
	mid := t.lo + (t.hi-t.lo)/2
	ls.frame.pending.Add(1) // the new half is one more piece to join
	nt := newRangeTask(ls, mid, t.hi)
	t.hi = mid
	bump(&w.ws.loopSplits)
	if s := rs.stats; s != nil {
		bump(&s.cells[w.id].loopSplits)
	}
	w.rec.LoopSplit(int32(nt.hi-nt.lo), rs.id)
	if origin := ls.origin; origin >= 0 && len(w.rt.domains) > 1 {
		// Owner-affinity re-injection: when this steal itself crossed a
		// domain boundary (victim's domain != thief's) and the loop's home
		// domain is not the thief's, send the back half home via the owner
		// domain's affinity mailbox instead of keeping it here, so at most
		// one of the two halves migrates per cross-domain steal. The victim
		// check matters: a range legitimately resident in a remote domain
		// gets redistributed there by same-domain steals (plain push below)
		// rather than bleeding half of every split back to the owner —
		// without it, the remote domain can never durably hold loop work
		// and each local split re-pays a cross-domain transfer. The peel
		// path never comes through here — the owner's per-chunk remainder
		// republish stays a plain own-deque push. The sanitizer can veto
		// the redirect (legal: the task lands on the thief's own deque,
		// exactly the flat-runtime behaviour).
		od := w.rt.workers[origin].domain
		if victim.domain != w.domain && od != w.domain && !w.san.Fail(schedsan.PointAffinity) {
			bump(&w.ws.affinityReinjected)
			w.rt.affinityPush(nt, od)
			return
		}
	}
	if w.deque.PushBottom(nt) {
		w.rt.wake()
	}
}

// runPiece executes a scheduled range task — one popped from a deque or
// taken by a thief — to completion or handoff. The episode runs in its own
// piece frame (a child of the loop frame) so body spawns get private
// ordinal bookkeeping, and deposits the views of the iterations it ran
// keyed by its start index before signalling the loop frame's join counter.
// Tasks of a cancelled run are skipped, not executed, exactly like fn tasks.
func (w *worker) runPiece(t *task) {
	ls := t.loop
	lf := ls.frame
	rs := lf.run
	depth := lf.depth + 1
	if rs.cancelled() {
		bump(&w.ws.tasksSkipped)
		if s := rs.stats; s != nil {
			bump(&s.cells[w.id].tasksSkipped)
		}
		w.rec.TaskSkip(depth, rs.id)
		w.rt.sanJoin(lf.pending.Add(-1), "a skipped range task", rs)
		freeRangeTask(t)
		return
	}
	start := t.lo
	// Episode unit: while this episode runs a chunk, t (and its join unit)
	// may be republished and consumed by a thief, so the task's own unit
	// cannot keep the loop's sync open for the chunk in flight. The episode
	// holds one extra unit from before its first publish until after its
	// deposit, so the loop never folds while one of its chunks is executing.
	// (The owner-inline peel in LoopRange needs none: the owning strand calls
	// the loop's Sync itself, strictly after its peel returns.)
	lf.pending.Add(1)
	bump(&w.ws.tasksRun)
	live := w.ws.liveFrames.Load() + 1
	w.ws.liveFrames.Store(live)
	maxOwn(&w.ws.maxLiveFrames, live)
	maxOwn(&w.ws.maxDepth, int64(depth))
	if s := rs.stats; s != nil {
		cell := &s.cells[w.id]
		bump(&cell.tasksRun)
		cl := cell.liveFrames.Load() + 1
		cell.liveFrames.Store(cl)
		maxOwn(&cell.maxLiveFrames, cl)
		maxOwn(&cell.maxDepth, int64(depth))
	}
	w.rec.TaskStart(depth, rs.id)

	pf := w.getFrame(lf, rs, 0, depth)
	ctx := &pf.ctx
	ctx.w, ctx.rt = w, w.rt
	cl := rs.clock
	if cl != nil {
		ctx.strandStart = w.rt.nanots()
	}
	consumed, held := false, false
	func() {
		defer func() {
			if r := recover(); r != nil {
				// A panic inside a chunk poisons the run. Whether this episode
				// still owes t's join depends on whether it held t at the
				// instant of the panic — peel keeps held current for exactly
				// this purpose (t's own fields may belong to a thief by now).
				consumed = held
				rs.poison(r)
				w.rec.Panic(depth, rs.id)
				ctx.syncWait() // drain body spawns even on panic
			}
		}()
		consumed = w.peel(t, ctx, &held)
		ctx.Sync() // join body spawns of this episode's chunks
	}()

	if cl != nil {
		// Close the episode's strand and deposit its span against the loop
		// frame, keyed at the loop's creation point — the loop's span is
		// approximated by its longest episode (the split-tree depth is not
		// charged; DESIGN.md §4e). Ordered before the join decrements below,
		// like every span deposit.
		ctx.charge(cl)
		maxStore(&lf.spanChild, ls.spawnSpan+ctx.spanLocal)
	}
	// Deposit before signalling the join counter: the loop's sync must not
	// fold until every episode's views are visible.
	lf.depositPiece(ls.seq, start, ctx.views)
	// Retire the piece frame and settle the live gauges before releasing the
	// join units: once the episode unit drops, the loop's sync may fold and
	// the run may finish, and by then this episode's frame refund and
	// live-frame decrement must already be visible (see runTask's completion
	// path for the same ordering).
	w.recycleFrame(pf)
	bumpN(&w.ws.liveFrames, -1)
	if s := rs.stats; s != nil {
		bumpN(&s.cells[w.id].liveFrames, -1)
	}
	if consumed {
		w.rt.sanJoin(lf.pending.Add(-1), "a consumed range task", rs)
		freeRangeTask(t)
	}
	w.rt.sanJoin(lf.pending.Add(-1), "an episode unit", rs) // release the episode unit
	w.rec.TaskEnd()
}
