package sched

import (
	"context"
	"errors"
	"time"
)

// This file is the runtime's robustness layer: cooperative cancellation,
// deadlines, panic quarantine, and graceful shutdown draining.
//
// Cilk++ has no cancellation story — cilk_sync always waits for every
// spawned child to run to completion, and the §3 performance bounds assume
// the computation runs to the end. A server cannot: requests are cancelled,
// deadlines expire, and one strand's panic must not take the process (or
// even the runtime) with it. The design here preserves the dag model by
// cancelling *cooperatively at strand boundaries*: a cancelled run never
// interrupts a running strand, it only stops new strands from starting.
// Every spawned task still joins its parent (its frame is popped and its
// join counter decremented — it is merely not executed), so sync still
// means "all children have completed or been abandoned", reducer views
// still fold in serial order, and the runtime's invariants hold for the
// next Run.
//
// The cancel gate is one per-run atomic bool, checked at the spawn, steal
// (task-start), and per-chunk (internal/pfor) boundaries — the same
// single-atomic-load gating pattern as the tracer, so the uncancelled hot
// path stays within noise of a runtime without the layer.

// Sentinel errors returned by Run/RunCtx. Each also matches its context
// counterpart under errors.Is (ErrCanceled ↔ context.Canceled,
// ErrDeadlineExceeded ↔ context.DeadlineExceeded), so callers holding only
// the context idiom need no new comparisons.
var (
	// ErrCanceled is returned by RunCtx when the computation was abandoned
	// because its context was canceled.
	ErrCanceled error = &cancelError{msg: "sched: computation canceled", is: context.Canceled}
	// ErrDeadlineExceeded is returned by RunCtx when the computation was
	// abandoned because its context's deadline passed.
	ErrDeadlineExceeded error = &cancelError{msg: "sched: computation deadline exceeded", is: context.DeadlineExceeded}
	// ErrShutdown is returned by Run on a runtime that has been shut down,
	// and by in-flight Runs that ShutdownDrain cancels at its drain
	// deadline.
	ErrShutdown error = &cancelError{msg: "sched: runtime is shut down"}

	// errSiblingPanic is the cancel cause installed when a strand panics:
	// the rest of the run is abandoned while the panic is quarantined.
	// Run reports the quarantined *PanicError itself, so this cause is
	// only observable mid-run via Context.Err.
	errSiblingPanic = errors.New("sched: run canceled by a panicking sibling strand")
)

// cancelError is a sentinel error that also matches a stdlib context error
// under errors.Is.
type cancelError struct {
	msg string
	is  error // stdlib counterpart, or nil
}

func (e *cancelError) Error() string { return e.msg }

func (e *cancelError) Is(target error) bool { return e.is != nil && target == e.is }

// mapCtxErr translates a context error into the runtime's sentinel.
func mapCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case err == nil:
		return nil
	default:
		return err
	}
}

// cancelWith requests cooperative cancellation of the run with the given
// cause. The first caller wins; later causes are dropped. Publishing order
// matters: the cause is written before the canceled flag is raised, so any
// strand that observes canceled==true also observes the cause.
func (rs *runState) cancelWith(cause error) {
	rs.cancelOnce.Do(func() {
		rs.cause = cause
		rs.canceled.Store(true)
		if rs.rt != nil {
			rs.rt.runsCanceled.Add(1)
		}
	})
}

// cancelled reports whether the run has been canceled — the single atomic
// load every check site pays.
func (rs *runState) cancelled() bool { return rs.canceled.Load() }

// err folds the run's terminal state into the error Run returns: a
// quarantined *PanicError if any strand panicked (carrying every sibling
// panic), else the cancel cause, else nil.
func (rs *runState) err() error {
	rs.panicMu.Lock()
	panics := rs.panics
	rs.panicMu.Unlock()
	if len(panics) > 0 {
		return &PanicError{Value: panics[0].Value, Stack: panics[0].Stack, All: panics}
	}
	if rs.canceled.Load() {
		return rs.cause
	}
	return nil
}

// watch arranges for the run to be canceled when ctx is done, returning a
// stop function the caller must invoke once the run has completed. A
// background context (no Done channel) installs nothing and costs nothing.
func (rs *runState) watch(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	cancel := context.AfterFunc(ctx, func() {
		rs.cancelWith(mapCtxErr(ctx.Err()))
	})
	return func() { cancel() }
}

// Cancelled reports whether this strand's run has been canceled (by its
// context, a deadline, a sibling panic, or ShutdownDrain). Long serial
// strands — a big grain of a cilk_for, a tight loop between spawns — should
// poll it at convenient boundaries and return early; the runtime itself
// only cancels between strands, never inside one. The cost is one atomic
// load.
func (c *Context) Cancelled() bool { return c.frame.run.cancelled() }

// Err returns nil while the strand's run is live, and the cancellation
// cause once it has been canceled: ErrCanceled, ErrDeadlineExceeded,
// ErrShutdown, or an internal marker when a sibling strand panicked (Run
// itself reports the *PanicError).
func (c *Context) Err() error {
	rs := c.frame.run
	if !rs.cancelled() {
		return nil
	}
	return rs.cause
}

// RunCtx is Run under a context: the computation is cooperatively canceled
// when ctx is canceled or its deadline passes, and RunCtx then returns
// ErrCanceled or ErrDeadlineExceeded. Cancellation is abandonment, not
// interruption — strands already running finish their current grain (or
// poll Context.Cancelled and bail), strands not yet started are skipped,
// and RunCtx returns only after the run's outstanding work has drained, so
// no strand of the computation is still executing when it returns.
//
// Run is exactly RunCtx(context.Background(), fn).
//
// Deprecated: use Submit — RunCtx(ctx, fn) is Submit(ctx, fn) followed by
// Ticket.Wait (with submission-time errors folded into the same return).
func (rt *Runtime) RunCtx(ctx context.Context, fn func(*Context)) error {
	_, err := rt.run(ctx, fn, false)
	return err
}

// RunWithStatsCtx is RunWithStats under a context, with RunCtx's
// cancellation semantics. The returned Stats covers the work the
// computation actually did before completing or being abandoned.
//
// Deprecated: use Submit with WithStats, then Ticket.Wait and Ticket.Stats.
func (rt *Runtime) RunWithStatsCtx(ctx context.Context, fn func(*Context)) (Stats, error) {
	return rt.run(ctx, fn, true)
}

// ShutdownDrain gracefully shuts the runtime down: new Runs are rejected
// immediately (they return ErrShutdown), in-flight Runs are given at most
// drain to finish, and any still running at the deadline are canceled with
// ErrShutdown and abandoned cooperatively. ShutdownDrain returns after the
// workers have exited; the result reports whether every in-flight Run
// finished on its own (true) or the drain deadline forced cancellation
// (false). A drain ≤ 0 cancels in-flight Runs immediately.
//
// Shutdown is ShutdownDrain with an unbounded drain. Both are idempotent
// and safe to call concurrently; later calls simply wait for the workers.
func (rt *Runtime) ShutdownDrain(drain time.Duration) bool {
	rt.mu.Lock()
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()

	deadline := time.Now().Add(drain)
	drained := true
	for {
		rt.mu.Lock()
		n := len(rt.active)
		rt.mu.Unlock()
		if n == 0 {
			break
		}
		if drain <= 0 || !time.Now().Before(deadline) {
			drained = false
			rt.mu.Lock()
			for rs := range rt.active {
				rs.cancelWith(ErrShutdown)
			}
			rt.mu.Unlock()
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	rt.wg.Wait()
	rt.san.shut()
	// Satellite invariant of the drain protocol: a bounded drain must never
	// strand a task. Workers exit only when closed && activeRoots == 0 &&
	// the injection queue is empty, and an unexecuted task keeps its run's
	// join counters above zero — which keeps the run active — so after
	// wg.Wait every deque and the injection queue must be empty even when
	// the drain deadline forced cancellation mid-batch-steal.
	rt.sanVerifyDrained()
	return drained
}
