package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// fib computes Fibonacci with one spawn per level, the canonical Cilk
// example workload.
func fib(c *Context, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Spawn(func(c *Context) { fib(c, n-1, &a) })
	fib(c, n-2, &b)
	c.Sync()
	*out = a + b
}

func fibSerial(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func TestFibParallel(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		rt := New(WithWorkers(p))
		var got int64
		if err := rt.Run(func(c *Context) { fib(c, 20, &got) }); err != nil {
			t.Fatalf("P=%d: Run: %v", p, err)
		}
		rt.Shutdown()
		if want := fibSerial(20); got != want {
			t.Fatalf("P=%d: fib(20) = %d, want %d", p, got, want)
		}
	}
}

func TestFibSerialElision(t *testing.T) {
	rt := New(WithSerialElision())
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 18, &got) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := fibSerial(18); got != want {
		t.Fatalf("fib(18) = %d, want %d", got, want)
	}
}

func TestSpawnWithoutSyncImpliesJoinAtReturn(t *testing.T) {
	// §1: every Cilk function syncs implicitly before it returns. A frame
	// that spawns and returns without an explicit Sync must still join.
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	var n atomic.Int64
	err := rt.Run(func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Spawn(func(*Context) { n.Add(1) })
		}
		// no explicit Sync
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("Run returned before implicit sync: n = %d, want 100", n.Load())
	}
}

func TestManyFlatSpawns(t *testing.T) {
	// The §3.1 loop example, scaled: a single frame spawning a large number
	// of children. This also exercises deque growth under stealing.
	rt := New(WithWorkers(8))
	defer rt.Shutdown()
	const n = 200000
	var sum atomic.Int64
	err := rt.Run(func(c *Context) {
		for i := 1; i <= n; i++ {
			i := i
			c.Spawn(func(*Context) { sum.Add(int64(i)) })
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestDeepSpawnChain(t *testing.T) {
	// A long spawn chain exercises frame depth bookkeeping.
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const depth = 20000
	var reached atomic.Int64
	var down func(c *Context, d int)
	down = func(c *Context, d int) {
		if d == 0 {
			reached.Store(1)
			return
		}
		c.Spawn(func(c *Context) { down(c, d-1) })
		c.Sync()
	}
	if err := rt.Run(func(c *Context) { down(c, depth) }); err != nil {
		t.Fatal(err)
	}
	if reached.Load() != 1 {
		t.Fatal("bottom of spawn chain never reached")
	}
	if s := rt.Stats(); s.MaxDepth < depth {
		t.Fatalf("MaxDepth = %d, want ≥ %d", s.MaxDepth, depth)
	}
}

func TestSyncIsLocalBarrier(t *testing.T) {
	// §1: cilk_sync is a local barrier. A sync in one frame must not wait
	// for children of other frames. We check that a sibling's sync
	// completes even while a long-running child of another frame is active.
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	release := make(chan struct{})
	var order []string
	var mu chanOrder
	err := rt.Run(func(c *Context) {
		c.Spawn(func(c *Context) { // frame A: blocks until released
			c.Spawn(func(*Context) { <-release })
			c.Sync()
			mu.add(&order, "A")
		})
		c.Spawn(func(c *Context) { // frame B: no children, sync is immediate
			c.Sync()
			mu.add(&order, "B")
			close(release)
		})
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "B" || order[1] != "A" {
		t.Fatalf("order = %v, want [B A]", order)
	}
}

type chanOrder struct{ mu atomic.Int32 }

func (c *chanOrder) add(order *[]string, s string) {
	for !c.mu.CompareAndSwap(0, 1) {
	}
	*order = append(*order, s)
	c.mu.Store(0)
}

func TestPanicPropagation(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	var after atomic.Int64
	err := rt.Run(func(c *Context) {
		c.Spawn(func(*Context) { panic("boom") })
		c.Spawn(func(*Context) { after.Add(1) })
		c.Sync()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
	}
	// Run must not return while spawned work is still executing.
	if after.Load() != 1 {
		t.Fatalf("sibling task did not complete before Run returned")
	}
}

func TestPanicSerialElision(t *testing.T) {
	rt := New(WithSerialElision())
	err := rt.Run(func(c *Context) {
		c.Spawn(func(*Context) { panic(42) })
		c.Sync()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != 42 {
		t.Fatalf("Value = %v, want 42", pe.Value)
	}
}

func TestConcurrentRuns(t *testing.T) {
	// §3.2 performance composability: multiple computations share the
	// workers and all complete.
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const k = 8
	results := make([]int64, k)
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		i := i
		go func() {
			errs <- rt.Run(func(c *Context) { fib(c, 15, &results[i]) })
		}()
	}
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	want := fibSerial(15)
	for i, r := range results {
		if r != want {
			t.Fatalf("run %d: got %d, want %d", i, r, want)
		}
	}
}

func TestRunAfterShutdown(t *testing.T) {
	rt := New(WithWorkers(2))
	rt.Shutdown()
	if err := rt.Run(func(*Context) {}); err != ErrShutdown {
		t.Fatalf("err = %v, want ErrShutdown", err)
	}
}

func TestStatsCounting(t *testing.T) {
	rt := New(WithWorkers(4), WithStealSeed(7))
	var out int64
	if err := rt.Run(func(c *Context) { fib(c, 22, &out) }); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	s := rt.Stats()
	if s.Spawns == 0 {
		t.Fatal("Spawns = 0")
	}
	if s.TasksRun != s.Spawns {
		t.Fatalf("TasksRun = %d, Spawns = %d; every spawned task must run", s.TasksRun, s.Spawns)
	}
	if s.Steals > s.Spawns {
		t.Fatalf("Steals = %d exceeds Spawns = %d", s.Steals, s.Spawns)
	}
	if s.MaxDepth == 0 || s.MaxLiveFrames == 0 {
		t.Fatalf("depth stats missing: %+v", s)
	}
}

func TestHooksSerialOrder(t *testing.T) {
	rec := &recorderHooks{}
	rt := New(WithSerialElision(), WithHooks(rec))
	err := rt.Run(func(c *Context) {
		c.Spawn(func(c *Context) {
			c.Spawn(func(*Context) {})
			// implicit sync at return
		})
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Root FrameStart; spawn child; child FrameStart; child spawns
	// grandchild (Spawn, FrameStart, grandchild implicit Sync, FrameEnd);
	// child's implicit Sync; child FrameEnd; root explicit Sync; root's
	// implicit sync; root FrameEnd.
	want := []string{
		"FS",       // root start
		"SP", "FS", // spawn child, child start
		"SP", "FS", // spawn grandchild, grandchild start
		"SY", "FE", // grandchild implicit sync, grandchild end
		"SY", "FE", // child implicit sync, child end
		"SY", // root explicit sync
		"SY", // root implicit sync
		"FE", // root end
	}
	if fmt.Sprint(rec.events) != fmt.Sprint(want) {
		t.Fatalf("events = %v\nwant     %v", rec.events, want)
	}
}

type recorderHooks struct{ events []string }

func (r *recorderHooks) Spawn()      { r.events = append(r.events, "SP") }
func (r *recorderHooks) FrameStart() { r.events = append(r.events, "FS") }
func (r *recorderHooks) FrameEnd()   { r.events = append(r.events, "FE") }
func (r *recorderHooks) Sync()       { r.events = append(r.events, "SY") }
func (r *recorderHooks) CallStart()  { r.events = append(r.events, "CS") }
func (r *recorderHooks) CallEnd()    { r.events = append(r.events, "CE") }

func TestCallScopesSync(t *testing.T) {
	// A sync inside a called frame must join only the called frame's own
	// children; the caller's pending children are untouched (Cilk calls
	// open a fresh sync scope).
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	var slowDone, callSawSlowDone atomic.Bool
	release := make(chan struct{})
	err := rt.Run(func(c *Context) {
		c.Spawn(func(*Context) {
			<-release
			slowDone.Store(true)
		})
		c.Call(func(c *Context) {
			c.Spawn(func(*Context) {})
			c.Sync() // joins only the call's child
			callSawSlowDone.Store(slowDone.Load())
		})
		close(release)
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if callSawSlowDone.Load() {
		t.Fatal("sync inside Call waited for the caller's spawned child")
	}
	if !slowDone.Load() {
		t.Fatal("outer sync did not join the slow child")
	}
}

func TestCallHookOrder(t *testing.T) {
	rec := &recorderHooks{}
	rt := New(WithSerialElision(), WithHooks(rec))
	err := rt.Run(func(c *Context) {
		c.Call(func(c *Context) {
			c.Spawn(func(*Context) {})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"FS",       // root start
		"CS",       // call start
		"SP", "FS", // spawn inside call
		"SY", "FE", // spawned child's implicit sync + end
		"SY", "CE", // call's implicit sync + call end
		"SY", "FE", // root implicit sync + end
	}
	if fmt.Sprint(rec.events) != fmt.Sprint(want) {
		t.Fatalf("events = %v\nwant     %v", rec.events, want)
	}
}

func TestCallViewsFlowThrough(t *testing.T) {
	// Views accumulated before, inside, and after a Call fold in serial
	// order: the called frame is serially part of the calling strand.
	for _, p := range []int{1, 4} {
		rt := New(WithWorkers(p), WithStealSeed(5))
		key := &fakeKey{}
		err := rt.Run(func(c *Context) {
			appendView(c, key, "a")
			c.Call(func(c *Context) {
				appendView(c, key, "b")
				c.Spawn(func(c *Context) { appendView(c, key, "c") })
				appendView(c, key, "d")
			})
			appendView(c, key, "e")
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		if got := key.final.Load(); got == nil || got.s != "abcde" {
			t.Fatalf("P=%d: fold = %v, want abcde", p, got)
		}
	}
}

func TestHooksRequireSerial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithHooks) without SerialElision should panic")
		}
	}()
	New(WithWorkers(2), WithHooks(NopHooks{}))
}

func TestWorkersValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithWorkers(0)) should panic")
		}
	}()
	New(WithWorkers(0))
}

// fakeView is a minimal View for testing fold ordering at the sched level.
type fakeView struct{ s string }

func (v *fakeView) Merge(right View) View {
	return &fakeView{s: v.s + right.(*fakeView).s}
}

type fakeKey struct {
	final atomic.Pointer[fakeView]
}

func (k *fakeKey) Finalize(v View) { k.final.Store(v.(*fakeView)) }

// appendView appends s to the strand's current view of key.
func appendView(c *Context, key *fakeKey, s string) {
	v, _ := c.LookupView(key).(*fakeView)
	if v == nil {
		v = &fakeView{}
		c.InstallView(key, v)
	}
	v.s += s
}

func TestViewFoldSerialOrder(t *testing.T) {
	// Parent writes "a", spawns child writing "b", writes "c", spawns child
	// writing "d", writes "e", syncs, writes "f". Serial order: abcdef.
	program := func(c *Context, key *fakeKey) {
		appendView(c, key, "a")
		c.Spawn(func(c *Context) { appendView(c, key, "b") })
		appendView(c, key, "c")
		c.Spawn(func(c *Context) { appendView(c, key, "d") })
		appendView(c, key, "e")
		c.Sync()
		appendView(c, key, "f")
	}
	for _, p := range []int{1, 2, 8} {
		for seed := int64(0); seed < 10; seed++ {
			rt := New(WithWorkers(p), WithStealSeed(seed))
			key := &fakeKey{}
			if err := rt.Run(func(c *Context) { program(c, key) }); err != nil {
				t.Fatal(err)
			}
			rt.Shutdown()
			got := key.final.Load()
			if got == nil || got.s != "abcdef" {
				t.Fatalf("P=%d seed=%d: folded view = %v, want abcdef", p, seed, got)
			}
		}
	}
}

func TestViewFoldRecursive(t *testing.T) {
	// A recursive computation whose serial order is an in-order walk.
	var walk func(c *Context, key *fakeKey, lo, hi int)
	walk = func(c *Context, key *fakeKey, lo, hi int) {
		if hi-lo == 1 {
			appendView(c, key, fmt.Sprintf("%d.", lo))
			return
		}
		mid := (lo + hi) / 2
		c.Spawn(func(c *Context) { walk(c, key, lo, mid) })
		walk(c, key, mid, hi)
		c.Sync()
	}
	want := ""
	for i := 0; i < 64; i++ {
		want += fmt.Sprintf("%d.", i)
	}
	for _, p := range []int{1, 4} {
		rt := New(WithWorkers(p), WithStealSeed(99))
		key := &fakeKey{}
		if err := rt.Run(func(c *Context) { walk(c, key, 0, 64) }); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		if got := key.final.Load().s; got != want {
			t.Fatalf("P=%d: fold = %q, want %q", p, got, want)
		}
	}
}

func TestViewFoldSerialElisionMatchesParallel(t *testing.T) {
	run := func(rt *Runtime) string {
		key := &fakeKey{}
		err := rt.Run(func(c *Context) {
			for i := 0; i < 10; i++ {
				i := i
				appendView(c, key, fmt.Sprintf("p%d,", i))
				c.Spawn(func(c *Context) { appendView(c, key, fmt.Sprintf("c%d,", i)) })
			}
			c.Sync()
			appendView(c, key, "end")
		})
		if err != nil {
			panic(err)
		}
		return key.final.Load().s
	}
	serial := New(WithSerialElision())
	want := run(serial)
	par := New(WithWorkers(6))
	got := run(par)
	par.Shutdown()
	if got != want {
		t.Fatalf("parallel fold %q differs from serial %q", got, want)
	}
}

func BenchmarkSpawnSyncPingPong(b *testing.B) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	err := rt.Run(func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.Spawn(func(*Context) {})
			c.Sync()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFib25(b *testing.B) {
	rt := New()
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int64
		if err := rt.Run(func(c *Context) { fib(c, 25, &out) }); err != nil {
			b.Fatal(err)
		}
	}
}
