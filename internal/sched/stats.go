package sched

import "sync/atomic"

// workerStats are per-worker counters. Each is written only by its owning
// worker goroutine; atomic access lets Stats read consistent snapshots while
// workers are still probing for work.
type workerStats struct {
	spawns        atomic.Int64
	steals        atomic.Int64
	stealAttempts atomic.Int64
	tasksRun      atomic.Int64
	liveFrames    atomic.Int64
	maxLiveFrames atomic.Int64
	maxDepth      atomic.Int64
}

func maxStore(m *atomic.Int64, v int64) {
	if v > m.Load() {
		m.Store(v)
	}
}

// Stats summarizes scheduler activity since the runtime was created.
type Stats struct {
	// Spawns is the total number of Spawn calls.
	Spawns int64
	// Steals counts successful steals; StealAttempts counts all steal
	// probes, successful or not. The ratio Steals/Spawns is the empirical
	// measure behind §3.2's claim that "stealing is infrequent" when
	// parallelism exceeds the worker count.
	Steals        int64
	StealAttempts int64
	// TasksRun is the number of spawned tasks executed (excluding Run
	// roots). It equals Spawns once all submitted computations finish.
	TasksRun int64
	// MaxLiveFrames is the maximum, over workers, of simultaneously live
	// frames on one worker — the runtime's analogue of per-worker stack
	// depth in the §3.1 space discussion.
	MaxLiveFrames int64
	// MaxDepth is the deepest spawn depth observed.
	MaxDepth int64
}

// Stats aggregates the per-worker counters. Counters of computations still
// in flight are included, so take snapshots after Run returns for exact
// accounting.
func (rt *Runtime) Stats() Stats {
	var s Stats
	for _, w := range rt.workers {
		s.Spawns += w.ws.spawns.Load()
		s.Steals += w.ws.steals.Load()
		s.StealAttempts += w.ws.stealAttempts.Load()
		s.TasksRun += w.ws.tasksRun.Load()
		if m := w.ws.maxLiveFrames.Load(); m > s.MaxLiveFrames {
			s.MaxLiveFrames = m
		}
		if m := w.ws.maxDepth.Load(); m > s.MaxDepth {
			s.MaxDepth = m
		}
	}
	return s
}
