package sched

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// workerStats are per-worker counters. Each is written only by its owning
// worker goroutine; atomic access lets Stats read consistent snapshots while
// workers are still probing for work.
type workerStats struct {
	spawns             atomic.Int64
	steals             atomic.Int64
	stealAttempts      atomic.Int64
	stealBatches       atomic.Int64
	tasksStolenBatched atomic.Int64
	failedSweeps       atomic.Int64
	tasksRun           atomic.Int64
	tasksSkipped       atomic.Int64
	liveFrames         atomic.Int64
	maxLiveFrames      atomic.Int64
	maxDepth           atomic.Int64
	loopSplits         atomic.Int64
	chunksPeeled       atomic.Int64
	rangeSteals        atomic.Int64
	localSteals        atomic.Int64
	remoteSteals       atomic.Int64
	domainEscalations  atomic.Int64
	affinityReinjected atomic.Int64
	poolRefills        atomic.Int64
	poolSpills         atomic.Int64
	// memLive is the worker's net Context.Charge balance across all runs,
	// armed or not — together with liveFrames it feeds the runtime-wide
	// live-memory gauge (Runtime.MemLiveBytes) the admission watermarks
	// consult. Like the per-run cells, refunds may land on a different
	// worker than their charge, so a single worker's value can go negative.
	memLive atomic.Int64
}

// bump adds 1 to a single-writer atomic counter with a plain load and
// store. Correct only because every workerStats/runCell field has exactly
// one writing goroutine (the owning worker, or the serial strand); readers
// still get tear-free values through the atomics. On the spawn fast path
// this replaces a LOCK'd read-modify-write per counter with two ordinary
// memory operations on a line the owner already holds.
func bump(c *atomic.Int64) {
	c.Store(c.Load() + 1)
}

// bumpN is bump for increments larger than one.
func bumpN(c *atomic.Int64, n int64) {
	c.Store(c.Load() + n)
}

// maxOwn raises the single-writer max-gauge m to v — bump's analogue of
// maxStore, with the same single-writer contract.
func maxOwn(m *atomic.Int64, v int64) {
	if v > m.Load() {
		m.Store(v)
	}
}

// maxStore raises the max-gauge m to v. The CAS loop makes it correct under
// concurrent writers: the span gauges (frame.spanChild) are deposited by
// whichever workers complete the frame's children, so a plain
// load-then-store could regress the gauge when two workers race. Counters
// with a single writing goroutine use maxOwn instead.
func maxStore(m *atomic.Int64, v int64) {
	for {
		old := m.Load()
		if v <= old || m.CompareAndSwap(old, v) {
			return
		}
	}
}

// Stats summarizes scheduler activity since the runtime was created.
type Stats struct {
	// Spawns is the total number of Spawn calls.
	Spawns int64
	// Steals counts successful steals; StealAttempts counts all steal
	// probes, successful or not. The ratio Steals/Spawns is the empirical
	// measure behind §3.2's claim that "stealing is infrequent" when
	// parallelism exceeds the worker count.
	Steals        int64
	StealAttempts int64
	// StealBatches counts successful batch steals — StealBatch operations
	// that moved at least one extra task into the thief's deque beyond the
	// task it kept to run. TasksStolenBatched is the total number of those
	// extra tasks. Steals counts every successful steal operation, batched
	// or not, so TasksStolenBatched/StealBatches is the mean surplus per
	// batch and Steals+TasksStolenBatched is the total number of tasks that
	// migrated between workers. Both are zero in RunWithStats results:
	// batching is a property of the worker's hunt, not of one computation.
	StealBatches       int64
	TasksStolenBatched int64
	// FailedSweeps counts steal sweeps that probed every other worker and
	// found nothing — the consecutive-failure signal that escalates a
	// worker's hunt from spinning through yielding to parking. Also zero in
	// RunWithStats results, like StealAttempts.
	FailedSweeps int64
	// TasksRun is the number of spawned tasks and scheduled loop pieces
	// executed (excluding Run roots). Absent lazy loops it equals Spawns
	// once all submitted computations finish, provided none were cancelled
	// (see TasksSkipped).
	TasksRun int64
	// TasksSkipped is the number of tasks abandoned without executing
	// because their run was cancelled (by context, deadline, a sibling
	// panic, or ShutdownDrain). Spawns = TasksRun + TasksSkipped at
	// quiescence.
	TasksSkipped int64
	// MaxLiveFrames is the maximum, over workers, of simultaneously live
	// frames on one worker — the runtime's analogue of per-worker stack
	// depth in the §3.1 space discussion.
	MaxLiveFrames int64
	// MaxDepth is the deepest spawn depth observed.
	MaxDepth int64
	// Lazy-loop counters (see internal/sched/loop.go). ChunksPeeled counts
	// grain-sized chunks executed; it is the loop analogue of iterations/grain
	// and is schedule-independent. RangeSteals counts steals whose prize was a
	// range task, and LoopSplits counts the halvings those steals triggered —
	// together they measure how far the lazy split tree actually unfolded
	// (1 + LoopSplits range tasks ever existed per loop, vs Θ(n/grain) tasks
	// under eager splitting).
	LoopSplits   int64
	ChunksPeeled int64
	RangeSteals  int64
	// Locality counters (see internal/sched/domain.go). Every successful
	// steal is either local (victim in the thief's steal domain) or remote,
	// so LocalSteals + RemoteSteals == Steals; on a flat runtime every
	// steal is local. DomainEscalations counts hunts that swept their whole
	// domain dry and crossed to remote domains — the escalation rung
	// Suksompong et al.'s localized-stealing bound charges for.
	// AffinityReinjected counts stolen range halves sent back toward their
	// loop owner's domain instead of staying on the remote thief's deque.
	// All are zero in RunWithStats results: locality is a property of the
	// worker's hunt, not of one computation.
	LocalSteals        int64
	RemoteSteals       int64
	DomainEscalations  int64
	AffinityReinjected int64
	// Frame-recycler counters (see frame.go). PoolSpills counts batches of
	// frameBatchSize frames a worker's full freelist handed to the global
	// backstop; PoolRefills counts batches a dry freelist took back. Both
	// are rare by design — a spawn/sync region that fits in the local cap
	// recycles frames with no global traffic at all — so a spike flags a
	// workload whose producers and consumers are different workers (steal-
	// heavy, or deep unbalanced trees). Zero in RunWithStats results:
	// recycling is a property of the worker, not of one computation.
	PoolRefills int64
	PoolSpills  int64
	// Stalls counts no-global-progress windows detected by the sanitizer's
	// stall watchdog (see schedsan.Options.StallAfter). Always zero on a
	// runtime built without WithSanitize or without a watchdog threshold.
	Stalls int64
	// MemLiveBytes and MemPeakBytes are the memory accounting gauges (see
	// memory.go): live frame bytes plus the net Context.Charge balance, and
	// the run's measured high-water mark. In a per-run snapshot (Ticket.Stats)
	// MemLiveBytes is read at quiescence, so it is the run's unrefunded
	// Charge balance — 0 for a balanced program — and MemPeakBytes is the
	// peak the admission EWMA feeds on. In the runtime-wide Stats(),
	// MemLiveBytes is the instantaneous cross-run gauge and MemPeakBytes is
	// zero (peaks are a per-run notion). Both are watermark/gauge-like:
	// Sub keeps the newer snapshot's values.
	MemLiveBytes int64
	MemPeakBytes int64
	// Work and Span are the run's online work (T1) and span (T∞), measured
	// during the parallel execution itself by per-strand clocks aggregated
	// at spawn/sync boundaries (see obs.go). Populated only in the Stats of
	// an observed run (WithRunObserver) — zero otherwise, and always zero in
	// the runtime-wide aggregate Stats(), which spans many runs. Work/Span
	// is the run's measured parallelism (the online Cilkview estimate).
	Work time.Duration
	Span time.Duration
}

// Stats aggregates the per-worker counters. Counters of computations still
// in flight are included, so take snapshots after Run returns for exact
// accounting.
func (rt *Runtime) Stats() Stats {
	var s Stats
	for _, w := range rt.workers {
		s.Spawns += w.ws.spawns.Load()
		s.Steals += w.ws.steals.Load()
		s.StealAttempts += w.ws.stealAttempts.Load()
		s.StealBatches += w.ws.stealBatches.Load()
		s.TasksStolenBatched += w.ws.tasksStolenBatched.Load()
		s.FailedSweeps += w.ws.failedSweeps.Load()
		s.TasksRun += w.ws.tasksRun.Load()
		s.TasksSkipped += w.ws.tasksSkipped.Load()
		s.LoopSplits += w.ws.loopSplits.Load()
		s.ChunksPeeled += w.ws.chunksPeeled.Load()
		s.RangeSteals += w.ws.rangeSteals.Load()
		s.LocalSteals += w.ws.localSteals.Load()
		s.RemoteSteals += w.ws.remoteSteals.Load()
		s.DomainEscalations += w.ws.domainEscalations.Load()
		s.AffinityReinjected += w.ws.affinityReinjected.Load()
		s.PoolRefills += w.ws.poolRefills.Load()
		s.PoolSpills += w.ws.poolSpills.Load()
		if m := w.ws.maxLiveFrames.Load(); m > s.MaxLiveFrames {
			s.MaxLiveFrames = m
		}
		if m := w.ws.maxDepth.Load(); m > s.MaxDepth {
			s.MaxDepth = m
		}
	}
	s.Stalls = rt.stalls.Load()
	s.MemLiveBytes = rt.MemLiveBytes()
	return s
}

// Sub returns the counter deltas s − prev, for snapshot-style accounting
// around a region of interest (take Stats before and after, subtract). The
// max gauges MaxLiveFrames and MaxDepth are watermarks, not counters — a
// delta is meaningless — so Sub keeps s's values for them.
func (s Stats) Sub(prev Stats) Stats {
	s.Spawns -= prev.Spawns
	s.Steals -= prev.Steals
	s.StealAttempts -= prev.StealAttempts
	s.StealBatches -= prev.StealBatches
	s.TasksStolenBatched -= prev.TasksStolenBatched
	s.FailedSweeps -= prev.FailedSweeps
	s.TasksRun -= prev.TasksRun
	s.TasksSkipped -= prev.TasksSkipped
	s.LoopSplits -= prev.LoopSplits
	s.ChunksPeeled -= prev.ChunksPeeled
	s.RangeSteals -= prev.RangeSteals
	s.LocalSteals -= prev.LocalSteals
	s.RemoteSteals -= prev.RemoteSteals
	s.DomainEscalations -= prev.DomainEscalations
	s.AffinityReinjected -= prev.AffinityReinjected
	s.PoolRefills -= prev.PoolRefills
	s.PoolSpills -= prev.PoolSpills
	s.Stalls -= prev.Stalls
	// MemLiveBytes and MemPeakBytes are gauges/watermarks like MaxLiveFrames:
	// deltas are meaningless, keep s's values.
	s.Work -= prev.Work
	s.Span -= prev.Span
	return s
}

// Metrics returns the runtime's counters as a flat name → value map in
// expvar style, suitable for publishing from a long-running server (see
// cilkgo.PublishExpvar): the aggregate Stats fields in snake_case plus
// per-worker spawn/steal/task breakdowns, worker count, and whether the
// tracer is currently recording.
func (rt *Runtime) Metrics() map[string]int64 {
	s := rt.Stats()
	m := map[string]int64{
		"workers":              int64(rt.cfg.workers),
		"spawns":               s.Spawns,
		"steals":               s.Steals,
		"steal_attempts":       s.StealAttempts,
		"steal_batches":        s.StealBatches,
		"tasks_stolen_batched": s.TasksStolenBatched,
		"failed_sweeps":        s.FailedSweeps,
		"tasks_run":            s.TasksRun,
		"tasks_skipped":        s.TasksSkipped,
		"loop_splits":          s.LoopSplits,
		"chunks_peeled":        s.ChunksPeeled,
		"range_steals":         s.RangeSteals,
		// Locality layer (domain.go): domain count plus the steal-locality
		// breakdown — local_steals + remote_steals == steals always.
		"steal_domains":       int64(len(rt.domains)),
		"local_steals":        s.LocalSteals,
		"remote_steals":       s.RemoteSteals,
		"domain_escalations":  s.DomainEscalations,
		"affinity_reinjected": s.AffinityReinjected,
		// Frame-recycler traffic (frame.go): batches spilled to / refilled
		// from the global backstop by the per-worker freelists.
		"pool_refills":    s.PoolRefills,
		"pool_spills":     s.PoolSpills,
		"max_live_frames": s.MaxLiveFrames,
		"max_depth":       s.MaxDepth,
		"runs_submitted":  rt.runIDs.Load(),
		// Robustness-layer counters: runs abandoned by cancellation (any
		// cause) and panics quarantined across all runs.
		"runs_canceled":      rt.runsCanceled.Load(),
		"panics_quarantined": rt.panicsQuarantined.Load(),
		// Serving-layer gauges and counters (see submit.go): roots queued in
		// injection lanes right now, and cumulative admission outcomes.
		"inject_queued": rt.injected.Load(),
		// Memory layer (memory.go): the live gauge and runs cancelled for
		// exceeding their budget (per-run budgets plus hard-watermark sheds).
		"mem_live_bytes":     s.MemLiveBytes,
		"mem_budget_cancels": rt.memBudgetCancels.Load(),
	}
	if a := rt.adm; a != nil {
		a.mu.Lock()
		m["runs_running"] = int64(a.running)
		m["admission_admitted"] = a.admitted
		m["admission_rejected_load"] = a.rejectedLoad
		m["admission_rejected_quota"] = a.rejectedQuota
		m["mem_pressure_rejected"] = a.rejectedMemory
		a.mu.Unlock()
	}
	for c := 0; c < numQoS; c++ {
		// Underscored class names: these keys feed the Prometheus exposition,
		// whose metric names admit neither dots nor dashes.
		m["queued_"+strings.ReplaceAll(QoSClass(c).String(), "-", "_")] = rt.queuedByClass[c].Load()
	}
	if s.Stalls > 0 || rt.san != nil {
		m["stalls"] = s.Stalls
	}
	if san := rt.san; san != nil {
		san.mu.Lock()
		m["san_violations"] = san.violations
		san.mu.Unlock()
		m["san_faults_injected"] = san.inj.TotalFired()
	}
	for i, w := range rt.workers {
		p := fmt.Sprintf("worker.%d.", i)
		m[p+"spawns"] = w.ws.spawns.Load()
		m[p+"steals"] = w.ws.steals.Load()
		m[p+"steal_attempts"] = w.ws.stealAttempts.Load()
		m[p+"steal_batches"] = w.ws.stealBatches.Load()
		m[p+"local_steals"] = w.ws.localSteals.Load()
		m[p+"remote_steals"] = w.ws.remoteSteals.Load()
		m[p+"failed_sweeps"] = w.ws.failedSweeps.Load()
		m[p+"tasks_run"] = w.ws.tasksRun.Load()
		m[p+"max_live_frames"] = w.ws.maxLiveFrames.Load()
	}
	if rt.tracer != nil {
		m["trace_enabled"] = 0
		if rt.tracer.Enabled() {
			m["trace_enabled"] = 1
		}
	}
	return m
}
