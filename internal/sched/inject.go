package sched

// This file is the serving-side injection path: per-worker sharded lanes of
// root tasks, each lane holding one queue per QoS class, drained by weighted
// deficit round-robin (DRR).
//
// Why sharded: one global FIFO guarded by the runtime mutex made every idle
// probe of every worker serialize on that mutex, and made a flood of cheap
// best-effort submissions head-of-line-block an interactive one behind
// thousands of queue positions. Lanes shard the submission path — a
// submitting goroutine contends only with submitters hashed to the same lane
// plus that lane's drainers — and tenant-hashed placement keeps a tenant's
// roots landing on the lane of the worker most recently warm with its state
// (the serving analogue of localized work stealing). Any idle worker sweeps
// all lanes starting at its own, so placement is an affinity hint, never a
// partition: work on one lane is visible to every worker.
//
// Why DRR: each class carries a weight (interactive 8, batch 4, best-effort
// 1). A lane's pop visits classes round-robin; a class must accumulate
// `weight` credits (deficit) before the rotor moves on, and each popped root
// costs one credit. Under backlog in all classes the service ratio converges
// to exactly 8:4:1 regardless of arrival order or flood depth, and an empty
// class forfeits its credits (deficit resets to zero) so an idle class can
// never bank credit and then burst-starve the others. Classic DRR with
// cost-1 packets; DESIGN.md §4f works the math.

import "sync"

// QoSClass is the quality-of-service class of a submitted computation. The
// class decides only the rate at which queued roots are *picked up* under
// backlog (the DRR weights below); once running, tasks of all classes share
// the workers identically.
type QoSClass uint8

const (
	// QoSInteractive is for latency-sensitive work: weight 8.
	QoSInteractive QoSClass = iota
	// QoSBatch is the default class: weight 4.
	QoSBatch
	// QoSBestEffort is for work that should only soak up slack: weight 1.
	QoSBestEffort

	numQoS = 3
)

// qosWeights are the DRR credits granted per rotor visit. Under backlog in
// every class the pickup ratio converges to these weights.
var qosWeights = [numQoS]int{8, 4, 1}

var qosNames = [numQoS]string{"interactive", "batch", "best-effort"}

func (q QoSClass) String() string {
	if int(q) < numQoS {
		return qosNames[q]
	}
	return "invalid"
}

// ParseQoS maps a class name ("interactive", "batch", "best-effort") to its
// QoSClass. The second result reports whether the name was recognized.
func ParseQoS(s string) (QoSClass, bool) {
	for i, n := range qosNames {
		if s == n {
			return QoSClass(i), true
		}
	}
	return QoSBatch, false
}

// injectLane is one shard of the root-injection queue: a per-class FIFO plus
// the lane's DRR rotor state. Lanes are locked independently of rt.mu;
// submitters take rt.mu → lane.mu (in that order, see Submit) while drainers
// take lane.mu alone, so the lane lock is the only cross-section between a
// submitting goroutine and an idle worker's sweep.
type injectLane struct {
	mu      sync.Mutex
	q       [numQoS][]*task
	deficit [numQoS]int
	cur     int
}

// push enqueues a root task under class cls. Within a class, higher-priority
// roots (WithPriority) are placed ahead of lower ones; equal priorities keep
// FIFO arrival order (stable insert from the back — the common all-default
// case is a pure append).
func (l *injectLane) push(t *task, cls QoSClass, prio int) {
	l.mu.Lock()
	q := l.q[cls]
	i := len(q)
	for i > 0 && rootPrio(q[i-1]) < prio {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = t
	l.q[cls] = q
	l.mu.Unlock()
}

// rootPrio reads the submission priority of a queued root task.
func rootPrio(t *task) int { return t.frame.run.prio }

// pop removes and returns the next root task by deficit round-robin, or nil
// if the lane is empty. Each popped root costs one credit against its
// class's deficit; a class visited while empty forfeits its accumulated
// credit, so weights bound *service* under backlog without letting an idle
// class bank a burst.
func (l *injectLane) pop() *task {
	l.mu.Lock()
	defer l.mu.Unlock()
	for visited := 0; visited < numQoS; visited++ {
		c := l.cur
		q := l.q[c]
		if len(q) == 0 {
			l.deficit[c] = 0
			l.cur = (l.cur + 1) % numQoS
			continue
		}
		if l.deficit[c] <= 0 {
			l.deficit[c] += qosWeights[c]
		}
		t := q[0]
		// Nil out the popped head: the backing array survives the reslice,
		// and without this it would retain the root task (and its whole
		// frame tree) until the slice is reallocated.
		q[0] = nil
		l.q[c] = q[1:]
		l.deficit[c]--
		if l.deficit[c] <= 0 || len(l.q[c]) == 0 {
			l.cur = (l.cur + 1) % numQoS
		}
		return t
	}
	return nil
}

// size returns the number of queued roots in the lane.
func (l *injectLane) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for c := 0; c < numQoS; c++ {
		n += len(l.q[c])
	}
	return n
}

// laneHash maps a tenant label to a lane deterministically: FNV-1a over
// the label with the runtime's steal seed folded into the offset basis.
// The previous implementation hashed with a process-random
// maphash.MakeSeed(), so tenant→lane placement differed on every run —
// which broke schedfuzz's "a trial is a pure function of its seed"
// contract and made WithStealSeed reproductions place tenants on different
// lanes than the run being reproduced. Two runtimes built with the same
// steal seed now agree on placement across processes and restarts
// (TestLaneHashDeterministic pins this).
func laneHash(seed int64, tenant string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(seed)*0x9e3779b97f4a7c15
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return h
}

// laneFor picks the lane a submission lands on: tenant-hashed for labeled
// submissions (a tenant's roots keep hitting the lane of the worker warm
// with its state), round-robin for anonymous ones. With WithLegacyInject
// everything lands on lane 0 — the pre-sharding single FIFO, kept for A/B
// measurement.
func (rt *Runtime) laneFor(tenant string) *injectLane {
	n := len(rt.lanes)
	if rt.cfg.legacyInject || n == 1 {
		return rt.lanes[0]
	}
	if tenant != "" {
		return rt.lanes[laneHash(rt.cfg.stealSeed, tenant)%uint64(n)]
	}
	return rt.lanes[uint64(rt.laneRR.Add(1))%uint64(n)]
}

// queuedRoots counts queued roots across all lanes (the slow, exact
// counterpart of the rt.injected fast-path gauge; used by diagnostics).
func (rt *Runtime) queuedRoots() int {
	n := 0
	for _, l := range rt.lanes {
		n += l.size()
	}
	return n
}
