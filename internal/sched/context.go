package sched

import (
	"time"

	"cilkgo/internal/schedsan"
)

// Context is the handle a strand uses to create and synchronize parallel
// work. A Context is bound to one executing function instance (one frame);
// it is not safe for concurrent use, and spawned children receive their own
// Contexts. This mirrors the Cilk++ keywords: Spawn is cilk_spawn, Sync is
// cilk_sync.
type Context struct {
	w     *worker // nil in serial-elision mode
	rt    *Runtime
	frame *frame

	// views holds the hyperobject views of the frame's current strand
	// segment. Only this frame's strand touches it; Spawn seals it into the
	// frame and Sync folds the sealed segments back, preserving serial
	// reduction order under any schedule.
	views viewMap

	// ckey/cview are a single-entry cache over views: the last key looked up
	// and its view. Reducer-heavy loops call View once per iteration, so the
	// hit path must be one pointer compare instead of an O(#views) scan. The
	// cache is invalidated at every strand-segment boundary — Spawn's seal,
	// Sync's fold, Call's view handback, DropView — because the view a key
	// maps to changes exactly there.
	ckey  any
	cview View

	// Online work/span clock fields (see obs.go), used only on observed
	// runs. strandStart is the nanots timestamp at which the current strand
	// segment opened; spanLocal is the span accumulated along this frame's
	// strand (segment durations plus folded child spans). Only this frame's
	// strand touches them.
	strandStart int64
	spanLocal   int64
}

// Runtime returns the runtime executing this computation.
func (c *Context) Runtime() *Runtime { return c.rt }

// WorkerID returns the index of the worker executing this strand, or 0 in
// serial-elision mode.
func (c *Context) WorkerID() int {
	if c.w == nil {
		return 0
	}
	return c.w.id
}

// Depth returns the spawn depth of this frame below the root.
func (c *Context) Depth() int { return int(c.frame.depth) }

// Spawn submits fn as a spawned child of this frame: the child may execute
// in parallel with the rest of this function, on this or any other worker.
// Results produced by the child must not be consumed before the next Sync.
//
// In serial-elision mode Spawn simply calls fn, yielding exactly the serial
// C++-elision execution order.
//
// On a cancelled run Spawn is a no-op — the spawn boundary is a cancel
// check site (one atomic load), so a cancelled computation stops growing
// its spawn tree.
func (c *Context) Spawn(fn func(*Context)) {
	if c.rt.cfg.serial {
		c.spawnSerial(fn)
		return
	}
	f := c.frame
	f.run.checkBudget(c.w) // the spawn boundary is a budget check site too
	if f.run.cancelled() {
		return
	}
	if cl := f.run.clock; cl != nil {
		// Observed run: the spawn ends the current strand segment — charge
		// it, so the child's spawnSpan below is the span at the spawn point.
		c.charge(cl)
	}
	ord := f.nextOrdinal
	f.nextOrdinal++
	if len(c.views) > 0 {
		f.sealSegment(ord, c.views)
		c.views = nil
		// The continuation is a new strand segment: a view looked up before
		// the spawn belongs to the sealed segment and must not be served to
		// the continuation (it would corrupt the serial fold order).
		c.ckey, c.cview = nil, nil
	}
	f.pending.Add(1)
	w := c.w
	child := w.getFrame(f, f.run, ord, f.depth+1)
	// spanLocal is zero on unobserved runs, and recycled frames reset the
	// field, so the store needs no clock gate.
	child.spawnSpan = c.spanLocal
	child.t.fn = fn
	bump(&w.ws.spawns)
	if s := f.run.stats; s != nil {
		bump(&s.cells[w.id].spawns)
	}
	w.rec.Spawn()
	// Wake a parked worker only when this push made the deque non-empty: a
	// non-empty deque already blocks parking (the parker's under-lock
	// stealableWork re-check), so pushes onto a deque with visible work
	// cannot strand anyone — and spawn-path wakes are droppable anyway (see
	// stealableWork's lost-wakeup argument). Spawn-dense runs thus probe
	// rt.parked once per run-dry episode instead of once per spawn.
	if w.deque.PushBottom(&child.t) {
		c.rt.wake()
	}
}

// spawnSerial executes the child immediately as an ordinary call, firing
// instrumentation hooks in depth-first serial order. The child shares the
// parent's view map, which trivially yields the serial reduction order.
func (c *Context) spawnSerial(fn func(*Context)) {
	rs := c.frame.run
	rs.checkBudget(nil)
	if rs.cancelled() {
		return
	}
	h := c.rt.cfg.hooks
	if h != nil {
		h.Spawn()
	}
	child := newFrameShared(c.frame, rs, 0, c.frame.depth+1)
	if rs.stats != nil {
		// Serial-elision accounting is tracked in plain per-run fields on
		// the single strand — the old per-spawn maxStore CAS loops were pure
		// overhead with one writer — and published into cell 0 once, at run
		// end (runSerial). The serial elision's live frames are its call
		// depth, so the depth watermark carries both gauges.
		rs.serialSpawns++
		if d := int64(child.depth); d > rs.serialMaxDepth {
			rs.serialMaxDepth = d
		}
	}
	cc := &child.ctx
	cc.rt, cc.views = c.rt, c.views
	if h != nil {
		h.FrameStart()
	}
	fn(cc)
	cc.Sync()
	c.views = cc.views // the child may have (re)allocated the shared map
	c.ckey, c.cview = nil, nil
	if h != nil {
		h.FrameEnd()
	}
	freeFrameShared(child) // not freed on a panic path: the pool tolerates leaks
}

// Call executes fn synchronously in a fresh frame, like an ordinary (not
// spawned) Cilk function call: fn runs to completion on the calling strand,
// and its implicit sync joins only the children fn itself spawned — not the
// caller's pending children. Constructs with their own sync scope, such as
// cilk_for (internal/pfor), are built on Call.
func (c *Context) Call(fn func(*Context)) {
	h := c.rt.cfg.hooks
	if h != nil {
		h.CallStart()
	}
	w := c.w
	var child *frame
	if w != nil {
		child = w.getFrame(c.frame, c.frame.run, 0, c.frame.depth+1)
	} else {
		child = newFrameShared(c.frame, c.frame.run, 0, c.frame.depth+1)
	}
	// The callee borrows the child frame's embedded Context — a Call
	// allocates nothing on a warm freelist.
	cc := &child.ctx
	cc.w, cc.rt, cc.views = w, c.rt, c.views
	cl := c.frame.run.clock
	if cl != nil {
		// A called frame stays on the caller's strand: the callee's clock
		// continues the caller's open segment and accumulated span, and the
		// caller absorbs both back when the call returns — so the strand's
		// span threads through the call as if it were inlined.
		cc.strandStart, cc.spanLocal = c.strandStart, c.spanLocal
	}
	fn(cc)
	cc.Sync() // implicit sync of the called frame
	if cl != nil {
		c.strandStart, c.spanLocal = cc.strandStart, cc.spanLocal
	}
	c.views = cc.views
	c.ckey, c.cview = nil, nil
	if h != nil {
		h.CallEnd()
	}
	// Not freed on a panic path: the recycler tolerates leaks.
	if w != nil {
		w.putFrame(child)
	} else {
		freeFrameShared(child)
	}
}

// Sync waits until every child spawned by this function has completed — a
// local barrier, not a global one (§1). While waiting, the worker first
// drains its own deque and then steals, so processors never idle while work
// is available. When the join completes, the frame's hyperobject views are
// folded in serial order.
func (c *Context) Sync() {
	if c.rt.cfg.serial {
		if h := c.rt.cfg.hooks; h != nil {
			h.Sync()
		}
		return
	}
	cl := c.frame.run.clock
	if cl != nil {
		// The sync ends the strand segment; the wait itself is excluded
		// from both clocks (a sync edge has zero weight in the dag model —
		// the worker may run unrelated tasks while it waits, and those
		// charge their own runs).
		c.charge(cl)
	}
	c.syncWait()
	if cl != nil {
		c.strandStart = c.rt.nanots()
		c.foldSpanChildren()
	}
	f := c.frame
	if n := f.pending.Load(); n < 0 && c.rt.sanChecks() {
		c.rt.sanViolation("sync on frame depth %d observed join counter %d — a child joined twice", f.depth, n)
	}
	if f.nextOrdinal > 0 || f.nextLoopSeq > 0 {
		// Fold only when some hyperobject bookkeeping actually landed this
		// region — a sealed segment or a deposit. Otherwise the fold is the
		// identity on c.views (nothing was sealed, so the strand's map IS
		// the serial accumulation) and the whole machinery — redMu, the
		// segment walk, the piece sort, the view-cache invalidation — is
		// skipped. The depositedViews read is ordered after every deposit by
		// the join counter reaching zero above (syncWait's load).
		if f.sealedViews || f.depositedViews {
			if c.w != nil {
				// Sanitizer: stretch the window between the last child
				// deposit and the fold that consumes the deposits.
				c.w.san.Delay(schedsan.PointViewFold)
			}
			c.views = f.foldViews(c.views)
			c.ckey, c.cview = nil, nil
		}
		f.nextOrdinal = 0
		f.nextLoopSeq = 0
	}
}

// syncWait blocks until the frame's join counter reaches zero, executing
// other available tasks while waiting.
func (c *Context) syncWait() {
	f := c.frame
	if f.pending.Load() == 0 {
		return
	}
	w := c.w
	backoff := minBackoff
	// A healthy join counter reaches exactly zero. It can only go negative
	// through a double-join bug; exiting on <= 0 (instead of != 0) keeps
	// that failure observable — Sync's gated invariant check reports the
	// negative counter — rather than an unexplained spin here.
	for f.pending.Load() > 0 {
		if t := w.deque.PopBottom(); t != nil {
			w.runTask(t)
			backoff = minBackoff
			continue
		}
		if t := w.stealOnce(); t != nil {
			w.runTask(t)
			backoff = minBackoff
			continue
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// LookupView returns the strand's current view for the hyperobject key, or
// nil. Used by the hyperobject library (internal/hyper). The last key looked
// up hits a single-entry cache — one interface compare — so per-iteration
// View calls in reducer loops skip the view-map scan.
func (c *Context) LookupView(key any) View {
	if key == c.ckey {
		return c.cview
	}
	v := c.views.lookup(key)
	if v != nil {
		c.ckey, c.cview = key, v
	}
	return v
}

// InstallView records v as the strand's current view for key. The key must
// not already have a view in this strand segment (callers look up first).
func (c *Context) InstallView(key any, v View) {
	c.views = append(c.views, viewEntry{key: key, v: v})
	c.ckey, c.cview = key, v
}

// DropView removes the strand's current view for key, if any. Used by the
// hyperobject library when a reducer is released to a pool: the next
// acquisition may hand the same reducer pointer to the same strand, and a
// surviving view-map entry would resurrect the retired view instead of
// starting a fresh reduction.
func (c *Context) DropView(key any) {
	for i := range c.views {
		if c.views[i].key == key {
			c.views = append(c.views[:i], c.views[i+1:]...)
			break
		}
	}
	c.ckey, c.cview = nil, nil
}
