package sched

import (
	"runtime"
	"sync/atomic"
	"testing"

	"cilkgo/internal/schedsan"
)

// TestDomainPartition: WithStealDomains splits the workers into contiguous
// near-equal blocks, clamps out-of-range counts, and the default runtime
// stays flat (one domain, no affinity mailboxes).
func TestDomainPartition(t *testing.T) {
	rt := New(WithWorkers(8), WithStealDomains(3))
	defer rt.Shutdown()
	if got := len(rt.domains); got != 3 {
		t.Fatalf("domains = %d, want 3", got)
	}
	var sizes []int
	for _, d := range rt.domains {
		sizes = append(sizes, len(d))
	}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 2 {
		t.Fatalf("domain sizes = %v, want [3 3 2]", sizes)
	}
	for i, w := range rt.workers {
		if want := i * 3 / 8; w.domain != want {
			t.Fatalf("worker %d in domain %d, want %d", i, w.domain, want)
		}
	}
	if rt.affinity == nil || len(rt.affinity) != 3 {
		t.Fatalf("affinity mailboxes = %v, want 3", rt.affinity)
	}

	clamped := New(WithWorkers(2), WithStealDomains(10))
	defer clamped.Shutdown()
	if got := len(clamped.domains); got != 2 {
		t.Fatalf("clamped domains = %d, want 2 (one per worker)", got)
	}

	flat := New(WithWorkers(4))
	defer flat.Shutdown()
	if got := len(flat.domains); got != 1 {
		t.Fatalf("default domains = %d, want 1", got)
	}
	if flat.affinity != nil {
		t.Fatal("flat runtime allocated affinity mailboxes")
	}

	auto := New(WithWorkers(4), WithStealDomains(0))
	defer auto.Shutdown()
	if got := len(auto.domains); got < 1 || got > 4 {
		t.Fatalf("auto-detected domains = %d, want within [1, 4]", got)
	}
}

// TestDomainStealSplit: every successful steal is classified local or
// remote, and the two always partition the steal count exactly — on wide
// loops, on spawn trees, and on the flat runtime (where every steal is
// local by definition).
func TestDomainStealSplit(t *testing.T) {
	rt := New(WithWorkers(4), WithStealDomains(2))
	defer rt.Shutdown()
	const n = 20000
	counts := make([]int32, n)
	if err := rt.Run(func(c *Context) {
		loopRange(c, 0, n, 4, func(c *Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
			runtime.Gosched()
		})
	}); err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, counts)
	st := rt.Stats()
	if st.LocalSteals+st.RemoteSteals != st.Steals {
		t.Fatalf("LocalSteals %d + RemoteSteals %d != Steals %d",
			st.LocalSteals, st.RemoteSteals, st.Steals)
	}

	flat := New(WithWorkers(4))
	defer flat.Shutdown()
	var out int64
	if err := flat.Run(func(c *Context) { fibYield(c, 16, &out) }); err != nil {
		t.Fatal(err)
	}
	fst := flat.Stats()
	if fst.RemoteSteals != 0 || fst.DomainEscalations != 0 {
		t.Fatalf("flat runtime counted remote activity: remote=%d escalations=%d",
			fst.RemoteSteals, fst.DomainEscalations)
	}
	if fst.LocalSteals != fst.Steals {
		t.Fatalf("flat runtime: LocalSteals %d != Steals %d", fst.LocalSteals, fst.Steals)
	}
}

// TestDomainEscalationStress: work that originates in one domain forces the
// other domain's thieves through the escalation ladder — they must cross the
// boundary (DomainEscalations) and their first prize must be remote. Runs
// repeat until steals actually happened, since a fast run may finish before
// any thief wakes.
func TestDomainEscalationStress(t *testing.T) {
	rt := New(WithWorkers(4), WithStealDomains(2))
	defer rt.Shutdown()
	for attempt := 0; attempt < 20; attempt++ {
		var out int64
		if err := rt.Run(func(c *Context) { fibYield(c, 18, &out) }); err != nil {
			t.Fatal(err)
		}
		st := rt.Stats()
		if st.LocalSteals+st.RemoteSteals != st.Steals {
			t.Fatalf("LocalSteals %d + RemoteSteals %d != Steals %d",
				st.LocalSteals, st.RemoteSteals, st.Steals)
		}
		if st.RemoteSteals >= 1 && st.DomainEscalations >= 1 {
			return
		}
	}
	st := rt.Stats()
	t.Fatalf("no cross-domain activity in 20 runs: %+v", st)
}

// TestDomainAffinityReinjection: with small grains on a wide loop, some
// range halves are stolen across the domain boundary; the thief re-injects
// them toward the owner's domain instead of keeping them, and the mailboxes
// are always drained by the time the run completes (a queued half holds the
// loop's join open).
func TestDomainAffinityReinjection(t *testing.T) {
	rt := New(WithWorkers(4), WithStealDomains(2))
	defer rt.Shutdown()
	const n = 50000
	for attempt := 0; attempt < 20; attempt++ {
		counts := make([]int32, n)
		if err := rt.Run(func(c *Context) {
			loopRange(c, 0, n, 2, func(c *Context, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
				runtime.Gosched()
			})
		}); err != nil {
			t.Fatal(err)
		}
		checkExactlyOnce(t, counts)
		if got := rt.affinityQueuedTotal(); got != 0 {
			t.Fatalf("affinity mailboxes hold %d tasks after Run returned", got)
		}
		if g := rt.affinityQueued.Load(); g != 0 {
			t.Fatalf("affinityQueued gauge = %d after Run returned", g)
		}
		if rt.Stats().AffinityReinjected >= 1 {
			return
		}
	}
	t.Fatalf("no affinity re-injection in 20 wide-loop runs: %+v", rt.Stats())
}

// TestDomainFaultedExactlyOnce: the fuzzer's domain property as a pinned
// unit test — under a seeded fault plan (which can veto escalations and
// affinity re-injections), a domain-partitioned loop still runs every
// iteration exactly once with no invariant violations.
func TestDomainFaultedExactlyOnce(t *testing.T) {
	opts, log := sanOpts(schedsan.RandomPlan(7))
	rt := New(WithWorkers(4), WithStealDomains(2), WithStealSeed(7), WithSanitize(opts))
	const n = 2000
	counts := make([]int32, n)
	var sum atomic.Int64
	if err := rt.Run(func(c *Context) {
		loopRange(c, 0, n, 3, func(c *Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
				sum.Add(int64(i))
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown() // post-drain checks include the affinity mailboxes
	checkExactlyOnce(t, counts)
	if want := int64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("iteration sum %d, want %d", sum.Load(), want)
	}
	log.empty(t)
}

// TestDomainMetricsKeys: the locality counters surface through Metrics with
// the documented names and consistent values.
func TestDomainMetricsKeys(t *testing.T) {
	rt := New(WithWorkers(4), WithStealDomains(2))
	defer rt.Shutdown()
	var out int64
	if err := rt.Run(func(c *Context) { fibYield(c, 14, &out) }); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m["steal_domains"] != 2 {
		t.Fatalf("steal_domains = %d, want 2", m["steal_domains"])
	}
	for _, k := range []string{"local_steals", "remote_steals", "domain_escalations", "affinity_reinjected"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("Metrics missing %q", k)
		}
	}
	if m["local_steals"]+m["remote_steals"] != m["steals"] {
		t.Fatalf("local %d + remote %d != steals %d", m["local_steals"], m["remote_steals"], m["steals"])
	}
	if _, ok := m["worker.0.local_steals"]; !ok {
		t.Fatal("Metrics missing worker.0.local_steals")
	}
}
