package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSubmitMatchesRun is the redesign's equivalence property: Submit with
// default options followed by Wait is bit-identical to the legacy entry
// points — same computed result, same reducer fold order, same per-run Stats
// for the schedule-independent counters, across worker counts and steal
// seeds.
func TestSubmitMatchesRun(t *testing.T) {
	program := func(c *Context, key *fakeKey, out *int64) {
		appendView(c, key, "a")
		c.Spawn(func(c *Context) { appendView(c, key, "b") })
		appendView(c, key, "c")
		var f int64
		fib(c, 12, &f)
		c.Sync()
		appendView(c, key, "d")
		*out = f
	}
	for _, p := range []int{1, 2, 8} {
		for seed := int64(0); seed < 5; seed++ {
			// Legacy path.
			rt1 := New(WithWorkers(p), WithStealSeed(seed))
			key1 := &fakeKey{}
			var got1 int64
			st1, err1 := rt1.RunWithStats(func(c *Context) { program(c, key1, &got1) })
			rt1.Shutdown()

			// Submit path, default options.
			rt2 := New(WithWorkers(p), WithStealSeed(seed))
			key2 := &fakeKey{}
			var got2 int64
			tk, err := rt2.Submit(context.Background(),
				func(c *Context) { program(c, key2, &got2) }, WithStats())
			if err != nil {
				t.Fatalf("P=%d seed=%d: Submit: %v", p, seed, err)
			}
			err2 := tk.Wait()
			st2 := tk.Stats()
			rt2.Shutdown()

			if err1 != nil || err2 != nil {
				t.Fatalf("P=%d seed=%d: errs %v vs %v", p, seed, err1, err2)
			}
			if got1 != got2 {
				t.Fatalf("P=%d seed=%d: results %d vs %d", p, seed, got1, got2)
			}
			f1, f2 := key1.final.Load(), key2.final.Load()
			if f1 == nil || f2 == nil || f1.s != f2.s {
				t.Fatalf("P=%d seed=%d: fold order %v vs %v", p, seed, f1, f2)
			}
			// Steals and max-gauges are schedule-dependent; these are not.
			if st1.Spawns != st2.Spawns || st1.TasksRun != st2.TasksRun || st1.TasksSkipped != st2.TasksSkipped {
				t.Fatalf("P=%d seed=%d: stats diverge: Run %+v vs Submit %+v", p, seed, st1, st2)
			}
		}
	}
}

// TestSubmitSentinels: Submit reports submission-time failures itself with
// the same sentinels the legacy entry points used, and run-time failures
// through the Ticket.
func TestSubmitSentinels(t *testing.T) {
	t.Run("pre-canceled context", func(t *testing.T) {
		rt := New(WithWorkers(2))
		defer rt.Shutdown()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := rt.Submit(ctx, func(*Context) {}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit(canceled ctx) = %v, want ErrCanceled", err)
		}
	})
	t.Run("expired deadline", func(t *testing.T) {
		rt := New(WithWorkers(2))
		defer rt.Shutdown()
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := rt.Submit(ctx, func(*Context) {}); !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Submit(expired ctx) = %v, want ErrDeadlineExceeded", err)
		}
	})
	t.Run("cancel in flight", func(t *testing.T) {
		rt := New(WithWorkers(2))
		defer rt.Shutdown()
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		tk, err := rt.Submit(ctx, func(c *Context) {
			close(started)
			for !c.Cancelled() {
				time.Sleep(time.Millisecond)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		<-started
		cancel()
		if err := tk.Wait(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("Wait after cancel = %v, want ErrCanceled", err)
		}
	})
	t.Run("time budget", func(t *testing.T) {
		rt := New(WithWorkers(2))
		defer rt.Shutdown()
		tk, err := rt.Submit(context.Background(), func(c *Context) {
			for !c.Cancelled() {
				time.Sleep(time.Millisecond)
			}
		}, WithTimeBudget(20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("Wait after time budget = %v, want ErrDeadlineExceeded", err)
		}
	})
	t.Run("submit after shutdown", func(t *testing.T) {
		rt := New(WithWorkers(2))
		rt.Shutdown()
		if _, err := rt.Submit(context.Background(), func(*Context) {}); !errors.Is(err, ErrShutdown) {
			t.Fatalf("Submit after Shutdown = %v, want ErrShutdown", err)
		}
	})
	t.Run("shutdown drain abandons in-flight", func(t *testing.T) {
		rt := New(WithWorkers(2))
		started := make(chan struct{})
		var once sync.Once
		tk, err := rt.Submit(context.Background(), func(c *Context) {
			once.Do(func() { close(started) })
			for !c.Cancelled() {
				time.Sleep(time.Millisecond)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		<-started
		if clean := rt.ShutdownDrain(0); clean {
			t.Fatal("ShutdownDrain(0) reported clean with a run in flight")
		}
		if err := tk.Wait(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("Wait after ShutdownDrain = %v, want ErrShutdown", err)
		}
	})
}

// TestSubmitSerialElision: under WithSerialElision, Submit completes the run
// inline and the returned Ticket is already settled.
func TestSubmitSerialElision(t *testing.T) {
	rt := New(WithSerialElision())
	var got int64
	tk, err := rt.Submit(context.Background(), func(c *Context) { fib(c, 15, &got) }, WithStats())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("serial-elision Ticket not settled at Submit return")
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := fibSerial(15); got != want {
		t.Fatalf("fib(15) = %d, want %d", got, want)
	}
	if st := tk.Stats(); st.Spawns == 0 {
		t.Fatalf("serial-elision Stats.Spawns = 0, want > 0: %+v", st)
	}
	if lat := tk.QueueLatency(); lat != 0 {
		t.Fatalf("serial-elision QueueLatency = %v, want 0", lat)
	}
}

// TestQueueLatencySerialElision pins the QueueLatency contract from its doc:
// serial elision has no injection lane, so the latency is exactly 0 — before
// and after Wait — while a parallel submission reports a non-negative wait
// once picked up. Also pins the clock-anomaly clamp: pickedNs earlier than
// enqNs must report 0, never a negative duration.
func TestQueueLatencySerialElision(t *testing.T) {
	srt := New(WithSerialElision())
	tk, err := srt.Submit(context.Background(), func(c *Context) {
		c.Spawn(func(*Context) {})
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat := tk.QueueLatency(); lat != 0 {
		t.Fatalf("serial-elision QueueLatency = %v, want exactly 0", lat)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if lat := tk.QueueLatency(); lat != 0 {
		t.Fatalf("serial-elision QueueLatency after Wait = %v, want exactly 0", lat)
	}

	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	ptk, err := rt.Submit(context.Background(), func(*Context) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ptk.Wait(); err != nil {
		t.Fatal(err)
	}
	if lat := ptk.QueueLatency(); lat < 0 {
		t.Fatalf("parallel QueueLatency = %v, want >= 0", lat)
	}

	// Clock anomaly: pickup timestamped before enqueue must clamp to 0.
	rs := &runState{enqNs: 100, pickedNs: 50}
	if lat := rs.queueLatency(); lat != 0 {
		t.Fatalf("queueLatency with pickedNs < enqNs = %v, want 0", lat)
	}
}

// TestTicketAccessors: identity fields round-trip from the submission
// options, and Err is non-blocking.
func TestTicketAccessors(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	gate := make(chan struct{})
	tk, err := rt.Submit(context.Background(), func(*Context) { <-gate },
		WithTenant("acme"), WithQoS(QoSInteractive), WithPriority(3))
	if err != nil {
		t.Fatal(err)
	}
	if tk.Tenant() != "acme" || tk.Class() != QoSInteractive {
		t.Fatalf("Tenant/Class = %q/%v", tk.Tenant(), tk.Class())
	}
	if tk.ID() == 0 {
		t.Fatal("ID = 0")
	}
	if err := tk.Err(); err != nil {
		t.Fatalf("Err while in flight = %v, want nil", err)
	}
	close(gate)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Err(); err != nil {
		t.Fatalf("Err after clean finish = %v", err)
	}
}

// TestAdmissionGlobalLimits: runtime-wide MaxQueued/MaxActive/MaxMemory
// reject with ErrAdmission; capacity frees as runs finish.
func TestAdmissionGlobalLimits(t *testing.T) {
	t.Run("max queued", func(t *testing.T) {
		rt := New(WithWorkers(1), WithAdmission(AdmissionConfig{MaxQueued: 2}))
		defer rt.Shutdown()
		gate := make(chan struct{})
		blocker, err := rt.Submit(context.Background(), func(*Context) { <-gate })
		if err != nil {
			t.Fatal(err)
		}
		// The blocker was picked up; two more fill the queue.
		waitPicked(t, rt, blocker)
		var tks []*Ticket
		for i := 0; i < 2; i++ {
			tk, err := rt.Submit(context.Background(), func(*Context) {})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			tks = append(tks, tk)
		}
		if _, err := rt.Submit(context.Background(), func(*Context) {}); !errors.Is(err, ErrAdmission) {
			t.Fatalf("over-queue Submit = %v, want ErrAdmission", err)
		}
		close(gate)
		for _, tk := range append(tks, blocker) {
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		// Capacity is back.
		tk, err := rt.Submit(context.Background(), func(*Context) {})
		if err != nil {
			t.Fatalf("Submit after drain: %v", err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("max memory", func(t *testing.T) {
		rt := New(WithWorkers(1), WithAdmission(AdmissionConfig{MaxMemory: 1 << 20}))
		defer rt.Shutdown()
		gate := make(chan struct{})
		tk, err := rt.Submit(context.Background(), func(*Context) { <-gate }, WithMemoryBudget(1<<19))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Submit(context.Background(), func(*Context) {}, WithMemoryBudget(1<<20)); !errors.Is(err, ErrAdmission) {
			t.Fatalf("over-memory Submit = %v, want ErrAdmission", err)
		}
		close(gate)
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTenantQuota: per-tenant quotas reject one tenant with ErrQuota while
// other tenants keep being admitted.
func TestTenantQuota(t *testing.T) {
	rt := New(WithWorkers(1), WithAdmission(AdmissionConfig{
		Tenants: map[string]Quota{"free": {MaxActive: 1}},
	}))
	defer rt.Shutdown()
	gate := make(chan struct{})
	free1, err := rt.Submit(context.Background(), func(*Context) { <-gate }, WithTenant("free"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(context.Background(), func(*Context) {}, WithTenant("free")); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota Submit = %v, want ErrQuota", err)
	}
	pro, err := rt.Submit(context.Background(), func(*Context) {}, WithTenant("pro"))
	if err != nil {
		t.Fatalf("pro tenant rejected alongside free's quota: %v", err)
	}
	close(gate)
	if err := free1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := pro.Wait(); err != nil {
		t.Fatal(err)
	}
	// free's slot is back.
	tk, err := rt.Submit(context.Background(), func(*Context) {}, WithTenant("free"))
	if err != nil {
		t.Fatalf("free tenant still over quota after drain: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// waitPicked blocks until rs has transitioned queued→running (the worker
// picked its root up), so tests can build exact queue occupancy.
func waitPicked(t *testing.T, rt *Runtime, tk *Ticket) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rt.adm.mu.Lock()
		picked := tk.rs.picked
		rt.adm.mu.Unlock()
		if picked {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatal("root never picked up")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLoadReport: the backpressure snapshot tracks queued/running/admission
// outcomes and per-tenant load, and drains back to zero.
func TestLoadReport(t *testing.T) {
	rt := New(WithWorkers(1), WithAdmission(AdmissionConfig{
		Tenants: map[string]Quota{"free": {MaxQueued: 1}},
	}))
	defer rt.Shutdown()
	gate := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(*Context) { <-gate }, WithTenant("pro"), WithQoS(QoSInteractive))
	if err != nil {
		t.Fatal(err)
	}
	waitPicked(t, rt, blocker)
	queued, err := rt.Submit(context.Background(), func(*Context) {}, WithTenant("free"), WithQoS(QoSBestEffort), WithMemoryBudget(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(context.Background(), func(*Context) {}, WithTenant("free")); !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}

	r := rt.LoadReport()
	if r.Workers != 1 {
		t.Fatalf("Workers = %d", r.Workers)
	}
	if r.Running != 1 || r.Queued != 1 {
		t.Fatalf("Running/Queued = %d/%d, want 1/1", r.Running, r.Queued)
	}
	if n := r.QueuedByClass["best-effort"]; n != 1 {
		t.Fatalf("QueuedByClass[best-effort] = %d, want 1", n)
	}
	if r.Admitted != 2 || r.RejectedQuota != 1 || r.RejectedLoad != 0 {
		t.Fatalf("Admitted/RejectedQuota/RejectedLoad = %d/%d/%d", r.Admitted, r.RejectedQuota, r.RejectedLoad)
	}
	if len(r.Tenants) != 2 || r.Tenants[0].Tenant != "free" || r.Tenants[1].Tenant != "pro" {
		t.Fatalf("Tenants = %+v, want [free pro] sorted", r.Tenants)
	}
	free := r.Tenants[0]
	if free.Queued != 1 || free.Memory != 512 || free.Rejected != 1 {
		t.Fatalf("free tenant load = %+v", free)
	}

	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		r = rt.LoadReport()
		if r.Queued == 0 && r.Running == 0 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("load never drained: %+v", r)
		}
		time.Sleep(time.Millisecond)
	}
	for _, ts := range r.Tenants {
		if ts.Queued != 0 || ts.Running != 0 || ts.Memory != 0 {
			t.Fatalf("tenant %q load not released: %+v", ts.Tenant, ts)
		}
	}
}

// TestSubmitFireAndForget: tickets that are never awaited still release
// their admission reservations — release is owned by the finishing worker,
// not by Wait.
func TestSubmitFireAndForget(t *testing.T) {
	rt := New(WithWorkers(2), WithAdmission(AdmissionConfig{MaxActive: 4}))
	defer rt.Shutdown()
	for i := 0; i < 64; i++ {
		tk, err := rt.Submit(context.Background(), func(*Context) {})
		if err != nil {
			// Transient capacity rejections are fine — they must clear.
			if !errors.Is(err, ErrAdmission) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		_ = tk // deliberately not awaited
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := rt.LoadReport()
		if r.Queued == 0 && r.Running == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("fire-and-forget runs never released: %+v", r)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitConcurrent: many goroutines submitting across classes and
// tenants at once; every ticket completes exactly once with a correct
// result. Primarily a -race exercise of the submission path.
func TestSubmitConcurrent(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const G, per = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, G*per)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var got int64
				tk, err := rt.Submit(context.Background(),
					func(c *Context) { fib(c, 10, &got) },
					WithQoS(QoSClass(i%numQoS)), WithTenant(fmt.Sprintf("t%d", g%3)), WithPriority(i%4))
				if err != nil {
					errs <- err
					continue
				}
				if err := tk.Wait(); err != nil {
					errs <- err
				} else if got != fibSerial(10) {
					errs <- fmt.Errorf("fib(10) = %d", got)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
