package sched

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"cilkgo/internal/trace"
)

// spawnCount returns the number of Spawn calls fib(n) performs: one per
// call with n >= 2.
func spawnCount(n int) int64 {
	if n < 2 {
		return 0
	}
	return 1 + spawnCount(n-1) + spawnCount(n-2)
}

func TestTracedRunEventStream(t *testing.T) {
	rt := New(WithWorkers(4), WithTracing())
	defer rt.Shutdown()
	tr := rt.Tracer()
	if tr == nil {
		t.Fatal("Tracing option did not install a tracer")
	}
	tr.Start()
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 16, &got) }); err != nil {
		t.Fatal(err)
	}
	snap := tr.Stop()
	if got != fibSerial(16) {
		t.Fatalf("traced fib(16) = %d, want %d", got, fibSerial(16))
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("trace has %d worker timelines, want 4", len(snap.Workers))
	}
	if snap.TotalDropped() != 0 {
		t.Fatalf("ring wrapped (%d dropped) — capacity too small for fib(16)", snap.TotalDropped())
	}

	s := rt.Stats()
	var taskStarts, taskEnds, spawns, steals, attempts int64
	for wid, events := range snap.Workers {
		depth := 0
		last := int64(-1)
		for _, ev := range events {
			if ev.When < last {
				t.Fatalf("worker %d: timestamps regress (%d after %d)", wid, ev.When, last)
			}
			last = ev.When
			switch ev.Kind {
			case trace.KindTaskStart:
				taskStarts++
				depth++
			case trace.KindTaskEnd:
				taskEnds++
				depth--
				if depth < 0 {
					t.Fatalf("worker %d: task-end without task-start", wid)
				}
			case trace.KindSpawn:
				spawns++
			case trace.KindStealSuccess:
				steals++
				if int(ev.Arg) == wid || ev.Arg < 0 || int(ev.Arg) >= 4 {
					t.Fatalf("worker %d stole from invalid victim %d", wid, ev.Arg)
				}
			case trace.KindStealAttempt:
				attempts++
				if int(ev.Arg) == wid {
					t.Fatalf("worker %d probed itself", wid)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("worker %d: %d tasks still open after Run returned", wid, depth)
		}
	}
	if taskStarts != taskEnds {
		t.Errorf("task starts %d != ends %d", taskStarts, taskEnds)
	}
	// Every spawned task plus the injected root ran under the trace.
	if want := s.TasksRun + 1; taskStarts != want {
		t.Errorf("trace has %d task-starts, stats say %d", taskStarts, want)
	}
	if spawns != s.Spawns {
		t.Errorf("trace has %d spawn events, stats say %d", spawns, s.Spawns)
	}
	if steals != s.Steals {
		t.Errorf("trace has %d steal events, stats say %d", steals, s.Steals)
	}
	// Workers also probe outside the Start/Stop window (before the run is
	// injected, after it drains), so the trace can only bound the stat.
	if attempts > s.StealAttempts {
		t.Errorf("trace has %d steal-attempt events, stats say only %d", attempts, s.StealAttempts)
	}
	if steals > attempts {
		t.Errorf("trace has %d steal successes but only %d attempts", steals, attempts)
	}

	// The derived profile agrees with the raw counts.
	p := trace.BuildProfile(snap, 20)
	var pTasks int64
	for _, w := range p.Workers {
		pTasks += w.Tasks
	}
	if pTasks != taskStarts {
		t.Errorf("profile counts %d tasks, trace has %d", pTasks, taskStarts)
	}
	if p.MaxLiveFrames < 1 {
		t.Errorf("live-frame high water = %d, want >= 1", p.MaxLiveFrames)
	}

	// And the Chrome export of a real run is valid JSON.
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, snap); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if _, ok := decoded["traceEvents"]; !ok {
		t.Fatal("chrome export lacks traceEvents")
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	rt := New(WithWorkers(2), WithTracing())
	defer rt.Shutdown()
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 10, &got) }); err != nil {
		t.Fatal(err)
	}
	snap := rt.Tracer().Stop()
	if snap.Events() != 0 {
		t.Fatalf("tracer recorded %d events without Start", snap.Events())
	}
}

func TestNoTracerWithoutOption(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	if rt.Tracer() != nil {
		t.Fatal("runtime has a tracer without the Tracing option")
	}
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 10, &got) }); err != nil {
		t.Fatal(err)
	}
}

func TestTracingRequiresParallel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithSerialElision(), WithTracing()) did not panic")
		}
	}()
	New(WithSerialElision(), WithTracing())
}

func TestTraceRunIDsDistinguishConcurrentRuns(t *testing.T) {
	rt := New(WithWorkers(4), WithTracing())
	defer rt.Shutdown()
	tr := rt.Tracer()
	tr.Start()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got int64
			if err := rt.Run(func(c *Context) { fib(c, 12, &got) }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	snap := tr.Stop()
	runs := map[int64]bool{}
	for _, events := range snap.Workers {
		for _, ev := range events {
			if ev.Kind == trace.KindTaskStart {
				runs[ev.Run] = true
			}
		}
	}
	if len(runs) != 3 {
		t.Fatalf("trace task-start events carry %d distinct run ids, want 3 (%v)", len(runs), runs)
	}
}

func TestRunWithStatsExactCounts(t *testing.T) {
	const n = 14
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	var got int64
	s, err := rt.RunWithStats(func(c *Context) { fib(c, n, &got) })
	if err != nil {
		t.Fatal(err)
	}
	want := spawnCount(n)
	if s.Spawns != want {
		t.Errorf("per-run Spawns = %d, want %d", s.Spawns, want)
	}
	if s.TasksRun != want {
		t.Errorf("per-run TasksRun = %d, want %d (== Spawns)", s.TasksRun, want)
	}
	if s.Steals > s.TasksRun {
		t.Errorf("per-run Steals = %d > TasksRun = %d", s.Steals, s.TasksRun)
	}
	if s.MaxDepth != n-1 {
		t.Errorf("per-run MaxDepth = %d, want %d", s.MaxDepth, n-1)
	}
	if s.MaxLiveFrames < 1 {
		t.Errorf("per-run MaxLiveFrames = %d, want >= 1", s.MaxLiveFrames)
	}
}

// TestRunWithStatsConcurrentRunsToldApart is the point of per-run
// accounting: two different-sized computations share the workers, yet each
// snapshot reports exactly its own spawns.
func TestRunWithStatsConcurrentRunsToldApart(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	sizes := []int{12, 16}
	stats := make([]Stats, len(sizes))
	var wg sync.WaitGroup
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			var got int64
			s, err := rt.RunWithStats(func(c *Context) { fib(c, n, &got) })
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = s
		}(i, n)
	}
	wg.Wait()
	for i, n := range sizes {
		if want := spawnCount(n); stats[i].Spawns != want {
			t.Errorf("run fib(%d): Spawns = %d, want %d (leaked counts from the concurrent run?)",
				n, stats[i].Spawns, want)
		}
		if stats[i].TasksRun != stats[i].Spawns {
			t.Errorf("run fib(%d): TasksRun %d != Spawns %d", n, stats[i].TasksRun, stats[i].Spawns)
		}
	}
}

func TestRunWithStatsSerialElision(t *testing.T) {
	const n = 12
	rt := New(WithSerialElision())
	var got int64
	s, err := rt.RunWithStats(func(c *Context) { fib(c, n, &got) })
	if err != nil {
		t.Fatal(err)
	}
	if want := spawnCount(n); s.Spawns != want || s.TasksRun != want {
		t.Errorf("serial per-run Spawns/TasksRun = %d/%d, want %d", s.Spawns, s.TasksRun, want)
	}
	if s.MaxDepth != n-1 {
		t.Errorf("serial per-run MaxDepth = %d, want %d", s.MaxDepth, n-1)
	}
}

// TestStatsInvariants pins the documented global invariants after Run
// returns: every spawned task ran, and steals never exceed attempts.
func TestStatsInvariants(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	for i := 0; i < 3; i++ {
		var got int64
		if err := rt.Run(func(c *Context) { fib(c, 15, &got) }); err != nil {
			t.Fatal(err)
		}
		s := rt.Stats()
		if s.TasksRun != s.Spawns {
			t.Fatalf("after Run: TasksRun = %d != Spawns = %d", s.TasksRun, s.Spawns)
		}
		if s.Steals > s.StealAttempts {
			t.Fatalf("Steals = %d > StealAttempts = %d", s.Steals, s.StealAttempts)
		}
	}
}

func TestStatsSub(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &got) }); err != nil {
		t.Fatal(err)
	}
	before := rt.Stats()
	if err := rt.Run(func(c *Context) { fib(c, 12, &got) }); err != nil {
		t.Fatal(err)
	}
	d := rt.Stats().Sub(before)
	if want := spawnCount(12); d.Spawns != want {
		t.Errorf("delta Spawns = %d, want %d", d.Spawns, want)
	}
	if d.TasksRun != d.Spawns {
		t.Errorf("delta TasksRun = %d != delta Spawns = %d", d.TasksRun, d.Spawns)
	}
	if d.Steals > d.StealAttempts {
		t.Errorf("delta Steals %d > delta StealAttempts %d", d.Steals, d.StealAttempts)
	}
	// Max gauges are watermarks: Sub keeps the newer snapshot's values.
	if d.MaxDepth != rt.Stats().MaxDepth {
		t.Errorf("Sub changed MaxDepth: %d", d.MaxDepth)
	}
}

// TestMaxStoreNeverRegresses hammers one gauge from many goroutines; the
// CAS loop must end at the global maximum.
func TestMaxStoreNeverRegresses(t *testing.T) {
	var m atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := int64(0); v < 10000; v++ {
				maxStore(&m, v*int64(g+1)%9973)
			}
		}(g)
	}
	wg.Wait()
	if got := m.Load(); got != 9972 {
		t.Fatalf("maxStore converged to %d, want 9972", got)
	}
}

func TestMetrics(t *testing.T) {
	rt := New(WithWorkers(2), WithTracing())
	defer rt.Shutdown()
	var got int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &got) }); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	s := rt.Stats()
	if m["workers"] != 2 {
		t.Errorf("metrics workers = %d, want 2", m["workers"])
	}
	if m["spawns"] != s.Spawns || m["tasks_run"] != s.TasksRun {
		t.Errorf("metrics spawns/tasks_run = %d/%d, stats say %d/%d",
			m["spawns"], m["tasks_run"], s.Spawns, s.TasksRun)
	}
	if m["runs_submitted"] != 1 {
		t.Errorf("runs_submitted = %d, want 1", m["runs_submitted"])
	}
	if m["trace_enabled"] != 0 {
		t.Errorf("trace_enabled = %d, want 0", m["trace_enabled"])
	}
	var perWorker int64
	for i := 0; i < 2; i++ {
		key := "worker." + string(rune('0'+i)) + ".spawns"
		v, ok := m[key]
		if !ok {
			t.Fatalf("metrics missing %q", key)
		}
		perWorker += v
	}
	if perWorker != s.Spawns {
		t.Errorf("per-worker spawns sum to %d, aggregate is %d", perWorker, s.Spawns)
	}
}
