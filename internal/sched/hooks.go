package sched

// Hooks receives the parallel-control events of a serial-elision execution,
// in depth-first serial order on a single goroutine. This is the event
// stream Cilkscreen consumes (§4): the SP-bags algorithm maintains
// series-parallel relationships from exactly these events, and the Cilkview
// profiler derives strand boundaries from them.
//
// Event order for `x(); cilk_spawn f(); y(); cilk_sync;` is:
//
//	[x runs] Spawn FrameStart [f runs] FrameEnd [y runs] Sync
//
// The root function is bracketed by FrameStart/FrameEnd as well.
type Hooks interface {
	// Spawn fires in the parent immediately before a spawned child begins.
	Spawn()
	// FrameStart fires when a spawned function's body begins.
	FrameStart()
	// FrameEnd fires when a spawned function's body (including its
	// implicit sync) has completed, immediately before control returns to
	// the parent.
	FrameEnd()
	// Sync fires when the current function passes a sync point. The
	// implicit sync before a frame returns fires Sync as well (it precedes
	// the frame's FrameEnd).
	Sync()
	// CallStart fires when a called (not spawned) function's frame begins:
	// Context.Call and the constructs built on it, such as cilk_for.
	CallStart()
	// CallEnd fires when a called frame (including its implicit sync,
	// which fires Sync first) completes.
	CallEnd()
}

// NopHooks is a Hooks implementation that ignores every event; embed it to
// implement only a subset.
type NopHooks struct{}

// Spawn implements Hooks.
func (NopHooks) Spawn() {}

// FrameStart implements Hooks.
func (NopHooks) FrameStart() {}

// FrameEnd implements Hooks.
func (NopHooks) FrameEnd() {}

// Sync implements Hooks.
func (NopHooks) Sync() {}

// CallStart implements Hooks.
func (NopHooks) CallStart() {}

// CallEnd implements Hooks.
func (NopHooks) CallEnd() {}
