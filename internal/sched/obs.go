package sched

// This file is the runtime's online Cilkview layer: work/span accounting
// during *parallel* execution, per-run observation callbacks, and the live
// latency histograms behind /metrics.
//
// The offline Cilkview (internal/cilkview) measures work and span from a
// serial-elision replay with timing hooks — exact, but post-hoc and serial.
// The online path measures the same quantities while the parallel schedule
// runs, using per-strand clocks aggregated at the dag's control boundaries:
//
//   - Work is the sum of all strand-segment durations. Every worker charges
//     the segment it just executed — the code between two parallel-control
//     events — into the run's atomic work accumulator.
//
//   - Span is computed structurally. Each frame tracks its local span (the
//     running span along its own strand, in Context.spanLocal) and the max
//     completed-child span deposited by its children (frame.spanChild). At
//     Spawn the child records the parent's local span as its spawnSpan; at
//     child completion the child deposits spawnSpan + its own total into
//     the parent's spanChild gauge; at Sync the parent folds
//     spanLocal = max(spanLocal, spanChild) — exactly the dag recurrence
//     span(parent) = max(serial path, spawn point + span(child)).
//
//   - Lazy-loop pieces (loop.go) deposit their episode duration against the
//     loop frame keyed at the loop's spawn point, approximating the loop's
//     span as the longest piece episode; the O(log n) split-tree depth is
//     not charged. DESIGN.md §4e quantifies the approximation.
//
// Time spent *waiting* at a sync (syncWait steals and runs other tasks) is
// excluded from both clocks, mirroring the dag model where a sync edge has
// zero weight. Clocks are armed per run, only when the runtime carries a
// RunObserver — a runtime without one pays a single nil check per boundary,
// the same gating discipline as the tracer, the cancel gate, and the
// sanitizer.

import (
	"sync/atomic"
	"time"

	"cilkgo/internal/trace"
)

// RunReport is the terminal record of one observed Run: identity, wall
// times, the per-run Stats snapshot (including online Work and Span), and
// the error the run returned, if any.
type RunReport struct {
	// ID is the Run invocation id, matching trace event attribution.
	ID int64
	// Start and End bracket the run's wall-clock lifetime.
	Start, End time.Time
	// Stats is the run's final per-computation snapshot; Stats.Work and
	// Stats.Span carry the online work/span measurement.
	Stats Stats
	// Err is what the run reported: nil, a cancellation sentinel, or a
	// *PanicError.
	Err error
	// Tenant and Class echo the submission's WithTenant/WithQoS options
	// ("" and QoSBatch for the legacy Run entry points); Queued is how long
	// the root waited in its injection lane before pickup.
	Tenant string
	Class  QoSClass
	Queued time.Duration
}

// RunObserver receives per-run lifecycle callbacks from the runtime. Both
// methods may be called concurrently (runs overlap) and must not block the
// scheduler: RunStart fires on the submitting goroutine before the root is
// injected, RunEnd on the worker completing the run's root, strictly before
// the run's Ticket settles (so a caller returning from Wait finds the run
// reported). internal/obs.Registry is the canonical implementation.
type RunObserver interface {
	RunStart(id int64, start time.Time)
	RunEnd(RunReport)
}

// WithRunObserver installs a run observer and arms the online work/span
// clocks: every Run is timed (strand clocks at spawn/sync/steal boundaries)
// and reported to o at start and end, and the runtime's live latency
// histograms (steal latency, park-to-wake) begin recording. The observed
// overhead is two monotonic clock reads per spawn and per sync; a runtime
// without an observer pays one nil check per boundary.
func WithRunObserver(o RunObserver) Option {
	return func(c *config) { c.observer = o }
}

// RunObserver returns the observer installed by WithRunObserver, or nil.
func (rt *Runtime) RunObserver() RunObserver { return rt.cfg.observer }

// runClock is one run's online work/span accounting. Work accumulates
// concurrently from every worker that executes the run's strands; span is
// written once, by the worker that completes the root frame, strictly
// before the run's done channel closes (which is what publishes it to the
// Run caller).
type runClock struct {
	work atomic.Int64
	span atomic.Int64
}

// obsHist bundles the runtime-wide live latency histograms recorded while
// an observer is installed. Exported snapshots feed the Prometheus
// endpoint.
type obsHist struct {
	// steal is the hunt-to-successful-steal latency: from the worker
	// running dry (hunt start) to a steal landing. The online counterpart
	// of the offline profile's StealLatency histogram.
	steal *trace.LiveHistogram
	// parkWake is the park-to-wake latency: from a worker blocking on the
	// runtime condition variable to its wakeup — the tail every
	// wakeup-path fix in PR 3 was about.
	parkWake *trace.LiveHistogram
}

func newObsHist() *obsHist {
	return &obsHist{
		steal:    trace.NewLiveHistogram(nil),
		parkWake: trace.NewLiveHistogram(nil),
	}
}

// LatencyHistograms returns snapshots of the runtime's live latency
// histograms, keyed by metric name ("steal_latency", "park_to_wake"). The
// map is empty on a runtime without a RunObserver (the histograms record
// only while observation is armed).
func (rt *Runtime) LatencyHistograms() map[string]trace.Histogram {
	m := make(map[string]trace.Histogram, 2)
	if h := rt.obsH; h != nil {
		m["steal_latency"] = h.steal.Snapshot()
		m["park_to_wake"] = h.parkWake.Snapshot()
	}
	return m
}

// nanots returns nanoseconds since the runtime's observation epoch, via the
// monotonic clock.
func (rt *Runtime) nanots() int64 { return int64(time.Since(rt.obsEpoch)) }

// charge closes the strand segment open since c.strandStart: its duration
// joins the run's work and the frame's local span, and a new segment opens.
// Called at every parallel-control boundary of an observed run (Spawn,
// Sync entry, task completion); callers gate on cl != nil.
func (c *Context) charge(cl *runClock) {
	now := c.rt.nanots()
	if d := now - c.strandStart; d > 0 {
		c.spanLocal += d
		cl.work.Add(d)
	}
	c.strandStart = now
}

// foldSpanChildren folds the frame's completed-child span gauge into the
// strand's local span at a sync boundary, and resets the gauge for the next
// sync region. Must run only after the join counter reached zero.
func (c *Context) foldSpanChildren() {
	f := c.frame
	if sc := f.spanChild.Load(); sc > c.spanLocal {
		c.spanLocal = sc
	}
	f.spanChild.Store(0)
}

// depositSpan publishes this frame's completed span to its parent (or, for
// the root, to the run's clock): the frame's spawn-point span plus
// everything accumulated along and under it. The parent gauge keeps the
// CAS-loop maxStore — unlike the sharded stats cells (single-writer
// load+store, see stats.go), spanChild genuinely has concurrent writers:
// siblings completing on different workers deposit into the same parent.
func (c *Context) depositSpan(cl *runClock) {
	f := c.frame
	total := f.spawnSpan + c.spanLocal
	if p := f.parent; p != nil {
		maxStore(&p.spanChild, total)
	} else {
		cl.span.Store(total)
	}
}
