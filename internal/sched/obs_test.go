package sched

import (
	"sync"
	"testing"
	"time"
)

// captureObserver is a minimal RunObserver collecting reports for tests.
type captureObserver struct {
	mu     sync.Mutex
	starts []int64
	reps   []RunReport
}

func (c *captureObserver) RunStart(id int64, start time.Time) {
	c.mu.Lock()
	c.starts = append(c.starts, id)
	c.mu.Unlock()
}

func (c *captureObserver) RunEnd(r RunReport) {
	c.mu.Lock()
	c.reps = append(c.reps, r)
	c.mu.Unlock()
}

func (c *captureObserver) last(t *testing.T) RunReport {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.reps) == 0 {
		t.Fatal("no RunEnd reports")
	}
	return c.reps[len(c.reps)-1]
}

func spinFor(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}

// TestObsWorkSpanSpawn checks the online clocks on a flat spawn fan-out:
// work must cover the strands' spin time, and span — a max over root-to-leaf
// paths — must never exceed work and must cover at least one leaf.
func TestObsWorkSpanSpawn(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(2), WithRunObserver(o))
	defer rt.Shutdown()
	const leaves = 8
	const leafSpin = 2 * time.Millisecond
	err := rt.Run(func(c *Context) {
		for i := 0; i < leaves; i++ {
			c.Spawn(func(c *Context) { spinFor(leafSpin) })
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	r := o.last(t)
	t.Logf("work=%v span=%v spawns=%d steals=%d", r.Stats.Work, r.Stats.Span, r.Stats.Spawns, r.Stats.Steals)
	if r.Stats.Spawns != leaves {
		t.Errorf("Spawns = %d, want %d (observer must imply per-run stats)", r.Stats.Spawns, leaves)
	}
	// Work is the sum of strand durations: at least the spins actually run.
	// Allow scheduling slop downward only via the spin floor itself.
	if min := time.Duration(leaves) * leafSpin * 9 / 10; r.Stats.Work < min {
		t.Errorf("Work = %v, want >= %v", r.Stats.Work, min)
	}
	// Span covers the longest path: at least one leaf's spin...
	if r.Stats.Span < leafSpin*9/10 {
		t.Errorf("Span = %v, want >= ~%v", r.Stats.Span, leafSpin)
	}
	// ...and is structurally bounded by work (every span segment is also a
	// work segment). This must hold on any machine under any schedule.
	if r.Stats.Span > r.Stats.Work {
		t.Errorf("Span %v > Work %v", r.Stats.Span, r.Stats.Work)
	}
}

// TestObsSpanChain checks span on a dependency chain: a unary spawn chain of
// depth n where each frame syncs its child before doing its own spin has no
// parallelism — span must approach work, not the single-strand floor.
func TestObsSpanChain(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(2), WithRunObserver(o))
	defer rt.Shutdown()
	const depth = 6
	const stepSpin = time.Millisecond
	var chain func(c *Context, n int)
	chain = func(c *Context, n int) {
		if n > 0 {
			c.Spawn(func(c *Context) { chain(c, n-1) })
			c.Sync() // serializes: the child completes before the spin below
		}
		spinFor(stepSpin)
	}
	if err := rt.Run(func(c *Context) { chain(c, depth) }); err != nil {
		t.Fatal(err)
	}
	r := o.last(t)
	t.Logf("chain work=%v span=%v", r.Stats.Work, r.Stats.Span)
	want := time.Duration(depth+1) * stepSpin
	if r.Stats.Span < want*8/10 {
		t.Errorf("chain Span = %v, want >= ~%v (the chain is fully serial)", r.Stats.Span, want)
	}
	if r.Stats.Span > r.Stats.Work {
		t.Errorf("Span %v > Work %v", r.Stats.Span, r.Stats.Work)
	}
}

// TestObsCallThreadsStrand checks that Call keeps the caller's strand clock:
// work done inside a Call (and under its spawns) lands in the caller's span
// path exactly as if inlined.
func TestObsCallThreadsStrand(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(2), WithRunObserver(o))
	defer rt.Shutdown()
	const spin = 2 * time.Millisecond
	err := rt.Run(func(c *Context) {
		spinFor(spin)
		c.Call(func(c *Context) { spinFor(spin) })
		spinFor(spin)
	})
	if err != nil {
		t.Fatal(err)
	}
	r := o.last(t)
	t.Logf("call work=%v span=%v", r.Stats.Work, r.Stats.Span)
	if want := 3 * spin; r.Stats.Span < want*8/10 {
		t.Errorf("Span = %v, want >= ~%v (Call is on the calling strand)", r.Stats.Span, want)
	}
}

// TestObsLoopSpan checks the lazy-loop approximation: a loop's span is at
// least its longest episode and at most its work.
func TestObsLoopSpan(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(2), WithRunObserver(o))
	defer rt.Shutdown()
	const iters = 16
	const iterSpin = 500 * time.Microsecond
	err := rt.Run(func(c *Context) {
		c.Call(func(c *Context) {
			c.LoopRange(0, iters, 1, func(c *Context, lo, hi int) {
				for i := lo; i < hi; i++ {
					spinFor(iterSpin)
				}
			})
			c.Sync()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	r := o.last(t)
	t.Logf("loop work=%v span=%v splits=%d", r.Stats.Work, r.Stats.Span, r.Stats.LoopSplits)
	if min := time.Duration(iters) * iterSpin * 9 / 10; r.Stats.Work < min {
		t.Errorf("loop Work = %v, want >= %v", r.Stats.Work, min)
	}
	if r.Stats.Span < iterSpin/2 {
		t.Errorf("loop Span = %v, want >= ~%v", r.Stats.Span, iterSpin)
	}
	if r.Stats.Span > r.Stats.Work {
		t.Errorf("Span %v > Work %v", r.Stats.Span, r.Stats.Work)
	}
}

// TestObsSerialElision checks the observer on a serial-elision runtime: the
// run reports with work == span == its wall duration (T1 = T∞).
func TestObsSerialElision(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithSerialElision(), WithRunObserver(o))
	defer rt.Shutdown()
	const spin = 2 * time.Millisecond
	err := rt.Run(func(c *Context) {
		c.Spawn(func(c *Context) { spinFor(spin) })
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	r := o.last(t)
	if r.Stats.Work != r.Stats.Span {
		t.Errorf("serial elision: Work %v != Span %v", r.Stats.Work, r.Stats.Span)
	}
	if r.Stats.Work < spin {
		t.Errorf("serial elision: Work %v < %v", r.Stats.Work, spin)
	}
}

// TestObsCallbacksPerRun checks that every Run produces exactly one
// RunStart/RunEnd pair with matching ids, including concurrent Runs.
func TestObsCallbacksPerRun(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(2), WithRunObserver(o))
	defer rt.Shutdown()
	const runs = 5
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rt.Run(func(c *Context) {
				c.Spawn(func(c *Context) {})
				c.Sync()
			})
		}()
	}
	wg.Wait()
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.starts) != runs || len(o.reps) != runs {
		t.Fatalf("starts=%d ends=%d, want %d each", len(o.starts), len(o.reps), runs)
	}
	ids := make(map[int64]bool)
	for _, r := range o.reps {
		if ids[r.ID] {
			t.Errorf("duplicate RunEnd for id %d", r.ID)
		}
		ids[r.ID] = true
		if r.End.Before(r.Start) {
			t.Errorf("run %d: End %v before Start %v", r.ID, r.End, r.Start)
		}
	}
}

// TestObsUnobservedRunsZero checks the gating: a runtime without an observer
// reports zero Work/Span and empty latency histograms.
func TestObsUnobservedRunsZero(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	st, err := rt.RunWithStats(func(c *Context) {
		c.Spawn(func(c *Context) { spinFor(time.Millisecond) })
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Work != 0 || st.Span != 0 {
		t.Errorf("unobserved run has Work=%v Span=%v, want zero", st.Work, st.Span)
	}
	if h := rt.LatencyHistograms(); len(h) != 0 {
		t.Errorf("unobserved runtime has latency histograms: %v", h)
	}
}

// TestObsLatencyHistograms checks that an observed runtime records steal and
// park-to-wake latencies once runs force hunting.
func TestObsLatencyHistograms(t *testing.T) {
	o := &captureObserver{}
	rt := New(WithWorkers(4), WithRunObserver(o))
	defer rt.Shutdown()
	// Let the idle workers escalate their hunts all the way to parking, so
	// the root-injection broadcast below completes a park→wake cycle.
	for deadline := time.Now().Add(5 * time.Second); rt.parked.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("workers never parked")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		_ = rt.Run(func(c *Context) {
			for j := 0; j < 16; j++ {
				c.Spawn(func(c *Context) { spinFor(200 * time.Microsecond) })
			}
			c.Sync()
		})
	}
	h := rt.LatencyHistograms()
	if _, ok := h["steal_latency"]; !ok {
		t.Fatalf("missing steal_latency histogram: %v", h)
	}
	if _, ok := h["park_to_wake"]; !ok {
		t.Fatalf("missing park_to_wake histogram: %v", h)
	}
	// Parked workers were woken by the spawn bursts at least once across the
	// runs; the histogram must have recorded those wakeups.
	if h["park_to_wake"].N == 0 {
		t.Error("park_to_wake histogram recorded nothing")
	}
}
