// Package sched implements the Cilk++ work-stealing runtime system (§3 of
// the paper) as a Go library.
//
// A Runtime owns a fixed set of workers, one per processor by default, each
// an OS-thread-locked goroutine with a private work-stealing deque. A
// spawned function's task is pushed onto the bottom of the spawning worker's
// deque; when a worker runs out of work it becomes a thief and steals the
// top (oldest) task from a randomly chosen victim, so all communication and
// synchronization is incurred only when a worker runs out of work (§3.2).
//
// Deviation from Cilk++ (documented in DESIGN.md): Go cannot capture the
// continuation of a running function, so Spawn pushes the child task and the
// parent continues — child stealing, as in TBB and ForkJoinPool — rather
// than Cilk's continuation stealing. The computation dag, the greedy
// scheduling bound T_P ≤ T1/P + O(T∞), and the reducer semantics are
// unaffected; the exact Cilk stack bound is reproduced by the faithful
// continuation-stealing scheduler in internal/sim.
//
// The runtime also supports a serial-elision mode (§1: parallel code
// "retains its serial semantics when run on one processor") in which Spawn
// executes the child immediately as an ordinary call on the caller's
// goroutine, firing instrumentation hooks in depth-first serial order. The
// Cilkscreen race detector (internal/race) and the Cilkview profiler
// (internal/cilkview) run programs in this mode.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cilkgo/internal/deque"
	"cilkgo/internal/schedsan"
	"cilkgo/internal/trace"
)

// config collects the options for a Runtime.
type config struct {
	workers      int
	serial       bool
	hooks        Hooks
	stealSeed    int64
	lockThreads  bool
	trace        bool
	traceOpts    []TraceOption
	sanitize     *schedsan.Options
	observer     RunObserver
	admission    *AdmissionConfig
	legacyInject bool
	// domains is the number of steal domains (see domain.go); 0 and 1 both
	// mean flat — the paper's uniform random stealing.
	domains int
}

// Option configures a Runtime.
type Option func(*config)

// WithWorkers sets the number of workers (default: runtime.GOMAXPROCS(0)),
// mirroring the Cilk++ runtime's one-worker-per-processor default, which
// "the programmer can override" (§3.2).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSerialElision makes the runtime execute the program as its serial
// elision: spawns become ordinary calls on the caller's goroutine, in
// depth-first serial order. Instrumentation hooks fire only in this mode.
func WithSerialElision() Option {
	return func(c *config) { c.serial = true }
}

// WithHooks installs instrumentation hooks. Hooks require WithSerialElision;
// New panics otherwise.
func WithHooks(h Hooks) Option {
	return func(c *config) { c.hooks = h }
}

// WithStealSeed seeds the workers' random victim selection, making
// steal-order reproducible for tests. The default seed is 1.
func WithStealSeed(seed int64) Option {
	return func(c *config) { c.stealSeed = seed }
}

// WithNoThreadLocking disables runtime.LockOSThread on workers. The default
// is to lock, mirroring Cilk++'s allocation of one OS thread per processor.
func WithNoThreadLocking() Option {
	return func(c *config) { c.lockThreads = false }
}

// TraceOption configures the tracer installed by WithTracing (see
// internal/trace, e.g. trace.Capacity).
type TraceOption = trace.Option

// WithTracing equips the runtime with a per-worker event tracer (see
// internal/trace). The tracer starts disabled: until Tracer().Start() is
// called, every instrumentation site costs one atomic load and a branch.
// Tracing observes the parallel schedule and therefore requires a parallel
// runtime; New panics if combined with WithSerialElision (use Hooks there).
func WithTracing(opts ...TraceOption) Option {
	return func(c *config) {
		c.trace = true
		c.traceOpts = opts
	}
}

// Runtime is a Cilk work-stealing scheduler instance. Construct with New,
// submit computations with Submit (or the legacy Run wrappers), and release
// the workers with Shutdown.
type Runtime struct {
	cfg     config
	workers []*worker
	tracer  *trace.Tracer // nil unless the Tracing option was given
	runIDs  atomic.Int64  // Run invocation ids, for trace attribution

	// Robustness-layer counters (see cancel.go and Metrics).
	runsCanceled      atomic.Int64
	panicsQuarantined atomic.Int64

	// Memory-layer counter (see memory.go): runs cancelled with
	// ErrMemoryBudget, counted exactly once per run at release.
	memBudgetCancels atomic.Int64

	// Sanitizer layer (see sanitize.go): nil unless built with WithSanitize.
	// stalls counts the watchdog's no-progress findings (Stats.Stalls).
	san    *sanState
	stalls atomic.Int64

	// Observation layer (see obs.go). obsEpoch anchors the nanots monotonic
	// timestamps the online work/span clocks use; obsH holds the live
	// latency histograms, nil unless a RunObserver is installed.
	obsEpoch time.Time
	obsH     *obsHist

	// parked counts workers blocked on cond in the park phase of their
	// hunt. Producers (Spawn pushes, batch-steal extras) read it to decide
	// whether a wakeup is needed; with no one parked, publishing work costs
	// one atomic load here and nothing else.
	parked atomic.Int32

	// Root-injection path (see inject.go and submit.go): one lane per
	// worker, each a per-QoS-class queue drained by weighted deficit
	// round-robin. injected counts queued roots across all lanes — the
	// one-atomic-load fast path an idle worker's sweep checks before
	// touching any lane lock — and queuedByClass breaks it down for
	// LoadReport. laneRR round-robins unlabeled submissions across lanes.
	// adm is the admission-control state (always present; limits armed only
	// by WithAdmission).
	lanes         []*injectLane
	laneRR        atomic.Uint64
	injected      atomic.Int64
	queuedByClass [numQoS]atomic.Int64
	adm           *admission

	// Locality layer (see domain.go): workers partitioned into steal
	// domains, one affinity mailbox per domain for owner-affinity
	// re-injection of stolen ranges (nil with one domain), and the
	// affinityQueued gauge idle sweeps and the parker's re-check consult —
	// the mailbox analogue of rt.injected.
	domains        [][]*worker
	affinity       []*affinityLane
	affinityQueued atomic.Int64

	mu          sync.Mutex
	cond        *sync.Cond
	active      map[*runState]struct{}
	activeRoots int
	closed      bool
	wg          sync.WaitGroup
}

// New creates a runtime and starts its workers. In serial-elision mode no
// worker goroutines are started; Run executes on the caller's goroutine.
func New(opts ...Option) *Runtime {
	cfg := config{
		workers:     runtime.GOMAXPROCS(0),
		stealSeed:   1,
		lockThreads: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		panic(fmt.Sprintf("sched: WithWorkers(%d) out of range", cfg.workers))
	}
	if cfg.hooks != nil && !cfg.serial {
		panic("sched: WithHooks requires SerialElision")
	}
	if cfg.trace && cfg.serial {
		panic("sched: Tracing requires a parallel runtime (hooks cover the serial elision)")
	}
	if cfg.sanitize != nil && cfg.serial {
		panic("sched: WithSanitize requires a parallel runtime (there is no schedule to sanitize serially)")
	}
	if cfg.serial {
		cfg.workers = 1
	}
	rt := &Runtime{cfg: cfg, active: make(map[*runState]struct{}), obsEpoch: time.Now()}
	rt.cond = sync.NewCond(&rt.mu)
	rt.adm = newAdmission(cfg.admission)
	if cfg.serial {
		return rt
	}
	rt.lanes = make([]*injectLane, cfg.workers)
	for i := range rt.lanes {
		rt.lanes[i] = &injectLane{}
	}
	if cfg.observer != nil {
		rt.obsH = newObsHist()
	}
	if cfg.trace {
		rt.tracer = trace.New(cfg.workers, cfg.traceOpts...)
	}
	rt.workers = make([]*worker, cfg.workers)
	for i := range rt.workers {
		rt.workers[i] = &worker{
			rt:        rt,
			id:        i,
			deque:     deque.New[task](),
			rng:       rand.New(rand.NewSource(cfg.stealSeed + int64(i)*0x9e3779b9)),
			frameFree: make([]*frame, 0, frameLocalCap),
		}
		if rt.tracer != nil {
			rt.workers[i].rec = rt.tracer.Recorder(i)
		}
	}
	rt.setupDomains()
	if cfg.sanitize != nil {
		// Wire lanes and deque gates before any worker runs, then start the
		// watchdog alongside them.
		rt.san = newSanState(rt, *cfg.sanitize)
	}
	rt.wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go w.loop()
	}
	if rt.san != nil {
		rt.san.start(rt)
	}
	return rt
}

// Workers reports the number of workers.
func (rt *Runtime) Workers() int { return rt.cfg.workers }

// Serial reports whether the runtime runs serial elisions.
func (rt *Runtime) Serial() bool { return rt.cfg.serial }

// Tracer returns the event tracer installed by the Tracing option, or nil.
// Typical use: rt.Tracer().Start(), run computations, then
// rt.Tracer().Stop() for the drained timelines.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// Run executes fn as the root of a fork-join computation and blocks until
// the computation — including everything it spawned — completes. A panic
// anywhere in the computation is quarantined and returned as a *PanicError
// after all outstanding work has drained (the rest of the run is abandoned
// cooperatively; the runtime stays healthy for subsequent Runs). Run may be
// called concurrently from several goroutines; the computations share the
// workers (§3.2's performance composability). Run is
// RunCtx(context.Background(), fn); use RunCtx for cancellation and
// deadlines.
//
// Deprecated: use Submit, which subsumes all four Run entry points —
// Run(fn) is Submit(context.Background(), fn) followed by Ticket.Wait.
func (rt *Runtime) Run(fn func(*Context)) error {
	_, err := rt.run(context.Background(), fn, false)
	return err
}

// RunWithStats is Run with per-computation accounting: the returned Stats
// covers exactly this computation — its spawns, tasks, steals of its tasks,
// its live-frame high-water mark and deepest spawn — so concurrent Run
// calls sharing the workers can be told apart (§3.2's performance
// composability, now observable). StealAttempts is zero in the result:
// failed probes cannot be attributed to any one computation. The extra
// accounting costs a few per-run atomic increments; plain Run pays only a
// nil check per site.
//
// Deprecated: use Submit with WithStats — RunWithStats(fn) is
// Submit(context.Background(), fn, WithStats()) followed by Ticket.Wait and
// Ticket.Stats.
func (rt *Runtime) RunWithStats(fn func(*Context)) (Stats, error) {
	return rt.run(context.Background(), fn, true)
}

// run is the shared body of the four legacy entry points: Submit with
// default options, awaited inline.
func (rt *Runtime) run(ctx context.Context, fn func(*Context), track bool) (Stats, error) {
	tk, err := rt.submit(ctx, fn, submitCfg{qos: QoSBatch, track: track})
	if err != nil {
		return Stats{}, err
	}
	err = tk.Wait()
	return tk.Stats(), err
}

// runSerial executes fn's serial elision on the caller's goroutine.
func (rt *Runtime) runSerial(fn func(*Context), rs *runState) (err error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrShutdown
	}
	rt.active[rs] = struct{}{}
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.active, rs)
		rt.mu.Unlock()
	}()
	root := &frame{run: rs}
	ctx := &Context{rt: rt, frame: root}
	defer func() {
		if r := recover(); r != nil {
			rs.poison(r)
		}
		if e := rs.err(); e != nil {
			err = e
		}
	}()
	if s := rs.stats; s != nil {
		// Publish the strand-local counters spawnSerial tracked (see
		// runState) into cell 0 exactly once, on every exit path — the
		// deferred publish runs before submit's snapshot. The +1 on the
		// live-frame watermark is the root frame itself, so a spawn-free
		// run still reports 1.
		defer func() {
			c0 := &s.cells[0]
			c0.spawns.Store(rs.serialSpawns)
			c0.tasksRun.Store(rs.serialSpawns)
			c0.maxDepth.Store(rs.serialMaxDepth)
			c0.maxLiveFrames.Store(rs.serialMaxDepth + 1)
		}()
	}
	if h := rt.cfg.hooks; h != nil {
		h.FrameStart()
		defer h.FrameEnd()
	}
	fn(ctx)
	ctx.Sync()
	finalizeViews(ctx.views)
	return nil
}

// finalizeViews delivers the computation's folded views to hyperobjects
// that want them.
func finalizeViews(views viewMap) {
	for _, e := range views {
		if fin, ok := e.key.(Finalizer); ok {
			fin.Finalize(e.v)
		}
	}
}

// Shutdown stops the workers after letting in-flight computations run to
// completion (an unbounded drain). New Runs submitted after Shutdown return
// ErrShutdown. For a bounded drain that cancels stragglers, use
// ShutdownDrain. Shutdown is idempotent.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
	rt.wg.Wait()
	rt.san.shut()
	rt.sanVerifyDrained()
}

// Panic is one quarantined panic: the value passed to panic and the stack
// of the panicking strand.
type Panic struct {
	Value any
	Stack []byte
}

// PanicError reports the panics quarantined during a computation submitted
// to Run. The first panic cancels the rest of the run; strands already
// executing when that happens may panic too, and every captured panic is
// collected in All rather than lost. Value and Stack mirror All[0] so
// existing single-panic consumers keep working.
type PanicError struct {
	Value any     // the first panic's value
	Stack []byte  // the first panic's stack, if captured
	All   []Panic // every quarantined panic, in capture order
}

func (e *PanicError) Error() string {
	if len(e.All) > 1 {
		return fmt.Sprintf("sched: panic in spawned computation: %v (and %d more quarantined)",
			e.Value, len(e.All)-1)
	}
	return fmt.Sprintf("sched: panic in spawned computation: %v", e.Value)
}

// worker is one scheduler thread with its private deque (§3.2: "each
// worker's stack operates like a work queue").
type worker struct {
	rt    *Runtime
	id    int
	deque *deque.Deque[task]
	rng   *rand.Rand
	ws    workerStats
	// rec is the worker's private event recorder; nil unless the runtime
	// was built with Tracing (all Recorder methods are nil-safe no-ops).
	rec *trace.Recorder
	// hunting is true while the worker is between running out of work and
	// finding the next task, bracketing the trace's idle slices. Only the
	// worker's own goroutine touches it. huntStart is the nanots timestamp
	// of the current hunt's start, recorded only while the runtime carries
	// an observer — a successful steal observes hunt-to-steal latency.
	hunting   bool
	huntStart int64
	// Locality fields (see domain.go), fixed at construction: the worker's
	// steal domain and its domain-aware injection-lane sweep order.
	domain    int
	laneOrder []int
	// lastVictim[d] is the id of the worker in domain d the last successful
	// steal came from, or -1. A victim that had surplus work once likely
	// still has more (Suksompong et al., "On the Efficiency of Localized
	// Work Stealing"), so a sweep of d probes it first. Only the worker's
	// own goroutine touches it. A flat runtime has one domain, so
	// lastVictim[0] is exactly the old single remembered victim.
	lastVictim []int
	// localFails counts consecutive stealOnce sweeps whose same-domain rung
	// found nothing; escalation to remote domains is deferred until it
	// exceeds localSweepRetries (hysteresis — see stealOnce), and any
	// successful steal resets it. Only the worker's own goroutine touches
	// it. Unused (always 0) on a flat runtime.
	localFails int
	// Frame recycling (see frame.go): the worker-private freelist — the
	// spawn path's allocator, touched by no other goroutine — and the
	// cached spill box that lets steady-state spill/refill cycles move
	// batches to and from the global backstop without allocating.
	frameFree []*frame
	slabCache *frameSlab

	// Sanitizer fields (see sanitize.go). san is the worker's fault-
	// injection lane, nil without WithSanitize. watch gates the state word:
	// when the stall watchdog is armed, the worker publishes its coarse
	// state (running/hunting/parked) at task and park boundaries so the
	// watchdog can tell long user chunks from a stalled scheduler.
	san   *schedsan.Lane
	watch bool
	state atomic.Int32
}

// Hunt phases, measured in consecutive failed sweeps. A worker that runs out
// of work first re-sweeps immediately (work often reappears within a few
// probes), then yields the processor between sweeps, and finally parks on the
// runtime condition variable until a producer wakes it. Parking replaces the
// old exponential sleep backoff: a parked worker is woken by a Signal and
// starts its next sweep immediately, where the sleep-based hunt delayed the
// first post-wakeup sweep by up to the accumulated backoff.
const (
	spinSweeps  = 4
	yieldSweeps = 32
)

// loop is the worker's top-level scheduling loop: drain own deque, take
// injected roots, steal; escalate spin → yield → park when work is scarce.
func (w *worker) loop() {
	defer w.rt.wg.Done()
	if w.rt.cfg.lockThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	fails := 0
	for {
		if t := w.findTask(); t != nil {
			if w.hunting {
				w.hunting = false
				w.rec.IdleExit()
			}
			fails = 0
			if w.watch {
				w.state.Store(stateRunning)
			}
			w.runTask(t)
			if w.watch {
				w.state.Store(stateHunting)
			}
			continue
		}
		if !w.hunting {
			w.hunting = true
			if w.rt.obsH != nil {
				w.huntStart = w.rt.nanots()
			}
			w.rec.IdleEnter()
		}
		fails++
		switch {
		case fails <= spinSweeps:
			// Spin: sweep again immediately.
		case fails <= yieldSweeps:
			if fails == spinSweeps+1 {
				w.rec.HuntYield()
			}
			runtime.Gosched()
		default:
			if !w.park() {
				return
			}
			// Unparked for (likely) new work: sweep immediately, with the
			// failure count reset — no sleep between wakeup and first probe.
			fails = 0
		}
	}
}

// findTask returns the next task: own deque first (bottom, LIFO), then the
// domain's affinity mailbox (a range task re-injected toward this domain is
// the work this worker is warmest for after its own), then the injection
// queue, then one steal sweep over the other workers.
func (w *worker) findTask() *task {
	if t := w.deque.PopBottom(); t != nil {
		return t
	}
	if t := w.takeAffinity(w.domain); t != nil {
		return t
	}
	if t := w.takeInjected(); t != nil {
		return t
	}
	return w.stealOnce()
}

// takeInjected sweeps the injection lanes for a queued root in the worker's
// precomputed laneOrder: own lane first (tenant-hashed submissions land on
// a stable lane, so the worker warm with a tenant's state probes that
// tenant's lane first), then the rest of its own domain's lanes, then
// remote lanes — idle workers keep root pickup inside their domain whenever
// any same-domain lane has work. The empty-path cost is one atomic load of
// rt.injected — no mutex — which is what lets every idle worker probe the
// injection path on every sweep without serializing on a global lock the
// way the old single FIFO did.
func (w *worker) takeInjected() *task {
	rt := w.rt
	if rt.injected.Load() == 0 {
		return nil
	}
	for _, li := range w.laneOrder {
		if t := rt.lanes[li].pop(); t != nil {
			rt.injected.Add(-1)
			rt.rootPicked(t.frame.run)
			w.rec.InjectPickup()
			return t
		}
	}
	return nil
}

// rootPicked records a root's transit from queued to running: per-class
// queue gauges, the Ticket's queue-latency clock, and the admission state
// machine's queued→running transition.
func (rt *Runtime) rootPicked(rs *runState) {
	rt.queuedByClass[rs.qos].Add(-1)
	rs.pickedNs = rt.nanots()
	rt.adm.picked(rs)
}

// localSweepRetries is the escalation hysteresis: how many consecutive
// failed same-domain sweeps a thief absorbs before its next sweep may cross
// into remote domains. Escalating on the very first local miss makes remote
// steals nearly as common as local ones on sparse workloads (one resident
// range task, empty deques most of the time) — each miss is instantaneous,
// so a couple of local retries cost microseconds while the local deques
// refill, and every steal the retries convert from remote to local saves
// the cross-domain cache misses §4g is about. The sim's VictimDomain policy
// applies the same hysteresis (proc.localMisses), so measured trends carry
// over. Liveness is unaffected: the hysteresis delays escalation by a
// bounded number of sweeps, and a worker parks only after yieldSweeps
// failures, long after escalation unlocked.
const localSweepRetries = 2

// stealOnce performs one hierarchical sweep, returning the first
// successfully stolen task, or nil. Each rung is adaptive — the domain's
// remembered victim is probed first, falling back to a random rotation
// (stealSweepDomain) — and a thief escalates past its own domain only
// after localSweepRetries consecutive full local sweeps fail: first remote
// domains' deques in random domain order, then the affinity mailboxes, so
// a locality preference can never strand work. Crossing the domain
// boundary is counted (DomainEscalations, KindDomainEscalate), and the
// sanitizer can veto it (the sweep just fails, a fallback every hunt
// already tolerates). On a flat runtime there is one domain holding every
// worker, so the ladder degenerates to exactly the old single adaptive
// sweep. A sweep that fails outright counts toward the worker's hunt
// escalation.
func (w *worker) stealOnce() *task {
	rt := w.rt
	if len(rt.workers) <= 1 {
		return nil
	}
	if t := w.stealSweepDomain(w.domain); t != nil {
		w.localFails = 0
		return t
	}
	if nd := len(rt.domains); nd > 1 {
		w.localFails++
		if w.localFails <= localSweepRetries {
			// Hysteresis: stay local for a few sweeps before going remote.
			bump(&w.ws.failedSweeps)
			return nil
		}
		if w.san.Fail(schedsan.PointDomainEscalate) {
			// Injected skipped escalation (legal: just a failed sweep; a
			// later sweep escalates).
			bump(&w.ws.failedSweeps)
			return nil
		}
		bump(&w.ws.domainEscalations)
		w.rec.DomainEscalate(int32(w.domain))
		start := w.rng.Intn(nd)
		for i := 0; i < nd; i++ {
			d := (start + i) % nd
			if d == w.domain {
				continue
			}
			if t := w.stealSweepDomain(d); t != nil {
				w.localFails = 0
				return t
			}
		}
		if t := w.takeAffinityAny(); t != nil {
			w.localFails = 0
			return t
		}
	}
	bump(&w.ws.failedSweeps)
	return nil
}

// stealFrom probes one victim: a batch steal first — up to half the victim's
// visible tasks in one CAS, extras landing in this worker's own deque —
// falling back to a single steal when the batch found the deque empty,
// another batch in flight, or lost its race. Exactly one StealSuccess is
// recorded per successful operation, batched or not, so trace event counts
// and the Steals counter agree.
func (w *worker) stealFrom(victim *worker) *task {
	bump(&w.ws.stealAttempts)
	w.rec.StealAttempt(int32(victim.id))
	t, moved := victim.deque.StealBatch(w.deque)
	if t == nil {
		if t = victim.deque.Steal(); t == nil {
			return nil
		}
	}
	bump(&w.ws.steals)
	if victim.domain == w.domain {
		bump(&w.ws.localSteals)
	} else {
		bump(&w.ws.remoteSteals)
	}
	if h := w.rt.obsH; h != nil && w.hunting {
		// Hunt-to-steal latency: how long this worker went without work
		// before the steal landed. Steals from syncWait (not hunting) are
		// excluded — the worker was never idle.
		h.steal.Observe(time.Duration(w.rt.nanots() - w.huntStart))
	}
	rf := t.frame
	if t.loop != nil {
		rf = t.loop.frame
	}
	if s := rf.run.stats; s != nil {
		bump(&s.cells[w.id].steals)
	}
	w.rec.StealSuccess(int32(victim.id))
	if moved > 0 {
		bump(&w.ws.stealBatches)
		bumpN(&w.ws.tasksStolenBatched, int64(moved))
		w.rec.StealBatch(int32(moved))
		// The extras are stealable work sitting in our deque now; offer a
		// parked worker the chance to come share it. Locality note: a
		// cross-domain batch migrates every extra into the thief's domain in
		// one operation but still counts as ONE steal in the local/remote
		// split — the split classifies operations, not tasks, so compare
		// TasksStolenBatched alongside RemoteSteals when judging how much
		// work actually crossed a domain boundary. The extras now sit where
		// same-domain thieves of *this* domain find them locally, which is
		// exactly the amortization batching buys.
		w.rt.wake()
	}
	if t.loop != nil {
		// A stolen range task splits immediately (see loop.go): the thief
		// keeps the front half and re-publishes the back half, so further
		// thieves need not wait for this one's first remainder publish.
		w.splitRange(t, victim)
	}
	return t
}

const (
	minBackoff = time.Microsecond
	maxBackoff = 200 * time.Microsecond
)

// wake rouses one parked worker. Producers call it after making stealable
// work visible outside the injection queue (a Spawn push, batch-steal
// extras). The fast path is one atomic load; the mutex is taken only when
// someone is actually parked, and pairs with the parker's under-lock re-check
// so the signal cannot fall between a parker's last look for work and its
// wait.
func (rt *Runtime) wake() {
	if s := rt.san; s != nil && s.wakeFault(rt) {
		return // injected lost wakeup (liveness-benign; see stealableWork)
	}
	if rt.parked.Load() == 0 {
		return
	}
	rt.mu.Lock()
	rt.cond.Signal()
	rt.mu.Unlock()
}

// stealableWork reports whether any worker's deque appeared non-empty. The
// loads are racy, and a spawn-path wake CAN be lost entirely: the producer's
// fast path reads parked without the mutex, so the interleaving
//
//	parker reads producer's deque empty → producer pushes → producer reads
//	parked == 0 (skips the Signal) → parker registers as parked and Waits
//
// is consistent even under sequentially consistent atomics — nothing orders
// the parker's registration before the producer's read. The lost wakeup is
// nevertheless benign for liveness: every producer outside the injection
// path is a worker that just pushed onto its *own* deque, and a worker
// cannot park while its own deque is non-empty (it pops it dry first and
// re-checks under the lock here), so the pushed work is always executed or
// re-exposed by its producer even if every parked worker sleeps through it.
// The regression test TestSanDropWakeLiveness pins this argument by
// dropping every spawn-path wake and requiring runs to complete. Only a
// root injection lacks a producer that will execute the work itself, which
// is why Submit pairs the lane enqueue with an unconditional Signal under
// rt.mu — paired with the parker's rt.injected re-check below, also under
// rt.mu, that wakeup cannot be lost (the full argument is in submit.go) —
// and why schedsan treats it as unloseable (its loss,
// Options.BreakInjectWake, is a genuine stall reserved for watchdog tests).
func (rt *Runtime) stealableWork() bool {
	for _, v := range rt.workers {
		if !v.deque.Empty() {
			return true
		}
	}
	return false
}

// park blocks the worker until work may be available or the runtime shuts
// down. It returns false when the worker should exit. Unlike the old
// sleep-backoff idle loop, a worker may park even while computations are
// active (its hunt escalated through spin and yield first), and on wakeup it
// returns to the sweep immediately — the wakeup-to-first-probe path contains
// no sleep.
func (w *worker) park() bool {
	rt := w.rt
	// Sanitizer: stretch the classic check-then-block window between the
	// last failed sweep and registration as parked.
	w.san.Delay(schedsan.PointPark)
	rt.mu.Lock()
	for {
		if rt.closed && rt.activeRoots == 0 && rt.injected.Load() == 0 {
			rt.mu.Unlock()
			if rt.sanChecks() && !w.deque.Empty() {
				rt.sanViolation("worker %d exiting with %d tasks in its deque", w.id, w.deque.Size())
			}
			return false
		}
		// The rt.injected re-check under rt.mu is the parker's half of the
		// injection wake guarantee (see submit.go): a root enqueued before we
		// took the mutex is visible here, and one enqueued after will find us
		// already waiting when its Signal fires. affinityQueued keeps a
		// re-injected range's pickup latency low; its liveness does not
		// depend on this check (see affinityPush).
		if rt.injected.Load() > 0 || rt.affinityQueued.Load() > 0 || rt.stealableWork() {
			rt.mu.Unlock()
			return true
		}
		rt.parked.Add(1)
		if w.watch {
			w.state.Store(stateParked)
		}
		var parkT0 int64
		if rt.obsH != nil {
			parkT0 = rt.nanots()
		}
		w.rec.Park()
		rt.cond.Wait()
		w.rec.Unpark()
		if h := rt.obsH; h != nil {
			h.parkWake.Observe(time.Duration(rt.nanots() - parkT0))
		}
		if w.watch {
			w.state.Store(stateHunting)
		}
		rt.parked.Add(-1)
	}
}

// runTask executes one task to completion: the spawned function's body plus
// its implicit sync, then deposits the frame's reducer views with the parent
// and signals the join counter. Panics are quarantined into the run state
// (cancelling the rest of the run) and the frame's outstanding children are
// still drained, so a failed computation never leaves orphan tasks running
// after Run returns. Tasks of a cancelled run are skipped, not executed —
// the steal/pickup boundary is a cancel check site.
func (w *worker) runTask(t *task) {
	if t.loop != nil {
		w.runPiece(t)
		return
	}
	fn, f := t.fn, t.frame
	// The task is fused into its frame (frame.t) and recycles with it at the
	// bottom of this function; dropping the closure reference here is the
	// only per-task cleanup left.
	t.fn = nil
	rs := f.run
	rs.checkBudget(w) // task start is a budget boundary, like the cancel gate below
	if rs.cancelled() {
		w.skipFrame(f)
		return
	}
	root := f.parent == nil
	if !root {
		bump(&w.ws.tasksRun)
	}
	live := w.ws.liveFrames.Load() + 1
	w.ws.liveFrames.Store(live)
	maxOwn(&w.ws.maxLiveFrames, live)
	maxOwn(&w.ws.maxDepth, int64(f.depth))
	if s := rs.stats; s != nil {
		cell := &s.cells[w.id]
		if !root {
			bump(&cell.tasksRun)
		}
		cl := cell.liveFrames.Load() + 1
		cell.liveFrames.Store(cl)
		maxOwn(&cell.maxLiveFrames, cl)
		maxOwn(&cell.maxDepth, int64(f.depth))
	}
	w.rec.TaskStart(f.depth, rs.id)

	// The Context is fused into the frame too: running a task allocates
	// nothing. Only w and rt need (re)binding — the frame link is a
	// self-link preserved across pool lives, and resetFrame zeroed the rest.
	ctx := &f.ctx
	ctx.w, ctx.rt = w, w.rt
	cl := rs.clock
	if cl != nil {
		ctx.strandStart = w.rt.nanots()
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rs.poison(r)
				w.rec.Panic(f.depth, rs.id)
				ctx.syncWait() // drain children even on panic
			}
		}()
		fn(ctx)
		ctx.Sync() // implicit sync before return (§1)
	}()

	if cl != nil {
		// Close the frame's final strand segment and publish its span. The
		// deposit happens strictly before the join-counter decrement below,
		// so a parent folding after the join observes it; for the root, the
		// store precedes rs.finish()'s done-channel close, which publishes
		// the span to the Run caller.
		ctx.charge(cl)
		ctx.depositSpan(cl)
	}

	p := f.parent
	views := ctx.views
	if p != nil && len(views) > 0 {
		p.depositChildViews(f.ordinal, views)
		views = nil
	}
	// The frame's own work is complete — children joined, views deposited —
	// so this strand owns it exclusively and nothing can reach it through
	// the deque (ring slots no longer retain stale pointers). Recycle it,
	// with its embedded task and Context, and settle the live gauges BEFORE
	// signalling the parent's join counter (or finishing the root): the
	// decrement and the frame's memory refund thereby happen-before the
	// run's done channel closes, so a run's live-frame and live-byte sums
	// are exactly zero by the time Ticket.Wait returns.
	w.recycleFrame(f)
	bumpN(&w.ws.liveFrames, -1)
	if s := rs.stats; s != nil {
		bumpN(&s.cells[w.id].liveFrames, -1)
	}
	if p != nil {
		w.rt.sanJoin(p.pending.Add(-1), "a completed child", rs)
	} else {
		finalizeViews(views)
		rs.finish()
	}
	w.rec.TaskEnd()
}

// skipFrame abandons a cancelled run's frame without executing its body.
// The frame still joins: its parent's pending counter is decremented (or,
// for a root, the run is finished), so syncs observe the same join
// structure as a completed run — the task merely contributed no work and
// deposited no views. This is what bounds cancellation latency: every
// outstanding task drains in O(1). The frame is recycled on the way out (a
// skipped frame never ran, so it has no children of its own).
func (w *worker) skipFrame(f *frame) {
	rs := f.run
	bump(&w.ws.tasksSkipped)
	if s := rs.stats; s != nil {
		bump(&s.cells[w.id].tasksSkipped)
	}
	w.rec.TaskSkip(f.depth, rs.id)
	// Recycle before signalling the join (or finishing the root) so the
	// frame's memory refund happens-before the run's done channel closes —
	// same ordering as runTask's completion path.
	p := f.parent
	w.recycleFrame(f)
	if p != nil {
		w.rt.sanJoin(p.pending.Add(-1), "a skipped child", rs)
	} else {
		rs.finish()
	}
}
