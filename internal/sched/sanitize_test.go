package sched

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo/internal/schedsan"
)

// sanOpts is the baseline sanitizer configuration the tests build on:
// invariants armed, violations collected (not panicked) into the returned
// slice.
func sanOpts(plan schedsan.Plan) (schedsan.Options, *violationLog) {
	log := &violationLog{}
	return schedsan.Options{
		Plan:        plan,
		Invariants:  true,
		OnViolation: log.add,
	}, log
}

// fibYield is fib with a processor yield at every leaf, so thieves get
// scheduled (and the thief-side fault gates get exercised) even when the
// test host has a single CPU.
func fibYield(c *Context, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		runtime.Gosched()
		return
	}
	var a, b int64
	c.Spawn(func(c *Context) { fibYield(c, n-1, &a) })
	fibYield(c, n-2, &b)
	c.Sync()
	*out = a + b
}

type violationLog struct {
	mu   sync.Mutex
	reps []*schedsan.Report
}

func (l *violationLog) add(r *schedsan.Report) {
	l.mu.Lock()
	l.reps = append(l.reps, r)
	l.mu.Unlock()
}

func (l *violationLog) empty(t *testing.T) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.reps {
		t.Errorf("invariant violation: %s", r.Title)
	}
}

// TestSanStealBatchExactlyOnce drives fib's spawn tree through a fault plan
// that hammers the StealBatch claim protocol — forced claim contention,
// forced commit-CAS failures after the claim was visible, stretched claim
// windows — with the invariant checker armed. Every spawned task must still
// run exactly once (fib's value is wrong otherwise) and no join counter may
// go negative. Part of the stress-deque CI gate.
func TestSanStealBatchExactlyOnce(t *testing.T) {
	plan := schedsan.Plan{Seed: 101, Rules: []schedsan.Rule{
		{Point: schedsan.PointBatchClaim, Mode: schedsan.ModeFail, Rate: 0.4},
		{Point: schedsan.PointBatchCAS, Mode: schedsan.ModeFail, Rate: 0.4},
		{Point: schedsan.PointBatchWindow, Mode: schedsan.ModeDelay, Rate: 0.5, Delay: 5 * time.Microsecond},
		{Point: schedsan.PointSteal, Mode: schedsan.ModeFail, Rate: 0.2},
	}}
	opts, log := sanOpts(plan)
	rt := New(WithWorkers(8), WithSanitize(opts))
	defer rt.Shutdown()
	want := fibSerial(18)
	for i := 0; i < 5; i++ {
		var got int64
		stats, err := rt.RunWithStats(func(c *Context) { fibYield(c, 18, &got) })
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("run %d: fib(18) = %d, want %d — a spawned task was lost or duplicated", i, got, want)
		}
		if stats.TasksRun != stats.Spawns {
			t.Fatalf("run %d: spawns=%d tasksRun=%d, want equal", i, stats.Spawns, stats.TasksRun)
		}
	}
	log.empty(t)
	if rt.Sanitizer().TotalFired() == 0 {
		t.Fatal("fault plan never fired — the protocol was not exercised")
	}
}

// TestSanRangeExactlyOnceFaulted is the range-task analogue: the lazy
// loop's peel/split/reclaim protocol under forced split skips, stretched
// peel windows, steal failures, and pool-recycle leaks. Every iteration
// must run exactly once and the piece deposits must reconstruct the exact
// serial reduction order. Part of the stress-deque CI gate.
func TestSanRangeExactlyOnceFaulted(t *testing.T) {
	plan := schedsan.Plan{Seed: 202, Rules: []schedsan.Rule{
		{Point: schedsan.PointRangeSplit, Mode: schedsan.ModeFail, Rate: 0.5},
		{Point: schedsan.PointChunkPeel, Mode: schedsan.ModeDelay, Rate: 0.3, Delay: 5 * time.Microsecond},
		{Point: schedsan.PointSteal, Mode: schedsan.ModeFail, Rate: 0.3},
		{Point: schedsan.PointRecycle, Mode: schedsan.ModeFail, Rate: 0.5},
		{Point: schedsan.PointViewFold, Mode: schedsan.ModeDelay, Rate: 0.5, Delay: 5 * time.Microsecond},
	}}
	opts, log := sanOpts(plan)
	rt := New(WithWorkers(8), WithSanitize(opts))
	defer rt.Shutdown()
	const n = 30_000
	for trial := 0; trial < 3; trial++ {
		counts := make([]int32, n)
		key := new(int)
		var folded []int
		err := rt.Run(func(c *Context) {
			loopRange(c, 0, n, 5, func(c *Context, l, h int) {
				v, _ := c.LookupView(key).(*orderView)
				if v == nil {
					v = &orderView{}
					c.InstallView(key, v)
				}
				for i := l; i < h; i++ {
					atomic.AddInt32(&counts[i], 1)
					v.xs = append(v.xs, i)
				}
			})
			if v, ok := c.LookupView(key).(*orderView); ok {
				folded = v.xs
			}
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkExactlyOnce(t, counts)
		if len(folded) != n {
			t.Fatalf("trial %d: folded %d iterations, want %d", trial, len(folded), n)
		}
		for i, x := range folded {
			if x != i {
				t.Fatalf("trial %d: fold order broken at %d: got %d — piece deposits out of serial order", trial, i, x)
			}
		}
	}
	log.empty(t)
	if rt.Sanitizer().TotalFired() == 0 {
		t.Fatal("fault plan never fired")
	}
}

// TestSanDropWakeLiveness pins the park/wake audit's central claim: losing
// every spawn-path wake cannot hang the runtime, because the producer of
// the pushed work cannot park while its own deque is non-empty — it
// executes or re-exposes the work itself. With all wakes dropped, runs must
// still complete (slower, since parked workers only rejoin via the
// injection broadcast or their pre-park re-check).
func TestSanDropWakeLiveness(t *testing.T) {
	plan := schedsan.Plan{Seed: 303, Rules: []schedsan.Rule{
		{Point: schedsan.PointWake, Mode: schedsan.ModeDrop, Rate: 1.0},
	}}
	opts, log := sanOpts(plan)
	rt := New(WithWorkers(8), WithSanitize(opts))
	defer rt.Shutdown()
	want := fibSerial(20)
	done := make(chan error, 1)
	var got int64
	go func() { done <- rt.Run(func(c *Context) { fib(c, 20, &got) }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung with all spawn-path wakes dropped — the lost-wakeup argument is broken")
	}
	if got != want {
		t.Fatalf("fib(20) = %d, want %d", got, want)
	}
	log.empty(t)
	if rt.Sanitizer().TotalFired() == 0 {
		t.Fatal("no wakes were dropped — the test exercised nothing")
	}
}

// TestSanWakeFaultSchedules is the seeded park/wake regression matrix:
// randomized drop/dup/delay wake plans plus park-window delays, across
// several seeds, must neither hang nor lose tasks. These are the schedules
// that would catch a regression in the parker's under-lock re-check.
func TestSanWakeFaultSchedules(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		plan := schedsan.Plan{Seed: seed, Rules: []schedsan.Rule{
			{Point: schedsan.PointWake, Mode: schedsan.ModeDrop, Rate: 0.7},
			{Point: schedsan.PointWake, Mode: schedsan.ModeDup, Rate: 0.3},
			{Point: schedsan.PointWake, Mode: schedsan.ModeDelay, Rate: 0.3, Delay: 20 * time.Microsecond},
			{Point: schedsan.PointPark, Mode: schedsan.ModeDelay, Rate: 0.5, Delay: 50 * time.Microsecond},
		}}
		opts, log := sanOpts(plan)
		rt := New(WithWorkers(4), WithSanitize(opts))
		var got int64
		stats, err := rt.RunWithStats(func(c *Context) { fib(c, 16, &got) })
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := fibSerial(16); got != want {
			t.Fatalf("seed %d: fib(16) = %d, want %d", seed, got, want)
		}
		if stats.TasksRun != stats.Spawns {
			t.Fatalf("seed %d: spawns=%d tasksRun=%d", seed, stats.Spawns, stats.TasksRun)
		}
		rt.Shutdown()
		log.empty(t)
	}
}

// TestSanWatchdogCatchesBrokenWakeup is the watchdog acceptance test: a
// deliberately broken root-injection wakeup (the one wakeup whose loss
// genuinely stalls the runtime) must be detected by the stall watchdog,
// reported with a dump naming the stuck workers, counted in Stats.Stalls,
// and rescued — the run completes anyway.
func TestSanWatchdogCatchesBrokenWakeup(t *testing.T) {
	var stalls []*schedsan.Report
	var mu sync.Mutex
	opts := schedsan.Options{
		Invariants: true,
		StallAfter: 40 * time.Millisecond,
		OnStall: func(r *schedsan.Report) {
			mu.Lock()
			stalls = append(stalls, r)
			mu.Unlock()
		},
		BreakInjectWake: true,
	}
	rt := New(WithWorkers(4), WithSanitize(opts))
	defer rt.Shutdown()

	// Let every worker escalate its hunt to parked; only then does the
	// broken injection wakeup leave no one to notice the new root.
	deadline := time.Now().Add(5 * time.Second)
	for rt.parked.Load() != 4 {
		if !time.Now().Before(deadline) {
			t.Fatalf("workers never parked: %d of 4", rt.parked.Load())
		}
		time.Sleep(time.Millisecond)
	}

	var got int64
	done := make(chan error, 1)
	go func() { done <- rt.Run(func(c *Context) { fib(c, 10, &got) }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog failed to rescue the stalled runtime")
	}
	if want := fibSerial(10); got != want {
		t.Fatalf("fib(10) = %d, want %d", got, want)
	}
	if n := rt.Stats().Stalls; n < 1 {
		t.Fatalf("Stats.Stalls = %d, want >= 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stalls) == 0 {
		t.Fatal("no stall report delivered")
	}
	body := stalls[0].Body
	if !strings.Contains(body, "parked") || !strings.Contains(body, "worker") {
		t.Fatalf("stall dump does not name the stuck workers:\n%s", body)
	}
	if !strings.Contains(body, "1 injected roots") && !strings.Contains(body, "1 active runs") {
		t.Fatalf("stall dump does not show the outstanding work:\n%s", body)
	}
	if rep := rt.StallReport(); rep == nil {
		t.Fatal("StallReport() returned nil after a detected stall")
	}
}

// TestSanWatchdogQuietOnHealthyRuns: the watchdog must not cry wolf — a
// healthy workload with long serial chunks (progress counters flat while a
// worker runs user code) produces zero stall reports.
func TestSanWatchdogQuietOnHealthyRuns(t *testing.T) {
	opts := schedsan.Options{
		Invariants: true,
		StallAfter: 25 * time.Millisecond,
		OnStall:    func(r *schedsan.Report) { t.Errorf("false stall: %s\n%s", r.Title, r.Body) },
	}
	rt := New(WithWorkers(4), WithSanitize(opts))
	defer rt.Shutdown()
	err := rt.Run(func(c *Context) {
		c.Spawn(func(*Context) { time.Sleep(120 * time.Millisecond) }) // long serial strand
		var out int64
		fib(c, 15, &out)
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := rt.Stats().Stalls; n != 0 {
		t.Fatalf("Stats.Stalls = %d on a healthy run", n)
	}
}

// TestSanDrainUnderBatchSteal is the ShutdownDrain-vs-StealBatch satellite:
// a bounded drain forced to cancel mid-flight, while batch steals shuttle
// tasks between deques under injected claim faults, must never strand a
// task — the post-drain assertions (all deques empty, injection queue
// empty, no active roots, no parked workers) are checked by
// sanVerifyDrained inside ShutdownDrain itself.
func TestSanDrainUnderBatchSteal(t *testing.T) {
	plan := schedsan.Plan{Seed: 404, Rules: []schedsan.Rule{
		{Point: schedsan.PointBatchClaim, Mode: schedsan.ModeFail, Rate: 0.3},
		{Point: schedsan.PointBatchCAS, Mode: schedsan.ModeFail, Rate: 0.3},
		{Point: schedsan.PointBatchWindow, Mode: schedsan.ModeDelay, Rate: 0.5, Delay: 10 * time.Microsecond},
	}}
	opts, log := sanOpts(plan)
	rt := New(WithWorkers(8), WithSanitize(opts))

	// A wide, slow spawn tree: plenty of in-flight tasks for the drain to
	// cancel and for batch steals to be shuttling when the deadline hits.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rt.Run(func(c *Context) {
				var spread func(c *Context, depth int)
				spread = func(c *Context, depth int) {
					if depth == 0 {
						time.Sleep(200 * time.Microsecond)
						return
					}
					for k := 0; k < 4; k++ {
						c.Spawn(func(c *Context) { spread(c, depth-1) })
					}
					c.Sync()
				}
				spread(c, 5)
			})
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let the trees start fanning out
	drained := rt.ShutdownDrain(5 * time.Millisecond)
	wg.Wait()
	for i, err := range errs {
		if err != nil && err != ErrShutdown {
			t.Fatalf("run %d: unexpected error %v", i, err)
		}
		if !drained && errs[i] == nil {
			continue // finished before the deadline — fine
		}
	}
	log.empty(t) // sanVerifyDrained ran inside ShutdownDrain; any stranding landed here
}

// TestSanInvariantDoubleDeposit seeds a deliberate protocol violation — the
// same child ordinal depositing twice, as a claim-arbitration bug would
// cause — and requires the checker to catch it.
func TestSanInvariantDoubleDeposit(t *testing.T) {
	opts, log := sanOpts(schedsan.Plan{})
	rt := New(WithWorkers(2), WithSanitize(opts))
	defer rt.Shutdown()
	err := rt.Run(func(c *Context) {
		f := c.frame
		views := viewMap{{key: new(int), v: &orderView{}}}
		f.depositChildViews(0, views)
		f.depositChildViews(0, views) // the bug: ordinal 0 deposits twice
	})
	if err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.reps) == 0 {
		t.Fatal("double deposit not detected")
	}
	if !strings.Contains(log.reps[0].Title, "duplicate reducer-view deposit") {
		t.Fatalf("unexpected violation: %s", log.reps[0].Title)
	}
}

// TestSanInvariantNegativeJoin seeds the other deliberate violation — a
// join counter signalled once more than it was raised — and requires the
// checker to report it instead of hanging or corrupting the pool.
func TestSanInvariantNegativeJoin(t *testing.T) {
	opts, log := sanOpts(schedsan.Plan{})
	rt := New(WithWorkers(2), WithSanitize(opts))
	defer rt.Shutdown()
	err := rt.Run(func(c *Context) {
		// The bug: a spurious extra join signal on a frame with no
		// outstanding children.
		c.rt.sanJoin(c.frame.pending.Add(-1), "a forged join", c.frame.run)
		c.frame.pending.Add(1) // restore so the frame retires cleanly
	})
	if err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.reps) == 0 {
		t.Fatal("negative join counter not detected")
	}
	if !strings.Contains(log.reps[0].Title, "join counter went negative") {
		t.Fatalf("unexpected violation: %s", log.reps[0].Title)
	}
}

// TestSanRunQuiescence: the per-run quiescence check passes on healthy
// workloads of every flavour (spawn trees, loops, cancellation) — i.e. the
// checker itself has no false positives under RunWithStats accounting.
func TestSanRunQuiescence(t *testing.T) {
	opts, log := sanOpts(schedsan.RandomPlan(7))
	rt := New(WithWorkers(4), WithSanitize(opts))
	defer rt.Shutdown()
	var out int64
	if _, err := rt.RunWithStats(func(c *Context) { fib(c, 15, &out) }); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunWithStats(func(c *Context) {
		counts := make([]int32, 5000)
		loopRange(c, 0, len(counts), 3, func(c *Context, l, h int) {
			for i := l; i < h; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	log.empty(t)
}

// TestSanDisabledZeroImpact: a runtime without WithSanitize reports no
// sanitizer state and behaves identically (guards the nil paths).
func TestSanDisabledZeroImpact(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	if rt.Sanitizer() != nil || rt.StallReport() != nil || rt.ViolationReport() != nil {
		t.Fatal("sanitizer state visible on an unsanitized runtime")
	}
	var out int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &out) }); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Stalls != 0 {
		t.Fatal("nonzero Stalls without a watchdog")
	}
	if _, ok := rt.Metrics()["san_violations"]; ok {
		t.Fatal("sanitizer metrics published without a sanitizer")
	}
}

// TestSanWatchdogRescuesLaneStorm is the sharded-lane variant of
// TestSanWatchdogCatchesBrokenWakeup: with the root-injection Signal
// suppressed, a multi-tenant, mixed-QoS Submit storm lands across several
// lanes while every worker is parked. The stall watchdog must notice the
// queued roots (the rt.injected gauge) and its rescue broadcast must drain
// every lane — each ticket completes exactly once with a correct result.
func TestSanWatchdogRescuesLaneStorm(t *testing.T) {
	opts := schedsan.Options{
		Invariants:      true,
		StallAfter:      40 * time.Millisecond,
		BreakInjectWake: true,
	}
	rt := New(WithWorkers(4), WithSanitize(opts))
	defer rt.Shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for rt.parked.Load() != 4 {
		if !time.Now().Before(deadline) {
			t.Fatalf("workers never parked: %d of 4", rt.parked.Load())
		}
		time.Sleep(time.Millisecond)
	}

	type sub struct {
		tk   *Ticket
		got  *int64
		runs *atomic.Int64
	}
	tenants := []string{"alpha", "beta", ""}
	var subs []sub
	for i := 0; i < 12; i++ {
		got := new(int64)
		runs := new(atomic.Int64)
		tk, err := rt.Submit(context.Background(), func(c *Context) {
			runs.Add(1)
			fib(c, 10, got)
		},
			WithTenant(tenants[i%len(tenants)]),
			WithQoS(QoSClass(i%numQoS)),
			WithPriority(i%5),
		)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		subs = append(subs, sub{tk, got, runs})
	}

	done := make(chan error, 1)
	go func() {
		for _, s := range subs {
			if err := s.tk.Wait(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog failed to rescue the lane storm")
	}
	want := fibSerial(10)
	for i, s := range subs {
		if n := s.runs.Load(); n != 1 {
			t.Fatalf("root %d ran %d times, want exactly once", i, n)
		}
		if *s.got != want {
			t.Fatalf("root %d: fib(10) = %d, want %d", i, *s.got, want)
		}
	}
	if n := rt.Stats().Stalls; n < 1 {
		t.Fatalf("Stats.Stalls = %d, want >= 1", n)
	}
}
