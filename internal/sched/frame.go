package sched

import (
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// task is one unit of stealable work: either a spawned function together
// with the frame it will execute in, or — when loop is non-nil — a range
// task covering the loop iterations [lo, hi) of a lazily-split cilk_for
// (see loop.go). Range tasks are never pooled: the peel protocol identifies
// a re-published remainder by pointer, so a range task's address must stay
// unique for as long as any worker still holds a reference to it.
type task struct {
	fn    func(*Context)
	frame *frame

	// Range-task fields (fn == nil, loop != nil). Only the worker that
	// exclusively holds the task (its current executor, or a thief that
	// just took it) may read or mutate lo and hi; the deque's push/steal
	// synchronization publishes them to the next holder.
	loop   *loopState
	lo, hi int
}

// frame is the activation record of one spawned function (§3.2: "the
// subroutine's activation frame containing its local variables"). It tracks
// the join counter for the frame's outstanding spawned children and the
// ordered reducer-view bookkeeping needed to fold hyperobject views in
// serial order at the next sync.
type frame struct {
	parent *frame
	run    *runState

	// pending counts spawned, un-synced children. It is incremented by the
	// frame's own strand at Spawn and decremented by each child when its
	// task completes.
	pending atomic.Int32

	// ordinal is this frame's index in its parent's spawn order within the
	// parent's current sync region.
	ordinal int32

	// nextOrdinal counts children spawned in the current sync region. Only
	// the frame's own strand touches it.
	nextOrdinal int32

	// depth is the spawn depth below the root, for stack statistics.
	depth int32

	// sealed[k] holds the parent strand's view segment accumulated
	// immediately before spawning child k. Only the frame's own strand
	// touches it (seal at Spawn, fold at Sync), so it needs no lock.
	sealed []viewMap

	// childViews[k] holds child k's final folded views. Children deposit
	// concurrently, so it is guarded by redMu; the fold reads it only
	// after the join counter reaches zero.
	redMu      sync.Mutex
	childViews []viewMap

	// pieces holds the view deposits of a lazy cilk_for's range pieces
	// (see loop.go). Unlike spawned children, pieces are created at split
	// time — when a thief takes part of the iteration space — so their
	// serial position cannot be a dense spawn ordinal assigned up front.
	// Each deposit instead carries the loop's sequence number within this
	// frame and the first iteration index the depositing execution covered;
	// sorting by (seq, start) at fold time reconstructs the exact serial
	// order. Guarded by redMu, like childViews.
	pieces []pieceDeposit

	// nextLoopSeq numbers the lazy loops rooted at this frame in strand
	// order, so two sequential loops in one sync region cannot interleave
	// their piece deposits. Only the frame's own strand touches it.
	nextLoopSeq int32

	// Online work/span fields (see obs.go), live only on observed runs.
	// spawnSpan is the parent's local span at the instant this frame was
	// spawned (written by the parent's strand before the task is pushed,
	// published by the deque's synchronization). spanChild is the max over
	// completed children of spawnSpan_child + span_child, deposited
	// concurrently by the children and folded by this frame's Sync.
	spawnSpan int64
	spanChild atomic.Int64
}

// pieceDeposit is one range piece's folded views, positioned in serial
// order by the owning loop's sequence number and the piece's start index.
type pieceDeposit struct {
	seq   int32
	start int
	views viewMap
}

// depositPiece records the views accumulated by one execution episode of a
// range piece, beginning at iteration index start. Called by whichever
// worker ran the episode, before it signals the loop frame's join counter.
func (f *frame) depositPiece(seq int32, start int, views viewMap) {
	if len(views) == 0 {
		return
	}
	f.redMu.Lock()
	if rt := f.run.rt; rt != nil && rt.sanChecks() {
		// Iteration indexes are consumed exactly once, so two episodes of
		// one loop can never begin at the same index: a duplicate (seq,
		// start) deposit means some piece executed twice.
		for i := range f.pieces {
			if f.pieces[i].seq == seq && f.pieces[i].start == start {
				f.redMu.Unlock()
				rt.sanViolation("duplicate range-piece deposit (loop %d, start %d) — a piece executed twice", seq, start)
				f.redMu.Lock()
				break
			}
		}
	}
	f.pieces = append(f.pieces, pieceDeposit{seq: seq, start: start, views: views})
	f.redMu.Unlock()
}

// sealSegment records the strand's current views as the segment preceding
// child k in serial order. Called only by the frame's own strand.
func (f *frame) sealSegment(k int32, views viewMap) {
	f.sealed = storeAt(f.sealed, int(k), views)
}

// depositChildViews records child k's final views. Called by the child's
// worker when the child's task completes.
func (f *frame) depositChildViews(k int32, views viewMap) {
	f.redMu.Lock()
	if rt := f.run.rt; rt != nil && rt.sanChecks() && int(k) < len(f.childViews) && f.childViews[k] != nil {
		// Each spawn ordinal belongs to exactly one child task; a second
		// deposit at the same ordinal means that task completed twice.
		f.redMu.Unlock()
		rt.sanViolation("duplicate reducer-view deposit for child ordinal %d — a task completed twice", k)
		f.redMu.Lock()
	}
	f.childViews = storeAt(f.childViews, int(k), views)
	f.redMu.Unlock()
}

// storeAt grows s as needed so that s[k] = v.
func storeAt(s []viewMap, k int, v viewMap) []viewMap {
	for len(s) <= k {
		s = append(s, nil)
	}
	s[k] = v
	return s
}

// foldViews combines, in exact serial order, all view segments of the
// current sync region — seg₀ ⊕ child₀ ⊕ seg₁ ⊕ child₁ ⊕ … ⊕ current —
// and returns the folded map. Must be called only after the join counter
// has reached zero, so no child is concurrently depositing.
//
// When the region ran lazy loops, their stolen pieces fold after current,
// ordered by (loop sequence, start index). This is exactly serial order for
// the canonical shape — a loop whose frame is private to it (internal/pfor
// wraps every loop in a Call) — because the strand's own accumulation covers
// the loop prefix it executed inline, and every deposited piece covers a
// strictly later contiguous range.
func (f *frame) foldViews(current viewMap) viewMap {
	f.redMu.Lock()
	children := f.childViews
	f.childViews = nil
	pieces := f.pieces
	f.pieces = nil
	f.redMu.Unlock()
	var acc viewMap
	for k := int32(0); k < f.nextOrdinal; k++ {
		if int(k) < len(f.sealed) {
			acc = mergeViews(acc, f.sealed[k])
		}
		if int(k) < len(children) {
			acc = mergeViews(acc, children[k])
		}
	}
	acc = mergeViews(acc, current)
	if len(pieces) > 0 {
		sort.Slice(pieces, func(i, j int) bool {
			if pieces[i].seq != pieces[j].seq {
				return pieces[i].seq < pieces[j].seq
			}
			return pieces[i].start < pieces[j].start
		})
		for i := range pieces {
			acc = mergeViews(acc, pieces[i].views)
		}
	}
	f.sealed = nil
	return acc
}

// viewMap holds the hyperobject views of one strand segment, keyed by
// hyperobject identity (a pointer supplied by internal/hyper). Strands
// typically touch at most a handful of hyperobjects, so a small slice with
// linear lookup beats a map on both allocation and access cost.
type viewMap []viewEntry

type viewEntry struct {
	key any
	v   View
}

func (m viewMap) lookup(key any) View {
	for i := range m {
		if m[i].key == key {
			return m[i].v
		}
	}
	return nil
}

// mergeViews folds right into left in order (left ⊕ right), reusing left's
// storage. Either side may be nil.
func mergeViews(left, right viewMap) viewMap {
	if len(right) == 0 {
		return left
	}
	if len(left) == 0 {
		return right
	}
outer:
	for _, re := range right {
		for i := range left {
			if left[i].key == re.key {
				left[i].v = left[i].v.Merge(re.v)
				continue outer
			}
		}
		left = append(left, re)
	}
	return left
}

// View is the per-strand state of a hyperobject (§5): each strand updates a
// private view without synchronization, and when strands join their views
// are combined with Merge, which must be associative. Merge receives the
// view that is later in serial order and returns the combined view (which
// may be the receiver, updated in place).
type View interface {
	Merge(right View) View
}

// Finalizer is implemented by hyperobject keys that want the computation's
// final folded view delivered when the root frame completes.
type Finalizer interface {
	Finalize(v View)
}

// runState tracks one Run invocation: completion signaling, the
// cooperative cancel gate, quarantined panics, and (for RunWithStats)
// per-computation counters.
type runState struct {
	// id identifies the Run invocation, so trace events of concurrent
	// computations sharing the workers can be told apart.
	id    int64
	rt    *Runtime
	stats *runCounters // nil unless submitted via RunWithStats
	done  chan struct{}

	// canceled is the cooperative cancel gate checked at the spawn,
	// task-start, and per-chunk boundaries. cause is the error Run will
	// report; it is written (once) before canceled is raised, so any
	// strand observing canceled==true also observes cause.
	canceled   atomic.Bool
	cancelOnce sync.Once
	cause      error

	// panics quarantines every panic captured in the run, in capture
	// order. The first panic cancels the run; siblings that panic while
	// the run drains are collected rather than lost.
	panicMu sync.Mutex
	panics  []Panic

	// clock is the run's online work/span accounting (see obs.go); nil
	// unless the runtime carries a RunObserver. start is the run's
	// wall-clock submission time, set only when clock is armed.
	clock *runClock
	start time.Time

	// Serving-layer identity and lifecycle (see submit.go). tenant, qos,
	// prio, and memEst echo the submission's options; enqNs/pickedNs are
	// the root's lane enqueue and pickup timestamps (rt.nanots), pickedNs
	// zero until pickup. picked is the admission state machine's
	// queued→running flag, guarded by the admission mutex. stop (the
	// context watcher plus any time-budget cancel) is installed before the
	// root is published and released exactly once via releaseOnce —
	// worker-side at finish, or by the submitter when submission fails.
	tenant      string
	qos         QoSClass
	prio        int
	memEst      int64
	enqNs       int64
	pickedNs    int64
	picked      bool
	stop        func()
	releaseOnce sync.Once
}

// queueLatency reports how long the root waited for pickup (0 until picked).
// Serial elision never enqueues or picks up a root, so both timestamps stay
// zero and the latency reports 0 (Ticket.QueueLatency documents this;
// TestQueueLatencySerialElision pins it). The pickedNs < enqNs guard keeps a
// clock anomaly from ever reporting a negative wait.
func (rs *runState) queueLatency() time.Duration {
	if rs.pickedNs == 0 || rs.pickedNs < rs.enqNs {
		return 0
	}
	return time.Duration(rs.pickedNs - rs.enqNs)
}

// release stops the run's context watcher and returns its admission
// reservation, exactly once. Called worker-side from finish so that
// fire-and-forget tickets still release their resources, and directly on
// submission paths that never reach finish (serial elision, shut-down
// runtime).
func (rs *runState) release() {
	rs.releaseOnce.Do(func() {
		if rs.stop != nil {
			rs.stop()
		}
		rs.rt.adm.release(rs)
	})
}

// runCounters are the per-computation analogue of workerStats: updated by
// whichever workers execute the computation's tasks, so every field is
// atomic (and the max gauges use maxStore's CAS loop).
type runCounters struct {
	spawns        atomic.Int64
	steals        atomic.Int64
	tasksRun      atomic.Int64
	tasksSkipped  atomic.Int64
	liveFrames    atomic.Int64
	maxLiveFrames atomic.Int64
	maxDepth      atomic.Int64
	loopSplits    atomic.Int64
	chunksPeeled  atomic.Int64
	rangeSteals   atomic.Int64
}

// snapshot folds the per-run counters into a Stats. StealAttempts is zero:
// failed probes are not attributable to one computation.
func (rs *runState) snapshot() Stats {
	var out Stats
	if s := rs.stats; s != nil {
		out = Stats{
			Spawns:        s.spawns.Load(),
			Steals:        s.steals.Load(),
			TasksRun:      s.tasksRun.Load(),
			TasksSkipped:  s.tasksSkipped.Load(),
			MaxLiveFrames: s.maxLiveFrames.Load(),
			MaxDepth:      s.maxDepth.Load(),
			LoopSplits:    s.loopSplits.Load(),
			ChunksPeeled:  s.chunksPeeled.Load(),
			RangeSteals:   s.rangeSteals.Load(),
		}
	}
	if cl := rs.clock; cl != nil {
		out.Work = time.Duration(cl.work.Load())
		out.Span = time.Duration(cl.span.Load())
	}
	return out
}

// poison quarantines a panic captured inside the computation and cancels
// the rest of the run (the first panic installs the cancel cause; sibling
// panics are collected alongside it). Must be called from the recovering
// goroutine so the captured stack is the panicking strand's.
func (rs *runState) poison(v any) {
	rs.panicMu.Lock()
	rs.panics = append(rs.panics, Panic{Value: v, Stack: debug.Stack()})
	rs.panicMu.Unlock()
	if rs.rt != nil {
		rs.rt.panicsQuarantined.Add(1)
	}
	rs.cancelWith(errSiblingPanic)
}

// finish marks the run complete and releases everyone awaiting its Ticket.
// It first releases the run's resources (context watcher, admission
// reservation), then retires it from the active table — when the last
// active run drains it broadcasts, so workers that parked mid-run (the
// hunt's third phase) re-check the exit condition; without this, a Shutdown
// issued while the run was still active would wait forever on workers that
// parked after its broadcast. The observer's RunEnd fires strictly before
// the done channel closes, so a caller returning from Ticket.Wait always
// finds its run already reported.
func (rs *runState) finish() {
	rt := rs.rt
	rs.release()
	rt.mu.Lock()
	rt.activeRoots--
	delete(rt.active, rs)
	if rt.activeRoots == 0 {
		rt.cond.Broadcast()
	}
	rt.mu.Unlock()
	if obs := rt.cfg.observer; obs != nil {
		obs.RunEnd(rt.report(rs, rs.snapshot(), rs.err()))
	}
	close(rs.done)
}

// taskPool and framePool recycle the two objects allocated per spawn. The
// scheduler churns through one task and one frame per Spawn; recycling them
// is safe because every path that retires a task or frame owns it exclusively
// by then — ring slots are cleared on pop/steal/batch and losing thieves only
// discard their stale pointers, so no one can observe a recycled object
// through the deque.
var (
	taskPool  = sync.Pool{New: func() any { return new(task) }}
	framePool = sync.Pool{New: func() any { return new(frame) }}
)

func newTask(fn func(*Context), f *frame) *task {
	t := taskPool.Get().(*task)
	t.fn, t.frame = fn, f
	return t
}

// freeTask recycles a retired fn task. Range tasks are left to the garbage
// collector instead: the peel protocol recognizes its re-published remainder
// by comparing task pointers, so recycling a finished range task into a new
// fn task could alias a pointer a peeling worker still compares against
// (the pool would hand the address to a Spawn on the same worker, whose
// push would then satisfy the peeler's identity check for a task that is no
// longer its remainder). Range tasks are rare — O(splits), not O(n/grain) —
// so the allocation is noise.
func freeTask(t *task) {
	if t.loop != nil {
		t.loop = nil
		return
	}
	t.fn, t.frame = nil, nil
	taskPool.Put(t)
}

// newRangeTask allocates a fresh (never pooled — see freeTask) range task
// covering loop iterations [lo, hi).
func newRangeTask(ls *loopState, lo, hi int) *task {
	return &task{loop: ls, lo: lo, hi: hi}
}

func newFrame(parent *frame, rs *runState, ordinal, depth int32) *frame {
	f := framePool.Get().(*frame)
	f.parent, f.run = parent, rs
	f.ordinal, f.depth = ordinal, depth
	return f
}

// freeFrame resets every field a previous life could have set before
// returning the frame to the pool. pending is zero at retirement (the frame
// joined), but a skipped frame may carry stale bookkeeping, so reset
// explicitly.
func freeFrame(f *frame) {
	f.parent, f.run = nil, nil
	f.pending.Store(0)
	f.ordinal, f.nextOrdinal, f.depth = 0, 0, 0
	f.sealed, f.childViews = nil, nil
	f.pieces, f.nextLoopSeq = nil, 0
	f.spawnSpan = 0
	f.spanChild.Store(0)
	framePool.Put(f)
}
