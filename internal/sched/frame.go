package sched

import (
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// task is one unit of stealable work: either a spawned function together
// with the frame it will execute in, or — when loop is non-nil — a range
// task covering the loop iterations [lo, hi) of a lazily-split cilk_for
// (see loop.go). Range tasks are never pooled: the peel protocol identifies
// a re-published remainder by pointer, so a range task's address must stay
// unique for as long as any worker still holds a reference to it.
type task struct {
	fn    func(*Context)
	frame *frame

	// Range-task fields (fn == nil, loop != nil). Only the worker that
	// exclusively holds the task (its current executor, or a thief that
	// just took it) may read or mutate lo and hi; the deque's push/steal
	// synchronization publishes them to the next holder.
	loop   *loopState
	lo, hi int
}

// frame is the activation record of one spawned function (§3.2: "the
// subroutine's activation frame containing its local variables"). It tracks
// the join counter for the frame's outstanding spawned children and the
// ordered reducer-view bookkeeping needed to fold hyperobject views in
// serial order at the next sync.
type frame struct {
	parent *frame
	run    *runState

	// pending counts spawned, un-synced children. It is incremented by the
	// frame's own strand at Spawn and decremented by each child when its
	// task completes.
	pending atomic.Int32

	// ordinal is this frame's index in its parent's spawn order within the
	// parent's current sync region.
	ordinal int32

	// nextOrdinal counts children spawned in the current sync region. Only
	// the frame's own strand touches it.
	nextOrdinal int32

	// depth is the spawn depth below the root, for stack statistics.
	depth int32

	// sealed[k] holds the parent strand's view segment accumulated
	// immediately before spawning child k. Only the frame's own strand
	// touches it (seal at Spawn, fold at Sync), so it needs no lock.
	sealed []viewMap

	// childViews[k] holds child k's final folded views. Children deposit
	// concurrently, so it is guarded by redMu; the fold reads it only
	// after the join counter reaches zero.
	redMu      sync.Mutex
	childViews []viewMap

	// pieces holds the view deposits of a lazy cilk_for's range pieces
	// (see loop.go). Unlike spawned children, pieces are created at split
	// time — when a thief takes part of the iteration space — so their
	// serial position cannot be a dense spawn ordinal assigned up front.
	// Each deposit instead carries the loop's sequence number within this
	// frame and the first iteration index the depositing execution covered;
	// sorting by (seq, start) at fold time reconstructs the exact serial
	// order. Guarded by redMu, like childViews.
	pieces []pieceDeposit

	// nextLoopSeq numbers the lazy loops rooted at this frame in strand
	// order, so two sequential loops in one sync region cannot interleave
	// their piece deposits. Only the frame's own strand touches it.
	nextLoopSeq int32

	// Hyperobject-activity flags, split by writer so they stay race-free:
	// sealedViews is set by the frame's own strand when Spawn seals a
	// segment; depositedViews is set under redMu by children and range
	// pieces depositing views (the parent's unlocked read is ordered by the
	// join-counter decrement that follows every deposit). While both are
	// false at a sync the fold — redMu, segment walk, piece sort — is
	// skipped entirely, so a run that touches no hyperobjects pays two
	// boolean tests per sync (work-first: the common case must not fund the
	// rare one).
	sealedViews    bool
	depositedViews bool

	// Online work/span fields (see obs.go), live only on observed runs.
	// spawnSpan is the parent's local span at the instant this frame was
	// spawned (written by the parent's strand before the task is pushed,
	// published by the deque's synchronization). spanChild is the max over
	// completed children of spawnSpan_child + span_child, deposited
	// concurrently by the children and folded by this frame's Sync.
	spawnSpan int64
	spanChild atomic.Int64

	// t and ctx are the frame's spawn task and execution Context, embedded
	// so one allocation covers all three objects a spawn needs (the
	// work-first principle: a spawn should cost a small constant over a
	// call, and allocator trips are most of that constant). t.frame and
	// ctx.frame are self-links, set once at allocation and preserved across
	// pool lives. Range tasks are never embedded — the peel protocol needs
	// their address to be independent of any frame (see task) — and the
	// serial elision's root frame leaves both fields unused.
	t   task
	ctx Context
}

// pieceDeposit is one range piece's folded views, positioned in serial
// order by the owning loop's sequence number and the piece's start index.
type pieceDeposit struct {
	seq   int32
	start int
	views viewMap
}

// depositPiece records the views accumulated by one execution episode of a
// range piece, beginning at iteration index start. Called by whichever
// worker ran the episode, before it signals the loop frame's join counter.
func (f *frame) depositPiece(seq int32, start int, views viewMap) {
	if len(views) == 0 {
		return
	}
	f.redMu.Lock()
	if rt := f.run.rt; rt != nil && rt.sanChecks() {
		// Iteration indexes are consumed exactly once, so two episodes of
		// one loop can never begin at the same index: a duplicate (seq,
		// start) deposit means some piece executed twice.
		for i := range f.pieces {
			if f.pieces[i].seq == seq && f.pieces[i].start == start {
				f.redMu.Unlock()
				rt.sanViolation("duplicate range-piece deposit (loop %d, start %d) — a piece executed twice", seq, start)
				f.redMu.Lock()
				break
			}
		}
	}
	f.pieces = append(f.pieces, pieceDeposit{seq: seq, start: start, views: views})
	f.depositedViews = true
	f.redMu.Unlock()
}

// sealSegment records the strand's current views as the segment preceding
// child k in serial order. Called only by the frame's own strand.
func (f *frame) sealSegment(k int32, views viewMap) {
	f.sealed = storeAt(f.sealed, int(k), views)
	f.sealedViews = true
}

// depositChildViews records child k's final views. Called by the child's
// worker when the child's task completes.
func (f *frame) depositChildViews(k int32, views viewMap) {
	f.redMu.Lock()
	if rt := f.run.rt; rt != nil && rt.sanChecks() && int(k) < len(f.childViews) && f.childViews[k] != nil {
		// Each spawn ordinal belongs to exactly one child task; a second
		// deposit at the same ordinal means that task completed twice.
		f.redMu.Unlock()
		rt.sanViolation("duplicate reducer-view deposit for child ordinal %d — a task completed twice", k)
		f.redMu.Lock()
	}
	f.childViews = storeAt(f.childViews, int(k), views)
	f.depositedViews = true
	f.redMu.Unlock()
}

// storeAt grows s as needed so that s[k] = v.
func storeAt(s []viewMap, k int, v viewMap) []viewMap {
	for len(s) <= k {
		s = append(s, nil)
	}
	s[k] = v
	return s
}

// foldViews combines, in exact serial order, all view segments of the
// current sync region — seg₀ ⊕ child₀ ⊕ seg₁ ⊕ child₁ ⊕ … ⊕ current —
// and returns the folded map. Must be called only after the join counter
// has reached zero, so no child is concurrently depositing.
//
// When the region ran lazy loops, their stolen pieces fold after current,
// ordered by (loop sequence, start index). This is exactly serial order for
// the canonical shape — a loop whose frame is private to it (internal/pfor
// wraps every loop in a Call) — because the strand's own accumulation covers
// the loop prefix it executed inline, and every deposited piece covers a
// strictly later contiguous range.
func (f *frame) foldViews(current viewMap) viewMap {
	f.redMu.Lock()
	children := f.childViews
	pieces := f.pieces
	f.redMu.Unlock()
	var acc viewMap
	for k := int32(0); k < f.nextOrdinal; k++ {
		if int(k) < len(f.sealed) {
			acc = mergeViews(acc, f.sealed[k])
		}
		if int(k) < len(children) {
			acc = mergeViews(acc, children[k])
		}
	}
	acc = mergeViews(acc, current)
	if len(pieces) > 0 {
		sort.Slice(pieces, func(i, j int) bool {
			if pieces[i].seq != pieces[j].seq {
				return pieces[i].seq < pieces[j].seq
			}
			return pieces[i].start < pieces[j].start
		})
		for i := range pieces {
			acc = mergeViews(acc, pieces[i].views)
		}
	}
	// Retain the outer arrays' capacity for the frame's next sync region
	// (and next pool life): zero the elements — the folded inner viewMaps
	// may live on, aliased by acc — and truncate. Only the outer []viewMap /
	// []pieceDeposit backing is written here, never an inner viewMap, so the
	// aliasing is safe. No child or piece can be depositing concurrently
	// (the join counter reached zero before the fold), but childViews and
	// pieces take redMu anyway to pair with the depositors' critical
	// sections.
	f.redMu.Lock()
	f.childViews = clearViewMaps(f.childViews)
	for i := range f.pieces {
		f.pieces[i] = pieceDeposit{}
	}
	f.pieces = f.pieces[:0]
	f.depositedViews = false
	f.redMu.Unlock()
	f.sealed = clearViewMaps(f.sealed)
	f.sealedViews = false
	return acc
}

// clearViewMaps nils the elements of an outer view-map array and truncates
// it, retaining the backing array for reuse. The inner viewMaps are shared
// with deposits that outlive the owner (mergeViews reuses its operands), so
// only the outer slots may be cleared.
func clearViewMaps(s []viewMap) []viewMap {
	for i := range s {
		s[i] = nil
	}
	return s[:0]
}

// viewMap holds the hyperobject views of one strand segment, keyed by
// hyperobject identity (a pointer supplied by internal/hyper). Strands
// typically touch at most a handful of hyperobjects, so a small slice with
// linear lookup beats a map on both allocation and access cost.
type viewMap []viewEntry

type viewEntry struct {
	key any
	v   View
}

func (m viewMap) lookup(key any) View {
	for i := range m {
		if m[i].key == key {
			return m[i].v
		}
	}
	return nil
}

// mergeViews folds right into left in order (left ⊕ right), reusing left's
// storage. Either side may be nil.
func mergeViews(left, right viewMap) viewMap {
	if len(right) == 0 {
		return left
	}
	if len(left) == 0 {
		return right
	}
outer:
	for _, re := range right {
		for i := range left {
			if left[i].key == re.key {
				left[i].v = left[i].v.Merge(re.v)
				continue outer
			}
		}
		left = append(left, re)
	}
	return left
}

// View is the per-strand state of a hyperobject (§5): each strand updates a
// private view without synchronization, and when strands join their views
// are combined with Merge, which must be associative. Merge receives the
// view that is later in serial order and returns the combined view (which
// may be the receiver, updated in place).
type View interface {
	Merge(right View) View
}

// Finalizer is implemented by hyperobject keys that want the computation's
// final folded view delivered when the root frame completes.
type Finalizer interface {
	Finalize(v View)
}

// runState tracks one Run invocation: completion signaling, the
// cooperative cancel gate, quarantined panics, and (for RunWithStats)
// per-computation counters.
type runState struct {
	// id identifies the Run invocation, so trace events of concurrent
	// computations sharing the workers can be told apart.
	id    int64
	rt    *Runtime
	stats *runCounters // nil unless submitted via RunWithStats
	done  chan struct{}

	// canceled is the cooperative cancel gate checked at the spawn,
	// task-start, and per-chunk boundaries. cause is the error Run will
	// report; it is written (once) before canceled is raised, so any
	// strand observing canceled==true also observes cause.
	canceled   atomic.Bool
	cancelOnce sync.Once
	cause      error

	// panics quarantines every panic captured in the run, in capture
	// order. The first panic cancels the run; siblings that panic while
	// the run drains are collected rather than lost.
	panicMu sync.Mutex
	panics  []Panic

	// clock is the run's online work/span accounting (see obs.go); nil
	// unless the runtime carries a RunObserver. start is the run's
	// wall-clock submission time, set only when clock is armed.
	clock *runClock
	start time.Time

	// Serving-layer identity and lifecycle (see submit.go). tenant, qos,
	// prio, and memEst echo the submission's options; enqNs/pickedNs are
	// the root's lane enqueue and pickup timestamps (rt.nanots), pickedNs
	// zero until pickup. picked is the admission state machine's
	// queued→running flag, guarded by the admission mutex. stop (the
	// context watcher plus any time-budget cancel) is installed before the
	// root is published and released exactly once via releaseOnce —
	// worker-side at finish, or by the submitter when submission fails.
	tenant      string
	qos         QoSClass
	prio        int
	memEst      int64
	enqNs       int64
	pickedNs    int64
	picked      bool
	stop        func()
	releaseOnce sync.Once

	// Memory accounting and enforcement (see memory.go). memBudget is the
	// run's WithMemoryBudget in bytes (0 = unenforced), fixed before the
	// root is published. sharedMem holds charges made without a worker
	// identity (Submit roots, serial elision); worker charges shard into the
	// runCells. memPeak is the run's live-byte watermark, raised by every
	// budget check (maxStore: any worker's boundary may raise it). memAdm is
	// the amount admission actually charged — the declared estimate, or the
	// tenant's EWMA when pressure distrusts declarations — and is what
	// release refunds.
	memBudget int64
	memAdm    int64
	sharedMem atomic.Int64
	memPeak   atomic.Int64

	// Serial-elision accounting: the elision is one strand, so its counters
	// are plain fields bumped by spawnSerial and published into stats cell 0
	// once, when runSerial finishes — replacing the old per-spawn atomic
	// adds and double maxStore CAS loops. Meaningful only on serial runtimes
	// with stats armed; the elision's live frames are its call depth, so
	// serialMaxDepth carries the MaxLiveFrames watermark too (depth+1).
	serialSpawns   int64
	serialMaxDepth int64
}

// queueLatency reports how long the root waited for pickup (0 until picked).
// Serial elision never enqueues or picks up a root, so both timestamps stay
// zero and the latency reports 0 (Ticket.QueueLatency documents this;
// TestQueueLatencySerialElision pins it). The pickedNs < enqNs guard keeps a
// clock anomaly from ever reporting a negative wait.
func (rs *runState) queueLatency() time.Duration {
	if rs.pickedNs == 0 || rs.pickedNs < rs.enqNs {
		return 0
	}
	return time.Duration(rs.pickedNs - rs.enqNs)
}

// release stops the run's context watcher and returns its admission
// reservation, exactly once. Called worker-side from finish so that
// fire-and-forget tickets still release their resources, and directly on
// submission paths that never reach finish (serial elision, shut-down
// runtime).
func (rs *runState) release() {
	rs.releaseOnce.Do(func() {
		if rs.stop != nil {
			rs.stop()
		}
		// Count budget cancellations here, exactly once per run: several
		// boundary checks may race to install the cause, but only one
		// release runs. canceled's publish order guarantees cause is
		// readable once the flag is up.
		if rs.canceled.Load() && rs.cause == ErrMemoryBudget && rs.rt != nil {
			rs.rt.memBudgetCancels.Add(1)
		}
		rs.rt.adm.release(rs)
	})
}

// runCell is one worker's shard of a run's counters. Each cell is written
// only by the worker whose id indexes it (the serial elision publishes into
// cell 0, once, at run end), so the hot-path updates are single-writer
// load-then-stores — no LOCK'd read-modify-write, and, because cells of
// different workers sit on different cache lines (the pad below), no shared
// cacheline traffic either. That is the point of the sharding: before it,
// every spawn and task of an observed run contended one runCounters struct
// from all workers at once. Readers (snapshot, the quiescence checker) sum
// the counters and max the gauges across cells; the atomics make those
// cross-thread reads well-defined.
type runCell struct {
	spawns        atomic.Int64
	steals        atomic.Int64
	tasksRun      atomic.Int64
	tasksSkipped  atomic.Int64
	liveFrames    atomic.Int64
	maxLiveFrames atomic.Int64
	maxDepth      atomic.Int64
	loopSplits    atomic.Int64
	chunksPeeled  atomic.Int64
	rangeSteals   atomic.Int64
	// memLive/memPeak are the run's live-byte accounting shard (see
	// memory.go): frame bytes and Context.Charge declarations performed by
	// this cell's worker. Refunds may land in a different cell than their
	// charge, so memLive can go negative; only the cross-cell sum means
	// anything. memPeak is raised only on this cell's own positive charges.
	memLive atomic.Int64
	memPeak atomic.Int64
	_       [32]byte // pad 12×8 B of counters to two 64 B cache lines
}

// runCounters is a run's accounting, sharded one cell per worker.
type runCounters struct {
	cells []runCell
}

// newRunCounters sizes the shard array for a runtime with n workers (the
// serial elision has none and gets the single cell its one strand needs).
func newRunCounters(n int) *runCounters {
	if n < 1 {
		n = 1
	}
	return &runCounters{cells: make([]runCell, n)}
}

// liveFrameSum is the run's current live-frame count, summed across cells.
// Exact only at quiescence — a task's +1 and −1 always land in the same
// cell, so the sum settles to zero when the run drains.
func (s *runCounters) liveFrameSum() int64 {
	var n int64
	for i := range s.cells {
		n += s.cells[i].liveFrames.Load()
	}
	return n
}

// snapshot folds the per-run counters into a Stats, summing counts and
// maxing gauges across the worker cells. StealAttempts is zero: failed
// probes are not attributable to one computation. MaxLiveFrames is the
// per-worker high-water mark (the maximum over cells), matching the
// runtime-wide Stats field it mirrors.
func (rs *runState) snapshot() Stats {
	var out Stats
	if s := rs.stats; s != nil {
		for i := range s.cells {
			c := &s.cells[i]
			out.Spawns += c.spawns.Load()
			out.Steals += c.steals.Load()
			out.TasksRun += c.tasksRun.Load()
			out.TasksSkipped += c.tasksSkipped.Load()
			out.LoopSplits += c.loopSplits.Load()
			out.ChunksPeeled += c.chunksPeeled.Load()
			out.RangeSteals += c.rangeSteals.Load()
			if m := c.maxLiveFrames.Load(); m > out.MaxLiveFrames {
				out.MaxLiveFrames = m
			}
			if m := c.maxDepth.Load(); m > out.MaxDepth {
				out.MaxDepth = m
			}
		}
	}
	if cl := rs.clock; cl != nil {
		out.Work = time.Duration(cl.work.Load())
		out.Span = time.Duration(cl.span.Load())
	}
	out.MemLiveBytes = rs.memLiveBytes()
	out.MemPeakBytes = rs.memPeakBytes()
	return out
}

// poison quarantines a panic captured inside the computation and cancels
// the rest of the run (the first panic installs the cancel cause; sibling
// panics are collected alongside it). Must be called from the recovering
// goroutine so the captured stack is the panicking strand's.
func (rs *runState) poison(v any) {
	rs.panicMu.Lock()
	rs.panics = append(rs.panics, Panic{Value: v, Stack: debug.Stack()})
	rs.panicMu.Unlock()
	if rs.rt != nil {
		rs.rt.panicsQuarantined.Add(1)
	}
	rs.cancelWith(errSiblingPanic)
}

// finish marks the run complete and releases everyone awaiting its Ticket.
// It first releases the run's resources (context watcher, admission
// reservation), then retires it from the active table — when the last
// active run drains it broadcasts, so workers that parked mid-run (the
// hunt's third phase) re-check the exit condition; without this, a Shutdown
// issued while the run was still active would wait forever on workers that
// parked after its broadcast. The observer's RunEnd fires strictly before
// the done channel closes, so a caller returning from Ticket.Wait always
// finds its run already reported.
func (rs *runState) finish() {
	rt := rs.rt
	rs.release()
	rt.mu.Lock()
	rt.activeRoots--
	delete(rt.active, rs)
	if rt.activeRoots == 0 {
		rt.cond.Broadcast()
	}
	rt.mu.Unlock()
	if obs := rt.cfg.observer; obs != nil {
		obs.RunEnd(rt.report(rs, rs.snapshot(), rs.err()))
	}
	close(rs.done)
}

// Frame recycling — the spawn path's allocator. A spawn allocates exactly
// one object: a frame, with its task and Context embedded (see frame). The
// fast path is a per-worker freelist accessed with no synchronization at
// all; overflow spills in frameBatchSize blocks to a global sync.Pool
// backstop, and a dry worker refills a whole block from the same backstop,
// carving a fresh contiguous slab on a miss. Routing through a sync.Pool
// keeps the old pool semantics — idle memory still returns to the GC under
// pressure, and the refill path re-balances frames between producer-heavy
// and consumer-heavy workers. Serial elision and Submit run on caller
// goroutines with no worker identity, so they share a plain per-frame
// sync.Pool path (framePool).
//
// Recycling remains safe for the same reason the old global pools were
// (PR 3's GC-safety work): every path that retires a frame owns it
// exclusively by then — ring slots are cleared on pop/steal/batch and
// losing thieves only discard stale pointers, so no one can observe a
// recycled frame (or its embedded task) through the deque.
const (
	// frameBatchSize is the spill/refill transfer unit and the slab carve
	// size; frameLocalCap bounds the private freelist so a consumer-heavy
	// worker (one that mostly joins frames spawned elsewhere) hands its
	// surplus back instead of hoarding it.
	frameBatchSize = 32
	frameLocalCap  = 64
)

// frameSlab boxes one spill/refill batch so the backstop pool moves whole
// batches without a per-transfer slice-header allocation.
type frameSlab struct{ fr [frameBatchSize]*frame }

var (
	// slabPool is the batch backstop between worker freelists. Get returns
	// nil on empty (no New): the caller carves a fresh slab instead.
	slabPool sync.Pool
	// boxPool recirculates emptied slab boxes back to spillers. The flow is
	// one-directional in a producer/consumer phase — spawning workers refill
	// (emptying boxes) while joining workers spill (needing boxes) — so
	// without this return path every spill past the spiller's single cached
	// box would allocate a fresh one: one allocation per frameBatchSize
	// frame crossings, forever.
	boxPool sync.Pool
	// framePool is the shared, worker-less path: serial elision frames,
	// Submit roots, and Call frames on serial runtimes.
	framePool = sync.Pool{New: func() any { return initFrame(new(frame)) }}
)

// initFrame installs the self-links of a freshly allocated frame; they are
// preserved across pool lives.
func initFrame(f *frame) *frame {
	f.t.frame = f
	f.ctx.frame = f
	return f
}

// resetFrame clears every field a previous life could have set, retaining
// the capacity of the outer bookkeeping arrays (their elements are nil'd —
// never the inner viewMaps, which deposits may still alias; see
// clearViewMaps). The strand's own ctx.views header is dropped rather than
// reused: depositChildViews hands that backing array to the parent, so it
// outlives the frame. pending is zero at retirement (the frame joined), but
// a skipped frame may carry stale bookkeeping, so reset explicitly.
func resetFrame(f *frame) {
	f.parent, f.run = nil, nil
	f.pending.Store(0)
	f.ordinal, f.nextOrdinal, f.depth = 0, 0, 0
	f.sealed = clearViewMaps(f.sealed)
	f.childViews = clearViewMaps(f.childViews)
	for i := range f.pieces {
		f.pieces[i] = pieceDeposit{}
	}
	f.pieces = f.pieces[:0]
	f.nextLoopSeq = 0
	f.sealedViews, f.depositedViews = false, false
	f.spawnSpan = 0
	f.spanChild.Store(0)
	if f.t.fn != nil { // already nil'd by runTask on the common path
		f.t.fn = nil
	}
	// The embedded Context resets field-wise rather than by struct store: on
	// the spawn-dense fast path every pointer field is already nil, and the
	// guard turns six barriered pointer writes into one predicted branch.
	// ctx.w and ctx.rt are deliberately left stale — every consumer rebinds
	// them before use (runTask, Call; the shared path nils them in
	// freeFrameShared, which spawnSerial's w==nil contract relies on). A
	// pooled frame thus pins its last worker, which lives as long as the
	// runtime, and the slab pool is GC-cleared, so nothing truly leaks.
	c := &f.ctx
	if c.views != nil || c.ckey != nil {
		c.views = nil
		c.ckey, c.cview = nil, nil
	}
	c.strandStart, c.spanLocal = 0, 0
}

// newFrameShared allocates a frame on the shared (worker-less) path.
func newFrameShared(parent *frame, rs *runState, ordinal, depth int32) *frame {
	f := framePool.Get().(*frame)
	f.parent, f.run = parent, rs
	f.ordinal, f.depth = ordinal, depth
	chargeFrameMem(rs, nil, frameMemBytes)
	return f
}

// freeFrameShared retires a frame on the shared path. Unlike the worker
// freelists, the shared pool nils ctx.w/ctx.rt: spawnSerial hands out the
// embedded Context without rebinding w and relies on w == nil meaning
// serial elision.
func freeFrameShared(f *frame) {
	chargeFrameMem(f.run, nil, -frameMemBytes) // before resetFrame drops f.run
	resetFrame(f)
	f.ctx.w, f.ctx.rt = nil, nil
	framePool.Put(f)
}

// getFrame pops a frame off w's freelist — the spawn fast path: a length
// check, a slice shrink, four stores — refilling a batch from the backstop
// when the list runs dry.
func (w *worker) getFrame(parent *frame, rs *runState, ordinal, depth int32) *frame {
	var f *frame
	if n := len(w.frameFree); n > 0 {
		f = w.frameFree[n-1]
		w.frameFree[n-1] = nil
		w.frameFree = w.frameFree[:n-1]
	} else {
		f = w.refillFrames()
	}
	f.parent, f.run = parent, rs
	f.ordinal, f.depth = ordinal, depth
	chargeFrameMem(rs, w, frameMemBytes)
	return f
}

// putFrame resets f and returns it to w's freelist, spilling one batch to
// the backstop when the list is full.
func (w *worker) putFrame(f *frame) {
	if rs := f.run; rs != nil {
		chargeFrameMem(rs, w, -frameMemBytes) // before resetFrame drops f.run
	}
	resetFrame(f)
	if len(w.frameFree) >= frameLocalCap {
		w.spillFrames()
	}
	w.frameFree = append(w.frameFree, f)
}

// refillFrames restocks a dry freelist: a whole batch from the backstop
// when one is available, else a freshly carved contiguous slab — one
// allocation amortized over frameBatchSize spawns, and frames that retire
// together stay cache-adjacent. Returns one frame for the caller; the rest
// land on the freelist.
func (w *worker) refillFrames() *frame {
	if s, _ := slabPool.Get().(*frameSlab); s != nil {
		bump(&w.ws.poolRefills)
		w.frameFree = append(w.frameFree[:0], s.fr[:frameBatchSize-1]...)
		f := s.fr[frameBatchSize-1]
		s.fr = [frameBatchSize]*frame{} // drop the refs; the box itself is reused
		if w.slabCache == nil {
			w.slabCache = s
		} else {
			boxPool.Put(s)
		}
		return f
	}
	block := make([]frame, frameBatchSize)
	w.frameFree = w.frameFree[:0]
	for i := range block[:frameBatchSize-1] {
		w.frameFree = append(w.frameFree, initFrame(&block[i]))
	}
	return initFrame(&block[frameBatchSize-1])
}

// spillFrames moves the newest frameBatchSize frames of w's freelist into
// the backstop, reusing the worker's cached slab box so a steady-state
// spill/refill cycle allocates nothing.
func (w *worker) spillFrames() {
	s := w.slabCache
	w.slabCache = nil
	if s == nil {
		if s, _ = boxPool.Get().(*frameSlab); s == nil {
			s = new(frameSlab)
		}
	}
	lo := len(w.frameFree) - frameBatchSize
	copy(s.fr[:], w.frameFree[lo:])
	for i := lo; i < len(w.frameFree); i++ {
		w.frameFree[i] = nil
	}
	w.frameFree = w.frameFree[:lo]
	slabPool.Put(s)
	bump(&w.ws.poolSpills)
}

// freeRangeTask retires a consumed range task. Range tasks are never
// pooled: the peel protocol recognizes a re-published remainder by
// comparing task pointers, so recycling a finished range task could alias a
// pointer a peeling worker still compares against. Dropping the loop
// reference (so the loopState can collect promptly) is all the recycling
// they get; range tasks are rare — O(splits), not O(n/grain) — so the
// allocation is noise.
func freeRangeTask(t *task) {
	t.loop = nil
}

// newRangeTask allocates a fresh (never pooled — see freeRangeTask) range
// task covering loop iterations [lo, hi).
func newRangeTask(ls *loopState, lo, hi int) *task {
	return &task{loop: ls, lo: lo, hi: hi}
}
