package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoryBudgetCancelAtChunkBoundary pins the enforcement latency: a run
// whose Charge trips its budget at loop iteration k executes exactly k+1
// iterations — the tripping one finishes its grain, the next chunk boundary
// observes the cancel. One worker and grain 1 make the schedule
// deterministic (no thief can take the remainder).
func TestMemoryBudgetCancelAtChunkBoundary(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()

	const (
		budget = int64(1 << 20)
		tripAt = 7
		n      = 1000
	)
	var iters atomic.Int64
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		c.LoopRange(0, n, 1, func(c *Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				iters.Add(1)
				if i == tripAt {
					c.Charge(2 * budget)
				}
			}
		})
	}, WithMemoryBudget(budget))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if werr := tk.Wait(); !errors.Is(werr, ErrMemoryBudget) {
		t.Fatalf("Wait() = %v, want ErrMemoryBudget", werr)
	}
	if got := iters.Load(); got != tripAt+1 {
		t.Fatalf("ran %d iterations, want exactly %d (trip at %d + its own chunk)",
			got, tripAt+1, tripAt)
	}
	if got := rt.Metrics()["mem_budget_cancels"]; got != 1 {
		t.Fatalf("mem_budget_cancels = %d, want 1", got)
	}
}

// TestMemoryBudgetSpawnBomb: a run whose queued frames alone exceed the
// budget is cancelled — queued-but-unrun spawns are charged at allocation,
// which is exactly the help-first space blowup Cilkmem bounds.
func TestMemoryBudgetSpawnBomb(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()

	// Budget worth ~32 frames; the root tries to spawn far more children
	// than that before any can retire (each blocks briefly).
	budget := 32 * frameMemBytes
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		for i := 0; i < 10000; i++ {
			c.Spawn(func(c *Context) { time.Sleep(time.Microsecond) })
		}
		c.Sync()
	}, WithMemoryBudget(budget))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if werr := tk.Wait(); !errors.Is(werr, ErrMemoryBudget) {
		t.Fatalf("Wait() = %v, want ErrMemoryBudget", werr)
	}
	st := tk.Stats()
	if st.MemPeakBytes <= budget {
		t.Fatalf("MemPeakBytes = %d, want > budget %d", st.MemPeakBytes, budget)
	}
	// Every frame refunds on retirement and the run made no user charges,
	// so the terminal live balance is exactly zero.
	if st.MemLiveBytes != 0 {
		t.Fatalf("terminal MemLiveBytes = %d, want 0", st.MemLiveBytes)
	}
}

// TestMemoryBudgetUnderBudgetCompletes: a balanced run below its budget
// finishes cleanly, refunds to zero, and reports a plausible peak.
func TestMemoryBudgetUnderBudgetCompletes(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()

	const chunk = int64(1 << 10)
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(c *Context) {
				c.Charge(chunk)
				c.Refund(chunk)
			})
		}
		c.Sync()
	}, WithMemoryBudget(1<<20))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if werr := tk.Wait(); werr != nil {
		t.Fatalf("Wait() = %v, want nil", werr)
	}
	st := tk.Stats()
	if st.MemLiveBytes != 0 {
		t.Fatalf("terminal MemLiveBytes = %d, want 0", st.MemLiveBytes)
	}
	if st.MemPeakBytes < chunk {
		t.Fatalf("MemPeakBytes = %d, want >= one chunk %d", st.MemPeakBytes, chunk)
	}
}

// TestMemoryBudgetSerialElision: enforcement works in serial-elision mode —
// a tripping Charge stops subsequent spawns and the Ticket reports
// ErrMemoryBudget.
func TestMemoryBudgetSerialElision(t *testing.T) {
	rt := New(WithSerialElision())
	defer rt.Shutdown()

	var ran int
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		for i := 0; i < 10; i++ {
			c.Spawn(func(c *Context) { ran++ })
			if i == 2 {
				c.Charge(1 << 30)
			}
		}
		c.Sync()
	}, WithMemoryBudget(1<<20))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if werr := tk.Wait(); !errors.Is(werr, ErrMemoryBudget) {
		t.Fatalf("Wait() = %v, want ErrMemoryBudget", werr)
	}
	// Spawns 0..2 ran before the trip; the serial spawn boundary skips the
	// rest.
	if ran != 3 {
		t.Fatalf("ran %d serial spawns, want 3", ran)
	}
}

// tenantMemory reads one tenant's in-flight admission-charged bytes.
func tenantMemory(t *testing.T, rt *Runtime, tenant string) int64 {
	t.Helper()
	for _, tl := range rt.LoadReport().Tenants {
		if tl.Tenant == tenant {
			return tl.Memory
		}
	}
	return 0
}

// TestMemoryRefundAudit is the refund-exactly-once regression: a root
// cancelled before pickup and a run that dies in a panic must both return
// their admission-charged memory exactly once — the tenant's balance settles
// at zero, never negative (a double refund) and never positive (a leak).
func TestMemoryRefundAudit(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()

	// Case 1: cancel before pickup. Block the only worker, queue a charged
	// root behind it, cancel it while queued, then let the worker drain it
	// (skip-but-join still releases the reservation).
	release := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(c *Context) { <-release })
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	victim, err := rt.Submit(ctx, func(c *Context) {}, WithTenant("audit"), WithMemoryBudget(1<<16))
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	if got := tenantMemory(t, rt, "audit"); got != 1<<16 {
		t.Fatalf("queued victim holds %d bytes, want %d", got, 1<<16)
	}
	cancel()
	// The ctx watcher goroutine propagates the cancel asynchronously; hold
	// the blocker until the victim's run is marked canceled, or the worker
	// could pick it up and run it to clean completion first.
	for !victim.rs.canceled.Load() {
		time.Sleep(50 * time.Microsecond)
	}
	close(release)
	if werr := blocker.Wait(); werr != nil {
		t.Fatalf("blocker: %v", werr)
	}
	if werr := victim.Wait(); !errors.Is(werr, ErrCanceled) {
		t.Fatalf("victim Wait() = %v, want ErrCanceled", werr)
	}
	if got := tenantMemory(t, rt, "audit"); got != 0 {
		t.Fatalf("after cancel-before-pickup, tenant holds %d bytes, want exactly 0", got)
	}

	// Case 2: a panicking run. The quarantine path reaches finish → release
	// like a clean run.
	pk, err := rt.Submit(context.Background(), func(c *Context) {
		panic("audit boom")
	}, WithTenant("audit"), WithMemoryBudget(1<<16))
	if err != nil {
		t.Fatalf("submit panicker: %v", err)
	}
	var pe *PanicError
	if werr := pk.Wait(); !errors.As(werr, &pe) {
		t.Fatalf("panicker Wait() = %v, want *PanicError", werr)
	}
	if got := tenantMemory(t, rt, "audit"); got != 0 {
		t.Fatalf("after panic, tenant holds %d bytes, want exactly 0", got)
	}
}

// TestSoftWatermarkShedsBestEffort: above the soft watermark best-effort
// submissions are refused with ErrAdmission while higher classes still get
// in, and the pressure counter records the shed.
func TestSoftWatermarkShedsBestEffort(t *testing.T) {
	rt := New(WithWorkers(2), WithAdmission(AdmissionConfig{SoftMemoryWatermark: 1}))
	defer rt.Shutdown()

	// Park a run inside its body so the live gauge (its running frame) is
	// above the 1-byte watermark for the duration of the test.
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(c *Context) {
		close(started)
		<-release
	})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started

	if _, err := rt.Submit(context.Background(), func(c *Context) {}, WithQoS(QoSBestEffort)); !errors.Is(err, ErrAdmission) {
		t.Fatalf("best-effort submit above soft watermark: err = %v, want ErrAdmission", err)
	}
	tk, err := rt.Submit(context.Background(), func(c *Context) {}, WithQoS(QoSBatch))
	if err != nil {
		t.Fatalf("batch submit above soft watermark refused: %v", err)
	}
	close(release)
	if werr := blocker.Wait(); werr != nil {
		t.Fatalf("blocker: %v", werr)
	}
	if werr := tk.Wait(); werr != nil {
		t.Fatalf("batch run: %v", werr)
	}
	r := rt.MemReport()
	if r.PressureRejected != 1 {
		t.Fatalf("PressureRejected = %d, want 1", r.PressureRejected)
	}
	if r.SoftWatermark != 1 {
		t.Fatalf("MemReport.SoftWatermark = %d, want 1", r.SoftWatermark)
	}
}

// TestHardWatermarkShedsOverEWMARun: above the hard watermark a submission
// cancels the best-effort run whose live memory most exceeds its tenant's
// EWMA — here the only accounted best-effort run, which has no EWMA yet.
func TestHardWatermarkShedsOverEWMARun(t *testing.T) {
	rt := New(WithWorkers(2), WithAdmission(AdmissionConfig{HardMemoryWatermark: 1}))
	defer rt.Shutdown()

	started := make(chan struct{})
	victim, err := rt.Submit(context.Background(), func(c *Context) {
		close(started)
		for !c.Cancelled() {
			time.Sleep(100 * time.Microsecond)
		}
	}, WithQoS(QoSBestEffort), WithStats(), WithTenant("hog"))
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	<-started

	tk, err := rt.Submit(context.Background(), func(c *Context) {}, WithQoS(QoSBatch))
	if err != nil {
		t.Fatalf("batch submit: %v", err)
	}
	if werr := victim.Wait(); !errors.Is(werr, ErrMemoryBudget) {
		t.Fatalf("victim Wait() = %v, want ErrMemoryBudget (hard-watermark shed)", werr)
	}
	if werr := tk.Wait(); werr != nil {
		t.Fatalf("batch run: %v", werr)
	}
	if got := rt.MemReport().BudgetCancels; got != 1 {
		t.Fatalf("BudgetCancels = %d, want 1", got)
	}
}

// TestTenantEWMAFeedsOnMeasuredPeaks: an accounted run's measured peak seeds
// its tenant's EWMA at release, and the admission layer then charges at
// least that footprint under pressure.
func TestTenantEWMAFeedsOnMeasuredPeaks(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()

	const held = int64(1 << 18)
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		c.Charge(held)
		c.Refund(held)
	}, WithTenant("ewma"), WithMemoryBudget(1<<20))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if werr := tk.Wait(); werr != nil {
		t.Fatalf("Wait() = %v", werr)
	}
	var got int64
	for _, tm := range rt.MemReport().Tenants {
		if tm.Tenant == "ewma" {
			got = tm.EWMA
		}
	}
	if got < held {
		t.Fatalf("tenant EWMA = %d, want >= the measured charge %d", got, held)
	}
}

// TestMemLiveBytesGaugeSettles: the runtime-wide gauge reflects live frames
// while a run executes and settles back to zero at quiescence.
func TestMemLiveBytesGaugeSettles(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()

	started := make(chan struct{})
	release := make(chan struct{})
	tk, err := rt.Submit(context.Background(), func(c *Context) {
		close(started)
		<-release
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if got := rt.MemLiveBytes(); got < frameMemBytes {
		t.Fatalf("gauge during run = %d, want >= one frame (%d)", got, frameMemBytes)
	}
	close(release)
	if werr := tk.Wait(); werr != nil {
		t.Fatalf("Wait() = %v", werr)
	}
	if got := rt.MemLiveBytes(); got != 0 {
		t.Fatalf("gauge at quiescence = %d, want 0", got)
	}
}
