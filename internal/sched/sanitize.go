package sched

// This file wires the scheduler sanitizer (internal/schedsan) into the
// runtime: fault-injection lanes at every protocol decision point, the
// continuous invariant checker, and the stall watchdog. The design follows
// the tracer's gating discipline — everything hangs off nil-checked pointers
// resolved at New, so a runtime built without WithSanitize pays one pointer
// test per gated site and the owner's deque hot path (PushBottom/PopBottom)
// is not gated at all.
//
// Division of labour: schedsan owns the fault model (plans, rules, seeded
// lanes, shrinking); this file owns the injection sites, the invariant
// definitions, and the watchdog loop; internal/deque owns its own Gate seam
// so the deque package never imports the scheduler.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cilkgo/internal/deque"
	"cilkgo/internal/schedsan"
)

// WithSanitize arms the scheduler sanitizer: the fault plan in o is injected
// at the runtime's protocol decision points, o.Invariants enables the
// continuous invariant checker, and o.StallAfter enables the stall watchdog.
// Sanitizing observes the parallel schedule and therefore requires a
// parallel runtime; New panics if combined with WithSerialElision.
func WithSanitize(o schedsan.Options) Option {
	return func(c *config) { c.sanitize = &o }
}

// Worker states for the watchdog. The worker publishes rare transitions
// (task start/end, park/unpark) so the watchdog can tell a long-running
// user chunk (stateRunning — never a stall) from a fleet of workers all
// hunting or parked while work is outstanding (a stall).
const (
	stateRunning int32 = iota
	stateHunting
	stateParked
)

var stateNames = [...]string{"running", "hunting", "parked"}

// sanState is the per-runtime sanitizer: the compiled injector, the shared
// producer lane (wake sites have no worker identity), watchdog lifecycle,
// and the latest findings.
type sanState struct {
	opts schedsan.Options
	inj  *schedsan.Injector
	// lane serves producer call sites that are not bound to one worker
	// goroutine (wake can be invoked from any Run caller's strand).
	lane *schedsan.Lane

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu            sync.Mutex
	lastStall     *schedsan.Report
	lastViolation *schedsan.Report
	violations    int64
}

// newSanState compiles the options and wires the lanes and deque gates into
// the (not yet started) workers.
func newSanState(rt *Runtime, o schedsan.Options) *sanState {
	if o.TraceTail <= 0 {
		o.TraceTail = 16
	}
	s := &sanState{opts: o, inj: schedsan.NewInjector(o.Plan), stop: make(chan struct{})}
	s.lane = s.inj.Lane(len(rt.workers))
	for _, w := range rt.workers {
		w.san = s.inj.Lane(w.id)
		w.watch = o.StallAfter > 0
		// The zero state word is stateRunning; a worker is hunting until its
		// first task, and the watchdog must not mistake it for user code.
		w.state.Store(stateHunting)
		w.deque.SetGate(dequeGate{w.san})
	}
	return s
}

// start launches the watchdog, if configured. Called after the workers.
func (s *sanState) start(rt *Runtime) {
	if s.opts.StallAfter <= 0 {
		return
	}
	s.wg.Add(1)
	go s.watchdog(rt)
}

// shut stops the watchdog. Idempotent; safe when no watchdog was started.
func (s *sanState) shut() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// dequeGate adapts a schedsan lane to the deque's Gate seam.
type dequeGate struct{ lane *schedsan.Lane }

var gatePoints = [...]schedsan.Point{
	deque.GateSteal:       schedsan.PointSteal,
	deque.GateBatchClaim:  schedsan.PointBatchClaim,
	deque.GateBatchCAS:    schedsan.PointBatchCAS,
	deque.GateBatchWindow: schedsan.PointBatchWindow,
}

func (g dequeGate) Fail(op deque.GateOp) bool { return g.lane.Fail(gatePoints[op]) }
func (g dequeGate) Delay(op deque.GateOp)     { g.lane.Delay(gatePoints[op]) }

// wakeFault applies the PointWake rules to one producer wakeup: report true
// to swallow it (drop), stretch it (delay), or deliver one extra signal
// first (dup) — the exact perturbations a lost-wakeup bug is sensitive to.
// Producer sites have no worker identity, so decisions come off the shared
// lane.
func (s *sanState) wakeFault(rt *Runtime) bool {
	l := s.lane
	if l.Drop(schedsan.PointWake) {
		return true
	}
	l.Delay(schedsan.PointWake)
	if l.Dup(schedsan.PointWake) && rt.parked.Load() > 0 {
		rt.mu.Lock()
		rt.cond.Signal()
		rt.mu.Unlock()
	}
	return false
}

// sanChecks reports whether the continuous invariant checker is armed.
func (rt *Runtime) sanChecks() bool {
	s := rt.san
	return s != nil && s.opts.Invariants
}

// Sanitizer returns the fault injector installed by WithSanitize, or nil.
// Tests and the fuzzer use it to confirm a plan's faults actually fired.
func (rt *Runtime) Sanitizer() *schedsan.Injector {
	if rt.san == nil {
		return nil
	}
	return rt.san.inj
}

// StallReport returns the most recent stall dump, or nil.
func (rt *Runtime) StallReport() *schedsan.Report {
	s := rt.san
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastStall
}

// ViolationReport returns the most recent invariant-violation report, or
// nil. Populated only when Options.OnViolation is set (the default path
// panics instead).
func (rt *Runtime) ViolationReport() *schedsan.Report {
	s := rt.san
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastViolation
}

// sanViolation reports an invariant violation: a structured report carrying
// the formatted finding plus a full runtime state dump, delivered to
// Options.OnViolation when set and raised as a panic otherwise. Nil-safe
// no-op without a sanitizer, so call sites can be unconditional.
func (rt *Runtime) sanViolation(format string, args ...any) {
	s := rt.san
	if s == nil {
		return
	}
	rep := &schedsan.Report{
		Kind:  "invariant",
		Title: fmt.Sprintf(format, args...),
		Body:  rt.dumpState(),
		When:  time.Now(),
	}
	s.mu.Lock()
	s.violations++
	s.lastViolation = rep
	h := s.opts.OnViolation
	s.mu.Unlock()
	if h != nil {
		h(rep)
		return
	}
	panic(rep.String())
}

// recycleFrame returns f to the worker's freelist unless a PointRecycle
// fault leaks it to the garbage collector instead — legal, and it flushes
// any stale-reuse assumption the recycled fast path might hide. (Tasks ride
// embedded in their frames, so this is the task fault point too.)
func (w *worker) recycleFrame(f *frame) {
	if w.san.Fail(schedsan.PointRecycle) {
		return
	}
	w.putFrame(f)
}

// sanJoin checks a join-counter decrement result: the counter counts
// outstanding children, so observing a negative value means some task
// signalled a join it did not own (a double-join — exactly the failure a
// claim-arbitration or peel-reclaim bug produces).
func (rt *Runtime) sanJoin(n int32, what string, rs *runState) {
	if n < 0 && rt.sanChecks() {
		rt.sanViolation("join counter went negative (%d) signalling %s of run %d — a task joined twice", n, what, rs.id)
	}
}

// sanRunQuiescence checks that a completed run actually quiesced: its live
// frames drain to zero and every spawned task was either run or skipped.
// Frames decrement their live counter strictly after the run's finish
// signal, so the check polls briefly rather than asserting instantly.
func (rt *Runtime) sanRunQuiescence(rs *runState) {
	if !rt.sanChecks() {
		return
	}
	s := rs.stats
	if s == nil {
		return
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for s.liveFrameSum() != 0 {
		if !time.Now().Before(deadline) {
			rt.sanViolation("run %d: %d frames still live after completion", rs.id, s.liveFrameSum())
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
	var spawns, run, skipped int64
	for i := range s.cells {
		c := &s.cells[i]
		spawns += c.spawns.Load()
		run += c.tasksRun.Load()
		skipped += c.tasksSkipped.Load()
	}
	// Loop pieces inflate tasksRun beyond spawns, so only the one-sided
	// bound holds in general: every spawned task must have run or been
	// skipped.
	if run+skipped < spawns {
		rt.sanViolation("run %d: spawns=%d but tasksRun+tasksSkipped=%d — a spawned task never joined",
			rs.id, spawns, run+skipped)
	}
}

// sanVerifyDrained checks the post-shutdown quiescence invariants: no worker
// exited leaving tasks in its deque, the injection queue is empty, no root
// is still active, and no worker is left parked. Together these are the
// "ShutdownDrain never strands a task" guarantee: a worker may exit only
// when closed && activeRoots==0 && inject is empty, and any unexecuted task
// holds its run's join counters above zero, which keeps activeRoots above
// zero — so a stranded task contradicts the exit condition.
func (rt *Runtime) sanVerifyDrained() {
	if !rt.sanChecks() {
		return
	}
	for _, w := range rt.workers {
		if n := w.deque.Size(); n != 0 {
			rt.sanViolation("shutdown: worker %d exited leaving %d tasks in its deque", w.id, n)
		}
	}
	rt.mu.Lock()
	inject, roots, parked := rt.queuedRoots(), rt.activeRoots, rt.parked.Load()
	gauge := rt.injected.Load()
	rt.mu.Unlock()
	if inject != 0 {
		rt.sanViolation("shutdown stranded %d injected root tasks", inject)
	}
	if gauge != int64(inject) {
		rt.sanViolation("shutdown: injected gauge %d disagrees with %d queued roots in lanes", gauge, inject)
	}
	if roots != 0 {
		rt.sanViolation("shutdown with %d computations still active", roots)
	}
	if parked != 0 {
		rt.sanViolation("shutdown left %d workers parked", parked)
	}
	// Affinity mailboxes (domain.go) hold re-injected loop halves; a queued
	// half keeps its loop's join counters above zero, so a stranded one
	// contradicts the exit condition exactly like a stranded deque task.
	if rt.affinity != nil {
		queued := rt.affinityQueuedTotal()
		if queued != 0 {
			rt.sanViolation("shutdown stranded %d tasks in affinity mailboxes", queued)
		}
		if g := rt.affinityQueued.Load(); g != int64(queued) {
			rt.sanViolation("shutdown: affinity gauge %d disagrees with %d queued mailbox tasks", g, queued)
		}
	}
}

// progressCount is the watchdog's global progress vector: it moves whenever
// any worker executes or skips a task, peels a chunk, spawns, or completes a
// steal. A stall is this sum staying flat while work is outstanding.
func (rt *Runtime) progressCount() int64 {
	var n int64
	for _, w := range rt.workers {
		n += w.ws.tasksRun.Load() + w.ws.tasksSkipped.Load() +
			w.ws.chunksPeeled.Load() + w.ws.spawns.Load() + w.ws.steals.Load()
	}
	return n
}

// outstandingWork reports whether any computation is still incomplete.
func (rt *Runtime) outstandingWork() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.activeRoots > 0 || rt.injected.Load() > 0
}

// anyWorkerRunning reports whether some worker is executing user code. A
// long serial chunk keeps its worker in stateRunning with the progress
// vector flat — legitimate, never a stall.
func (rt *Runtime) anyWorkerRunning() bool {
	for _, w := range rt.workers {
		if w.state.Load() == stateRunning {
			return true
		}
	}
	return false
}

// watchdog detects no-global-progress windows: the progress vector flat for
// at least StallAfter while work is outstanding and no worker is running
// user code. On a stall it emits a diagnostic dump (per-worker state, run
// table, recent trace events), increments Stats.Stalls, and rescues the
// runtime by re-broadcasting the scheduler's wakeup — so a lost-wakeup bug
// is reported *and* survived.
func (s *sanState) watchdog(rt *Runtime) {
	defer s.wg.Done()
	interval := s.opts.StallAfter / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := int64(-1)
	flatSince := time.Now()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		p := rt.progressCount()
		if p != last || !rt.outstandingWork() {
			last = p
			flatSince = time.Now()
			continue
		}
		if time.Since(flatSince) < s.opts.StallAfter {
			continue
		}
		if rt.anyWorkerRunning() {
			flatSince = time.Now()
			continue
		}
		rep := &schedsan.Report{
			Kind:  "stall",
			Title: fmt.Sprintf("no scheduler progress for %v with work outstanding", time.Since(flatSince).Round(time.Millisecond)),
			Body:  rt.dumpState(),
			When:  time.Now(),
		}
		rt.stalls.Add(1)
		s.mu.Lock()
		s.lastStall = rep
		s.mu.Unlock()
		if h := s.opts.OnStall; h != nil {
			h(rep)
		} else {
			fmt.Fprintln(os.Stderr, rep.String())
		}
		// Rescue: re-deliver the wakeup every parked worker may have missed.
		// If the stall was a lost signal the runtime resumes; if it is a real
		// livelock the next window reports again.
		rt.mu.Lock()
		rt.cond.Broadcast()
		rt.mu.Unlock()
		flatSince = time.Now()
	}
}

// dumpState renders the diagnostic dump attached to every sanitizer report:
// one line per worker (state, deque depth, counters), the scheduler-global
// queues, the active run table, and — when the tracer is recording — the
// tail of each worker's event timeline.
func (rt *Runtime) dumpState() string {
	var b strings.Builder
	rt.mu.Lock()
	inject, roots, parked := int(rt.injected.Load()), rt.activeRoots, rt.parked.Load()
	runs := make([]int64, 0, len(rt.active))
	for rs := range rt.active {
		runs = append(runs, rs.id)
	}
	closed := rt.closed
	rt.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	fmt.Fprintf(&b, "  runtime: %d workers, %d parked, %d injected roots, %d active runs %v, closed=%v\n",
		len(rt.workers), parked, inject, roots, runs, closed)
	for _, w := range rt.workers {
		st := w.state.Load()
		name := "unknown"
		if int(st) < len(stateNames) {
			name = stateNames[st]
		}
		fmt.Fprintf(&b, "  worker %d: %s deque=%d tasksRun=%d steals=%d/%d failedSweeps=%d\n",
			w.id, name, w.deque.Size(), w.ws.tasksRun.Load(),
			w.ws.steals.Load(), w.ws.stealAttempts.Load(), w.ws.failedSweeps.Load())
	}
	if s := rt.san; s != nil && s.inj.TotalFired() > 0 {
		fmt.Fprintf(&b, "  faults injected: %d (%v)\n", s.inj.TotalFired(), s.inj.Plan())
	}
	if tr := rt.tracer; tr != nil && tr.Enabled() {
		tail := 16
		if s := rt.san; s != nil {
			tail = s.opts.TraceTail
		}
		// Stop drains the timelines race-free (seqlock quiesce); restart so
		// the tracer keeps recording after the dump.
		dump := tr.Stop()
		for i, events := range dump.Workers {
			lo := len(events) - tail
			if lo < 0 {
				lo = 0
			}
			fmt.Fprintf(&b, "  trace worker %d (last %d):", i, len(events)-lo)
			for _, e := range events[lo:] {
				fmt.Fprintf(&b, " %s", e.Kind)
			}
			b.WriteString("\n")
		}
		tr.Start()
	}
	return b.String()
}
