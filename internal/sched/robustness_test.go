package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestPanicInDeeplyNestedChildDrains: a panic deep in the spawn tree must
// surface as a PanicError only after every outstanding task has finished.
func TestPanicInDeeplyNestedChildDrains(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	var completed atomic.Int64
	const width, depth = 4, 5
	var rec func(c *Context, d int)
	rec = func(c *Context, d int) {
		if d == 0 {
			completed.Add(1)
			return
		}
		for i := 0; i < width; i++ {
			i := i
			c.Spawn(func(c *Context) {
				if d == 3 && i == 1 {
					panic(fmt.Sprintf("boom at depth %d", d))
				}
				rec(c, d-1)
			})
		}
		c.Sync()
	}
	err := rt.Run(func(c *Context) { rec(c, depth) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	// A fresh computation on the same runtime must work: no worker died,
	// no task leaked.
	var after int64
	if err := rt.Run(func(c *Context) { fib(c, 12, &after) }); err != nil {
		t.Fatalf("runtime unusable after panic: %v", err)
	}
	if after != fibSerial(12) {
		t.Fatal("wrong result after recovery")
	}
}

// TestPanicInMergeDuringFold: a panic thrown by a reducer's Merge while the
// runtime folds views at a sync is captured like any other panic.
func TestPanicInMergeDuringFold(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	key := &poisonKey{}
	err := rt.Run(func(c *Context) {
		v := &poisonView{}
		c.InstallView(key, v)
		c.Spawn(func(c *Context) {
			c.InstallView(key, &poisonView{})
		})
		c.Sync() // fold calls Merge, which panics
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError from Merge", err)
	}
	if pe.Value != "merge exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

type poisonKey struct{}

func (*poisonKey) Finalize(View) {}

type poisonView struct{}

func (*poisonView) Merge(View) View { panic("merge exploded") }

// TestShutdownIdempotent: calling Shutdown more than once is safe.
func TestShutdownIdempotent(t *testing.T) {
	rt := New(WithWorkers(2))
	rt.Shutdown()
	rt.Shutdown()
}

// TestManyRuntimesSequential: creating and destroying many runtimes leaks
// no workers that would deadlock later runs.
func TestManyRuntimesSequential(t *testing.T) {
	for i := 0; i < 30; i++ {
		rt := New(WithWorkers(3))
		var out int64
		if err := rt.Run(func(c *Context) { fib(c, 10, &out) }); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
	}
}

// TestNestedCallDepth: deeply nested Call frames track depth and fold views
// through every level.
func TestNestedCallDepth(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	key := &fakeKey{}
	const depth = 400
	err := rt.Run(func(c *Context) {
		var rec func(c *Context, d int)
		rec = func(c *Context, d int) {
			if d == 0 {
				appendView(c, key, "x")
				return
			}
			c.Call(func(c *Context) { rec(c, d-1) })
		}
		rec(c, depth)
		if got := c.Depth(); got != 0 {
			t.Errorf("caller depth = %d after calls returned", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := key.final.Load(); got == nil || got.s != "x" {
		t.Fatalf("view lost through nested calls: %v", got)
	}
}

// TestSpawnFromManyGoroutinesRejected is intentionally absent: Contexts are
// documented as strand-confined. Instead verify the supported pattern —
// separate Run calls from separate goroutines — under load.
func TestConcurrentRunsStress(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const runs = 24
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			var out int64
			err := rt.Run(func(c *Context) { fib(c, 12+i%4, &out) })
			if err == nil && out != fibSerial(12+i%4) {
				err = errors.New("wrong result")
			}
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsQuiescentConsistency: after all runs finish, every spawned task
// has run and live-frame counters have returned to zero.
func TestStatsQuiescentConsistency(t *testing.T) {
	rt := New(WithWorkers(4))
	var out int64
	for i := 0; i < 5; i++ {
		if err := rt.Run(func(c *Context) { fib(c, 16, &out) }); err != nil {
			t.Fatal(err)
		}
	}
	rt.Shutdown()
	s := rt.Stats()
	if s.TasksRun != s.Spawns {
		t.Fatalf("TasksRun %d != Spawns %d at quiescence", s.TasksRun, s.Spawns)
	}
	for _, w := range rt.workers {
		if live := w.ws.liveFrames.Load(); live != 0 {
			t.Fatalf("worker %d has %d live frames at quiescence", w.id, live)
		}
	}
}

// TestZeroWorkRun: an empty computation completes and reports clean stats.
func TestZeroWorkRun(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	if err := rt.Run(func(*Context) {}); err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.Spawns != 0 || s.Steals != 0 {
		t.Fatalf("stats = %+v, want all zero", s)
	}
}
