package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// laneTask builds a bare root task for lane unit tests — no runtime, just
// the frame.run fields push/pop read.
func laneTask(cls QoSClass, prio int) *task {
	rs := &runState{qos: cls, prio: prio}
	return &task{fn: func(*Context) {}, frame: &frame{run: rs}}
}

func TestParseQoS(t *testing.T) {
	cases := []struct {
		in   string
		want QoSClass
		ok   bool
	}{
		{"interactive", QoSInteractive, true},
		{"batch", QoSBatch, true},
		{"best-effort", QoSBestEffort, true},
		{"bulk", QoSBatch, false},
		{"", QoSBatch, false},
	}
	for _, c := range cases {
		got, ok := ParseQoS(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseQoS(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	if s := QoSClass(9).String(); s != "invalid" {
		t.Errorf("QoSClass(9).String() = %q", s)
	}
}

// TestLaneDRRWeights: with every class backlogged, each full DRR rotor cycle
// serves exactly weight pops per class, so service converges to 8:4:1.
func TestLaneDRRWeights(t *testing.T) {
	l := &injectLane{}
	const perClass = 64
	for i := 0; i < perClass; i++ {
		for c := 0; c < numQoS; c++ {
			l.push(laneTask(QoSClass(c), 0), QoSClass(c), 0)
		}
	}
	cycle := 0
	for c := 0; c < numQoS; c++ {
		cycle += qosWeights[c]
	}
	// Pop one full cycle at a time while all classes still hold backlog and
	// check the per-class counts match the weights exactly.
	cycles := (perClass / qosWeights[QoSInteractive]) - 1
	for cy := 0; cy < cycles; cy++ {
		var got [numQoS]int
		for i := 0; i < cycle; i++ {
			tk := l.pop()
			if tk == nil {
				t.Fatalf("cycle %d: lane ran dry after %d pops", cy, i)
			}
			got[tk.frame.run.qos]++
		}
		if got != qosWeights {
			t.Fatalf("cycle %d: service %v, want weights %v", cy, got, qosWeights)
		}
	}
}

// TestLanePriorityWithinClass: higher priorities pop first within one class;
// equal priorities keep arrival order; priority never crosses classes.
func TestLanePriorityWithinClass(t *testing.T) {
	l := &injectLane{}
	a := laneTask(QoSBatch, 0)
	b := laneTask(QoSBatch, 5)
	c := laneTask(QoSBatch, 5)
	d := laneTask(QoSBatch, 1)
	for _, tk := range []*task{a, b, c, d} {
		l.push(tk, QoSBatch, tk.frame.run.prio)
	}
	want := []*task{b, c, d, a} // prio 5 (arrival order), 1, 0
	for i, w := range want {
		if got := l.pop(); got != w {
			t.Fatalf("pop %d: got prio %d, want prio %d", i, got.frame.run.prio, w.frame.run.prio)
		}
	}
	if l.pop() != nil {
		t.Fatal("lane not empty after draining")
	}
}

// TestLaneEmptyClassForfeitsDeficit: a class visited while empty resets its
// deficit, so an idle class cannot bank credit and burst later. After the
// interactive queue sat empty through many rotor cycles, a freshly-pushed
// interactive root still only gets its normal weight-8 share per cycle.
func TestLaneEmptyClassForfeitsDeficit(t *testing.T) {
	l := &injectLane{}
	for i := 0; i < 40; i++ {
		l.push(laneTask(QoSBestEffort, 0), QoSBestEffort, 0)
	}
	for i := 0; i < 20; i++ {
		if tk := l.pop(); tk == nil || tk.frame.run.qos != QoSBestEffort {
			t.Fatalf("pop %d: %v", i, tk)
		}
		if l.deficit[QoSInteractive] != 0 {
			t.Fatalf("idle interactive class banked deficit %d", l.deficit[QoSInteractive])
		}
	}
	// Now backlog interactive too: each full cycle serves at most weight-8
	// interactive pops — no banked burst from the idle stretch.
	for i := 0; i < 20; i++ {
		l.push(laneTask(QoSInteractive, 0), QoSInteractive, 0)
	}
	inARow := 0
	for {
		tk := l.pop()
		if tk == nil {
			break
		}
		if tk.frame.run.qos == QoSInteractive {
			inARow++
			if inARow > qosWeights[QoSInteractive] {
				t.Fatalf("interactive served %d in a row, weight is %d", inARow, qosWeights[QoSInteractive])
			}
		} else {
			inARow = 0
		}
	}
}

// TestLaneForPlacement: tenant-labeled submissions hash to a stable lane;
// legacy mode pins everything to lane 0.
func TestLaneForPlacement(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	l := rt.laneFor("tenant-a")
	for i := 0; i < 8; i++ {
		if rt.laneFor("tenant-a") != l {
			t.Fatal("tenant lane placement is not stable")
		}
	}
	seen := map[*injectLane]bool{}
	for i := 0; i < 64; i++ {
		seen[rt.laneFor("")] = true
	}
	if len(seen) != len(rt.lanes) {
		t.Fatalf("round-robin placement hit %d of %d lanes", len(seen), len(rt.lanes))
	}

	lrt := New(WithWorkers(4), WithLegacyInject())
	defer lrt.Shutdown()
	for _, tenant := range []string{"", "a", "b", "c"} {
		if lrt.laneFor(tenant) != lrt.lanes[0] {
			t.Fatalf("legacy inject: tenant %q not on lane 0", tenant)
		}
	}
}

// TestLaneHashDeterministic: tenant→lane placement is a pure function of
// the steal seed and the tenant label. Two runtimes built with the same seed
// must agree on every tenant's lane index; this used to be violated by a
// process-random maphash seed, which broke schedfuzz's trial-reproducibility
// contract and WithStealSeed reproductions. Different seeds must be able to
// disagree (the seed actually feeds the hash), and the placement spreads
// across lanes rather than collapsing onto one.
func TestLaneHashDeterministic(t *testing.T) {
	tenants := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	laneIdx := func(rt *Runtime, tenant string) int {
		l := rt.laneFor(tenant)
		for i, cand := range rt.lanes {
			if cand == l {
				return i
			}
		}
		t.Fatalf("laneFor(%q) returned an unknown lane", tenant)
		return -1
	}
	a := New(WithWorkers(8), WithStealSeed(42))
	b := New(WithWorkers(8), WithStealSeed(42))
	defer a.Shutdown()
	defer b.Shutdown()
	seen := map[int]bool{}
	for _, tenant := range tenants {
		ia, ib := laneIdx(a, tenant), laneIdx(b, tenant)
		if ia != ib {
			t.Fatalf("same-seed runtimes place %q on lanes %d vs %d", tenant, ia, ib)
		}
		seen[ia] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all %d tenants collapsed onto one lane", len(tenants))
	}
	// The raw hash is stable across processes too (no process randomness):
	// pin one value so any accidental reseeding breaks loudly.
	if got := laneHash(42, "alpha"); got != 0xfbad89e016cdcd09 {
		t.Fatalf("laneHash(42, alpha) = %#x, want 0xfbad89e016cdcd09 — placement no longer stable across processes", got)
	}
	if laneHash(42, "alpha") == laneHash(43, "alpha") && laneHash(42, "beta") == laneHash(43, "beta") {
		t.Fatal("steal seed does not feed the lane hash")
	}
}

// TestInteractiveNotStarvedByFlood: end-to-end DRR. One worker, its lane
// pre-loaded with a deep best-effort backlog; an interactive submission must
// be picked up within the first DRR cycle or two, not after the flood.
func TestInteractiveNotStarvedByFlood(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()

	// Block the only worker so submissions pile up in the lane.
	gate := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(*Context) { <-gate })
	if err != nil {
		t.Fatal(err)
	}

	const flood = 200
	var finished atomic.Int64
	var tickets []*Ticket
	for i := 0; i < flood; i++ {
		tk, err := rt.Submit(context.Background(),
			func(*Context) { finished.Add(1) },
			WithQoS(QoSBestEffort), WithTenant("flood"))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	var interactivePos atomic.Int64
	itk, err := rt.Submit(context.Background(),
		func(*Context) { interactivePos.Store(finished.Add(1)) },
		WithQoS(QoSInteractive), WithTenant("ui"))
	if err != nil {
		t.Fatal(err)
	}

	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := itk.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// The single lane's rotor serves at most weight(batch)+weight(best-effort)
	// pops before reaching the interactive class again; allow slack for where
	// the rotor happened to sit, but the flood must not drain first.
	if pos := interactivePos.Load(); pos > 16 {
		t.Fatalf("interactive root finished at position %d of %d — starved by best-effort flood", pos, flood+1)
	}
	if lat := itk.QueueLatency(); lat <= 0 {
		t.Fatalf("interactive QueueLatency = %v, want > 0 after queued pickup", lat)
	}
}

// TestLegacyInjectIsFIFO: with WithLegacyInject the flood drains in strict
// arrival order — the interactive submission lands at the back. This is the
// head-of-line blocking the sharded DRR lanes exist to remove, pinned here
// as the A/B contrast for TestInteractiveNotStarvedByFlood.
func TestLegacyInjectIsFIFO(t *testing.T) {
	rt := New(WithWorkers(1), WithLegacyInject())
	defer rt.Shutdown()

	gate := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(*Context) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	const flood = 50
	var finished atomic.Int64
	for i := 0; i < flood; i++ {
		if _, err := rt.Submit(context.Background(),
			func(*Context) { finished.Add(1) },
			WithQoS(QoSBestEffort)); err != nil {
			t.Fatal(err)
		}
	}
	var interactivePos atomic.Int64
	itk, err := rt.Submit(context.Background(),
		func(*Context) { interactivePos.Store(finished.Add(1)) },
		WithQoS(QoSInteractive), WithPriority(100))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := itk.Wait(); err != nil {
		t.Fatal(err)
	}
	if pos := interactivePos.Load(); pos != flood+1 {
		t.Fatalf("legacy FIFO: interactive finished at position %d, want %d (strict arrival order)", pos, flood+1)
	}
}

// TestQueuedByClassGauge: the per-class queued gauges rise while roots wait
// and return to zero at drain.
func TestQueuedByClassGauge(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	gate := make(chan struct{})
	blocker, err := rt.Submit(context.Background(), func(*Context) { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	var tks []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := rt.Submit(context.Background(), func(*Context) {}, WithQoS(QoSBestEffort))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if n := rt.queuedByClass[QoSBestEffort].Load(); n != 3 {
		t.Fatalf("queuedByClass[best-effort] = %d, want 3", n)
	}
	if n := rt.Metrics()["queued_best_effort"]; n != 3 {
		t.Fatalf("Metrics queued_best_effort = %d, want 3", n)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for rt.injected.Load() != 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("injected gauge stuck at %d after drain", rt.injected.Load())
		}
		time.Sleep(time.Millisecond)
	}
	for c := 0; c < numQoS; c++ {
		if n := rt.queuedByClass[c].Load(); n != 0 {
			t.Fatalf("queuedByClass[%v] = %d after drain, want 0", QoSClass(c), n)
		}
	}
}
