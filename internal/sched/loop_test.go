package sched

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo/internal/trace"
)

// loopRange is the test harness for a lazy loop with its own sync scope:
// the Call wrapper is what internal/pfor emits around every cilk_for.
func loopRange(c *Context, lo, hi, grain int, body func(c *Context, l, h int)) {
	c.Call(func(c *Context) {
		c.LoopRange(lo, hi, grain, body)
	})
}

// checkExactlyOnce asserts every index of counts was hit exactly once.
func checkExactlyOnce(t *testing.T, counts []int32) {
	t.Helper()
	for i := range counts {
		if n := atomic.LoadInt32(&counts[i]); n != 1 {
			t.Fatalf("iteration %d ran %d times, want exactly once", i, n)
		}
	}
}

// TestRangeExactlyOnceStealHeavy is the core exactly-once property of the
// lazy splitting protocol: with many workers, tiny grains, and several loop
// shapes, every index of [lo, hi) executes exactly once no matter how the
// range tasks split, migrate, and get reclaimed. Part of the stress-deque
// CI gate (run repeatedly under -race).
func TestRangeExactlyOnceStealHeavy(t *testing.T) {
	rt := New(WithWorkers(8))
	defer rt.Shutdown()
	for _, tc := range []struct{ n, grain int }{
		{1, 1}, {7, 3}, {1000, 1}, {1000, 7}, {10_000, 4}, {100_003, 64},
	} {
		counts := make([]int32, tc.n)
		var sum atomic.Int64
		err := rt.Run(func(c *Context) {
			loopRange(c, 0, tc.n, tc.grain, func(c *Context, l, h int) {
				for i := l; i < h; i++ {
					atomic.AddInt32(&counts[i], 1)
					sum.Add(int64(i))
				}
			})
		})
		if err != nil {
			t.Fatalf("n=%d grain=%d: %v", tc.n, tc.grain, err)
		}
		checkExactlyOnce(t, counts)
		want := int64(tc.n) * int64(tc.n-1) / 2
		if got := sum.Load(); got != want {
			t.Fatalf("n=%d grain=%d: index sum %d, want %d", tc.n, tc.grain, got, want)
		}
	}
}

// TestRangeExactlyOnceWithSpawns drives the abandon-and-reschedule path: a
// body that spawns leaves its child on top of the published remainder, so
// the peeler's reclaiming pop hits the child, pushes it back, and hands the
// remainder to the scheduler. Iterations and spawned children must each
// still run exactly once.
func TestRangeExactlyOnceWithSpawns(t *testing.T) {
	rt := New(WithWorkers(8))
	defer rt.Shutdown()
	const n = 20_000
	counts := make([]int32, n)
	var children atomic.Int64
	err := rt.Run(func(c *Context) {
		loopRange(c, 0, n, 5, func(c *Context, l, h int) {
			for i := l; i < h; i++ {
				atomic.AddInt32(&counts[i], 1)
				if i%3 == 0 {
					c.Spawn(func(*Context) { children.Add(1) })
				}
			}
			c.Sync()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, counts)
	want := int64((n + 2) / 3)
	if got := children.Load(); got != want {
		t.Fatalf("spawned children ran %d times, want %d", got, want)
	}
}

// TestRangeExactlyOnceNestedLoops runs a lazy loop inside each chunk of a
// lazy loop, so inner range tasks interleave with outer remainders on the
// same deques.
func TestRangeExactlyOnceNestedLoops(t *testing.T) {
	rt := New(WithWorkers(8))
	defer rt.Shutdown()
	const rows, cols = 150, 40
	counts := make([]int32, rows*cols)
	err := rt.Run(func(c *Context) {
		loopRange(c, 0, rows, 2, func(c *Context, l, h int) {
			for i := l; i < h; i++ {
				row := i
				loopRange(c, 0, cols, 3, func(c *Context, jl, jh int) {
					for j := jl; j < jh; j++ {
						atomic.AddInt32(&counts[row*cols+j], 1)
					}
				})
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, counts)
}

// TestRangeExactlyOnceSequentialLoops: two lazy loops in one sync region
// must not interleave or double-run (loop sequence numbers keep their piece
// deposits apart; the join must separate them not at all — both fold at the
// same sync).
func TestRangeExactlyOnceSequentialLoops(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	const n = 5_000
	a := make([]int32, n)
	b := make([]int32, n)
	err := rt.Run(func(c *Context) {
		c.Call(func(c *Context) {
			c.LoopRange(0, n, 8, func(c *Context, l, h int) {
				for i := l; i < h; i++ {
					atomic.AddInt32(&a[i], 1)
				}
			})
			c.LoopRange(0, n, 8, func(c *Context, l, h int) {
				for i := l; i < h; i++ {
					atomic.AddInt32(&b[i], 1)
				}
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, a)
	checkExactlyOnce(t, b)
}

// TestRangeExactlyOnceCancelled: under cancellation the protocol weakens to
// at-most-once — skipped chunks are fine, double-run chunks are not — and
// the run must still drain completely: no iteration may execute after
// RunCtx returns (every in-flight chunk is covered by a join unit).
func TestRangeExactlyOnceCancelled(t *testing.T) {
	rt := New(WithWorkers(8))
	defer rt.Shutdown()
	const n = 100_000
	counts := make([]int32, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	err := rt.RunCtx(ctx, func(c *Context) {
		loopRange(c, 0, n, 8, func(c *Context, l, h int) {
			for i := l; i < h; i++ {
				if started.Add(1) == 256 {
					cancel()
				}
				atomic.AddInt32(&counts[i], 1)
				// The cancel is delivered by a watcher goroutine; give it a
				// chance to land before the loop drains all n iterations.
				time.Sleep(2 * time.Microsecond)
			}
		})
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	ran := 0
	for i := range counts {
		switch atomic.LoadInt32(&counts[i]) {
		case 0:
		case 1:
			ran++
		default:
			t.Fatalf("iteration %d ran %d times under cancellation", i, counts[i])
		}
	}
	if ran >= n {
		t.Fatalf("all %d iterations ran despite cancellation", n)
	}
	if got := started.Load(); int(got) != ran {
		t.Fatalf("started %d vs distinct iterations %d after drain", got, ran)
	}
}

// TestLoopTaskCreationReduction is the headline acceptance criterion: the
// wide light-body loop (n = 1e6 at the auto grain for P=8) must create at
// least 10× fewer tasks than the eager divide-and-conquer recursion, which
// materializes one task per grain-sized leaf whether or not thieves show
// up. Lazily, task creations are 1 + LoopSplits — one per steal-driven
// halving. Scheduling noise can only increase splits, so the best of a few
// trials is the fair measure of the protocol's floor; even the worst trial
// is asserted well under the eager count.
func TestLoopTaskCreationReduction(t *testing.T) {
	const (
		n     = 1_000_000
		p     = 8
		grain = 2048 // pfor.Grain(n, p): min(2048, ceil(n/(8p)))
	)
	eagerTasks := int64((n + grain - 1) / grain) // 489 leaf tasks under eager splitting
	rt := New(WithWorkers(p))
	defer rt.Shutdown()
	best := int64(1 << 62)
	for trial := 0; trial < 3; trial++ {
		var total atomic.Int64
		st, err := rt.RunWithStats(func(c *Context) {
			loopRange(c, 0, n, grain, func(c *Context, l, h int) {
				total.Add(int64(h - l))
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() != n {
			t.Fatalf("trial %d: ran %d iterations, want %d", trial, total.Load(), n)
		}
		if st.ChunksPeeled < eagerTasks {
			t.Fatalf("trial %d: ChunksPeeled = %d, want ≥ %d (every grain must be peeled)",
				trial, st.ChunksPeeled, eagerTasks)
		}
		if st.Spawns != 0 {
			t.Fatalf("trial %d: lazy loop spawned %d tasks", trial, st.Spawns)
		}
		if created := 1 + st.LoopSplits; created < best {
			best = created
		}
	}
	if best*10 > eagerTasks {
		t.Errorf("lazy loop created %d tasks, want ≤ %d (10× below eager's %d)",
			best, eagerTasks/10, eagerTasks)
	}
}

// TestLoopTraceEvents: the tracer's chunk events account for every
// iteration (their Arg fields sum to n), and the loop-split event count
// agrees with the LoopSplits counter.
func TestLoopTraceEvents(t *testing.T) {
	rt := New(WithWorkers(4), WithTracing())
	defer rt.Shutdown()
	const n = 50_000
	rt.Tracer().Start()
	st, err := rt.RunWithStats(func(c *Context) {
		loopRange(c, 0, n, 16, func(c *Context, l, h int) {
			x := 0
			for i := l; i < h; i++ {
				x += i
			}
			_ = x
		})
	})
	tr := rt.Tracer().Stop()
	if err != nil {
		t.Fatal(err)
	}
	var chunkIters, splits int64
	for _, events := range tr.Workers {
		for _, ev := range events {
			switch ev.Kind {
			case trace.KindChunkRun:
				chunkIters += int64(ev.Arg)
			case trace.KindLoopSplit:
				splits++
			}
		}
	}
	if chunkIters != n {
		t.Errorf("chunk-run events cover %d iterations, want %d", chunkIters, n)
	}
	if splits != st.LoopSplits {
		t.Errorf("trace has %d loop-split events, Stats says %d", splits, st.LoopSplits)
	}
	if st.ChunksPeeled < n/16 {
		t.Errorf("ChunksPeeled = %d, want ≥ %d", st.ChunksPeeled, n/16)
	}
}

// orderView is a sched.View recording merge order, for view-protocol tests.
type orderView struct{ xs []int }

func (v *orderView) Merge(right View) View {
	v.xs = append(v.xs, right.(*orderView).xs...)
	return v
}

// TestViewCacheSealBoundary is the regression test for the per-strand view
// cache: a view looked up before a Spawn belongs to the sealed segment, and
// the continuation — a new strand segment — must not be served the cached
// pointer (that would corrupt the serial fold order). After the Sync fold
// the strand must see the merged view, in serial order.
func TestViewCacheSealBoundary(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	key := new(int)
	err := rt.Run(func(c *Context) {
		v1 := &orderView{xs: []int{1}}
		c.InstallView(key, v1)
		if got := c.LookupView(key); got != v1 {
			t.Errorf("LookupView after install = %v, want the installed view", got)
		}
		// Hit the cache once more so a stale entry would definitely be warm.
		if got := c.LookupView(key); got != v1 {
			t.Errorf("cached LookupView = %v, want the installed view", got)
		}
		c.Spawn(func(*Context) {})
		if got := c.LookupView(key); got != nil {
			t.Errorf("view leaked across the Spawn seal boundary: %v", got)
		}
		c.InstallView(key, &orderView{xs: []int{2}})
		c.Sync()
		got, ok := c.LookupView(key).(*orderView)
		if !ok || !reflect.DeepEqual(got.xs, []int{1, 2}) {
			t.Errorf("post-fold view = %+v, want segments merged in serial order [1 2]", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDropView: DropView removes the strand's entry so a later lookup
// misses, and it must also purge the single-entry cache.
func TestDropView(t *testing.T) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	key := new(int)
	err := rt.Run(func(c *Context) {
		v := &orderView{xs: []int{1}}
		c.InstallView(key, v)
		c.LookupView(key) // warm the cache
		c.DropView(key)
		if got := c.LookupView(key); got != nil {
			t.Errorf("LookupView after DropView = %v, want nil", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
