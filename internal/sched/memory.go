package sched

// This file is the runtime's memory-accounting and budget-enforcement layer
// — the enforcement half of the Cilkmem story (internal/cilkmem is the
// analysis half). The model is the same as the analyzer's: a run's live
// memory is the sum of its live activation frames (charged at allocation on
// the spawning strand, refunded when the frame retires) plus whatever the
// program itself declares through Context.Charge/Refund. The accounting
// rides in the same per-worker runCell shards as the PR 9 counters — a
// single-writer load/store per charge on a cache line the worker already
// owns — so a run submitted without stats or a budget pays only a nil check
// per site, and an accounted run pays no cross-worker traffic.
//
// Enforcement is cooperative, at exactly the cancellation layer's
// boundaries (spawn, task start, chunk peel): a run whose live bytes exceed
// its WithMemoryBudget is cancelled skip-but-join with ErrMemoryBudget, so
// an over-budget computation stops growing its spawn tree within one chunk
// boundary but no running strand is ever interrupted. Charges land in the
// worker that performs them while refunds land in the worker that frees, so
// individual cells can go negative; only the cross-cell sum is meaningful,
// and it is exact at every instant.

import (
	"sort"
	"unsafe"

	"cilkgo/internal/schedsan"
)

// ErrMemoryBudget is returned by a run's Ticket when the run was cancelled
// because its measured live memory — frame bytes plus Context.Charge
// declarations — exceeded its WithMemoryBudget. Match with errors.Is.
var ErrMemoryBudget error = &cancelError{msg: "sched: computation exceeded its memory budget"}

// frameMemBytes is what one live activation frame costs the accounting: the
// frame struct itself, with its embedded task and Context. The bookkeeping
// slices a frame grows (sealed views, child views) are charged to the frame
// flat — metering their exact capacity would put an allocator probe on the
// spawn fast path for a second-order term.
const frameMemBytes = int64(unsafe.Sizeof(frame{}))

// chargeFrameMem records one frame allocation (delta = +frameMemBytes) or
// retirement (−frameMemBytes) against the run, in the acting worker's cell —
// or in the run's shared counter when there is no worker (Submit roots,
// serial elision). No-op unless the run carries counters. Queued-but-unrun
// frames are charged like running ones: a spawn bomb's memory is in its
// queued frames, which is exactly what a budget must see.
func chargeFrameMem(rs *runState, w *worker, delta int64) {
	s := rs.stats
	if s == nil {
		return
	}
	if w == nil {
		rs.sharedMem.Add(delta)
		return
	}
	cell := &s.cells[w.id]
	n := cell.memLive.Load() + delta
	cell.memLive.Store(n)
	if delta > 0 {
		maxOwn(&cell.memPeak, n)
	}
}

// memLiveBytes is the run's current live memory: the cross-cell sum plus the
// shared (worker-less) counter. Like liveFrameSum, a single frame's charge
// and refund may land in different cells, so individual cells can be
// negative; the sum is exact.
func (rs *runState) memLiveBytes() int64 {
	n := rs.sharedMem.Load()
	if s := rs.stats; s != nil {
		for i := range s.cells {
			n += s.cells[i].memLive.Load()
		}
	}
	return n
}

// memPeakBytes is the run's measured high-water mark, the sample the
// admission layer's per-tenant EWMA feeds on. For a budgeted run rs.memPeak
// is the true watermark (maintained by every boundary check); otherwise the
// sum of per-cell peaks is a conservative upper bound (each cell's peak
// bounds its live bytes at the true peak instant, so the sum bounds the
// total).
func (rs *runState) memPeakBytes() int64 {
	p := rs.memPeak.Load()
	var sum int64
	if s := rs.stats; s != nil {
		for i := range s.cells {
			sum += s.cells[i].memPeak.Load()
		}
	}
	if sum > p {
		p = sum
	}
	return p
}

// checkBudget is the boundary gate, called at the same spawn / task-start /
// chunk-peel sites as the cancel check. The unbudgeted fast path is one
// plain field load and a branch, inlined at every site.
func (rs *runState) checkBudget(w *worker) {
	if rs.memBudget > 0 {
		rs.checkBudgetSlow(w)
	}
}

func (rs *runState) checkBudgetSlow(w *worker) {
	if rs.canceled.Load() {
		return
	}
	n := rs.memLiveBytes()
	maxStore(&rs.memPeak, n)
	fault := false
	if w != nil {
		// Sanitizer: a forced PointMemCharge failure trips the budget
		// spuriously. Only budget-armed runs ever reach this point, so the
		// fault exercises exactly the ErrMemoryBudget drain path.
		fault = w.san.Fail(schedsan.PointMemCharge)
	}
	if n > rs.memBudget || fault {
		rs.cancelWith(ErrMemoryBudget)
	}
}

// Charge records bytes of memory the calling strand has made live — a big
// allocation the frame model cannot see — against the run's accounting and
// budget. Refund (or Charge with a negative delta) returns it; a strand
// need not refund on the worker that charged. On a budgeted run a positive
// charge is itself a budget check site, so a single oversized allocation is
// caught immediately rather than at the next spawn. Without stats or a
// budget armed the charge still feeds the runtime-wide live gauge
// (Runtime.MemLiveBytes) and costs two plain stores.
func (c *Context) Charge(bytes int64) {
	if bytes == 0 {
		return
	}
	rs := c.frame.run
	if w := c.w; w != nil {
		bumpN(&w.ws.memLive, bytes)
		if s := rs.stats; s != nil {
			cell := &s.cells[w.id]
			n := cell.memLive.Load() + bytes
			cell.memLive.Store(n)
			if bytes > 0 {
				maxOwn(&cell.memPeak, n)
			}
		}
	} else {
		rs.sharedMem.Add(bytes)
	}
	if bytes > 0 {
		rs.checkBudget(c.w)
	}
}

// Refund returns bytes previously recorded with Charge. Refund(n) is
// Charge(-n).
func (c *Context) Refund(bytes int64) { c.Charge(-bytes) }

// MemLiveBytes estimates the runtime's current live computation memory
// across all runs: every worker's live frames at frameMemBytes each, plus
// the net Context.Charge balance. It is a racy gauge — workers update their
// cells while it sums — suitable for watermark decisions, not invariants.
// Always 0 on a serial-elision runtime (no workers).
func (rt *Runtime) MemLiveBytes() int64 {
	var n int64
	for _, w := range rt.workers {
		n += w.ws.liveFrames.Load()*frameMemBytes + w.ws.memLive.Load()
	}
	return n
}

// TenantMem is one tenant's slice of a MemReport.
type TenantMem struct {
	// Tenant is the label submissions carried via WithTenant.
	Tenant string
	// Memory is the tenant's in-flight admission-charged bytes; EWMA is the
	// exponentially weighted mean of its runs' measured peaks — what
	// admission charges a declared-too-small submission above the soft
	// watermark.
	Memory int64
	EWMA   int64
}

// MemReport is a point-in-time snapshot of the runtime's memory posture:
// the live gauge, the configured watermarks, the pressure counters, and the
// per-tenant measured footprints.
type MemReport struct {
	// LiveBytes is Runtime.MemLiveBytes at snapshot time.
	LiveBytes int64
	// SoftWatermark and HardWatermark echo the AdmissionConfig (0 = unset).
	SoftWatermark int64
	HardWatermark int64
	// BudgetCancels counts runs cancelled with ErrMemoryBudget — per-run
	// budgets and hard-watermark shedding together.
	BudgetCancels int64
	// PressureRejected counts best-effort submissions refused because the
	// runtime was above its soft watermark.
	PressureRejected int64
	// Tenants lists per-tenant memory state, sorted by label.
	Tenants []TenantMem
}

// MemReport snapshots the runtime's memory posture.
func (rt *Runtime) MemReport() MemReport {
	r := MemReport{
		LiveBytes:     rt.MemLiveBytes(),
		BudgetCancels: rt.memBudgetCancels.Load(),
	}
	a := rt.adm
	a.mu.Lock()
	if cfg := a.cfg; cfg != nil {
		r.SoftWatermark = cfg.SoftMemoryWatermark
		r.HardWatermark = cfg.HardMemoryWatermark
	}
	r.PressureRejected = a.rejectedMemory
	r.Tenants = make([]TenantMem, 0, len(a.tenants))
	for name, ts := range a.tenants {
		r.Tenants = append(r.Tenants, TenantMem{Tenant: name, Memory: ts.memory, EWMA: ts.memEWMA})
	}
	a.mu.Unlock()
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Tenant < r.Tenants[j].Tenant })
	return r
}

// memWatermarksArmed reports whether submissions need the live gauge. cfg
// is immutable after construction, so no lock.
func (a *admission) memWatermarksArmed() bool {
	cfg := a.cfg
	return cfg != nil && (cfg.SoftMemoryWatermark > 0 || cfg.HardMemoryWatermark > 0)
}

// shedForMemory is the hard-watermark degradation step, run at submission
// time when the live gauge is above HardMemoryWatermark: cancel (with
// ErrMemoryBudget) the best-effort run whose measured live memory most
// exceeds its tenant's EWMA — the one most out of profile. Locks are taken
// strictly in sequence (a.mu, then rt.mu, then neither), never nested, and
// the cancel itself happens outside both.
func (rt *Runtime) shedForMemory(liveBytes int64) {
	cfg := rt.adm.cfg
	if cfg == nil || cfg.HardMemoryWatermark <= 0 || liveBytes <= cfg.HardMemoryWatermark {
		return
	}
	a := rt.adm
	a.mu.Lock()
	ewma := make(map[string]int64, len(a.tenants))
	for name, ts := range a.tenants {
		ewma[name] = ts.memEWMA
	}
	a.mu.Unlock()
	var victim *runState
	var worst int64
	rt.mu.Lock()
	for rs := range rt.active {
		if rs.qos != QoSBestEffort || rs.stats == nil || rs.canceled.Load() {
			continue
		}
		if over := rs.memLiveBytes() - ewma[rs.tenant]; over > 0 && over > worst {
			worst, victim = over, rs
		}
	}
	rt.mu.Unlock()
	if victim != nil {
		victim.cancelWith(ErrMemoryBudget)
	}
}
