// Package sporder implements the SP-order algorithm of Bender, Fineman,
// Gilbert and Leiserson (SPAA 2004) — reference [2] of the paper — which
// maintains series-parallel relationships during a serial execution of a
// fork-join program using two order-maintenance lists.
//
// Every strand receives a node in an "English" order (subtrees
// left-to-right: exactly serial execution order) and a "Hebrew" order
// (spawned subtrees after their parent's continuation). The SP-order
// theorem: strand x precedes strand y in the dag iff x comes before y in
// BOTH orders; otherwise they are logically in parallel.
//
// Compared with SP-bags (internal/spbags), SP-order answers queries between
// ANY two recorded strands — not only a past strand versus the currently
// executing one — at the cost of two order-maintenance insertions per
// spawn. Both algorithms are exposed to the race detector as backends and
// cross-validated against each other and the explicit dag model.
package sporder

import (
	"cilkgo/internal/om"
)

// Strand is a dense handle for one maximal serial instruction sequence.
type Strand int32

// SP maintains the two orders during a serial execution driven by the
// runtime's hook events (FrameStart/FrameEnd/CallStart/CallEnd/Sync).
type SP struct {
	eng, heb   *om.List
	engN, hebN []*om.Node // per-strand order nodes
	frames     []spFrame
}

// spFrame is the per-activation bookkeeping: the frame's current strand and
// the pending join strand of its open sync region.
type spFrame struct {
	cur   Strand
	joinE *om.Node // nil when no spawn has occurred since the last sync
	joinH *om.Node
	join  Strand
}

// New returns an SP structure positioned in the root frame's first strand.
func New() *SP {
	eng, engBase := om.New()
	heb, hebBase := om.New()
	sp := &SP{eng: eng, heb: heb}
	root := sp.newStrand(engBase, hebBase)
	sp.frames = append(sp.frames, spFrame{cur: root})
	return sp
}

func (sp *SP) newStrand(e, h *om.Node) Strand {
	s := Strand(len(sp.engN))
	sp.engN = append(sp.engN, e)
	sp.hebN = append(sp.hebN, h)
	return s
}

func (sp *SP) top() *spFrame {
	if len(sp.frames) == 0 {
		panic("sporder: no active frame (event before FrameStart?)")
	}
	return &sp.frames[len(sp.frames)-1]
}

// FrameStart records entering a spawned child. The parent's strand splits:
// a child strand and a continuation strand are created, ordered
// [parent, child, continuation] in English and [parent, continuation,
// child] in Hebrew, all to the left of the sync region's join strand.
func (sp *SP) FrameStart() {
	parent := sp.top()
	pe, ph := sp.engN[parent.cur], sp.hebN[parent.cur]
	if parent.joinE == nil {
		// First spawn of this sync region: materialize the join strand at
		// the region's right end in both orders. Later insertions all go
		// immediately after nodes left of it, so it stays rightmost.
		parent.joinE = sp.eng.InsertAfter(pe)
		parent.joinH = sp.heb.InsertAfter(ph)
		parent.join = sp.newStrand(parent.joinE, parent.joinH)
	}
	childE := sp.eng.InsertAfter(pe)
	contE := sp.eng.InsertAfter(childE)
	contH := sp.heb.InsertAfter(ph)
	childH := sp.heb.InsertAfter(contH)
	child := sp.newStrand(childE, childH)
	cont := sp.newStrand(contE, contH)
	parent.cur = cont
	sp.frames = append(sp.frames, spFrame{cur: child})
}

// FrameEnd records a spawned child returning; the parent resumes in the
// continuation strand created at the spawn.
func (sp *SP) FrameEnd() {
	sp.popFrame()
}

// CallStart records entering a called (not spawned) function: it executes
// within the caller's strand but opens a fresh sync scope.
func (sp *SP) CallStart() {
	cur := sp.top().cur
	sp.frames = append(sp.frames, spFrame{cur: cur})
}

// CallEnd records a called function returning; the caller's strand
// continues from wherever the called frame's strand ended up.
func (sp *SP) CallEnd() {
	end := sp.popFrame()
	sp.top().cur = end
}

// popFrame removes the top frame and returns its final strand.
func (sp *SP) popFrame() Strand {
	f := sp.top()
	if f.joinE != nil {
		// An implicit sync must have fired before return; tolerate a
		// missing one by applying it, matching the runtime's guarantee.
		sp.syncFrame(f)
	}
	cur := f.cur
	sp.frames = sp.frames[:len(sp.frames)-1]
	return cur
}

// Sync records a sync in the current frame: execution continues in the
// region's join strand, which both orders place after every strand the
// region spawned.
func (sp *SP) Sync() {
	sp.syncFrame(sp.top())
}

func (sp *SP) syncFrame(f *spFrame) {
	if f.joinE == nil {
		return // no spawns since the last sync: nothing to join
	}
	f.cur = f.join
	f.joinE, f.joinH = nil, nil
}

// Current returns the handle of the strand executing right now.
func (sp *SP) Current() int32 { return int32(sp.top().cur) }

// InSeries reports whether the recorded strand x's work is in series with
// the current instruction: either x is the current strand itself (a
// strand's earlier instructions trivially precede its later ones) or x
// precedes the current strand in the dag.
func (sp *SP) InSeries(x int32) bool {
	cur := sp.Current()
	return x == cur || sp.Precedes(Strand(x), Strand(cur))
}

// Precedes reports x ≺ y for any two recorded strands: true iff x comes
// before y in both the English and the Hebrew order (the SP-order theorem).
// Unlike SP-bags, neither strand needs to be the one currently executing.
func (sp *SP) Precedes(x, y Strand) bool {
	if x == y {
		return false
	}
	return sp.eng.Before(sp.engN[x], sp.engN[y]) &&
		sp.heb.Before(sp.hebN[x], sp.hebN[y])
}

// Parallel reports x ‖ y: neither strand precedes the other.
func (sp *SP) Parallel(x, y Strand) bool {
	return x != y && !sp.Precedes(x, y) && !sp.Precedes(y, x)
}

// Strands reports the number of strands created so far.
func (sp *SP) Strands() int { return len(sp.engN) }
