package sporder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cilkgo/internal/dag"
	"cilkgo/internal/spbags"
)

func TestSpawnParallelUntilSync(t *testing.T) {
	sp := New()
	root := Strand(sp.Current())
	sp.FrameStart() // spawn child
	child := Strand(sp.Current())
	sp.Sync() // child's implicit sync (no spawns): no-op
	sp.FrameEnd()
	cont := Strand(sp.Current())
	if !sp.Precedes(root, child) || !sp.Precedes(root, cont) {
		t.Fatal("root strand precedes both child and continuation")
	}
	if !sp.Parallel(child, cont) {
		t.Fatal("completed child runs logically in parallel with the continuation")
	}
	sp.Sync()
	after := Strand(sp.Current())
	if !sp.Precedes(child, after) || !sp.Precedes(cont, after) {
		t.Fatal("after the sync, both child and continuation precede the join strand")
	}
}

func TestSiblingsParallel(t *testing.T) {
	sp := New()
	sp.FrameStart()
	c1 := Strand(sp.Current())
	sp.Sync()
	sp.FrameEnd()
	sp.FrameStart()
	c2 := Strand(sp.Current())
	sp.Sync()
	sp.FrameEnd()
	if !sp.Parallel(c1, c2) {
		t.Fatal("sibling spawned strands must be parallel")
	}
	if sp.InSeries(int32(c1)) {
		t.Fatal("first sibling parallel with current continuation strand")
	}
	sp.Sync()
	if !sp.InSeries(int32(c1)) || !sp.InSeries(int32(c2)) {
		t.Fatal("after sync, both siblings are in series with the join strand")
	}
}

func TestCallSharesStrandButScopesSync(t *testing.T) {
	sp := New()
	before := Strand(sp.Current())
	sp.CallStart()
	if Strand(sp.Current()) != before {
		t.Fatal("a called frame continues the caller's strand")
	}
	sp.FrameStart() // spawn inside the call
	inner := Strand(sp.Current())
	sp.Sync()
	sp.FrameEnd()
	sp.Sync() // the call's sync
	sp.CallEnd()
	after := Strand(sp.Current())
	if !sp.Precedes(inner, after) {
		t.Fatal("the call's sync serializes its child before the caller's continuation")
	}
	if !sp.Precedes(before, after) {
		t.Fatal("caller strand precedes its own continuation")
	}
}

// exec drives SP-order, SP-bags and the dag builder through one random
// serial execution, recording (strand, proc, node) at every instruction.
type exec struct {
	sp   *SP
	bags *spbags.Bags
	pstk []spbags.Proc
	bld  *dag.Builder
	rng  *rand.Rand

	strands []Strand
	procs   []spbags.Proc
	nodes   []dag.Node
}

func (e *exec) step() {
	node := e.bld.Step(1)
	e.strands = append(e.strands, Strand(e.sp.Current()))
	e.procs = append(e.procs, e.pstk[len(e.pstk)-1])
	e.nodes = append(e.nodes, node)
}

func (e *exec) run(depth int) {
	nOps := e.rng.Intn(6) + 1
	for op := 0; op < nOps; op++ {
		switch r := e.rng.Intn(5); {
		case r == 0 && depth < 4: // spawn
			e.bld.Spawn()
			e.sp.FrameStart()
			e.pstk = append(e.pstk, e.bags.NewProc())
			e.run(depth + 1)
			child := e.pstk[len(e.pstk)-1]
			e.bags.Sync(child) // implicit sync
			e.sp.Sync()
			e.pstk = e.pstk[:len(e.pstk)-1]
			e.bld.Return()
			e.sp.FrameEnd()
			e.bags.ReturnSpawned(e.pstk[len(e.pstk)-1], child)
		case r == 1 && depth < 4: // call
			e.bld.Call()
			e.sp.CallStart()
			e.pstk = append(e.pstk, e.bags.NewProc())
			e.run(depth + 1)
			child := e.pstk[len(e.pstk)-1]
			e.bags.Sync(child)
			e.sp.Sync()
			e.pstk = e.pstk[:len(e.pstk)-1]
			e.bld.ReturnCall()
			e.sp.CallEnd()
			e.bags.ReturnCalled(e.pstk[len(e.pstk)-1], child)
		case r == 2: // sync
			e.bld.Sync()
			e.sp.Sync()
			e.bags.Sync(e.pstk[len(e.pstk)-1])
		default:
			e.step()
		}
	}
}

// TestQuickAgainstDagModel: SP-order's any-pair Precedes matches dag
// reachability for every pair of recorded instructions (same-strand pairs
// follow serial order), and its InSeries matches SP-bags at every step.
func TestQuickAgainstDagModel(t *testing.T) {
	f := func(seed int64) bool {
		e := &exec{
			sp:   New(),
			bags: spbags.New(),
			bld:  dag.NewBuilder(),
			rng:  rand.New(rand.NewSource(seed)),
		}
		e.pstk = append(e.pstk, e.bags.NewProc())
		e.run(0)
		g := e.bld.Finish()
		for i := 0; i < len(e.nodes); i++ {
			for j := i + 1; j < len(e.nodes); j++ {
				wantIJ := g.Precedes(e.nodes[i], e.nodes[j])
				wantJI := g.Precedes(e.nodes[j], e.nodes[i])
				si, sj := e.strands[i], e.strands[j]
				if si == sj {
					// Same strand: serial order i before j.
					if !wantIJ || wantJI {
						return false
					}
					continue
				}
				if e.sp.Precedes(si, sj) != wantIJ || e.sp.Precedes(sj, si) != wantJI {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatchesSPBags: the two algorithms agree on the "past work versus
// current instruction" query at every step of random executions.
func TestQuickMatchesSPBags(t *testing.T) {
	f := func(seed int64) bool {
		e := &exec{
			sp:   New(),
			bags: spbags.New(),
			bld:  dag.NewBuilder(),
			rng:  rand.New(rand.NewSource(seed ^ 0x5eed)),
		}
		e.pstk = append(e.pstk, e.bags.NewProc())
		ok := true
		// Drive a random execution with inline checks: after each step,
		// compare every past access's classification under both algorithms.
		var check func(depth int)
		check = func(depth int) {
			nOps := e.rng.Intn(6) + 1
			for op := 0; op < nOps; op++ {
				switch r := e.rng.Intn(5); {
				case r == 0 && depth < 3:
					e.bld.Spawn()
					e.sp.FrameStart()
					e.pstk = append(e.pstk, e.bags.NewProc())
					check(depth + 1)
					child := e.pstk[len(e.pstk)-1]
					e.bags.Sync(child)
					e.sp.Sync()
					e.pstk = e.pstk[:len(e.pstk)-1]
					e.bld.Return()
					e.sp.FrameEnd()
					e.bags.ReturnSpawned(e.pstk[len(e.pstk)-1], child)
				case r == 2:
					e.bld.Sync()
					e.sp.Sync()
					e.bags.Sync(e.pstk[len(e.pstk)-1])
				default:
					e.step()
					for k := 0; k < len(e.strands)-1; k++ {
						if e.bags.InSeries(e.procs[k]) != e.sp.InSeries(int32(e.strands[k])) &&
							e.strands[k] != Strand(e.sp.Current()) {
							ok = false
						}
					}
				}
			}
		}
		check(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPOrderEvents(b *testing.B) {
	sp := New()
	for i := 0; i < b.N; i++ {
		sp.FrameStart()
		sp.Sync()
		sp.FrameEnd()
		if i%8 == 0 {
			sp.Sync()
		}
	}
}
