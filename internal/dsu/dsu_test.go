package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	var f Forest
	a, b, c := f.MakeSet(), f.MakeSet(), f.MakeSet()
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	for _, x := range []int32{a, b, c} {
		if f.Find(x) != x {
			t.Fatalf("Find(%d) = %d, want itself", x, f.Find(x))
		}
	}
	if f.Same(a, b) || f.Same(b, c) || f.Same(a, c) {
		t.Fatal("fresh singletons must be disjoint")
	}
}

func TestUnionBasic(t *testing.T) {
	var f Forest
	a, b, c, d := f.MakeSet(), f.MakeSet(), f.MakeSet(), f.MakeSet()
	f.Union(a, b)
	if !f.Same(a, b) {
		t.Fatal("a and b should be joined")
	}
	if f.Same(a, c) {
		t.Fatal("a and c should be disjoint")
	}
	f.Union(c, d)
	f.Union(b, c)
	for _, x := range []int32{b, c, d} {
		if !f.Same(a, x) {
			t.Fatalf("%d should be joined with a", x)
		}
	}
}

func TestUnionIdempotent(t *testing.T) {
	var f Forest
	a, b := f.MakeSet(), f.MakeSet()
	r1 := f.Union(a, b)
	r2 := f.Union(a, b)
	r3 := f.Union(b, a)
	if r1 != r2 || r2 != r3 {
		t.Fatalf("repeated unions changed representative: %d %d %d", r1, r2, r3)
	}
}

func TestRepresentativeStableAfterFind(t *testing.T) {
	var f Forest
	elems := make([]int32, 100)
	for i := range elems {
		elems[i] = f.MakeSet()
	}
	for i := 1; i < len(elems); i++ {
		f.Union(elems[0], elems[i])
	}
	rep := f.Find(elems[0])
	for _, x := range elems {
		if f.Find(x) != rep {
			t.Fatalf("Find(%d) = %d, want %d", x, f.Find(x), rep)
		}
	}
}

// Property: union-find agrees with a naive label-propagation model under a
// random operation sequence.
func TestQuickAgainstNaiveModel(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 24
		var f Forest
		label := make([]int, n)
		for i := 0; i < n; i++ {
			f.MakeSet()
			label[i] = i
		}
		for op := 0; op < int(nOps); op++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				f.Union(a, b)
				la, lb := label[a], label[b]
				if la != lb {
					for i := range label {
						if label[i] == lb {
							label[i] = la
						}
					}
				}
			} else if f.Same(a, b) != (label[a] == label[b]) {
				return false
			}
		}
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if f.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	var f Forest
	const n = 1 << 16
	for i := 0; i < n; i++ {
		f.MakeSet()
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := int32(rng.Intn(n)), int32(rng.Intn(n))
		f.Union(a, c)
		f.Find(int32(rng.Intn(n)))
	}
}
