// Package dsu provides a disjoint-set union (union-find) forest with
// union by rank and path compression.
//
// It is the substrate of the SP-bags race-detection algorithm (§4 of the
// paper): procedure identifiers are grouped into S-bags and P-bags, and every
// shadow-memory check performs a Find to discover which bag the recorded
// accessor currently belongs to. With union by rank and path compression the
// amortized cost per operation is O(α(n)), which is what makes Cilkscreen's
// "nearly linear time in the serial execution" guarantee possible.
//
// Elements are dense integer handles allocated by MakeSet, so the forest is
// backed by flat slices rather than pointer nodes.
package dsu

// Forest is a growable disjoint-set forest. The zero value is an empty
// forest ready for use.
type Forest struct {
	parent []int32
	rank   []int8
}

// MakeSet allocates a fresh singleton set and returns its element handle.
func (f *Forest) MakeSet() int32 {
	x := int32(len(f.parent))
	f.parent = append(f.parent, x)
	f.rank = append(f.rank, 0)
	return x
}

// Len reports the number of elements ever created.
func (f *Forest) Len() int { return len(f.parent) }

// Find returns the canonical representative of x's set, compressing the
// path from x to the root.
func (f *Forest) Find(x int32) int32 {
	root := x
	for f.parent[root] != root {
		root = f.parent[root]
	}
	for f.parent[x] != root {
		f.parent[x], x = root, f.parent[x]
	}
	return root
}

// Union merges the sets containing x and y and returns the representative of
// the merged set. If they are already one set, that set's representative is
// returned unchanged.
func (f *Forest) Union(x, y int32) int32 {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	switch {
	case f.rank[rx] < f.rank[ry]:
		rx, ry = ry, rx
	case f.rank[rx] == f.rank[ry]:
		f.rank[rx]++
	}
	f.parent[ry] = rx
	return rx
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int32) bool { return f.Find(x) == f.Find(y) }
