package pfor_test

import (
	"fmt"
	"strings"
	"testing"

	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
)

// hookLog records the serial-elision hook stream interleaved with loop-body
// markers, so tests can pin where iterations land between the parallel
// control events.
type hookLog struct{ events []string }

func (h *hookLog) Spawn()         { h.events = append(h.events, "SP") }
func (h *hookLog) FrameStart()    { h.events = append(h.events, "FS") }
func (h *hookLog) FrameEnd()      { h.events = append(h.events, "FE") }
func (h *hookLog) Sync()          { h.events = append(h.events, "SY") }
func (h *hookLog) CallStart()     { h.events = append(h.events, "CS") }
func (h *hookLog) CallEnd()       { h.events = append(h.events, "CE") }
func (h *hookLog) mark(s string)  { h.events = append(h.events, s) }
func (h *hookLog) String() string { return strings.Join(h.events, " ") }

// TestForGrainHookOrder pins the exact event stream of a cilk_for under the
// serial elision. ForGrain(0, 4, grain=1) is the divide-and-conquer
// recursion of §2: a called frame (CS/CE) wrapping spawned halves, with the
// loop's implicit sync (SY) joining them before CE, and the iterations
// executing in ascending serial order.
func TestForGrainHookOrder(t *testing.T) {
	rec := &hookLog{}
	rt := sched.New(sched.WithSerialElision(), sched.WithHooks(rec))
	err := rt.Run(func(c *sched.Context) {
		pfor.ForGrain(c, 0, 4, 1, func(c *sched.Context, i int) {
			rec.mark(fmt.Sprintf("b%d", i))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Root frame, then the loop's Call: [0,4) spawns [0,2) (which spawns
	// [0,1)), then spawns [2,3), runs iteration 3 itself, and syncs.
	want := "FS CS SP FS SP FS b0 SY FE b1 SY FE SP FS b2 SY FE b3 SY CE SY FE"
	if got := rec.String(); got != want {
		t.Fatalf("hook stream:\n got %s\nwant %s", got, want)
	}
}

// TestNestedForHookStructure runs a cilk_for inside a cilk_for and checks
// the structural invariants of the hook stream rather than one exact
// interleaving: brackets balance, spawned frames are announced, and every
// frame passes its implicit sync before closing.
func TestNestedForHookStructure(t *testing.T) {
	rec := &hookLog{}
	rt := sched.New(sched.WithSerialElision(), sched.WithHooks(rec))
	seen := map[string]bool{}
	err := rt.Run(func(c *sched.Context) {
		pfor.ForGrain(c, 0, 2, 1, func(c *sched.Context, i int) {
			pfor.ForGrain(c, 0, 2, 1, func(c *sched.Context, j int) {
				seen[fmt.Sprintf("%d,%d", i, j)] = true
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ran %d distinct (i,j) iterations, want 4: %v", len(seen), seen)
	}

	var frames, calls, spawns, frameStarts, callStarts int
	prev := ""
	for k, ev := range rec.events {
		switch ev {
		case "SP":
			spawns++
		case "FS":
			frames++
			frameStarts++
			// Every spawned frame is announced by Spawn, except the root
			// frame that opens the stream.
			if k > 0 && prev != "SP" {
				t.Fatalf("event %d: FS preceded by %q, want SP", k, prev)
			}
		case "FE":
			frames--
			if frames < 0 {
				t.Fatalf("event %d: FrameEnd without matching FrameStart", k)
			}
			// A frame's implicit sync fires before it closes.
			if prev != "SY" {
				t.Fatalf("event %d: FE preceded by %q, want SY", k, prev)
			}
		case "CS":
			calls++
			callStarts++
		case "CE":
			calls--
			if calls < 0 {
				t.Fatalf("event %d: CallEnd without matching CallStart", k)
			}
			if prev != "SY" {
				t.Fatalf("event %d: CE preceded by %q, want SY", k, prev)
			}
		}
		prev = ev
	}
	if frames != 0 || calls != 0 {
		t.Fatalf("unbalanced brackets: %d frames, %d calls still open", frames, calls)
	}
	if spawns != frameStarts-1 {
		t.Fatalf("%d spawns for %d non-root frames", spawns, frameStarts-1)
	}
	// One Call per ForGrain invocation: the outer loop plus one inner loop
	// per outer iteration.
	if callStarts != 3 {
		t.Fatalf("saw %d CallStart events, want 3", callStarts)
	}
	if rec.events[len(rec.events)-1] != "FE" {
		t.Fatalf("stream ends with %q, want root FE", rec.events[len(rec.events)-1])
	}
}
