// Package pfor implements the cilk_for construct: parallel loops expressed
// as divide-and-conquer recursion over the iteration space.
//
// §2 of the paper: "A cilk_for can be viewed as divide-and-conquer parallel
// recursion using cilk_spawn and cilk_sync over the iteration space." The
// MIT Cilk predecessor forced programmers to write that recursion by hand
// (§1); this package automates it, including the automatic grain-size
// choice that keeps the spawn overhead an O(1/grain) fraction of the work
// while leaving parallelism at least ~8P.
//
// On the parallel runtime the divide-and-conquer tree is built lazily: a
// loop is submitted as a single splittable range task that the owning worker
// peels chunk by chunk, splitting only when a thief actually steals it (see
// internal/sched/loop.go), so a loop that no thief touches costs ~one deque
// push/pop per grain instead of Θ(n/grain) spawned tasks. The serial elision
// still executes the eager recursion literally — its hook stream is the
// divide-and-conquer dag Cilkview and Cilkscreen analyze.
//
// Like cilk_for, a loop here is a complete fork-join nest: For returns only
// after every iteration has finished (there is an implicit sync), and
// iterations must not depend on one another.
//
// Loops cooperate with the scheduler's cancellation layer: once the
// enclosing run is cancelled (context, deadline, sibling panic, or
// shutdown drain), the recursion stops splitting and remaining chunks are
// skipped — the chunk boundary is a cancel check site, one atomic load per
// chunk, so at most the chunks already executing finish. Iterations that
// did run still fold their reducer views in serial order at the loop's
// sync (see internal/hyper).
package pfor

import (
	"cilkgo/internal/hyper"
	"cilkgo/internal/sched"
)

// maxGrain caps the automatic grain size, mirroring the Cilk++ runtime's
// cap (2048 iterations) that bounds the serial chunk on small machines.
const maxGrain = 2048

// Grain returns the automatic grain size for a loop of n iterations on p
// workers: min(2048, ceil(n/(8p))), at least 1. Chunks of this size keep
// spawn overhead negligible while exposing ≥ ~8P-way parallelism so the
// work-stealing scheduler can balance the loop (§3.1).
func Grain(n, p int) int {
	if p < 1 {
		p = 1
	}
	if n < 1 {
		return 1
	}
	g := (n + 8*p - 1) / (8 * p)
	if g > maxGrain {
		g = maxGrain
	}
	if g < 1 {
		g = 1
	}
	return g
}

// For executes body(c, i) for every i in [lo, hi) as a parallel loop with
// the automatic grain size. It returns after all iterations complete.
func For(c *sched.Context, lo, hi int, body func(c *sched.Context, i int)) {
	ForGrain(c, lo, hi, Grain(hi-lo, c.Runtime().Workers()), body)
}

// ForGrain is For with an explicit grain size: runs of up to grain
// consecutive iterations execute serially within one strand. The loop's
// implicit sync joins only the loop's own iterations, not other children
// the caller may have spawned (the loop body runs in a called frame).
func ForGrain(c *sched.Context, lo, hi, grain int, body func(c *sched.Context, i int)) {
	if grain < 1 {
		grain = 1
	}
	if lo >= hi {
		return
	}
	if c.Runtime().Serial() {
		// The serial elision executes the divide-and-conquer recursion
		// literally, in depth-first order — this is the dag the analysis
		// tools (Cilkview, Cilkscreen) observe through the hooks.
		c.Call(func(c *sched.Context) {
			forRec(c, lo, hi, grain, body)
		})
		return
	}
	// Parallel runtime: one lazily-split range task. The Call gives the loop
	// a private sync scope, so the implicit sync joins exactly the loop's
	// iterations and the reducer fold order is the serial loop's.
	c.Call(func(c *sched.Context) {
		c.LoopRange(lo, hi, grain, func(c *sched.Context, l, h int) {
			for i := l; i < h; i++ {
				body(c, i)
			}
		})
	})
}

// forRec recursively halves [lo, hi), spawning the left half and recursing
// into the right, exactly the divide-and-conquer elision of cilk_for. The
// enclosing called frame issues the implicit sync. A cancelled run stops
// the recursion before each split and before each serial chunk, so no new
// chunk starts once cancellation is observed.
func forRec(c *sched.Context, lo, hi, grain int, body func(c *sched.Context, i int)) {
	for hi-lo > grain {
		if c.Cancelled() {
			return
		}
		mid := lo + (hi-lo)/2
		lo2 := lo
		c.Spawn(func(c *sched.Context) { forRec(c, lo2, mid, grain, body) })
		lo = mid
	}
	if c.Cancelled() {
		return
	}
	for i := lo; i < hi; i++ {
		body(c, i)
	}
}

// Each runs body over every element of s in parallel: body(c, i, &s[i]).
func Each[T any](c *sched.Context, s []T, body func(c *sched.Context, i int, v *T)) {
	For(c, 0, len(s), func(c *sched.Context, i int) { body(c, i, &s[i]) })
}

// For2D executes body(c, i, j) for the product range [lo1,hi1) × [lo2,hi2),
// parallelizing the outer dimension and, when it is too narrow to occupy
// the workers, the inner dimension as well.
func For2D(c *sched.Context, lo1, hi1, lo2, hi2 int, body func(c *sched.Context, i, j int)) {
	p := c.Runtime().Workers()
	if hi1-lo1 >= 8*p {
		For(c, lo1, hi1, func(c *sched.Context, i int) {
			for j := lo2; j < hi2; j++ {
				body(c, i, j)
			}
		})
		return
	}
	For(c, lo1, hi1, func(c *sched.Context, i int) {
		For(c, lo2, hi2, func(c *sched.Context, j int) {
			body(c, i, j)
		})
	})
}

// Reduce executes body(c, i) for every i in [lo, hi) in parallel and folds
// the results with the monoid in ascending index order — a map-reduce over
// the iteration space built on a reducer hyperobject, so no locks and no
// contention are involved and the fold order matches the serial loop's.
// The reducer comes from a per-type pool (hyper.Acquire/Release), so a
// Reduce in steady state does not allocate a fresh hyperobject per call.
func Reduce[T any](c *sched.Context, lo, hi int, m hyper.Monoid[T], body func(c *sched.Context, i int) T) T {
	red := hyper.Acquire(m)
	For(c, lo, hi, func(c *sched.Context, i int) {
		v := red.View(c)
		*v = m.Combine(*v, body(c, i))
	})
	// For has synced, so the calling strand's view holds the full fold.
	out := *red.View(c)
	hyper.Release(c, red)
	return out
}
