package pfor

import (
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"cilkgo/internal/hyper"
	"cilkgo/internal/sched"
)

func runPar(t *testing.T, p int, fn func(*sched.Context)) {
	t.Helper()
	rt := sched.New(sched.WithWorkers(p))
	defer rt.Shutdown()
	if err := rt.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 10000
	counts := make([]atomic.Int32, n)
	runPar(t, 8, func(c *sched.Context) {
		For(c, 0, n, func(_ *sched.Context, i int) {
			counts[i].Add(1)
		})
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForEmptyAndReversedRange(t *testing.T) {
	var ran atomic.Int32
	runPar(t, 2, func(c *sched.Context) {
		For(c, 5, 5, func(_ *sched.Context, i int) { ran.Add(1) })
		For(c, 9, 3, func(_ *sched.Context, i int) { ran.Add(1) })
	})
	if ran.Load() != 0 {
		t.Fatalf("body ran %d times on empty ranges", ran.Load())
	}
}

func TestForGrainOne(t *testing.T) {
	const n = 257 // odd size exercises uneven splits
	var sum atomic.Int64
	runPar(t, 4, func(c *sched.Context) {
		ForGrain(c, 0, n, 1, func(_ *sched.Context, i int) { sum.Add(int64(i)) })
	})
	if want := int64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForNegativeBounds(t *testing.T) {
	var sum atomic.Int64
	runPar(t, 4, func(c *sched.Context) {
		For(c, -100, 100, func(_ *sched.Context, i int) { sum.Add(int64(i)) })
	})
	if sum.Load() != -100 { // -100 included, 100 excluded
		t.Fatalf("sum = %d, want -100", sum.Load())
	}
}

func TestForPreservesReducerOrder(t *testing.T) {
	// cilk_for iterations must fold reducer views in ascending iteration
	// order, exactly as the serial loop would (§5).
	const n = 2000
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	for _, grain := range []int{1, 7, 64, 5000} {
		l := hyper.NewListAppend[int]()
		runPar(t, 8, func(c *sched.Context) {
			ForGrain(c, 0, n, grain, func(c *sched.Context, i int) { l.PushBack(c, i) })
		})
		if got := l.Value(); !reflect.DeepEqual(got, want) {
			t.Fatalf("grain %d: iteration order violated (first few: %v)", grain, got[:10])
		}
	}
}

func TestForSyncScope(t *testing.T) {
	// The loop's implicit sync must not join children the caller spawned
	// before the loop.
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	release := make(chan struct{})
	var slowDone atomic.Bool
	var loopSawSlow atomic.Bool
	err := rt.Run(func(c *sched.Context) {
		c.Spawn(func(*sched.Context) {
			<-release
			slowDone.Store(true)
		})
		For(c, 0, 100, func(_ *sched.Context, i int) {})
		loopSawSlow.Store(slowDone.Load())
		close(release)
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if loopSawSlow.Load() {
		t.Fatal("cilk_for sync joined the caller's unrelated child")
	}
}

func TestEach(t *testing.T) {
	s := make([]int, 1000)
	runPar(t, 4, func(c *sched.Context) {
		Each(c, s, func(_ *sched.Context, i int, v *int) { *v = i * i })
	})
	for i, v := range s {
		if v != i*i {
			t.Fatalf("s[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestFor2D(t *testing.T) {
	const r, cNum = 37, 41
	var grid [r][cNum]atomic.Int32
	runPar(t, 4, func(c *sched.Context) {
		For2D(c, 0, r, 0, cNum, func(_ *sched.Context, i, j int) {
			grid[i][j].Add(1)
		})
	})
	for i := 0; i < r; i++ {
		for j := 0; j < cNum; j++ {
			if grid[i][j].Load() != 1 {
				t.Fatalf("cell (%d,%d) visited %d times", i, j, grid[i][j].Load())
			}
		}
	}
}

func TestGrainFormula(t *testing.T) {
	cases := []struct {
		n, p, want int
	}{
		{0, 4, 1},
		{-5, 4, 1},
		{1, 4, 1},
		{32, 4, 1},
		{64, 4, 2},
		{1 << 20, 1, 2048},  // capped
		{1 << 20, 0, 2048},  // p clamped to 1
		{100, 2, 7},         // ceil(100/16)
		{1000000, 64, 1954}, // ceil(1e6/512)
	}
	for _, tc := range cases {
		if got := Grain(tc.n, tc.p); got != tc.want {
			t.Errorf("Grain(%d,%d) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}

// Property: every index in an arbitrary range is visited exactly once for
// arbitrary grain sizes.
func TestQuickCoverage(t *testing.T) {
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	f := func(nRaw, grainRaw uint16) bool {
		n := int(nRaw) % 3000
		grain := int(grainRaw)%300 + 1
		counts := make([]atomic.Int32, n)
		err := rt.Run(func(c *sched.Context) {
			ForGrain(c, 0, n, grain, func(_ *sched.Context, i int) { counts[i].Add(1) })
		})
		if err != nil {
			return false
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	rt := sched.New()
	defer rt.Shutdown()
	s := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *sched.Context) {
			For(c, 0, len(s), func(_ *sched.Context, j int) { s[j] = float64(j) * 1.5 })
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReduceSum(t *testing.T) {
	rt := sched.New(sched.WithWorkers(8))
	defer rt.Shutdown()
	var got int64
	err := rt.Run(func(c *sched.Context) {
		got = Reduce(c, 1, 100001, hyper.FuncMonoid(
			func() int64 { return 0 },
			func(a, b int64) int64 { return a + b },
		), func(_ *sched.Context, i int) int64 { return int64(i) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(100000) * 100001 / 2; got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
}

func TestReduceOrderedConcat(t *testing.T) {
	// A non-commutative monoid proves the fold happens in index order.
	rt := sched.New(sched.WithWorkers(8))
	defer rt.Shutdown()
	var got []int
	err := rt.Run(func(c *sched.Context) {
		got = Reduce(c, 0, 500, hyper.FuncMonoid(
			func() []int { return nil },
			func(a, b []int) []int { return append(a, b...) },
		), func(_ *sched.Context, i int) []int { return []int{i} })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Reduce fold out of order at %d: %d", i, v)
		}
	}
	if len(got) != 500 {
		t.Fatalf("len = %d, want 500", len(got))
	}
}

func TestReduceEmptyRange(t *testing.T) {
	rt := sched.New(sched.WithWorkers(2))
	defer rt.Shutdown()
	var got int
	err := rt.Run(func(c *sched.Context) {
		got = Reduce(c, 3, 3, hyper.FuncMonoid(
			func() int { return 42 },
			func(a, b int) int { return a + b },
		), func(*sched.Context, int) int { return 1 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("empty Reduce = %d, want the identity 42", got)
	}
}
