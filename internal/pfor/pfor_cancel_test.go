package pfor

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo/internal/sched"
)

// TestForCancelSkipsRemainingChunks: a cilk_for whose run is cancelled
// mid-loop abandons the remaining chunks — a bounded number of grains
// (those already executing) finish, and no new chunk starts after RunCtx
// returns.
func TestForCancelSkipsRemainingChunks(t *testing.T) {
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	const n = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := rt.RunCtx(ctx, func(c *sched.Context) {
		ForGrain(c, 0, n, 8, func(c *sched.Context, i int) {
			if started.Add(1) == 64 {
				cancel()
			}
			time.Sleep(5 * time.Microsecond)
		})
	})
	if !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	after := started.Load()
	if after >= n {
		t.Fatalf("all %d iterations ran despite cancellation", n)
	}
	// No chunk may start once RunCtx has returned: the loop's fork-join
	// nest has drained.
	time.Sleep(20 * time.Millisecond)
	if got := started.Load(); got != after {
		t.Fatalf("iterations advanced from %d to %d after RunCtx returned", after, got)
	}
}

// TestForUncancelledCompletes: the cancel gate must not perturb an
// uncancelled loop — every iteration runs exactly once.
func TestForUncancelledCompletes(t *testing.T) {
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	const n = 50_000
	counts := make([]int32, n)
	err := rt.RunCtx(context.Background(), func(c *sched.Context) {
		For(c, 0, n, func(c *sched.Context, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range counts {
		if got != 1 {
			t.Fatalf("iteration %d ran %d times", i, got)
		}
	}
}

// TestPanicInNestedForBody: a panic deep inside a nested cilk_for is
// quarantined, the enclosing loops stop issuing chunks, and the runtime
// survives for the next Run.
func TestPanicInNestedForBody(t *testing.T) {
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	var ran atomic.Int64
	err := rt.Run(func(c *sched.Context) {
		For(c, 0, 64, func(c *sched.Context, i int) {
			For(c, 0, 64, func(c *sched.Context, j int) {
				if i == 3 && j == 7 {
					panic("nested boom")
				}
				ran.Add(1)
			})
		})
	})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "nested boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	// The runtime must stay healthy: a full nested loop afterwards.
	var again atomic.Int64
	if err := rt.Run(func(c *sched.Context) {
		For2D(c, 0, 32, 0, 32, func(c *sched.Context, i, j int) { again.Add(1) })
	}); err != nil {
		t.Fatalf("runtime unusable after nested panic: %v", err)
	}
	if again.Load() != 32*32 {
		t.Fatalf("recovery loop ran %d iterations, want %d", again.Load(), 32*32)
	}
}

// TestReduceOnCancelledRun: Reduce on a cancelled run returns without
// deadlock and yields a partial fold (the loop's sync still joins).
func TestReduceOnCancelledRun(t *testing.T) {
	rt := sched.New(sched.WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := rt.RunCtx(ctx, func(c *sched.Context) {
		t.Error("body ran under a pre-cancelled context")
	})
	if !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
