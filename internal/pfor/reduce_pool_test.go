package pfor

import (
	"testing"

	"cilkgo/internal/hyper"
	"cilkgo/internal/sched"
)

var sumMonoid = hyper.FuncMonoid(
	func() int { return 0 },
	func(a, b int) int { return a + b },
)

// TestReducePooledReuse is the stale-view regression test for the pooled
// reducer: releasing a reducer must drop the calling strand's view-map
// entry, or a later Reduce that draws the same pointer from the pool would
// resurrect the previous reduction's folded view as its starting value.
// Back-to-back Reduce calls on one strand maximize the chance of pointer
// reuse; every call must fold from identity.
func TestReducePooledReuse(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := sched.New(sched.WithWorkers(workers))
		for trial := 0; trial < 20; trial++ {
			var got int
			if err := rt.Run(func(c *sched.Context) {
				got = Reduce(c, 0, 100, sumMonoid, func(c *sched.Context, i int) int { return i })
			}); err != nil {
				t.Fatal(err)
			}
			if want := 99 * 100 / 2; got != want {
				t.Fatalf("workers=%d trial %d: Reduce = %d, want %d (stale pooled view?)",
					workers, trial, got, want)
			}
		}
		// Two Reduces in one computation, same strand, same type: the second
		// is the likeliest to be handed the first's pooled reducer back.
		var first, second int
		if err := rt.Run(func(c *sched.Context) {
			first = Reduce(c, 0, 50, sumMonoid, func(c *sched.Context, i int) int { return i })
			second = Reduce(c, 0, 10, sumMonoid, func(c *sched.Context, i int) int { return i })
		}); err != nil {
			t.Fatal(err)
		}
		if first != 49*50/2 || second != 9*10/2 {
			t.Fatalf("workers=%d: sequential Reduces = %d, %d; want %d, %d",
				workers, first, second, 49*50/2, 9*10/2)
		}
		rt.Shutdown()
	}
}

// TestReduceAllocs pins the allocation profile of a pooled Reduce on the
// serial elision (the deterministic schedule): steady-state cost must not
// include a fresh Reducer per invocation and must stay flat in n — the
// per-iteration path is the cached view lookup, which allocates nothing.
func TestReduceAllocs(t *testing.T) {
	rt := sched.New(sched.WithSerialElision())
	defer rt.Shutdown()
	run := func(n int) func() {
		return func() {
			if err := rt.Run(func(c *sched.Context) {
				Reduce(c, 0, n, sumMonoid, func(c *sched.Context, i int) int { return i })
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(4096)() // warm the reducer/task/frame pools
	small := testing.AllocsPerRun(50, run(256))
	large := testing.AllocsPerRun(50, run(4096))
	// The serial elision of a pooled Reduce costs the Run bookkeeping, the
	// loop's spawn-tree closures/contexts (constant: the auto grain scales
	// with n), and one view per strand segment — ~30 allocations in all.
	// The bound has headroom for pool misses; what it must catch is a
	// reintroduced per-call reducer allocation chain or any per-iteration
	// allocation.
	const bound = 64
	if small > bound || large > bound {
		t.Errorf("Reduce allocs/op = %.0f (n=256), %.0f (n=4096); want ≤ %d", small, large, bound)
	}
	if large > small*2 {
		t.Errorf("Reduce allocs grew with n: %.0f (n=256) → %.0f (n=4096)", small, large)
	}
}

// BenchmarkReduceIteration measures the per-iteration cost of Reduce — the
// view-lookup fast path dominates it — on the parallel runtime.
func BenchmarkReduceIteration(b *testing.B) {
	rt := sched.New(sched.WithWorkers(4))
	defer rt.Shutdown()
	const n = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int
		if err := rt.Run(func(c *sched.Context) {
			got = Reduce(c, 0, n, sumMonoid, func(c *sched.Context, i int) int { return i })
		}); err != nil {
			b.Fatal(err)
		}
		if got != n*(n-1)/2 {
			b.Fatalf("Reduce = %d", got)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/iter")
}
