package hyper

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cilkgo/internal/sched"
)

// runPar executes fn on a fresh parallel runtime with p workers.
func runPar(t *testing.T, p int, seed int64, fn func(*sched.Context)) {
	t.Helper()
	rt := sched.New(sched.WithWorkers(p), sched.WithStealSeed(seed))
	defer rt.Shutdown()
	if err := rt.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// runSerialElision executes fn as the serial elision.
func runSerialElision(t *testing.T, fn func(*sched.Context)) {
	t.Helper()
	rt := sched.New(sched.WithSerialElision())
	if err := rt.Run(fn); err != nil {
		t.Fatalf("Run(serial): %v", err)
	}
}

func TestAdderSum(t *testing.T) {
	sum := NewAdder[int64]()
	const n = 10000
	runPar(t, 8, 1, func(c *sched.Context) {
		var rec func(c *sched.Context, lo, hi int)
		rec = func(c *sched.Context, lo, hi int) {
			if hi-lo <= 16 {
				for i := lo; i < hi; i++ {
					sum.Add(c, int64(i))
				}
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(c *sched.Context) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Sync()
		}
		rec(c, 1, n+1)
	})
	if want := int64(n) * (n + 1) / 2; sum.Value() != want {
		t.Fatalf("sum = %d, want %d", sum.Value(), want)
	}
}

func TestAdderUntouchedIsIdentity(t *testing.T) {
	sum := NewAdder[int]()
	runPar(t, 2, 1, func(c *sched.Context) {})
	if sum.Value() != 0 {
		t.Fatalf("untouched adder = %d, want 0", sum.Value())
	}
}

// inorderWalk spawns a recursive in-order traversal appending indices
// [lo,hi) to the list reducer, the Fig. 7 pattern.
func inorderWalk(c *sched.Context, l ListAppend[int], lo, hi int) {
	if hi-lo == 1 {
		l.PushBack(c, lo)
		return
	}
	mid := (lo + hi) / 2
	c.Spawn(func(c *sched.Context) { inorderWalk(c, l, lo, mid) })
	inorderWalk(c, l, mid, hi)
	c.Sync()
}

func TestListAppendSerialOrder(t *testing.T) {
	// §5: the resulting list must contain the identical elements in the
	// same order as in a serial execution — under every schedule.
	const n = 512
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	for _, p := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 5; seed++ {
			l := NewListAppend[int]()
			runPar(t, p, seed, func(c *sched.Context) { inorderWalk(c, l, 0, n) })
			if got := l.Value(); !reflect.DeepEqual(got, want) {
				t.Fatalf("P=%d seed=%d: order violated: got %v", p, seed, got[:min(16, len(got))])
			}
		}
	}
}

func TestListAppendMatchesSerialElision(t *testing.T) {
	program := func(c *sched.Context, l ListAppend[string]) {
		l.PushBack(c, "pre")
		for i := 0; i < 8; i++ {
			i := i
			c.Spawn(func(c *sched.Context) {
				l.PushBack(c, "child"+string(rune('0'+i)))
			})
			l.PushBack(c, "between"+string(rune('0'+i)))
		}
		c.Sync()
		l.PushBack(c, "post")
	}
	ls := NewListAppend[string]()
	runSerialElision(t, func(c *sched.Context) { program(c, ls) })
	want := ls.Value()

	lp := NewListAppend[string]()
	runPar(t, 6, 42, func(c *sched.Context) { program(c, lp) })
	if got := lp.Value(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel list %v differs from serial %v", got, want)
	}
}

func TestReducerReuseAcrossRuns(t *testing.T) {
	sum := NewAdder[int]()
	rt := sched.New(sched.WithWorkers(2))
	defer rt.Shutdown()
	for run := 1; run <= 3; run++ {
		if err := rt.Run(func(c *sched.Context) { sum.Add(c, run) }); err != nil {
			t.Fatal(err)
		}
		if sum.Value() != run {
			t.Fatalf("run %d: Value = %d, want %d (each run starts fresh)", run, sum.Value(), run)
		}
	}
	sum.Reset()
	if sum.Value() != 0 {
		t.Fatalf("after Reset: Value = %d, want 0", sum.Value())
	}
}

func TestMaxIndexEarliestTie(t *testing.T) {
	m := NewMaxIndex[int]()
	vals := []int{3, 9, 2, 9, 5, 9}
	runPar(t, 4, 3, func(c *sched.Context) {
		var rec func(c *sched.Context, lo, hi int)
		rec = func(c *sched.Context, lo, hi int) {
			if hi-lo == 1 {
				m.Update(c, vals[lo], lo)
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(c *sched.Context) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Sync()
		}
		rec(c, 0, len(vals))
	})
	val, idx, ok := m.Max()
	if !ok || val != 9 || idx != 1 {
		t.Fatalf("Max = (%d,%d,%v), want (9,1,true): ties must keep the serially earliest index", val, idx, ok)
	}
}

func TestMinIndex(t *testing.T) {
	m := NewMinIndex[float64]()
	vals := []float64{2.5, -1, 7, -1, 3}
	runPar(t, 4, 5, func(c *sched.Context) {
		for i, v := range vals {
			i, v := i, v
			c.Spawn(func(c *sched.Context) { m.Update(c, v, i) })
		}
		c.Sync()
	})
	val, idx, ok := m.Min()
	if !ok || val != -1 || idx != 1 {
		t.Fatalf("Min = (%v,%d,%v), want (-1,1,true)", val, idx, ok)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	m := NewMaxIndex[int]()
	runPar(t, 2, 1, func(c *sched.Context) {})
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on untouched reducer reported ok")
	}
}

func TestStringReducer(t *testing.T) {
	s := NewString()
	const n = 64
	runPar(t, 8, 11, func(c *sched.Context) {
		var rec func(c *sched.Context, lo, hi int)
		rec = func(c *sched.Context, lo, hi int) {
			if hi-lo == 1 {
				s.Append(c, string(rune('a'+lo%26)))
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(c *sched.Context) { rec(c, lo, mid) })
			rec(c, mid, hi)
			c.Sync()
		}
		rec(c, 0, n)
	})
	var want strings.Builder
	for i := 0; i < n; i++ {
		want.WriteRune(rune('a' + i%26))
	}
	if s.String() != want.String() {
		t.Fatalf("string = %q, want %q", s.String(), want.String())
	}
}

func TestBitwiseReducers(t *testing.T) {
	and := NewAnder[uint32]()
	or := NewOrer[uint32]()
	xor := NewXorer[uint32]()
	inputs := []uint32{0b1110, 0b0111, 0b1111, 0b0110}
	runPar(t, 4, 2, func(c *sched.Context) {
		for _, x := range inputs {
			x := x
			c.Spawn(func(c *sched.Context) {
				and.And(c, x)
				or.Or(c, x)
				xor.Xor(c, x)
			})
		}
		c.Sync()
	})
	if got := and.Value(); got != 0b0110 {
		t.Fatalf("AND = %b, want 0110", got)
	}
	if got := or.Value(); got != 0b1111 {
		t.Fatalf("OR = %b, want 1111", got)
	}
	if got := xor.Value(); got != 0b1110^0b0111^0b1111^0b0110 {
		t.Fatalf("XOR = %b", got)
	}
}

func TestBitwiseIdentities(t *testing.T) {
	and := NewAnder[uint8]()
	runPar(t, 2, 1, func(c *sched.Context) {})
	if and.Value() != 0xff {
		t.Fatalf("untouched AND identity = %x, want ff", and.Value())
	}
}

func TestMapUnion(t *testing.T) {
	m := NewMapUnion[string, int](func(left, right int) int { return left + right })
	runPar(t, 4, 9, func(c *sched.Context) {
		for i := 0; i < 100; i++ {
			i := i
			c.Spawn(func(c *sched.Context) {
				m.Merge(c, "count", 1, func(old, n int) int { return old + n })
				if i == 0 {
					m.Set(c, "first", 1)
				}
			})
		}
		c.Sync()
	})
	got := m.Value()
	if got["count"] != 100 {
		t.Fatalf(`count = %d, want 100`, got["count"])
	}
	if got["first"] != 1 {
		t.Fatalf(`first = %d, want 1`, got["first"])
	}
}

func TestHolderIsolation(t *testing.T) {
	// Each strand gets private scratch storage; concurrent strands must
	// never observe each other's writes mid-use.
	h := NewHolder(func() []int { return make([]int, 0, 8) })
	ok := NewAnder[int]()
	runPar(t, 8, 4, func(c *sched.Context) {
		for i := 0; i < 200; i++ {
			i := i
			c.Spawn(func(c *sched.Context) {
				buf := h.View(c)
				*buf = (*buf)[:0]
				for j := 0; j < 5; j++ {
					*buf = append(*buf, i)
				}
				good := 1
				for _, v := range *buf {
					if v != i {
						good = 0
					}
				}
				ok.And(c, good)
			})
		}
		c.Sync()
	})
	if ok.Value() != 1 {
		t.Fatal("holder view leaked between concurrent strands")
	}
}

func TestMergeAcrossReducersPanics(t *testing.T) {
	a, b := NewAdder[int](), NewAdder[int]()
	va := &view[int]{r: a.Reducer}
	vb := &view[int]{r: b.Reducer}
	defer func() {
		if recover() == nil {
			t.Fatal("merging views of distinct reducers must panic")
		}
	}()
	va.Merge(vb)
}

// Property: for random spawn/step programs, the parallel list-append result
// equals the serial-elision result, for any seed and worker count.
func TestQuickListOrderMatchesSerial(t *testing.T) {
	type cfg struct {
		Seed    int64
		Workers uint8
	}
	// A program is a pre-generated random tree of actions so that its
	// behaviour is identical under every schedule: emit appends a value,
	// spawn runs a child subtree, sync joins.
	type action struct {
		kind  int // 0 emit, 1 spawn, 2 sync
		value int
		child int // index into nodes, for spawns
	}
	type node struct{ acts []action }
	f := func(tc cfg) bool {
		p := int(tc.Workers)%7 + 1
		rng := rand.New(rand.NewSource(tc.Seed))
		var nodes []node
		nextVal := 0
		var gen func(depth int) int
		gen = func(depth int) int {
			idx := len(nodes)
			nodes = append(nodes, node{})
			var acts []action
			for op := 0; op < 6; op++ {
				switch r := rng.Intn(3); {
				case r == 0 && depth < 4:
					acts = append(acts, action{kind: 1, child: gen(depth + 1)})
				case r == 1:
					acts = append(acts, action{kind: 2})
				default:
					acts = append(acts, action{kind: 0, value: nextVal})
					nextVal++
				}
			}
			nodes[idx].acts = acts
			return idx
		}
		root := gen(0)
		program := func(c *sched.Context, l ListAppend[int]) {
			var walk func(c *sched.Context, idx int)
			walk = func(c *sched.Context, idx int) {
				for _, a := range nodes[idx].acts {
					switch a.kind {
					case 0:
						l.PushBack(c, a.value)
					case 1:
						child := a.child
						c.Spawn(func(c *sched.Context) { walk(c, child) })
					case 2:
						c.Sync()
					}
				}
			}
			walk(c, root)
		}
		serial := NewListAppend[int]()
		rtS := sched.New(sched.WithSerialElision())
		if err := rtS.Run(func(c *sched.Context) { program(c, serial) }); err != nil {
			return false
		}
		par := NewListAppend[int]()
		rtP := sched.New(sched.WithWorkers(p), sched.WithStealSeed(tc.Seed))
		defer rtP.Shutdown()
		if err := rtP.Run(func(c *sched.Context) { program(c, par) }); err != nil {
			return false
		}
		return reflect.DeepEqual(serial.Value(), par.Value())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdderAdd(b *testing.B) {
	rt := sched.New(sched.WithWorkers(1))
	defer rt.Shutdown()
	sum := NewAdder[int64]()
	b.ReportAllocs()
	b.ResetTimer()
	if err := rt.Run(func(c *sched.Context) {
		for i := 0; i < b.N; i++ {
			sum.Add(c, 1)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// TestQuickMonoidLaws: every built-in monoid satisfies identity and
// associativity — the algebraic preconditions §5's ordering guarantee
// rests on.
func TestQuickMonoidLaws(t *testing.T) {
	intAdd := NewAdder[int64]().Reducer
	and := NewAnder[uint64]().Reducer
	or := NewOrer[uint64]().Reducer
	xor := NewXorer[uint64]().Reducer

	checkInt := func(name string, m Monoid[int64]) {
		f := func(a, b, c int64) bool {
			left := m.Combine(m.Combine(a, b), c)
			right := m.Combine(a, m.Combine(b, c))
			if left != right {
				return false
			}
			return m.Combine(m.Identity(), a) == a && m.Combine(a, m.Identity()) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	checkUint := func(name string, m Monoid[uint64]) {
		f := func(a, b, c uint64) bool {
			left := m.Combine(m.Combine(a, b), c)
			right := m.Combine(a, m.Combine(b, c))
			if left != right {
				return false
			}
			return m.Combine(m.Identity(), a) == a && m.Combine(a, m.Identity()) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	checkInt("add", intAdd.monoid)
	checkUint("and", and.monoid)
	checkUint("or", or.monoid)
	checkUint("xor", xor.monoid)
}

// TestQuickListMonoidAssociative: list append is associative and preserves
// element order across any bracketing.
func TestQuickListMonoidAssociative(t *testing.T) {
	m := NewListAppend[int]().Reducer.monoid
	f := func(a, b, c []int) bool {
		ab := m.Combine(append([]int(nil), a...), b)
		left := m.Combine(ab, c)
		bc := m.Combine(append([]int(nil), b...), c)
		right := m.Combine(append([]int(nil), a...), bc)
		return reflect.DeepEqual(left, right) || (len(left) == 0 && len(right) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxIndexMonoidAssociative under explicit triples including ties.
func TestMaxIndexMonoidAssociative(t *testing.T) {
	m := NewMaxIndex[int]().Reducer.monoid
	vals := []maxIndexState[int]{
		{}, {val: 5, index: 1, ok: true}, {val: 5, index: 2, ok: true},
		{val: 9, index: 0, ok: true}, {val: -3, index: 7, ok: true},
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				left := m.Combine(m.Combine(a, b), c)
				right := m.Combine(a, m.Combine(b, c))
				if left != right {
					t.Fatalf("associativity broken: (%v⊕%v)⊕%v = %v, %v⊕(%v⊕%v) = %v",
						a, b, c, left, a, b, c, right)
				}
			}
		}
	}
}
