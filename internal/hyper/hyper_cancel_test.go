package hyper_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cilkgo/internal/hyper"
	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
)

// TestReducerDeterministicOnCancelledLoop: when a cilk_for is cancelled
// mid-flight, the chunks that did run still fold their reducer views in
// exact serial order — the paper's §5 ordering guarantee degrades to "an
// ordered subsequence", never to an arbitrary interleaving. Each executed
// chunk appends ascending indices and chunks fold in spawn (= index) order,
// so the final list must be strictly increasing.
func TestReducerDeterministicOnCancelledLoop(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rt := sched.New(sched.WithWorkers(workers))
		out := hyper.NewListAppend[int]()
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		const n = 20_000
		err := rt.RunCtx(ctx, func(c *sched.Context) {
			pfor.ForGrain(c, 0, n, 16, func(c *sched.Context, i int) {
				if seen.Add(1) >= 200 {
					cancel()
					// Hold the strand until the watcher has raised the
					// cancel gate, so later chunks observably skip.
					for !c.Cancelled() {
						time.Sleep(5 * time.Microsecond)
					}
				}
				v := out.View(c)
				*v = append(*v, i)
			})
		})
		if !errors.Is(err, sched.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		got := out.Value()
		if len(got) == 0 {
			t.Fatalf("workers=%d: cancelled loop folded no views", workers)
		}
		if len(got) >= n {
			t.Fatalf("workers=%d: nothing was skipped (%d elements)", workers, len(got))
		}
		for k := 1; k < len(got); k++ {
			if got[k] <= got[k-1] {
				t.Fatalf("workers=%d: fold order broken at %d: %d after %d",
					workers, k, got[k], got[k-1])
			}
		}
		rt.Shutdown()
	}
}

// TestReducerUntouchedOnPreCancelledRun: a reducer never touched by an
// abandoned computation reports its identity, not stale state.
func TestReducerUntouchedOnPreCancelledRun(t *testing.T) {
	rt := sched.New(sched.WithWorkers(2))
	defer rt.Shutdown()
	sum := hyper.NewAdder[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.RunCtx(ctx, func(c *sched.Context) {
		*sum.View(c) += 1
	}); !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := sum.Value(); got != 0 {
		t.Fatalf("untouched reducer = %d, want identity 0", got)
	}
}
