package hyper

import (
	"cilkgo/internal/sched"
)

// Number is the constraint for arithmetic reducers (Cilk++'s opadd family).
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Adder is the opadd reducer: a sum over +.
type Adder[T Number] struct{ *Reducer[T] }

// NewAdder returns an addition reducer starting from zero.
func NewAdder[T Number]() Adder[T] {
	return Adder[T]{New[T](FuncMonoid(
		func() T { var z T; return z },
		func(l, r T) T { return l + r },
	))}
}

// Add adds x to the calling strand's view.
func (a Adder[T]) Add(c *sched.Context, x T) { *a.View(c) += x }

// ListAppend is the reducer_list_append hyperobject from §5 and Fig. 7:
// strands push elements onto private lists, and joins concatenate them so
// the final list matches the serial execution's order exactly.
type ListAppend[T any] struct{ *Reducer[[]T] }

// NewListAppend returns a list-append reducer.
func NewListAppend[T any]() ListAppend[T] {
	return ListAppend[T]{New[[]T](FuncMonoid(
		func() []T { return nil },
		func(l, r []T) []T { return append(l, r...) },
	))}
}

// PushBack appends x to the calling strand's view of the list.
func (l ListAppend[T]) PushBack(c *sched.Context, x T) {
	v := l.View(c)
	*v = append(*v, x)
}

// MaxIndex is the reducer_max_index hyperobject: it tracks the maximum
// value seen and the index at which it occurred. The serial fold order
// makes ties resolve to the earliest index in serial order.
type MaxIndex[T Number] struct{ *Reducer[maxIndexState[T]] }

type maxIndexState[T Number] struct {
	val   T
	index int
	ok    bool
}

// NewMaxIndex returns a max-with-index reducer.
func NewMaxIndex[T Number]() MaxIndex[T] {
	return MaxIndex[T]{New[maxIndexState[T]](FuncMonoid(
		func() maxIndexState[T] { return maxIndexState[T]{} },
		func(l, r maxIndexState[T]) maxIndexState[T] {
			switch {
			case !l.ok:
				return r
			case !r.ok:
				return l
			case r.val > l.val: // strict: ties keep the serially earlier index
				return r
			default:
				return l
			}
		},
	))}
}

// Update offers (val, index) to the calling strand's view.
func (m MaxIndex[T]) Update(c *sched.Context, val T, index int) {
	v := m.View(c)
	if !v.ok || val > v.val {
		*v = maxIndexState[T]{val: val, index: index, ok: true}
	}
}

// Max returns the final maximum value, its index, and whether any value was
// offered. Call after the computation completes.
func (m MaxIndex[T]) Max() (val T, index int, ok bool) {
	s := m.Value()
	return s.val, s.index, s.ok
}

// MinIndex tracks the minimum value and its index, symmetric to MaxIndex.
type MinIndex[T Number] struct{ *Reducer[minIndexState[T]] }

type minIndexState[T Number] struct {
	val   T
	index int
	ok    bool
}

// NewMinIndex returns a min-with-index reducer.
func NewMinIndex[T Number]() MinIndex[T] {
	return MinIndex[T]{New[minIndexState[T]](FuncMonoid(
		func() minIndexState[T] { return minIndexState[T]{} },
		func(l, r minIndexState[T]) minIndexState[T] {
			switch {
			case !l.ok:
				return r
			case !r.ok:
				return l
			case r.val < l.val:
				return r
			default:
				return l
			}
		},
	))}
}

// Update offers (val, index) to the calling strand's view.
func (m MinIndex[T]) Update(c *sched.Context, val T, index int) {
	v := m.View(c)
	if !v.ok || val < v.val {
		*v = minIndexState[T]{val: val, index: index, ok: true}
	}
}

// Min returns the final minimum value, its index, and whether any value was
// offered.
func (m MinIndex[T]) Min() (val T, index int, ok bool) {
	s := m.Value()
	return s.val, s.index, s.ok
}

// String is the reducer_basic_string hyperobject: strands append to private
// byte buffers and joins concatenate, reproducing the serial string.
type String struct{ *Reducer[[]byte] }

// NewString returns a string-append reducer.
func NewString() String {
	return String{New[[]byte](FuncMonoid(
		func() []byte { return nil },
		func(l, r []byte) []byte { return append(l, r...) },
	))}
}

// Append appends s to the calling strand's view.
func (s String) Append(c *sched.Context, str string) {
	v := s.View(c)
	*v = append(*v, str...)
}

// String returns the final concatenated string.
func (s String) String() string { return string(s.Value()) }

// Bits is the constraint for the bitwise reducers (opand, opor, opxor).
type Bits interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Ander is the opand reducer: bitwise AND with all-ones identity.
type Ander[T Bits] struct{ *Reducer[T] }

// NewAnder returns a bitwise-AND reducer.
func NewAnder[T Bits]() Ander[T] {
	return Ander[T]{New[T](FuncMonoid(
		func() T { var z T; return ^z },
		func(l, r T) T { return l & r },
	))}
}

// And folds x into the calling strand's view.
func (a Ander[T]) And(c *sched.Context, x T) { *a.View(c) &= x }

// Orer is the opor reducer: bitwise OR with zero identity.
type Orer[T Bits] struct{ *Reducer[T] }

// NewOrer returns a bitwise-OR reducer.
func NewOrer[T Bits]() Orer[T] {
	return Orer[T]{New[T](FuncMonoid(
		func() T { var z T; return z },
		func(l, r T) T { return l | r },
	))}
}

// Or folds x into the calling strand's view.
func (o Orer[T]) Or(c *sched.Context, x T) { *o.View(c) |= x }

// Xorer is the opxor reducer: bitwise XOR with zero identity.
type Xorer[T Bits] struct{ *Reducer[T] }

// NewXorer returns a bitwise-XOR reducer.
func NewXorer[T Bits]() Xorer[T] {
	return Xorer[T]{New[T](FuncMonoid(
		func() T { var z T; return z },
		func(l, r T) T { return l ^ r },
	))}
}

// Xor folds x into the calling strand's view.
func (x Xorer[T]) Xor(c *sched.Context, v T) { *x.View(c) ^= v }

// MapUnion is a map-union reducer: per-strand maps merged key-by-key with a
// user combine for colliding keys (the left argument is serially earlier).
type MapUnion[K comparable, V any] struct{ *Reducer[map[K]V] }

// NewMapUnion returns a map-union reducer. combineValues resolves key
// collisions; its left argument is the serially earlier value.
func NewMapUnion[K comparable, V any](combineValues func(left, right V) V) MapUnion[K, V] {
	return MapUnion[K, V]{New[map[K]V](FuncMonoid(
		func() map[K]V { return nil },
		func(l, r map[K]V) map[K]V {
			if l == nil {
				return r
			}
			for k, rv := range r {
				if lv, ok := l[k]; ok {
					l[k] = combineValues(lv, rv)
				} else {
					l[k] = rv
				}
			}
			return l
		},
	))}
}

// Set records key → value in the calling strand's view, overwriting any
// value this strand recorded earlier.
func (m MapUnion[K, V]) Set(c *sched.Context, key K, value V) {
	v := m.View(c)
	if *v == nil {
		*v = make(map[K]V)
	}
	(*v)[key] = value
}

// Merge folds value into the strand's view entry for key using combine.
func (m MapUnion[K, V]) Merge(c *sched.Context, key K, value V, combine func(old, new V) V) {
	v := m.View(c)
	if *v == nil {
		*v = make(map[K]V)
	}
	if old, ok := (*v)[key]; ok {
		(*v)[key] = combine(old, value)
	} else {
		(*v)[key] = value
	}
}

// Holder is the holder hyperobject: a per-strand scratch value with no
// meaningful combine. It gives each strand isolated temporary storage (the
// classic use is replacing a global scratch buffer); when strands join, one
// of the views survives arbitrarily (we keep the serially earlier one).
type Holder[T any] struct{ *Reducer[T] }

// NewHolder returns a holder whose fresh views are produced by makeView.
func NewHolder[T any](makeView func() T) Holder[T] {
	return Holder[T]{New[T](FuncMonoid(
		makeView,
		func(l, _ T) T { return l },
	))}
}
