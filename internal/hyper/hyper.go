// Package hyper implements Cilk++ reducer hyperobjects (§5 of the paper).
//
// A reducer lets many strands update a nonlocal variable independently,
// without locks and without restructuring the program: each strand sees a
// private view of the object, and when strands join, views are combined with
// an associative Reduce operation. The runtime folds views in the exact
// order of the serial execution, so — as the paper requires for
// reducer_list_append — "the resulting list contains the identical elements
// in the same order as in a serial execution", under every schedule.
//
// The view-management protocol lives in internal/sched (see DESIGN.md):
// Spawn seals the spawning strand's view segment, Sync folds
// seg₀ ⊕ child₁ ⊕ seg₁ ⊕ … in spawn order, and views are created lazily on
// first access, so a hyperobject that a subtree never touches costs that
// subtree nothing.
package hyper

import (
	"fmt"
	"sync"

	"cilkgo/internal/sched"
)

// Monoid supplies the algebra of a reducer: an identity element and an
// associative combine. Combine may mutate and return left, which lets
// views grow in place (the common case for list appending).
type Monoid[T any] interface {
	Identity() T
	Combine(left, right T) T
}

// FuncMonoid builds a Monoid from two functions.
func FuncMonoid[T any](identity func() T, combine func(left, right T) T) Monoid[T] {
	return funcMonoid[T]{identity, combine}
}

type funcMonoid[T any] struct {
	identity func() T
	combine  func(left, right T) T
}

func (m funcMonoid[T]) Identity() T      { return m.identity() }
func (m funcMonoid[T]) Combine(l, r T) T { return m.combine(l, r) }

// Reducer is a reducer hyperobject over monoid m. Create one with New (or
// one of the typed constructors in this package), update it through View
// from any strand, and read the final reduced value with Value after the
// computation completes.
//
// A Reducer may be reused across Run invocations; each run starts from the
// identity and Value reflects the most recently completed run.
type Reducer[T any] struct {
	monoid   Monoid[T]
	final    T
	hasFinal bool
}

// New creates a reducer hyperobject over the given monoid.
func New[T any](m Monoid[T]) *Reducer[T] {
	return &Reducer[T]{monoid: m}
}

// view adapts a reducer value to the runtime's View protocol.
type view[T any] struct {
	r   *Reducer[T]
	val T
}

// Merge implements sched.View: it combines this view (earlier in serial
// order) with right (later in serial order).
func (v *view[T]) Merge(right sched.View) sched.View {
	rv, ok := right.(*view[T])
	if !ok || rv.r != v.r {
		panic(fmt.Sprintf("hyper: view merge across distinct hyperobjects (%T vs %T)", v, right))
	}
	v.val = v.r.monoid.Combine(v.val, rv.val)
	return v
}

// Finalize implements sched.Finalizer: the runtime delivers the computation's
// fully folded view when the root frame completes.
func (r *Reducer[T]) Finalize(v sched.View) {
	r.final = v.(*view[T]).val
	r.hasFinal = true
}

// View returns a pointer to the calling strand's private view of the
// reducer, creating it from the monoid identity on first access. The strand
// may read and modify the view freely without synchronization (§5: "a
// strand can access and change any of its view's state independently,
// without synchronizing with other strands").
func (r *Reducer[T]) View(c *sched.Context) *T {
	if v := c.LookupView(r); v != nil {
		return &v.(*view[T]).val
	}
	nv := &view[T]{r: r, val: r.monoid.Identity()}
	c.InstallView(r, nv)
	return &nv.val
}

// Value returns the final reduced value of the most recently completed
// computation. It must be called after Run returns (the runtime establishes
// the necessary happens-before edge). If the reducer was never touched, the
// monoid identity is returned.
func (r *Reducer[T]) Value() T {
	if !r.hasFinal {
		return r.monoid.Identity()
	}
	return r.final
}

// Reset clears the recorded final value.
func (r *Reducer[T]) Reset() {
	var zero T
	r.final = zero
	r.hasFinal = false
}

// reducerPools holds one sync.Pool of *Reducer[T] per element type T, keyed
// by the zero-size poolKey[T] type (distinct per instantiation, boxes
// without allocating).
var reducerPools sync.Map

type poolKey[T any] struct{}

func poolFor[T any]() *sync.Pool {
	k := poolKey[T]{}
	if p, ok := reducerPools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := reducerPools.LoadOrStore(k, &sync.Pool{New: func() any { return new(Reducer[T]) }})
	return p.(*sync.Pool)
}

// Acquire returns a pooled reducer over the given monoid, for transient
// reductions that would otherwise allocate a fresh hyperobject per call
// (pfor.Reduce is the canonical caller). Pair with Release.
func Acquire[T any](m Monoid[T]) *Reducer[T] {
	r := poolFor[T]().Get().(*Reducer[T])
	r.monoid = m
	return r
}

// Release returns a reducer obtained from Acquire to the pool. c must be the
// strand that read the final view: the strand's view-map entry for r is
// dropped first, because a later Acquire may hand the very same reducer
// pointer back to the same strand, and a surviving entry would resurrect the
// retired view (and its value) instead of starting a fresh reduction. The
// reducer must not be used after Release.
func Release[T any](c *sched.Context, r *Reducer[T]) {
	c.DropView(r)
	var zero T
	r.monoid, r.final, r.hasFinal = nil, zero, false
	poolFor[T]().Put(r)
}
