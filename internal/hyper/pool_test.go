package hyper

import (
	"testing"

	"cilkgo/internal/sched"
)

// TestAcquireRelease exercises the reducer pool directly: an acquired
// reducer behaves like a fresh one, and a released pointer that comes back
// from the pool starts from identity — both its final value and the
// releasing strand's view-map entry must be gone.
func TestAcquireRelease(t *testing.T) {
	m := FuncMonoid(func() int { return 0 }, func(a, b int) int { return a + b })
	rt := sched.New(sched.WithWorkers(1))
	defer rt.Shutdown()
	if err := rt.Run(func(c *sched.Context) {
		r1 := Acquire(m)
		*r1.View(c) = 41
		if got := *r1.View(c); got != 41 {
			t.Errorf("acquired reducer view = %d, want 41", got)
		}
		Release(c, r1)
		// Same strand, same type: the pool may (and on a single worker will)
		// hand r1's pointer straight back. The view must be identity again.
		r2 := Acquire(m)
		if got := *r2.View(c); got != 0 {
			t.Errorf("re-acquired reducer view = %d, want identity 0 (stale view survived Release)", got)
		}
		Release(c, r2)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseDropsOnlyOwnView: releasing one reducer must not disturb the
// views of other live hyperobjects on the same strand.
func TestReleaseDropsOnlyOwnView(t *testing.T) {
	m := FuncMonoid(func() int { return 0 }, func(a, b int) int { return a + b })
	rt := sched.New(sched.WithWorkers(1))
	defer rt.Shutdown()
	if err := rt.Run(func(c *sched.Context) {
		keep := New(m)
		*keep.View(c) = 7
		tmp := Acquire(m)
		*tmp.View(c) = 99
		Release(c, tmp)
		if got := *keep.View(c); got != 7 {
			t.Errorf("unrelated view = %d after Release, want 7", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkViewLookup measures the strand-local view fast path: repeated
// View(c) on the same reducer from one strand must hit the per-strand
// last-key cache (one pointer compare), not rescan the view map. The
// many-hyperobject variant is where the cache matters — without it each
// lookup walks O(#views) entries.
func BenchmarkViewLookup(b *testing.B) {
	bench := func(b *testing.B, others int) {
		rt := sched.New(sched.WithWorkers(1))
		defer rt.Shutdown()
		b.ReportAllocs()
		if err := rt.Run(func(c *sched.Context) {
			m := FuncMonoid(func() int64 { return 0 }, func(a, x int64) int64 { return a + x })
			for i := 0; i < others; i++ {
				r := New(m)
				*r.View(c) = int64(i) // populate the strand's view map
			}
			hot := New(m)
			*hot.View(c) = 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				*hot.View(c)++
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("views=1", func(b *testing.B) { bench(b, 0) })
	b.Run("views=16", func(b *testing.B) { bench(b, 16) })
	b.Run("views=64", func(b *testing.B) { bench(b, 64) })
}

// BenchmarkViewLookupAlternating is the cache-miss path: two hot reducers
// accessed alternately defeat a single-entry cache, pinning the cost of the
// fallback scan so regressions in either path are visible.
func BenchmarkViewLookupAlternating(b *testing.B) {
	rt := sched.New(sched.WithWorkers(1))
	defer rt.Shutdown()
	b.ReportAllocs()
	if err := rt.Run(func(c *sched.Context) {
		m := FuncMonoid(func() int64 { return 0 }, func(a, x int64) int64 { return a + x })
		r1, r2 := New(m), New(m)
		*r1.View(c), *r2.View(c) = 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			*r1.View(c)++
			*r2.View(c)++
		}
	}); err != nil {
		b.Fatal(err)
	}
}
