package cilkmem

// Analyzer consumes one fork-join computation as a serial event stream —
// the depth-first order internal/dag's Builder sees and internal/vprog's
// ToDag emits — and computes, in one pass:
//
//   - the serial high-water mark (the net's running peak in serial order,
//     i.e. the 1-processor execution's live memory);
//   - the exact p-processor MHWM via the Profile DP;
//   - the streaming (p+1)-approximation D + p·Ppk.
//
// Event protocol, mirroring dag.Builder: Step(delta) adds a memory delta on
// the current strand; Spawn/Call enter a child frame (charging FrameBytes
// on the parent's strand — the frame is allocated by the spawning
// instruction, before the fork); Sync joins the children spawned since the
// last Sync; Return leaves the current frame (refunding FrameBytes at its
// end, after its implicit sync); Finish closes the root and returns the
// Result. Calls must nest properly; the Analyzer panics on a Return without
// a matching Spawn/Call, like the Builder it mirrors.
type Analyzer struct {
	p          int
	cap        int // p+1: profile entries worth keeping
	frameBytes int64

	// Serial clock: running net in event (= serial execution) order.
	serialLive int64
	serialHWM  int64

	// Streaming approximation, global across frames: the largest single-
	// strand prefix peak seen anywhere.
	peak int64

	frames []frameState
	result *Result
}

// frameState is the per-open-frame analysis state — O(p) for the exact DP
// plus O(1) scalars for the approximation, so total live state is
// O(depth·p) however large the computation.
type frameState struct {
	called bool // entered via Call: composes in series into the parent

	// Open strand segment: net and max prefix net since the last boundary
	// (frame entry, spawn, call, call-return, or sync).
	segNet  int64
	segPeak int64

	// Exact DP. acc is the profile of the fully-synced prefix of the
	// frame; chain accumulates the current sync region's serial spine
	// (strand segments and called children) since the last spawn; items
	// holds, per spawned child of the region, the spine before its spawn
	// and the child's profile, folded right-nested at the Sync.
	acc   Profile
	chain Profile
	items []regionItem

	// Streaming approximation. net is the frame's delta over completed
	// content, excluding children spawned in the open region; childD sums
	// those children's best complete-downset nets, pendNet their nets
	// (folded into net at the Sync); d is the best complete-downset net
	// over the frame's content so far.
	net     int64
	childD  int64
	pendNet int64
	d       int64
}

type regionItem struct {
	pre   Profile // serial spine between the previous spawn and this one
	child Profile
}

// Result is one computation's memory analysis.
type Result struct {
	// P is the processor count the exact and approximate marks are for.
	P int
	// SerialHWM is the 1-processor (serial execution) high-water mark.
	SerialHWM int64
	// Exact is MHWM_P: the worst live memory any P-processor schedule of
	// the computation can reach.
	Exact int64
	// Approx is the streaming bound D + P·Ppk with
	// Exact ≤ Approx ≤ (P+1)·Exact for well-formed alloc/free programs.
	Approx int64
	// Profile is the root's full exact profile: Profile.At(q) is MHWM_q
	// for any q ≤ P, so one analysis answers every processor count up to P.
	Profile Profile

	// d and ppk are the streaming approximation's components (best
	// complete-strand downset net, largest single-strand prefix peak).
	// Neither depends on P, so ApproxAt answers any processor count.
	d, ppk int64
}

// ExactAt returns MHWM_q for q ≤ the analyzed P (saturating above it).
func (r Result) ExactAt(q int) int64 { return r.Profile.At(q) }

// ApproxAt returns the streaming bound D + q·Ppk for any processor count.
func (r Result) ApproxAt(q int) int64 { return r.d + int64(q)*r.ppk }

// New returns an Analyzer for p processors. frameBytes, when nonzero, is
// charged on the parent strand at every Spawn/Call and refunded at the
// matching Return — the cactus-stack activation cost; with frameBytes 1 the
// marks count live frames, directly comparable to sim.Result.MaxLiveFrames.
func New(p int, frameBytes int64) *Analyzer {
	if p < 1 {
		p = 1
	}
	a := &Analyzer{p: p, cap: p + 1, frameBytes: frameBytes}
	a.frames = []frameState{{acc: emptyProfile(), chain: emptyProfile()}}
	a.step(frameBytes) // the root frame's own activation
	return a
}

func (a *Analyzer) top() *frameState { return &a.frames[len(a.frames)-1] }

// Step records a memory delta on the current strand.
func (a *Analyzer) Step(delta int64) {
	if a.result != nil {
		panic("cilkmem: Step after Finish")
	}
	a.step(delta)
}

func (a *Analyzer) step(delta int64) {
	if delta == 0 {
		return
	}
	a.serialLive += delta
	if a.serialLive > a.serialHWM {
		a.serialHWM = a.serialLive
	}
	f := a.top()
	f.segNet += delta
	if f.segNet > f.segPeak {
		f.segPeak = f.segNet
	}
}

// closeSeg ends the open strand segment at a boundary: the segment becomes
// a strand profile on the exact side, and feeds net/D/Ppk on the streaming
// side.
func (a *Analyzer) closeSeg() {
	f := a.top()
	if f.segNet != 0 || f.segPeak != 0 {
		f.chain = series(f.chain, strandProfile(f.segNet, f.segPeak, a.cap), a.cap)
		f.net += f.segNet
		if f.segPeak > a.peak {
			a.peak = f.segPeak
		}
		f.segNet, f.segPeak = 0, 0
	}
	if cand := f.net + f.childD; cand > f.d {
		f.d = cand
	}
}

// Spawn enters a spawned child frame: the child may run in parallel with
// everything after the spawn up to the joining Sync.
func (a *Analyzer) Spawn() {
	a.step(a.frameBytes) // the child's activation, charged at the spawn
	a.closeSeg()
	f := a.top()
	f.items = append(f.items, regionItem{pre: f.chain})
	f.chain = emptyProfile()
	a.push(false)
}

// Call enters a called child frame: the child runs in series on the
// caller's strand (its own spawns are joined by its own implicit sync).
func (a *Analyzer) Call() {
	a.step(a.frameBytes)
	a.closeSeg()
	a.push(true)
}

func (a *Analyzer) push(called bool) {
	a.frames = append(a.frames, frameState{
		called: called,
		acc:    emptyProfile(),
		chain:  emptyProfile(),
	})
}

// Sync joins every child spawned in the current region: the region's
// right-nested series-parallel form folds into the frame's accumulator.
func (a *Analyzer) Sync() {
	a.closeSeg()
	f := a.top()
	region := f.chain
	for i := len(f.items) - 1; i >= 0; i-- {
		region = series(f.items[i].pre, par(f.items[i].child, region, a.cap), a.cap)
	}
	f.items = f.items[:0]
	f.acc = series(f.acc, region, a.cap)
	f.chain = emptyProfile()
	// Past the sync the children are complete in any further downset:
	// their nets fold into the frame's own.
	f.net += f.pendNet
	f.pendNet, f.childD = 0, 0
	if f.net > f.d {
		f.d = f.net
	}
}

// Return leaves the current frame: an implicit Sync joins any children
// still outstanding, the frame's activation is refunded, and its profile
// composes into the parent (in parallel for a spawned frame, in series for
// a called one).
func (a *Analyzer) Return() {
	if len(a.frames) <= 1 {
		panic("cilkmem: Return on the root frame (use Finish)")
	}
	a.Sync()
	a.step(-a.frameBytes) // the frame is freed as its last instruction
	a.closeSeg()
	f := a.top()
	profile := series(f.acc, f.chain, a.cap)
	net, d, called := f.net, f.d, f.called
	a.frames = a.frames[:len(a.frames)-1]

	parent := a.top()
	if called {
		parent.chain = series(parent.chain, profile, a.cap)
		if cand := parent.net + parent.childD + d; cand > parent.d {
			parent.d = cand
		}
		parent.net += net
	} else {
		parent.items[len(parent.items)-1].child = profile
		parent.childD += d
		parent.pendNet += net
		if cand := parent.net + parent.childD; cand > parent.d {
			parent.d = cand
		}
	}
}

// Finish closes the root frame and returns the analysis. The Analyzer is
// spent afterwards.
func (a *Analyzer) Finish() Result {
	if a.result != nil {
		return *a.result
	}
	if len(a.frames) != 1 {
		panic("cilkmem: Finish with unreturned frames")
	}
	a.Sync()
	a.step(-a.frameBytes)
	a.closeSeg()
	f := a.top()
	root := series(f.acc, f.chain, a.cap)
	ppk := a.peak
	if ppk < 0 {
		ppk = 0
	}
	r := Result{
		P:         a.p,
		SerialHWM: a.serialHWM,
		Exact:     root.At(a.p),
		Approx:    f.d + int64(a.p)*ppk,
		Profile:   root,
		d:         f.d,
		ppk:       ppk,
	}
	a.result = &r
	return r
}
