package cilkmem

import (
	"testing"

	"cilkgo/internal/vprog"
)

// TestSingleStrand pins the one-strand case: a +10/-10 balloon on a single
// strand. Any schedule holds at most the balloon, so exact = 10 at every p;
// the approximation pays Ppk per processor: D + p·Ppk = 0 + 10p.
func TestSingleStrand(t *testing.T) {
	a := New(2, 0)
	a.Step(10)
	a.Step(-10)
	r := a.Finish()
	if r.SerialHWM != 10 || r.Exact != 10 || r.Approx != 20 {
		t.Fatalf("got serial=%d exact=%d approx=%d, want 10/10/20",
			r.SerialHWM, r.Exact, r.Approx)
	}
}

// TestTwoParallelBalloons: two spawned strands each allocating and freeing
// 10. With p=1 only one strand is ever mid-balloon, so exact stays 10.
func TestTwoParallelBalloons(t *testing.T) {
	a := New(1, 0)
	for i := 0; i < 2; i++ {
		a.Spawn()
		a.Step(10)
		a.Step(-10)
		a.Return()
	}
	a.Sync()
	r := a.Finish()
	if r.SerialHWM != 10 || r.Exact != 10 || r.Approx != 10 {
		t.Fatalf("got serial=%d exact=%d approx=%d, want 10/10/10",
			r.SerialHWM, r.Exact, r.Approx)
	}
}

// TestFrameCharges pins frame accounting on root+two spawned leaves with
// FrameBytes=1. Serially only root+one child are ever live (HWM 2), but an
// adversarial schedule parks both allocated children before either runs
// (exact 3). Approx: D=3 (root strand cut after both spawns), Ppk=2 (the
// root strand's own prefix peak), so D + 2·Ppk = 7 — inside (p+1)·exact=9.
func TestFrameCharges(t *testing.T) {
	a := New(2, 1)
	a.Spawn()
	a.Return()
	a.Spawn()
	a.Return()
	a.Sync()
	r := a.Finish()
	if r.SerialHWM != 2 || r.Exact != 3 || r.Approx != 7 {
		t.Fatalf("got serial=%d exact=%d approx=%d, want 2/3/7",
			r.SerialHWM, r.Exact, r.Approx)
	}
	if r.Profile.Net != 0 {
		t.Fatalf("balanced program has net %d, want 0", r.Profile.Net)
	}
}

// pinnedPrograms are the dags the ISSUE pins the sandwich property on.
func pinnedPrograms() []vprog.Program {
	return []vprog.Program{
		vprog.Fib(10),
		vprog.MatMul(8, 2),
		vprog.NQueens(6),
	}
}

// TestSandwich is the Cilkmem bound on every pinned dag: for each p,
// serialHWM ≤ exact_p ≤ approx_p ≤ (p+1)·exact_p, and exact is monotone
// nondecreasing in p (a bigger machine can only hold more open).
func TestSandwich(t *testing.T) {
	for _, prog := range pinnedPrograms() {
		prev := int64(0)
		for _, p := range []int{1, 2, 4, 8, 16} {
			r := AnalyzeProgram(prog, p, 1)
			if r.SerialHWM > r.Exact {
				t.Errorf("%s p=%d: serial HWM %d > exact %d",
					prog.Name, p, r.SerialHWM, r.Exact)
			}
			if r.Exact > r.Approx {
				t.Errorf("%s p=%d: exact %d > approx %d",
					prog.Name, p, r.Exact, r.Approx)
			}
			if lim := int64(p+1) * r.Exact; r.Approx > lim {
				t.Errorf("%s p=%d: approx %d > (p+1)·exact %d",
					prog.Name, p, r.Approx, lim)
			}
			if r.Exact < prev {
				t.Errorf("%s p=%d: exact %d < exact at smaller p %d",
					prog.Name, p, r.Exact, prev)
			}
			prev = r.Exact
		}
	}
}

// TestRandomSandwich runs the same bound over the deterministic random
// fork-join family, which exercises call/spawn/sync interleavings the
// regular workloads never produce.
func TestRandomSandwich(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		prog := vprog.RandomFJ(seed, 5)
		for _, p := range []int{1, 3, 8} {
			r := AnalyzeProgram(prog, p, 1)
			if r.SerialHWM > r.Exact || r.Exact > r.Approx ||
				r.Approx > int64(p+1)*r.Exact {
				t.Fatalf("%s p=%d: serial=%d exact=%d approx=%d violates sandwich",
					prog.Name, p, r.SerialHWM, r.Exact, r.Approx)
			}
		}
	}
}

// TestSaturatesAtTotalFrames: with an active-strand budget as large as the
// frame count, the worst downset holds every frame live at once, so
// exact = total activations — an absolute cross-check of the DP against
// vprog.Analyze's frame counter. (Holds for spawn-sync-exec trees like fib
// and nqueens; matmul's post-sync addition call can only be live after the
// subproduct frames have been freed, so it is excluded.)
func TestSaturatesAtTotalFrames(t *testing.T) {
	for _, prog := range []vprog.Program{
		vprog.Fib(6),
		vprog.NQueens(5),
	} {
		frames := vprog.Analyze(prog).Frames
		r := AnalyzeProgram(prog, int(frames), 1)
		if r.Exact != frames {
			t.Errorf("%s: exact at p=%d is %d, want all %d frames",
				prog.Name, frames, r.Exact, frames)
		}
	}
}

// TestProfileSaturation: At saturates past the stored entries and the
// stored vector is monotone.
func TestProfileSaturation(t *testing.T) {
	r := AnalyzeProgram(vprog.Fib(8), 4, 1)
	m := r.Profile.M
	for i := 1; i < len(m); i++ {
		if m[i] < m[i-1] {
			t.Fatalf("profile not monotone: %v", m)
		}
	}
	if got := r.Profile.At(1000); got != m[len(m)-1] {
		t.Fatalf("At(1000)=%d, want saturated %d", got, m[len(m)-1])
	}
}

// TestUserDeltas mixes frame charges with user Charge/Refund-style deltas
// on inner strands, the shape Context.Charge produces at runtime.
func TestUserDeltas(t *testing.T) {
	build := func(p int) Result {
		a := New(p, 16)
		a.Spawn()
		a.Step(100) // child A holds 100 across its strand
		a.Step(-100)
		a.Return()
		a.Spawn()
		a.Step(40)
		a.Call()
		a.Step(25)
		a.Step(-25)
		a.Return()
		a.Step(-40)
		a.Return()
		a.Sync()
		return a.Finish()
	}
	for _, p := range []int{1, 2, 4} {
		r := build(p)
		if r.SerialHWM > r.Exact || r.Exact > r.Approx ||
			r.Approx > int64(p+1)*r.Exact {
			t.Fatalf("p=%d: serial=%d exact=%d approx=%d violates sandwich",
				p, r.SerialHWM, r.Exact, r.Approx)
		}
		if r.Profile.Net != 0 {
			t.Fatalf("p=%d: net %d, want 0", p, r.Profile.Net)
		}
	}
	// Serial HWM: root16 + spawnA16 +100 peak = 132; branch B peaks at
	// 16+16+40+16+25 = 113. Exact at p≥2 can hold A's balloon plus B's
	// chain: 132 + (16+40+16+25) = 229.
	r := build(2)
	if r.SerialHWM != 132 {
		t.Fatalf("serial HWM %d, want 132", r.SerialHWM)
	}
	if r.Exact != 229 {
		t.Fatalf("exact(2) %d, want 229", r.Exact)
	}
}
