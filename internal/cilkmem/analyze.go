package cilkmem

import "cilkgo/internal/vprog"

// AnalyzeProgram runs the Analyzer over a virtual program's frame tree,
// mirroring vprog.ToDag's event mapping. Exec/Critical segments carry no
// memory delta in the frame model — memory is the cactus stack, frameBytes
// per live activation — so with frameBytes 1 the result counts live frames,
// the same unit as sim.Result.MaxLiveFrames and the §3.1 space bound.
func AnalyzeProgram(p vprog.Program, procs int, frameBytes int64) Result {
	a := New(procs, frameBytes)
	walkFrame(a, p.Root())
	return a.Finish()
}

func walkFrame(a *Analyzer, f vprog.Frame) {
	for {
		st := f.Next()
		switch st.Kind {
		case vprog.Exec, vprog.Critical:
			// Work, not memory.
		case vprog.Spawn:
			a.Spawn()
			walkFrame(a, st.Child)
			a.Return()
		case vprog.Call:
			a.Call()
			walkFrame(a, st.Child)
			a.Return()
		case vprog.Sync:
			a.Sync()
		case vprog.End:
			return
		default:
			panic("cilkmem: invalid vprog step kind")
		}
	}
}
