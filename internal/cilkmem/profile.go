// Package cilkmem computes memory high-water marks of fork-join programs:
// the maximum memory a p-processor execution of the computation can have
// live at once (the MHWM of the Cilkmem paper — see PAPERS.md,
// arXiv:1910.12340), alongside the serial high-water mark and a cheap
// streaming (p+1)-approximation.
//
// The model is the dag model of PAPER.md §2 extended with memory: every
// strand carries a sequence of signed allocation deltas (frame activations
// are +FrameBytes at the parent's spawn/call instruction and -FrameBytes at
// the child's return, matching the cactus-stack accounting of §3.1 and the
// live-frame gauge of internal/sim). An execution state is a downset of the
// dag — a set of executed instructions closed under happens-before — and
// its memory is the net of its deltas. MHWM_p is the maximum net over
// downsets in which at most p strands are mid-execution: the worst memory
// any schedule on p processors can reach, however adversarial.
//
// Two algorithms, both driven by the same serial event stream (the order
// internal/dag's Builder and internal/vprog's walkers emit):
//
//   - Exact: a dynamic program over the series-parallel decomposition. Each
//     subcomputation reduces to a Profile — its net delta plus the vector
//     M[0..p] of worst-case contributions when at most q of its strands are
//     active. Series composition takes pointwise max against net-shifted
//     suffixes; parallel composition is a max-plus convolution splitting the
//     processor budget across the branches. O(n·p²) time, O(depth·p) live
//     state.
//
//   - Approximate: a single pair of scalars per open frame. D tracks the
//     best net over downsets whose strands are all complete; Ppk tracks the
//     largest prefix peak of any single strand. For programs whose frees
//     are matched by earlier allocations (every well-formed alloc/free
//     program), exact_p ≤ D + p·Ppk ≤ (p+1)·exact_p — the sandwich the
//     property tests pin.
package cilkmem

// Profile is the exact DP's summary of one series-parallel subcomputation.
type Profile struct {
	// Net is the subcomputation's total memory delta: what remains
	// allocated after every one of its instructions has executed.
	Net int64
	// M[q] is the maximum net over downsets of the subcomputation with at
	// most q strands mid-execution. M is monotone nondecreasing, M[0] ≥ 0
	// (the empty downset), and saturates: M[q] for q ≥ len(M) equals the
	// last entry (the subcomputation cannot keep more strands busy than it
	// has). Profiles are capped at p+1 entries — only M[p] is ever read.
	M []int64
}

// emptyProfile is the identity of series composition.
func emptyProfile() Profile { return Profile{M: []int64{0}} }

// At returns M[q] with saturation.
func (pr Profile) At(q int) int64 {
	if q >= len(pr.M) {
		return pr.M[len(pr.M)-1]
	}
	return pr.M[q]
}

// strandProfile summarizes one strand: a serial run of deltas with the
// given net and maximum prefix net. With zero active strands the strand is
// untouched or complete (max(0, net)); with one it may be cut at its peak.
func strandProfile(net, prefixPeak int64, cap int) Profile {
	m0 := max64(0, net)
	m1 := max64(m0, prefixPeak)
	if cap <= 1 || m1 == m0 {
		return Profile{Net: net, M: []int64{m0}}
	}
	return Profile{Net: net, M: []int64{m0, m1}}
}

// series composes a-then-b: b's instructions all happen after a's, so a
// downset is either inside a, or all of a plus a downset of b.
func series(a, b Profile, cap int) Profile {
	if len(a.M) == 1 && a.M[0] == 0 && a.Net == 0 {
		return b
	}
	n := max(len(a.M), len(b.M))
	if n > cap {
		n = cap
	}
	m := make([]int64, n)
	for q := 0; q < n; q++ {
		m[q] = max64(a.At(q), a.Net+b.At(q))
	}
	return Profile{Net: a.Net + b.Net, M: trim(m)}
}

// par composes two parallel branches: downsets choose independently inside
// each, and the active-strand budget q splits across them — a max-plus
// convolution of the two profiles.
func par(a, b Profile, cap int) Profile {
	n := len(a.M) + len(b.M) - 1
	if n > cap {
		n = cap
	}
	m := make([]int64, n)
	for q := 0; q < n; q++ {
		best := int64(minInt64)
		for q1 := 0; q1 < len(a.M) && q1 <= q; q1++ {
			if v := a.M[q1] + b.At(q-q1); v > best {
				best = v
			}
		}
		m[q] = best
	}
	return Profile{Net: a.Net + b.Net, M: trim(m)}
}

// trim drops a saturated tail so profile lengths track distinct entries,
// keeping the series/par loops short on narrow subcomputations.
func trim(m []int64) []int64 {
	n := len(m)
	for n > 1 && m[n-1] == m[n-2] {
		n--
	}
	return m[:n]
}

const minInt64 = -1 << 63

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
