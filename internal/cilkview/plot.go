package cilkview

import (
	"fmt"
	"strings"
)

// Plot renders the Fig. 3 picture as ASCII art: speedup (y) against
// processor count (x), with the Work Law line of slope 1 ('/'), the Span
// Law ceiling at the parallelism ('='), the burdened lower-bound estimate
// ('~'), and measured speedups ('o'). The y-axis is clipped to the visible
// region, exactly as the figure clips its bounds to the plotted window.
func Plot(p Profile, maxProcs int, measured []Point) string {
	const width, height = 64, 20
	if maxProcs < 2 {
		maxProcs = 2
	}
	ymax := p.Parallelism() * 1.2
	if lim := float64(maxProcs); ymax > lim*1.2 {
		ymax = lim * 1.2
	}
	if ymax < 2 {
		ymax = 2
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// row 0 is the top; map speedup y∈[0,ymax] to rows.
	put := func(x int, y float64, ch byte) {
		if x < 0 || x >= width || y < 0 {
			return
		}
		r := height - 1 - int(y/ymax*float64(height-1)+0.5)
		if r < 0 || r >= height {
			return
		}
		grid[r][x] = ch
	}
	xOf := func(procs float64) int {
		return int(procs / float64(maxProcs) * float64(width-1))
	}
	for x := 0; x < width; x++ {
		procs := float64(x) / float64(width-1) * float64(maxProcs)
		put(x, p.Parallelism(), '=') // Span Law ceiling
		put(x, procs, '/')           // Work Law, slope 1
		if procs >= 1 {
			put(x, p.SpeedupLowerEstimate(int(procs+0.5)), '~')
		}
	}
	for _, m := range measured {
		put(xOf(float64(m.Procs)), m.Speedup, 'o')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup (ceiling: parallelism %.2f)\n", p.Parallelism())
	for r := 0; r < height; r++ {
		y := (float64(height-1-r) / float64(height-1)) * ymax
		if r%4 == 0 || r == height-1 {
			fmt.Fprintf(&b, "%6.1f |%s\n", y, grid[r])
		} else {
			fmt.Fprintf(&b, "       |%s\n", grid[r])
		}
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        0%*d  (processors)\n", width-1, maxProcs)
	b.WriteString("        / work law    = span law    ~ burdened lower estimate    o measured\n")
	return b.String()
}
