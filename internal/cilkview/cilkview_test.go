package cilkview

import (
	"strings"
	"testing"

	"cilkgo/internal/sched"
	"cilkgo/internal/vprog"
)

func TestProfileBounds(t *testing.T) {
	p := Profile{Name: "t", Work: 1800, Span: 90, BurdenedSpan: 180}
	if got := p.Parallelism(); got != 20 {
		t.Fatalf("Parallelism = %v, want 20", got)
	}
	if got := p.BurdenedParallelism(); got != 10 {
		t.Fatalf("BurdenedParallelism = %v, want 10", got)
	}
	if got := p.SpeedupUpper(4); got != 4 {
		t.Fatalf("SpeedupUpper(4) = %v, want 4 (work law binds)", got)
	}
	if got := p.SpeedupUpper(64); got != 20 {
		t.Fatalf("SpeedupUpper(64) = %v, want parallelism 20 (span law binds)", got)
	}
	// Lower estimate: T1/(T1/P + T∞ᵇ); at P=1 it is < 1; it approaches the
	// burdened parallelism as P grows.
	if got := p.SpeedupLowerEstimate(1); got >= 1 {
		t.Fatalf("lower estimate at P=1 = %v, want < 1", got)
	}
	if got := p.SpeedupLowerEstimate(1 << 20); got < 9.9 || got > 10 {
		t.Fatalf("lower estimate at P→∞ = %v, want → burdened parallelism 10", got)
	}
	// Monotone nondecreasing in P.
	prev := 0.0
	for procs := 1; procs <= 64; procs *= 2 {
		cur := p.SpeedupLowerEstimate(procs)
		if cur < prev {
			t.Fatalf("lower estimate decreased at P=%d: %v < %v", procs, cur, prev)
		}
		prev = cur
	}
}

func TestFromProgramBurden(t *testing.T) {
	prog := vprog.Fib(10)
	p := FromProgram(prog, 100)
	m := vprog.Analyze(prog)
	if p.Work != m.Work || p.Span != m.Span {
		t.Fatalf("profile work/span %d/%d, want %d/%d", p.Work, p.Span, m.Work, m.Span)
	}
	if p.BurdenedSpan <= p.Span {
		t.Fatalf("burdened span %d must exceed span %d", p.BurdenedSpan, p.Span)
	}
	// fib's critical path has one spawn per level: burden adds ~100/level.
	if p.BurdenedSpan > p.Span+100*20 {
		t.Fatalf("burdened span %d unreasonably large", p.BurdenedSpan)
	}
}

func TestRenderAndCSV(t *testing.T) {
	p := FromProgram(vprog.Qsort(100_000, 1, 32), 50)
	out := Render(p, []int{1, 2, 4, 8}, []Point{{Procs: 4, Speedup: 3.7}})
	for _, want := range []string{"Parallelism profile", "Work (T1)", "Burdened parallelism", "3.70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
	csv := CSV(p, []int{1, 2}, nil)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "procs,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestMeasureSerialProgram(t *testing.T) {
	// A purely serial program has parallelism ≈ 1.
	p, err := Measure("serial", func(c *sched.Context) {
		busyWork(2_000_000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Work <= 0 || p.Span <= 0 {
		t.Fatalf("profile = %+v, want positive work and span", p)
	}
	par := p.Parallelism()
	if par < 0.9 || par > 1.1 {
		t.Fatalf("serial program parallelism = %.3f, want ≈ 1", par)
	}
}

func TestMeasureParallelProgram(t *testing.T) {
	// Eight equal spawned chunks: parallelism should be well above 1 and at
	// most 8 (plus measurement noise slack).
	p, err := Measure("wide", func(c *sched.Context) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(*sched.Context) { busyWork(1_500_000) })
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	par := p.Parallelism()
	if par < 3 {
		t.Fatalf("parallelism = %.2f, want clearly parallel (≥ 3)", par)
	}
	if par > 9 {
		t.Fatalf("parallelism = %.2f exceeds the 8-way structure", par)
	}
	if p.Spawns != 8 {
		t.Fatalf("Spawns = %d, want 8", p.Spawns)
	}
}

func TestMeasureRespectsSyncStructure(t *testing.T) {
	// Two phases of 4 spawns with a sync between: parallelism ≤ 4.
	p, err := Measure("phased", func(c *sched.Context) {
		for phase := 0; phase < 2; phase++ {
			for i := 0; i < 4; i++ {
				c.Spawn(func(*sched.Context) { busyWork(1_000_000) })
			}
			c.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if par := p.Parallelism(); par > 5 {
		t.Fatalf("parallelism = %.2f, but sync caps the structure at 4", par)
	}
}

// busyWork spins for roughly n cheap operations; the sink defeats dead-code
// elimination.
var sink int64

func busyWork(n int) {
	s := int64(0)
	for i := 0; i < n; i++ {
		s += int64(i ^ (i >> 3))
	}
	sink += s
}

func TestPlot(t *testing.T) {
	p := FromProgram(vprog.Qsort(1_000_000, 1, 256), 200)
	out := Plot(p, 32, []Point{{Procs: 4, Speedup: 3.5}, {Procs: 16, Speedup: 6.1}})
	for _, want := range []string{"speedup", "=", "/", "~", "o", "(processors)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Plot output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n < 20 {
		t.Fatalf("plot suspiciously small: %d lines", n)
	}
}

func TestPlotDegenerate(t *testing.T) {
	// A serial profile (parallelism 1) must not panic or divide by zero.
	p := Profile{Name: "serial", Work: 100, Span: 100, BurdenedSpan: 100}
	out := Plot(p, 1, nil)
	if !strings.Contains(out, "parallelism 1.00") {
		t.Fatalf("degenerate plot:\n%s", out)
	}
}
