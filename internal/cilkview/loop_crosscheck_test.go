package cilkview

import (
	"sync/atomic"
	"testing"

	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
)

// The canonical loop for the eager/lazy cross-check: 1024 iterations at
// grain 16 is a complete binary divide-and-conquer over 64 leaf chunks in
// the serial elision — 63 spawns — and a single range task of 64 grains on
// the parallel runtime.
const (
	xcN     = 1024
	xcGrain = 16
	xcLeaf  = xcN / xcGrain // 64 leaf chunks in the eager dag
)

var xcSink atomic.Int64 // defeats dead-code elimination of the body's work

func xcBody(count *atomic.Int64) func(c *sched.Context, i int) {
	return func(c *sched.Context, i int) {
		x := 0
		for k := 0; k < 200; k++ { // enough work per iteration to time a strand
			x += k ^ i
		}
		xcSink.Store(int64(x))
		count.Add(1)
	}
}

// TestLoopProfilePinned pins the canonical loop's parallelism profile as
// Cilkview sees it: the serial elision executes the eager divide-and-conquer
// dag literally, so Measure must observe exactly the 63 spawns of a complete
// binary split over 64 leaves, and the measured parallelism must sit in the
// band the balanced dag predicts (≈ leaves/log₂(leaves); wide noise margin).
func TestLoopProfilePinned(t *testing.T) {
	var sink atomic.Int64
	p, err := Measure("cilk_for-1024x16", func(c *sched.Context) {
		pfor.ForGrain(c, 0, xcN, xcGrain, xcBody(&sink))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Load(); got != xcN {
		t.Fatalf("iterations = %d, want exactly %d", got, xcN)
	}
	if p.Spawns != xcLeaf-1 {
		t.Fatalf("eager dag spawns = %d, want %d (complete binary split over %d leaves)",
			p.Spawns, xcLeaf-1, xcLeaf)
	}
	if p.Work <= 0 || p.Span <= 0 {
		t.Fatalf("degenerate profile: work=%d span=%d", p.Work, p.Span)
	}
	// Balanced 64-leaf dag: parallelism ≈ 64/(log₂64 + 1) ≈ 9. Timing noise
	// moves it, but it cannot collapse to serial or exceed the leaf count.
	if par := p.Parallelism(); par < 1.5 || par > float64(xcLeaf) {
		t.Fatalf("measured parallelism = %.2f, want in (1.5, %d]", par, xcLeaf)
	}
}

// TestLazySplitMatchesEagerDag cross-checks the lazy runtime against the
// eager dag Cilkview measured above: the lazy loop must perform the same
// work partition. With no thieves the peel sequence is deterministic and
// reproduces the eager dag's leaves exactly — 64 chunks, zero splits. Under
// steal pressure the partition may gain at most one sub-grain tail chunk per
// steal-driven split, so chunk count is bounded by leaves + LoopSplits, and
// the split tree stays logarithmic in the leaf count rather than linear in n.
func TestLazySplitMatchesEagerDag(t *testing.T) {
	// No thieves: the lazy schedule is the eager dag's leaf sequence.
	rt1 := sched.New(sched.WithWorkers(1))
	var sink atomic.Int64
	st, err := rt1.RunWithStats(func(c *sched.Context) {
		pfor.ForGrain(c, 0, xcN, xcGrain, xcBody(&sink))
	})
	rt1.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Load(); got != xcN {
		t.Fatalf("1-worker lazy run: iterations = %d, want exactly %d", got, xcN)
	}
	if st.ChunksPeeled != xcLeaf || st.LoopSplits != 0 || st.RangeSteals != 0 {
		t.Fatalf("1-worker lazy run: chunks=%d splits=%d rangeSteals=%d, want %d/0/0 (eager leaf partition)",
			st.ChunksPeeled, st.LoopSplits, st.RangeSteals, xcLeaf)
	}
	if st.Spawns != 0 {
		t.Fatalf("1-worker lazy run spawned %d tasks; the lazy loop must not spawn", st.Spawns)
	}

	// Steal pressure: same work, partition within the split-tree bounds.
	rt := sched.New(sched.WithWorkers(8))
	defer rt.Shutdown()
	for trial := 0; trial < 10; trial++ {
		var n atomic.Int64
		st, err := rt.RunWithStats(func(c *sched.Context) {
			pfor.ForGrain(c, 0, xcN, xcGrain, xcBody(&n))
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != xcN {
			t.Fatalf("trial %d: iterations counted %d, want exactly %d", trial, got, xcN)
		}
		if st.ChunksPeeled < xcLeaf {
			t.Fatalf("trial %d: chunks=%d < eager leaf count %d (iterations lost?)",
				trial, st.ChunksPeeled, xcLeaf)
		}
		if st.ChunksPeeled > st.LoopSplits+xcLeaf {
			t.Fatalf("trial %d: chunks=%d exceeds leaves+splits=%d — partition diverged from the dag",
				trial, st.ChunksPeeled, st.LoopSplits+xcLeaf)
		}
		// O(P·log(n/grain)) pieces: with P=8 and 64 grains the split tree
		// cannot approach the eager dag's 63 internal nodes per steal-free
		// execution; allow the full dag as a generous ceiling.
		if st.LoopSplits >= xcLeaf {
			t.Fatalf("trial %d: %d splits for a %d-grain loop — lazy splitting degenerated to eager",
				trial, st.LoopSplits, xcLeaf)
		}
	}
}
