// Package cilkview reproduces the Cilk++ performance-analysis tool the
// paper demonstrates in Fig. 3: given the work and span of a computation,
// it derives the speedup bounds of §2 — the Work Law line of slope 1, the
// Span Law ceiling at the parallelism T1/T∞ — together with the tool's
// estimated lower bound on speedup based on burdened parallelism, "which
// takes into account the estimated cost of scheduling", and renders them as
// the table/series behind the figure.
//
// Profiles come from two sources:
//
//   - analytically, from a virtual program (vprog.Analyze /
//     vprog.AnalyzeBurdened), which scales to the paper's 10⁸-element
//     quicksort; and
//   - empirically, from an instrumented serial run of a real program on
//     the runtime (Measure), timing every strand between parallel-control
//     events, exactly as the tool profiles a real binary.
package cilkview

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cilkgo/internal/dag"
	"cilkgo/internal/sched"
	"cilkgo/internal/vprog"
)

// Profile is the work/span summary of one computation.
type Profile struct {
	Name string
	// Work and Span are in abstract cost units (virtual programs) or
	// nanoseconds (measured runs).
	Work int64
	Span int64
	// BurdenedSpan is the span recomputed with Burden units of scheduling
	// overhead charged per spawn; BurdenedSpan == Span when Burden is 0.
	BurdenedSpan int64
	Burden       int64
	Spawns       int64
}

// Parallelism returns T1/T∞.
func (p Profile) Parallelism() float64 {
	if p.Span == 0 {
		return 0
	}
	return float64(p.Work) / float64(p.Span)
}

// BurdenedParallelism returns T1/T∞ᵇ, the figure's lower asymptote.
func (p Profile) BurdenedParallelism() float64 {
	if p.BurdenedSpan == 0 {
		return 0
	}
	return float64(p.Work) / float64(p.BurdenedSpan)
}

// SpeedupUpper returns the upper bound on speedup at P processors implied
// by the Work and Span Laws: min(P, T1/T∞).
func (p Profile) SpeedupUpper(procs int) float64 {
	if par := p.Parallelism(); par < float64(procs) {
		return par
	}
	return float64(procs)
}

// SpeedupLowerEstimate returns the tool's estimated lower bound on speedup
// at P processors: T1 / (T1/P + T∞ᵇ), the greedy bound evaluated with the
// burdened span.
func (p Profile) SpeedupLowerEstimate(procs int) float64 {
	if p.Work == 0 {
		return 0
	}
	est := float64(p.Work)/float64(procs) + float64(p.BurdenedSpan)
	return float64(p.Work) / est
}

// FromProgram profiles a virtual program analytically with the given
// per-spawn burden.
func FromProgram(prog vprog.Program, burden int64) Profile {
	m := vprog.Analyze(prog)
	bm := m
	if burden > 0 {
		bm = vprog.AnalyzeBurdened(prog, burden)
	}
	return Profile{
		Name:         prog.Name,
		Work:         m.Work,
		Span:         m.Span,
		BurdenedSpan: bm.Span,
		Burden:       burden,
		Spawns:       m.Spawns,
	}
}

// Point is one measured speedup sample plotted against the bounds.
type Point struct {
	Procs   int
	Speedup float64
}

// Render formats the profile as the Fig. 3 table: one row per processor
// count with the lower estimate, any measured points, and the two upper
// bounds. procs lists the machine sizes to tabulate; measured may be nil.
func Render(p Profile, procs []int, measured []Point) string {
	byProcs := make(map[int]float64, len(measured))
	for _, m := range measured {
		byProcs[m.Procs] = m.Speedup
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Parallelism profile: %s\n", p.Name)
	fmt.Fprintf(&b, "  Work (T1)              %18d\n", p.Work)
	fmt.Fprintf(&b, "  Span (T∞)              %18d\n", p.Span)
	fmt.Fprintf(&b, "  Parallelism (T1/T∞)    %18.2f\n", p.Parallelism())
	if p.Burden > 0 {
		fmt.Fprintf(&b, "  Burdened span          %18d  (burden %d/spawn)\n", p.BurdenedSpan, p.Burden)
		fmt.Fprintf(&b, "  Burdened parallelism   %18.2f\n", p.BurdenedParallelism())
	}
	fmt.Fprintf(&b, "  Spawns                 %18d\n", p.Spawns)
	b.WriteString("\n      P   lower-est")
	if len(measured) > 0 {
		b.WriteString("    measured")
	}
	b.WriteString("    work-law    span-law\n")
	sorted := append([]int(nil), procs...)
	sort.Ints(sorted)
	for _, n := range sorted {
		fmt.Fprintf(&b, "  %5d  %10.2f", n, p.SpeedupLowerEstimate(n))
		if len(measured) > 0 {
			if s, ok := byProcs[n]; ok {
				fmt.Fprintf(&b, "  %10.2f", s)
			} else {
				fmt.Fprintf(&b, "  %10s", "-")
			}
		}
		fmt.Fprintf(&b, "  %10d  %10.2f\n", n, p.Parallelism())
	}
	return b.String()
}

// CSV emits the same series as comma-separated values for plotting:
// procs,lower,measured,worklaw,spanlaw (measured empty when absent).
func CSV(p Profile, procs []int, measured []Point) string {
	byProcs := make(map[int]float64, len(measured))
	for _, m := range measured {
		byProcs[m.Procs] = m.Speedup
	}
	var b strings.Builder
	b.WriteString("procs,lower_estimate,measured,work_law,span_law\n")
	sorted := append([]int(nil), procs...)
	sort.Ints(sorted)
	for _, n := range sorted {
		fmt.Fprintf(&b, "%d,%.4f,", n, p.SpeedupLowerEstimate(n))
		if s, ok := byProcs[n]; ok {
			fmt.Fprintf(&b, "%.4f", s)
		}
		fmt.Fprintf(&b, ",%d,%.4f\n", n, p.Parallelism())
	}
	return b.String()
}

// Measure profiles a real computation: it executes fn as its serial elision
// with timing hooks, charging the wall-clock duration of every strand
// (the code between consecutive parallel-control events) as that strand's
// work, and reconstructs the computation's dag to obtain measured work and
// span in nanoseconds. This is how the Cilk++ tool produced Fig. 3 from an
// actual quicksort binary.
func Measure(name string, fn func(*sched.Context)) (Profile, error) {
	tr := &timingHooks{bld: dag.NewBuilder(), last: time.Now()}
	rt := sched.New(sched.WithSerialElision(), sched.WithHooks(tr))
	if err := rt.Run(fn); err != nil {
		return Profile{}, err
	}
	tr.charge() // close the final strand
	g := tr.bld.Finish()
	gm, err := g.Analyze()
	if err != nil {
		return Profile{}, err
	}
	return Profile{
		Name:         name,
		Work:         gm.Work,
		Span:         gm.Span,
		BurdenedSpan: gm.Span,
		Spawns:       tr.spawns,
	}, nil
}

// timingHooks accumulates strand durations into a dag builder as events
// arrive. The hooks run serially on one goroutine.
type timingHooks struct {
	bld      *dag.Builder
	last     time.Time
	spawns   int64
	depth    int  // spawned/called frames currently open (root excluded)
	rootOpen bool // the root frame's FrameStart has fired
}

// charge closes the current strand, crediting the elapsed wall time.
func (h *timingHooks) charge() {
	now := time.Now()
	ns := now.Sub(h.last).Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.bld.Step(ns)
	h.last = now
}

func (h *timingHooks) Spawn() { h.charge(); h.spawns++ }

func (h *timingHooks) FrameStart() {
	h.charge()
	if !h.rootOpen {
		// The builder's root frame is already open; just note the event.
		h.rootOpen = true
		return
	}
	h.bld.Spawn()
	h.depth++
}

func (h *timingHooks) FrameEnd() {
	h.charge()
	if h.depth == 0 {
		return // root
	}
	h.bld.Return()
	h.depth--
}

func (h *timingHooks) CallStart() {
	h.charge()
	h.bld.Call()
	h.depth++
}

func (h *timingHooks) CallEnd() {
	h.charge()
	h.bld.ReturnCall()
	h.depth--
}

func (h *timingHooks) Sync() {
	h.charge()
	h.bld.Sync()
}
