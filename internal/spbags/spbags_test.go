package spbags

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cilkgo/internal/dag"
)

// TestSpawnParallelUntilSync walks the canonical sequence: a parent spawns a
// child; after the child returns its work is parallel with the parent's
// continuation, and becomes serial after the sync.
func TestSpawnParallelUntilSync(t *testing.T) {
	b := New()
	parent := b.NewProc()
	child := b.NewProc()
	// child executes and returns (implicitly synced, empty P-bag).
	b.ReturnSpawned(parent, child)
	if !b.InParallel(child) {
		t.Fatal("returned spawned child must be in a P-bag before the sync")
	}
	if !b.InSeries(parent) {
		t.Fatal("the executing procedure itself is always in series")
	}
	b.Sync(parent)
	if !b.InSeries(child) {
		t.Fatal("after sync the child's work must be in series")
	}
}

func TestCalledChildIsSerial(t *testing.T) {
	b := New()
	parent := b.NewProc()
	child := b.NewProc()
	b.ReturnCalled(parent, child)
	if !b.InSeries(child) {
		t.Fatal("a called child's work is serial with the continuation")
	}
}

func TestNestedSpawnMergesThroughImplicitSync(t *testing.T) {
	// parent spawns F; F spawns G; G returns to F (parallel inside F);
	// F syncs implicitly before returning; F returns to parent: both F and
	// G must now be parallel with the parent's continuation.
	b := New()
	parent := b.NewProc()
	f := b.NewProc()
	g := b.NewProc()
	b.ReturnSpawned(f, g)
	if !b.InParallel(g) {
		t.Fatal("G parallel with F's continuation")
	}
	b.Sync(f) // F's implicit sync before return
	if !b.InSeries(g) {
		t.Fatal("after F's sync, G serial within F")
	}
	b.ReturnSpawned(parent, f)
	if !b.InParallel(f) || !b.InParallel(g) {
		t.Fatal("F and G must both be parallel with parent's continuation")
	}
	b.Sync(parent)
	if !b.InSeries(f) || !b.InSeries(g) {
		t.Fatal("after parent's sync, F and G serial")
	}
}

func TestTwoSiblingsBothParallel(t *testing.T) {
	b := New()
	parent := b.NewProc()
	c1 := b.NewProc()
	b.ReturnSpawned(parent, c1)
	c2 := b.NewProc()
	// While c2 executes, c1 is parallel with it.
	if !b.InParallel(c1) {
		t.Fatal("completed sibling must be parallel with executing sibling")
	}
	b.Sync(c2) // c2's implicit sync (no children): no-op
	b.ReturnSpawned(parent, c2)
	if !b.InParallel(c1) || !b.InParallel(c2) {
		t.Fatal("both siblings parallel with parent's continuation")
	}
}

func TestSyncEmptyPBagIsNoop(t *testing.T) {
	b := New()
	p := b.NewProc()
	b.Sync(p)
	b.Sync(p)
	if !b.InSeries(p) {
		t.Fatal("procedure must stay in its own S-bag")
	}
}

func TestReturnSpawnedWithUnsyncedChildPanics(t *testing.T) {
	b := New()
	parent := b.NewProc()
	f := b.NewProc()
	g := b.NewProc()
	b.ReturnSpawned(f, g) // F now has a nonempty P-bag
	defer func() {
		if recover() == nil {
			t.Fatal("returning a spawned child with nonempty P-bag must panic")
		}
	}()
	b.ReturnSpawned(parent, f)
}

func TestProcRangeChecks(t *testing.T) {
	b := New()
	b.NewProc()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range proc must panic")
		}
	}()
	b.InSeries(Proc(5))
}

// spExec runs a randomly generated fork-join program serially, maintaining
// SP-bags and the ground-truth dag in lockstep, and checks at every executed
// instruction that the SP-bags classification of every previously executed
// instruction matches dag reachability. This is the SP-bags theorem as a
// property test.
type spExec struct {
	bags *Bags
	bld  *dag.Builder
	rng  *rand.Rand
	// trace records (procedure, dag node) for every executed instruction.
	procs []Proc
	nodes []dag.Node
	fail  string
}

func (e *spExec) step(cur Proc) {
	node := e.bld.Step(1)
	g := e.bld.Graph()
	for i, p := range e.procs {
		wantSeries := g.Precedes(e.nodes[i], node)
		if got := e.bags.InSeries(p); got != wantSeries && e.fail == "" {
			e.fail = "SP-bags disagrees with dag reachability"
		}
	}
	e.procs = append(e.procs, cur)
	e.nodes = append(e.nodes, node)
}

func (e *spExec) run(depth int) Proc {
	cur := e.bags.NewProc()
	nOps := e.rng.Intn(6) + 1
	for op := 0; op < nOps; op++ {
		switch r := e.rng.Intn(5); {
		case r == 0 && depth < 4: // spawn
			e.bld.Spawn()
			child := e.run(depth + 1)
			e.bld.Return()
			e.bags.ReturnSpawned(cur, child)
		case r == 1 && depth < 4: // call
			e.bld.Call()
			child := e.run(depth + 1)
			e.bld.ReturnCall()
			e.bags.ReturnCalled(cur, child)
		case r == 2: // sync
			e.bld.Sync()
			e.bags.Sync(cur)
		default:
			e.step(cur)
		}
	}
	// implicit sync before return
	e.bags.Sync(cur)
	return cur
}

func TestQuickAgainstDagModel(t *testing.T) {
	f := func(seed int64) bool {
		e := &spExec{
			bags: New(),
			bld:  dag.NewBuilder(),
			rng:  rand.New(rand.NewSource(seed)),
		}
		e.run(0)
		if e.fail != "" {
			t.Logf("seed %d: %s", seed, e.fail)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPBagsEvents(b *testing.B) {
	bags := New()
	root := bags.NewProc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := bags.NewProc()
		bags.Sync(child)
		bags.ReturnSpawned(root, child)
		if i%8 == 0 {
			bags.Sync(root)
		}
		bags.InSeries(child)
	}
}
