// Package spbags implements the SP-bags algorithm of Feng and Leiserson
// ("Efficient detection of determinacy races in Cilk programs", SPAA 1997),
// the provably good algorithm underlying the Cilkscreen race detector (§4
// of the paper).
//
// SP-bags maintains, during a single serial depth-first execution of a
// fork-join program, enough information to answer in amortized O(α) time:
// is previously executed work of procedure F in series or logically in
// parallel with the instruction executing right now?
//
// Every procedure F owns two bags of procedures, both represented as sets
// in one disjoint-set forest:
//
//	S-bag S_F: procedures whose completed work precedes (is in series
//	           with) the strand currently executing in F's subcomputation;
//	P-bag P_F: procedures whose completed work operates logically in
//	           parallel with that strand.
//
// The bags evolve under four events of the serial execution:
//
//	spawn/call of F:          S_F ← {F};  P_F ← ∅
//	sync in F:                S_F ← S_F ∪ P_F;  P_F ← ∅
//	spawned F′ returns to F:  P_F ← P_F ∪ S_F′
//	called  F′ returns to F:  S_F ← S_F ∪ S_F′
//
// (On return P_F′ is always empty because every Cilk procedure syncs
// implicitly before returning.) The SP-bags theorem: at any moment of the
// serial execution, the already-executed work of procedure X is in series
// with the current instruction iff X is in an S-bag.
package spbags

import (
	"fmt"

	"cilkgo/internal/dsu"
)

// Proc is a dense procedure handle issued by NewProc.
type Proc int32

// None is the null procedure, usable as an "empty shadow slot" sentinel.
const None Proc = -1

// kind tags the bag a disjoint set currently constitutes.
type kind int8

const (
	kindS kind = iota
	kindP
)

// Bags maintains SP-bags state for one serial execution.
type Bags struct {
	forest dsu.Forest
	// bagKind[r] is the kind of the bag whose set representative is r; it
	// is meaningful only when r is a current representative.
	bagKind []kind
	// sRep[f] / pRep[f] hold an element of procedure f's S-/P-bag, or -1
	// when the P-bag is empty. (The S-bag is never empty: it contains f.)
	sRep []int32
	pRep []int32
}

// New returns an empty SP-bags structure.
func New() *Bags {
	return &Bags{}
}

// NewProc registers a procedure at its spawn or call: S_F ← {F}, P_F ← ∅.
func (b *Bags) NewProc() Proc {
	e := b.forest.MakeSet()
	if int(e) != len(b.bagKind) {
		panic("spbags: forest element allocation out of step")
	}
	b.bagKind = append(b.bagKind, kindS)
	b.sRep = append(b.sRep, e)
	b.pRep = append(b.pRep, -1)
	return Proc(e)
}

// Procs reports the number of registered procedures.
func (b *Bags) Procs() int { return len(b.sRep) }

func (b *Bags) check(f Proc) {
	if f < 0 || int(f) >= len(b.sRep) {
		panic(fmt.Sprintf("spbags: procedure %d out of range [0,%d)", f, len(b.sRep)))
	}
}

// Sync records a sync in procedure f: S_f ← S_f ∪ P_f, P_f ← ∅. Everything
// that ran in parallel with f's strand before the sync is in series with it
// afterwards.
func (b *Bags) Sync(f Proc) {
	b.check(f)
	if b.pRep[f] == -1 {
		return
	}
	r := b.forest.Union(b.sRep[f], b.pRep[f])
	b.bagKind[r] = kindS
	b.sRep[f] = r
	b.pRep[f] = -1
}

// ReturnSpawned records a spawned child returning to its parent:
// P_parent ← P_parent ∪ S_child. The child's completed work runs logically
// in parallel with the parent's continuation until the parent syncs.
func (b *Bags) ReturnSpawned(parent, child Proc) {
	b.check(parent)
	b.check(child)
	if b.pRep[child] != -1 {
		panic("spbags: spawned child returned with a nonempty P-bag (missing implicit sync)")
	}
	var r int32
	if b.pRep[parent] == -1 {
		r = b.forest.Find(b.sRep[child])
	} else {
		r = b.forest.Union(b.pRep[parent], b.sRep[child])
	}
	b.bagKind[r] = kindP
	b.pRep[parent] = r
}

// ReturnCalled records a called (not spawned) child returning to its
// parent: S_parent ← S_parent ∪ S_child. A call is serial, so the child's
// completed work is in series with everything that follows in the parent.
func (b *Bags) ReturnCalled(parent, child Proc) {
	b.check(parent)
	b.check(child)
	if b.pRep[child] != -1 {
		panic("spbags: called child returned with a nonempty P-bag (missing implicit sync)")
	}
	r := b.forest.Union(b.sRep[parent], b.sRep[child])
	b.bagKind[r] = kindS
	b.sRep[parent] = r
}

// InSeries reports whether procedure x's already-executed work is in series
// with the instruction currently executing, i.e. whether x is in an S-bag.
func (b *Bags) InSeries(x Proc) bool {
	b.check(x)
	return b.bagKind[b.forest.Find(int32(x))] == kindS
}

// InParallel reports whether procedure x's already-executed work operates
// logically in parallel with the current instruction (x is in a P-bag).
// This is the race-detection predicate: an access recorded by x and an
// access by the current strand to the same location race iff InParallel(x).
func (b *Bags) InParallel(x Proc) bool { return !b.InSeries(x) }
