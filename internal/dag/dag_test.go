package dag

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustAnalyze(t *testing.T, g *Dag) Metrics {
	t.Helper()
	m, err := g.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return m
}

func TestEmptyDag(t *testing.T) {
	g := New()
	m := mustAnalyze(t, g)
	if m.Work != 0 || m.Span != 0 || m.Parallelism != 0 {
		t.Fatalf("empty dag metrics = %+v", m)
	}
	p, err := g.CriticalPath()
	if err != nil || p != nil {
		t.Fatalf("CriticalPath on empty dag = %v, %v", p, err)
	}
}

func TestSingleNode(t *testing.T) {
	g := New()
	n := g.AddNode(7)
	m := mustAnalyze(t, g)
	if m.Work != 7 || m.Span != 7 || m.Parallelism != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	p, _ := g.CriticalPath()
	if len(p) != 1 || p[0] != n {
		t.Fatalf("CriticalPath = %v", p)
	}
}

func TestChainAndFork(t *testing.T) {
	// a -> b -> d ; a -> c -> d with weights 1,2,3,4.
	g := New()
	a, b, c, d := g.AddNode(1), g.AddNode(2), g.AddNode(3), g.AddNode(4)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	m := mustAnalyze(t, g)
	if m.Work != 10 {
		t.Fatalf("Work = %d, want 10", m.Work)
	}
	if m.Span != 8 { // a(1) + c(3) + d(4)
		t.Fatalf("Span = %d, want 8", m.Span)
	}
	path, _ := g.CriticalPath()
	want := []Node{a, c, d}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("CriticalPath = %v, want %v", path, want)
	}
	if !g.Precedes(a, d) || g.Precedes(d, a) {
		t.Fatal("precedence a ≺ d violated")
	}
	if !g.Parallel(b, c) {
		t.Fatal("b ‖ c expected")
	}
	if g.Parallel(a, a) {
		t.Fatal("a vertex is not parallel with itself")
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	a, b := g.AddNode(1), g.AddNode(1)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.Analyze(); err != ErrCycle {
		t.Fatalf("Analyze on cycle: err = %v, want ErrCycle", err)
	}
	if _, err := g.CriticalPath(); err != ErrCycle {
		t.Fatalf("CriticalPath on cycle: err = %v, want ErrCycle", err)
	}
}

// TestFig2 reproduces experiment E1: the paper's Figure 2 dag has work 18,
// span 9 (hence parallelism 2), critical path 1≺2≺3≺6≺7≺8≺11≺12≺18, and
// the stated precedence examples hold: 1≺2, 6≺12, 4‖9.
func TestFig2(t *testing.T) {
	g, nodes := Fig2()
	if g.Len() != 18 {
		t.Fatalf("Fig2 has %d vertices, want 18", g.Len())
	}
	m := mustAnalyze(t, g)
	if m.Work != 18 {
		t.Fatalf("work = %d, want 18", m.Work)
	}
	if m.Span != 9 {
		t.Fatalf("span = %d, want 9", m.Span)
	}
	if m.Parallelism != 2 {
		t.Fatalf("parallelism = %v, want 2", m.Parallelism)
	}
	if !g.Precedes(nodes[1], nodes[2]) {
		t.Error("want 1 ≺ 2")
	}
	if !g.Precedes(nodes[6], nodes[12]) {
		t.Error("want 6 ≺ 12")
	}
	if !g.Parallel(nodes[4], nodes[9]) {
		t.Error("want 4 ‖ 9")
	}
	path, _ := g.CriticalPath()
	wantLabels := []int{1, 2, 3, 6, 7, 8, 11, 12, 18}
	if len(path) != len(wantLabels) {
		t.Fatalf("critical path has %d vertices, want %d", len(path), len(wantLabels))
	}
	for i, label := range wantLabels {
		if path[i] != nodes[label] {
			t.Fatalf("critical path[%d] = node %v, want label %d", i, path[i], label)
		}
	}
}

func TestLawBounds(t *testing.T) {
	m := Metrics{Work: 18, Span: 9, Parallelism: 2}
	if got := WorkLawBound(m.Work, 4); got != 5 { // ceil(18/4)
		t.Fatalf("WorkLawBound = %d, want 5", got)
	}
	if got := SpanLawBound(m.Span); got != 9 {
		t.Fatalf("SpanLawBound = %d, want 9", got)
	}
	if got := SpeedupBound(m, 1); got != 1 {
		t.Fatalf("SpeedupBound(P=1) = %v, want 1", got)
	}
	if got := SpeedupBound(m, 64); got != 2 {
		t.Fatalf("SpeedupBound(P=64) = %v, want parallelism 2", got)
	}
}

func TestStrandsChain(t *testing.T) {
	g := New()
	a, b, c := g.AddNode(1), g.AddNode(1), g.AddNode(1)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	s := g.Strands()
	if len(s) != 1 || len(s[0]) != 3 {
		t.Fatalf("Strands = %v, want one strand of 3", s)
	}
}

func TestStrandsFig2(t *testing.T) {
	g, _ := Fig2()
	strands := g.Strands()
	seen := make(map[Node]bool)
	for _, s := range strands {
		if len(s) == 0 {
			t.Fatal("empty strand")
		}
		for _, v := range s {
			if seen[v] {
				t.Fatalf("vertex %v in two strands", v)
			}
			seen[v] = true
		}
		// Interior vertices must have in-degree and out-degree exactly 1.
		for i, v := range s {
			if i > 0 && len(g.Pred(v)) != 1 {
				t.Fatalf("strand interior %v has in-degree %d", v, len(g.Pred(v)))
			}
			if i < len(s)-1 && len(g.Succ(v)) != 1 {
				t.Fatalf("strand interior %v has out-degree %d", v, len(g.Succ(v)))
			}
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("strands cover %d of %d vertices", len(seen), g.Len())
	}
}

func TestBuilderSerialChain(t *testing.T) {
	b := NewBuilder()
	b.Step(3)
	b.Step(4)
	g := b.Finish()
	m := mustAnalyze(t, g)
	if m.Work != 7 || m.Span != 7 {
		t.Fatalf("metrics = %+v, want work=span=7", m)
	}
}

func TestBuilderSpawnSync(t *testing.T) {
	// Parent: step(1), spawn{step(5)}, step(2), sync, step(1).
	// Work = 9; span = 1 + max(5, 2) + 1 = 7.
	b := NewBuilder()
	b.Step(1)
	b.Spawn()
	b.Step(5)
	b.Return()
	b.Step(2)
	b.Sync()
	b.Step(1)
	g := b.Finish()
	m := mustAnalyze(t, g)
	if m.Work != 9 {
		t.Fatalf("Work = %d, want 9", m.Work)
	}
	if m.Span != 7 {
		t.Fatalf("Span = %d, want 7", m.Span)
	}
}

func TestBuilderImplicitSyncAtReturn(t *testing.T) {
	// A spawned child that itself spawns and returns without explicit sync
	// must still join its children before returning (§1: "every Cilk
	// function syncs implicitly before it returns").
	b := NewBuilder()
	b.Step(1)
	b.Spawn()
	{
		b.Step(1)
		b.Spawn()
		b.Step(10)
		b.Return()
		// no explicit Sync; Return joins the grandchild
		b.Return()
	}
	b.Step(1)
	b.Sync()
	b.Step(1)
	g := b.Finish()
	m := mustAnalyze(t, g)
	// Span: 1 (root) + child: 1 + grandchild 10 + join 0, then root tail 1 = 13.
	if m.Span != 13 {
		t.Fatalf("Span = %d, want 13", m.Span)
	}
	if m.Work != 14 {
		t.Fatalf("Work = %d, want 14", m.Work)
	}
}

func TestBuilderFibShape(t *testing.T) {
	// fib-like recursion: each frame does unit work, spawns two children,
	// syncs, unit work. Depth d. Work = 2*(2^(d+1)-1); span = 2*(d+1).
	var rec func(b *Builder, d int)
	rec = func(b *Builder, d int) {
		b.Step(1)
		if d > 0 {
			b.Spawn()
			rec(b, d-1)
			b.Return()
			b.Spawn()
			rec(b, d-1)
			b.Return()
			b.Sync()
		}
		b.Step(1)
	}
	b := NewBuilder()
	rec(b, 5)
	g := b.Finish()
	m := mustAnalyze(t, g)
	wantWork := int64(2 * (1<<6 - 1)) // 2^6-1 frames, weight 2 each
	if m.Work != wantWork {
		t.Fatalf("Work = %d, want %d", m.Work, wantWork)
	}
	if m.Span != 12 {
		t.Fatalf("Span = %d, want 12", m.Span)
	}
}

// Property: for random series-parallel constructions, span ≤ work, and both
// equal the serial execution time when there are no spawns.
func TestQuickBuilderLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		var work int64
		depth := 0
		for op := 0; op < 60; op++ {
			switch r := rng.Intn(4); {
			case r == 0 && depth < 6:
				b.Spawn()
				depth++
			case r == 1 && depth > 0:
				b.Return()
				depth--
			case r == 2:
				b.Sync()
			default:
				w := int64(rng.Intn(5))
				b.Step(w)
				work += w
			}
		}
		for depth > 0 {
			b.Return()
			depth--
		}
		g := b.Finish()
		m, err := g.Analyze()
		if err != nil {
			return false
		}
		return m.Work == work && m.Span <= m.Work && m.Span >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parallel is symmetric and Precedes is antisymmetric on random dags.
func TestQuickPrecedenceRelations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		const n = 20
		for i := 0; i < n; i++ {
			g.AddNode(1)
		}
		// Random edges only from lower to higher handles: guaranteed acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(5) == 0 {
					g.AddEdge(Node(i), Node(j))
				}
			}
		}
		for trial := 0; trial < 40; trial++ {
			x, y := Node(rng.Intn(n)), Node(rng.Intn(n))
			if g.Parallel(x, y) != g.Parallel(y, x) {
				return false
			}
			if x != y && g.Precedes(x, y) && g.Precedes(y, x) {
				return false
			}
			if x != y && !g.Parallel(x, y) && !g.Precedes(x, y) && !g.Precedes(y, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyzeWide(b *testing.B) {
	g := New()
	const n = 10000
	root := g.AddNode(1)
	sink := g.AddNode(1)
	for i := 0; i < n; i++ {
		v := g.AddNode(1)
		g.AddEdge(root, v)
		g.AddEdge(v, sink)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g, nodes := Fig2()
	labels := make(map[Node]string, len(nodes))
	for paperLabel, n := range nodes {
		labels[n] = fmt.Sprintf("%d", paperLabel)
	}
	out := g.DOT("fig2", labels)
	for _, want := range []string{"digraph \"fig2\"", "->", "penwidth=2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// All 18 nodes and 20 edges present.
	if got := strings.Count(out, "->"); got != 20 {
		t.Fatalf("DOT has %d edges, want 20", got)
	}
}

func TestDOTWeighted(t *testing.T) {
	g := New()
	a, b := g.AddNode(3), g.AddNode(5)
	g.AddEdge(a, b)
	out := g.DOT("w", nil)
	if !strings.Contains(out, "(3)") || !strings.Contains(out, "(5)") {
		t.Fatalf("weighted DOT must annotate weights:\n%s", out)
	}
}
