package dag

// Builder incrementally constructs the dag of a fork-join computation by
// replaying its spawn/sync structure, following §2's construction rules:
//
//   - a spawn creates two dependency edges emanating from the instruction
//     immediately before it — one to the first instruction of the spawned
//     function and one to the first instruction after the spawn; and
//   - a sync creates dependency edges from the final instruction of each
//     spawned function to the instruction immediately after the sync.
//
// Every function syncs implicitly before it returns. The builder enforces
// this: Return performs an implicit Sync, materializing a zero-weight join
// vertex when the sync is not followed by further work in the frame.
type Builder struct {
	g     *Dag
	stack []builderFrame
}

type builderFrame struct {
	cur      Node   // last instruction executed in this frame; -1 if none
	spawnCur Node   // parent instruction the frame's first node hangs from; -1 at root
	pending  []Node // final instructions of spawned, un-synced children
	joinNext []Node // child ends to wire into the next instruction (set by Sync)
	called   bool   // frame entered via Call rather than Spawn
}

// NewBuilder returns a builder positioned inside the root function.
func NewBuilder() *Builder {
	return &Builder{
		g:     New(),
		stack: []builderFrame{{cur: -1, spawnCur: -1}},
	}
}

func (b *Builder) top() *builderFrame { return &b.stack[len(b.stack)-1] }

// Step appends one instruction of the given weight to the current strand and
// returns its node.
func (b *Builder) Step(weight int64) Node {
	f := b.top()
	v := b.g.AddNode(weight)
	if f.cur != -1 {
		b.g.AddEdge(f.cur, v)
	} else if f.spawnCur != -1 {
		b.g.AddEdge(f.spawnCur, v)
	}
	for _, e := range f.joinNext {
		b.g.AddEdge(e, v)
	}
	f.joinNext = f.joinNext[:0]
	f.cur = v
	return v
}

// childAnchor returns the instruction a child frame entered right now hangs
// from: the parent's last instruction, or — when the parent has none yet —
// the instruction the parent itself hangs from. If a sync is pending (its
// join edges not yet wired to an instruction), a zero-weight instruction is
// materialized first, because the dag rule routes the synced children's
// edges to "the instruction immediately after the sync", which includes the
// child about to be entered.
func (b *Builder) childAnchor() Node {
	f := b.top()
	if len(f.joinNext) > 0 {
		return b.Step(0)
	}
	if f.cur != -1 {
		return f.cur
	}
	return f.spawnCur
}

// Spawn enters a newly spawned child function. Subsequent Steps belong to the
// child until the matching Return. The parent's continuation resumes after
// Return, in parallel with the child per the dag construction rule.
func (b *Builder) Spawn() {
	anchor := b.childAnchor()
	b.stack = append(b.stack, builderFrame{cur: -1, spawnCur: anchor})
}

// Call enters a called (not spawned) child function: the child executes
// serially within the caller's strand but opens its own sync scope. Use
// ReturnCall to leave it.
func (b *Builder) Call() {
	anchor := b.childAnchor()
	b.stack = append(b.stack, builderFrame{cur: -1, spawnCur: anchor, called: true})
}

// ReturnCall leaves a called function, applying its implicit sync. The
// caller's strand continues from the called frame's final instruction.
func (b *Builder) ReturnCall() {
	if len(b.stack) == 1 || !b.top().called {
		panic("dag: ReturnCall without matching Call")
	}
	end := b.closeFrame()
	b.stack = b.stack[:len(b.stack)-1]
	b.top().cur = end
}

// Sync joins all children spawned by the current frame since the previous
// sync: their final instructions gain edges to the instruction immediately
// after the sync (the next Step, or the implicit join vertex at Return).
func (b *Builder) Sync() {
	f := b.top()
	f.joinNext = append(f.joinNext, f.pending...)
	f.pending = f.pending[:0]
}

// Return leaves the current spawned function, performing the implicit sync,
// and records the frame's final instruction as a pending child of the parent.
// Return panics if called on the root frame; use Finish instead.
func (b *Builder) Return() {
	if len(b.stack) == 1 {
		panic("dag: Return on root frame; call Finish")
	}
	if b.top().called {
		panic("dag: Return on a called frame; use ReturnCall")
	}
	end := b.closeFrame()
	b.stack = b.stack[:len(b.stack)-1]
	parent := b.top()
	parent.pending = append(parent.pending, end)
}

// closeFrame applies the implicit sync and returns the frame's final node,
// materializing a zero-weight join vertex when needed.
func (b *Builder) closeFrame() Node {
	b.Sync()
	f := b.top()
	if len(f.joinNext) > 0 || f.cur == -1 {
		return b.Step(0)
	}
	return f.cur
}

// Graph exposes the dag under construction for live queries (precedence
// checks against already-built vertices). The graph remains owned by the
// builder; callers must not add nodes or edges through it.
func (b *Builder) Graph() *Dag { return b.g }

// Finish completes the root frame and returns the constructed dag. The
// builder must not be used afterwards.
func (b *Builder) Finish() *Dag {
	if len(b.stack) != 1 {
		panic("dag: Finish with unreturned spawned frames")
	}
	b.closeFrame()
	return b.g
}
