package dag

// Fig2 constructs the paper's Figure 2 example dag: 18 unit-weight
// instructions whose execution has work 18, span 9 and hence parallelism 2.
//
// The paper's prose pins down the figure's essential structure without
// reprinting every edge: 18 vertices of unit work; the critical path
// 1 ≺ 2 ≺ 3 ≺ 6 ≺ 7 ≺ 8 ≺ 11 ≺ 12 ≺ 18 of length 9; and the example
// relations 1 ≺ 2, 6 ≺ 12 and 4 ‖ 9. This constructor builds a fork-join
// dag satisfying all of those properties: a root procedure A with
// instructions {1,2,3,6,13,14,15,18} that spawns procedure B = {4,5,16,17}
// at instruction 3, spawns procedure C = {7,8,11,12} at instruction 6,
// spawns procedure E = {9,10} at instruction 13, and syncs at
// instruction 18.
//
// The returned map translates the paper's 1-based vertex labels to node
// handles, so tests can write nodes[1], nodes[12], and so on.
func Fig2() (*Dag, map[int]Node) {
	g := New()
	nodes := make(map[int]Node, 18)
	for label := 1; label <= 18; label++ {
		nodes[label] = g.AddNode(1)
	}
	edges := [][2]int{
		// Procedure A's serial spine, with spawns at 3, 6 and 13.
		{1, 2}, {2, 3},
		{3, 4}, {3, 6}, // spawn B; continuation
		{6, 7}, {6, 13}, // spawn C; continuation
		{13, 9}, {13, 14}, // spawn E; continuation
		{14, 15}, {15, 18},
		// Procedure B.
		{4, 5}, {5, 16}, {16, 17}, {17, 18},
		// Procedure C (carries the critical path).
		{7, 8}, {8, 11}, {11, 12}, {12, 18},
		// Procedure E.
		{9, 10}, {10, 18},
	}
	for _, e := range edges {
		g.AddEdge(nodes[e[0]], nodes[e[1]])
	}
	return g, nodes
}
