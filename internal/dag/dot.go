package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the dag in Graphviz dot format, in the visual style of the
// paper's Figure 2: circles for instructions, labeled with the node handle
// (or the provided labels) and, when weights are not all 1, the weight.
// Nodes on the critical path are drawn bold, matching how span discussions
// highlight it.
func (g *Dag) DOT(name string, labels map[Node]string) string {
	onPath := make(map[Node]bool)
	if path, err := g.CriticalPath(); err == nil {
		for _, v := range path {
			onPath[v] = true
		}
	}
	uniformWeight := true
	for v := 0; v < g.Len(); v++ {
		if g.weight[v] != 1 {
			uniformWeight = false
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=11];\n")
	for v := 0; v < g.Len(); v++ {
		label, ok := labels[Node(v)]
		if !ok {
			label = fmt.Sprintf("%d", v)
		}
		if !uniformWeight {
			label = fmt.Sprintf("%s\\n(%d)", label, g.weight[v])
		}
		attrs := fmt.Sprintf("label=%q", label)
		if onPath[Node(v)] {
			attrs += ", penwidth=2.5"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v, attrs)
	}
	// Deterministic edge order.
	type edge struct{ u, v Node }
	var edges []edge
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.succ[u] {
			edges = append(edges, edge{Node(u), v})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		style := ""
		if onPath[e.u] && onPath[e.v] {
			style = " [penwidth=2.0]"
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.u, e.v, style)
	}
	b.WriteString("}\n")
	return b.String()
}
