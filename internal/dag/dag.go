// Package dag implements the dag model of multithreading from §2 of the
// paper: a multithreaded execution is a directed acyclic graph whose
// vertices are instructions (or weighted strands) and whose edges are
// ordering dependencies.
//
// The package provides the two natural measures the model admits — work
// (total weight, T1) and span (longest weighted path, T∞) — together with
// parallelism (T1/T∞), critical-path extraction, precedence queries
// (x ≺ y and x ‖ y), strand decomposition, and the performance-law bounds
// (Work Law: T_P ≥ T1/P; Span Law: T_P ≥ T∞).
package dag

import (
	"errors"
	"fmt"
)

// Node identifies a vertex in a Dag. Nodes are dense handles allocated by
// AddNode, so they can index package-internal slices directly.
type Node int32

// Dag is a weighted directed acyclic graph under construction or analysis.
// Acyclicity is not enforced edge-by-edge; it is validated by the analysis
// entry points, which fail on cyclic inputs.
type Dag struct {
	weight []int64
	succ   [][]Node
	pred   [][]Node
	edges  int
}

// New returns an empty dag.
func New() *Dag { return &Dag{} }

// AddNode adds a vertex with the given nonnegative weight (its execution
// time in the model's unit-cost terms) and returns its handle.
func (g *Dag) AddNode(weight int64) Node {
	if weight < 0 {
		panic("dag: negative node weight")
	}
	n := Node(len(g.weight))
	g.weight = append(g.weight, weight)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return n
}

// AddEdge records the dependency u ≺ v: u must complete before v begins.
func (g *Dag) AddEdge(u, v Node) {
	g.checkNode(u)
	g.checkNode(v)
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edges++
}

func (g *Dag) checkNode(n Node) {
	if n < 0 || int(n) >= len(g.weight) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", n, len(g.weight)))
	}
}

// Len reports the number of vertices.
func (g *Dag) Len() int { return len(g.weight) }

// Edges reports the number of edges.
func (g *Dag) Edges() int { return g.edges }

// Weight returns the weight of node n.
func (g *Dag) Weight(n Node) int64 {
	g.checkNode(n)
	return g.weight[n]
}

// Succ returns the successors of n. The returned slice must not be modified.
func (g *Dag) Succ(n Node) []Node {
	g.checkNode(n)
	return g.succ[n]
}

// Pred returns the predecessors of n. The returned slice must not be modified.
func (g *Dag) Pred(n Node) []Node {
	g.checkNode(n)
	return g.pred[n]
}

// ErrCycle is returned by analyses when the graph is not acyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns a topological ordering of the vertices, or ErrCycle.
func (g *Dag) TopoOrder() ([]Node, error) {
	n := g.Len()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(len(g.pred[v]))
	}
	order := make([]Node, 0, n)
	queue := make([]Node, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, Node(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Metrics holds the dag model's summary measures for one computation.
type Metrics struct {
	Work        int64   // T1: total weight of all vertices
	Span        int64   // T∞: weight of the heaviest dependency path
	Parallelism float64 // T1 / T∞
	Nodes       int
	Edges       int
	// SpanNodes counts the vertices on the critical path returned by
	// CriticalPath (informational; several critical paths may exist).
	SpanNodes int
}

// Analyze computes work, span and parallelism. It returns ErrCycle for
// cyclic graphs and zero-valued metrics (Parallelism 0) for empty ones.
func (g *Dag) Analyze() (Metrics, error) {
	m := Metrics{Nodes: g.Len(), Edges: g.edges}
	order, err := g.TopoOrder()
	if err != nil {
		return Metrics{}, err
	}
	finish := make([]int64, g.Len()) // heaviest path weight ending at v, inclusive
	for _, v := range order {
		m.Work += g.weight[v]
		best := int64(0)
		for _, u := range g.pred[v] {
			if finish[u] > best {
				best = finish[u]
			}
		}
		finish[v] = best + g.weight[v]
		if finish[v] > m.Span {
			m.Span = finish[v]
		}
	}
	if m.Span > 0 {
		m.Parallelism = float64(m.Work) / float64(m.Span)
	}
	if p, err := g.CriticalPath(); err == nil {
		m.SpanNodes = len(p)
	}
	return m, nil
}

// CriticalPath returns one heaviest dependency path (the critical path,
// §2.2). Ties are broken toward the smallest node handle, which makes the
// result deterministic.
func (g *Dag) CriticalPath() ([]Node, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.Len()
	if n == 0 {
		return nil, nil
	}
	finish := make([]int64, n)
	from := make([]Node, n)
	for i := range from {
		from[i] = -1
	}
	var end Node = -1
	var best int64 = -1
	for _, v := range order {
		var pw int64
		var pf Node = -1
		for _, u := range g.pred[v] {
			if finish[u] > pw || (finish[u] == pw && pf != -1 && u < pf) {
				pw, pf = finish[u], u
			}
		}
		finish[v] = pw + g.weight[v]
		from[v] = pf
		if finish[v] > best || (finish[v] == best && v < end) {
			best, end = finish[v], v
		}
	}
	var path []Node
	for v := end; v != -1; v = from[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Precedes reports whether x ≺ y: x must complete before y can begin,
// i.e. there is a nonempty dependency path from x to y.
func (g *Dag) Precedes(x, y Node) bool {
	g.checkNode(x)
	g.checkNode(y)
	if x == y {
		return false
	}
	seen := make([]bool, g.Len())
	stack := []Node{x}
	seen[x] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succ[v] {
			if w == y {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Parallel reports whether x ‖ y: neither x ≺ y nor y ≺ x (§2).
// A vertex is not parallel with itself.
func (g *Dag) Parallel(x, y Node) bool {
	if x == y {
		return false
	}
	return !g.Precedes(x, y) && !g.Precedes(y, x)
}

// Strands decomposes the dag into strands (§4): maximal paths in which every
// interior vertex has exactly one incoming and one outgoing edge. Each vertex
// belongs to exactly one strand; strands are returned in order of their first
// vertex's handle.
func (g *Dag) Strands() [][]Node {
	n := g.Len()
	inStrand := make([]bool, n)
	var strands [][]Node
	isHead := func(v Node) bool {
		// A strand starts at v if v cannot extend a chain backward:
		// v has != 1 predecessor, or its sole predecessor branches.
		if len(g.pred[v]) != 1 {
			return true
		}
		u := g.pred[v][0]
		return len(g.succ[u]) != 1
	}
	for v := 0; v < n; v++ {
		if inStrand[v] || !isHead(Node(v)) {
			continue
		}
		s := []Node{Node(v)}
		inStrand[v] = true
		cur := Node(v)
		for len(g.succ[cur]) == 1 {
			next := g.succ[cur][0]
			if len(g.pred[next]) != 1 {
				break
			}
			s = append(s, next)
			inStrand[next] = true
			cur = next
		}
		strands = append(strands, s)
	}
	return strands
}

// WorkLawBound returns the Work Law lower bound on T_P (eq. 1): T1/P,
// rounded up, for P processors.
func WorkLawBound(work int64, p int) int64 {
	if p <= 0 {
		panic("dag: nonpositive processor count")
	}
	return (work + int64(p) - 1) / int64(p)
}

// SpanLawBound returns the Span Law lower bound on T_P (eq. 2): T∞.
func SpanLawBound(span int64) int64 { return span }

// SpeedupBound returns the upper bound on speedup for P processors implied
// by both laws together: min(P, T1/T∞) (§2.3).
func SpeedupBound(m Metrics, p int) float64 {
	if p <= 0 {
		panic("dag: nonpositive processor count")
	}
	if m.Parallelism < float64(p) {
		return m.Parallelism
	}
	return float64(p)
}
