package workloads

import (
	"math/rand"

	"cilkgo/internal/cilklock"
	"cilkgo/internal/hyper"
	"cilkgo/internal/sched"
)

// TreeNode is a node of the §5 collision-detection tree walk.
type TreeNode struct {
	Left, Right *TreeNode
	Value       int64
	// Pad models the per-node payload a real collision-detection tree
	// carries; touching it in HasProperty gives the predicate real cost.
	Pad [8]int64
}

// BuildTree builds a random binary tree with n nodes, values 0..n-1
// assigned in in-order so serial walk output is easy to check.
func BuildTree(n int, seed int64) *TreeNode {
	rng := rand.New(rand.NewSource(seed))
	var build func(count int) *TreeNode
	next := int64(0)
	build = func(count int) *TreeNode {
		if count == 0 {
			return nil
		}
		leftCount := rng.Intn(count)
		node := &TreeNode{}
		node.Left = build(leftCount)
		node.Value = next
		next++
		node.Right = build(count - 1 - leftCount)
		return node
	}
	return build(n)
}

// HasProperty is the paper's has_property predicate: a node "collides" when
// its value is divisible by modulus. workUnits of arithmetic per call model
// the geometric test a real collision detector performs.
func HasProperty(x *TreeNode, modulus int64, workUnits int) bool {
	s := x.Value
	for i := 0; i < workUnits; i++ {
		s += x.Pad[i%len(x.Pad)] ^ (s >> 3)
	}
	x.Pad[0] = s ^ x.Pad[0] // keep the loop observable
	return x.Value%modulus == 0
}

// WalkSerial is Fig. 4: the serial tree walk appending matching nodes to
// the output list, then visiting the left and right children — the paper's
// pre-order.
func WalkSerial(x *TreeNode, modulus int64, workUnits int, out *[]*TreeNode) {
	if x == nil {
		return
	}
	if HasProperty(x, modulus, workUnits) {
		*out = append(*out, x)
	}
	WalkSerial(x.Left, modulus, workUnits, out)
	WalkSerial(x.Right, modulus, workUnits, out)
}

// WalkMutex is Fig. 6: the parallel walk protecting the shared output list
// with a mutex. Correct, but contended — §5 reports a real-world case where
// this was slower on 4 processors than on one. Note the output order is
// scrambled relative to the serial walk, another defect §5 calls out.
func WalkMutex(c *sched.Context, x *TreeNode, modulus int64, workUnits int,
	mu *cilklock.Mutex, out *[]*TreeNode) {
	if x == nil {
		return
	}
	if HasProperty(x, modulus, workUnits) {
		mu.Lock()
		*out = append(*out, x)
		mu.Unlock()
	}
	left := x.Left
	c.Spawn(func(c *sched.Context) {
		WalkMutex(c, left, modulus, workUnits, mu, out)
		c.Sync()
	})
	WalkMutex(c, x.Right, modulus, workUnits, mu, out)
	c.Sync()
}

// WalkReducer is Fig. 7: the parallel walk with a reducer_list_append
// hyperobject. No locks, no restructuring, and the output order equals the
// serial walk's exactly.
func WalkReducer(c *sched.Context, x *TreeNode, modulus int64, workUnits int,
	out hyper.ListAppend[*TreeNode]) {
	if x == nil {
		return
	}
	if HasProperty(x, modulus, workUnits) {
		out.PushBack(c, x)
	}
	left := x.Left
	c.Spawn(func(c *sched.Context) {
		WalkReducer(c, left, modulus, workUnits, out)
		c.Sync()
	})
	WalkReducer(c, x.Right, modulus, workUnits, out)
	c.Sync()
}
