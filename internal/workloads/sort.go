// Package workloads implements the paper's example computations as real,
// executable programs on the runtime: the Fig. 1 parallel quicksort, the
// Fig. 4–7 tree walks (serial, racy, mutex and reducer variants), dense
// matrix multiplication, fib, n-queens and breadth-first search. The
// benchmark harness and the examples drive these; their tests pin each one
// to a serial reference.
package workloads

import (
	"math/rand"

	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
)

// Qsort sorts data with the Fig. 1 parallel quicksort: partition about the
// first element, spawn the left recursion, recurse into the right, sync.
// Ranges up to grain elements sort with insertion sort to bound spawn
// overhead (Fig. 1 omits a grain; grain 1 reproduces it exactly).
func Qsort(c *sched.Context, data []float64, grain int) {
	if grain < 1 {
		grain = 1
	}
	qsortRec(c, data, grain)
	c.Sync()
}

func qsortRec(c *sched.Context, d []float64, grain int) {
	for len(d) > grain {
		mid := partition(d)
		lo := max(1, mid)
		left := d[:mid]
		c.Spawn(func(c *sched.Context) {
			qsortRec(c, left, grain)
			c.Sync()
		})
		d = d[lo:]
	}
	insertionSort(d)
}

// partition reorders d about the pivot d[0] and returns the count of
// elements strictly less than the pivot, mirroring Fig. 1 line 11:
// std::partition with the predicate x < *begin.
func partition(d []float64) int {
	pivot := d[0]
	mid := 0
	for j := range d {
		if d[j] < pivot {
			d[j], d[mid] = d[mid], d[j]
			mid++
		}
	}
	return mid
}

func insertionSort(d []float64) {
	for i := 1; i < len(d); i++ {
		x := d[i]
		j := i - 1
		for j >= 0 && d[j] > x {
			d[j+1] = d[j]
			j--
		}
		d[j+1] = x
	}
}

// SerialQsort is the serial elision of Qsort: the identical algorithm with
// the spawn removed, used as the baseline for the <2% overhead experiment.
func SerialQsort(data []float64, grain int) {
	if grain < 1 {
		grain = 1
	}
	for len(data) > grain {
		mid := partition(data)
		SerialQsort(data[:mid], grain)
		data = data[max(1, mid):]
	}
	insertionSort(data)
}

// FillSin fills a in parallel with sin-like values via cilk_for, the
// Fig. 1 main-routine loop. (A polynomial stands in for math.Sin to keep
// the per-iteration cost deterministic.)
func FillSin(c *sched.Context, a []float64) {
	pfor.Each(c, a, func(_ *sched.Context, i int, v *float64) {
		x := float64(i) * 1e-3
		*v = x - x*x*x/6 + x*x*x*x*x/120
	})
}

// RandomFloats returns n deterministic pseudo-random values.
func RandomFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}
