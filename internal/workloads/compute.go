package workloads

import (
	"sync/atomic"

	"cilkgo/internal/hyper"
	"cilkgo/internal/pfor"
	"cilkgo/internal/sched"
)

// Fib computes Fibonacci numbers the canonical Cilk way: spawn fib(n-1),
// compute fib(n-2) in the continuation, sync, add.
func Fib(c *sched.Context, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	var a int64
	c.Spawn(func(c *sched.Context) { a = Fib(c, n-1) })
	b := Fib(c, n-2)
	c.Sync()
	return a + b
}

// SerialFib is Fib's serial elision.
func SerialFib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return SerialFib(n-1) + SerialFib(n-2)
}

// Matrix is a dense row-major n×n matrix.
type Matrix struct {
	N    int
	Elts []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) *Matrix { return &Matrix{N: n, Elts: make([]float64, n*n)} }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Elts[i*m.N+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Elts[i*m.N+j] = v }

// MatMul computes out = a×b with a cilk_for over output rows — the §2.3
// "matrix multiplication of 1000×1000 matrices is highly parallel"
// workload. The inner two loops run serially with k-major order for cache
// friendliness.
func MatMul(c *sched.Context, a, b, out *Matrix) {
	n := a.N
	pfor.For(c, 0, n, func(_ *sched.Context, i int) {
		row := out.Elts[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a.Elts[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b.Elts[k*n : (k+1)*n]
			for j := range row {
				row[j] += aik * brow[j]
			}
		}
	})
}

// SerialMatMul is the serial baseline with the identical loop order.
func SerialMatMul(a, b, out *Matrix) {
	n := a.N
	for i := 0; i < n; i++ {
		row := out.Elts[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a.Elts[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b.Elts[k*n : (k+1)*n]
			for j := range row {
				row[j] += aik * brow[j]
			}
		}
	}
}

// NQueens counts the placements of n non-attacking queens with a spawn per
// safe column and an opadd reducer accumulating solutions — a classic Cilk
// demonstration mixing irregular recursion with a hyperobject.
func NQueens(c *sched.Context, n int) int64 {
	count := hyper.NewAdder[int64]()
	var place func(c *sched.Context, row int, cols, d1, d2 uint64)
	place = func(c *sched.Context, row int, cols, d1, d2 uint64) {
		if row == n {
			count.Add(c, 1)
			return
		}
		for col := 0; col < n; col++ {
			cb := uint64(1) << col
			db1 := uint64(1) << (row + col)
			db2 := uint64(1) << (row - col + n - 1)
			if cols&cb != 0 || d1&db1 != 0 || d2&db2 != 0 {
				continue
			}
			c.Spawn(func(c *sched.Context) {
				place(c, row+1, cols|cb, d1|db1, d2|db2)
			})
		}
		c.Sync()
	}
	place(c, 0, 0, 0, 0)
	c.Sync()
	// After the sync every descendant view has folded into this strand's
	// view, so the count is readable mid-computation (Reducer.Value is only
	// for after Run returns).
	return *count.View(c)
}

// Graph is an adjacency-list graph with int32 vertices.
type Graph struct {
	Adj [][]int32
}

// RandomGraph builds a connected pseudo-random graph with v vertices and
// roughly deg edges per vertex, deterministic in seed.
func RandomGraph(v int, deg int, seed uint64) *Graph {
	g := &Graph{Adj: make([][]int32, v)}
	state := seed
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	// A random spanning path keeps the graph connected.
	for i := 1; i < v; i++ {
		j := next(i)
		g.Adj[i] = append(g.Adj[i], int32(j))
		g.Adj[j] = append(g.Adj[j], int32(i))
	}
	for i := 0; i < v; i++ {
		for e := 1; e < deg; e++ {
			j := next(v)
			if j == i {
				continue
			}
			g.Adj[i] = append(g.Adj[i], int32(j))
			g.Adj[j] = append(g.Adj[j], int32(i))
		}
	}
	return g
}

// BFS runs a level-synchronous parallel breadth-first search from src and
// returns the distance of every vertex (-1 if unreachable). Each level
// relaxes its frontier with a cilk_for; newly discovered vertices are
// claimed with an atomic compare-and-swap and collected into the next
// frontier by a reducer_list_append, so the traversal is lock-free and the
// frontier order is deterministic.
func BFS(c *sched.Context, g *Graph, src int32) []int32 {
	dist := make([]int32, len(g.Adj))
	atomicDist := make([]atomic.Int32, len(g.Adj))
	for i := range atomicDist {
		atomicDist[i].Store(-1)
	}
	atomicDist[src].Store(0)
	frontier := []int32{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		next := hyper.NewListAppend[int32]()
		fr := frontier
		pfor.For(c, 0, len(fr), func(c *sched.Context, i int) {
			for _, w := range g.Adj[fr[i]] {
				if atomicDist[w].CompareAndSwap(-1, depth) {
					next.PushBack(c, w)
				}
			}
		})
		// pfor.For has synced, so the folded frontier is in this strand's
		// view of the reducer.
		frontier = *next.View(c)
	}
	for i := range dist {
		dist[i] = atomicDist[i].Load()
	}
	return dist
}

// SerialBFS is the queue-based serial baseline.
func SerialBFS(g *Graph, src int32) []int32 {
	dist := make([]int32, len(g.Adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
