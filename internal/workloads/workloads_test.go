package workloads

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cilkgo/internal/cilklock"
	"cilkgo/internal/hyper"
	"cilkgo/internal/sched"
)

func runPar(t *testing.T, p int, fn func(*sched.Context)) {
	t.Helper()
	rt := sched.New(sched.WithWorkers(p))
	defer rt.Shutdown()
	if err := rt.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQsortSorts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000, 20000} {
		data := RandomFloats(n, int64(n)+1)
		want := make([]float64, n)
		copy(want, data)
		sort.Float64s(want)
		runPar(t, 8, func(c *sched.Context) { Qsort(c, data, 16) })
		if !reflect.DeepEqual(data, want) {
			t.Fatalf("n=%d: parallel qsort produced unsorted output", n)
		}
	}
}

func TestQsortDuplicatesAndSortedInput(t *testing.T) {
	// All-equal input exercises the max(begin+1, middle) guard from
	// Fig. 1 line 13 — without it the recursion would not shrink.
	data := make([]float64, 3000)
	runPar(t, 4, func(c *sched.Context) { Qsort(c, data, 8) })
	// Already sorted input (worst-case pivots).
	asc := make([]float64, 3000)
	for i := range asc {
		asc[i] = float64(i)
	}
	runPar(t, 4, func(c *sched.Context) { Qsort(c, asc, 8) })
	if !sort.Float64sAreSorted(asc) {
		t.Fatal("sorted input came out unsorted")
	}
}

func TestSerialQsortMatchesParallel(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 4000
		a := RandomFloats(n, seed)
		b := append([]float64(nil), a...)
		SerialQsort(a, 16)
		rt := sched.New(sched.WithWorkers(4))
		defer rt.Shutdown()
		if err := rt.Run(func(c *sched.Context) { Qsort(c, b, 16) }); err != nil {
			return false
		}
		return reflect.DeepEqual(a, b) && sort.Float64sAreSorted(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFillSin(t *testing.T) {
	a := make([]float64, 5000)
	runPar(t, 4, func(c *sched.Context) { FillSin(c, a) })
	for i, v := range a {
		x := float64(i) * 1e-3
		want := x - x*x*x/6 + x*x*x*x*x/120
		if v != want {
			t.Fatalf("a[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestFib(t *testing.T) {
	var got int64
	runPar(t, 8, func(c *sched.Context) { got = Fib(c, 22) })
	if want := SerialFib(22); got != want {
		t.Fatalf("Fib(22) = %d, want %d", got, want)
	}
}

func TestMatMulMatchesSerial(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(2))
	a, b := NewMatrix(n), NewMatrix(n)
	for i := range a.Elts {
		a.Elts[i] = rng.Float64()
		b.Elts[i] = rng.Float64()
	}
	want, got := NewMatrix(n), NewMatrix(n)
	SerialMatMul(a, b, want)
	runPar(t, 8, func(c *sched.Context) { MatMul(c, a, b, got) })
	if !reflect.DeepEqual(want.Elts, got.Elts) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 16
	a, id, out := NewMatrix(n), NewMatrix(n), NewMatrix(n)
	rng := rand.New(rand.NewSource(3))
	for i := range a.Elts {
		a.Elts[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	runPar(t, 4, func(c *sched.Context) { MatMul(c, a, id, out) })
	if !reflect.DeepEqual(a.Elts, out.Elts) {
		t.Fatal("A×I ≠ A")
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	want := map[int]int64{1: 1, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		var got int64
		runPar(t, 8, func(c *sched.Context) { got = NQueens(c, n) })
		if got != w {
			t.Fatalf("NQueens(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestTreeWalkVariantsAgree(t *testing.T) {
	const n, modulus, work = 4000, 7, 4
	root := BuildTree(n, 11)

	var serial []*TreeNode
	WalkSerial(root, modulus, work, &serial)
	if len(serial) == 0 {
		t.Fatal("setup: no nodes have the property")
	}

	// Reducer variant must match the serial output exactly, order included.
	red := hyper.NewListAppend[*TreeNode]()
	runPar(t, 8, func(c *sched.Context) { WalkReducer(c, root, modulus, work, red) })
	if !reflect.DeepEqual(red.Value(), serial) {
		t.Fatal("reducer walk output differs from serial walk (order must match)")
	}

	// Mutex variant contains the same nodes but possibly scrambled.
	mu := cilklock.New("L")
	var locked []*TreeNode
	runPar(t, 8, func(c *sched.Context) { WalkMutex(c, root, modulus, work, mu, &locked) })
	if len(locked) != len(serial) {
		t.Fatalf("mutex walk found %d nodes, want %d", len(locked), len(serial))
	}
	sortNodes := func(s []*TreeNode) []int64 {
		vals := make([]int64, len(s))
		for i, n := range s {
			vals[i] = n.Value
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return vals
	}
	if !reflect.DeepEqual(sortNodes(locked), sortNodes(serial)) {
		t.Fatal("mutex walk node set differs from serial walk")
	}
}

func TestBFSMatchesSerial(t *testing.T) {
	g := RandomGraph(5000, 4, 77)
	want := SerialBFS(g, 0)
	var got []int32
	runPar(t, 8, func(c *sched.Context) { got = BFS(c, g, 0) })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel BFS distances differ from serial BFS")
	}
	for v, d := range want {
		if d < 0 {
			t.Fatalf("vertex %d unreachable in a connected graph", v)
		}
	}
}

func TestBuildTreeDeterministicAndSized(t *testing.T) {
	a, b := BuildTree(500, 9), BuildTree(500, 9)
	var countNodes func(*TreeNode) int
	countNodes = func(n *TreeNode) int {
		if n == nil {
			return 0
		}
		return 1 + countNodes(n.Left) + countNodes(n.Right)
	}
	if countNodes(a) != 500 {
		t.Fatalf("tree has %d nodes, want 500", countNodes(a))
	}
	var va, vb []*TreeNode
	WalkSerial(a, 3, 0, &va)
	WalkSerial(b, 3, 0, &vb)
	if len(va) != len(vb) {
		t.Fatal("same seed built different trees")
	}
}
