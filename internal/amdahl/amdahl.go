// Package amdahl implements Amdahl's Law (§2 of the paper) and its
// relationship to the dag model. Amdahl's observation: if a fraction p of a
// computation can run in parallel and the rest is serial, the speedup on
// any number of processors is at most 1/(1−p). The dag model subsumes and
// refines this: work and span quantify exactly how much parallelism a
// computation has, while Amdahl's Law only bounds it.
package amdahl

// Speedup returns Amdahl's predicted speedup for parallel fraction f on
// procs processors: 1 / ((1−f) + f/P). f must lie in [0,1], procs ≥ 1.
func Speedup(f float64, procs int) float64 {
	check(f, procs)
	return 1 / ((1 - f) + f/float64(procs))
}

// Limit returns Amdahl's upper bound on speedup for parallel fraction f on
// infinitely many processors: 1/(1−f). Limit(1) is +Inf.
func Limit(f float64) float64 {
	check(f, 1)
	return 1 / (1 - f)
}

// ParallelFraction recovers the Amdahl parallel fraction of a computation
// from its dag measures: the span is the serial part the critical path
// cannot avoid, so f = 1 − T∞/T1. This is the precise sense in which the
// dag model subsumes Amdahl's Law: Limit(ParallelFraction(work, span)) =
// work/span = the parallelism.
func ParallelFraction(work, span int64) float64 {
	if work <= 0 || span <= 0 || span > work {
		panic("amdahl: need 0 < span ≤ work")
	}
	return 1 - float64(span)/float64(work)
}

func check(f float64, procs int) {
	if f < 0 || f > 1 {
		panic("amdahl: parallel fraction outside [0,1]")
	}
	if procs < 1 {
		panic("amdahl: processor count must be ≥ 1")
	}
}
