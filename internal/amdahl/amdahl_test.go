package amdahl

import (
	"math"
	"testing"
	"testing/quick"

	"cilkgo/internal/vprog"
)

func TestPaperExample(t *testing.T) {
	// §2: "Suppose that 50% of a computation can be parallelized and 50%
	// cannot... the total time is cut at most in half, leaving a speedup
	// of at most 2."
	if got := Limit(0.5); got != 2 {
		t.Fatalf("Limit(0.5) = %v, want 2", got)
	}
	if got := Speedup(0.5, 1); got != 1 {
		t.Fatalf("Speedup(0.5, 1) = %v, want 1", got)
	}
	inf := Speedup(0.5, 1<<30)
	if inf < 1.99 || inf > 2 {
		t.Fatalf("Speedup(0.5, ∞) = %v, want → 2", inf)
	}
}

func TestFullyParallel(t *testing.T) {
	if got := Speedup(1, 8); got != 8 {
		t.Fatalf("Speedup(1, 8) = %v, want 8", got)
	}
	if got := Limit(1); !math.IsInf(got, 1) {
		t.Fatalf("Limit(1) = %v, want +Inf", got)
	}
}

func TestFullySerial(t *testing.T) {
	if got := Speedup(0, 64); got != 1 {
		t.Fatalf("Speedup(0, 64) = %v, want 1", got)
	}
	if got := Limit(0); got != 1 {
		t.Fatalf("Limit(0) = %v, want 1", got)
	}
}

func TestParallelFractionSubsumesAmdahl(t *testing.T) {
	// For any dag, Limit(ParallelFraction) equals the parallelism T1/T∞:
	// the dag model's bound coincides with Amdahl's when the fraction is
	// derived from work and span.
	m := vprog.Analyze(vprog.SerialParallel(10_000, 10_000, 64))
	f := ParallelFraction(m.Work, m.Span)
	if got, want := Limit(f), float64(m.Work)/float64(m.Span); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Limit(f) = %v, want parallelism %v", got, want)
	}
}

func TestQuickSpeedupProperties(t *testing.T) {
	f := func(fr float64, procsRaw uint8) bool {
		fr = math.Abs(fr)
		fr -= math.Floor(fr) // into [0,1)
		procs := int(procsRaw)%128 + 1
		s := Speedup(fr, procs)
		// 1 ≤ speedup ≤ min(P, Limit(f)).
		if s < 1-1e-12 || s > float64(procs)+1e-12 {
			return false
		}
		return s <= Limit(fr)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Speedup(-0.1, 4) },
		func() { Speedup(1.1, 4) },
		func() { Speedup(0.5, 0) },
		func() { ParallelFraction(0, 0) },
		func() { ParallelFraction(5, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
