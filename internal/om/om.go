// Package om implements an order-maintenance list: a data structure
// supporting InsertAfter and O(1) order queries ("does a precede b?") with
// amortized O(log n) insertion.
//
// It is the substrate of the SP-order algorithm of Bender, Fineman, Gilbert
// and Leiserson ("On-the-fly maintenance of series-parallel relationships
// in fork-join multithreaded programs", SPAA 2004) — reference [2] of the
// paper, one of the provably good algorithms Cilkscreen is built on (§4).
//
// The implementation is the classic tag-based scheme: each node carries a
// 64-bit tag; order queries compare tags; insertion bisects the gap between
// neighbors, and when a gap is exhausted the smallest enclosing dyadic tag
// range whose density is below a geometrically decaying threshold is
// relabeled uniformly, which yields the amortized logarithmic bound.
package om

// Node is an element of an order-maintenance list. Nodes are created by
// List.InsertAfter and are only meaningful within their list.
type Node struct {
	tag        uint64
	prev, next *Node
}

// List is an order-maintenance list. The zero value is not usable; call
// New, which returns the list's base node.
type List struct {
	head *Node // sentinel with the minimum tag
	size int
}

// tagSpace is the number of usable tag bits; the top bit stays clear so
// arithmetic cannot overflow.
const tagSpace = 62

// overflowT is the density-threshold decay constant (1 < T < 2). A dyadic
// range of size 2^i may hold at most (2/T)^i · baseCapacity nodes before it
// is considered overflowing.
const overflowT = 1.5

// New creates a list containing only the base sentinel node, which precedes
// every other node, and returns the list together with that node.
func New() (*List, *Node) {
	head := &Node{tag: 0}
	return &List{head: head, size: 1}, head
}

// Len reports the number of nodes, including the base node.
func (l *List) Len() int { return l.size }

// Before reports whether a precedes b in the list order. Both nodes must
// belong to this list; a node does not precede itself.
func (l *List) Before(a, b *Node) bool { return a.tag < b.tag }

// InsertAfter creates a new node immediately after x and returns it.
func (l *List) InsertAfter(x *Node) *Node {
	n := &Node{}
	l.size++
	next := x.next
	n.prev, n.next = x, next
	x.next = n
	if next != nil {
		next.prev = n
	}
	l.assignTag(n)
	return n
}

// assignTag gives n a tag strictly between its neighbors, relabeling a
// region first when the local gap is exhausted.
func (l *List) assignTag(n *Node) {
	lo := n.prev.tag
	hi := uint64(1) << tagSpace // virtual upper fence
	if n.next != nil {
		hi = n.next.tag
	}
	if hi-lo >= 2 {
		n.tag = lo + (hi-lo)/2
		return
	}
	l.relabel(n)
}

// relabel finds the smallest enclosing dyadic tag range around n whose
// density is below the overflow threshold, then spreads that range's nodes
// evenly across it, and finally retags n within its restored gap.
func (l *List) relabel(n *Node) {
	// Grow the dyadic range [base, base+2^i) around n.prev until its
	// density is acceptable.
	for i := uint(1); i <= tagSpace; i++ {
		size := uint64(1) << i
		base := n.prev.tag &^ (size - 1)
		// Collect the in-range nodes around n (excluding n itself, which
		// has no valid tag yet).
		first := n.prev
		for first.prev != nil && first.prev.tag >= base {
			first = first.prev
		}
		count := 0
		last := first
		for cur := first; cur != nil && (cur == n || cur.tag < base+size); cur = cur.next {
			if cur == n {
				continue
			}
			count++
			last = cur
		}
		capacity := threshold(i)
		if uint64(count+1)*2 > size { // need stride ≥ 2 to open a gap for n
			continue
		}
		if float64(count) >= capacity && i < tagSpace {
			continue // still too dense; widen
		}
		// Spread evenly: count nodes plus a slot for n's gap.
		stride := size / uint64(count+1)
		tag := base
		for cur := first; ; cur = cur.next {
			if cur == n {
				continue
			}
			cur.tag = tag
			tag += stride
			if cur == last {
				break
			}
		}
		// n now has a fresh gap after its predecessor.
		lo := n.prev.tag
		hi := lo + stride
		if n.next != nil {
			hi = n.next.tag
		}
		n.tag = lo + (hi-lo)/2
		if n.tag == lo {
			panic("om: relabel failed to open a gap")
		}
		return
	}
	panic("om: tag space exhausted")
}

// threshold returns the maximum comfortable occupancy of a dyadic range of
// size 2^i: (2/T)^i, the Bender et al. density schedule.
func threshold(i uint) float64 {
	t := 1.0
	for k := uint(0); k < i; k++ {
		t *= 2 / overflowT
	}
	return t
}
