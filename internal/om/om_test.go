package om

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkOrder verifies that tag order agrees with list order end to end.
func checkOrder(t *testing.T, l *List, head *Node) {
	t.Helper()
	n := 1
	for cur := head; cur.next != nil; cur = cur.next {
		if !l.Before(cur, cur.next) {
			t.Fatalf("node %d: tag order violates list order (%d !< %d)", n, cur.tag, cur.next.tag)
		}
		n++
	}
	if n != l.Len() {
		t.Fatalf("walked %d nodes, Len = %d", n, l.Len())
	}
}

func TestAppendChain(t *testing.T) {
	l, head := New()
	cur := head
	for i := 0; i < 10000; i++ {
		cur = l.InsertAfter(cur)
	}
	checkOrder(t, l, head)
	if !l.Before(head, cur) || l.Before(cur, head) {
		t.Fatal("base node must precede the tail")
	}
}

func TestInsertAlwaysAfterHead(t *testing.T) {
	// Repeated insertion at the same point exhausts local gaps quickly and
	// hammers the relabeling path.
	l, head := New()
	var last *Node
	for i := 0; i < 20000; i++ {
		last = l.InsertAfter(head)
	}
	checkOrder(t, l, head)
	if !l.Before(last, head.next) && last != head.next {
		// last was inserted first-after-head most recently, so it should be
		// head.next exactly.
		t.Fatal("most recent insert-after-head must sit immediately after head")
	}
}

func TestBeforeIrreflexive(t *testing.T) {
	l, head := New()
	a := l.InsertAfter(head)
	if l.Before(a, a) {
		t.Fatal("a node must not precede itself")
	}
}

// TestAgainstReferenceModel builds the same sequence in the OM list and in
// a plain slice, then compares every pairwise order.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, head := New()
	ref := []*Node{head}
	for i := 0; i < 3000; i++ {
		at := rng.Intn(len(ref))
		n := l.InsertAfter(ref[at])
		// Mirror into the reference slice.
		ref = append(ref, nil)
		copy(ref[at+2:], ref[at+1:])
		ref[at+1] = n
	}
	for i := 0; i < len(ref); i++ {
		for j := i + 1; j < i+20 && j < len(ref); j++ {
			if !l.Before(ref[i], ref[j]) {
				t.Fatalf("ref[%d] should precede ref[%d]", i, j)
			}
			if l.Before(ref[j], ref[i]) {
				t.Fatalf("ref[%d] should not precede ref[%d]", j, i)
			}
		}
	}
	checkOrder(t, l, head)
}

// Property: random insertion patterns keep the total order consistent.
func TestQuickRandomInsertions(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 10
		rng := rand.New(rand.NewSource(seed))
		l, head := New()
		nodes := []*Node{head}
		for i := 0; i < n; i++ {
			at := rng.Intn(len(nodes))
			nodes = append(nodes, l.InsertAfter(nodes[at]))
		}
		// Walk the list; every step must satisfy Before.
		count := 1
		for cur := head; cur.next != nil; cur = cur.next {
			if !l.Before(cur, cur.next) {
				return false
			}
			count++
		}
		return count == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertAfterHead(b *testing.B) {
	l, head := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.InsertAfter(head)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	l, head := New()
	cur := head
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur = l.InsertAfter(cur)
	}
}
