// Package deque implements the Chase–Lev lock-free work-stealing deque.
//
// The deque is the central data structure of the Cilk++ runtime (§3.2 of the
// paper): each worker owns one deque and treats it as a stack, pushing and
// popping spawned work at the bottom, while thieves steal single items from
// the top. The owner's fast path is a pair of unsynchronized-looking atomic
// loads and stores; synchronization is paid only when the deque is nearly
// empty or when a thief interferes, which mirrors the paper's observation
// that "all communication and synchronization is incurred only when a worker
// runs out of work".
//
// The implementation follows Chase and Lev, "Dynamic circular work-stealing
// deque" (SPAA 2005), with the memory-order fixes from Lê et al. (PPoPP
// 2013), expressed with Go's sequentially-consistent sync/atomic operations.
package deque

import (
	"sync/atomic"
)

// minCapacity is the initial ring capacity. It must be a power of two.
const minCapacity = 64

// ring is an immutable-capacity circular buffer. Grown copies share no
// storage with their predecessor, so thieves racing on an old ring still read
// valid (if stale) values; staleness is rejected by the CAS on top.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{
		mask: capacity - 1,
		buf:  make([]atomic.Pointer[T], capacity),
	}
}

func (r *ring[T]) load(i int64) *T     { return r.buf[i&r.mask].Load() }
func (r *ring[T]) store(i int64, v *T) { r.buf[i&r.mask].Store(v) }

func (r *ring[T]) grow(bottom, top int64) *ring[T] {
	next := newRing[T]((r.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		next.store(i, r.load(i))
	}
	return next
}

// Deque is a dynamically-sized work-stealing deque of *T.
//
// Exactly one goroutine, the owner, may call PushBottom and PopBottom.
// Any goroutine may call Steal. The zero value is not usable; construct
// with New.
type Deque[T any] struct {
	top    atomic.Int64 // next index to steal
	bottom atomic.Int64 // next index to push
	ring   atomic.Pointer[ring[T]]
}

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.ring.Store(newRing[T](minCapacity))
	return d
}

// PushBottom pushes v onto the bottom (owner end) of the deque.
// Only the owner may call it.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask { // full: grow
		r = r.grow(b, t)
		d.ring.Store(r)
	}
	r.store(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom pops the most recently pushed item from the bottom. It returns
// nil if the deque is empty or the last item was lost to a concurrent thief.
// Only the owner may call it.
func (d *Deque[T]) PopBottom() *T {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	switch {
	case t > b: // empty: restore
		d.bottom.Store(b + 1)
		return nil
	case t == b: // last element: race against thieves via CAS on top
		v := r.load(b)
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief got it
		}
		d.bottom.Store(b + 1)
		return v
	default:
		return r.load(b)
	}
}

// Steal removes and returns the oldest item from the top (thief end), or nil
// if the deque is empty or the steal lost a race. Any goroutine may call it.
func (d *Deque[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	v := r.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil // lost the race; caller may retry elsewhere
	}
	return v
}

// Size reports an instantaneous estimate of the number of items. It is exact
// when called by the owner with no concurrent thieves.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appeared empty at some instant.
func (d *Deque[T]) Empty() bool { return d.Size() == 0 }
