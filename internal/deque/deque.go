// Package deque implements the Chase–Lev lock-free work-stealing deque.
//
// The deque is the central data structure of the Cilk++ runtime (§3.2 of the
// paper): each worker owns one deque and treats it as a stack, pushing and
// popping spawned work at the bottom, while thieves steal items from the
// top. The owner's fast path is a handful of unsynchronized-looking atomic
// loads and stores; synchronization is paid only when the deque is nearly
// empty or when a thief interferes, which mirrors the paper's observation
// that "all communication and synchronization is incurred only when a worker
// runs out of work".
//
// Thieves may take either one item (Steal) or up to half of the visible
// items in a single CAS on top (StealBatch), the steal-half variant whose
// bounded steal count and cache behaviour are analysed by Gu, Napier & Sun
// (see PAPERS.md). Every successful pop, steal, and batch clears the ring
// slots it vacated, so the ring never retains pointers to completed work
// against the garbage collector.
//
// The implementation follows Chase and Lev, "Dynamic circular work-stealing
// deque" (SPAA 2005), with the memory-order fixes from Lê et al. (PPoPP
// 2013), expressed with Go's sequentially-consistent sync/atomic operations.
// The batch extension preserves Chase–Lev's arbitration structure: a batch
// still commits with one CAS on top, and a claim announcement (see the claim
// field) keeps the owner's unarbitrated fast-path pops disjoint from any
// in-flight claim.
package deque

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// minCapacity is the initial ring capacity. It must be a power of two.
const minCapacity = 64

// maxBatch bounds how many items one StealBatch may claim. A fixed bound
// keeps the pre-CAS snapshot in a stack array (no allocation on the steal
// path) and bounds how long a batch claim can make the owner's pop back off.
const maxBatch = 32

// ring is an immutable-capacity circular buffer. Grown copies share no
// storage with their predecessor, so thieves racing on an old ring still read
// valid (if stale) values; staleness is rejected by the CAS on top.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{
		mask: capacity - 1,
		buf:  make([]atomic.Pointer[T], capacity),
	}
}

func (r *ring[T]) load(i int64) *T     { return r.buf[i&r.mask].Load() }
func (r *ring[T]) store(i int64, v *T) { r.buf[i&r.mask].Store(v) }

// clear nils slot i only if it still holds v. Thieves must clear this way:
// between a thief's winning CAS on top and its write to the slot, the owner
// may wrap bottom around the ring and push a new item into the same slot, so
// an unconditional store could destroy live work. The conditional store
// cannot be fooled by pointer reuse, because the thief still holds v
// unexecuted — v cannot be recycled and re-pushed until the thief releases
// it, which happens only after the clear.
func (r *ring[T]) clear(i int64, v *T) { r.buf[i&r.mask].CompareAndSwap(v, nil) }

func (r *ring[T]) grow(bottom, top int64) *ring[T] {
	next := newRing[T]((r.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		next.store(i, r.load(i))
	}
	return next
}

// GateOp identifies one thief-side protocol step a Gate can perturb.
type GateOp uint8

const (
	// GateSteal is Steal's arbitration: a forced failure makes the steal
	// report a lost race before attempting its CAS.
	GateSteal GateOp = iota
	// GateBatchClaim is StealBatch's claim announcement: a forced failure
	// makes the batch report a contending claim without publishing one.
	GateBatchClaim
	// GateBatchCAS is StealBatch's commit CAS on top: a forced failure
	// releases the published claim and reports a lost race — the window in
	// which the owner has already seen (and backed off from) the claim.
	GateBatchCAS
	// GateBatchWindow is the interval during which a batch holds its claim;
	// gates typically inject a delay here to stretch the window the owner's
	// PopBottom must back off through.
	GateBatchWindow
)

// Gate is an optional fault-injection seam over the thief-side protocol
// (internal/schedsan drives it through the scheduler). A nil gate — the
// default — costs the thief paths one predictable branch; the owner's
// PushBottom/PopBottom fast paths are not gated at all. When a gate is
// installed, StealBatch additionally self-checks its claim-word invariants
// and panics on violation.
type Gate interface {
	// Fail reports whether the step should be forced to fail.
	Fail(op GateOp) bool
	// Delay may block the calling thief to stretch the window at op.
	Delay(op GateOp)
}

// Deque is a dynamically-sized work-stealing deque of *T.
//
// Exactly one goroutine, the owner, may call PushBottom and PopBottom.
// Any goroutine may call Steal or StealBatch. The zero value is not usable;
// construct with New.
type Deque[T any] struct {
	top    atomic.Int64 // next index to steal
	bottom atomic.Int64 // next index to push
	ring   atomic.Pointer[ring[T]]

	// gate is the optional fault-injection seam; nil outside sanitizer
	// runs. Installed once by SetGate before the deque is shared.
	gate Gate

	// claim announces an in-flight StealBatch: zero when none, else the
	// exclusive upper bound of the index range the batch may take. Classic
	// Chase–Lev lets the owner pop unarbitrated whenever top was observed
	// strictly below bottom, because a thief only ever takes the single
	// top index — the one index the owner would race for is arbitrated by
	// dueling CASes on top. A multi-item claim breaks that reasoning: the
	// owner could pop an interior index the batch is about to commit. The
	// claim restores disjointness: a batch publishes its bound before its
	// CAS on top, and the owner's fast path refuses to pop an index below
	// any visible claim (see PopBottom for the full argument).
	claim atomic.Int64
}

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.ring.Store(newRing[T](minCapacity))
	return d
}

// SetGate installs a fault-injection gate on the thief-side protocol. It
// must be called before the deque is shared with any thief (the field is
// written without synchronization).
func (d *Deque[T]) SetGate(g Gate) { d.gate = g }

// PushBottom pushes v onto the bottom (owner end) of the deque. It reports
// whether the deque was empty immediately before the push — i.e. whether this
// push made work visible where there was none. Schedulers use that edge to
// hoist wake probes out of the per-push fast path: pushes onto an already
// non-empty deque cannot strand a parked thief, so only the empty→non-empty
// transition needs to signal. The report is computed from loads the push
// already performs, so callers that ignore it pay nothing.
// Only the owner may call it.
func (d *Deque[T]) PushBottom(v *T) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask { // full: grow
		r = r.grow(b, t)
		d.ring.Store(r)
	}
	r.store(b, v)
	d.bottom.Store(b + 1)
	return b == t
}

// PopBottom pops the most recently pushed item from the bottom. It returns
// nil if the deque is empty or the last item was lost to a concurrent thief.
// Only the owner may call it.
func (d *Deque[T]) PopBottom() *T {
	for {
		b := d.bottom.Load() - 1
		r := d.ring.Load()
		d.bottom.Store(b)
		t := d.top.Load()
		switch {
		case t > b: // empty: restore
			d.bottom.Store(b + 1)
			return nil
		case t == b: // last element: race against thieves via CAS on top
			v := r.load(b)
			if d.top.CompareAndSwap(t, t+1) {
				// Won the race: the slot is dead until bottom wraps back
				// past it, so clear it now — otherwise the ring would pin
				// the popped item (and everything it references) against
				// the GC until the slot is overwritten. Losing thieves
				// only discard the pointer they loaded, so a plain store
				// is safe.
				r.store(b, nil)
			} else {
				v = nil // a thief got it; the thief clears the slot
			}
			d.bottom.Store(b + 1)
			return v
		default:
			// top was observed strictly below b after bottom excluded b, so
			// no single Steal can claim index b (a thief observing top == b
			// necessarily observes bottom <= b and rejects). An in-flight
			// StealBatch could, though: back off while any visible claim
			// covers b. The batch holds its claim only across a bounded,
			// loop-free window, so this resolves quickly.
			if d.claim.Load() > b {
				d.bottom.Store(b + 1)
				runtime.Gosched()
				continue
			}
			// Re-validate top after the claim check: a batch could have
			// claimed past b, committed its CAS, and released the claim all
			// between our two loads. Seeing top unchanged after seeing no
			// claim proves no such batch took b — any batch that covered b
			// either still holds its claim (caught above) or has already
			// advanced top (caught here).
			if d.top.Load() != t {
				d.bottom.Store(b + 1)
				continue
			}
			v := r.load(b)
			// Clear before returning: bottom already excludes b and no
			// thief can take it (argument above), so the store cannot
			// destroy anyone's item.
			r.store(b, nil)
			return v
		}
	}
}

// Steal removes and returns the oldest item from the top (thief end), or nil
// if the deque is empty or the steal lost a race. Any goroutine may call it.
func (d *Deque[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	if g := d.gate; g != nil && g.Fail(GateSteal) {
		return nil // injected lost race
	}
	r := d.ring.Load()
	v := r.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil // lost the race; caller may retry elsewhere
	}
	r.clear(t, v)
	return v
}

// StealBatch steals up to half of the victim's visible items — at least one,
// at most maxBatch — committing the whole batch with a single CAS on top,
// and returns the oldest claimed item (the one Steal would have returned).
// The remaining claimed items are pushed onto dst, the thief's own deque,
// oldest first, so dst continues the victim's top-to-bottom order: the
// caller's next PopBottom sees the newest claimed item first and other
// thieves see the oldest, the same discipline a single deque provides.
// moved reports how many items went to dst.
//
// The caller must own dst, and dst must not be d. Returns (nil, 0) when the
// deque looked empty, another batch was in flight, or the CAS lost a race;
// the caller may fall back to Steal.
func (d *Deque[T]) StealBatch(dst *Deque[T]) (first *T, moved int) {
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return nil, 0
	}
	take := (n + 1) / 2 // half, rounded up, so a lone item is still taken
	if take > maxBatch {
		take = maxBatch
	}
	g := d.gate
	if g != nil && g.Fail(GateBatchClaim) {
		return nil, 0 // injected claim contention
	}
	// Announce the claim before touching anything else. Only one batch may
	// be in flight per deque; contending batch thieves fall back to Steal.
	if !d.claim.CompareAndSwap(0, t+take) {
		return nil, 0
	}
	claimed := t + take // the published (never shrunk) claim bound
	if g != nil {
		// Sanitizer self-checks: the claim this batch holds must be the one
		// it published, covering between 1 and maxBatch items above top.
		if take < 1 || take > maxBatch {
			panic(fmt.Sprintf("deque: batch claimed %d items (bounds 1..%d)", take, maxBatch))
		}
		if c := d.claim.Load(); c != claimed {
			panic(fmt.Sprintf("deque: claim word %d while batch holds claim %d", c, claimed))
		}
		// Stretch the claim-held window: the owner's unarbitrated pops must
		// keep backing off for as long as the claim is visible.
		g.Delay(GateBatchWindow)
	}
	// Re-read bottom after publishing the claim. Any owner pop that did not
	// see the claim published its lowered bottom before our claim landed
	// (both sides use sequentially consistent operations), so bounding take
	// by this fresh value keeps the claimed range strictly below every
	// unarbitrated pop: a pop at index i admits take ≤ (i-t+1)/2, whose
	// last claimed index t+take-1 < i. Pops that do see the claim back off
	// until we resolve.
	b = d.bottom.Load()
	n = b - t
	if n <= 0 {
		d.claim.Store(0)
		return nil, 0
	}
	if half := (n + 1) / 2; half < take {
		take = half
	}
	// Snapshot the claimed values before the CAS (Lê et al.: once top has
	// advanced, the owner may overwrite these slots at any time), then
	// commit the whole range atomically.
	r := d.ring.Load()
	var vals [maxBatch]*T
	for i := int64(0); i < take; i++ {
		vals[i] = r.load(t + i)
	}
	if g != nil {
		if c := d.claim.Load(); c != claimed {
			panic(fmt.Sprintf("deque: claim word %d rewritten under in-flight batch (published %d)", c, claimed))
		}
		if g.Fail(GateBatchCAS) {
			d.claim.Store(0)
			return nil, 0 // injected commit failure after the claim was visible
		}
	}
	if !d.top.CompareAndSwap(t, t+take) {
		d.claim.Store(0)
		return nil, 0 // lost to the owner or another thief; snapshot discarded
	}
	// Clear the vacated slots before releasing the claim or publishing any
	// item to dst: nothing may recycle a claimed task until its old slot no
	// longer aliases it.
	for i := int64(0); i < take; i++ {
		r.clear(t+i, vals[i])
	}
	d.claim.Store(0)
	for i := int64(1); i < take; i++ {
		dst.PushBottom(vals[i])
	}
	return vals[0], int(take - 1)
}

// Size reports an instantaneous estimate of the number of items. It is exact
// when called by the owner with no concurrent thieves.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appeared empty at some instant.
func (d *Deque[T]) Empty() bool { return d.Size() == 0 }
