package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStealBatchEmpty(t *testing.T) {
	d, dst := New[int](), New[int]()
	if first, moved := d.StealBatch(dst); first != nil || moved != 0 {
		t.Fatalf("StealBatch on empty = (%v, %d), want (nil, 0)", first, moved)
	}
}

func TestStealBatchSingleton(t *testing.T) {
	d, dst := New[int](), New[int]()
	v := 7
	d.PushBottom(&v)
	first, moved := d.StealBatch(dst)
	if first == nil || *first != 7 || moved != 0 {
		t.Fatalf("StealBatch = (%v, %d), want (&7, 0)", first, moved)
	}
	if !d.Empty() || !dst.Empty() {
		t.Fatal("both deques should be empty after a singleton batch")
	}
}

// TestStealBatchTakesHalf checks the batch size rule: half the visible items,
// rounded up, capped at maxBatch.
func TestStealBatchTakesHalf(t *testing.T) {
	cases := []struct{ n, take int }{
		{1, 1}, {2, 1}, {3, 2}, {7, 4}, {10, 5},
		{2 * maxBatch, maxBatch}, {10 * maxBatch, maxBatch},
	}
	for _, tc := range cases {
		d, dst := New[int](), New[int]()
		vals := make([]int, tc.n)
		for i := range vals {
			vals[i] = i
			d.PushBottom(&vals[i])
		}
		first, moved := d.StealBatch(dst)
		if first == nil {
			t.Fatalf("n=%d: StealBatch failed with no contention", tc.n)
		}
		if got := moved + 1; got != tc.take {
			t.Errorf("n=%d: batch took %d items, want %d", tc.n, got, tc.take)
		}
		if d.Size() != tc.n-tc.take {
			t.Errorf("n=%d: victim has %d items left, want %d", tc.n, d.Size(), tc.n-tc.take)
		}
	}
}

// TestStealBatchOrder checks the ordering contract: the returned item is the
// oldest (what Steal would have returned), the thief's next PopBottom sees
// the newest claimed item, and other thieves stealing from dst see the
// oldest remaining — dst continues the victim's top-to-bottom order.
func TestStealBatchOrder(t *testing.T) {
	d, dst := New[int](), New[int]()
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	first, moved := d.StealBatch(dst) // claims 0..4
	if first == nil || *first != 0 || moved != 4 {
		t.Fatalf("StealBatch = (%v, %d), want (&0, 4)", first, moved)
	}
	if got := dst.PopBottom(); got == nil || *got != 4 {
		t.Fatalf("thief's PopBottom = %v, want 4 (newest claimed)", got)
	}
	if got := dst.Steal(); got == nil || *got != 1 {
		t.Fatalf("Steal from thief = %v, want 1 (oldest moved)", got)
	}
	if got := d.Steal(); got == nil || *got != 5 {
		t.Fatalf("Steal from victim = %v, want 5 (oldest unclaimed)", got)
	}
}

// TestStealBatchClearsSlots and friends are the GC-observable regression
// tests for the slot-retention bug: before slots were cleared on every
// successful pop/steal/batch, the live ring pinned consumed items (and the
// frame trees they reference) against the garbage collector until the slot
// happened to be overwritten.

type payload struct{ pad [64]byte }

// consumeAll pops and steals everything out of d (and the batch overflow out
// of a scratch deque) inside its own stack frame, so no stack slot keeps a
// consumed item reachable after it returns.
func consumeAll(t *testing.T, d *Deque[payload], how string) {
	t.Helper()
	scratch := New[payload]()
	for {
		switch how {
		case "pop":
			if d.PopBottom() == nil {
				return
			}
		case "steal":
			if d.Steal() == nil {
				return
			}
		case "batch":
			first, _ := d.StealBatch(scratch)
			if first == nil {
				for scratch.PopBottom() != nil {
				}
				return
			}
		}
	}
}

func testSlotRetention(t *testing.T, how string) {
	d := New[payload]()
	const n = minCapacity / 2 // stay below capacity: growth must not be the cleaner
	var finalized atomic.Int32
	for i := 0; i < n; i++ {
		v := new(payload)
		runtime.SetFinalizer(v, func(*payload) { finalized.Add(1) })
		d.PushBottom(v)
	}
	consumeAll(t, d, how)
	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < n && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	// The deque itself must stay alive throughout: the bug is the *live*
	// ring retaining consumed items.
	runtime.KeepAlive(d)
	if got := finalized.Load(); got != n {
		t.Fatalf("after %s-consuming and GC, %d/%d items were collected; the ring retains the rest", how, got, n)
	}
}

func TestPopBottomClearsSlots(t *testing.T)  { testSlotRetention(t, "pop") }
func TestStealClearsSlots(t *testing.T)      { testSlotRetention(t, "steal") }
func TestStealBatchClearsSlots(t *testing.T) { testSlotRetention(t, "batch") }

// TestGrowRacesThieves is the grow-vs-steal stress test: the owner pushes
// enough to grow the ring through several capacities (with occasional pops)
// while thieves hammer top with a mix of Steal and StealBatch, and every item
// must be consumed exactly once (count-and-sum invariant). Run under -race
// this also checks the memory-order discipline of the grow publication.
func TestGrowRacesThieves(t *testing.T) {
	const (
		nItems   = 1 << 15 // grows 64 → 32768 if thieves lag
		nThieves = 4
	)
	d := New[int64]()
	vals := make([]int64, nItems)
	seen := make([]atomic.Int32, nItems)
	var consumed, sum atomic.Int64
	tally := func(v *int64) {
		seen[*v-1].Add(1)
		sum.Add(*v)
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	for th := 0; th < nThieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			dst := New[int64]() // private: this thief owns it
			for consumed.Load() < nItems {
				if th%2 == 0 {
					// Batch thief: take a batch, then drain everything it
					// moved into the private deque.
					if first, _ := d.StealBatch(dst); first != nil {
						tally(first)
						for {
							v := dst.PopBottom()
							if v == nil {
								break
							}
							tally(v)
						}
						continue
					}
				}
				if v := d.Steal(); v != nil {
					tally(v)
					continue
				}
				runtime.Gosched()
			}
		}(th)
	}

	// Owner: push everything in bursts (outpacing the thieves forces the ring
	// through several growths), popping a little between bursts so the
	// owner/thief arbitration is exercised at every capacity.
	for i := int64(0); i < nItems; i++ {
		vals[i] = i + 1
		d.PushBottom(&vals[i])
		if i%1024 == 1023 {
			for j := 0; j < 8; j++ {
				if v := d.PopBottom(); v != nil {
					tally(v)
				}
			}
		}
	}
	for consumed.Load() < nItems {
		if v := d.PopBottom(); v != nil {
			tally(v)
			continue
		}
		runtime.Gosched()
	}
	wg.Wait()

	if got, want := sum.Load(), int64(nItems)*(nItems+1)/2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i+1, n)
		}
	}
}

// TestStealBatchConcurrentSum mixes owner pushes/pops with batch-only
// thieves at a smaller scale, checking the claim protocol keeps the owner's
// unarbitrated pops disjoint from in-flight batches.
func TestStealBatchConcurrentSum(t *testing.T) {
	const (
		nItems   = 1 << 14
		nThieves = 3
	)
	d := New[int64]()
	vals := make([]int64, nItems)
	var consumed, sum atomic.Int64

	var wg sync.WaitGroup
	for th := 0; th < nThieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := New[int64]()
			for consumed.Load() < nItems {
				first, _ := d.StealBatch(dst)
				if first == nil {
					first = d.Steal() // claim contention falls back, like the scheduler
				}
				if first == nil {
					runtime.Gosched()
					continue
				}
				sum.Add(*first)
				consumed.Add(1)
				for {
					v := dst.PopBottom()
					if v == nil {
						break
					}
					sum.Add(*v)
					consumed.Add(1)
				}
			}
		}()
	}

	for i := int64(0); i < nItems; i++ {
		vals[i] = i + 1
		d.PushBottom(&vals[i])
		if i%2 == 0 {
			if v := d.PopBottom(); v != nil {
				sum.Add(*v)
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < nItems {
		if v := d.PopBottom(); v != nil {
			sum.Add(*v)
			consumed.Add(1)
			continue
		}
		runtime.Gosched()
	}
	wg.Wait()

	if got, want := sum.Load(), int64(nItems)*(nItems+1)/2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
