package deque

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testGate is a deterministic Gate for exercising the forced-failure and
// delayed-claim paths. Safe for concurrent thieves.
type testGate struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates map[GateOp]float64
	delay time.Duration // applied at GateBatchWindow
	sched int           // extra Gosched calls at GateBatchWindow
	fired map[GateOp]*atomic.Int64
}

func newTestGate(seed int64) *testGate {
	g := &testGate{
		rng:   rand.New(rand.NewSource(seed)),
		rates: map[GateOp]float64{},
		fired: map[GateOp]*atomic.Int64{},
	}
	for _, op := range []GateOp{GateSteal, GateBatchClaim, GateBatchCAS, GateBatchWindow} {
		g.fired[op] = &atomic.Int64{}
	}
	return g
}

func (g *testGate) Fail(op GateOp) bool {
	g.mu.Lock()
	hit := g.rng.Float64() < g.rates[op]
	g.mu.Unlock()
	if hit {
		g.fired[op].Add(1)
	}
	return hit
}

func (g *testGate) Delay(op GateOp) {
	if op != GateBatchWindow {
		return
	}
	if g.delay > 0 {
		g.fired[op].Add(1)
		time.Sleep(g.delay)
	}
	for i := 0; i < g.sched; i++ {
		g.fired[op].Add(1)
		runtime.Gosched()
	}
}

// TestGateStealBatchForcedCASFailure: a batch whose commit CAS is forced to
// fail must release its claim and leave the deque intact — the items stay
// claimable by the owner and by later thieves.
func TestGateStealBatchForcedCASFailure(t *testing.T) {
	d := New[int]()
	g := newTestGate(1)
	g.rates[GateBatchCAS] = 1 // every batch commit fails
	d.SetGate(g)
	vals := make([]int, 16)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	dst := New[int]()
	if first, moved := d.StealBatch(dst); first != nil || moved != 0 {
		t.Fatalf("StealBatch under forced CAS failure returned (%v, %d), want (nil, 0)", first, moved)
	}
	if g.fired[GateBatchCAS].Load() == 0 {
		t.Fatal("forced CAS failure never fired")
	}
	if d.claim.Load() != 0 {
		t.Fatalf("claim word %d after failed batch, want 0 (released)", d.claim.Load())
	}
	if d.Size() != len(vals) {
		t.Fatalf("deque size %d after failed batch, want %d", d.Size(), len(vals))
	}
	// With the gate cleared, both single steals and batches work again.
	d.SetGate(nil)
	if v := d.Steal(); v == nil || *v != 0 {
		t.Fatalf("Steal after failed batch = %v, want &0", v)
	}
	if first, moved := d.StealBatch(dst); first == nil || *first != 1 || moved == 0 {
		t.Fatalf("StealBatch after recovery = (%v, %d), want oldest item and a surplus", first, moved)
	}
}

// TestGateStealBatchForcedClaimContention: forced claim contention takes the
// fall-back path without ever publishing a claim.
func TestGateStealBatchForcedClaimContention(t *testing.T) {
	d := New[int]()
	g := newTestGate(2)
	g.rates[GateBatchClaim] = 1
	d.SetGate(g)
	x := 7
	d.PushBottom(&x)
	if first, moved := d.StealBatch(New[int]()); first != nil || moved != 0 {
		t.Fatalf("StealBatch = (%v, %d), want forced (nil, 0)", first, moved)
	}
	if d.claim.Load() != 0 {
		t.Fatal("forced claim contention still published a claim")
	}
	if v := d.Steal(); v == nil || *v != 7 {
		t.Fatalf("fallback Steal = %v, want &7", v)
	}
}

// TestGateStealBatchExactlyOnce is the fault-injected exactly-once property
// for the claim-word protocol, run in make stress-deque under -race: an
// owner churning push/pop races many batch thieves whose claims randomly
// fail at the claim, fail at the commit CAS after the claim was visible, or
// hold the claim through an injected delay — and every item must still be
// consumed exactly once.
func TestGateStealBatchExactlyOnce(t *testing.T) {
	const (
		thieves = 4
		items   = 2_000
	)
	d := New[int]()
	g := newTestGate(3)
	g.rates[GateSteal] = 0.2
	g.rates[GateBatchClaim] = 0.3
	g.rates[GateBatchCAS] = 0.3
	g.sched = 4 // stretch every claim window by a few reschedules
	d.SetGate(g)

	vals := make([]int, items)
	seen := make([]atomic.Int32, items)
	var consumed atomic.Int64
	take := func(v *int) {
		if v != nil {
			seen[*v].Add(1)
			consumed.Add(1)
		}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dst := New[int]() // thief-private; only this goroutine touches it
			for {
				first, _ := d.StealBatch(dst)
				if first == nil {
					first = d.Steal()
				}
				take(first)
				for v := dst.PopBottom(); v != nil; v = dst.PopBottom() {
					take(v)
				}
				if first == nil {
					select {
					case <-done:
						// Final sweep after the owner finished.
						for v := d.Steal(); v != nil; v = d.Steal() {
							take(v)
						}
						return
					default:
						runtime.Gosched() // don't starve the owner on small GOMAXPROCS
					}
				}
			}
		}(th)
	}

	for i := 0; i < items; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if i%7 == 0 {
			take(d.PopBottom())
		}
		if i%64 == 0 {
			runtime.Gosched() // let the thieves see a non-empty deque
		}
	}
	// The thieves drain the remainder; the owner just waits for them so the
	// batch path stays exercised right to the end.
	for !d.Empty() {
		runtime.Gosched()
	}
	close(done)
	wg.Wait()

	if n := consumed.Load(); n != items {
		t.Fatalf("consumed %d items, want %d", n, items)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, n)
		}
	}
	if g.fired[GateBatchCAS].Load() == 0 || g.fired[GateBatchClaim].Load() == 0 {
		t.Fatalf("fault gate never fired: %v claim, %v cas",
			g.fired[GateBatchClaim].Load(), g.fired[GateBatchCAS].Load())
	}
}

// TestGateClaimWindowBackoff: while a batch holds its claim through an
// injected delay, the owner's PopBottom must back off rather than pop a
// claimed item; once the batch commits, owner and thief hold disjoint
// items.
func TestGateClaimWindowBackoff(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		d := New[int]()
		g := newTestGate(int64(trial))
		g.delay = 50 * time.Microsecond
		d.SetGate(g)
		const n = 10
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
			d.PushBottom(&vals[i])
		}
		var got [n]atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // thief: one delayed batch
			defer wg.Done()
			dst := New[int]()
			if first, _ := d.StealBatch(dst); first != nil {
				got[*first].Add(1)
				for v := dst.PopBottom(); v != nil; v = dst.PopBottom() {
					got[*v].Add(1)
				}
			}
		}()
		go func() { // owner: drain from the bottom through the claim window
			defer wg.Done()
			for i := 0; i < n; i++ {
				if v := d.PopBottom(); v != nil {
					got[*v].Add(1)
				}
			}
		}()
		wg.Wait()
		for v := d.PopBottom(); v != nil; v = d.PopBottom() {
			got[*v].Add(1)
		}
		for i := range got {
			if c := got[i].Load(); c > 1 {
				t.Fatalf("trial %d: item %d consumed %d times", trial, i, c)
			}
		}
	}
}
