package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	d := New[int]()
	if got := d.PopBottom(); got != nil {
		t.Fatalf("PopBottom on empty = %v, want nil", got)
	}
	if got := d.Steal(); got != nil {
		t.Fatalf("Steal on empty = %v, want nil", got)
	}
	if !d.Empty() {
		t.Fatal("Empty() = false on fresh deque")
	}
}

func TestLIFOOwner(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if d.Size() != 5 {
		t.Fatalf("Size = %d, want 5", d.Size())
	}
	for i := len(vals) - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil || *got != vals[i] {
			t.Fatalf("PopBottom = %v, want %d", got, vals[i])
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("deque should be empty")
	}
}

func TestFIFOThief(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := range vals {
		got := d.Steal()
		if got == nil || *got != vals[i] {
			t.Fatalf("Steal #%d = %v, want %d", i, got, vals[i])
		}
	}
	if d.Steal() != nil {
		t.Fatal("Steal on drained deque should return nil")
	}
}

func TestMixedEnds(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if got := d.Steal(); *got != 1 {
		t.Fatalf("Steal = %d, want 1", *got)
	}
	if got := d.PopBottom(); *got != 4 {
		t.Fatalf("PopBottom = %d, want 4", *got)
	}
	if got := d.Steal(); *got != 2 {
		t.Fatalf("Steal = %d, want 2", *got)
	}
	if got := d.PopBottom(); *got != 3 {
		t.Fatalf("PopBottom = %d, want 3", *got)
	}
	if d.Size() != 0 {
		t.Fatalf("Size = %d, want 0", d.Size())
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	const n = 10 * minCapacity
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Size() != n {
		t.Fatalf("Size = %d, want %d", d.Size(), n)
	}
	// Steal half from the top (oldest first), pop the rest from the bottom.
	for i := 0; i < n/2; i++ {
		got := d.Steal()
		if got == nil || *got != i {
			t.Fatalf("Steal #%d = %v, want %d", i, got, i)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		got := d.PopBottom()
		if got == nil || *got != i {
			t.Fatalf("PopBottom = %v, want %d", got, i)
		}
	}
}

func TestGrowthInterleaved(t *testing.T) {
	// Steals advance top so the ring wraps; growth must copy the live window.
	d := New[int]()
	vals := make([]int, 4*minCapacity)
	next := 0
	for round := 0; round < 8; round++ {
		for i := 0; i < minCapacity/2; i++ {
			vals[next] = next
			d.PushBottom(&vals[next])
			next++
		}
		for i := 0; i < minCapacity/4; i++ {
			if got := d.Steal(); got == nil {
				t.Fatal("unexpected empty steal")
			}
		}
	}
	// Drain and check the remaining items are a contiguous suffix in LIFO order.
	want := next - 1
	for {
		got := d.PopBottom()
		if got == nil {
			break
		}
		if *got != want {
			t.Fatalf("PopBottom = %d, want %d", *got, want)
		}
		want--
	}
}

// TestConcurrentSum pushes known work from the owner while thieves steal;
// every item must be consumed exactly once.
func TestConcurrentSum(t *testing.T) {
	const (
		nItems   = 100000
		nThieves = 4
	)
	d := New[int]()
	vals := make([]int, nItems)
	var stolen, popped atomic.Int64
	var sum atomic.Int64
	done := make(chan struct{})

	var wg sync.WaitGroup
	for i := 0; i < nThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := d.Steal(); v != nil {
					sum.Add(int64(*v))
					stolen.Add(1)
					continue
				}
				select {
				case <-done:
					// Final drain after the owner stops.
					for {
						v := d.Steal()
						if v == nil {
							return
						}
						sum.Add(int64(*v))
						stolen.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: push everything, popping occasionally.
	for i := 0; i < nItems; i++ {
		vals[i] = i + 1
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if v := d.PopBottom(); v != nil {
				sum.Add(int64(*v))
				popped.Add(1)
			}
		}
	}
	// Owner drains its own end too.
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		sum.Add(int64(*v))
		popped.Add(1)
	}
	close(done)
	wg.Wait()

	// A PopBottom/Steal race can leave one item claimed by the thief after
	// the owner's drain saw empty; do a final sweep.
	for {
		v := d.Steal()
		if v == nil {
			break
		}
		sum.Add(int64(*v))
		stolen.Add(1)
	}

	wantSum := int64(nItems) * int64(nItems+1) / 2
	if sum.Load() != wantSum {
		t.Fatalf("sum = %d, want %d (stolen=%d popped=%d)",
			sum.Load(), wantSum, stolen.Load(), popped.Load())
	}
	if stolen.Load()+popped.Load() != nItems {
		t.Fatalf("consumed %d items, want %d", stolen.Load()+popped.Load(), nItems)
	}
}

// TestConcurrentNoDuplicates checks mutual exclusion between PopBottom and
// Steal on the last element: each item is observed exactly once.
func TestConcurrentNoDuplicates(t *testing.T) {
	const rounds = 20000
	d := New[int]()
	seen := make([]atomic.Int32, rounds)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := d.Steal(); v != nil {
					seen[*v].Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	vals := make([]int, rounds)
	for i := 0; i < rounds; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if v := d.PopBottom(); v != nil {
			seen[*v].Add(1)
		}
	}
	close(stop)
	wg.Wait()
	for {
		v := d.Steal()
		if v == nil {
			break
		}
		seen[*v].Add(1)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, n)
		}
	}
}

// Property: for any sequence of owner pushes and pops (no thieves), the deque
// behaves exactly like a stack.
func TestQuickStackEquivalence(t *testing.T) {
	f := func(ops []bool) bool {
		d := New[int]()
		var model []int
		vals := make([]int, 0, len(ops))
		for i, push := range ops {
			if push {
				vals = append(vals, i)
				d.PushBottom(&vals[len(vals)-1])
				model = append(model, i)
			} else {
				got := d.PopBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got == nil || *got != want {
					return false
				}
			}
		}
		return d.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: steals see FIFO order of the surviving prefix for any push count.
func TestQuickStealOrder(t *testing.T) {
	f := func(n uint8) bool {
		d := New[int]()
		vals := make([]int, int(n))
		for i := range vals {
			vals[i] = i
			d.PushBottom(&vals[i])
		}
		for i := 0; i < int(n); i++ {
			got := d.Steal()
			if got == nil || *got != i {
				return false
			}
		}
		return d.Steal() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int]()
	v := 42
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkStealContended(b *testing.B) {
	d := New[int]()
	v := 7
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Steal()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
