// Package race implements a Cilkscreen-style determinacy-race detector
// (§4 of the paper) on top of the SP-bags algorithm.
//
// A data race exists when two logically parallel strands access the same
// shared location, the strands hold no locks in common, and at least one
// access is a write. The detector executes the program ONCE, serially (the
// runtime's serial-elision mode), tracking the series-parallel relationships
// of the execution with SP-bags and keeping shadow state per memory
// location. For a deterministic program and a given input, it reports a
// race on a location if and only if some scheduling of the parallel code
// could produce conflicting accesses to it — the same guarantee Cilkscreen
// provides.
//
// Lock-based protocols are handled with the ALL-SETS algorithm of Cheng,
// Feng, Leiserson, Randall and Stark (SPAA 1998), the paper's reference [8]:
// each location's shadow keeps a set of (lockset, accessor) pairs for
// readers and writers, pruning entries subsumed by later serial accesses
// with smaller locksets, so detection remains exact (no false negatives and
// no false positives) for programs that use locks.
//
// Cilkscreen intercepts every load and store with binary instrumentation;
// the Go analogue is source-level: programs funnel shared accesses through
// Detector.Read and Detector.Write with a Location key and a source label
// used for race localization. Lock events arrive through the cilklock
// observer.
package race

import (
	"fmt"

	"cilkgo/internal/sched"
	"cilkgo/internal/spbags"
	"cilkgo/internal/sporder"
)

// Location identifies one shared memory location. Any comparable value
// works: a pointer to the variable, a name string, or an Index key for an
// array element.
type Location any

// Index returns the Location of element i of the named array.
func Index(name string, i int) Location { return indexLoc{name, i} }

type indexLoc struct {
	name string
	i    int
}

func (l indexLoc) String() string { return fmt.Sprintf("%s[%d]", l.name, l.i) }

// Kind classifies a race by its access pair, in serial execution order.
type Kind int8

const (
	// WriteWrite: two parallel writes.
	WriteWrite Kind = iota
	// WriteRead: a write, then a logically parallel read.
	WriteRead
	// ReadWrite: a read, then a logically parallel write.
	ReadWrite
)

func (k Kind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Report describes one detected race.
type Report struct {
	Loc    Location
	Kind   Kind
	First  string // label of the serially earlier access
	Second string // label of the serially later access
}

func (r Report) String() string {
	return fmt.Sprintf("race (%s) on %v: %q ‖ %q", r.Kind, r.Loc, r.First, r.Second)
}

// Backend abstracts the on-the-fly series-parallel maintenance algorithm
// the detector runs on. Two provably good algorithms are provided, matching
// the paper's references: SP-bags (Feng–Leiserson, [14]; the default) and
// SP-order (Bender et al., [2]). Both receive the serial execution's
// parallel-control events and answer whether a recorded accessor's work is
// in series with the current instruction.
type Backend interface {
	FrameStart()
	FrameEnd()
	CallStart()
	CallEnd()
	Sync()
	// Current identifies the executing strand or procedure; the detector
	// stores it in shadow entries.
	Current() int32
	// InSeries reports whether the recorded accessor id's work is in
	// series with the current instruction.
	InSeries(id int32) bool
}

// bagsBackend adapts SP-bags (procedure-granular) to the Backend interface
// by tracking the procedure stack of the serial execution.
type bagsBackend struct {
	bags  *spbags.Bags
	stack []spbags.Proc
}

// NewSPBagsBackend returns the default SP-bags backend.
func NewSPBagsBackend() Backend {
	return &bagsBackend{bags: spbags.New()}
}

func (b *bagsBackend) FrameStart() { b.stack = append(b.stack, b.bags.NewProc()) }
func (b *bagsBackend) CallStart()  { b.stack = append(b.stack, b.bags.NewProc()) }

func (b *bagsBackend) FrameEnd() {
	child := b.popProc()
	if len(b.stack) > 0 {
		b.bags.ReturnSpawned(b.top(), child)
	}
}

func (b *bagsBackend) CallEnd() {
	child := b.popProc()
	if len(b.stack) > 0 {
		b.bags.ReturnCalled(b.top(), child)
	}
}

func (b *bagsBackend) Sync() { b.bags.Sync(b.top()) }

func (b *bagsBackend) top() spbags.Proc {
	if len(b.stack) == 0 {
		panic("race: access outside any procedure (is the detector attached via Hooks?)")
	}
	return b.stack[len(b.stack)-1]
}

func (b *bagsBackend) popProc() spbags.Proc {
	p := b.top()
	b.stack = b.stack[:len(b.stack)-1]
	return p
}

func (b *bagsBackend) Current() int32        { return int32(b.top()) }
func (b *bagsBackend) InSeries(x int32) bool { return b.bags.InSeries(spbags.Proc(x)) }

// NewSPOrderBackend returns the SP-order backend, which maintains English
// and Hebrew order-maintenance lists instead of disjoint-set bags.
func NewSPOrderBackend() Backend { return sporder.New() }

// access is one ALL-SETS shadow entry: an accessor strand/procedure
// together with the lockset it held and a source label.
type access struct {
	proc  int32
	locks []uint64
	label string
}

// cell is the shadow state of one location: the ALL-SETS reader and writer
// entry lists.
type cell struct {
	writers []access
	readers []access
}

// Detector drives one serial detection run. Create with NewDetector, attach
// via Hooks to a serial-elision runtime, route shared accesses through
// Read/Write, and collect Reports afterwards. The Detector also implements
// cilklock.Observer so locked accesses are recognized.
type Detector struct {
	backend Backend
	shadow  map[Location]*cell
	held    []uint64
	report  []Report
	seen    map[reportKey]bool
}

type reportKey struct {
	loc    Location
	kind   Kind
	first  string
	second string
}

// NewDetector returns an empty detector on the default SP-bags backend.
func NewDetector() *Detector {
	return NewDetectorBackend(NewSPBagsBackend())
}

// NewDetectorBackend returns an empty detector driven by the given
// series-parallel maintenance backend.
func NewDetectorBackend(b Backend) *Detector {
	return &Detector{
		backend: b,
		shadow:  make(map[Location]*cell),
		seen:    make(map[reportKey]bool),
	}
}

// Hooks returns the scheduler hooks that feed the detector. Install them
// with sched.WithHooks on a SerialElision runtime.
func (d *Detector) Hooks() sched.Hooks { return (*detHooks)(d) }

// detHooks adapts Detector to sched.Hooks without exposing the hook methods
// on Detector itself.
type detHooks Detector

func (h *detHooks) Spawn()      {}
func (h *detHooks) FrameStart() { (*Detector)(h).backend.FrameStart() }
func (h *detHooks) FrameEnd()   { (*Detector)(h).backend.FrameEnd() }
func (h *detHooks) CallStart()  { (*Detector)(h).backend.CallStart() }
func (h *detHooks) CallEnd()    { (*Detector)(h).backend.CallEnd() }
func (h *detHooks) Sync()       { (*Detector)(h).backend.Sync() }

// OnLock implements cilklock.Observer.
func (d *Detector) OnLock(id uint64) { d.held = append(d.held, id) }

// OnUnlock implements cilklock.Observer.
func (d *Detector) OnUnlock(id uint64) {
	for i := len(d.held) - 1; i >= 0; i-- {
		if d.held[i] == id {
			d.held = append(d.held[:i], d.held[i+1:]...)
			return
		}
	}
}

// locksDisjoint reports whether the two small lock-id sets share no lock.
func locksDisjoint(a, b []uint64) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

// subset reports a ⊆ b for small lock-id sets.
func subset(a, b []uint64) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (d *Detector) heldCopy() []uint64 {
	if len(d.held) == 0 {
		return nil
	}
	out := make([]uint64, len(d.held))
	copy(out, d.held)
	return out
}

func (d *Detector) emit(loc Location, kind Kind, first, second string) {
	key := reportKey{loc, kind, first, second}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	d.report = append(d.report, Report{Loc: loc, Kind: kind, First: first, Second: second})
}

func (d *Detector) cellFor(loc Location) *cell {
	c := d.shadow[loc]
	if c == nil {
		c = &cell{}
		d.shadow[loc] = c
	}
	return c
}

// checkAgainst reports races between the current access (with the held
// lockset) and every recorded entry that is logically parallel and shares
// no lock.
func (d *Detector) checkAgainst(loc Location, entries []access, kind Kind, label string) {
	for i := range entries {
		e := &entries[i]
		if !d.backend.InSeries(e.proc) && locksDisjoint(e.locks, d.held) {
			d.emit(loc, kind, e.label, label)
		}
	}
}

// insertPruned appends the current access (cur, locks, label) to entries,
// first removing entries it subsumes. An old entry (e′, H′) with H ⊆ H′ is
// redundant when either
//
//   - e′ is in series with the current strand: any future access racing
//     with (e′, H′) is parallel with the new entry too and holds a lockset
//     disjoint from H ⊆ H′ (the ALL-SETS pruning lemma); or
//   - raced is true and H ∩ H′ = ∅, i.e. the pair (e′, new) itself just
//     raced and was reported: the location is already flagged, so any race
//     a future access would have had with e′ either re-reports against the
//     new entry or is subsumed by the existing report. This keeps writer
//     lists O(1) on lock-free programs while preserving Cilkscreen's
//     per-location guarantee. Reads never race each other, so the caller
//     passes raced=false for reader lists and parallel readers are kept.
func (d *Detector) insertPruned(entries []access, cur int32, locks []uint64, label string, raced bool) []access {
	kept := entries[:0]
	for i := range entries {
		e := entries[i]
		if subset(locks, e.locks) &&
			(d.backend.InSeries(e.proc) || (raced && locksDisjoint(e.locks, locks))) {
			continue // subsumed by the new entry
		}
		kept = append(kept, e)
	}
	return append(kept, access{proc: cur, locks: locks, label: label})
}

// Write records a write to loc by the current strand. label localizes the
// access in the source (e.g. "walk: output_list.push_back").
func (d *Detector) Write(loc Location, label string) {
	cur := d.backend.Current()
	c := d.cellFor(loc)
	d.checkAgainst(loc, c.writers, WriteWrite, label)
	d.checkAgainst(loc, c.readers, ReadWrite, label)
	c.writers = d.insertPruned(c.writers, cur, d.heldCopy(), label, true)
}

// Read records a read of loc by the current strand.
func (d *Detector) Read(loc Location, label string) {
	cur := d.backend.Current()
	c := d.cellFor(loc)
	d.checkAgainst(loc, c.writers, WriteRead, label)
	c.readers = d.insertPruned(c.readers, cur, d.heldCopy(), label, false)
}

// Reports returns the detected races in detection order.
func (d *Detector) Reports() []Report { return d.report }

// Racy reports whether any race was detected.
func (d *Detector) Racy() bool { return len(d.report) > 0 }
