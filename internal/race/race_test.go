package race

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cilkgo/internal/cilklock"
	"cilkgo/internal/dag"
	"cilkgo/internal/sched"
)

func mustCheck(t *testing.T, program func(c *sched.Context, d *Detector)) []Report {
	t.Helper()
	reports, err := Check(program)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return reports
}

func TestNoRaceDisjointWrites(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		for i := 0; i < 8; i++ {
			i := i
			c.Spawn(func(*sched.Context) { d.Write(Index("a", i), "loop body") })
		}
		c.Sync()
	})
	if len(reports) != 0 {
		t.Fatalf("false positive: %v", reports)
	}
}

func TestWriteWriteRace(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) { d.Write("x", "child write") })
		d.Write("x", "parent write")
		c.Sync()
	})
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want one write-write race", reports)
	}
	r := reports[0]
	if r.Kind != WriteWrite || r.First != "child write" || r.Second != "parent write" {
		t.Fatalf("report = %+v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) { d.Write("x", "w") })
		d.Read("x", "r")
		c.Sync()
	})
	if len(reports) != 1 || reports[0].Kind != WriteRead {
		t.Fatalf("reports = %v, want one write-read race", reports)
	}
}

func TestReadWriteRace(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) { d.Read("x", "r") })
		d.Write("x", "w")
		c.Sync()
	})
	if len(reports) != 1 || reports[0].Kind != ReadWrite {
		t.Fatalf("reports = %v, want one read-write race", reports)
	}
}

func TestReadReadNoRace(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) { d.Read("x", "r1") })
		d.Read("x", "r2")
		c.Sync()
	})
	if len(reports) != 0 {
		t.Fatalf("parallel reads reported as race: %v", reports)
	}
}

func TestSyncSerializesAccesses(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) { d.Write("x", "before") })
		c.Sync()
		d.Write("x", "after")
	})
	if len(reports) != 0 {
		t.Fatalf("accesses separated by sync reported as race: %v", reports)
	}
}

func TestLocksSuppressRace(t *testing.T) {
	// §4: strands holding a lock in common do not race.
	mu := cilklock.New("L")
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) {
			mu.Lock()
			d.Write("x", "locked child")
			mu.Unlock()
		})
		mu.Lock()
		d.Write("x", "locked parent")
		mu.Unlock()
		c.Sync()
	})
	if len(reports) != 0 {
		t.Fatalf("lock-protected accesses reported as race: %v", reports)
	}
}

func TestDifferentLocksStillRace(t *testing.T) {
	a, b := cilklock.New("A"), cilklock.New("B")
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) {
			a.Lock()
			d.Write("x", "under A")
			a.Unlock()
		})
		b.Lock()
		d.Write("x", "under B")
		b.Unlock()
		c.Sync()
	})
	if len(reports) != 1 {
		t.Fatalf("disjoint locksets must race: %v", reports)
	}
}

// qsortInstr mirrors Fig. 1's quicksort spawn structure over an index range,
// recording element accesses. With overlap=true, line 13's bug from §4 is
// reproduced: qsort(max(begin+1, middle-1), end) makes the two spawned
// subproblems overlap by one element.
func qsortInstr(c *sched.Context, d *Detector, data []int, lo, hi int, overlap bool) {
	if hi-lo < 2 {
		return
	}
	// Partition: read and write every element of [lo,hi).
	pivot := data[lo]
	mid := lo
	for i := lo; i < hi; i++ {
		d.Read(Index("a", i), "partition read")
		if data[i] < pivot {
			mid++
		}
		d.Write(Index("a", i), "partition write")
	}
	if mid == lo {
		mid = lo + 1
	}
	loLeft, hiLeft := lo, mid
	loRight := max(lo+1, mid)
	if overlap {
		loRight = max(lo+1, mid-1) // the §4 bug
	}
	c.Spawn(func(c *sched.Context) { qsortInstr(c, d, data, loLeft, hiLeft, overlap) })
	qsortInstr(c, d, data, loRight, hi, overlap)
	c.Sync()
}

func TestQsortOverlapRaceDetected(t *testing.T) {
	// E7: Cilkscreen guarantees to find the §4 qsort bug when exposed.
	data := make([]int, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	buggy := mustCheck(t, func(c *sched.Context, d *Detector) {
		qsortInstr(c, d, append([]int(nil), data...), 0, len(data), true)
	})
	if len(buggy) == 0 {
		t.Fatal("overlapping qsort subproblems must race")
	}
	fixed := mustCheck(t, func(c *sched.Context, d *Detector) {
		qsortInstr(c, d, append([]int(nil), data...), 0, len(data), false)
	})
	if len(fixed) != 0 {
		t.Fatalf("correct qsort reported races: %v", fixed)
	}
}

// TestTreeWalkGlobalList reproduces Fig. 5's bug: parallel tree walk
// appending to a global output list races; Fig. 6's mutex version does not.
func TestTreeWalkGlobalList(t *testing.T) {
	var walk func(c *sched.Context, d *Detector, depth int, mu *cilklock.Mutex)
	walk = func(c *sched.Context, d *Detector, depth int, mu *cilklock.Mutex) {
		if depth == 0 {
			return
		}
		if mu != nil {
			mu.Lock()
		}
		d.Read("output_list", "walk: read list tail")
		d.Write("output_list", "walk: push_back")
		if mu != nil {
			mu.Unlock()
		}
		c.Spawn(func(c *sched.Context) { walk(c, d, depth-1, mu) })
		walk(c, d, depth-1, mu)
		c.Sync()
	}
	racy := mustCheck(t, func(c *sched.Context, d *Detector) { walk(c, d, 4, nil) })
	if len(racy) == 0 {
		t.Fatal("Fig. 5 naive parallel walk must race on output_list")
	}
	mu := cilklock.New("L")
	locked := mustCheck(t, func(c *sched.Context, d *Detector) { walk(c, d, 4, mu) })
	if len(locked) != 0 {
		t.Fatalf("Fig. 6 mutex walk reported races: %v", locked)
	}
}

func TestReportDeduplication(t *testing.T) {
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		for i := 0; i < 50; i++ {
			c.Spawn(func(*sched.Context) { d.Write("x", "w") })
		}
		c.Sync()
	})
	if len(reports) != 1 {
		t.Fatalf("identical races must be deduplicated: got %d reports", len(reports))
	}
}

func TestAccessOutsideRunPanics(t *testing.T) {
	d := NewDetector()
	defer func() {
		if recover() == nil {
			t.Fatal("access with empty procedure stack must panic")
		}
	}()
	d.Write("x", "stray")
}

// groundTruth executes a random lock-free fork-join program, driving the
// detector's hooks and a dag builder in lockstep, and returns the set of
// locations the dag model says are racy alongside the set the detector
// reported. The two must agree exactly: this is §4's "guarantees to report
// a race bug iff exposed", as a property test.
type gtAccess struct {
	node  dag.Node
	loc   int
	write bool
}

func groundTruth(seed int64) (want, got map[int]bool) {
	d := NewDetector()
	h := d.Hooks()
	bld := dag.NewBuilder()
	rng := rand.New(rand.NewSource(seed))
	var accesses []gtAccess
	const nLocs = 3

	var run func(depth int)
	run = func(depth int) {
		nOps := rng.Intn(6) + 1
		for op := 0; op < nOps; op++ {
			switch r := rng.Intn(6); {
			case r == 0 && depth < 4: // spawn
				h.Spawn()
				bld.Spawn()
				h.FrameStart()
				run(depth + 1)
				h.Sync() // implicit sync of child
				bld.Return()
				h.FrameEnd()
			case r == 1 && depth < 4: // call
				bld.Call()
				h.CallStart()
				run(depth + 1)
				h.Sync()
				bld.ReturnCall()
				h.CallEnd()
			case r == 2: // sync
				bld.Sync()
				h.Sync()
			default: // access
				loc := rng.Intn(nLocs)
				write := rng.Intn(2) == 0
				node := bld.Step(1)
				accesses = append(accesses, gtAccess{node, loc, write})
				if write {
					d.Write(loc, "w")
				} else {
					d.Read(loc, "r")
				}
			}
		}
	}
	h.FrameStart() // root
	run(0)
	h.Sync()
	h.FrameEnd()

	g := bld.Finish()
	want = make(map[int]bool)
	for i := 0; i < len(accesses); i++ {
		for j := i + 1; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if a.loc != b.loc || (!a.write && !b.write) {
				continue
			}
			if g.Parallel(a.node, b.node) {
				want[a.loc] = true
			}
		}
	}
	got = make(map[int]bool)
	for _, r := range d.Reports() {
		got[r.Loc.(int)] = true
	}
	return want, got
}

func TestQuickDetectorMatchesDagModel(t *testing.T) {
	f := func(seed int64) bool {
		want, got := groundTruth(seed)
		if len(want) != len(got) {
			return false
		}
		for loc := range want {
			if !got[loc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDetectorAccess(b *testing.B) {
	d := NewDetector()
	h := d.Hooks()
	h.FrameStart()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(Index("a", i%1024), "w")
		d.Read(Index("a", (i+1)%1024), "r")
	}
}

// groundTruthLocked extends the ground-truth comparison to programs that
// use locks: accesses record the lockset held, and the dag-model definition
// of a race (§4) — parallel strands, same location, at least one write,
// no common lock — is compared per location against the ALL-SETS detector.
func groundTruthLocked(seed int64, d *Detector) (want, got map[int]bool) {
	h := d.Hooks()
	bld := dag.NewBuilder()
	rng := rand.New(rand.NewSource(seed))
	const nLocs = 3
	const nLocks = 2
	type acc struct {
		node  dag.Node
		loc   int
		write bool
		locks []uint64
	}
	var accesses []acc

	var run func(depth int, held []uint64)
	run = func(depth int, held []uint64) {
		nOps := rng.Intn(6) + 1
		for op := 0; op < nOps; op++ {
			switch r := rng.Intn(8); {
			case r == 0 && depth < 4: // spawn
				h.Spawn()
				bld.Spawn()
				h.FrameStart()
				run(depth+1, held)
				h.Sync()
				bld.Return()
				h.FrameEnd()
			case r == 1 && depth < 4: // call
				bld.Call()
				h.CallStart()
				run(depth+1, held)
				h.Sync()
				bld.ReturnCall()
				h.CallEnd()
			case r == 2: // sync
				bld.Sync()
				h.Sync()
			case r == 3 || r == 4: // locked access scope
				id := uint64(rng.Intn(nLocks)) + 1
				d.OnLock(id)
				scope := append(append([]uint64(nil), held...), id)
				loc := rng.Intn(nLocs)
				write := rng.Intn(2) == 0
				node := bld.Step(1)
				accesses = append(accesses, acc{node, loc, write, scope})
				if write {
					d.Write(loc, "w-locked")
				} else {
					d.Read(loc, "r-locked")
				}
				d.OnUnlock(id)
			default: // plain access
				loc := rng.Intn(nLocs)
				write := rng.Intn(2) == 0
				node := bld.Step(1)
				accesses = append(accesses, acc{node, loc, write, append([]uint64(nil), held...)})
				if write {
					d.Write(loc, "w")
				} else {
					d.Read(loc, "r")
				}
			}
		}
	}
	h.FrameStart()
	run(0, nil)
	h.Sync()
	h.FrameEnd()

	g := bld.Finish()
	disjoint := func(a, b []uint64) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return false
				}
			}
		}
		return true
	}
	want = make(map[int]bool)
	for i := 0; i < len(accesses); i++ {
		for j := i + 1; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if a.loc != b.loc || (!a.write && !b.write) || !disjoint(a.locks, b.locks) {
				continue
			}
			if g.Parallel(a.node, b.node) {
				want[a.loc] = true
			}
		}
	}
	got = make(map[int]bool)
	for _, r := range d.Reports() {
		got[r.Loc.(int)] = true
	}
	return want, got
}

// TestQuickAllSetsMatchesDagModel: the ALL-SETS detector agrees exactly
// (per location) with the dag-model race definition on random programs
// that mix locked and unlocked accesses.
func TestQuickAllSetsMatchesDagModel(t *testing.T) {
	for name, mk := range map[string]func() *Detector{
		"spbags":  NewDetector,
		"sporder": func() *Detector { return NewDetectorBackend(NewSPOrderBackend()) },
	} {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				want, got := groundTruthLocked(seed, mk())
				if len(want) != len(got) {
					return false
				}
				for loc := range want {
					if !got[loc] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSPOrderBackendOnCanonicalPrograms: both backends agree on the
// paper's canonical buggy and fixed programs.
func TestSPOrderBackendOnCanonicalPrograms(t *testing.T) {
	progs := map[string]struct {
		prog func(*sched.Context, *Detector)
		racy bool
	}{
		"ww": {func(c *sched.Context, d *Detector) {
			c.Spawn(func(*sched.Context) { d.Write("x", "a") })
			d.Write("x", "b")
			c.Sync()
		}, true},
		"synced": {func(c *sched.Context, d *Detector) {
			c.Spawn(func(*sched.Context) { d.Write("x", "a") })
			c.Sync()
			d.Write("x", "b")
		}, false},
	}
	for name, tc := range progs {
		bags, err := Check(tc.prog)
		if err != nil {
			t.Fatal(err)
		}
		order, err := CheckSPOrder(tc.prog)
		if err != nil {
			t.Fatal(err)
		}
		if (len(bags) > 0) != tc.racy || (len(order) > 0) != tc.racy {
			t.Fatalf("%s: spbags=%d sporder=%d reports, racy=%v", name, len(bags), len(order), tc.racy)
		}
	}
}

// TestAllSetsMixedDiscipline: the same location accessed both with and
// without the lock races, even though the locked pair alone would not.
func TestAllSetsMixedDiscipline(t *testing.T) {
	mu := cilklock.New("L")
	reports := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) {
			mu.Lock()
			d.Write("x", "locked write")
			mu.Unlock()
		})
		d.Write("x", "unlocked write")
		c.Sync()
	})
	if len(reports) != 1 {
		t.Fatalf("mixed lock discipline must race once: %v", reports)
	}
}

// TestAllSetsNestedLocks: accesses under nested locks share the outer lock
// and must not race; dropping the common outer lock reintroduces the race.
func TestAllSetsNestedLocks(t *testing.T) {
	outer, inner := cilklock.New("outer"), cilklock.New("inner")
	quiet := mustCheck(t, func(c *sched.Context, d *Detector) {
		c.Spawn(func(*sched.Context) {
			outer.Lock()
			inner.Lock()
			d.Write("x", "w1")
			inner.Unlock()
			outer.Unlock()
		})
		outer.Lock()
		d.Write("x", "w2")
		outer.Unlock()
		c.Sync()
	})
	if len(quiet) != 0 {
		t.Fatalf("common outer lock must suppress the race: %v", quiet)
	}
}

// TestWriterListStaysSmall: on a lock-free all-parallel writer storm, the
// raced-pair pruning keeps the shadow entry list from growing linearly.
func TestWriterListStaysSmall(t *testing.T) {
	d := NewDetector()
	h := d.Hooks()
	h.FrameStart()
	for i := 0; i < 10_000; i++ {
		h.Spawn()
		h.FrameStart()
		d.Write("hot", "w")
		h.Sync()
		h.FrameEnd()
	}
	c := d.shadow["hot"]
	if len(c.writers) > 4 {
		t.Fatalf("writer entries = %d, want O(1) after pruning", len(c.writers))
	}
	if !d.Racy() {
		t.Fatal("storm must race")
	}
}
