package race

import (
	"cilkgo/internal/cilklock"
	"cilkgo/internal/sched"
)

// Check executes program once in serial-elision mode under a fresh
// Detector — exactly how Cilkscreen runs an application on a test input —
// and returns the detected races. The cilklock observer is installed for
// the duration so that mutex-protected accesses are recognized.
//
// The guarantee mirrors §4: for a deterministic program on this input, the
// returned reports are nonempty iff a race bug is exposed, i.e. iff two
// different schedulings of the parallel code could produce conflicting
// accesses.
func Check(program func(c *sched.Context, d *Detector)) ([]Report, error) {
	return checkWith(NewDetector(), program)
}

// CheckSPOrder is Check on the SP-order backend (the paper's reference [2])
// instead of SP-bags. The two backends report identical race sets; both are
// provided for cross-validation and for the offline any-pair queries only
// SP-order supports.
func CheckSPOrder(program func(c *sched.Context, d *Detector)) ([]Report, error) {
	return checkWith(NewDetectorBackend(NewSPOrderBackend()), program)
}

func checkWith(d *Detector, program func(c *sched.Context, d *Detector)) ([]Report, error) {
	cilklock.SetObserver(d)
	defer cilklock.SetObserver(nil)
	rt := sched.New(sched.WithSerialElision(), sched.WithHooks(d.Hooks()))
	err := rt.Run(func(c *sched.Context) { program(c, d) })
	return d.Reports(), err
}
