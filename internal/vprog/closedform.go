package vprog

// Closed-form metric computation for self-similar programs. Analyze walks
// every frame, which for matmul(1024) means ~10⁷ frames; but all
// subproblems of equal size have identical metrics, so the recursion
// memoizes to O(lg² n) work. These functions reproduce Analyze's results
// exactly (cross-validated by tests) and let the experiment harness
// evaluate paper-scale inputs (§2.3's 1000×1000 matrices and beyond)
// instantly.

// pforMetricsMemo mirrors pforFrame: leaf Exec(n·body) below the grain,
// otherwise Exec(1), spawn left half, call right half, sync.
func pforMetricsMemo(n, body, grain int64, memo map[int64]Metrics) Metrics {
	if m, ok := memo[n]; ok {
		return m
	}
	var m Metrics
	if n <= grain {
		m = Metrics{Work: n * body, Span: n * body, Frames: 1, MaxDepth: 1}
	} else {
		half := n / 2
		l := pforMetricsMemo(half, body, grain, memo)
		r := pforMetricsMemo(n-half, body, grain, memo)
		m = Metrics{
			Work:     1 + l.Work + r.Work,
			Span:     1 + maxI64(l.Span, r.Span),
			Frames:   1 + l.Frames + r.Frames,
			Spawns:   1 + l.Spawns + r.Spawns,
			MaxDepth: 1 + maxI64(l.MaxDepth, r.MaxDepth),
		}
	}
	memo[n] = m
	return m
}

// MatMulMetrics returns Analyze(MatMul(n, grain)) without materializing the
// frame tree: every size-h subproblem has the same metrics, so the
// recursion runs in O(lg² n).
func MatMulMetrics(n, grain int64) Metrics {
	if grain < 1 {
		grain = 1
	}
	pforMemo := make(map[int64]Metrics)
	memo := make(map[int64]Metrics)
	var rec func(n int64) Metrics
	rec = func(n int64) Metrics {
		if m, ok := memo[n]; ok {
			return m
		}
		var m Metrics
		if n <= grain {
			m = Metrics{Work: n * n * n, Span: n * n * n, Frames: 1, MaxDepth: 1}
		} else {
			h := rec(n / 2)
			add := pforMetricsMemo(n*n, 1, 64, pforMemo)
			m = Metrics{
				// 7 spawned + 1 called subproducts, then the parallel add.
				Work:     8*h.Work + add.Work,
				Span:     h.Span + add.Span,
				Frames:   1 + 8*h.Frames + add.Frames,
				Spawns:   7 + 8*h.Spawns + add.Spawns,
				MaxDepth: 1 + maxI64(h.MaxDepth, add.MaxDepth),
			}
		}
		memo[n] = m
		return m
	}
	m := rec(n)
	if m.Span > 0 {
		m.Parallelism = float64(m.Work) / float64(m.Span)
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
