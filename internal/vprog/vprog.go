// Package vprog defines virtual fork-join programs: lazily generated frame
// trees with integer-cost instruction segments, consumed by the
// discrete-event multiprocessor simulator (internal/sim) and by the
// analytic work/span analyzer in this package.
//
// A virtual program is what remains of a Cilk++ application once actual
// data is abstracted away: the spawn/call/sync structure plus the cost of
// each serial segment. The paper's performance theory (§2–§3) depends only
// on this structure, so virtual programs let us reproduce the paper's
// figures at full scale (e.g. quicksorting 10⁸ numbers) without executing
// 10⁸ element moves, and on simulated machines of any processor count.
//
// Frames are iterators, so a program with a billion frames (the §3.1
// loop-spawn example) needs only O(live frames) memory — which is itself
// the quantity the stack-space experiment bounds.
package vprog

import "cilkgo/internal/dag"

// Kind discriminates the steps of a frame.
type Kind uint8

const (
	// Exec executes Cost units of serial work.
	Exec Kind = iota
	// Spawn forks Child; the current frame's continuation becomes
	// stealable (cilk_spawn).
	Spawn
	// Call runs Child to completion serially within the current strand
	// (an ordinary function call, with its own sync scope).
	Call
	// Sync joins all children this frame has spawned (cilk_sync).
	Sync
	// End returns from the frame. An implicit Sync precedes it.
	End
	// Critical executes Cost units while holding the machine's single
	// global mutex (§5's contended output-list lock): the simulator
	// serializes all Critical segments machine-wide and charges a handoff
	// penalty when the lock migrates between processors. Analysis treats
	// it as plain Exec, since the dag model has no locks — which is
	// precisely why a lock-bound program misses its dag-model speedup.
	Critical
)

func (k Kind) String() string {
	switch k {
	case Exec:
		return "exec"
	case Spawn:
		return "spawn"
	case Call:
		return "call"
	case Sync:
		return "sync"
	case End:
		return "end"
	case Critical:
		return "critical"
	default:
		return "invalid"
	}
}

// Step is one event in a frame's execution.
type Step struct {
	Kind  Kind
	Cost  int64 // Exec only; must be ≥ 0
	Child Frame // Spawn and Call only
}

// Frame yields the successive steps of one procedure activation. After an
// End step, Next must not be called again.
type Frame interface {
	Next() Step
}

// Program names a virtual computation and constructs fresh root frames, so
// one Program value can be analyzed and simulated repeatedly.
type Program struct {
	Name string
	Root func() Frame
}

// seqFrame replays a fixed step slice.
type seqFrame struct {
	steps []Step
	pos   int
}

func (f *seqFrame) Next() Step {
	if f.pos >= len(f.steps) {
		return Step{Kind: End}
	}
	s := f.steps[f.pos]
	f.pos++
	return s
}

// Seq returns a frame that replays the given steps and then Ends. An
// explicit trailing End step is optional.
func Seq(steps ...Step) Frame { return &seqFrame{steps: steps} }

// Leaf returns a frame that executes cost units of work and returns.
func Leaf(cost int64) Frame {
	return Seq(Step{Kind: Exec, Cost: cost})
}

// Metrics summarizes the dag-model measures of a virtual program.
type Metrics struct {
	Work        int64   // T1
	Span        int64   // T∞
	Parallelism float64 // T1/T∞
	Frames      int64   // procedure activations, including the root
	Spawns      int64   // spawned activations
	MaxDepth    int64   // deepest activation (serial stack depth, S1 ∝ this)
}

// Analyze computes work and span directly from the program structure by the
// §2 recurrences — without simulating a machine:
//
//	exec c:    strand += c
//	spawn F:   pending = max(pending, strand + span(F))
//	call  F:   strand += span(F)
//	sync:      strand = max(strand, pending); pending = 0
//	end:       as sync; frame span = strand
//
// Analysis walks every frame once, so its cost is linear in the number of
// steps.
func Analyze(p Program) Metrics {
	return AnalyzeBurdened(p, 0)
}

// AnalyzeBurdened computes the burdened variant of the dag measures used by
// the Cilkview analyzer's lower speedup estimate (§3.1, Fig. 3): every
// spawn charges an extra burden of scheduling overhead to the spawning
// strand and to the spawned child's start, so the returned Span is the
// burdened span T∞ᵇ. Work is left unburdened. AnalyzeBurdened(p, 0) is
// exactly Analyze(p).
func AnalyzeBurdened(p Program, burden int64) Metrics {
	m := Metrics{}
	span := analyzeFrame(p.Root(), 1, &m, burden)
	m.Frames++ // the root
	m.Span = span
	if m.Span > 0 {
		m.Parallelism = float64(m.Work) / float64(m.Span)
	}
	if m.MaxDepth == 0 {
		m.MaxDepth = 1
	}
	return m
}

func analyzeFrame(f Frame, depth int64, m *Metrics, burden int64) (span int64) {
	if depth > m.MaxDepth {
		m.MaxDepth = depth
	}
	var strand, pending int64
	for {
		st := f.Next()
		switch st.Kind {
		case Exec, Critical:
			if st.Cost < 0 {
				panic("vprog: negative Exec cost")
			}
			m.Work += st.Cost
			strand += st.Cost
		case Spawn:
			m.Frames++
			m.Spawns++
			cs := analyzeFrame(st.Child, depth+1, m, burden)
			if end := strand + burden + cs; end > pending {
				pending = end
			}
			strand += burden
		case Call:
			m.Frames++
			strand += analyzeFrame(st.Child, depth+1, m, burden)
		case Sync:
			if pending > strand {
				strand = pending
			}
			pending = 0
		case End:
			if pending > strand {
				strand = pending
			}
			return strand
		default:
			panic("vprog: invalid step kind")
		}
	}
}

// ToDag converts a (small) virtual program to an explicit dag via the
// series-parallel builder, charging each Exec segment as one weighted
// instruction. It is intended for cross-validation and for figure-sized
// programs; large programs should use Analyze.
func ToDag(p Program) *dag.Dag {
	b := dag.NewBuilder()
	toDagFrame(b, p.Root())
	return b.Finish()
}

func toDagFrame(b *dag.Builder, f Frame) {
	for {
		st := f.Next()
		switch st.Kind {
		case Exec, Critical:
			b.Step(st.Cost)
		case Spawn:
			b.Spawn()
			toDagFrame(b, st.Child)
			b.Return()
		case Call:
			b.Call()
			toDagFrame(b, st.Child)
			b.ReturnCall()
		case Sync:
			b.Sync()
		case End:
			return
		default:
			panic("vprog: invalid step kind")
		}
	}
}

// lazyFrame defers construction of a frame until it is first stepped, so
// recursively defined programs materialize only the frames that are live.
type lazyFrame struct {
	make func() Frame
	f    Frame
}

func (l *lazyFrame) Next() Step {
	if l.f == nil {
		l.f = l.make()
		l.make = nil
	}
	return l.f.Next()
}

// Lazy wraps a frame constructor so the frame is built on first use.
// Generators use it at every recursion site; without it, creating a root
// frame would materialize the entire frame tree eagerly.
func Lazy(make func() Frame) Frame { return &lazyFrame{make: make} }
