package vprog

import (
	"fmt"
	"math/bits"
)

// splitmix64 advances the per-node deterministic RNG used by randomized
// workload generators, so a program's shape depends only on its seed (never
// on wall-clock or global state) and regenerating a frame tree is
// reproducible across Analyze and simulator runs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rngAt derives the k-th variate of stream seed.
func rngAt(seed uint64, k uint64) uint64 {
	return splitmix64(seed ^ splitmix64(k))
}

// log2ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2ceil(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(bits.Len64(uint64(n - 1)))
}

// Fib is the canonical Cilk workload: fib(n) with both recursive calls
// spawned, unit cost before the spawns and after the sync. Its parallelism
// grows exponentially in n.
func Fib(n int) Program {
	return Program{
		Name: fmt.Sprintf("fib(%d)", n),
		Root: func() Frame { return fibFrame(n) },
	}
}

func fibFrame(n int) Frame {
	if n < 2 {
		return Leaf(1)
	}
	return Seq(
		Step{Kind: Exec, Cost: 1},
		Step{Kind: Spawn, Child: Lazy(func() Frame { return fibFrame(n - 1) })},
		Step{Kind: Spawn, Child: Lazy(func() Frame { return fibFrame(n - 2) })},
		Step{Kind: Sync},
		Step{Kind: Exec, Cost: 1},
	)
}

// Qsort models the Fig. 1 parallel quicksort on n elements: each frame
// partitions its range (cost = range size), spawns the left recursion,
// calls the right recursion — exactly the structure of lines 12–13 — and
// syncs. Pivot ranks are drawn uniformly from a deterministic per-node
// stream, matching random input data. Ranges of at most grain elements
// sort serially at cost k⌈lg k⌉ + k.
//
// The expected parallelism is Θ(lg n): the root partition alone contributes
// Θ(n) span against Θ(n lg n) work, which is why Fig. 3's span-law ceiling
// for 10⁸ numbers sits near 10 rather than in the thousands.
func Qsort(n int64, seed uint64, grain int64) Program {
	if grain < 1 {
		grain = 1
	}
	return Program{
		Name: fmt.Sprintf("qsort(n=%d,grain=%d)", n, grain),
		Root: func() Frame { return qsortFrame(n, seed, grain) },
	}
}

func qsortFrame(n int64, seed uint64, grain int64) Frame {
	if n <= grain {
		if n <= 0 {
			return Leaf(1)
		}
		return Leaf(n*log2ceil(n) + n)
	}
	// Pivot rank uniform in [0, n): left gets k elements, right n-1-k.
	k := int64(rngAt(seed, 1) % uint64(n))
	leftSeed, rightSeed := splitmix64(seed^0xa5a5), splitmix64(seed^0x5a5a)
	return Seq(
		Step{Kind: Exec, Cost: n}, // partition walks the whole range
		Step{Kind: Spawn, Child: Lazy(func() Frame { return qsortFrame(k, leftSeed, grain) })},
		Step{Kind: Call, Child: Lazy(func() Frame { return qsortFrame(n-1-k, rightSeed, grain) })},
		Step{Kind: Sync},
	)
}

// LoopSpawn is the §3.1 example: one frame spawning n children of bodyCost
// each, then syncing. Under a naive scheduler this materializes an n-task
// queue; under work stealing the live-frame count stays O(P · S1), which
// experiment E5 verifies.
func LoopSpawn(n int64, bodyCost int64) Program {
	return Program{
		Name: fmt.Sprintf("loopspawn(n=%d,body=%d)", n, bodyCost),
		Root: func() Frame { return &loopFrame{n: n, body: bodyCost} },
	}
}

// loopFrame lazily yields one unit of loop bookkeeping and a spawn per
// iteration, so the iteration space is never materialized. The 1-unit
// charge per spawn makes the spawning strand itself Θ(n) long — the reason
// the paper's cilk_for parallelizes loops by divide-and-conquer rather than
// by a flat spawn loop.
type loopFrame struct {
	n, body int64
	i       int64
	spawned bool // Exec(1) emitted for iteration i, Spawn not yet
	synced  bool
}

func (f *loopFrame) Next() Step {
	if f.i < f.n {
		if !f.spawned {
			f.spawned = true
			return Step{Kind: Exec, Cost: 1}
		}
		f.spawned = false
		f.i++
		return Step{Kind: Spawn, Child: Leaf(f.body)}
	}
	if !f.synced {
		f.synced = true
		return Step{Kind: Sync}
	}
	return Step{Kind: End}
}

// PFor models a cilk_for over n iterations of bodyCost each with the given
// grain: divide-and-conquer halving, spawning the left half and calling the
// right, with one unit of bookkeeping per split.
func PFor(n, bodyCost, grain int64) Program {
	if grain < 1 {
		grain = 1
	}
	return Program{
		Name: fmt.Sprintf("pfor(n=%d,body=%d,grain=%d)", n, bodyCost, grain),
		Root: func() Frame { return pforFrame(n, bodyCost, grain) },
	}
}

func pforFrame(n, bodyCost, grain int64) Frame {
	if n <= grain {
		return Leaf(n * bodyCost)
	}
	half := n / 2
	return Seq(
		Step{Kind: Exec, Cost: 1},
		Step{Kind: Spawn, Child: Lazy(func() Frame { return pforFrame(half, bodyCost, grain) })},
		Step{Kind: Call, Child: Lazy(func() Frame { return pforFrame(n-half, bodyCost, grain) })},
		Step{Kind: Sync},
	)
}

// MatMul models divide-and-conquer dense matrix multiplication of n×n
// matrices (n a power of two): eight (n/2)-sized subproducts — seven
// spawned, one called — joined by a sync, followed by a parallel
// element-wise addition of n²/4·addScale elements. Work is Θ(n³) and span
// Θ(lg² n), which for n = 1000-scale inputs yields the "parallelism in the
// millions" the paper cites in §2.3.
func MatMul(n int64, grain int64) Program {
	if grain < 1 {
		grain = 1
	}
	return Program{
		Name: fmt.Sprintf("matmul(n=%d,grain=%d)", n, grain),
		Root: func() Frame { return matmulFrame(n, grain) },
	}
}

func matmulFrame(n, grain int64) Frame {
	if n <= grain {
		return Leaf(n * n * n)
	}
	h := n / 2
	steps := make([]Step, 0, 11)
	for i := 0; i < 7; i++ {
		steps = append(steps, Step{Kind: Spawn, Child: Lazy(func() Frame { return matmulFrame(h, grain) })})
	}
	steps = append(steps,
		Step{Kind: Call, Child: Lazy(func() Frame { return matmulFrame(h, grain) })},
		Step{Kind: Sync},
		// Parallel addition of the n² intermediate elements.
		Step{Kind: Call, Child: Lazy(func() Frame { return pforFrame(n*n, 1, 64) })},
	)
	return Seq(steps...)
}

// BFS models level-synchronous parallel breadth-first search on a random
// graph with nVertices vertices, average degree avgDeg, and the given
// number of levels. Level sizes follow a deterministic random profile
// (geometric expansion to a bulge, then contraction); each level is a
// cilk_for over its frontier with per-vertex cost 1 + degree, and levels
// are serially dependent. This matches §2.3's "problems on large irregular
// graphs, such as breadth-first search, generally exhibit parallelism on
// the order of thousands".
func BFS(nVertices int64, avgDeg int64, levels int, seed uint64) Program {
	if levels < 1 {
		levels = 1
	}
	sizes := bfsLevelSizes(nVertices, levels, seed)
	return Program{
		Name: fmt.Sprintf("bfs(V=%d,deg=%d,levels=%d)", nVertices, avgDeg, levels),
		Root: func() Frame {
			steps := make([]Step, 0, len(sizes))
			for _, sz := range sizes {
				// Process one frontier: parallel loop, per-vertex cost
				// 1+avgDeg; the next level depends on this one (Call).
				sz := sz
				steps = append(steps, Step{Kind: Call, Child: Lazy(func() Frame { return pforFrame(sz, 1+avgDeg, 16) })})
			}
			return Seq(steps...)
		},
	}
}

// bfsLevelSizes produces a deterministic frontier-size profile summing to
// nVertices: exponential growth to a central bulge, then decay, with ±25%
// jitter from the seed stream.
func bfsLevelSizes(nVertices int64, levels int, seed uint64) []int64 {
	weights := make([]float64, levels)
	var total float64
	mid := float64(levels-1) / 2
	for i := range weights {
		d := (float64(i) - mid) / (mid + 1)
		w := 1.0 / (1.0 + 4*d*d) // bulge at the middle levels
		jitter := 0.75 + 0.5*float64(rngAt(seed, uint64(i))%1000)/1000
		weights[i] = w * jitter
		total += weights[i]
	}
	sizes := make([]int64, levels)
	var assigned int64
	for i, w := range weights {
		sizes[i] = int64(float64(nVertices) * w / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Put any rounding remainder in the bulge.
	if rem := nVertices - assigned; rem > 0 {
		sizes[levels/2] += rem
	}
	return sizes
}

// SpMV models an iterative sparse solver: iters serially dependent sparse
// matrix–vector products over rows rows with nnzPerRow nonzeros each, each
// product a cilk_for with the given grain. The serial iteration dependence
// keeps the parallelism "in the hundreds" (§2.3) even though each product
// is wide.
func SpMV(rows, nnzPerRow int64, iters int, grain int64) Program {
	return Program{
		Name: fmt.Sprintf("spmv(rows=%d,nnz=%d,iters=%d)", rows, nnzPerRow, iters),
		Root: func() Frame {
			steps := make([]Step, 0, iters)
			for i := 0; i < iters; i++ {
				steps = append(steps, Step{Kind: Call, Child: Lazy(func() Frame { return pforFrame(rows, nnzPerRow, grain) })})
			}
			return Seq(steps...)
		},
	}
}

// TreeWalk models §5's collision-detection tree walk: a random binary tree
// of the given number of nodes; visiting a node costs checkCost (the
// property test), plus appendCost when the node "has the property"
// (probability hitPermille/1000); children are spawned/called as in Fig. 7.
func TreeWalk(nodes int64, seed uint64, checkCost, appendCost int64, hitPermille int) Program {
	return Program{
		Name: fmt.Sprintf("treewalk(nodes=%d,hit=%d‰)", nodes, hitPermille),
		Root: func() Frame {
			return treeWalkFrame(nodes, seed, checkCost, appendCost, hitPermille, false)
		},
	}
}

// TreeWalkLocked is the Fig. 6 variant of TreeWalk: the append runs inside
// the machine's global mutex (a Critical segment), reproducing §5's
// real-world collision-detection code whose lock contention "degraded
// performance on 4 processors so that it was worse than running on a
// single processor". The reducer variant is plain TreeWalk: same costs, no
// lock.
func TreeWalkLocked(nodes int64, seed uint64, checkCost, appendCost int64, hitPermille int) Program {
	return Program{
		Name: fmt.Sprintf("treewalk-mutex(nodes=%d,hit=%d‰)", nodes, hitPermille),
		Root: func() Frame {
			return treeWalkFrame(nodes, seed, checkCost, appendCost, hitPermille, true)
		},
	}
}

func treeWalkFrame(nodes int64, seed uint64, checkCost, appendCost int64, hitPermille int, locked bool) Frame {
	hit := int(rngAt(seed, 7)%1000) < hitPermille
	steps := make([]Step, 0, 5)
	steps = append(steps, Step{Kind: Exec, Cost: checkCost})
	if hit {
		kind := Exec
		if locked {
			kind = Critical
		}
		steps = append(steps, Step{Kind: kind, Cost: appendCost})
	}
	if nodes > 1 {
		// Random split of the remaining nodes between the two subtrees.
		rest := nodes - 1
		left := int64(rngAt(seed, 3) % uint64(rest+1))
		right := rest - left
		if left > 0 {
			leftSeed := splitmix64(seed ^ 0x11)
			steps = append(steps, Step{Kind: Spawn, Child: Lazy(func() Frame {
				return treeWalkFrame(left, leftSeed, checkCost, appendCost, hitPermille, locked)
			})})
		}
		if right > 0 {
			rightSeed := splitmix64(seed ^ 0x22)
			steps = append(steps, Step{Kind: Call, Child: Lazy(func() Frame {
				return treeWalkFrame(right, rightSeed, checkCost, appendCost, hitPermille, locked)
			})})
		}
		steps = append(steps, Step{Kind: Sync})
	}
	return Seq(steps...)
}

// SerialParallel models an Amdahl-style computation: serialWork units of
// unavoidable serial work followed by parallelWork units divided over a
// perfectly parallel cilk_for. The parallel fraction is
// parallelWork/(serialWork+parallelWork), connecting the dag model to
// Amdahl's Law for experiment E10.
func SerialParallel(serialWork, parallelWork, grain int64) Program {
	return Program{
		Name: fmt.Sprintf("amdahl(serial=%d,parallel=%d)", serialWork, parallelWork),
		Root: func() Frame {
			return Seq(
				Step{Kind: Exec, Cost: serialWork},
				Step{Kind: Call, Child: Lazy(func() Frame { return pforFrame(parallelWork, 1, grain) })},
			)
		},
	}
}

// NQueens models the classic backtracking n-queens search with a spawn per
// candidate placement: each frame tries every column not attacked by the
// rows above (bitmask pruning), spawning a child per survivor and syncing
// before returning. The tree is irregular — branch factors shrink as
// constraints accumulate — which makes it a useful memory-analysis subject:
// its live-frame high-water mark depends on which subtrees a schedule holds
// open, unlike fib's uniform recursion.
func NQueens(n int) Program {
	return Program{
		Name: fmt.Sprintf("nqueens(%d)", n),
		Root: func() Frame { return nqueensFrame(n, 0, 0, 0, 0) },
	}
}

func nqueensFrame(n, row int, cols, diag1, diag2 uint32) Frame {
	if row == n {
		return Leaf(1)
	}
	steps := make([]Step, 0, n+2)
	steps = append(steps, Step{Kind: Exec, Cost: int64(n)}) // scan the row
	for c := 0; c < n; c++ {
		bit := uint32(1) << uint(c)
		if cols&bit != 0 || diag1&(bit<<uint(row)) != 0 || diag2&(bit<<uint(n-1-row)) != 0 {
			continue
		}
		nc, nd1, nd2 := cols|bit, diag1|bit<<uint(row), diag2|bit<<uint(n-1-row)
		steps = append(steps, Step{Kind: Spawn, Child: Lazy(func() Frame {
			return nqueensFrame(n, row+1, nc, nd1, nd2)
		})})
	}
	steps = append(steps, Step{Kind: Sync}, Step{Kind: Exec, Cost: 1})
	return Seq(steps...)
}

// RandomFJ generates a random fork-join program for property tests: frames
// contain random Exec segments, spawns, calls and syncs, bounded by
// maxDepth and a per-frame op budget. Its shape and costs are fully
// determined by the seed.
func RandomFJ(seed uint64, maxDepth int) Program {
	return Program{
		Name: fmt.Sprintf("randomfj(seed=%d)", seed),
		Root: func() Frame { return randomFrame(seed, maxDepth) },
	}
}

func randomFrame(seed uint64, depth int) Frame {
	nOps := int(rngAt(seed, 0)%5) + 1
	steps := make([]Step, 0, nOps)
	for op := 0; op < nOps; op++ {
		r := rngAt(seed, uint64(op)+10)
		switch {
		case r%5 == 0 && depth > 0:
			childSeed := splitmix64(seed + uint64(op) + 1)
			steps = append(steps, Step{Kind: Spawn,
				Child: Lazy(func() Frame { return randomFrame(childSeed, depth-1) })})
		case r%5 == 1 && depth > 0:
			childSeed := splitmix64(seed ^ (uint64(op) + 77))
			steps = append(steps, Step{Kind: Call,
				Child: Lazy(func() Frame { return randomFrame(childSeed, depth-1) })})
		case r%5 == 2:
			steps = append(steps, Step{Kind: Sync})
		default:
			steps = append(steps, Step{Kind: Exec, Cost: int64(r % 17)})
		}
	}
	return Seq(steps...)
}
