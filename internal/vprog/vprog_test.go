package vprog

import (
	"testing"
	"testing/quick"
)

func TestLeafMetrics(t *testing.T) {
	m := Analyze(Program{Name: "leaf", Root: func() Frame { return Leaf(7) }})
	if m.Work != 7 || m.Span != 7 || m.Parallelism != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Frames != 1 || m.MaxDepth != 1 {
		t.Fatalf("frames/depth = %+v", m)
	}
}

func TestSpawnSpanRecurrence(t *testing.T) {
	// exec 2; spawn leaf(10); exec 3; sync; exec 1.
	// Work = 16. Span = 2 + max(10, 3) + 1 = 13.
	p := Program{Name: "t", Root: func() Frame {
		return Seq(
			Step{Kind: Exec, Cost: 2},
			Step{Kind: Spawn, Child: Leaf(10)},
			Step{Kind: Exec, Cost: 3},
			Step{Kind: Sync},
			Step{Kind: Exec, Cost: 1},
		)
	}}
	m := Analyze(p)
	if m.Work != 16 {
		t.Fatalf("Work = %d, want 16", m.Work)
	}
	if m.Span != 13 {
		t.Fatalf("Span = %d, want 13", m.Span)
	}
	if m.Spawns != 1 || m.Frames != 2 {
		t.Fatalf("counts = %+v", m)
	}
}

func TestCallIsSerial(t *testing.T) {
	// exec 2; call leaf(10); exec 3. Span = work = 15.
	p := Program{Name: "t", Root: func() Frame {
		return Seq(
			Step{Kind: Exec, Cost: 2},
			Step{Kind: Call, Child: Leaf(10)},
			Step{Kind: Exec, Cost: 3},
		)
	}}
	m := Analyze(p)
	if m.Work != 15 || m.Span != 15 {
		t.Fatalf("metrics = %+v, want work=span=15", m)
	}
}

func TestImplicitSyncAtEnd(t *testing.T) {
	// spawn leaf(10) and return without sync: span must include the child.
	p := Program{Name: "t", Root: func() Frame {
		return Seq(
			Step{Kind: Exec, Cost: 1},
			Step{Kind: Spawn, Child: Leaf(10)},
		)
	}}
	m := Analyze(p)
	if m.Span != 11 {
		t.Fatalf("Span = %d, want 11 (implicit sync)", m.Span)
	}
}

func TestFibMetrics(t *testing.T) {
	// fib frames: leaves cost 1; internal frames cost 2 (1 before spawns,
	// 1 after sync). Span(n) = 2 + span(n-1), span(0)=span(1)=1, so
	// span(n) = 2n - 1.
	m := Analyze(Fib(10))
	if want := int64(2*10 - 1); m.Span != want {
		t.Fatalf("fib(10) span = %d, want %d", m.Span, want)
	}
	// frames(n) = 1 + frames(n-1) + frames(n-2); frames(0)=frames(1)=1 →
	// frames(n) = 2*fib(n+1) - 1 with fib(1)=fib(2)=1.
	fib := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	if want := 2*fib[11] - 1; m.Frames != want {
		t.Fatalf("fib(10) frames = %d, want %d", m.Frames, want)
	}
	if m.Work <= m.Span {
		t.Fatalf("work %d must exceed span %d", m.Work, m.Span)
	}
}

func TestQsortParallelismIsLogarithmic(t *testing.T) {
	// §3.1/Fig. 3: quicksort's expected parallelism is O(lg n). Check that
	// parallelism grows far slower than n, and that the span is dominated
	// by the root partition (span ≥ n).
	small := Analyze(Qsort(1_000, 42, 16))
	big := Analyze(Qsort(100_000, 42, 16))
	if big.Span < 100_000 {
		t.Fatalf("qsort span %d must be at least n (root partition)", big.Span)
	}
	ratio := big.Parallelism / small.Parallelism
	if ratio > 4 {
		t.Fatalf("parallelism grew ×%.1f over ×100 input growth; expected logarithmic growth", ratio)
	}
	if big.Parallelism < 3 || big.Parallelism > 40 {
		t.Fatalf("qsort(1e5) parallelism = %.2f, expected O(lg n) scale", big.Parallelism)
	}
}

func TestLoopSpawnLazyAndWide(t *testing.T) {
	const n = 100_000
	m := Analyze(LoopSpawn(n, 5))
	if m.Work != 6*n { // 5 per body + 1 per spawn on the root strand
		t.Fatalf("Work = %d, want %d", m.Work, 6*n)
	}
	// The spawning strand is serial: span = n spawn instructions plus the
	// last body. This Θ(n) span is the §2 motivation for cilk_for's
	// divide-and-conquer recursion.
	if m.Span != n+5 {
		t.Fatalf("Span = %d, want %d", m.Span, n+5)
	}
	if m.Spawns != n {
		t.Fatalf("Spawns = %d, want %d", m.Spawns, n)
	}
	if m.MaxDepth != 2 {
		t.Fatalf("MaxDepth = %d, want 2", m.MaxDepth)
	}
}

func TestPForSpanLogarithmic(t *testing.T) {
	m := Analyze(PFor(1<<16, 1, 1))
	// span ≈ lg(n) splits + 1 leaf; must be far below work.
	if m.Span > 64 {
		t.Fatalf("pfor span = %d, want O(lg n)", m.Span)
	}
	if m.Work < 1<<16 {
		t.Fatalf("pfor work = %d too small", m.Work)
	}
}

// TestParallelismMagnitudes is the analytic core of experiment E11: the
// §2.3 claims about representative workloads.
func TestParallelismMagnitudes(t *testing.T) {
	matmul := Analyze(MatMul(512, 8))
	if matmul.Parallelism < 1e5 {
		t.Fatalf("matmul(512) parallelism = %.0f, want millions-scale (≥1e5)", matmul.Parallelism)
	}
	bfs := Analyze(BFS(1_000_000, 8, 24, 7))
	if bfs.Parallelism < 1e3 || bfs.Parallelism > 1e5 {
		t.Fatalf("BFS parallelism = %.0f, want thousands-scale", bfs.Parallelism)
	}
	spmv := Analyze(SpMV(10_000, 5, 100, 64))
	if spmv.Parallelism < 1e2 || spmv.Parallelism > 1e4 {
		t.Fatalf("SpMV parallelism = %.0f, want hundreds-scale", spmv.Parallelism)
	}
}

func TestSerialParallelAmdahl(t *testing.T) {
	// 50% serial work: parallelism ≈ 2 no matter how wide the parallel
	// part. Grain 64 keeps the loop's split bookkeeping negligible.
	m := Analyze(SerialParallel(10_000, 10_000, 64))
	if m.Parallelism < 1.8 || m.Parallelism > 2.2 {
		t.Fatalf("parallelism = %.2f, want ≈ 2 for a 50%% serial program", m.Parallelism)
	}
}

func TestTreeWalkDeterministic(t *testing.T) {
	a := Analyze(TreeWalk(5000, 3, 2, 10, 200))
	b := Analyze(TreeWalk(5000, 3, 2, 10, 200))
	if a != b {
		t.Fatalf("same seed produced different metrics: %+v vs %+v", a, b)
	}
	c := Analyze(TreeWalk(5000, 4, 2, 10, 200))
	if a == c {
		t.Fatal("different seeds produced identical metrics (suspicious)")
	}
}

func TestNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost must panic")
		}
	}()
	Analyze(Program{Name: "bad", Root: func() Frame {
		return Seq(Step{Kind: Exec, Cost: -1})
	}})
}

// Property: Analyze agrees exactly with the explicit dag model on random
// fork-join programs (work, span).
func TestQuickAnalyzeMatchesDag(t *testing.T) {
	f := func(seed uint64) bool {
		p := RandomFJ(seed, 4)
		m := Analyze(p)
		g := ToDag(p)
		gm, err := g.Analyze()
		if err != nil {
			return false
		}
		return m.Work == gm.Work && m.Span == gm.Span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Work and Span laws' precondition, span ≤ work, holds for
// every generator at assorted sizes.
func TestQuickGeneratorSanity(t *testing.T) {
	f := func(seed uint64) bool {
		progs := []Program{
			Fib(int(seed%12) + 2),
			Qsort(int64(seed%5000)+10, seed, 8),
			LoopSpawn(int64(seed%1000)+1, int64(seed%9)+1),
			PFor(int64(seed%4096)+1, 3, 16),
			TreeWalk(int64(seed%2000)+1, seed, 1, 5, 300),
			RandomFJ(seed, 5),
		}
		for _, p := range progs {
			m := Analyze(p)
			if m.Span > m.Work || m.Span < 0 || m.Frames < 1 {
				return false
			}
			if m.Work > 0 && m.Span == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyzeQsort1e6(b *testing.B) {
	p := Qsort(1_000_000, 1, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}

// TestMatMulMetricsClosedForm cross-validates the memoized closed-form
// computation against the frame-walking Analyze.
func TestMatMulMetricsClosedForm(t *testing.T) {
	for _, tc := range []struct{ n, grain int64 }{{8, 1}, {32, 4}, {64, 8}, {64, 64}} {
		want := Analyze(MatMul(tc.n, tc.grain))
		got := MatMulMetrics(tc.n, tc.grain)
		if got != want {
			t.Fatalf("n=%d grain=%d:\n got %+v\nwant %+v", tc.n, tc.grain, got, want)
		}
	}
	// Paper scale: 1000×1000-class multiply has parallelism in the millions.
	big := MatMulMetrics(1024, 8)
	if big.Parallelism < 1e6 {
		t.Fatalf("matmul(1024) parallelism = %.0f, want ≥ 1e6", big.Parallelism)
	}
}
