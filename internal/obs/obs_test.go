package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cilkgo/internal/cilkview"
	"cilkgo/internal/sched"
)

func report(id int64, work, span, wall time.Duration, steals int64) sched.RunReport {
	start := time.Unix(1000, 0)
	return sched.RunReport{
		ID:    id,
		Start: start,
		End:   start.Add(wall),
		Stats: sched.Stats{Work: work, Span: span, Steals: steals, Spawns: 100},
	}
}

func TestRegistryRing(t *testing.T) {
	r := NewRegistry(3)
	for i := int64(1); i <= 5; i++ {
		r.RunStart(i, time.Unix(i, 0))
		if got := len(r.Live()); got != 1 {
			t.Fatalf("live after start %d = %d, want 1", i, got)
		}
		rep := report(i, time.Millisecond, time.Millisecond, time.Millisecond, 0)
		if i == 5 {
			rep.Err = fmt.Errorf("boom")
		}
		r.RunEnd(rep)
	}
	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d runs, want 3 (ring capacity)", len(recent))
	}
	for i, want := range []int64{3, 4, 5} {
		if recent[i].ID != want {
			t.Errorf("recent[%d].ID = %d, want %d (oldest first)", i, recent[i].ID, want)
		}
	}
	if last, ok := r.Last(); !ok || last.ID != 5 {
		t.Errorf("Last = %v/%v, want run 5", last.ID, ok)
	}
	runs, errs := r.Totals()
	if runs != 5 || errs != 1 {
		t.Errorf("Totals = %d/%d, want 5/1", runs, errs)
	}
	if len(r.Live()) != 0 {
		t.Errorf("live after all ends = %d, want 0", len(r.Live()))
	}
	if lat := r.RunLatency(); lat.N != 5 {
		t.Errorf("run latency N = %d, want 5", lat.N)
	}
}

func TestScalable(t *testing.T) {
	// 8ms work, 1ms span, 4 steals at 50µs mean: burdened span 1.2ms.
	rep := report(1, 8*time.Millisecond, time.Millisecond, 3*time.Millisecond, 4)
	s := Scalable(rep, 4, 50*time.Microsecond)
	if got := s.Parallelism; got < 7.99 || got > 8.01 {
		t.Errorf("Parallelism = %v, want 8", got)
	}
	if s.BurdenedSpan != 1200*time.Microsecond {
		t.Errorf("BurdenedSpan = %v, want 1.2ms", s.BurdenedSpan)
	}
	if got := s.BurdenedParallelism; got < 6.6 || got > 6.7 {
		t.Errorf("BurdenedParallelism = %v, want 8/1.2 ≈ 6.67", got)
	}
	if got := s.Speedup; got < 2.6 || got > 2.7 {
		t.Errorf("Speedup = %v, want 8/3 ≈ 2.67", got)
	}
	if len(s.Bounds) != 4 {
		t.Fatalf("Bounds = %d entries, want 4", len(s.Bounds))
	}
	// The P=1 bounds are pinned by the laws; spot-check the envelope shape.
	if s.Bounds[0].Upper != 1 {
		t.Errorf("Bounds[1].Upper = %v, want 1", s.Bounds[0].Upper)
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i].LowerEst < s.Bounds[i-1].LowerEst || s.Bounds[i].Upper < s.Bounds[i-1].Upper {
			t.Errorf("bounds not monotone at P=%d", s.Bounds[i].Procs)
		}
		if s.Bounds[i].LowerEst > s.Bounds[i].Upper {
			t.Errorf("lower bound above upper at P=%d", s.Bounds[i].Procs)
		}
	}
	if !strings.Contains(s.Verdict, "laws hold") {
		t.Errorf("verdict %q does not confirm the laws", s.Verdict)
	}

	// Parallelism 8 on 2 workers is ample; the verdict should say so.
	if v := Scalable(rep, 2, 0).Verdict; !strings.Contains(v, "ample") {
		t.Errorf("verdict on 2 workers = %q, want ample parallelism", v)
	}
	// A speedup beyond the worker count flags a Work Law violation.
	fast := report(2, 8*time.Millisecond, time.Millisecond, time.Millisecond, 0)
	if v := Scalable(fast, 2, 0).Verdict; !strings.Contains(v, "WORK-LAW") {
		t.Errorf("verdict %q misses the work-law violation (speedup 8 on 2 workers)", v)
	}
	// No span data: the estimate degrades gracefully.
	if v := Scalable(report(3, 0, 0, time.Millisecond, 0), 2, 0).Verdict; !strings.Contains(v, "no work/span") {
		t.Errorf("verdict without data = %q", v)
	}
}

func TestProfileSharesCilkviewMath(t *testing.T) {
	rep := report(7, 10*time.Millisecond, 2*time.Millisecond, 5*time.Millisecond, 10)
	p := Profile(rep, 100*time.Microsecond)
	if p.Name != "run-7" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Work != int64(10*time.Millisecond) || p.Span != int64(2*time.Millisecond) {
		t.Errorf("Work/Span = %d/%d", p.Work, p.Span)
	}
	if want := int64(3 * time.Millisecond); p.BurdenedSpan != want {
		t.Errorf("BurdenedSpan = %d, want %d (span + 10 steals × 100µs)", p.BurdenedSpan, want)
	}
	// The amortized per-spawn burden keeps cilkview.Render's table honest.
	if want := int64(time.Millisecond) / 100; p.Burden != want {
		t.Errorf("Burden = %d, want %d (1ms overhead / 100 spawns)", p.Burden, want)
	}
	// And the rendered profile is the offline tool's own format.
	out := cilkview.Render(p, []int{1, 2, 4}, nil)
	if !strings.Contains(out, "run-7") || !strings.Contains(out, "Burdened parallelism") {
		t.Errorf("Render output missing expected sections:\n%s", out)
	}
}

// spinLeaf burns wall clock without yielding, the deterministic "work" unit
// of the crosscheck workloads.
func spinLeaf(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}

// fibSpin is fib with a fixed spin at every node — enough real work per
// strand that clock granularity and instrumentation overhead stay small
// relative to the measured quantities. Spinning at internal nodes (not just
// leaves) matters for the span comparison: the critical path is then ~n
// spins deep, so per-strand measurement overhead is noise rather than the
// dominant term.
func fibSpin(c *sched.Context, n int, leaf time.Duration) int {
	spinLeaf(leaf)
	if n < 2 {
		return n
	}
	var a int
	c.Spawn(func(c *sched.Context) { a = fibSpin(c, n-1, leaf) })
	b := fibSpin(c, n-2, leaf)
	c.Sync()
	return a + b
}

// TestOnlineMatchesOfflineCilkview is the tentpole acceptance check: the
// online work/span measured during a (single-worker) parallel execution must
// agree with the offline Cilkview's serial-elision measurement of the same
// program. One worker keeps the comparison clean on any machine — the online
// accounting is schedule-independent, and more workers than cores would
// inflate strand wall-time with preemption, testing the OS rather than the
// clocks. The 5%-agreement measurement on multi-core hardware is recorded in
// EXPERIMENTS.md (experiment O2); the assertion here is looser so starved CI
// runners don't flake.
func TestOnlineMatchesOfflineCilkview(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const n, leaf = 10, 300 * time.Microsecond
	workload := func(c *sched.Context) { fibSpin(c, n, leaf) }

	// The span tolerance is much looser than work's: span is a max over
	// ~2^n strand chains, so a handful of preempted or timer-coalesced
	// strands shifts the critical path by far more than they shift the sum.
	// And one sample isn't enough on a loaded box (the full test suite runs
	// package binaries in parallel, and a burst of CPU contention during just
	// one of the two measurements sends the span delta past 70%) — so the
	// test takes up to three samples and passes if ANY agrees. Gross
	// accounting breakage (a dropped sync aggregation halving or doubling
	// the span) is deterministic and fails every attempt; transient machine
	// load doesn't. The tight 5%-agreement claim lives in EXPERIMENTS.md O2.
	const attempts, workTol, spanTol = 3, 0.15, 0.45
	var workDelta, spanDelta float64
	for i := 0; i < attempts; i++ {
		off, err := cilkview.Measure("fib-offline", workload)
		if err != nil {
			t.Fatal(err)
		}

		reg := NewRegistry(4)
		rt := sched.New(sched.WithWorkers(1), sched.WithRunObserver(reg))
		err = rt.Run(workload)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		rep, ok := reg.Last()
		if !ok {
			t.Fatal("no run report")
		}

		workDelta = relDelta(float64(rep.Stats.Work), float64(off.Work))
		spanDelta = relDelta(float64(rep.Stats.Span), float64(off.Span))
		t.Logf("attempt %d online:  work=%v span=%v parallelism=%.2f", i+1, rep.Stats.Work, rep.Stats.Span,
			float64(rep.Stats.Work)/float64(rep.Stats.Span))
		t.Logf("attempt %d offline: work=%v span=%v parallelism=%.2f", i+1, time.Duration(off.Work), time.Duration(off.Span),
			off.Parallelism())
		t.Logf("attempt %d deltas:  work %.1f%%, span %.1f%%", i+1, workDelta*100, spanDelta*100)
		if workDelta <= workTol && spanDelta <= spanTol {
			return
		}
	}
	if workDelta > workTol {
		t.Errorf("online vs offline work %.1f%% apart on every attempt (want ≤ %.0f%%)",
			workDelta*100, workTol*100)
	}
	if spanDelta > spanTol {
		t.Errorf("online vs offline span %.1f%% apart on every attempt (want ≤ %.0f%%)",
			spanDelta*100, spanTol*100)
	}
}

func relDelta(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}

func TestRegistryClassTenantStats(t *testing.T) {
	r := NewRegistry(8)
	mk := func(id int64, cls sched.QoSClass, tenant string, queued time.Duration, fail bool) sched.RunReport {
		rep := report(id, time.Millisecond, time.Millisecond, 2*time.Millisecond, 0)
		rep.Class, rep.Tenant, rep.Queued = cls, tenant, queued
		if fail {
			rep.Err = fmt.Errorf("boom")
		}
		return rep
	}
	r.RunEnd(mk(1, sched.QoSInteractive, "pro", 10*time.Microsecond, false))
	r.RunEnd(mk(2, sched.QoSInteractive, "pro", 30*time.Microsecond, true))
	r.RunEnd(mk(3, sched.QoSBestEffort, "free", 500*time.Microsecond, false))

	cs := r.ClassStats()
	if len(cs) != 2 {
		t.Fatalf("ClassStats = %d entries, want 2: %+v", len(cs), cs)
	}
	// Sorted by class name: best-effort < interactive.
	if cs[0].Class != "best-effort" || cs[0].Runs != 1 || cs[0].Errs != 0 {
		t.Fatalf("best-effort stats = %+v", cs[0])
	}
	if cs[1].Class != "interactive" || cs[1].Runs != 2 || cs[1].Errs != 1 {
		t.Fatalf("interactive stats = %+v", cs[1])
	}
	if cs[1].Latency.N != 2 || cs[1].QueueWait.N != 2 {
		t.Fatalf("interactive histograms N = %d/%d, want 2/2", cs[1].Latency.N, cs[1].QueueWait.N)
	}

	ts := r.TenantStats()
	if len(ts) != 2 || ts[0].Tenant != "free" || ts[1].Tenant != "pro" {
		t.Fatalf("TenantStats = %+v, want [free pro]", ts)
	}
	if ts[1].Runs != 2 || ts[1].Errs != 1 || ts[1].QueuedTotal != 40*time.Microsecond {
		t.Fatalf("pro tenant stats = %+v", ts[1])
	}
}

func TestRegistryTenantOverflowAggregates(t *testing.T) {
	r := NewRegistry(4)
	for i := 0; i < maxTenantAggs+10; i++ {
		rep := report(int64(i), time.Millisecond, time.Millisecond, time.Millisecond, 0)
		rep.Tenant = fmt.Sprintf("tenant-%04d", i)
		r.RunEnd(rep)
	}
	ts := r.TenantStats()
	if len(ts) != maxTenantAggs+1 {
		t.Fatalf("tenant aggs = %d, want %d (cap + overflow bucket)", len(ts), maxTenantAggs+1)
	}
	var other *TenantStats
	for i := range ts {
		if ts[i].Tenant == "(other)" {
			other = &ts[i]
		}
	}
	if other == nil || other.Runs != 10 {
		t.Fatalf("overflow bucket = %+v, want 10 runs under (other)", other)
	}
}
