package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"cilkgo/internal/sched"
)

// observedRuntime builds a runtime with an observer (and optionally tracing),
// executes a couple of runs so every endpoint has data, and returns the
// introspection handler wrapped in an httptest server.
func observedRuntime(t *testing.T, opts ...sched.Option) (*sched.Runtime, *Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(8)
	rt := sched.New(append([]sched.Option{sched.WithWorkers(2), sched.WithRunObserver(reg)}, opts...)...)
	t.Cleanup(rt.Shutdown)
	for i := 0; i < 3; i++ {
		if err := rt.Run(func(c *sched.Context) { fibSpin(c, 6, 50*time.Microsecond) }); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(Handler(rt))
	t.Cleanup(srv.Close)
	return rt, reg, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promLine matches the Prometheus text exposition grammar for the subset we
// emit: comments, bare samples, and labelled samples with numeric values.
var promLine = regexp.MustCompile(
	`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN))$`)

func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := observedRuntime(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Every line must be grammatical.
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line %d not valid exposition format: %q", i+1, line)
		}
	}
	// The core counters and the per-worker breakdown must be present.
	for _, want := range []string{
		"# TYPE cilk_spawns counter", "cilk_spawns ",
		`cilk_worker_steal_attempts{worker="0"}`,
		"# TYPE cilk_runs_completed counter", "cilk_runs_completed 3",
		"# TYPE cilk_run_latency_seconds histogram",
		"# TYPE cilk_steal_latency_seconds histogram",
		"# TYPE cilk_park_to_wake_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Histogram buckets must be cumulative (monotone) and end at +Inf with
	// the _count value.
	checkHistogram(t, text, "cilk_run_latency_seconds")
	checkHistogram(t, text, "cilk_steal_latency_seconds")
}

// checkHistogram validates the cumulative-bucket contract of one emitted
// histogram: monotone counts, le bounds strictly increasing, +Inf == _count.
func checkHistogram(t *testing.T, text, name string) {
	t.Helper()
	var (
		prevCount   int64 = -1
		prevBound         = -1.0
		infCount    int64 = -1
		totalCount  int64 = -1
		seenBuckets int
	)
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{le=\"+Inf\"}"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("%s: %v", line, err)
			}
			infCount = v
		case strings.HasPrefix(line, name+"_bucket{le="):
			parts := strings.Fields(line)
			le := strings.TrimSuffix(strings.TrimPrefix(parts[0], name+`_bucket{le="`), `"}`)
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			count, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			if bound <= prevBound {
				t.Errorf("%s: le bounds not increasing (%g after %g)", name, bound, prevBound)
			}
			if count < prevCount {
				t.Errorf("%s: bucket counts not cumulative (%d after %d)", name, count, prevCount)
			}
			prevBound, prevCount = bound, count
			seenBuckets++
		case strings.HasPrefix(line, name+"_count"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("%s: %v", line, err)
			}
			totalCount = v
		}
	}
	if seenBuckets == 0 {
		t.Fatalf("%s: no buckets emitted", name)
	}
	if infCount != totalCount {
		t.Errorf("%s: +Inf bucket %d != _count %d", name, infCount, totalCount)
	}
	if prevCount > infCount {
		t.Errorf("%s: last finite bucket %d exceeds +Inf %d", name, prevCount, infCount)
	}
}

func TestRunsEndpoint(t *testing.T) {
	_, _, srv := observedRuntime(t)
	resp, err := http.Get(srv.URL + "/debug/cilk/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Workers       int   `json:"workers"`
		RunsCompleted int64 `json:"runs_completed"`
		Recent        []struct {
			ID          int64 `json:"id"`
			Spawns      int64 `json:"spawns"`
			Scalability struct {
				Work        int64   `json:"work_ns"`
				Span        int64   `json:"span_ns"`
				Parallelism float64 `json:"parallelism"`
				Verdict     string  `json:"verdict"`
			} `json:"scalability"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("runs payload is not valid JSON: %v", err)
	}
	if out.Workers != 2 || out.RunsCompleted != 3 || len(out.Recent) != 3 {
		t.Fatalf("workers=%d runs=%d recent=%d, want 2/3/3", out.Workers, out.RunsCompleted, len(out.Recent))
	}
	last := out.Recent[len(out.Recent)-1]
	if last.Spawns == 0 || last.Scalability.Work == 0 || last.Scalability.Span == 0 {
		t.Errorf("last run lacks observed data: %+v", last)
	}
	if last.Scalability.Work < last.Scalability.Span {
		t.Errorf("work %d < span %d", last.Scalability.Work, last.Scalability.Span)
	}
	if last.Scalability.Verdict == "" {
		t.Error("empty verdict")
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, reg, srv := observedRuntime(t)
	status, body := get(t, srv.URL+"/debug/cilk/profile")
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	for _, want := range []string{"Parallelism profile", "Work (T1)", "lower-est", "measured"} {
		if !strings.Contains(body, want) {
			t.Errorf("profile missing %q:\n%s", want, body)
		}
	}
	// Addressing a specific retained run works; a forgotten one is a 404.
	last, _ := reg.Last()
	if status, _ := get(t, srv.URL+"/debug/cilk/profile?id="+strconv.FormatInt(last.ID, 10)); status != 200 {
		t.Errorf("profile?id=%d status %d", last.ID, status)
	}
	if status, _ := get(t, srv.URL+"/debug/cilk/profile?id=999999"); status != 404 {
		t.Errorf("profile of unknown run: status %d, want 404", status)
	}
	if status, _ := get(t, srv.URL+"/debug/cilk/profile?id=bogus"); status != 400 {
		t.Errorf("profile with bad id: status %d, want 400", status)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, _, srv := observedRuntime(t, sched.WithTracing())
	resp, err := http.Get(srv.URL + "/debug/cilk/trace?dur=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Errorf("unexpected trace envelope: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	if status, body := get(t, srv.URL+"/debug/cilk/trace?dur=nonsense"); status != 400 {
		t.Errorf("bad dur: status %d (%s), want 400", status, body)
	}
}

func TestTraceEndpointWithoutTracing(t *testing.T) {
	_, _, srv := observedRuntime(t)
	if status, body := get(t, srv.URL+"/debug/cilk/trace?dur=10ms"); status != http.StatusServiceUnavailable {
		t.Errorf("trace without WithTracing: status %d (%s), want 503", status, body)
	}
}

func TestStallsAndIndexEndpoints(t *testing.T) {
	_, _, srv := observedRuntime(t)
	status, body := get(t, srv.URL+"/debug/cilk/stalls")
	if status != 200 {
		t.Fatalf("stalls status %d", status)
	}
	var stalls struct {
		Stall     *json.RawMessage `json:"stall"`
		Violation *json.RawMessage `json:"violation"`
	}
	if err := json.Unmarshal([]byte(body), &stalls); err != nil {
		t.Errorf("stalls payload is not valid JSON: %v", err)
	}
	status, body = get(t, srv.URL+"/debug/cilk/")
	if status != 200 || !strings.Contains(body, "/debug/cilk/runs") {
		t.Errorf("index status %d body %q", status, body)
	}
}

func TestEndpointsWithoutObserver(t *testing.T) {
	rt := sched.New(sched.WithWorkers(1))
	defer rt.Shutdown()
	srv := httptest.NewServer(Handler(rt))
	defer srv.Close()
	for _, path := range []string{"/debug/cilk/runs", "/debug/cilk/profile"} {
		status, body := get(t, srv.URL+path)
		if status != 404 || !strings.Contains(body, "observer") {
			t.Errorf("%s without observer: status %d body %q, want 404 with hint", path, status, body)
		}
	}
	// Metrics still work — they need only the runtime's counters.
	if status, _ := get(t, srv.URL+"/metrics"); status != 200 {
		t.Errorf("metrics without observer: status %d", status)
	}
}

func TestLoadEndpoint(t *testing.T) {
	rt, _, srv := observedRuntime(t)
	// Complete one labelled submission so the serving dimensions have data.
	tk, err := rt.Submit(context.Background(), func(c *sched.Context) { fibSpin(c, 5, 10*time.Microsecond) },
		sched.WithTenant("acme"), sched.WithQoS(sched.QoSInteractive))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv.URL+"/debug/cilk/load")
	if code != http.StatusOK {
		t.Fatalf("/debug/cilk/load = %d\n%s", code, body)
	}
	var out struct {
		Workers       int            `json:"Workers"`
		QueuedByClass map[string]int `json:"QueuedByClass"`
		Admitted      int64          `json:"Admitted"`
		Tenants       []struct {
			Tenant   string
			Admitted int64
		} `json:"Tenants"`
		Classes []struct {
			Class string
			Runs  int64
		} `json:"classes"`
		TenantTotals []struct {
			Tenant string
			Runs   int64
		} `json:"tenant_totals"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", out.Workers)
	}
	if out.Admitted < 1 {
		t.Fatalf("Admitted = %d, want >= 1", out.Admitted)
	}
	if _, ok := out.QueuedByClass["interactive"]; !ok {
		t.Fatalf("QueuedByClass missing interactive: %s", body)
	}
	foundTenant := false
	for _, tn := range out.Tenants {
		if tn.Tenant == "acme" && tn.Admitted == 1 {
			foundTenant = true
		}
	}
	if !foundTenant {
		t.Fatalf("acme tenant missing from load report: %s", body)
	}
	foundClass := false
	for _, c := range out.Classes {
		if c.Class == "interactive" && c.Runs >= 1 {
			foundClass = true
		}
	}
	if !foundClass {
		t.Fatalf("interactive class missing from completed-run stats: %s", body)
	}
	foundTotals := false
	for _, tn := range out.TenantTotals {
		if tn.Tenant == "acme" && tn.Runs == 1 {
			foundTotals = true
		}
	}
	if !foundTotals {
		t.Fatalf("acme missing from tenant totals: %s", body)
	}
}

func TestMetricsServingSeries(t *testing.T) {
	rt, _, srv := observedRuntime(t)
	tk, err := rt.Submit(context.Background(), func(c *sched.Context) { fibSpin(c, 5, 10*time.Microsecond) },
		sched.WithTenant("acme"), sched.WithQoS(sched.QoSInteractive))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`cilk_class_runs_completed{class="interactive"} 1`,
		`cilk_class_run_latency_seconds_count{class="interactive"} 1`,
		`cilk_class_queue_wait_seconds_count{class="interactive"} 1`,
		`cilk_tenant_runs_completed{tenant="acme"} 1`,
		`cilk_tenant_admitted{tenant="acme"} 1`,
		"# TYPE cilk_parked gauge",
		"cilk_queued_interactive 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every line must still parse as valid exposition format.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}
