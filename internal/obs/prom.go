package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cilkgo/internal/sched"
	"cilkgo/internal/trace"
)

// This file renders the runtime's counters and histograms in the Prometheus
// text exposition format (version 0.0.4): `# TYPE` headers, cumulative
// histogram buckets with `le` labels in seconds, per-worker series labelled
// {worker="N"}. No client library — the format is a dozen lines of fmt.

// promCounters are the Metrics() keys exported as counters; everything else
// is a gauge. Kept in sync with sched.Stats documentation.
var promCounters = map[string]bool{
	"spawns":                true,
	"steals":                true,
	"steal_attempts":        true,
	"steal_batches":         true,
	"tasks_stolen_batched":  true,
	"failed_sweeps":         true,
	"tasks_run":             true,
	"tasks_skipped":         true,
	"loop_splits":           true,
	"chunks_peeled":         true,
	"range_steals":          true,
	"local_steals":          true,
	"remote_steals":         true,
	"domain_escalations":    true,
	"affinity_reinjected":   true,
	"runs_submitted":        true,
	"runs_canceled":         true,
	"mem_budget_cancels":    true,
	"mem_pressure_rejected": true,
	"panics_quarantined":    true,
	"stalls":                true,
	"san_violations":        true,
	"san_faults_injected":   true,
}

// WriteMetrics writes the full Prometheus scrape: every sched.Metrics
// counter under the cilk_ prefix (per-worker breakdowns as {worker="N"}
// series), the runtime's live latency histograms, and — when reg is non-nil
// — the registry's run totals and run-latency histogram.
func WriteMetrics(w io.Writer, rt *sched.Runtime, reg *Registry) error {
	m := rt.Metrics()
	// Split flat keys from per-worker keys ("worker.N.key").
	flat := map[string]int64{}
	workers := map[string]map[string]int64{} // key -> worker id -> value
	for k, v := range m {
		if rest, ok := strings.CutPrefix(k, "worker."); ok {
			id, key, ok := strings.Cut(rest, ".")
			if !ok {
				continue
			}
			if workers[key] == nil {
				workers[key] = map[string]int64{}
			}
			workers[key][id] = v
			continue
		}
		flat[k] = v
	}
	bw := &errWriter{w: w}
	for _, k := range sortedKeys(flat) {
		typ := "gauge"
		if promCounters[k] {
			typ = "counter"
		}
		bw.printf("# TYPE cilk_%s %s\ncilk_%s %d\n", k, typ, k, flat[k])
	}
	for _, k := range sortedKeys(workers) {
		typ := "gauge"
		if promCounters[k] {
			typ = "counter"
		}
		bw.printf("# TYPE cilk_worker_%s %s\n", k, typ)
		for _, id := range sortedKeys(workers[k]) {
			bw.printf("cilk_worker_%s{worker=%q} %d\n", k, id, workers[k][id])
		}
	}
	hists := rt.LatencyHistograms()
	for _, name := range sortedKeys(hists) {
		writeHistogram(bw, "cilk_"+name+"_seconds", "", hists[name])
	}
	if reg != nil {
		runs, errs := reg.Totals()
		bw.printf("# TYPE cilk_runs_completed counter\ncilk_runs_completed %d\n", runs)
		bw.printf("# TYPE cilk_runs_errored counter\ncilk_runs_errored %d\n", errs)
		writeHistogram(bw, "cilk_run_latency_seconds", "", reg.RunLatency())

		// Serving dimensions: completed-run series per QoS class and per
		// tenant (see Registry.ClassStats/TenantStats).
		if cs := reg.ClassStats(); len(cs) > 0 {
			bw.printf("# TYPE cilk_class_runs_completed counter\n")
			for _, c := range cs {
				bw.printf("cilk_class_runs_completed{class=%q} %d\n", c.Class, c.Runs)
			}
			bw.printf("# TYPE cilk_class_runs_errored counter\n")
			for _, c := range cs {
				bw.printf("cilk_class_runs_errored{class=%q} %d\n", c.Class, c.Errs)
			}
			bw.printf("# TYPE cilk_class_run_latency_seconds histogram\n")
			for _, c := range cs {
				writeHistogramSeries(bw, "cilk_class_run_latency_seconds", fmt.Sprintf("class=%q", c.Class), c.Latency)
			}
			bw.printf("# TYPE cilk_class_queue_wait_seconds histogram\n")
			for _, c := range cs {
				writeHistogramSeries(bw, "cilk_class_queue_wait_seconds", fmt.Sprintf("class=%q", c.Class), c.QueueWait)
			}
		}
		if ts := reg.TenantStats(); len(ts) > 0 {
			bw.printf("# TYPE cilk_tenant_runs_completed counter\n")
			for _, t := range ts {
				bw.printf("cilk_tenant_runs_completed{tenant=%q} %d\n", t.Tenant, t.Runs)
			}
			bw.printf("# TYPE cilk_tenant_runs_errored counter\n")
			for _, t := range ts {
				bw.printf("cilk_tenant_runs_errored{tenant=%q} %d\n", t.Tenant, t.Errs)
			}
			bw.printf("# TYPE cilk_tenant_queue_wait_seconds_total counter\n")
			for _, t := range ts {
				bw.printf("cilk_tenant_queue_wait_seconds_total{tenant=%q} %s\n", t.Tenant, formatSeconds(t.QueuedTotal.Seconds()))
			}
		}
	}

	// Live serving load (sched.LoadReport): instantaneous queue/running
	// gauges per tenant. The runtime-wide gauges (queued_*, runs_running,
	// admission_*) are already in Metrics() above.
	load := rt.LoadReport()
	bw.printf("# TYPE cilk_parked gauge\ncilk_parked %d\n", load.Parked)
	if len(load.Tenants) > 0 {
		bw.printf("# TYPE cilk_tenant_queued gauge\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_queued{tenant=%q} %d\n", t.Tenant, t.Queued)
		}
		bw.printf("# TYPE cilk_tenant_running gauge\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_running{tenant=%q} %d\n", t.Tenant, t.Running)
		}
		bw.printf("# TYPE cilk_tenant_memory_bytes gauge\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_memory_bytes{tenant=%q} %d\n", t.Tenant, t.Memory)
		}
		bw.printf("# TYPE cilk_tenant_mem_ewma_bytes gauge\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_mem_ewma_bytes{tenant=%q} %d\n", t.Tenant, t.MemEWMA)
		}
		bw.printf("# TYPE cilk_tenant_admitted counter\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_admitted{tenant=%q} %d\n", t.Tenant, t.Admitted)
		}
		bw.printf("# TYPE cilk_tenant_rejected counter\n")
		for _, t := range load.Tenants {
			bw.printf("cilk_tenant_rejected{tenant=%q} %d\n", t.Tenant, t.Rejected)
		}
	}
	return bw.err
}

// writeHistogram emits one Prometheus histogram — its TYPE header followed
// by cumulative _bucket series with le bounds in seconds, then _sum and
// _count. labels, when non-empty, is a rendered label pair
// ("class=\"batch\"") added to every series.
func writeHistogram(bw *errWriter, name, labels string, h trace.Histogram) {
	bw.printf("# TYPE %s histogram\n", name)
	writeHistogramSeries(bw, name, labels, h)
}

// writeHistogramSeries emits one labelled series set of a histogram without
// the TYPE header, so several label values can share one header.
func writeHistogramSeries(bw *errWriter, name, labels string, h trace.Histogram) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		bw.printf("%s_bucket{%sle=%q} %d\n", name, sep, formatSeconds(float64(b)/1e9), cum)
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	bw.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum)
	if labels != "" {
		bw.printf("%s_sum{%s} %s\n", name, labels, formatSeconds(h.Sum.Seconds()))
		bw.printf("%s_count{%s} %d\n", name, labels, h.N)
	} else {
		bw.printf("%s_sum %s\n", name, formatSeconds(h.Sum.Seconds()))
		bw.printf("%s_count %d\n", name, h.N)
	}
}

// formatSeconds renders a bound in seconds the way Prometheus expects:
// shortest round-trip decimal.
func formatSeconds(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so the emit loops stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
