package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cilkgo/internal/cilkview"
	"cilkgo/internal/sched"
	"cilkgo/internal/schedsan"
	"cilkgo/internal/trace"
)

// Handler returns the runtime's HTTP introspection server, mountable under
// any mux (typically at "/" — the handler owns the full paths below):
//
//	/metrics                 Prometheus text: counters + latency histograms
//	/debug/cilk/runs         JSON: in-flight and recent runs with online
//	                         Cilkview scalability estimates
//	/debug/cilk/profile      the Fig. 3 parallelism profile of one run,
//	                         rendered on demand (?id=N; default most recent)
//	/debug/cilk/trace        capture-on-demand Chrome trace (?dur=2s),
//	                         downloadable straight into Perfetto
//	/debug/cilk/stalls       JSON: the sanitizer watchdog's latest stall and
//	                         invariant findings
//	/debug/cilk/load         JSON: the serving LoadReport — queued/running
//	                         roots by QoS class, per-tenant load, admission
//	                         outcomes — the backpressure signal for load
//	                         shedding
//	/debug/cilk/mem          JSON: the MemReport — live accounted bytes,
//	                         memory watermarks, budget cancels, pressure
//	                         sheds, per-tenant in-flight charges and EWMAs
//
// Run-level endpoints need the runtime built with an observer
// (sched.WithRunObserver(obs.NewRegistry(...))); without one they answer
// 404 with a hint. /metrics always works; /debug/cilk/trace needs
// sched.WithTracing; /debug/cilk/stalls needs sched.WithSanitize.
func Handler(rt *sched.Runtime) http.Handler {
	reg, _ := rt.RunObserver().(*Registry)
	h := &handler{rt: rt, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/debug/cilk/runs", h.runs)
	mux.HandleFunc("/debug/cilk/profile", h.profile)
	mux.HandleFunc("/debug/cilk/trace", h.trace)
	mux.HandleFunc("/debug/cilk/stalls", h.stalls)
	mux.HandleFunc("/debug/cilk/load", h.load)
	mux.HandleFunc("/debug/cilk/mem", h.mem)
	mux.HandleFunc("/debug/cilk/", h.index)
	return mux
}

type handler struct {
	rt  *sched.Runtime
	reg *Registry
}

// meanSteal returns the runtime's observed mean steal latency, the per-
// migration burden estimate behind the burdened-span numbers.
func (h *handler) meanSteal() time.Duration {
	if hist, ok := h.rt.LatencyHistograms()["steal_latency"]; ok {
		return hist.Mean()
	}
	return 0
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteMetrics(w, h.rt, h.reg)
}

// runJSON is one run in the /debug/cilk/runs payload.
type runJSON struct {
	ID          int64         `json:"id"`
	Start       time.Time     `json:"start"`
	End         time.Time     `json:"end"`
	Err         string        `json:"err,omitempty"`
	Tenant      string        `json:"tenant,omitempty"`
	Class       string        `json:"class"`
	QueuedNS    time.Duration `json:"queued_ns"`
	Spawns      int64         `json:"spawns"`
	TasksRun    int64         `json:"tasks_run"`
	Steals      int64         `json:"steals"`
	Scalability `json:"scalability"`
}

func (h *handler) runs(w http.ResponseWriter, r *http.Request) {
	if h.reg == nil {
		noObserver(w)
		return
	}
	workers := h.rt.Workers()
	meanSteal := h.meanSteal()
	recent := h.reg.Recent()
	out := struct {
		Workers       int           `json:"workers"`
		MeanStealNS   time.Duration `json:"mean_steal_latency_ns"`
		RunsCompleted int64         `json:"runs_completed"`
		RunsErrored   int64         `json:"runs_errored"`
		Live          []LiveRun     `json:"live"`
		Recent        []runJSON     `json:"recent"`
	}{Workers: workers, MeanStealNS: meanSteal, Live: h.reg.Live()}
	out.RunsCompleted, out.RunsErrored = h.reg.Totals()
	for _, rep := range recent {
		rj := runJSON{
			ID:          rep.ID,
			Start:       rep.Start,
			End:         rep.End,
			Tenant:      rep.Tenant,
			Class:       rep.Class.String(),
			QueuedNS:    rep.Queued,
			Spawns:      rep.Stats.Spawns,
			TasksRun:    rep.Stats.TasksRun,
			Steals:      rep.Stats.Steals,
			Scalability: Scalable(rep, workers, meanSteal),
		}
		if rep.Err != nil {
			rj.Err = rep.Err.Error()
		}
		out.Recent = append(out.Recent, rj)
	}
	writeJSON(w, out)
}

func (h *handler) profile(w http.ResponseWriter, r *http.Request) {
	if h.reg == nil {
		noObserver(w)
		return
	}
	var rep sched.RunReport
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		var id int64
		if _, err := fmt.Sscan(idStr, &id); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		found := false
		for _, cand := range h.reg.Recent() {
			if cand.ID == id {
				rep, found = cand, true
				break
			}
		}
		if !found {
			http.Error(w, fmt.Sprintf("run %d not in the recent-runs ring", id), http.StatusNotFound)
			return
		}
	} else {
		var ok bool
		if rep, ok = h.reg.Last(); !ok {
			http.Error(w, "no completed runs yet", http.StatusNotFound)
			return
		}
	}
	p := Profile(rep, h.meanSteal())
	procs := make([]int, h.rt.Workers())
	for i := range procs {
		procs[i] = i + 1
	}
	var measured []cilkview.Point
	if wall := rep.End.Sub(rep.Start); wall > 0 && p.Work > 0 {
		measured = []cilkview.Point{{Procs: h.rt.Workers(), Speedup: float64(p.Work) / float64(wall)}}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, cilkview.Render(p, procs, measured))
}

// maxCaptureDur caps /debug/cilk/trace captures: the handler blocks for the
// capture window, and an unbounded dur would let one request pin tracing
// (and a handler goroutine) arbitrarily long.
const maxCaptureDur = 30 * time.Second

func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	tr := h.rt.Tracer()
	if tr == nil {
		http.Error(w, "runtime built without WithTracing", http.StatusServiceUnavailable)
		return
	}
	dur := 2 * time.Second
	if ds := r.URL.Query().Get("dur"); ds != "" {
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			http.Error(w, "bad dur (want e.g. dur=2s)", http.StatusBadRequest)
			return
		}
		dur = d
	}
	if dur > maxCaptureDur {
		dur = maxCaptureDur
	}
	capture := tr.Capture(dur)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="cilk-trace.json"`)
	_ = trace.WriteChrome(w, capture)
}

func (h *handler) stalls(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Stall     *schedsan.Report `json:"stall"`
		Violation *schedsan.Report `json:"violation"`
	}{h.rt.StallReport(), h.rt.ViolationReport()})
}

// load serves the runtime's LoadReport plus the registry's per-class and
// per-tenant completed-run summaries: everything a load balancer or shedder
// needs in one scrape.
func (h *handler) load(w http.ResponseWriter, r *http.Request) {
	out := struct {
		sched.LoadReport
		Classes []ClassStats  `json:"classes,omitempty"`
		Tenants []TenantStats `json:"tenant_totals,omitempty"`
	}{LoadReport: h.rt.LoadReport()}
	if h.reg != nil {
		out.Classes = h.reg.ClassStats()
		out.Tenants = h.reg.TenantStats()
	}
	writeJSON(w, out)
}

// mem serves the runtime's MemReport: the live accounted-byte gauge against
// its watermarks, the enforcement counters, and each tenant's in-flight
// charge and peak EWMA — the memory half of the load/backpressure picture.
func (h *handler) mem(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.rt.MemReport())
}

func (h *handler) index(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `cilk runtime introspection
  /metrics                 Prometheus scrape
  /debug/cilk/runs         live + recent runs with scalability estimates (JSON)
  /debug/cilk/profile      parallelism profile of one run (?id=N)
  /debug/cilk/trace        capture a Chrome trace (?dur=2s)
  /debug/cilk/stalls       sanitizer stall/violation findings (JSON)
  /debug/cilk/load         serving load report: queues, tenants, admission (JSON)
  /debug/cilk/mem          memory report: live bytes, watermarks, budgets, tenant EWMAs (JSON)
`)
}

func noObserver(w http.ResponseWriter) {
	http.Error(w, "runtime built without a run observer (use cilk.WithObserver)", http.StatusNotFound)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
