// Package obs is the online observability layer over the runtime: it turns
// the per-run reports of sched.WithRunObserver into a live, queryable view —
// recent run records with online Cilkview scalability estimates, a run-
// latency histogram, and the HTTP introspection server (Handler) exposing
// Prometheus metrics, per-run reports, on-demand profiles, capture-on-demand
// Chrome traces, and the sanitizer's stall findings.
//
// The offline Cilkview (internal/cilkview) answers "how scalable is this
// program?" from a serial replay before deployment; this package answers the
// same question about the runs a live server is executing right now, using
// the work/span the scheduler measured during the parallel execution itself
// (internal/sched/obs.go). The burden estimate — the scheduling overhead the
// Cilk++ tool folds into its lower speedup bound — comes from measured
// scheduling behaviour: the run's steal count times the runtime's observed
// mean steal latency, charging every migration as if it lay on the critical
// path (pessimistic by construction; DESIGN.md §4e).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cilkgo/internal/cilkview"
	"cilkgo/internal/sched"
	"cilkgo/internal/trace"
)

// defaultKeep is how many completed runs a Registry retains by default.
const defaultKeep = 64

// Registry is the canonical sched.RunObserver: it tracks in-flight runs,
// retains the most recent completed run reports in a ring, and accumulates
// the run-latency histogram. Install it with sched.WithRunObserver (or the
// cilk facade's WithObserver) and serve it with Handler.
type Registry struct {
	mu     sync.Mutex
	live   map[int64]time.Time
	recent []sched.RunReport // ring, oldest first
	keep   int

	runs    int64 // completed runs, all time
	errRuns int64 // completed runs that returned an error

	latency *trace.LiveHistogram // run wall-clock latency

	// Serving-dimension aggregation, keyed by the submission identity the
	// RunReport carries (sched.Submit's WithQoS/WithTenant): per-class run
	// counts with latency and queue-wait histograms, and per-tenant run
	// counts with cumulative queue wait.
	classes map[string]*classAgg
	tenants map[string]*tenantAgg
}

// maxTenantAggs bounds the per-tenant map; once full, new tenant labels
// aggregate under "(other)" so a label-cardinality attack cannot grow the
// registry without bound.
const maxTenantAggs = 256

type classAgg struct {
	runs, errs int64
	latency    *trace.LiveHistogram // run wall-clock latency
	queueWait  *trace.LiveHistogram // root lane wait (RunReport.Queued)
}

type tenantAgg struct {
	runs, errs  int64
	queuedTotal time.Duration // cumulative lane wait across the tenant's runs
}

// ClassStats is the completed-run summary of one QoS class.
type ClassStats struct {
	Class      string
	Runs, Errs int64
	Latency    trace.Histogram
	QueueWait  trace.Histogram
}

// TenantStats is the completed-run summary of one tenant label. QueuedTotal
// is the tenant's cumulative root lane wait; QueuedTotal/Runs is its mean
// queueing delay.
type TenantStats struct {
	Tenant      string
	Runs, Errs  int64
	QueuedTotal time.Duration
}

// NewRegistry returns a Registry retaining the keep most recent completed
// runs (keep <= 0 selects the default of 64).
func NewRegistry(keep int) *Registry {
	if keep <= 0 {
		keep = defaultKeep
	}
	return &Registry{
		live:    make(map[int64]time.Time),
		keep:    keep,
		latency: trace.NewLiveHistogram(nil),
		classes: make(map[string]*classAgg),
		tenants: make(map[string]*tenantAgg),
	}
}

// RunStart implements sched.RunObserver.
func (r *Registry) RunStart(id int64, start time.Time) {
	r.mu.Lock()
	r.live[id] = start
	r.mu.Unlock()
}

// RunEnd implements sched.RunObserver.
func (r *Registry) RunEnd(rep sched.RunReport) {
	r.latency.Observe(rep.End.Sub(rep.Start))
	r.mu.Lock()
	delete(r.live, rep.ID)
	r.runs++
	if rep.Err != nil {
		r.errRuns++
	}
	if len(r.recent) >= r.keep {
		copy(r.recent, r.recent[1:])
		r.recent = r.recent[:len(r.recent)-1]
	}
	r.recent = append(r.recent, rep)

	cls := rep.Class.String()
	ca := r.classes[cls]
	if ca == nil {
		ca = &classAgg{latency: trace.NewLiveHistogram(nil), queueWait: trace.NewLiveHistogram(nil)}
		r.classes[cls] = ca
	}
	ca.runs++
	if rep.Err != nil {
		ca.errs++
	}
	ca.latency.Observe(rep.End.Sub(rep.Start))
	ca.queueWait.Observe(rep.Queued)

	tname := rep.Tenant
	ta := r.tenants[tname]
	if ta == nil {
		if len(r.tenants) >= maxTenantAggs {
			tname = "(other)"
		}
		if ta = r.tenants[tname]; ta == nil {
			ta = &tenantAgg{}
			r.tenants[tname] = ta
		}
	}
	ta.runs++
	if rep.Err != nil {
		ta.errs++
	}
	ta.queuedTotal += rep.Queued
	r.mu.Unlock()
}

// ClassStats returns per-QoS-class completed-run summaries, sorted by class
// name. Only classes that have completed at least one run appear.
func (r *Registry) ClassStats() []ClassStats {
	r.mu.Lock()
	out := make([]ClassStats, 0, len(r.classes))
	for name, ca := range r.classes {
		out = append(out, ClassStats{
			Class: name, Runs: ca.runs, Errs: ca.errs,
			Latency: ca.latency.Snapshot(), QueueWait: ca.queueWait.Snapshot(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// TenantStats returns per-tenant completed-run summaries, sorted by tenant
// label (the unlabeled tenant appears as ""; overflow labels past the
// 256-tenant cap aggregate under "(other)").
func (r *Registry) TenantStats() []TenantStats {
	r.mu.Lock()
	out := make([]TenantStats, 0, len(r.tenants))
	for name, ta := range r.tenants {
		out = append(out, TenantStats{
			Tenant: name, Runs: ta.runs, Errs: ta.errs, QueuedTotal: ta.queuedTotal,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// LiveRun is one in-flight run.
type LiveRun struct {
	ID    int64
	Start time.Time
}

// Live returns the in-flight runs, oldest first.
func (r *Registry) Live() []LiveRun {
	r.mu.Lock()
	out := make([]LiveRun, 0, len(r.live))
	for id, s := range r.live {
		out = append(out, LiveRun{ID: id, Start: s})
	}
	r.mu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort: the set is small
		for j := i; j > 0 && out[j].Start.Before(out[j-1].Start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Recent returns the retained completed run reports, oldest first.
func (r *Registry) Recent() []sched.RunReport {
	r.mu.Lock()
	out := append([]sched.RunReport(nil), r.recent...)
	r.mu.Unlock()
	return out
}

// Last returns the most recent completed run report, or false.
func (r *Registry) Last() (sched.RunReport, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) == 0 {
		return sched.RunReport{}, false
	}
	return r.recent[len(r.recent)-1], true
}

// Totals returns all-time completed and errored run counts.
func (r *Registry) Totals() (runs, errs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs, r.errRuns
}

// RunLatency returns a snapshot of the run wall-clock latency histogram.
func (r *Registry) RunLatency() trace.Histogram { return r.latency.Snapshot() }

// ProcBound is the scalability estimate at one processor count: the
// Cilkview lower speedup estimate (greedy bound with burdened span) and the
// upper bound (min of the Work Law and Span Law).
type ProcBound struct {
	Procs    int     `json:"procs"`
	LowerEst float64 `json:"lower_est"`
	Upper    float64 `json:"upper"`
}

// Scalability is the online Cilkview report for one completed run.
type Scalability struct {
	Work time.Duration `json:"work_ns"`
	Span time.Duration `json:"span_ns"`
	// Wall is the run's wall-clock duration; Speedup is Work/Wall, the
	// run's realized speedup on the workers it actually used.
	Wall    time.Duration `json:"wall_ns"`
	Speedup float64       `json:"speedup"`
	// Parallelism is T1/T∞. BurdenedSpan adds the migration burden —
	// Steals × mean observed steal latency — to the span, and
	// BurdenedParallelism is T1/T∞ᵇ, the scalability the scheduler can
	// realistically deliver.
	Parallelism         float64       `json:"parallelism"`
	BurdenedSpan        time.Duration `json:"burdened_span_ns"`
	BurdenedParallelism float64       `json:"burdened_parallelism"`
	// Bounds tabulates the speedup envelope for 1..P workers.
	Bounds []ProcBound `json:"bounds"`
	// Verdict summarizes the run against the laws of §2: whether the
	// measured speedup respects the Work Law (≤ P) and the Span Law
	// (≤ T1/T∞), and whether parallelism is ample for the worker count.
	Verdict string `json:"verdict"`
}

// lawSlack absorbs clock granularity when checking the measured speedup
// against its theoretical ceilings: the laws hold for exact work and span,
// and the online clocks carry per-boundary measurement noise.
const lawSlack = 1.05

// Profile converts a run report into a cilkview.Profile, so the online path
// reuses the offline tool's speedup-bound math (Parallelism, SpeedupUpper,
// SpeedupLowerEstimate, Render). The burdened span adds the run's measured
// migration cost — Steals × meanSteal — to the span, charging every
// migration as if it lay on the critical path; Burden carries the same
// overhead amortized per spawn, which is what cilkview.Render tabulates.
func Profile(rep sched.RunReport, meanSteal time.Duration) cilkview.Profile {
	p := cilkview.Profile{
		Name:   fmt.Sprintf("run-%d", rep.ID),
		Work:   int64(rep.Stats.Work),
		Span:   int64(rep.Stats.Span),
		Spawns: rep.Stats.Spawns,
	}
	p.BurdenedSpan = p.Span + rep.Stats.Steals*int64(meanSteal)
	if burden := p.BurdenedSpan - p.Span; burden > 0 && p.Spawns > 0 {
		p.Burden = burden / p.Spawns
	}
	return p
}

// Scalable derives the online Cilkview estimate for one run report.
// meanSteal is the runtime's observed mean steal latency (zero when no
// steal was ever observed), workers the runtime's worker count.
func Scalable(rep sched.RunReport, workers int, meanSteal time.Duration) Scalability {
	s := Scalability{
		Work: rep.Stats.Work,
		Span: rep.Stats.Span,
		Wall: rep.End.Sub(rep.Start),
	}
	if s.Span <= 0 || s.Work <= 0 {
		s.Verdict = "no work/span data (run not observed or empty)"
		return s
	}
	p := Profile(rep, meanSteal)
	s.Parallelism = p.Parallelism()
	s.BurdenedSpan = time.Duration(p.BurdenedSpan)
	s.BurdenedParallelism = p.BurdenedParallelism()
	if s.Wall > 0 {
		s.Speedup = float64(s.Work) / float64(s.Wall)
	}
	if workers < 1 {
		workers = 1
	}
	for n := 1; n <= workers; n++ {
		s.Bounds = append(s.Bounds, ProcBound{
			Procs:    n,
			LowerEst: p.SpeedupLowerEstimate(n),
			Upper:    p.SpeedupUpper(n),
		})
	}
	s.Verdict = verdict(s, workers)
	return s
}

func verdict(s Scalability, workers int) string {
	var v string
	switch {
	case s.Parallelism >= 4*float64(workers):
		v = fmt.Sprintf("ample parallelism (%.1f× the %d workers)", s.Parallelism/float64(workers), workers)
	case s.Parallelism >= float64(workers):
		v = fmt.Sprintf("adequate parallelism (%.1f for %d workers)", s.Parallelism, workers)
	default:
		v = fmt.Sprintf("parallelism-limited (%.1f < %d workers; span dominates)", s.Parallelism, workers)
	}
	switch {
	case s.Speedup == 0:
		// No wall measurement; nothing to check the laws against.
	case s.Speedup > float64(workers)*lawSlack:
		v += fmt.Sprintf("; WORK-LAW VIOLATION: measured speedup %.2f > %d workers (clock skew?)", s.Speedup, workers)
	case s.Speedup > s.Parallelism*lawSlack:
		v += fmt.Sprintf("; SPAN-LAW VIOLATION: measured speedup %.2f > parallelism %.2f (clock skew?)", s.Speedup, s.Parallelism)
	default:
		v += fmt.Sprintf("; work/span laws hold (speedup %.2f ≤ min(%d, %.1f))", s.Speedup, workers, s.Parallelism)
	}
	return v
}
