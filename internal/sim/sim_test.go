package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"cilkgo/internal/vprog"
)

func mustRun(t *testing.T, p vprog.Program, cfg Config) Result {
	t.Helper()
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name, err)
	}
	return r
}

func TestSingleProcessorIsSerialTime(t *testing.T) {
	// On one processor with no spawn overhead, T_1 equals the work exactly
	// and nothing is ever stolen.
	for _, p := range []vprog.Program{
		vprog.Fib(12),
		vprog.Qsort(2000, 1, 16),
		vprog.LoopSpawn(500, 7),
	} {
		m := vprog.Analyze(p)
		r := mustRun(t, p, Config{Procs: 1, Seed: 1})
		if r.Time != m.Work {
			t.Fatalf("%s: T_1 = %d, want work %d", p.Name, r.Time, m.Work)
		}
		if r.Steals != 0 {
			t.Fatalf("%s: %d steals on one processor", p.Name, r.Steals)
		}
		if r.Work != m.Work {
			t.Fatalf("%s: executed work %d, want %d", p.Name, r.Work, m.Work)
		}
	}
}

func TestWorkConservation(t *testing.T) {
	p := vprog.Fib(14)
	m := vprog.Analyze(p)
	r := mustRun(t, p, Config{Procs: 4, Seed: 3})
	var busy int64
	for _, b := range r.ProcBusy {
		busy += b
	}
	if busy != m.Work {
		t.Fatalf("Σbusy = %d, want work %d", busy, m.Work)
	}
	if r.Spawns != m.Spawns {
		t.Fatalf("Spawns = %d, want %d", r.Spawns, m.Spawns)
	}
	if r.FramesCreated != m.Frames {
		t.Fatalf("FramesCreated = %d, want %d", r.FramesCreated, m.Frames)
	}
}

func TestWorkAndSpanLaws(t *testing.T) {
	// E12: T_P ≥ T1/P (Work Law) and T_P ≥ T∞ (Span Law) on every run.
	for _, p := range []vprog.Program{
		vprog.Fib(14),
		vprog.Qsort(5000, 2, 16),
		vprog.PFor(4096, 3, 8),
	} {
		m := vprog.Analyze(p)
		for _, procs := range []int{1, 2, 4, 8, 16} {
			r := mustRun(t, p, Config{Procs: procs, Seed: 9})
			if r.Time*int64(procs) < m.Work {
				t.Fatalf("%s P=%d: Work Law violated: T_P=%d, T1=%d", p.Name, procs, r.Time, m.Work)
			}
			if r.Time < m.Span {
				t.Fatalf("%s P=%d: Span Law violated: T_P=%d, T∞=%d", p.Name, procs, r.Time, m.Span)
			}
		}
	}
}

func TestNearLinearSpeedupWhenParallelismHigh(t *testing.T) {
	// §3.1: if T1/T∞ ≫ P, speedup ≈ P. pfor(1e5) has parallelism in the
	// thousands; at P=8 utilization should be near 1.
	p := vprog.PFor(100_000, 10, 32)
	m := vprog.Analyze(p)
	if m.Parallelism < 100 {
		t.Fatalf("setup: parallelism = %.0f too low", m.Parallelism)
	}
	r := mustRun(t, p, Config{Procs: 8, Seed: 4})
	speedup := r.Speedup(m.Work)
	if speedup < 7 {
		t.Fatalf("speedup = %.2f at P=8 with parallelism %.0f, want ≥ 7", speedup, m.Parallelism)
	}
}

func TestSpeedupCappedByParallelism(t *testing.T) {
	// §2.3: speedup cannot exceed T1/T∞. A 50%-serial program speeds up at
	// most ×2 even on 64 processors.
	p := vprog.SerialParallel(50_000, 50_000, 64)
	m := vprog.Analyze(p)
	r := mustRun(t, p, Config{Procs: 64, Seed: 5})
	speedup := r.Speedup(m.Work)
	if speedup > m.Parallelism+0.01 {
		t.Fatalf("speedup %.2f exceeds parallelism %.2f", speedup, m.Parallelism)
	}
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f unexpectedly low", speedup)
	}
}

func TestGreedyBound(t *testing.T) {
	// E4: T_P ≤ T1/P + c·T∞ with a modest constant when steals are cheap.
	for _, tc := range []struct {
		p     vprog.Program
		procs int
	}{
		{vprog.Fib(16), 4},
		{vprog.Fib(16), 16},
		{vprog.Qsort(20000, 7, 32), 8},
		{vprog.LoopSpawn(3000, 20), 8},
		{vprog.PFor(10000, 5, 16), 32},
	} {
		m := vprog.Analyze(tc.p)
		r := mustRun(t, tc.p, Config{Procs: tc.procs, StealCost: 1, Seed: 11})
		bound := m.Work/int64(tc.procs) + 8*m.Span
		if r.Time > bound {
			t.Fatalf("%s P=%d: T_P=%d exceeds T1/P + 8·T∞ = %d (T1=%d T∞=%d)",
				tc.p.Name, tc.procs, r.Time, bound, m.Work, m.Span)
		}
	}
}

func TestStealFrequencyScalesWithSpan(t *testing.T) {
	// §3.2: "stealing is infrequent" when parallelism is ample — the
	// expected number of steals is O(P·T∞), far below the number of spawns.
	p := vprog.PFor(1_000_000, 10, 64)
	m := vprog.Analyze(p)
	const procs = 8
	r := mustRun(t, p, Config{Procs: procs, Seed: 6})
	if r.Steals == 0 {
		t.Fatal("expected some steals at P=8")
	}
	limit := 4 * int64(procs) * m.Span
	if r.Steals > limit {
		t.Fatalf("steals = %d exceed 4·P·T∞ = %d", r.Steals, limit)
	}
	if r.Steals*10 > r.Spawns {
		t.Fatalf("steals (%d) should be a small fraction of spawns (%d)", r.Steals, r.Spawns)
	}
}

func TestStackBoundLoopSpawn(t *testing.T) {
	// E5: the §3.1 example — a loop spawning a huge number of children —
	// must not materialize the iteration space. Live frames stay ≤ P·S1
	// (+1 transient: the child created at a spawn is live for an instant
	// before its parent's continuation can be resumed elsewhere).
	p := vprog.LoopSpawn(200_000, 3)
	m := vprog.Analyze(p)
	for _, procs := range []int{1, 2, 4, 8} {
		r := mustRun(t, p, Config{Procs: procs, Seed: 8})
		bound := int64(procs)*m.MaxDepth + 1
		if r.MaxLiveFrames > bound {
			t.Fatalf("P=%d: MaxLiveFrames = %d exceeds P·S1+1 = %d", procs, r.MaxLiveFrames, bound)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := vprog.Qsort(30000, 9, 32)
	a := mustRun(t, p, Config{Procs: 8, Seed: 42})
	b := mustRun(t, p, Config{Procs: 8, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	c := mustRun(t, p, Config{Procs: 8, Seed: 43})
	if reflect.DeepEqual(a.Steals, c.Steals) && a.Time == c.Time && a.StealAttempts == c.StealAttempts {
		t.Log("different seeds produced identical schedules (possible but unlikely)")
	}
}

func TestStealCostSlowsExecution(t *testing.T) {
	p := vprog.Fib(16)
	cheap := mustRun(t, p, Config{Procs: 8, StealCost: 1, Seed: 2})
	dear := mustRun(t, p, Config{Procs: 8, StealCost: 200, Seed: 2})
	if dear.Time < cheap.Time {
		t.Fatalf("raising StealCost sped things up: %d < %d", dear.Time, cheap.Time)
	}
}

func TestSpawnCostBurden(t *testing.T) {
	// SpawnCost inflates T1 by exactly spawns·cost on one processor.
	p := vprog.Fib(12)
	m := vprog.Analyze(p)
	r := mustRun(t, p, Config{Procs: 1, SpawnCost: 5, Seed: 1})
	if want := m.Work + 5*m.Spawns; r.Time != want {
		t.Fatalf("burdened T1 = %d, want %d", r.Time, want)
	}
}

func TestEventBudget(t *testing.T) {
	_, err := Run(vprog.Fib(20), Config{Procs: 2, Seed: 1, MaxEvents: 100})
	if err != ErrEventBudget {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := Run(vprog.Fib(3), Config{Procs: 0}); err == nil {
		t.Fatal("Procs=0 must error")
	}
	if _, err := Run(vprog.Fib(3), Config{Procs: 1, SpawnCost: -1}); err == nil {
		t.Fatal("negative SpawnCost must error")
	}
}

// Property: on random programs and machine sizes, every law holds — work
// conservation, Work Law, Span Law, and the busy-leaves space bound.
func TestQuickLawsRandomPrograms(t *testing.T) {
	f := func(seed uint64, procsRaw uint8) bool {
		procs := int(procsRaw)%16 + 1
		p := vprog.RandomFJ(seed, 5)
		m := vprog.Analyze(p)
		r, err := Run(p, Config{Procs: procs, Seed: int64(seed)})
		if err != nil {
			return false
		}
		if r.Work != m.Work {
			return false
		}
		if r.Time*int64(procs) < m.Work || r.Time < m.Span {
			return false
		}
		if r.MaxLiveFrames > int64(procs)*m.MaxDepth+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimFib18P8(b *testing.B) {
	p := vprog.Fib(18)
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, Config{Procs: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCriticalSectionsSerialize(t *testing.T) {
	// Two spawned strands each holding the lock for 100 units cannot
	// overlap: T_P ≥ 200 even on many processors.
	p := vprog.Program{Name: "twolocks", Root: func() vprog.Frame {
		return vprog.Seq(
			vprog.Step{Kind: vprog.Spawn, Child: vprog.Seq(vprog.Step{Kind: vprog.Critical, Cost: 100})},
			vprog.Step{Kind: vprog.Spawn, Child: vprog.Seq(vprog.Step{Kind: vprog.Critical, Cost: 100})},
			vprog.Step{Kind: vprog.Sync},
		)
	}}
	r := mustRun(t, p, Config{Procs: 8, Seed: 1})
	if r.Time < 200 {
		t.Fatalf("T_P = %d, but two 100-unit critical sections must serialize", r.Time)
	}
	if r.LockAcquisitions != 2 {
		t.Fatalf("LockAcquisitions = %d, want 2", r.LockAcquisitions)
	}
}

func TestLockHandoffCharged(t *testing.T) {
	p := vprog.TreeWalkLocked(2000, 5, 2, 10, 900)
	base := mustRun(t, p, Config{Procs: 4, Seed: 2, LockHandoff: 0})
	dear := mustRun(t, p, Config{Procs: 4, Seed: 2, LockHandoff: 500})
	if dear.Time <= base.Time {
		t.Fatalf("handoff cost did not slow the mutex walk: %d vs %d", dear.Time, base.Time)
	}
	if dear.LockHandoffs == 0 {
		t.Fatal("no lock handoffs recorded at P=4")
	}
	solo := mustRun(t, p, Config{Procs: 1, Seed: 2, LockHandoff: 500})
	if solo.LockHandoffs != 0 {
		t.Fatalf("P=1 recorded %d handoffs; the lock never migrates", solo.LockHandoffs)
	}
}

// TestMutexCollapseVsReducer reproduces §5's anecdote in the simulator:
// with a hot output list and realistic lock-migration cost, the mutex walk
// on 4 processors is SLOWER than on one, while the identical walk with a
// reducer (no lock) speeds up.
func TestMutexCollapseVsReducer(t *testing.T) {
	const (
		nodes   = 30_000
		check   = 8
		app     = 12
		hit     = 900 // 90% of nodes append: a hot list
		handoff = 300 // cache-line migration dwarfs the critical section
	)
	locked := vprog.TreeWalkLocked(nodes, 9, check, app, hit)
	free := vprog.TreeWalk(nodes, 9, check, app, hit)

	lock1 := mustRun(t, locked, Config{Procs: 1, Seed: 3, LockHandoff: handoff})
	lock4 := mustRun(t, locked, Config{Procs: 4, Seed: 3, LockHandoff: handoff})
	if lock4.Time <= lock1.Time {
		t.Fatalf("expected contention collapse: T_4 = %d not worse than T_1 = %d", lock4.Time, lock1.Time)
	}

	red1 := mustRun(t, free, Config{Procs: 1, Seed: 3})
	red4 := mustRun(t, free, Config{Procs: 4, Seed: 3})
	speedup := float64(red1.Time) / float64(red4.Time)
	if speedup < 3 {
		t.Fatalf("reducer walk speedup at P=4 = %.2f, want ≥ 3", speedup)
	}
}

// TestCentralQueueBlowsUpLiveFrames reproduces §3.1's contrast: on the
// loop-spawn example, the naive central-queue scheduler materializes the
// whole iteration space (live frames ≈ n), while work stealing keeps live
// frames at O(P·S1).
func TestCentralQueueBlowsUpLiveFrames(t *testing.T) {
	// Each iteration costs 1 unit to spawn but 100 to execute, so the
	// naive producer outruns its 4 consumers and the queue accretes.
	const n = 50_000
	p := vprog.LoopSpawn(n, 100)
	naive := mustRun(t, p, Config{Procs: 4, Seed: 1, Scheduler: CentralQueue})
	steal := mustRun(t, p, Config{Procs: 4, Seed: 1})
	if naive.MaxLiveFrames < n/2 {
		t.Fatalf("central queue live frames = %d, expected ≈ n = %d", naive.MaxLiveFrames, n)
	}
	if steal.MaxLiveFrames > 16 {
		t.Fatalf("work stealing live frames = %d, expected O(P·S1)", steal.MaxLiveFrames)
	}
	if naive.Work != steal.Work {
		t.Fatalf("schedulers executed different work: %d vs %d", naive.Work, steal.Work)
	}
}

// TestCentralQueueCorrectness: the naive scheduler still computes the full
// program (work conservation, laws hold) — it is only its space that is bad.
func TestCentralQueueCorrectness(t *testing.T) {
	for _, prog := range []vprog.Program{
		vprog.Fib(14),
		vprog.Qsort(3000, 2, 16),
	} {
		m := vprog.Analyze(prog)
		for _, procs := range []int{1, 4} {
			r := mustRun(t, prog, Config{Procs: procs, Seed: 5, Scheduler: CentralQueue})
			if r.Work != m.Work {
				t.Fatalf("%s: central-queue work %d != %d", prog.Name, r.Work, m.Work)
			}
			if r.Time*int64(procs) < m.Work || r.Time < m.Span {
				t.Fatalf("%s: laws violated under central queue", prog.Name)
			}
		}
	}
}

// TestMultiprogrammingAdaptation reproduces §3.2: when a worker is
// descheduled by the OS mid-run, its queued work is stolen by the others
// and the computation completes with throughput proportional to the
// processors that remain — Cilk++ programs "play nicely" with other jobs.
func TestMultiprogrammingAdaptation(t *testing.T) {
	p := vprog.PFor(200_000, 10, 64)
	m := vprog.Analyze(p)
	healthy := mustRun(t, p, Config{Procs: 8, Seed: 6})

	// Deschedule two of the eight processors a quarter of the way in.
	off := make([]int64, 8)
	off[3] = healthy.Time / 4
	off[6] = healthy.Time / 4
	degraded := mustRun(t, p, Config{Procs: 8, Seed: 6, OfflineAt: off})

	if degraded.Work != m.Work {
		t.Fatalf("descheduled run lost work: %d vs %d", degraded.Work, m.Work)
	}
	if degraded.Time <= healthy.Time {
		t.Fatalf("losing 2 of 8 processors cannot speed things up: %d vs %d",
			degraded.Time, healthy.Time)
	}
	// Ideal adapted time: a quarter at 8 processors, the rest at 6.
	ideal := healthy.Time/4 + (m.Work-(healthy.Time/4)*8)/6
	if degraded.Time > ideal*5/4 {
		t.Fatalf("adaptation poor: T=%d vs adapted ideal %d", degraded.Time, ideal)
	}
	// The descheduled processors did strictly less work.
	if degraded.ProcBusy[3] >= healthy.ProcBusy[3] {
		t.Fatalf("offline processor kept working: %d vs %d",
			degraded.ProcBusy[3], healthy.ProcBusy[3])
	}
}

// TestOfflineFromStart: a processor descheduled from t=0 contributes
// nothing; the rest absorb all work.
func TestOfflineFromStart(t *testing.T) {
	p := vprog.Fib(16)
	off := make([]int64, 4)
	off[2] = 1
	r := mustRun(t, p, Config{Procs: 4, Seed: 2, OfflineAt: off})
	m := vprog.Analyze(p)
	if r.Work != m.Work {
		t.Fatalf("work lost: %d vs %d", r.Work, m.Work)
	}
	if r.ProcBusy[2] > m.Work/100 {
		t.Fatalf("offline-from-start processor did %d work", r.ProcBusy[2])
	}
}

func TestVictimDomainPrefersLocalSteals(t *testing.T) {
	// Localized stealing on a 2-domain machine: the escalation ladder keeps
	// most successful steals inside the thief's own domain, and the locality
	// split always partitions the steal count exactly.
	p := vprog.Fib(16)
	r := mustRun(t, p, Config{Procs: 8, Domains: 2, Victim: VictimDomain, Seed: 7})
	if r.LocalSteals+r.RemoteSteals != r.Steals {
		t.Fatalf("LocalSteals %d + RemoteSteals %d != Steals %d", r.LocalSteals, r.RemoteSteals, r.Steals)
	}
	if r.Steals == 0 {
		t.Fatal("no steals on an 8-processor fib — simulator broken")
	}
	if r.LocalSteals <= r.RemoteSteals {
		t.Fatalf("VictimDomain stole mostly remotely: local %d, remote %d", r.LocalSteals, r.RemoteSteals)
	}
}

func TestRemoteMissesGrowWithDomains(t *testing.T) {
	// Gu et al.'s direction: under uniform-random stealing, splitting the
	// same machine into more domains turns more of the (schedule-identical)
	// cache misses into cross-domain ones. One domain has no "remote" at all.
	p := vprog.Fib(16)
	misses := func(domains int) int64 {
		var total int64
		for seed := int64(0); seed < 3; seed++ {
			r := mustRun(t, p, Config{Procs: 8, Domains: domains, CacheLines: 4, MissCost: 10, Seed: seed})
			total += r.RemoteMisses
		}
		return total
	}
	m1, m2, m8 := misses(1), misses(2), misses(8)
	if m1 != 0 {
		t.Fatalf("flat machine reported %d remote misses, want 0", m1)
	}
	if m8 == 0 {
		t.Fatal("8-domain machine reported no remote misses")
	}
	if m8 < m2 {
		t.Fatalf("remote misses shrank as domains grew: D=2 %d, D=8 %d", m2, m8)
	}
}

func TestVictimDomainReducesRemoteMisses(t *testing.T) {
	// The policy comparison behind the tentpole: on the same 4-domain
	// machine, localized stealing keeps frames inside their domain and so
	// suffers less cross-domain coherence traffic than uniform stealing.
	p := vprog.Fib(16)
	total := func(v VictimPolicy) int64 {
		var n int64
		for seed := int64(0); seed < 5; seed++ {
			r := mustRun(t, p, Config{Procs: 8, Domains: 4, CacheLines: 4, MissCost: 10, Victim: v, Seed: seed})
			n += r.RemoteMisses
		}
		return n
	}
	random, domain := total(VictimRandom), total(VictimDomain)
	if domain > random {
		t.Fatalf("VictimDomain caused more remote misses than VictimRandom: %d > %d", domain, random)
	}
}

func TestRemoteStealCostSlowsExecution(t *testing.T) {
	p := vprog.Fib(16)
	cheap := mustRun(t, p, Config{Procs: 8, Domains: 4, Seed: 2})
	dear := mustRun(t, p, Config{Procs: 8, Domains: 4, RemoteStealCost: 500, Seed: 2})
	if dear.Time < cheap.Time {
		t.Fatalf("raising RemoteStealCost sped things up: %d < %d", dear.Time, cheap.Time)
	}
}

func TestCacheModelPreservesWorkConservation(t *testing.T) {
	// Miss cost stretches processor busy time but never Work: the dag's
	// intrinsic cost is machine-independent. Σbusy accounts for every miss
	// exactly.
	p := vprog.Fib(14)
	m := vprog.Analyze(p)
	r := mustRun(t, p, Config{Procs: 4, Domains: 2, CacheLines: 2, MissCost: 7, Seed: 3})
	if r.Work != m.Work {
		t.Fatalf("cache model changed Work: %d, want %d", r.Work, m.Work)
	}
	var busy int64
	for _, b := range r.ProcBusy {
		busy += b
	}
	if want := m.Work + 7*r.CacheMisses; busy != want {
		t.Fatalf("Σbusy = %d, want work %d + 7·%d misses = %d", busy, m.Work, r.CacheMisses, want)
	}
	if r.CacheHits+r.CacheMisses == 0 {
		t.Fatal("cache model recorded no accesses")
	}
}

func TestDomainConfigClamping(t *testing.T) {
	p := vprog.Fib(12)
	// Domains beyond Procs clamps to one processor per domain: every steal
	// is remote. Domains 0 means flat: every steal is local.
	solo := mustRun(t, p, Config{Procs: 4, Domains: 99, Seed: 1})
	if solo.LocalSteals != 0 || solo.RemoteSteals != solo.Steals {
		t.Fatalf("one-proc domains: local %d remote %d steals %d", solo.LocalSteals, solo.RemoteSteals, solo.Steals)
	}
	flat := mustRun(t, p, Config{Procs: 4, Domains: 0, Seed: 1})
	if flat.RemoteSteals != 0 || flat.LocalSteals != flat.Steals {
		t.Fatalf("flat machine: local %d remote %d steals %d", flat.LocalSteals, flat.RemoteSteals, flat.Steals)
	}
	if _, err := Run(p, Config{Procs: 4, MissCost: -1}); err == nil {
		t.Fatal("negative MissCost accepted")
	}
	if _, err := Run(p, Config{Procs: 4, RemoteStealCost: -1}); err == nil {
		t.Fatal("negative RemoteStealCost accepted")
	}
}

func TestDeterminismWithLocalityModel(t *testing.T) {
	p := vprog.Qsort(8000, 9, 32)
	cfg := Config{Procs: 8, Domains: 2, Victim: VictimDomain,
		RemoteStealCost: 20, CacheLines: 4, MissCost: 10, Seed: 42}
	a := mustRun(t, p, cfg)
	b := mustRun(t, p, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}
