// Package sim is a deterministic discrete-event simulator of a
// P-processor machine running Cilk++'s randomized work-stealing scheduler
// (§3 of the paper), with the continuation-stealing semantics the real
// Cilk++ runtime implements and the Go runtime cannot (see DESIGN.md).
//
// Each virtual processor owns a deque of stealable continuations. Executing
// a spawn pushes the spawning frame's continuation on the bottom of the
// deque and dives into the child (the work-first principle). A processor
// that runs out of work becomes a thief: it picks victims uniformly at
// random and steals the topmost (shallowest) continuation; each steal
// attempt costs StealCost units of virtual time, modeling the
// communication/synchronization that "is incurred only when a worker runs
// out of work" (§3.2). A frame that stalls at a sync is resumed by the
// processor whose child return satisfies the join (Cilk's provably good
// steals), which preserves the busy-leaves property behind the §3.1 space
// bound S_P ≤ P·S_1.
//
// The simulator is single-threaded and fully deterministic given Config:
// the same program, processor count and seed always produce the same
// schedule, making the paper's probabilistic bounds (T_P ≤ T1/P + O(T∞))
// reproducible experiments rather than wall-clock accidents.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"cilkgo/internal/vprog"
)

// Config parameterizes a simulated machine.
type Config struct {
	// Procs is the number of virtual processors (≥ 1).
	Procs int
	// StealCost is the virtual time consumed by one steal attempt,
	// successful or not (≥ 1). It models the cost of inter-processor
	// communication.
	StealCost int64
	// SpawnCost is additional overhead charged to the spawning processor
	// at every spawn (≥ 0). Zero models the pure dag; positive values
	// model the "burden" of Cilkview's burdened-parallelism estimate.
	SpawnCost int64
	// LockHandoff is the penalty charged when the machine's global mutex
	// (vprog.Critical segments) is acquired by a different processor than
	// its previous holder — the cache-line migration behind §5's
	// contention collapse. Zero models a free lock.
	LockHandoff int64
	// Victim selects the steal-victim policy; the default is
	// VictimRandom, the provably efficient choice the Cilk++ scheduler
	// uses. The alternatives exist for the ablation benchmarks.
	Victim VictimPolicy
	// Scheduler selects the scheduling discipline. The default is
	// WorkStealing (the paper's scheduler). CentralQueue is the "more
	// naive scheduler" §3.1 warns about, "which may create a work-queue of
	// one billion tasks, one for each iteration, ... thus blowing out
	// physical memory": every spawn eagerly enqueues the child on a global
	// FIFO and the parent keeps running. Experiment E5 contrasts the two.
	Scheduler SchedulerPolicy
	// Seed seeds random victim selection.
	Seed int64
	// MaxEvents aborts runaway simulations; 0 means the default (2^31).
	MaxEvents int64
	// OfflineAt[i], when nonzero, deschedules processor i at that virtual
	// time, modeling §3.2's multiprogrammed environment: the processor
	// finishes its current instruction segment and then takes no further
	// work, but everything sitting in its deque remains stealable, so "the
	// work of that worker can be stolen away by other workers". Not
	// supported together with Critical sections (a descheduled lock holder
	// would wedge the machine, which is a property of locks, not of the
	// scheduler).
	OfflineAt []int64

	// Locality model (cache-miss-aware mode; see DESIGN.md §4g). Domains
	// partitions the processors into that many contiguous steal domains
	// (NUMA nodes); 0 or 1 is a flat machine. Clamped to [1, Procs].
	Domains int
	// RemoteStealCost is extra virtual time charged to a successful steal
	// whose victim sits in a different domain than the thief — the
	// cross-socket transfer cost on top of StealCost (≥ 0).
	RemoteStealCost int64
	// CacheLines, when positive, gives each processor an LRU cache of that
	// many frame working sets. Every Exec segment touches its frame's line:
	// a miss charges MissCost extra virtual time to the processor (but not
	// to Work, which stays the dag's intrinsic cost), and a miss on a frame
	// last executed in another domain counts as a remote miss — the
	// coherence traffic Gu et al.'s locality-aware stealing reduces. Zero
	// disables the cache model entirely.
	CacheLines int
	// MissCost is the virtual time added per cache miss (≥ 0).
	MissCost int64
}

// Result reports one simulated execution.
type Result struct {
	Time          int64 // T_P: virtual completion time of the computation
	Work          int64 // total Exec cost executed (sanity: equals T1 work)
	Steals        int64 // successful steals
	StealAttempts int64 // all steal probes
	Spawns        int64
	FramesCreated int64
	// MaxLiveFrames is the peak number of simultaneously allocated frames —
	// the cactus-stack occupancy that §3.1 bounds by P·S_1.
	MaxLiveFrames int64
	// MaxFrameDepth is the deepest frame (S_1, the serial stack depth).
	MaxFrameDepth int64
	// ProcBusy is per-processor busy time (Exec + SpawnCost overheads).
	ProcBusy []int64
	Events   int64
	// Lock statistics for programs with Critical sections (§5's mutex
	// tree walk): acquisitions, cross-processor handoffs, and the total
	// virtual time strands spent blocked waiting for the lock.
	LockAcquisitions int64
	LockHandoffs     int64
	LockWait         int64
	// Locality statistics (cache-miss-aware mode). Every successful steal
	// is local (victim in the thief's domain) or remote, so
	// LocalSteals + RemoteSteals == Steals. Cache counters are zero unless
	// CacheLines > 0; RemoteMisses are the subset of CacheMisses whose
	// frame was last executed in a different domain — the cross-domain
	// traffic that should grow with Domains under uniform-random stealing
	// and shrink under VictimDomain.
	LocalSteals  int64
	RemoteSteals int64
	CacheHits    int64
	CacheMisses  int64
	RemoteMisses int64
}

// Utilization returns the fraction of P·T_P the processors spent busy.
func (r Result) Utilization() float64 {
	if r.Time == 0 || len(r.ProcBusy) == 0 {
		return 0
	}
	var busy int64
	for _, b := range r.ProcBusy {
		busy += b
	}
	return float64(busy) / (float64(r.Time) * float64(len(r.ProcBusy)))
}

// Speedup returns T1/T_P given the program's work.
func (r Result) Speedup(work int64) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(work) / float64(r.Time)
}

// SchedulerPolicy selects the simulated scheduling discipline.
type SchedulerPolicy uint8

const (
	// WorkStealing is the Cilk++ scheduler: per-processor deques,
	// work-first spawns, randomized stealing.
	WorkStealing SchedulerPolicy = iota
	// CentralQueue is the naive eager-task scheduler: spawned children go
	// to one global FIFO, parents continue past spawns, idle processors
	// dequeue. Simple and greedy, but its pending-task population — and
	// hence its memory — grows with the program's total spawn count
	// rather than with P·S1.
	CentralQueue
)

// VictimPolicy selects how a thief picks its victim.
type VictimPolicy uint8

const (
	// VictimRandom picks victims uniformly at random — the policy whose
	// steal bound the paper's performance theorem (eq. 3) relies on.
	VictimRandom VictimPolicy = iota
	// VictimRoundRobin cycles deterministically through the other
	// processors. Simple, but adversarial workloads make all thieves
	// convoy on the same victims.
	VictimRoundRobin
	// VictimLastSuccess retries the last successful victim first and falls
	// back to random — an affinity heuristic.
	VictimLastSuccess
	// VictimDomain is localized stealing: a thief probes victims uniformly
	// inside its own steal domain (Config.Domains) and escalates to remote
	// domains only after a full local sweep's worth of consecutive failed
	// same-domain probes — the simulator's model of the real scheduler's
	// hierarchical hunt (internal/sched/domain.go). With Domains ≤ 1 it
	// degenerates to VictimRandom.
	VictimDomain
)

// ErrEventBudget is returned when a simulation exceeds MaxEvents.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// frame is one simulated procedure activation.
type frame struct {
	iter    vprog.Frame
	parent  *frame
	called  bool // entered via Call: parent resumes on this processor at End
	pending int  // outstanding spawned children
	stalled bool // parked at a sync with pending > 0
	ending  bool // the stalling sync was the implicit one before End
	depth   int64
	// lastProc is the processor that most recently executed one of this
	// frame's Exec segments (-1 before the first); the cache model uses it
	// to classify a miss as remote when that processor's domain differs
	// from the executor's.
	lastProc int
}

// proc is one virtual processor.
type proc struct {
	id      int
	current *frame
	deque   []*frame // bottom = end of slice; thieves take index 0
	busy    int64
	asleep  bool // idle with no steal event scheduled (famine)
	// releaseOnResume marks that the proc's next resume event ends a
	// Critical segment and must release the global lock.
	releaseOnResume bool
	// Victim-policy state: round-robin cursor and last successful victim.
	rrNext     int
	lastVictim int
	// Locality state: the processor's steal domain, its LRU cache of frame
	// working sets (CacheLines > 0 only), and — under VictimDomain — the
	// count of consecutive failed same-domain probes driving escalation.
	domain      int
	cache       []*frame
	localMisses int
}

// lockWaiter is a strand blocked on the global mutex.
type lockWaiter struct {
	pr    *proc
	cost  int64
	since int64
}

// event kinds.
const (
	evResume = iota // processor finishes its current Exec segment
	evSteal         // processor performs a steal attempt
)

type event struct {
	t    int64
	seq  int64 // FIFO tie-break for determinism
	proc int
	kind int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type simulator struct {
	cfg      Config
	procs    []*proc
	queue    eventQueue
	seq      int64
	rng      *rand.Rand
	res      Result
	live     int64
	nonempty int // number of nonempty deques
	done     bool
	doneTime int64
	// Global mutex state for vprog.Critical segments.
	lockHeld       bool
	lockLastHolder int
	lockQueue      []lockWaiter
	// Central FIFO for the CentralQueue scheduler (head index to avoid
	// quadratic dequeues).
	central     []*frame
	centralHead int
	// domains[d] lists the processor ids in steal domain d (contiguous
	// blocks, mirroring internal/sched's partition).
	domains [][]int
}

// Run simulates program p on the configured machine and returns the
// execution's measurements.
func Run(p vprog.Program, cfg Config) (Result, error) {
	if cfg.Procs < 1 {
		return Result{}, fmt.Errorf("sim: Procs = %d, need ≥ 1", cfg.Procs)
	}
	if cfg.StealCost < 1 {
		cfg.StealCost = 1
	}
	if cfg.SpawnCost < 0 {
		return Result{}, fmt.Errorf("sim: negative SpawnCost")
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 31
	}
	if cfg.LockHandoff < 0 {
		return Result{}, fmt.Errorf("sim: negative LockHandoff")
	}
	if cfg.RemoteStealCost < 0 {
		return Result{}, fmt.Errorf("sim: negative RemoteStealCost")
	}
	if cfg.MissCost < 0 {
		return Result{}, fmt.Errorf("sim: negative MissCost")
	}
	if cfg.CacheLines < 0 {
		return Result{}, fmt.Errorf("sim: negative CacheLines")
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	if cfg.Domains > cfg.Procs {
		cfg.Domains = cfg.Procs
	}
	s := &simulator{
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed ^ 0x6c696b)),
		lockLastHolder: -1,
	}
	s.procs = make([]*proc, cfg.Procs)
	s.domains = make([][]int, cfg.Domains)
	for i := range s.procs {
		d := i * cfg.Domains / cfg.Procs
		s.procs[i] = &proc{id: i, lastVictim: -1, rrNext: (i + 1) % cfg.Procs, domain: d}
		s.domains[d] = append(s.domains[d], i)
	}
	s.res.ProcBusy = make([]int64, cfg.Procs)

	root := s.newFrame(p.Root(), nil, false)
	s.procs[0].current = root
	s.advance(s.procs[0], 0)
	// Other processors begin probing immediately; they sleep if there is
	// nothing to steal.
	for _, pr := range s.procs[1:] {
		s.makeIdle(pr, 0)
	}

	for len(s.queue) > 0 && !s.done {
		e := heap.Pop(&s.queue).(event)
		s.res.Events++
		if s.res.Events > cfg.MaxEvents {
			return s.res, ErrEventBudget
		}
		pr := s.procs[e.proc]
		switch e.kind {
		case evResume:
			s.advance(pr, e.t)
		case evSteal:
			s.trySteal(pr, e.t)
		}
	}
	if !s.done {
		return s.res, errors.New("sim: deadlock — event queue drained before the root completed")
	}
	s.res.Time = s.doneTime
	for i, pr := range s.procs {
		s.res.ProcBusy[i] = pr.busy
	}
	return s.res, nil
}

func (s *simulator) newFrame(it vprog.Frame, parent *frame, called bool) *frame {
	f := &frame{iter: it, parent: parent, called: called, lastProc: -1}
	if parent != nil {
		f.depth = parent.depth + 1
	}
	s.res.FramesCreated++
	s.live++
	if s.live > s.res.MaxLiveFrames {
		s.res.MaxLiveFrames = s.live
	}
	if f.depth+1 > s.res.MaxFrameDepth {
		s.res.MaxFrameDepth = f.depth + 1
	}
	return f
}

func (s *simulator) schedule(t int64, p int, kind int) {
	s.seq++
	heap.Push(&s.queue, event{t: t, seq: s.seq, proc: p, kind: kind})
}

// pushDeque publishes f as a stealable continuation of processor pr,
// waking sleeping thieves.
func (s *simulator) pushDeque(pr *proc, f *frame, t int64) {
	if len(pr.deque) == 0 {
		s.nonempty++
	}
	pr.deque = append(pr.deque, f)
	for _, other := range s.procs {
		if other.asleep {
			other.asleep = false
			s.schedule(t+s.cfg.StealCost, other.id, evSteal)
		}
	}
}

func (s *simulator) popDeque(pr *proc) *frame {
	n := len(pr.deque)
	if n == 0 {
		return nil
	}
	f := pr.deque[n-1]
	pr.deque = pr.deque[:n-1]
	if len(pr.deque) == 0 {
		s.nonempty--
	}
	return f
}

func (s *simulator) stealTop(victim *proc) *frame {
	if len(victim.deque) == 0 {
		return nil
	}
	f := victim.deque[0]
	victim.deque = victim.deque[1:]
	if len(victim.deque) == 0 {
		s.nonempty--
	}
	return f
}

// offline reports whether pr has been descheduled by time t.
func (s *simulator) offline(pr *proc, t int64) bool {
	return pr.id < len(s.cfg.OfflineAt) && s.cfg.OfflineAt[pr.id] > 0 &&
		t >= s.cfg.OfflineAt[pr.id]
}

// deschedule parks pr's current frame back on its deque (stealable) and
// retires the processor.
func (s *simulator) deschedule(pr *proc, t int64) {
	if pr.current != nil {
		s.pushDeque(pr, pr.current, t)
		pr.current = nil
	}
}

// advance runs processor pr's current frame from virtual time t until the
// frame blocks, finishes, or begins an Exec segment.
func (s *simulator) advance(pr *proc, t int64) {
	if pr.releaseOnResume {
		pr.releaseOnResume = false
		s.releaseLock(t)
	}
	if s.offline(pr, t) {
		s.deschedule(pr, t)
		return
	}
	for {
		if s.done {
			return
		}
		f := pr.current
		st := f.iter.Next()
		switch st.Kind {
		case vprog.Exec:
			if st.Cost == 0 {
				continue
			}
			s.res.Work += st.Cost
			// Cache-model overhead stretches the segment's wall time but not
			// Work: the dag's intrinsic cost is machine-independent, misses
			// are not.
			cost := st.Cost + s.touchCache(pr, f)
			pr.busy += cost
			s.schedule(t+cost, pr.id, evResume)
			return
		case vprog.Spawn:
			s.res.Spawns++
			child := s.newFrame(st.Child, f, false)
			f.pending++
			if s.cfg.Scheduler == CentralQueue {
				// Naive eager tasking: enqueue the child globally and keep
				// running the parent past the spawn.
				s.enqueueCentral(child, t)
			} else {
				s.pushDeque(pr, f, t) // continuation becomes stealable
				pr.current = child    // work-first: dive into the child
			}
			if s.cfg.SpawnCost > 0 {
				pr.busy += s.cfg.SpawnCost
				s.schedule(t+s.cfg.SpawnCost, pr.id, evResume)
				return
			}
		case vprog.Critical:
			if st.Cost == 0 {
				continue
			}
			if s.lockHeld {
				// The strand blocks; the processor spins on the mutex
				// (it cannot steal while executing a blocked strand).
				s.lockQueue = append(s.lockQueue, lockWaiter{pr: pr, cost: st.Cost, since: t})
				return
			}
			s.acquireLock(pr, st.Cost, t)
			return
		case vprog.Call:
			pr.current = s.newFrame(st.Child, f, true)
		case vprog.Sync:
			if f.pending == 0 {
				continue
			}
			f.stalled = true
			pr.current = nil
			s.findLocalWork(pr, t)
			return
		case vprog.End:
			if f.pending > 0 { // implicit sync before return
				f.stalled = true
				f.ending = true
				pr.current = nil
				s.findLocalWork(pr, t)
				return
			}
			if !s.finishFrame(pr, f, t) {
				return
			}
		default:
			panic("sim: invalid step kind")
		}
	}
}

// finishFrame completes frame f on processor pr at time t. It returns true
// when pr has a current frame to keep advancing.
func (s *simulator) finishFrame(pr *proc, f *frame, t int64) bool {
	s.live--
	parent := f.parent
	if parent == nil {
		s.done = true
		s.doneTime = t
		return false
	}
	if f.called {
		// A called child returns directly into its parent on this
		// processor; the parent was never stealable meanwhile.
		pr.current = parent
		return true
	}
	parent.pending--
	if parent.stalled && parent.pending == 0 {
		// Provably good steal: the processor satisfying the join resumes
		// the parent immediately.
		parent.stalled = false
		pr.current = parent
		if parent.ending {
			parent.ending = false
			return s.finishFrame(pr, parent, t)
		}
		return true
	}
	pr.current = nil
	s.findLocalWork(pr, t)
	return false
}

// findLocalWork pops pr's own deque (work stealing) or the global FIFO
// (central queue), or turns pr into a thief.
func (s *simulator) findLocalWork(pr *proc, t int64) {
	if s.cfg.Scheduler == CentralQueue {
		if f := s.dequeueCentral(); f != nil {
			pr.current = f
			s.advance(pr, t)
			return
		}
		s.makeIdle(pr, t)
		return
	}
	if f := s.popDeque(pr); f != nil {
		pr.current = f
		s.advance(pr, t)
		return
	}
	s.makeIdle(pr, t)
}

// enqueueCentral appends a task to the global FIFO and wakes sleepers.
func (s *simulator) enqueueCentral(f *frame, t int64) {
	s.central = append(s.central, f)
	if len(s.central)-s.centralHead == 1 {
		s.nonempty = 1
	}
	for _, other := range s.procs {
		if other.asleep {
			other.asleep = false
			s.schedule(t+s.cfg.StealCost, other.id, evSteal)
		}
	}
}

// dequeueCentral removes the oldest task from the global FIFO.
func (s *simulator) dequeueCentral() *frame {
	if s.centralHead >= len(s.central) {
		return nil
	}
	f := s.central[s.centralHead]
	s.central[s.centralHead] = nil
	s.centralHead++
	if s.centralHead >= len(s.central) {
		s.central = s.central[:0]
		s.centralHead = 0
		s.nonempty = 0
	}
	return f
}

// makeIdle schedules pr's next steal attempt, or puts it to sleep when no
// deque in the machine has anything to steal (it is woken by the next
// push). Sleeping is a simulation shortcut only: it elides provably
// fruitless probes without altering any observable timing.
func (s *simulator) makeIdle(pr *proc, t int64) {
	if s.nonempty > 0 {
		s.schedule(t+s.cfg.StealCost, pr.id, evSteal)
		return
	}
	pr.asleep = true
}

// trySteal performs one steal attempt by pr at time t: the configured
// policy picks a victim and the thief takes its topmost continuation.
func (s *simulator) trySteal(pr *proc, t int64) {
	if pr.current != nil || s.done {
		return // stale event
	}
	if s.offline(pr, t) {
		return // descheduled: no further probes
	}
	s.res.StealAttempts++
	if s.cfg.Scheduler == CentralQueue {
		if f := s.dequeueCentral(); f != nil {
			s.res.Steals++
			pr.current = f
			s.advance(pr, t)
			return
		}
		s.makeIdle(pr, t)
		return
	}
	if len(s.procs) > 1 {
		victim := s.procs[s.victimID(pr)]
		if f := s.stealTop(victim); f != nil {
			s.res.Steals++
			remote := victim.domain != pr.domain
			if remote {
				s.res.RemoteSteals++
			} else {
				s.res.LocalSteals++
			}
			pr.lastVictim = victim.id
			pr.localMisses = 0
			pr.current = f
			if remote && s.cfg.RemoteStealCost > 0 {
				// The prize crosses a domain boundary: the thief stalls for
				// the transfer before its first instruction of the stolen
				// continuation.
				s.schedule(t+s.cfg.RemoteStealCost, pr.id, evResume)
				return
			}
			s.advance(pr, t)
			return
		}
		if victim.domain == pr.domain {
			pr.localMisses++ // drives VictimDomain's escalation
		} else {
			pr.localMisses = 0
		}
		if victim.id == pr.lastVictim {
			pr.lastVictim = -1 // affinity went cold
		}
	}
	s.makeIdle(pr, t)
}

// touchCache charges frame f's working set against pr's LRU cache and
// returns the extra virtual time the access costs (0 on a hit or with the
// cache model disabled). A miss on a frame last executed in another domain
// also counts as a remote miss.
func (s *simulator) touchCache(pr *proc, f *frame) int64 {
	if s.cfg.CacheLines <= 0 {
		return 0
	}
	for i, c := range pr.cache {
		if c == f {
			// Hit: move to front (LRU order, linear — caches are small).
			copy(pr.cache[1:i+1], pr.cache[:i])
			pr.cache[0] = f
			s.res.CacheHits++
			f.lastProc = pr.id
			return 0
		}
	}
	s.res.CacheMisses++
	if f.lastProc >= 0 && s.procs[f.lastProc].domain != pr.domain {
		s.res.RemoteMisses++
	}
	if len(pr.cache) < s.cfg.CacheLines {
		pr.cache = append(pr.cache, nil)
	}
	copy(pr.cache[1:], pr.cache[:len(pr.cache)-1])
	pr.cache[0] = f
	f.lastProc = pr.id
	return s.cfg.MissCost
}

// acquireLock grants the global mutex to pr for a Critical segment of the
// given cost, charging the handoff penalty when the lock migrates.
func (s *simulator) acquireLock(pr *proc, cost, t int64) {
	s.lockHeld = true
	s.res.LockAcquisitions++
	total := cost
	if s.lockLastHolder != pr.id && s.lockLastHolder != -1 {
		s.res.LockHandoffs++
		total += s.cfg.LockHandoff
	}
	s.lockLastHolder = pr.id
	s.res.Work += cost
	pr.busy += total
	pr.releaseOnResume = true
	s.schedule(t+total, pr.id, evResume)
}

// releaseLock frees the mutex and grants it to the longest-waiting strand,
// if any.
func (s *simulator) releaseLock(t int64) {
	if len(s.lockQueue) == 0 {
		s.lockHeld = false
		return
	}
	w := s.lockQueue[0]
	s.lockQueue = s.lockQueue[1:]
	s.res.LockWait += t - w.since
	s.lockHeld = false
	s.acquireLock(w.pr, w.cost, t)
}

// victimID applies the configured victim-selection policy for thief pr.
func (s *simulator) victimID(pr *proc) int {
	switch s.cfg.Victim {
	case VictimRoundRobin:
		v := pr.rrNext
		if v == pr.id {
			v = (v + 1) % len(s.procs)
		}
		pr.rrNext = (v + 1) % len(s.procs)
		return v
	case VictimDomain:
		members := s.domains[pr.domain]
		remote := len(s.procs) - len(members)
		// Stay local until a full local sweep's worth of consecutive
		// same-domain probes has failed (or there is nowhere else to go);
		// then fire one remote probe. Domain blocks are contiguous, so
		// pr's index within members is pr.id - members[0].
		if remote == 0 || (len(members) > 1 && pr.localMisses < len(members)-1) {
			idx := pr.id - members[0]
			v := s.rng.Intn(len(members) - 1)
			if v >= idx {
				v++
			}
			return members[v]
		}
		v := s.rng.Intn(remote)
		if v >= members[0] {
			v += len(members)
		}
		return v
	case VictimLastSuccess:
		if pr.lastVictim >= 0 && pr.lastVictim != pr.id {
			return pr.lastVictim
		}
		fallthrough
	default:
		v := s.rng.Intn(len(s.procs) - 1)
		if v >= pr.id {
			v++
		}
		return v
	}
}
