package sim_test

import (
	"testing"

	"cilkgo/internal/cilkmem"
	"cilkgo/internal/sim"
	"cilkgo/internal/vprog"
)

// TestLiveFramePeakWithinCilkmemBounds cross-checks the simulator against
// the Cilkmem analysis: any p-processor schedule's live-frame peak must lie
// between the serial high-water mark (when the deepest frame runs, all its
// ancestors are live — no schedule beats depth-first reuse) and the exact
// p-processor MHWM (the simulator's state at any instant is a dag downset
// with at most p strands mid-execution, since suspended frames sit at
// spawn/sync boundaries).
func TestLiveFramePeakWithinCilkmemBounds(t *testing.T) {
	progs := []vprog.Program{
		vprog.Fib(10),
		vprog.MatMul(8, 2),
		vprog.NQueens(6),
	}
	for _, prog := range progs {
		bounds := cilkmem.AnalyzeProgram(prog, 8, 1)
		for _, p := range []int{1, 2, 4, 8} {
			r, err := sim.Run(prog, sim.Config{Procs: p, StealCost: 10, Seed: 7})
			if err != nil {
				t.Fatalf("%s P=%d: %v", prog.Name, p, err)
			}
			if r.MaxLiveFrames < bounds.SerialHWM {
				t.Errorf("%s P=%d: sim peak %d below serial HWM %d",
					prog.Name, p, r.MaxLiveFrames, bounds.SerialHWM)
			}
			if exact := bounds.ExactAt(p); r.MaxLiveFrames > exact {
				t.Errorf("%s P=%d: sim peak %d above exact MHWM %d",
					prog.Name, p, r.MaxLiveFrames, exact)
			}
		}
	}
	// On one processor the simulator executes depth-first, so the peak is
	// not just bounded by — it equals — the serial high-water mark.
	for _, prog := range progs {
		bounds := cilkmem.AnalyzeProgram(prog, 1, 1)
		r, err := sim.Run(prog, sim.Config{Procs: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxLiveFrames != bounds.SerialHWM {
			t.Errorf("%s P=1: sim peak %d != serial HWM %d",
				prog.Name, r.MaxLiveFrames, bounds.SerialHWM)
		}
	}
}
