package schedsan

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestRandomPlanDeterministic: the same seed must derive the same plan —
// that is what makes a failing seed a reproducible test case.
func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a, b := RandomPlan(seed), RandomPlan(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: RandomPlan not deterministic:\n%v\n%v", seed, a, b)
		}
		if len(a.Rules) == 0 || len(a.Rules) > 5 {
			t.Fatalf("seed %d: %d rules, want 1..5", seed, len(a.Rules))
		}
		for _, r := range a.Rules {
			if r.Point == PointInjectWake {
				t.Fatalf("seed %d: random plan contains the liveness-breaking inject-wake point", seed)
			}
			if r.Delay > time.Millisecond {
				t.Fatalf("seed %d: unbounded delay %v", seed, r.Delay)
			}
		}
	}
}

// TestLaneDeterministic: a lane's decision sequence is a pure function of
// (seed, worker id) — two lanes built from equal injectors must agree
// call-for-call.
func TestLaneDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Point: PointSteal, Mode: ModeFail, Rate: 0.5},
		{Point: PointWake, Mode: ModeDrop, Every: 3},
	}}
	l1 := NewInjector(plan).Lane(2)
	l2 := NewInjector(plan).Lane(2)
	for i := 0; i < 1000; i++ {
		if l1.Fail(PointSteal) != l2.Fail(PointSteal) {
			t.Fatalf("call %d: lanes disagree on Fail", i)
		}
		if l1.Drop(PointWake) != l2.Drop(PointWake) {
			t.Fatalf("call %d: lanes disagree on Drop", i)
		}
	}
}

// TestEveryRule: an Every-based rule fires on exactly every Nth opportunity.
func TestEveryRule(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Point: PointWake, Mode: ModeDrop, Every: 4}}})
	l := in.Lane(0)
	fired := 0
	for i := 1; i <= 40; i++ {
		if l.Drop(PointWake) {
			fired++
			if i%4 != 0 {
				t.Fatalf("every=4 rule fired at opportunity %d", i)
			}
		}
	}
	if fired != 10 {
		t.Fatalf("every=4 rule fired %d/40 times, want 10", fired)
	}
	if got := in.TotalFired(); got != 10 {
		t.Fatalf("TotalFired = %d, want 10", got)
	}
}

// TestNilLane: every Lane method must be a no-op on nil — the scheduler
// holds nil lanes when the sanitizer is off.
func TestNilLane(t *testing.T) {
	var l *Lane
	if l.Fail(PointSteal) || l.Drop(PointWake) || l.Dup(PointWake) {
		t.Fatal("nil lane reported a fault")
	}
	l.Delay(PointPark) // must not panic
}

// TestPlanJSONRoundTrip: plans survive the JSON encoding used by the fuzz
// corpus and the shrunken fault scripts.
func TestPlanJSONRoundTrip(t *testing.T) {
	p := RandomPlan(7)
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Plan
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", p, got)
	}
}

// TestShrinkMinimizes: shrinking a plan whose failure depends on exactly
// one rule must isolate that rule.
func TestShrinkMinimizes(t *testing.T) {
	p := Plan{Seed: 9, Rules: []Rule{
		{Point: PointSteal, Mode: ModeFail, Rate: 0.3},
		{Point: PointWake, Mode: ModeDrop, Rate: 0.8},
		{Point: PointBatchCAS, Mode: ModeFail, Rate: 0.4},
		{Point: PointPark, Mode: ModeDelay, Rate: 0.5, Delay: 40 * time.Microsecond},
	}}
	calls := 0
	fails := func(c Plan) bool {
		calls++
		for _, r := range c.Rules {
			// The "bug" reproduces whenever the wake-drop rule is present
			// with rate ≥ 0.2.
			if r.Point == PointWake && r.Mode == ModeDrop && r.Rate >= 0.2 {
				return true
			}
		}
		return false
	}
	min := Shrink(p, fails)
	if len(min.Rules) != 1 || min.Rules[0].Point != PointWake || min.Rules[0].Mode != ModeDrop {
		t.Fatalf("shrink kept %v, want only the wake/drop rule", min.Rules)
	}
	if min.Rules[0].Rate >= 0.4 {
		t.Fatalf("shrink did not attenuate the rate: %v", min.Rules[0])
	}
	if calls == 0 {
		t.Fatal("predicate never invoked")
	}
}

// TestShrinkKeepsFailingPlan: the shrunk plan itself must satisfy the
// failure predicate.
func TestShrinkKeepsFailingPlan(t *testing.T) {
	p := RandomPlan(11)
	fails := func(c Plan) bool { return len(c.Rules) >= 2 }
	if !fails(p) {
		t.Skip("seed produced a single-rule plan")
	}
	min := Shrink(p, fails)
	if !fails(min) {
		t.Fatalf("shrunk plan no longer fails: %v", min)
	}
	if len(min.Rules) != 2 {
		t.Fatalf("shrunk plan has %d rules, want 2", len(min.Rules))
	}
}
