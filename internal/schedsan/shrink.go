package schedsan

import "time"

// Shrink reduces a failing fault plan to a (locally) minimal fault script:
// the returned plan still fails according to the supplied predicate, but no
// single rule can be removed from it, and no remaining rule's rate or delay
// can be halved, without the failure disappearing. fails must re-run the
// reproduction under the candidate plan and report whether the failure
// still occurs; because fault schedules are probabilistic, callers normally
// run a few trials per candidate and report "any trial failed".
//
// Shrinking is greedy — remove rules first (the dominant simplification),
// then attenuate rates and delays — and loops to a fixpoint. The number of
// fails invocations is O(rules² + rules·log(rate/ε)) in the worst case.
func Shrink(p Plan, fails func(Plan) bool) Plan {
	cur := p
	for {
		changed := false
		// Pass 1: drop whole rules.
		for i := 0; i < len(cur.Rules); i++ {
			cand := Plan{Seed: cur.Seed, Rules: removeRule(cur.Rules, i)}
			if fails(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Pass 2: halve rates and delays of the survivors.
		for i := range cur.Rules {
			r := cur.Rules[i]
			if r.Every == 0 && r.Rate > 0.02 {
				cand := clonePlan(cur)
				cand.Rules[i].Rate = r.Rate / 2
				if fails(cand) {
					cur = cand
					changed = true
				}
			}
			if r.Delay > time.Microsecond {
				cand := clonePlan(cur)
				cand.Rules[i].Delay = r.Delay / 2
				if fails(cand) {
					cur = cand
					changed = true
				}
			}
		}
		if !changed {
			return cur
		}
	}
}

func removeRule(rules []Rule, i int) []Rule {
	out := make([]Rule, 0, len(rules)-1)
	out = append(out, rules[:i]...)
	return append(out, rules[i+1:]...)
}

func clonePlan(p Plan) Plan {
	out := Plan{Seed: p.Seed, Rules: make([]Rule, len(p.Rules))}
	copy(out.Rules, p.Rules)
	return out
}
