// Package schedsan is the scheduler sanitizer: deterministic fault
// injection, runtime invariant checking, and stall watchdog support for the
// work-stealing runtime in internal/sched.
//
// The scheduler's hot paths — steal-half claim words, pointer-identity
// range-task reclaim, the park/wake producer fast path — are exactly the
// class of lock-free protocol that is only trustworthy under *controlled
// adversarial schedules*, not ordinary -race runs (see C11Tester and the
// Work Stealing Simulator papers in PAPERS.md): the rare interleavings that
// break such protocols occur once in millions of ordinary executions. This
// package makes those interleavings cheap to force and reproduce:
//
//   - A Plan is a seeded fault script: a small set of Rules, each attaching
//     a failure mode (forced failure, injected delay, dropped or duplicated
//     wakeup) to one protocol decision Point at a given rate. RandomPlan
//     derives a plan deterministically from a seed, so a failing seed is a
//     reproducible test case; Shrink reduces a failing plan to a minimal
//     fault script.
//   - An Injector compiles a Plan into per-worker Lanes. Each lane owns a
//     PRNG seeded from (plan seed, worker id), so the decision *sequence*
//     each worker sees is a pure function of the seed — the OS schedule
//     still varies, but the fault pattern does not.
//   - Options carries the sanitizer configuration the scheduler consumes:
//     the fault plan, whether continuous invariant checking is on, the
//     stall-watchdog threshold, and the violation/stall callbacks.
//
// The package deliberately imports nothing outside the standard library so
// both internal/deque and internal/sched can depend on it; the scheduler
// owns the injection sites, the invariant definitions, and the watchdog
// loop (internal/sched/sanitize.go) — this package owns the fault model.
package schedsan

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies one protocol decision point in the scheduler where a
// fault can be injected. The set mirrors the places the runtime makes a
// lock-free protocol decision: steal probes, batch-claim arbitration,
// park/wake, lazy-loop chunk peeling and range splitting, reducer view
// folds, and object-pool recycling.
type Point uint8

const (
	// PointSteal is a thief's single-item Steal: a forced failure makes the
	// steal report a lost race before its CAS.
	PointSteal Point = iota
	// PointBatchClaim is StealBatch's claim-word announcement: a forced
	// failure makes the batch report a contending claim, taking the
	// fall-back-to-Steal path.
	PointBatchClaim
	// PointBatchCAS is StealBatch's commit CAS on top: a forced failure
	// makes the batch release its claim and report a lost race after the
	// claim was visible to the owner.
	PointBatchCAS
	// PointBatchWindow is the interval during which a batch holds its claim:
	// a delay stretches the window in which the owner's PopBottom must back
	// off, and in which the claim/top state must stay coherent.
	PointBatchWindow
	// PointWake is a producer's wakeup of parked workers after publishing
	// stealable work: faults drop it, duplicate it, or delay it — the exact
	// perturbations a lost-wakeup bug is sensitive to.
	PointWake
	// PointPark is the window between a worker's last failed steal sweep and
	// its registration as parked: a delay stretches the classic
	// check-then-block race window against producers.
	PointPark
	// PointChunkPeel is the window after a lazy loop's owner republishes the
	// remainder range task and before it runs the peeled chunk: a delay
	// keeps the remainder exposed to thieves longer.
	PointChunkPeel
	// PointRangeSplit is a thief's halving of a freshly stolen range task: a
	// forced failure skips the split (legal — the thief runs the whole
	// range), exercising the no-split peel protocol under steal pressure.
	PointRangeSplit
	// PointViewFold is the reducer view fold at a sync: a delay stretches
	// the window between the last child deposit and the fold.
	PointViewFold
	// PointRecycle is task/frame pool recycling: a forced failure leaks the
	// object to the garbage collector instead (legal), exercising the
	// fresh-allocation paths and flushing ABA-style reuse assumptions.
	PointRecycle
	// PointDomainEscalate is a thief's escalation past its own steal domain
	// after a failed local sweep: a forced failure skips the escalation for
	// this sweep (legal — it is just one more failed sweep, and a later
	// sweep escalates), starving remote domains of exactly the rung the
	// localized-stealing time bound depends on.
	PointDomainEscalate
	// PointAffinity is a remote thief's re-injection of a stolen range half
	// toward the loop owner's domain: a forced failure keeps the half on
	// the thief's own deque instead (legal — the flat-runtime behaviour),
	// exercising both sides of the affinity decision under steal pressure.
	PointAffinity
	// PointInjectWake is the broadcast that announces a new root task in the
	// injection queue. It is never part of a random plan: dropping it is the
	// one fault that genuinely stalls the runtime, which is exactly what the
	// watchdog acceptance test needs (see Options.BreakInjectWake).
	PointInjectWake
	// PointMemCharge is the memory layer's budget check at a strand
	// boundary: a forced failure trips the budget spuriously, cancelling the
	// run with ErrMemoryBudget (legal — a budget cancel is an outcome every
	// budgeted caller must already handle, and the skip-but-join drain keeps
	// liveness). Only budget-armed runs ever reach the point, so the rule is
	// inert for ordinary work.
	PointMemCharge

	// NumPoints is the number of defined points.
	NumPoints
)

var pointNames = [NumPoints]string{
	"steal", "batch-claim", "batch-cas", "batch-window", "wake", "park",
	"chunk-peel", "range-split", "view-fold", "recycle",
	"domain-escalate", "affinity", "inject-wake", "mem-charge",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Mode is what a Rule does when it fires at its Point.
type Mode uint8

const (
	// ModeFail forces the operation at the point to report failure (or to
	// skip an optional step), taking the protocol's fallback path.
	ModeFail Mode = iota
	// ModeDelay stretches the race window at the point: the strand sleeps a
	// random fraction of Rule.Delay (or yields repeatedly when Delay is 0).
	ModeDelay
	// ModeDrop swallows the action at the point entirely (wake delivery:
	// the signal is never sent).
	ModeDrop
	// ModeDup performs the action at the point twice (wake delivery: two
	// signals for one publication).
	ModeDup

	numModes
)

var modeNames = [numModes]string{"fail", "delay", "drop", "dup"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Rule is one entry of a fault script: at Point, with Mode, fire either
// every Every-th opportunity (deterministic, when Every > 0) or with
// probability Rate per opportunity. Delay bounds the injected sleep for
// ModeDelay rules (0 means "yield the processor a few times").
type Rule struct {
	Point Point         `json:"point"`
	Mode  Mode          `json:"mode"`
	Rate  float64       `json:"rate,omitempty"`
	Every int64         `json:"every,omitempty"`
	Delay time.Duration `json:"delay_ns,omitempty"`
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s/%s", r.Point, r.Mode)
	if r.Every > 0 {
		s += fmt.Sprintf(" every=%d", r.Every)
	} else {
		s += fmt.Sprintf(" rate=%.3f", r.Rate)
	}
	if r.Delay > 0 {
		s += fmt.Sprintf(" delay≤%s", r.Delay)
	}
	return s
}

// Plan is a complete fault script: the seed that derives all injection
// randomness plus the active rules. The zero Plan injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

func (p Plan) String() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// ruleMenu is the space RandomPlan draws from. Every entry is
// liveness-safe: forced failures only force legal fallback paths, drops are
// limited to the spawn-path wake (whose loss is progress-preserving — the
// producer still owns the published work; see DESIGN.md §4d), and delays
// are bounded. PointInjectWake is deliberately absent.
var ruleMenu = []func(rng *rand.Rand) Rule{
	func(r *rand.Rand) Rule { return Rule{Point: PointSteal, Mode: ModeFail, Rate: 0.05 + 0.45*r.Float64()} },
	func(r *rand.Rand) Rule {
		return Rule{Point: PointSteal, Mode: ModeDelay, Rate: 0.05 + 0.25*r.Float64(), Delay: time.Duration(r.Intn(50)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointBatchClaim, Mode: ModeFail, Rate: 0.1 + 0.7*r.Float64()}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointBatchCAS, Mode: ModeFail, Rate: 0.05 + 0.45*r.Float64()}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointBatchWindow, Mode: ModeDelay, Rate: 0.1 + 0.4*r.Float64(), Delay: time.Duration(1+r.Intn(20)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule { return Rule{Point: PointWake, Mode: ModeDrop, Rate: 0.1 + 0.8*r.Float64()} },
	func(r *rand.Rand) Rule { return Rule{Point: PointWake, Mode: ModeDup, Rate: 0.1 + 0.4*r.Float64()} },
	func(r *rand.Rand) Rule {
		return Rule{Point: PointWake, Mode: ModeDelay, Rate: 0.1 + 0.3*r.Float64(), Delay: time.Duration(r.Intn(50)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointPark, Mode: ModeDelay, Rate: 0.2 + 0.6*r.Float64(), Delay: time.Duration(r.Intn(100)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointChunkPeel, Mode: ModeDelay, Rate: 0.05 + 0.25*r.Float64(), Delay: time.Duration(r.Intn(20)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointRangeSplit, Mode: ModeFail, Rate: 0.1 + 0.8*r.Float64()}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointViewFold, Mode: ModeDelay, Rate: 0.1 + 0.3*r.Float64(), Delay: time.Duration(r.Intn(20)) * time.Microsecond}
	},
	func(r *rand.Rand) Rule { return Rule{Point: PointRecycle, Mode: ModeFail, Rate: 0.1 + 0.8*r.Float64()} },
	// Locality faults (liveness-safe: a vetoed escalation is one more
	// failed sweep and the rate is < 1, so a hunting worker escalates with
	// probability 1; a vetoed affinity redirect is the flat-runtime push).
	// On a flat runtime these points are never reached and the rules are
	// inert. NOTE for corpus archaeology: extending this menu reshuffles
	// which plan RandomPlan derives from a given seed — the pinned corpus
	// seeds still run liveness-safe plans, they just cover different ones
	// than when they were minted.
	func(r *rand.Rand) Rule {
		return Rule{Point: PointDomainEscalate, Mode: ModeFail, Rate: 0.1 + 0.6*r.Float64()}
	},
	func(r *rand.Rand) Rule {
		return Rule{Point: PointAffinity, Mode: ModeFail, Rate: 0.1 + 0.8*r.Float64()}
	},
	// Memory fault (liveness-safe: a forced budget trip cancels the run with
	// ErrMemoryBudget, a legal outcome whose skip-but-join drain the cancel
	// layer already guarantees; inert for runs without a memory budget).
	func(r *rand.Rand) Rule {
		return Rule{Point: PointMemCharge, Mode: ModeFail, Rate: 0.01 + 0.2*r.Float64()}
	},
}

// RandomPlan derives a fault plan deterministically from seed: between one
// and five rules drawn (without point/mode duplication) from a menu of
// liveness-safe fault templates. The same seed always yields the same plan.
func RandomPlan(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(5)
	p := Plan{Seed: seed}
	used := map[[2]uint8]bool{}
	for len(p.Rules) < n {
		r := ruleMenu[rng.Intn(len(ruleMenu))](rng)
		k := [2]uint8{uint8(r.Point), uint8(r.Mode)}
		if used[k] {
			continue
		}
		used[k] = true
		p.Rules = append(p.Rules, r)
	}
	return p
}

// Injector is a Plan compiled for execution: per-point rule indices plus
// per-rule fire counters. One Injector serves one Runtime; each worker gets
// its own Lane.
type Injector struct {
	plan    Plan
	byPoint [NumPoints][]int
	fired   []atomic.Int64 // per rule, total fires across all lanes
}

// NewInjector compiles a plan. An empty plan yields an injector whose lanes
// never fire.
func NewInjector(p Plan) *Injector {
	in := &Injector{plan: p, fired: make([]atomic.Int64, len(p.Rules))}
	for i, r := range p.Rules {
		if r.Point < NumPoints {
			in.byPoint[r.Point] = append(in.byPoint[r.Point], i)
		}
	}
	return in
}

// Plan returns the plan the injector was compiled from.
func (in *Injector) Plan() Plan { return in.plan }

// Counts reports how many times each rule fired, keyed by the rule's
// String. Use it to confirm a plan actually exercised its faults.
func (in *Injector) Counts() map[string]int64 {
	m := make(map[string]int64, len(in.plan.Rules))
	for i, r := range in.plan.Rules {
		m[r.String()] += in.fired[i].Load()
	}
	return m
}

// TotalFired reports the total number of fault injections across all rules
// and lanes.
func (in *Injector) TotalFired() int64 {
	var n int64
	for i := range in.fired {
		n += in.fired[i].Load()
	}
	return n
}

// Lane returns a decision lane for the given worker id, with its PRNG
// seeded from (plan seed, id). Worker lanes are normally used by a single
// goroutine, but every lane is safe for concurrent use (a mutex guards the
// PRNG), so the runtime can share one lane across producer call sites that
// have no worker identity.
func (in *Injector) Lane(id int) *Lane {
	return &Lane{
		in:  in,
		rng: rand.New(rand.NewSource(in.plan.Seed ^ (0x9e3779b97f4a7c * int64(id+1)))),
		seq: make([]int64, len(in.plan.Rules)),
	}
}

// Lane is one decision stream of an Injector. All methods are safe on a nil
// receiver (they report "no fault"), so the scheduler can hold nil lanes
// when the sanitizer is off.
type Lane struct {
	in  *Injector
	mu  sync.Mutex
	rng *rand.Rand
	seq []int64 // per-rule opportunity counters, for Every-based rules
}

// decide reports whether any rule at (p, mode) fires for this opportunity,
// and for ModeDelay rules returns the sampled delay.
func (l *Lane) decide(p Point, mode Mode) (fire bool, delay time.Duration) {
	rules := l.in.byPoint[p]
	if len(rules) == 0 {
		return false, 0
	}
	l.mu.Lock()
	for _, ri := range rules {
		r := &l.in.plan.Rules[ri]
		if r.Mode != mode {
			continue
		}
		hit := false
		if r.Every > 0 {
			l.seq[ri]++
			hit = l.seq[ri]%r.Every == 0
		} else if r.Rate > 0 {
			hit = l.rng.Float64() < r.Rate
		}
		if !hit {
			continue
		}
		l.in.fired[ri].Add(1)
		fire = true
		if mode == ModeDelay {
			d := r.Delay
			if d > 0 {
				d = time.Duration(1 + l.rng.Int63n(int64(d)))
			}
			if d > delay {
				delay = d
			}
		}
	}
	l.mu.Unlock()
	return fire, delay
}

// Fail reports whether a ModeFail rule fires at p for this opportunity.
func (l *Lane) Fail(p Point) bool {
	if l == nil {
		return false
	}
	f, _ := l.decide(p, ModeFail)
	return f
}

// Drop reports whether a ModeDrop rule fires at p for this opportunity.
func (l *Lane) Drop(p Point) bool {
	if l == nil {
		return false
	}
	f, _ := l.decide(p, ModeDrop)
	return f
}

// Dup reports whether a ModeDup rule fires at p for this opportunity.
func (l *Lane) Dup(p Point) bool {
	if l == nil {
		return false
	}
	f, _ := l.decide(p, ModeDup)
	return f
}

// Delay blocks the calling strand if a ModeDelay rule fires at p: a sleep
// of a random fraction of the rule's bound, or a burst of Gosched calls
// when the bound is zero.
func (l *Lane) Delay(p Point) {
	if l == nil {
		return
	}
	fire, d := l.decide(p, ModeDelay)
	if !fire {
		return
	}
	if d <= 0 {
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		return
	}
	time.Sleep(d)
}

// Report is one sanitizer finding: an invariant violation or a stall, with
// a short title and a preformatted diagnostic body (per-worker state, deque
// depths, counters, recent trace events).
type Report struct {
	// Kind is "invariant" or "stall".
	Kind string
	// Title is the one-line finding, e.g. the violated invariant.
	Title string
	// Body is the multi-line diagnostic dump.
	Body string
	// When is when the finding was produced.
	When time.Time
}

func (r *Report) String() string {
	return "schedsan " + r.Kind + ": " + r.Title + "\n" + r.Body
}

// Options configures the sanitizer for one Runtime (sched.WithSanitize).
type Options struct {
	// Plan is the fault script to inject. The zero Plan injects nothing —
	// useful for running only the invariant checker and watchdog.
	Plan Plan
	// Invariants enables continuous cross-worker accounting checks: join
	// counters never go negative, no duplicate reducer-view deposits,
	// tracked runs quiesce exactly (spawns vs. tasks run/skipped, live
	// frames drain to zero), workers never exit with work in their deques,
	// and shutdown strands nothing.
	Invariants bool
	// StallAfter enables the stall watchdog: when no worker makes progress
	// for at least this long while work is outstanding and every worker is
	// idle (hunting or parked), the watchdog emits a diagnostic dump,
	// increments Stats.Stalls, and rescues the runtime by re-broadcasting
	// the scheduler's wakeup. 0 disables the watchdog.
	StallAfter time.Duration
	// TraceTail is how many recent trace events per worker a stall dump
	// includes when the runtime's tracer is recording (default 16).
	TraceTail int
	// OnViolation, when non-nil, receives invariant-violation reports
	// instead of the default panic. A handler that returns lets the
	// computation continue (the fuzzer collects findings this way).
	OnViolation func(*Report)
	// OnStall, when non-nil, receives stall reports; the default writes the
	// dump to standard error. The rescue broadcast happens either way.
	OnStall func(*Report)
	// BreakInjectWake suppresses the broadcast that announces new root
	// tasks — a deliberately broken wakeup whose loss genuinely stalls the
	// runtime. Test-only: it exists so the watchdog's detection and rescue
	// path can be exercised deterministically.
	BreakInjectWake bool
}
