// Loop experiments (L-series): lazy steal-driven loop splitting submits a
// cilk_for as one splittable range task instead of an eager Θ(n/grain)
// spawn tree, so wide loops should show task-creation counts that scale
// with the thieves (O(P·log(n/grain)) splits), not with n. `make bench-pfor`
// records these (plus the uncancelled fib/matmul C-series runs as the ±2%
// no-regression gate) as BENCH_pfor.json, diffed by cmd/benchjson against
// the committed seed baseline.
package cilkgo_test

import (
	"testing"

	"cilkgo"
	"cilkgo/internal/hyper"
	"cilkgo/internal/pfor"
)

// reportLoopMetrics attaches the lazy-splitting economics to the benchmark
// output: steal-driven splits and chunks per operation (splits bounded by
// thief demand, chunks ≈ n/grain), and spawned tasks per op, which for a
// pure loop should be zero — the loop's pieces are range tasks, not spawns.
func reportLoopMetrics(b *testing.B, rt *cilkgo.Runtime, before cilkgo.Stats) {
	d := rt.Stats().Sub(before)
	n := float64(b.N)
	b.ReportMetric(float64(d.LoopSplits)/n, "splits/op")
	b.ReportMetric(float64(d.ChunksPeeled)/n, "chunks/op")
	b.ReportMetric(float64(d.RangeSteals)/n, "range-steals/op")
	b.ReportMetric(float64(d.Spawns)/n, "spawns/op")
}

// BenchmarkLoopWideLight is the acceptance-gate shape: a flat million-
// iteration loop with a near-empty body, where eager splitting would pay
// ~n/grain task creations per op and lazy splitting pays one range task
// plus however many splits the thieves actually force.
func BenchmarkLoopWideLight(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const n = 1_000_000
	sink := make([]uint8, n) // disjoint per-iteration writes: race-free, near-free
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
				sink[i] = uint8(i)
			})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLoopMetrics(b, rt, before)
}

// BenchmarkLoopDaxpy is the memory-bound loop shape: y ← a·x + y over a
// vector that misses cache, where contiguous chunk runs (not task overhead)
// decide throughput — lazy splitting keeps each strand on an unbroken
// ascending run.
func BenchmarkLoopDaxpy(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const n = 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	before := rt.Stats()
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			cilkgo.For(c, 0, n, func(c *cilkgo.Context, i int) {
				y[i] += 2.5 * x[i]
			})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLoopMetrics(b, rt, before)
}

// BenchmarkLoopFor2D is the nested shape: an outer lazy loop whose body is
// itself serial row work, the common dense-matrix traversal.
func BenchmarkLoopFor2D(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const dim = 512
	grid := make([]float64, dim*dim)
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *cilkgo.Context) {
			cilkgo.For2D(c, 0, dim, 0, dim, func(c *cilkgo.Context, i, j int) {
				grid[i*dim+j] = float64(i) * float64(j)
			})
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLoopMetrics(b, rt, before)
}

// BenchmarkLoopReduce is the map-reduce shape on the pooled reducer: the
// per-iteration cost is dominated by the strand-local view lookup (the
// last-key cache hit) and the fold order must still match the serial loop.
func BenchmarkLoopReduce(b *testing.B) {
	rt := cilkgo.New(cilkgo.WithWorkers(4))
	defer rt.Shutdown()
	const n = 1 << 20
	m := hyper.FuncMonoid(func() int64 { return 0 }, func(a, x int64) int64 { return a + x })
	const want = int64(n) * (n - 1) / 2
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if err := rt.Run(func(c *cilkgo.Context) {
			got = pfor.Reduce(c, 0, n, m, func(c *cilkgo.Context, i int) int64 { return int64(i) })
		}); err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("Reduce = %d, want %d", got, want)
		}
	}
	b.StopTimer()
	reportLoopMetrics(b, rt, before)
}
